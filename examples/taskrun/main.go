// Taskrun demonstrates the §7 checkpoint/retry execution runtime around
// a batch task: a mercurial core corrupts a granule's computation; the
// supervisor catches the wrong answer, restores the last checkpoint,
// replays the granule's recorded inputs on a different core, and commits
// byte-identical output; repeated divergences on the same core escalate
// into the suspect-report path; the concentration test nominates the
// core; quarantine removes it; and subsequent placements route around it
// — retries drop to zero while the defect is still present.
//
//	go run ./examples/taskrun
package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/quarantine"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/taskrun"
	"repro/internal/xrand"
)

func main() {
	// A four-core machine. Core 1 is mercurial: its ALU flips bit 5 of
	// every result, deterministically — a fail-silent wrong-answer core.
	defect := fault.Defect{ID: "alu-flip5", Unit: fault.UnitALU,
		Deterministic: true, Kind: fault.CorruptBitFlip, BitPos: 5}
	cores := []*fault.Core{
		fault.NewCore("m0/c0", xrand.New(10)),
		fault.NewCore("m0/c1", xrand.New(11), defect),
		fault.NewCore("m0/c2", xrand.New(12)),
		fault.NewCore("m0/c3", xrand.New(13)),
	}
	cluster, provider, err := taskrun.NewPool("m0", cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bad := sched.CoreRef{Machine: "m0", Core: 1}

	// The tolerant stack: divergence signals flow to a report server in
	// process, the tracker concentrates them, and quarantine isolates.
	server := report.NewServer(4)
	mgr := quarantine.NewManager(cluster, quarantine.Policy{
		Mode: quarantine.CoreRemoval, MinScore: 1,
	})
	reg := obs.NewRegistry()
	var clock simtime.Time
	sup, err := taskrun.NewSupervisor(cluster, provider, taskrun.Config{
		DivergenceThreshold: 1,
		Sink:                taskrun.ServerSink(server),
		Metrics:             reg,
		Now:                 func() simtime.Time { return clock },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	granules := func() []taskrun.Granule {
		return []taskrun.Granule{
			taskrun.CorpusGranule(corpus.NewArith(256)),
			taskrun.CorpusGranule(corpus.NewHash(128)),
			taskrun.CorpusGranule(corpus.NewCRC(128)),
		}
	}
	// The golden outputs: the same tasks on an all-healthy pool.
	refCluster, refProvider, _ := taskrun.NewPool("ref", []*fault.Core{
		fault.NewCore("ref/c0", xrand.New(20)),
	})
	refSup, _ := taskrun.NewSupervisor(refCluster, refProvider, taskrun.Config{})

	fmt.Println("== supervised batch: every task starts on the bad core ==")
	for i := 0; i < 8; i++ {
		clock += simtime.Time(1)
		id := fmt.Sprintf("task%d", i)
		res, err := sup.Run(&taskrun.Task{ID: id, Start: &bad, Granules: granules()},
			xrand.New(uint64(100+i)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "task %s failed: %v\n", id, err)
			os.Exit(1)
		}
		want, err := refSup.Run(&taskrun.Task{ID: id, Granules: granules()},
			xrand.New(uint64(100+i)))
		if err != nil || !bytes.Equal(res.Output, want.Output) {
			fmt.Fprintf(os.Stderr, "task %s output diverges from healthy reference\n", id)
			os.Exit(1)
		}
		fmt.Printf("%s: byte-correct after path %v\n", id, res.Path)
	}
	st := sup.Stats()
	fmt.Printf("8 tasks: 0 wrong outputs, %d checkpoint restores, %d retries, %d migrations, %d signals reported\n\n",
		st.Restores, st.Retries, st.Migrations, st.SignalsSent)

	fmt.Println("== the loop closes: report -> nominate -> quarantine -> reroute ==")
	for _, s := range server.Suspects() {
		fmt.Printf("nominated: %s/core %d (%d reports, score %.1f)\n",
			s.Machine, s.Core, s.Reports, s.Score())
		if rec, err := mgr.Handle(s, clock, nil); err == nil && rec != nil {
			fmt.Printf("quarantined: %s (%s)\n", rec.Ref, rec.Mode)
		}
	}
	before := sup.Stats()
	clock += simtime.Time(1)
	res, err := sup.Run(&taskrun.Task{ID: "after", Start: &bad, Granules: granules()},
		xrand.New(999))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	after := sup.Stats()
	fmt.Printf("1 more task pinned at %s: placed on %v, %d restores — the quarantined core is never picked\n\n",
		bad, res.Path, after.Restores-before.Restores)

	fmt.Println("== supervisor counters (obs registry) ==")
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.Name, "taskrun_") && s.Kind != "histogram" {
			fmt.Printf("%-40s %v %.0f\n", s.Name, s.Labels, s.Value)
		}
	}
}
