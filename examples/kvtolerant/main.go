// Kvtolerant demonstrates the closed application-level detection loop of
// §6/§7 around the replicated key-value store: a mercurial core serves one
// replica and corrupts reads; naive serving surfaces the corruption to
// clients; tolerant serving retries on a different replica (§7's
// "retry-on-different-core"), heals via read repair, and converts every
// checksum failure into a suspect-report signal; the report service's
// concentration test nominates the core; quarantine removes it; and
// health-aware replica selection reroutes all subsequent reads — client
// errors and retries drop to zero while the defect is still present.
//
//	go run ./examples/kvtolerant
package main

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kvdb"
	"repro/internal/obs"
	"repro/internal/quarantine"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

func main() {
	// A three-machine slice of a fleet, four cores each. Core 2 of m0 is
	// mercurial: its vector (copy) unit sticks bit 3 of every byte at 0,
	// deterministically — a fail-silent wrong-answer core.
	cluster := sched.NewCluster()
	for _, m := range []string{"m0", "m1", "m2"} {
		if _, err := cluster.AddMachine(m, 4); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	defect := fault.Defect{ID: "stuck3", Unit: fault.UnitVec, Deterministic: true,
		Kind: fault.CorruptStuckBit, BitPos: 3, StuckVal: 0}
	bad := kvdb.NewReplica("r0", engine.New(fault.NewCore("m0/c2", xrand.New(7), defect))).
		Locate("m0", 2)
	good1 := kvdb.NewReplica("r1", engine.New(fault.NewCore("m1/c0", xrand.New(8)))).
		Locate("m1", 0)
	good2 := kvdb.NewReplica("r2", engine.New(fault.NewCore("m2/c0", xrand.New(9)))).
		Locate("m2", 0)

	// The payload has bit 3 set in every byte, so the stuck bit always
	// corrupts replica r0's copies and the record checksum always catches
	// the corruption at read time.
	payload := func(i int) []byte {
		return []byte(strings.Repeat(string(rune('h'+i%8)), 48))
	}

	fmt.Println("== naive serving: round-robin reads, errors surface to clients ==")
	naive, _ := kvdb.New(bad, good1, good2)
	for i := 0; i < 8; i++ {
		naive.Put(fmt.Sprintf("row%d", i), payload(i))
	}
	failed := 0
	for i := 0; i < 24; i++ {
		if _, err := naive.Get(fmt.Sprintf("row%d", i%8)); errors.Is(err, kvdb.ErrCorrupt) {
			failed++
		}
	}
	fmt.Printf("24 reads: %d client-visible checksum errors (replica r0 on the bad core)\n\n", failed)

	// The tolerant stack: signals flow to a report server in process, the
	// tracker concentrates them, quarantine isolates, and the store's
	// health view consults both before picking a serving replica.
	server := report.NewServer(4)
	mgr := quarantine.NewManager(cluster, quarantine.Policy{
		Mode: quarantine.CoreRemoval, MinScore: 1,
	})
	reg := obs.NewRegistry()
	var clock simtime.Time
	tdb := kvdb.NewTolerant(mustDB(bad, good1, good2), kvdb.TolerantConfig{
		Sink: kvdb.ServerSink(server),
		Health: kvdb.TrackerHealth(func(machine string, core int) bool {
			return mgr.Isolated(sched.CoreRef{Machine: machine, Core: core})
		}, server.Suspects, 6),
		Metrics: reg,
		Now:     func() simtime.Time { return clock },
	})
	for i := 0; i < 8; i++ {
		tdb.Put(fmt.Sprintf("row%d", i), payload(i))
	}

	fmt.Println("== tolerant serving: same defect, zero client errors ==")
	for i := 0; i < 24; i++ {
		clock += simtime.Time(1)
		if _, err := tdb.Get(fmt.Sprintf("row%d", i%8)); err != nil {
			fmt.Printf("unexpected client error: %v\n", err)
		}
	}
	st := tdb.Stats()
	fmt.Printf("24 reads: 0 client errors, %d retried onto a different replica, %d signals reported\n\n",
		st.Retries, st.SignalsSent)

	fmt.Println("== the loop closes: report -> nominate -> quarantine -> reroute ==")
	for _, s := range server.Suspects() {
		fmt.Printf("nominated: %s/core %d (%d reports, score %.1f)\n",
			s.Machine, s.Core, s.Reports, s.Score())
		if rec, err := mgr.Handle(s, clock, nil); err == nil && rec != nil {
			fmt.Printf("quarantined: %s (%s)\n", rec.Ref, rec.Mode)
		}
	}
	before := tdb.Stats()
	for i := 0; i < 24; i++ {
		clock += simtime.Time(1)
		if _, err := tdb.Get(fmt.Sprintf("row%d", i%8)); err != nil {
			fmt.Printf("unexpected client error: %v\n", err)
		}
	}
	after := tdb.Stats()
	fmt.Printf("24 more reads: %d retries, %d signals — the quarantined replica is never picked\n\n",
		after.Retries-before.Retries, after.SignalsSent-before.SignalsSent)

	fmt.Println("== serving counters (obs registry) ==")
	for _, s := range reg.Snapshot() {
		if strings.HasPrefix(s.Name, "kvdb_") && s.Kind != "histogram" {
			fmt.Printf("%-40s %v %.0f\n", s.Name, s.Labels, s.Value)
		}
	}
}

func mustDB(replicas ...*kvdb.Replica) *kvdb.DB {
	db, err := kvdb.New(replicas...)
	if err != nil {
		panic(err)
	}
	return db
}
