// Fleettriage runs the full fleet loop for a simulated quarter: rare
// mercurial cores manifest CEEs under production load, the signal pipeline
// concentrates reports, online screening extracts failures, suspects
// confess under deep screening, and the scheduler quarantines cores —
// ending with the §4 metrics for the run.
//
//	go run ./examples/fleettriage
package main

import (
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func main() {
	cfg := fleet.DefaultConfig()
	cfg.Machines = 1000
	cfg.CoresPerMachine = 16
	cfg.DefectsPerMachine = 0.02 // denser than the paper's fleet so a demo quarter has action
	cfg.Seed = 2026

	// The Runner API: each simulated day is sharded across the host's
	// cores (bit-identical to a serial run), and an observer streams
	// progress as the quarter unfolds.
	r, err := fleet.NewRunner(cfg,
		fleet.WithParallelism(0), // 0 = GOMAXPROCS
		fleet.WithObserver(func(d fleet.DayStats) {
			if d.NewQuarantines > 0 {
				fmt.Printf("  day %3d: %d core(s) quarantined\n", d.Day, d.NewQuarantines)
			}
		}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleettriage:", err)
		os.Exit(1)
	}
	f := r.Fleet()
	fmt.Printf("fleet: %d machines x %d cores; %d mercurial cores hidden in the population "+
		"(%d-way sharded)\n\n", cfg.Machines, cfg.CoresPerMachine, len(f.Defects()), r.Parallelism())

	const days = 90
	series := r.Run(days)

	var corruptions, silent int64
	var auto, user, screenHits, quarantines int
	for _, d := range series {
		corruptions += d.Corruptions
		silent += d.ByOutcome[fleet.OutcomeSilent]
		auto += d.AutoReports
		user += d.UserReports
		screenHits += d.ScreenDetections
		quarantines += d.NewQuarantines
	}
	fmt.Printf("after %d days:\n", days)
	fmt.Printf("  ground-truth corruptions: %d (%.0f%% never detected by anyone)\n",
		corruptions, 100*float64(silent)/float64(max64(corruptions, 1)))
	fmt.Printf("  automated reports: %d   user reports: %d   screening detections: %d\n",
		auto, user, screenHits)
	fmt.Printf("  cores quarantined: %d\n\n", quarantines)

	rep := metrics.Detection(f, days)
	fmt.Printf("detection scorecard (§4 metrics):\n")
	fmt.Printf("  defective cores: %d (%d active by day %d)\n",
		rep.TotalDefective, rep.PastOnset, days)
	fmt.Printf("  detected+quarantined: %d true, %d false positives\n",
		rep.TruePositive, rep.FalsePositive)
	fmt.Printf("  detected fraction: %.0f%%   mean detection latency: %.1f days\n",
		100*rep.DetectedFraction(), rep.MeanLatencyDays())

	cap := f.Cluster().Capacity()
	fmt.Printf("  capacity: %d schedulable, %d offline, %d restricted\n",
		cap.Schedulable, cap.Offline, cap.Restricted)

	fmt.Printf("\nhuman triage ledger (§6): %d investigated, %d confirmed, "+
		"%d false accusations, %d not reproduced\n",
		f.Triage.Investigated, f.Triage.Confirmed,
		f.Triage.FalseAccusations, f.Triage.RealNotReproduced)

	fmt.Println("\nremaining at-large mercurial cores (latent or below detection):")
	atLarge := 0
	for _, d := range f.Defects() {
		ref := sched.CoreRef{Machine: d.Machine, Core: d.Core}
		if _, ok := f.QuarantineDay(ref); !ok {
			atLarge++
		}
	}
	fmt.Printf("  %d of %d — the reason screening is a lifecycle, not an event (§6)\n",
		atLarge, len(f.Defects()))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
