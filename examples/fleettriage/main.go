// Fleettriage runs the full fleet loop for a simulated quarter: rare
// mercurial cores manifest CEEs under production load, the signal pipeline
// concentrates reports, online screening extracts failures, suspects
// confess under deep screening, and the scheduler quarantines cores —
// ending with the §4 metrics for the run, a metrics-registry snapshot,
// and a trace-derived audit of the detection report.
//
//	go run ./examples/fleettriage
package main

import (
	"fmt"
	"os"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sched"
)

func main() {
	cfg := fleet.DefaultConfig()
	cfg.Machines = 1000
	cfg.CoresPerMachine = 16
	cfg.DefectsPerMachine = 0.02 // denser than the paper's fleet so a demo quarter has action
	cfg.Seed = 2026

	// The Runner API: each simulated day is sharded across the host's
	// cores (bit-identical to a serial run), an observer streams progress
	// as the quarter unfolds, and the observability layer collects fleet
	// metrics plus the per-core CEE lifecycle trace.
	reg := obs.NewRegistry()
	trace := obs.NewTrace()
	r, err := fleet.NewRunner(cfg,
		fleet.WithParallelism(0), // 0 = GOMAXPROCS
		fleet.WithMetrics(reg),
		fleet.WithTrace(trace),
		fleet.WithObserver(func(d fleet.DayStats) {
			if d.NewQuarantines > 0 {
				fmt.Printf("  day %3d: %d core(s) quarantined\n", d.Day, d.NewQuarantines)
			}
		}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleettriage:", err)
		os.Exit(1)
	}
	f := r.Fleet()
	fmt.Printf("fleet: %d machines x %d cores; %d mercurial cores hidden in the population "+
		"(%d-way sharded)\n\n", cfg.Machines, cfg.CoresPerMachine, len(f.Defects()), r.Parallelism())

	const days = 90
	series := r.Run(days)

	var corruptions, silent int64
	var auto, user, screenHits, quarantines int
	for _, d := range series {
		corruptions += d.Corruptions
		silent += d.ByOutcome[fleet.OutcomeSilent]
		auto += d.AutoReports
		user += d.UserReports
		screenHits += d.ScreenDetections
		quarantines += d.NewQuarantines
	}
	fmt.Printf("after %d days:\n", days)
	fmt.Printf("  ground-truth corruptions: %d (%.0f%% never detected by anyone)\n",
		corruptions, 100*float64(silent)/float64(max64(corruptions, 1)))
	fmt.Printf("  automated reports: %d   user reports: %d   screening detections: %d\n",
		auto, user, screenHits)
	fmt.Printf("  cores quarantined: %d\n\n", quarantines)

	rep := metrics.Detection(f, days)
	fmt.Printf("detection scorecard (§4 metrics):\n")
	fmt.Printf("  defective cores: %d (%d active by day %d)\n",
		rep.TotalDefective, rep.PastOnset, days)
	fmt.Printf("  detected+quarantined: %d true, %d false positives\n",
		rep.TruePositive, rep.FalsePositive)
	fmt.Printf("  detected fraction: %.0f%%   mean detection latency: %.1f days\n",
		100*rep.DetectedFraction(), rep.MeanLatencyDays())

	cap := f.Cluster().Capacity()
	fmt.Printf("  capacity: %d schedulable, %d offline, %d restricted\n",
		cap.Schedulable, cap.Offline, cap.Restricted)

	fmt.Printf("\nhuman triage ledger (§6): %d investigated, %d confirmed, "+
		"%d false accusations, %d not reproduced\n",
		f.Triage.Investigated, f.Triage.Confirmed,
		f.Triage.FalseAccusations, f.Triage.RealNotReproduced)

	fmt.Println("\nremaining at-large mercurial cores (latent or below detection):")
	atLarge := 0
	for _, d := range f.Defects() {
		ref := sched.CoreRef{Machine: d.Machine, Core: d.Core}
		if _, ok := f.QuarantineDay(ref); !ok {
			atLarge++
		}
	}
	fmt.Printf("  %d of %d — the reason screening is a lifecycle, not an event (§6)\n",
		atLarge, len(f.Defects()))

	// The observability layer saw the same run: counters accumulated
	// lock-free during the sharded phases, and the lifecycle trace is rich
	// enough to reconstruct the detection scorecard without touching the
	// fleet's internals — the audit a real fleet would run from logs.
	fmt.Printf("\nobservability: %d trace events; selected counters:\n", trace.Len())
	interesting := map[string]bool{
		"fleet_corruptions_total": true, "ceereport_signals_accepted_total": true,
		"screen_online_ticks_total": true, "quarantine_isolated_total": true,
	}
	for _, s := range reg.Snapshot() {
		if interesting[s.Name] {
			fmt.Printf("  %-35s%v = %.0f\n", s.Name, s.Labels, s.Value)
		}
	}
	audit, err := metrics.DetectionFromTrace(trace.Events(), days)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleettriage: trace audit:", err)
		os.Exit(1)
	}
	if audit.TruePositive == rep.TruePositive && audit.FalsePositive == rep.FalsePositive {
		fmt.Printf("  trace audit: scorecard reconstructed from the event stream matches ground truth\n")
	} else {
		fmt.Printf("  trace audit MISMATCH: %+v vs %+v\n", audit, rep)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
