// Quickstart: stage a mercurial core, watch it silently corrupt a
// computation, and catch it with the screening corpus.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/screen"
)

func main() {
	// A 4-core machine; core 2 carries an intermittent ALU defect that
	// flips bit 13 of roughly one in ten thousand results.
	m, err := core.NewMachine("demo", 4, 1, core.WithDefect(2, fault.Defect{
		Unit: fault.UnitALU, BaseRate: 1e-4,
		Kind: fault.CorruptBitFlip, BitPos: 13,
	}))
	if err != nil {
		log.Fatal(err)
	}

	// The same sum on every core. Three cores agree; one does not —
	// and nothing crashes, nothing traps. That is a CEE.
	fmt.Println("summing 1..1_000_000 on each core:")
	for i := 0; i < m.Cores(); i++ {
		e := m.Engine(i)
		var sum uint64
		for j := uint64(1); j <= 1_000_000; j++ {
			sum = e.Add64(sum, j)
		}
		marker := ""
		if sum != 500000500000 {
			marker = "   <-- silent corruption"
		}
		fmt.Printf("  core %d: %d%s\n", i, sum, marker)
	}

	// Screening finds the culprit by checking results against expected
	// values (§6): run the self-checking corpus on every core.
	fmt.Println("\nscreening all cores with the self-checking corpus:")
	for i, rep := range m.ScreenAll(screen.Quick(), 7) {
		verdict := "pass"
		if rep.Detected {
			verdict = fmt.Sprintf("FLAGGED (%s: %s)",
				rep.Detections[0].Result.Workload, rep.Detections[0].Result.Detail)
		}
		fmt.Printf("  core %d: %s\n", i, verdict)
	}

	fmt.Println("\nground truth:", m.MercurialCores(), "— the flagged core is the defective one")
}
