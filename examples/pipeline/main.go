// Pipeline reproduces the paper's opening incident (§1): a massive-scale
// data-analysis pipeline starts giving wrong answers after an innocuous
// library change. The change itself is correct, but it makes servers use
// otherwise rarely-used instructions — and a small subset of machines is
// repeatedly responsible for the corrupt results.
//
// Here, a fleet of worker machines compresses and checksums record
// batches. Version 1 of the "library" hashes records with plain ALU
// arithmetic; version 2 switches the inner loop to the vector/copy unit
// for speed. One worker core has a latent vector-unit defect, so v2
// suddenly starts producing corrupt batches — only on that machine.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ecc"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

const (
	workers = 8
	batches = 1600
	recordN = 256
)

// hashV1 fingerprints a record using ALU multiply-xor only.
func hashV1(e *engine.Engine, rec []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range rec {
		h = e.Xor64(h, uint64(b))
		h = e.Mul64(h, 1099511628211)
	}
	return h
}

// hashV2 is the "innocuous library change": it first moves the record
// through the (faster) bulk-copy path, then hashes — heavier use of the
// rarely-exercised vector unit.
func hashV2(e *engine.Engine, rec []byte, scratch []byte) uint64 {
	e.Copy(scratch[:len(rec)], rec)
	h := uint64(14695981039346656037)
	for _, b := range scratch[:len(rec)] {
		h = e.Xor64(h, uint64(b))
		h = e.Mul64(h, 1099511628211)
	}
	return h
}

func main() {
	// Worker 5, core 2 carries a vector-unit defect. Under v1 it is
	// completely invisible: the pipeline never touches that unit.
	const coresPer = 4
	machines := make([]*core.Machine, workers)
	for i := range machines {
		var opts []core.Option
		if i == 5 {
			opts = append(opts, core.WithDefect(2, fault.Defect{
				Unit: fault.UnitVec, BaseRate: 5e-3,
				Kind: fault.CorruptBitFlip, BitPos: 9,
			}))
		}
		m, err := core.NewMachine(fmt.Sprintf("worker%d", i), coresPer, uint64(i+1), opts...)
		if err != nil {
			log.Fatal(err)
		}
		machines[i] = m
	}

	rng := xrand.New(99)
	tracker := detect.NewTracker(coresPer)
	scratch := make([]byte, recordN)

	runVersion := func(name string, v2 bool) {
		badBatches := map[int]int{}
		for b := 0; b < batches; b++ {
			rec := make([]byte, recordN)
			rng.Bytes(rec)
			w := b % workers
			c := (b / workers) % coresPer
			e := machines[w].Engine(c)
			var got uint64
			if v2 {
				got = hashV2(e, rec, scratch)
			} else {
				got = hashV1(e, rec)
			}
			// End-to-end check: the client recomputes the fingerprint
			// from its own copy (golden). Mismatch = detected CEE.
			want := uint64(14695981039346656037)
			for _, c := range rec {
				want ^= uint64(c)
				want *= 1099511628211
			}
			_ = ecc.CRC32CGolden(rec) // the batch checksum shipped alongside
			if got != want {
				badBatches[w]++
				tracker.Add(detect.Signal{Machine: fmt.Sprintf("worker%d", w),
					Core: c, Kind: detect.SigAppError})
			}
		}
		fmt.Printf("%s: %d batches, corrupt per worker: %v\n", name, batches, badBatches)
	}

	fmt.Println("== library v1 (ALU-only inner loop) ==")
	runVersion("v1", false)
	fmt.Println("\n== library v2 (vector/copy inner loop — the innocuous change) ==")
	runVersion("v2", true)

	fmt.Println("\ninvestigation fingers a surprising cause:")
	for _, s := range tracker.Suspects() {
		fmt.Printf("  suspect %s/core%d: %d corrupt batches, concentration p-value %.1e\n",
			s.Machine, s.Core, s.Reports, s.PValue)
	}
	fmt.Println("the change was correct; the hardware on one machine was not (§1)")
}
