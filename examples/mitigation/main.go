// Mitigation demonstrates §7's software defenses on a machine with a
// mercurial core: unprotected execution silently accepts wrong answers;
// DMR catches disagreement and retries; TMR outvotes the bad core;
// verified libraries refuse corrupt ciphertext; and checkpoint/restart
// recovers a multi-step task on a different core.
//
//	go run ./examples/mitigation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mitigate"
)

func main() {
	// Core 0 is mercurial: its crypto unit XORs one ciphertext bit at a
	// high intermittent rate, and its ALU occasionally flips a bit.
	m, err := core.NewMachine("host", 4, 11,
		core.WithDefect(0, fault.Defect{
			Unit: fault.UnitCrypto, BaseRate: 0.05,
			Kind: fault.CorruptXORMask, Mask: 1 << 17,
		}),
		core.WithDefect(0, fault.Defect{
			Unit: fault.UnitALU, BaseRate: 1e-3,
			Kind: fault.CorruptBitFlip, BitPos: 5,
		}))
	if err != nil {
		log.Fatal(err)
	}

	// The critical computation: encrypt a batch of blocks.
	blocks := make([]uint64, 128)
	for i := range blocks {
		blocks[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	const key = 0xfeedfacecafebeef
	comp := func(e *engine.Engine) []byte {
		out := make([]byte, 0, len(blocks)*8)
		for _, x := range blocks {
			ct := e.CryptoEncrypt64(x, key)
			for b := 0; b < 8; b++ {
				out = append(out, byte(ct>>(8*uint(b))))
			}
		}
		return out
	}
	golden := string(func() []byte {
		out := make([]byte, 0, len(blocks)*8)
		for _, x := range blocks {
			ct := engine.GoldenCryptoEncrypt64(x, key)
			for b := 0; b < 8; b++ {
				out = append(out, byte(ct>>(8*uint(b))))
			}
		}
		return out
	}())

	const trials = 40
	x := m.Executor(3)

	fmt.Println("== unprotected (runs on a random core) ==")
	wrong := 0
	for i := 0; i < trials; i++ {
		out, _, err := x.Once(comp)
		if err == nil && string(out) != golden {
			wrong++
		}
	}
	fmt.Printf("  %d/%d runs returned silently wrong ciphertext\n\n", wrong, trials)

	fmt.Println("== DMR with retry on a different pair (§7) ==")
	wrong, caught := 0, 0
	for i := 0; i < trials; i++ {
		out, st, err := x.DMR(comp, 3)
		if err != nil {
			caught++
			continue
		}
		if st.Disagreements > 0 {
			caught++
		}
		if string(out) != golden {
			wrong++
		}
	}
	fmt.Printf("  wrong results: %d; disagreements caught and resolved: %d (cost ~2x)\n\n", wrong, caught)

	fmt.Println("== TMR with majority vote ==")
	wrong, caught = 0, 0
	for i := 0; i < trials; i++ {
		out, st, err := x.TMR(comp)
		if err != nil {
			caught++
			continue
		}
		if st.Disagreements > 0 {
			caught++
		}
		if string(out) != golden {
			wrong++
		}
	}
	fmt.Printf("  wrong results: %d; bad replicas outvoted: %d (cost ~3x)\n\n", wrong, caught)

	fmt.Println("== verified crypto library (§7 self-checking functions) ==")
	v := m.Verifier(0, 1) // worst case: primary IS the bad core
	refused := 0
	for i := 0; i < trials; i++ {
		if _, err := v.EncryptBlocks(blocks, key); err != nil {
			refused++
		}
	}
	fmt.Printf("  %d/%d calls refused corrupt ciphertext (never returned it)\n\n", refused, trials)

	fmt.Println("== checkpoint/restart with invariant checks ==")
	steps := []mitigate.Step{
		{
			Name: "aggregate",
			Do: func(e *engine.Engine, state []byte) []byte {
				var sum uint64
				for i := uint64(1); i <= 10000; i++ {
					sum = e.Add64(sum, i)
				}
				return []byte(fmt.Sprintf("%d", sum))
			},
			Check: func(s []byte) bool { return string(s) == "50005000" },
		},
		{
			Name: "seal",
			Do: func(e *engine.Engine, state []byte) []byte {
				ct := e.CryptoEncrypt64(uint64(len(state)), key)
				return append(state, []byte(fmt.Sprintf("/%x", ct))...)
			},
			Check: func(s []byte) bool { return len(s) > 9 },
		},
	}
	recovered := 0
	for i := 0; i < trials; i++ {
		_, st, err := x.RunCheckpointed(steps, nil, 3)
		if err != nil {
			log.Fatalf("checkpointed task failed: %v", err)
		}
		recovered += st.Recoveries
	}
	fmt.Printf("  %d/%d tasks completed; %d step failures recovered on another core\n",
		trials, trials, recovered)
}
