// Command mercury is the core doctor: it stages a mercurial core on a
// simulated machine and walks the full §6 triage pipeline end to end —
// production incidents, signal aggregation, the concentration test,
// confession screening, and the isolation decision — narrating each step.
//
// Usage:
//
//	mercury                          # default: crypto-self-inverting on core 2
//	mercury -class vec-copy-lane -core 5 -cores 16 -mode safe-tasks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/forensics"
	"repro/internal/quarantine"
	"repro/internal/sched"
	"repro/internal/screen"
	"repro/internal/xrand"
)

func main() {
	cores := flag.Int("cores", 8, "cores on the machine")
	coreIdx := flag.Int("core", 2, "index of the defective core")
	class := flag.String("class", "crypto-self-inverting", "defect class (see screener -list)")
	mode := flag.String("mode", "core-removal", "isolation mode: machine-drain | core-removal | safe-tasks")
	seed := flag.Uint64("seed", 42, "simulation seed")
	flag.Parse()

	var qmode quarantine.Mode
	switch *mode {
	case "machine-drain":
		qmode = quarantine.MachineDrain
	case "core-removal":
		qmode = quarantine.CoreRemoval
	case "safe-tasks":
		qmode = quarantine.SafeTasks
	default:
		fmt.Fprintf(os.Stderr, "mercury: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	m, err := core.NewMachine("host0", *cores, *seed, core.WithDefectClass(*coreIdx, *class))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mercury:", err)
		os.Exit(2)
	}
	d := m.Core(*coreIdx).Defects[0]
	fmt.Printf("staged defect on host0/%d: %v\n\n", *coreIdx, &d)

	// Step 1: production incidents. Applications report suspect cores to
	// the tracker; the defective core concentrates reports, while
	// background software bugs spread evenly.
	fmt.Println("[1] incident signals arriving at the report service")
	tracker := detect.NewTracker(*cores)
	rng := xrand.New(*seed + 1)
	for i := 0; i < 12; i++ {
		tracker.Add(detect.Signal{Machine: "host0", Core: *coreIdx,
			Kind: detect.SigAppError, Time: 0})
	}
	for i := 0; i < 10; i++ {
		tracker.Add(detect.Signal{Machine: "host0", Core: rng.Intn(*cores),
			Kind: detect.SigCrash, Time: 0})
	}
	fmt.Printf("    %d reports on host0 (12 from the bad core, 10 software-bug noise)\n\n", tracker.Reports("host0"))

	// Step 2: concentration test.
	fmt.Println("[2] concentration analysis (evenly spread = software bug; concentrated = CEE)")
	suspects := tracker.Suspects()
	if len(suspects) == 0 {
		fmt.Println("    no suspects nominated; exiting")
		return
	}
	for _, s := range suspects {
		fmt.Printf("    suspect host0/core%d: %d reports, p-value %.2e, score %.1f\n",
			s.Core, s.Reports, s.PValue, s.Score())
	}
	top := suspects[0]
	fmt.Println()

	// Step 3: confession screening against the physical core.
	fmt.Println("[3] confession screening (deep corpus sweep over f, V, T)")
	conf := detect.Confess(m.Core(top.Core), screen.Deep(), xrand.New(*seed+2))
	if !conf.Confirmed {
		fmt.Println("    no confession extracted: exonerated (false accusation or limited reproducibility)")
		return
	}
	det := conf.Report.Detections[0]
	fmt.Printf("    CONFESSED after %d ops: %s failed at f=%.1fGHz V=%.2fV T=%.0fC\n",
		conf.Report.OpsToFirstDetection, det.Result.Workload,
		det.Point.FreqGHz, det.Point.VoltageV, det.Point.TempC)
	fmt.Printf("    detail: %s\n\n", det.Result.Detail)

	// Step 3b: forensic classification — is this a known defect mode or
	// a novel one needing a new automatable test (§6/§9)?
	fmt.Println("[3b] forensic classification")
	characterization := screen.Screen(m.Core(top.Core),
		screen.NewConfig(screen.WithPasses(2), screen.WithSweep(2, 1, 2),
			screen.WithStopOnDetect(false)), xrand.New(*seed+9))
	db := forensics.NewModeDB()
	db.Observe(forensics.Mode{Units: []fault.Unit{fault.UnitALU}}) // previously seen
	db.Observe(forensics.Mode{Units: []fault.Unit{fault.UnitVec}}) // previously seen
	if mode, ok := forensics.Classify(characterization); ok {
		novelty := "KNOWN mode"
		if db.Observe(mode) {
			novelty = "NOVEL mode — time to write a new screening test"
		}
		fmt.Printf("    signature %s: %s\n\n", mode.Key(), novelty)
	} else {
		fmt.Println("    characterization produced no failures to classify")
	}

	// Step 4: isolation.
	fmt.Printf("[4] isolation (%s)\n", qmode)
	cluster := sched.NewCluster()
	if _, err := cluster.AddMachine("host0", *cores); err != nil {
		fmt.Fprintln(os.Stderr, "mercury:", err)
		os.Exit(1)
	}
	for i := 0; i < *cores; i++ {
		if _, err := cluster.Place(&sched.Task{ID: fmt.Sprintf("task%d", i),
			Units: []fault.Unit{fault.UnitALU}}); err != nil {
			break
		}
	}
	mgr := quarantine.NewManager(cluster, quarantine.Policy{Mode: qmode})
	rec, err := mgr.Handle(top, 0, func(cfg screen.Config) detect.Confession {
		return detect.Confess(m.Core(top.Core), cfg, xrand.New(*seed+3))
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mercury:", err)
		os.Exit(1)
	}
	if rec == nil {
		fmt.Println("    policy declined to isolate")
		return
	}
	cap := cluster.Capacity()
	fmt.Printf("    isolated %v: %d tasks evicted, %d re-placed\n",
		rec.Ref, rec.EvictedTasks, rec.ReplacedTasks)
	if len(rec.BannedUnits) > 0 {
		fmt.Printf("    core restricted: banned units %v (safe tasks may still run)\n", rec.BannedUnits)
	}
	fmt.Printf("    capacity: %d schedulable, %d restricted, %d offline, %d drained\n",
		cap.Schedulable, cap.Restricted, cap.Offline, cap.DrainedCores)

	// Step 5: show the defect is really gone from the serving path.
	fmt.Println("\n[5] verification: workload re-run on a healthy core")
	e := engine.New(m.Core((top.Core + 1) % *cores))
	if e.Add64(2, 2) == 4 {
		fmt.Println("    2 + 2 = 4 — the fleet counts again")
	}
}
