// Command screener runs the self-checking corpus against a simulated
// machine and prints per-core screening verdicts — the offline screening
// flow of §6.
//
// Usage:
//
//	screener                              # 8 healthy cores, quick screen
//	screener -cores 8 -defect 3:vec-copy-lane -deep
//	screener -list                        # show defect classes and corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/screen"
)

func main() {
	cores := flag.Int("cores", 8, "number of cores on the machine")
	seed := flag.Uint64("seed", 1, "simulation seed")
	defect := flag.String("defect", "", "inject defect: <coreIdx>:<class> (repeatable via comma)")
	deep := flag.Bool("deep", false, "run the deep (f,V,T-sweep) screen instead of quick")
	par := flag.Int("parallelism", 0, "cores screened concurrently (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list defect classes and corpus workloads, then exit")
	flag.Parse()

	if *cores < 1 {
		fmt.Fprintf(os.Stderr, "screener: -cores must be >= 1, got %d\n", *cores)
		os.Exit(2)
	}
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "screener: -parallelism must be >= 1 (or 0 for GOMAXPROCS), got %d\n", *par)
		os.Exit(2)
	}

	if *list {
		fmt.Println("defect classes:")
		for _, c := range fault.Catalog {
			fmt.Printf("  %-26s weight %.2f\n", c.Name, c.Weight)
		}
		fmt.Println("corpus workloads:")
		for _, n := range corpus.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	var opts []core.Option
	if *defect != "" {
		for _, spec := range strings.Split(*defect, ",") {
			parts := strings.SplitN(spec, ":", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "screener: bad -defect %q (want idx:class)\n", spec)
				os.Exit(2)
			}
			idx, err := strconv.Atoi(parts[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "screener: bad core index in %q\n", spec)
				os.Exit(2)
			}
			opts = append(opts, core.WithDefectClass(idx, parts[1]))
		}
	}
	m, err := core.NewMachine("host0", *cores, *seed, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "screener:", err)
		os.Exit(2)
	}

	// Show the staged ground truth so a "pass" on a cold defect reads as
	// the §4 coverage problem, not as a healthy machine.
	for i := 0; i < m.Cores(); i++ {
		for _, d := range m.Core(i).Defects {
			fmt.Printf("staged: core %d carries %v\n", i, &d)
		}
	}

	cfg := screen.Quick()
	kind := "quick"
	if *deep {
		cfg = screen.Deep()
		kind = "deep"
	}
	fmt.Printf("screening %d cores (%s)\n", m.Cores(), kind)
	pool := make([]*fault.Core, m.Cores())
	for i := range pool {
		pool[i] = m.Core(i)
	}
	// Verdicts are bit-identical at any -parallelism; the flag only sets
	// how many cores are screened concurrently.
	reports := screen.ScreenAll(pool, cfg, *seed+100, *par)
	flagged := 0
	for i, rep := range reports {
		status := "pass"
		detail := ""
		if rep.Detected {
			flagged++
			status = "FLAGGED"
			d := rep.Detections[0]
			detail = fmt.Sprintf("  %s at f=%.1fGHz T=%.0fC: %s",
				d.Result.Workload, d.Point.FreqGHz, d.Point.TempC, d.Result.Detail)
		}
		fmt.Printf("core %2d: %-8s ops=%-10d %s\n", i, status, rep.OpsUsed, detail)
	}
	fmt.Printf("%d/%d cores flagged\n", flagged, m.Cores())
	if flagged > 0 {
		os.Exit(1)
	}
}
