// Command ceectl is the operator CLI for ceereportd's machine-lifecycle
// control plane:
//
//	ceectl -addr http://localhost:8080 list              # full ledger
//	ceectl list -state cordoned -pool web                # filter the ledger
//	ceectl show m00042                                   # one machine
//	ceectl cordon m00042 -reason "convicted, score 9.1"  # operator verbs
//	ceectl drain m00042
//	ceectl repair m00042
//	ceectl release m00042 -reason "repair verified"
//	ceectl remove m00042 -reason "recidivist"
//	ceectl assign m00042 -pool web                       # pool membership
//	ceectl pools                                         # capacity + deferred drains
//	ceectl stats                                         # service stats
//	ceectl readyz                                        # readiness probe
//	ceectl flood -n 200 -machines 50 -batch 64           # batched load
//
// A drain or cordon that would push the machine's pool below its
// capacity floor comes back deferred (HTTP 202): the intent is durably
// queued and admits itself as repaired capacity returns; ceectl prints
// the record with deferred=true and exits 0.
//
// Exit status: 0 on success, 1 when the server rejects the request (for
// a verb, typically an illegal lifecycle transition → HTTP 409), 2 on
// usage errors.
//
// flood exists for smoke tests: it ships n batches of synthetic crash
// reports through POST /v1/reports, riding the client's retry/Retry-After
// handling when the server sheds, and prints the delivery accounting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/report"
)

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: ceectl [-addr URL] <command> [flags] [machine]

Commands:
  list [-state S] [-pool P]
                           list machine lifecycle records (table)
  show <machine>           show one machine's record
  cordon <machine>         stop scheduling new work on the machine
  drain <machine>          cordon + migrate work away (completes immediately)
  repair <machine>         send a drained machine to repairs
  release <machine>        return a machine to service (repaired → probation,
                           drained/probation/suspect → healthy)
  remove <machine>         permanently decommission the machine
  assign <machine> -pool P assign the machine to a capacity pool
  pools                    per-pool capacity, floors, and deferred drains
  stats                    report-service statistics
  readyz                   readiness probe (exit 0 ready, 1 degraded)
  flood [-n N] [-machines M] [-batch B] [-source S]
                           ship N synthetic report batches (smoke/load tool)
  help                     show this message

The -addr flag (default http://localhost:8080, or $CEEREPORTD_ADDR)
must precede the command. Verb flags: -reason, -actor, -day, -score;
drain/cordon answers may be deferred (pool at its capacity floor).
`)
}

func main() {
	global := flag.NewFlagSet("ceectl", flag.ExitOnError)
	addr := global.String("addr", defaultAddr(), "ceereportd base URL")
	global.Usage = func() { usage(os.Stderr) }
	global.Parse(os.Args[1:])
	args := global.Args()
	if len(args) == 0 {
		usage(os.Stderr)
		os.Exit(2)
	}
	client := &report.Client{BaseURL: *addr}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cmd := args[0]
	switch cmd {
	case "list":
		os.Exit(cmdList(ctx, client, args[1:]))
	case "show":
		os.Exit(cmdShow(ctx, client, args[1:]))
	case "cordon", "drain", "repair", "release", "remove", "assign":
		os.Exit(cmdVerb(ctx, client, cmd, args[1:]))
	case "pools":
		os.Exit(cmdPools(ctx, client))
	case "stats":
		os.Exit(cmdStats(ctx, client))
	case "readyz":
		os.Exit(cmdReadyz(ctx, client))
	case "flood":
		os.Exit(cmdFlood(ctx, client, args[1:]))
	case "help", "-h", "--help":
		usage(os.Stdout)
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "ceectl: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
}

func defaultAddr() string {
	if a := os.Getenv("CEEREPORTD_ADDR"); a != "" {
		return a
	}
	return "http://localhost:8080"
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "ceectl: %v\n", err)
	return 1
}

func printRecord(m report.MachineJSON) {
	renderRecord(os.Stdout, m)
}

func cmdList(ctx context.Context, c *report.Client, args []string) int {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	state := fs.String("state", "", "filter by lifecycle state")
	pool := fs.String("pool", "", "filter by pool membership")
	fs.Parse(args)
	machines, err := c.Machines(ctx, *state, *pool)
	if err != nil {
		return fail(err)
	}
	renderMachineTable(os.Stdout, machines)
	fmt.Fprintf(os.Stderr, "%d machine(s)\n", len(machines))
	return 0
}

func cmdPools(ctx context.Context, c *report.Client) int {
	p, err := c.Pools(ctx)
	if err != nil {
		return fail(err)
	}
	renderPools(os.Stdout, p)
	return 0
}

func cmdReadyz(ctx context.Context, c *report.Client) int {
	out, ready, err := c.Readyz(ctx)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("status=%s wal_enabled=%t wal_healthy=%t queue_depth=%d/%d\n",
		out.Status, out.WAL.Enabled, out.WAL.Healthy, out.Queue.Depth, out.Queue.Capacity)
	if out.WAL.Error != "" {
		fmt.Printf("wal_error=%q\n", out.WAL.Error)
	}
	if !ready {
		return 1
	}
	return 0
}

func cmdShow(ctx context.Context, c *report.Client, args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: ceectl show <machine>")
		return 2
	}
	m, err := c.Machine(ctx, args[0])
	if err != nil {
		return fail(err)
	}
	printRecord(m)
	return 0
}

func cmdVerb(ctx context.Context, c *report.Client, verb string, args []string) int {
	fs := flag.NewFlagSet(verb, flag.ExitOnError)
	reason := fs.String("reason", "", "reason recorded in the lifecycle ledger")
	actor := fs.String("actor", "ceectl", "actor recorded in the lifecycle ledger")
	day := fs.Int("day", 0, "ledger day stamp")
	score := fs.Float64("score", 0, "conviction score (orders deferred drains)")
	pool := fs.String("pool", "", "pool name (assign verb)")
	// Accept the machine before the flags ("ceectl cordon m1 -reason x")
	// — the natural word order — as well as after them.
	var machine string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		machine, args = args[0], args[1:]
	}
	fs.Parse(args)
	if machine == "" && fs.NArg() == 1 {
		machine = fs.Arg(0)
	} else if fs.NArg() != 0 || machine == "" {
		fmt.Fprintf(os.Stderr, "usage: ceectl %s <machine> [-reason R] [-actor A] [-day D]\n", verb)
		return 2
	}
	if verb == "assign" && *pool == "" {
		fmt.Fprintln(os.Stderr, "usage: ceectl assign <machine> -pool <name>")
		return 2
	}
	m, err := c.MachineAction(ctx, machine, verb, report.ActionRequest{
		Reason: *reason, Actor: *actor, Day: *day, Score: *score, Pool: *pool,
	})
	if err != nil {
		return fail(err)
	}
	printRecord(m)
	return 0
}

func cmdStats(ctx context.Context, c *report.Client) int {
	s, err := c.StatsContext(ctx)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("total_reports=%d machines=%d suspects=%d\n",
		s.TotalReports, s.Machines, s.Suspects)
	return 0
}

func cmdFlood(ctx context.Context, c *report.Client, args []string) int {
	fs := flag.NewFlagSet("flood", flag.ExitOnError)
	n := fs.Int("n", 100, "number of batches to send")
	machines := fs.Int("machines", 20, "distinct machines to spread reports over")
	batch := fs.Int("batch", 32, "reports per batch")
	source := fs.String("source", "ceectl-flood", "batch source id (idempotency key)")
	fs.Parse(args)
	if *n <= 0 || *machines <= 0 || *batch <= 0 {
		fmt.Fprintln(os.Stderr, "ceectl flood: -n, -machines, -batch must be positive")
		return 2
	}
	counts := map[string]int{}
	for seq := 1; seq <= *n; seq++ {
		reports := make([]report.Report, *batch)
		for i := range reports {
			m := (seq**batch + i) % *machines
			reports[i] = report.Report{
				Machine: fmt.Sprintf("m%05d", m),
				Core:    m % 8, // concentrate per machine so suspects nominate
				Kind:    "crash",
				Detail:  "ceectl flood",
				TimeSec: float64(seq),
			}
		}
		ack, err := c.ReportBatchContext(ctx, report.Batch{
			Source: *source, Seq: uint64(seq), Reports: reports,
		})
		if err != nil {
			// Shed through every retry: count it and keep flooding — the
			// point of the tool is to observe backpressure, not die to it.
			counts["shed"]++
			continue
		}
		counts[ack.Status]++
	}
	fmt.Printf("flood: sent=%d accepted=%d deferred=%d replaced=%d duplicate=%d shed=%d\n",
		*n, counts["accepted"], counts["deferred"], counts["replaced"],
		counts["duplicate"], counts["shed"])
	if counts["accepted"]+counts["deferred"]+counts["replaced"] == 0 {
		fmt.Fprintln(os.Stderr, "ceectl flood: no batch was accepted")
		return 1
	}
	return 0
}
