package main

import (
	"bytes"
	"testing"

	"repro/internal/lifecycle"
	"repro/internal/report"
)

func TestRenderMachineTableGolden(t *testing.T) {
	var buf bytes.Buffer
	renderMachineTable(&buf, []report.MachineJSON{
		{Machine: "m00001", State: "cordoned", Pool: "web", SinceDay: 12, RepairCycles: 1, LastReason: "cee conviction"},
		{Machine: "m00002", State: "healthy", SinceDay: 0},
	})
	want := "" +
		"MACHINE  STATE     POOL  SINCE  REPAIRS  REASON\n" +
		"m00001   cordoned  web   12     1        cee conviction\n" +
		"m00002   healthy   -     0      0        -\n"
	if got := buf.String(); got != want {
		t.Fatalf("machine table:\n%q\nwant:\n%q", got, want)
	}
}

func TestRenderRecordGolden(t *testing.T) {
	var buf bytes.Buffer
	renderRecord(&buf, report.MachineJSON{
		Machine: "m00003", State: "healthy", SinceDay: 4,
		Pool: "db", Deferred: true, LastReason: "floor",
	})
	want := "m00003       healthy    since_day=4    repairs=0 transitions=0 pool=db deferred=true reason=\"floor\"\n"
	if got := buf.String(); got != want {
		t.Fatalf("record:\n%q\nwant:\n%q", got, want)
	}
}

func TestRenderPoolsGolden(t *testing.T) {
	var buf bytes.Buffer
	renderPools(&buf, report.PoolsJSON{
		Pools: []lifecycle.PoolStatus{
			{Name: "db", Machines: 4, Serving: 4, Floor: 2, MinHealthyCount: 2},
			{Name: "web", Machines: 8, Serving: 6, Floor: 6, Deferred: 2, MinHealthy: 0.75},
		},
		Deferred: []lifecycle.DeferredDrain{
			{Machine: "m00004", Pool: "web", Verb: "draining", Score: 8.5, Day: 31, Reason: "cee conviction"},
			{Machine: "m00009", Pool: "web", Verb: "cordoned", Score: 2, Day: 30, Reason: "maintenance"},
		},
	})
	want := "" +
		"POOL  MACHINES  SERVING  FLOOR  DEFERRED  MIN\n" +
		"db    4         4        2      0         2\n" +
		"web   8         6        6      2         75%\n" +
		"\n" +
		"Deferred drains (admission order):\n" +
		"MACHINE  POOL  VERB      SCORE  DAY  REASON\n" +
		"m00004   web   draining  8.50   31   cee conviction\n" +
		"m00009   web   cordoned  2.00   30   maintenance\n"
	if got := buf.String(); got != want {
		t.Fatalf("pools table:\n%q\nwant:\n%q", got, want)
	}
}

func TestRenderPoolsNoDeferredOmitsQueue(t *testing.T) {
	var buf bytes.Buffer
	renderPools(&buf, report.PoolsJSON{
		Pools: []lifecycle.PoolStatus{{Name: "web", Machines: 2, Serving: 2}},
	})
	want := "" +
		"POOL  MACHINES  SERVING  FLOOR  DEFERRED  MIN\n" +
		"web   2         2        0      0         0\n"
	if got := buf.String(); got != want {
		t.Fatalf("pools table:\n%q\nwant:\n%q", got, want)
	}
}
