package main

// Table rendering for ceectl output, separated from command plumbing so
// golden tests can drive it with fixed data and assert exact bytes.

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/report"
)

// renderRecord writes one machine record as a single line.
func renderRecord(w io.Writer, m report.MachineJSON) {
	fmt.Fprintf(w, "%-12s %-10s since_day=%-4d repairs=%d transitions=%d",
		m.Machine, m.State, m.SinceDay, m.RepairCycles, m.Transitions)
	if m.Pool != "" {
		fmt.Fprintf(w, " pool=%s", m.Pool)
	}
	if m.Deferred {
		fmt.Fprint(w, " deferred=true")
	}
	if m.LastReason != "" {
		fmt.Fprintf(w, " reason=%q", m.LastReason)
	}
	fmt.Fprintln(w)
}

// renderMachineTable writes the ledger as an aligned table.
func renderMachineTable(w io.Writer, machines []report.MachineJSON) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "MACHINE\tSTATE\tPOOL\tSINCE\tREPAIRS\tREASON")
	for _, m := range machines {
		pool := m.Pool
		if pool == "" {
			pool = "-"
		}
		reason := m.LastReason
		if reason == "" {
			reason = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s\n",
			m.Machine, m.State, pool, m.SinceDay, m.RepairCycles, reason)
	}
	tw.Flush()
}

// renderPools writes per-pool capacity accounting and the deferred-drain
// queue in admission order.
func renderPools(w io.Writer, p report.PoolsJSON) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "POOL\tMACHINES\tSERVING\tFLOOR\tDEFERRED\tMIN")
	for _, ps := range p.Pools {
		min := fmt.Sprintf("%d", ps.MinHealthyCount)
		if ps.MinHealthy > 0 {
			min = fmt.Sprintf("%.0f%%", ps.MinHealthy*100)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
			ps.Name, ps.Machines, ps.Serving, ps.Floor, ps.Deferred, min)
	}
	tw.Flush()
	if len(p.Deferred) == 0 {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Deferred drains (admission order):")
	dtw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(dtw, "MACHINE\tPOOL\tVERB\tSCORE\tDAY\tREASON")
	for _, d := range p.Deferred {
		pool := d.Pool
		if pool == "" {
			pool = "-"
		}
		fmt.Fprintf(dtw, "%s\t%s\t%s\t%.2f\t%d\t%s\n",
			d.Machine, pool, d.Verb, d.Score, d.Day, d.Reason)
	}
	dtw.Flush()
}
