// Command ceereportd runs the suspect-core report service (§6's "simple
// RPC service that allows an application to report a suspect core or CPU")
// as a standalone HTTP server.
//
// Usage:
//
//	ceereportd -addr :8080 -cores-per-machine 64
//
// API:
//
//	POST /v1/report   {"machine":"m1","core":7,"kind":"app-error","time_sec":0}
//	GET  /v1/suspects
//	GET  /v1/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/report"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cores := flag.Int("cores-per-machine", 64, "cores per machine (concentration-test shape)")
	flag.Parse()

	if *cores <= 0 {
		fmt.Fprintln(os.Stderr, "ceereportd: cores-per-machine must be positive")
		os.Exit(2)
	}
	srv := report.NewServer(*cores)
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("ceereportd listening on %s (machines shaped %d cores)", *addr, *cores)
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
