// Command ceereportd runs the suspect-core report service (§6's "simple
// RPC service that allows an application to report a suspect core or CPU")
// as a standalone HTTP server.
//
// Usage:
//
//	ceereportd -addr :8080 -cores-per-machine 64 \
//	           -wal /var/lib/ceereportd/lifecycle.wal -queue 65536 \
//	           -pools "web:0.9,db:2" -notify-log -notify-webhook http://pager/hook
//
// API:
//
//	POST /v1/report   {"machine":"m1","core":7,"kind":"app-error","time_sec":0}
//	                  → 202 on accept; 400 on a malformed report, a
//	                  machine-less report, trailing bytes after the JSON
//	                  object, or core < -1 (-1 means machine-level
//	                  attribution); 405 on a non-POST method; 413 when the
//	                  body exceeds 64 KiB
//	POST /v1/reports  {"source":"host-a","seq":7,"reports":[...]} → 202 on
//	                  accept/defer, 200 on an idempotent duplicate, 429 +
//	                  Retry-After when the bounded ingest queue sheds,
//	                  413 beyond 1 MiB
//	GET  /v1/suspects → 200, JSON array of nominated suspects
//	GET  /v1/stats    → 200, {"total_reports":N,"machines":N,"suspects":N}
//	                  — machines counts every distinct machine that has
//	                  ever reported, not just those hosting suspects
//	GET  /v1/metrics  → 200, Prometheus text format (version 0.0.4):
//	                  accepted signals by kind, rejected reports by
//	                  reason, totals, queue/shed counters
//	GET  /v1/healthz  → 200, {"status":"ok"} — liveness probe
//	GET  /v1/readyz   → 200 when serving normally; 503 {"status":"degraded"}
//	                  when the lifecycle WAL is unwritable or the ingest
//	                  queue is saturated — readiness, distinct from liveness
//	GET  /v1/machines — machine-lifecycle ledger (with -wal); plus
//	                  GET /v1/machines/{id}, ?state=/&pool= filters, and the
//	                  operator verbs POST /v1/machines/{id}/{cordon,drain,
//	                  repair,release,remove,assign} (202 when a cordon/drain
//	                  is deferred behind a pool's capacity floor)
//	GET  /v1/pools    → 200, per-pool capacity accounting (with -pools) plus
//	                  the deferred-drain queue in admission order
//
// -pools declares capacity floors ("web:0.9,db:2": a value below 1 is the
// fraction of the pool that must stay serving, 1 or more an absolute
// machine count). Cordons and drains that would breach a floor are parked
// on a score-ordered queue (HTTP 202) and admitted as repaired machines
// return. -notify-log and -notify-webhook attach operator notification
// sinks for every lifecycle transition and drain-queue change; webhook
// delivery retries with backoff behind an async queue that never blocks a
// transition.
//
// Error contract: every non-2xx response carries Content-Type
// application/json and the uniform envelope {"error":"<human-readable
// cause>"}, so clients and load balancers never have to parse free-form
// text bodies.
//
// With -wal, every lifecycle transition is appended (CRC-framed, fsynced)
// to the write-ahead log before it is acknowledged, and the ledger is
// replayed from the log on startup — a kill -9 loses at most a torn tail
// write, never an acknowledged transition.
//
// The server drains gracefully: SIGINT/SIGTERM stops accepting new
// connections and waits (bounded) for in-flight requests before exiting,
// then flushes the ingest queue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/remediate"
	"repro/internal/report"
)

// parsePools decodes the -pools flag: comma-separated name:floor pairs
// where a floor below 1 is a MinHealthy fraction ("web:0.9" keeps 90% of
// web serving) and a floor of 1 or more is an absolute MinHealthyCount
// ("db:2" keeps at least 2 db machines serving).
func parsePools(spec string) ([]lifecycle.PoolConfig, error) {
	var out []lifecycle.PoolConfig
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, ok := strings.Cut(field, ":")
		if !ok || name == "" {
			return nil, fmt.Errorf("pool %q: want name:floor", field)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate pool %q", name)
		}
		seen[name] = true
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("pool %q: floor must be a positive number, got %q", name, val)
		}
		cfg := lifecycle.PoolConfig{Name: name}
		if f < 1 {
			cfg.MinHealthy = f
		} else {
			if f != float64(int(f)) {
				return nil, fmt.Errorf("pool %q: absolute floor must be an integer, got %q", name, val)
			}
			cfg.MinHealthyCount = int(f)
		}
		out = append(out, cfg)
	}
	return out, nil
}

// notifyObserver adapts the notifier chain to the lifecycle observer
// seam, translating WAL records into operator events.
func notifyObserver(sinks []remediate.Notifier) func(lifecycle.Transition) {
	return func(t lifecycle.Transition) {
		e := remediate.Event{
			Seq: t.Seq, Day: t.Day, Machine: t.Machine,
			From: t.From, To: t.To, Kind: t.Kind, Pool: t.Pool,
			Score: t.Score, Reason: t.Reason, Actor: t.Actor,
		}
		for _, s := range sinks {
			s.Notify(e)
		}
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cores := flag.Int("cores-per-machine", 64, "cores per machine (concentration-test shape)")
	walPath := flag.String("wal", "", "machine-lifecycle WAL path (empty disables the /v1/machines admin API)")
	queue := flag.Int("queue", 0, "bounded ingest-queue capacity in signals (0 = synchronous ingest)")
	maxRepairs := flag.Int("max-repairs", 2, "repair cycles before a recidivist machine is permanently removed")
	pools := flag.String("pools", "", `capacity pools as name:floor pairs ("web:0.9,db:2"; <1 = serving fraction, >=1 = absolute count; needs -wal)`)
	notifyLog := flag.Bool("notify-log", false, "log every lifecycle transition and drain-queue change to stderr (needs -wal)")
	notifyWebhook := flag.String("notify-webhook", "", "POST every lifecycle event to this URL, with retry, behind an async queue (needs -wal)")
	flag.Parse()

	if *cores <= 0 {
		fmt.Fprintln(os.Stderr, "ceereportd: cores-per-machine must be positive")
		os.Exit(2)
	}
	poolCfgs, err := parsePools(*pools)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ceereportd: -pools: %v\n", err)
		os.Exit(2)
	}
	if *walPath == "" && (len(poolCfgs) > 0 || *notifyLog || *notifyWebhook != "") {
		fmt.Fprintln(os.Stderr, "ceereportd: -pools and -notify-* need the lifecycle ledger (-wal)")
		os.Exit(2)
	}
	srv := report.NewServer(*cores)
	var life *lifecycle.Manager
	var notifiers []remediate.Notifier
	if *walPath != "" {
		var (
			info lifecycle.RecoverInfo
			err  error
		)
		life, info, err = lifecycle.Open(*walPath, lifecycle.Options{
			MaxRepairs: *maxRepairs,
			Metrics:    srv.Metrics(),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ceereportd: lifecycle WAL: %v\n", err)
			os.Exit(1)
		}
		log.Printf("ceereportd: lifecycle ledger recovered from %s (%d records, %d torn bytes truncated)",
			*walPath, info.Records, info.TornBytes)
		for _, cfg := range poolCfgs {
			life.DefinePool(cfg)
		}
		// The observer is attached after Open so recovery replay does not
		// re-notify events that were already delivered in a prior life.
		if *notifyLog {
			notifiers = append(notifiers, remediate.NewLogNotifier(os.Stderr))
		}
		if *notifyWebhook != "" {
			// The webhook blocks on delivery and the observer runs under
			// the manager lock, so it goes behind the async queue.
			notifiers = append(notifiers, remediate.NewAsync(&remediate.WebhookNotifier{URL: *notifyWebhook}, 1024))
		}
		if len(notifiers) > 0 {
			life.SetObserver(notifyObserver(notifiers))
		}
		srv.SetLifecycle(life)
	}
	if *queue > 0 {
		srv.EnableQueue(*queue)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ceereportd listening on %s (machines shaped %d cores)", *addr, *cores)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		// Listener failed before any shutdown was requested.
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("ceereportd: %v received, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("ceereportd: shutdown: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ceereportd: serve: %v", err)
		os.Exit(1)
	}
	// HTTP is quiesced: flush the ingest queue, seal the WAL, then flush
	// the notifier chain (no transitions can fire once the WAL is sealed).
	srv.Close()
	if life != nil {
		if err := life.Close(); err != nil {
			log.Printf("ceereportd: lifecycle close: %v", err)
			os.Exit(1)
		}
	}
	for _, n := range notifiers {
		if err := n.Close(); err != nil {
			log.Printf("ceereportd: notifier close: %v", err)
		}
	}
	log.Print("ceereportd: drained cleanly")
}
