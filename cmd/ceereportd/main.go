// Command ceereportd runs the suspect-core report service (§6's "simple
// RPC service that allows an application to report a suspect core or CPU")
// as a standalone HTTP server.
//
// Usage:
//
//	ceereportd -addr :8080 -cores-per-machine 64 \
//	           -wal /var/lib/ceereportd/lifecycle.wal -queue 65536
//
// API:
//
//	POST /v1/report   {"machine":"m1","core":7,"kind":"app-error","time_sec":0}
//	                  → 202 on accept; 400 on a malformed report, a
//	                  machine-less report, trailing bytes after the JSON
//	                  object, or core < -1 (-1 means machine-level
//	                  attribution); 405 on a non-POST method; 413 when the
//	                  body exceeds 64 KiB
//	POST /v1/reports  {"source":"host-a","seq":7,"reports":[...]} → 202 on
//	                  accept/defer, 200 on an idempotent duplicate, 429 +
//	                  Retry-After when the bounded ingest queue sheds,
//	                  413 beyond 1 MiB
//	GET  /v1/suspects → 200, JSON array of nominated suspects
//	GET  /v1/stats    → 200, {"total_reports":N,"machines":N,"suspects":N}
//	                  — machines counts every distinct machine that has
//	                  ever reported, not just those hosting suspects
//	GET  /v1/metrics  → 200, Prometheus text format (version 0.0.4):
//	                  accepted signals by kind, rejected reports by
//	                  reason, totals, queue/shed counters
//	GET  /v1/healthz  → 200, {"status":"ok"} — liveness probe
//	GET  /v1/machines — machine-lifecycle ledger (with -wal); plus
//	                  GET /v1/machines/{id} and the operator verbs
//	                  POST /v1/machines/{id}/{cordon,drain,repair,release,remove}
//
// Error contract: every non-2xx response carries Content-Type
// application/json and the uniform envelope {"error":"<human-readable
// cause>"}, so clients and load balancers never have to parse free-form
// text bodies.
//
// With -wal, every lifecycle transition is appended (CRC-framed, fsynced)
// to the write-ahead log before it is acknowledged, and the ledger is
// replayed from the log on startup — a kill -9 loses at most a torn tail
// write, never an acknowledged transition.
//
// The server drains gracefully: SIGINT/SIGTERM stops accepting new
// connections and waits (bounded) for in-flight requests before exiting,
// then flushes the ingest queue.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/report"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cores := flag.Int("cores-per-machine", 64, "cores per machine (concentration-test shape)")
	walPath := flag.String("wal", "", "machine-lifecycle WAL path (empty disables the /v1/machines admin API)")
	queue := flag.Int("queue", 0, "bounded ingest-queue capacity in signals (0 = synchronous ingest)")
	maxRepairs := flag.Int("max-repairs", 2, "repair cycles before a recidivist machine is permanently removed")
	flag.Parse()

	if *cores <= 0 {
		fmt.Fprintln(os.Stderr, "ceereportd: cores-per-machine must be positive")
		os.Exit(2)
	}
	srv := report.NewServer(*cores)
	var life *lifecycle.Manager
	if *walPath != "" {
		var (
			info lifecycle.RecoverInfo
			err  error
		)
		life, info, err = lifecycle.Open(*walPath, lifecycle.Options{
			MaxRepairs: *maxRepairs,
			Metrics:    srv.Metrics(),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ceereportd: lifecycle WAL: %v\n", err)
			os.Exit(1)
		}
		log.Printf("ceereportd: lifecycle ledger recovered from %s (%d records, %d torn bytes truncated)",
			*walPath, info.Records, info.TornBytes)
		srv.SetLifecycle(life)
	}
	if *queue > 0 {
		srv.EnableQueue(*queue)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ceereportd listening on %s (machines shaped %d cores)", *addr, *cores)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		// Listener failed before any shutdown was requested.
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("ceereportd: %v received, draining", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("ceereportd: shutdown: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("ceereportd: serve: %v", err)
		os.Exit(1)
	}
	// HTTP is quiesced: flush the ingest queue, then seal the WAL.
	srv.Close()
	if life != nil {
		if err := life.Close(); err != nil {
			log.Printf("ceereportd: lifecycle close: %v", err)
			os.Exit(1)
		}
	}
	log.Print("ceereportd: drained cleanly")
}
