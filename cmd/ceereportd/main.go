// Command ceereportd runs the suspect-core report service (§6's "simple
// RPC service that allows an application to report a suspect core or CPU")
// as a standalone HTTP server.
//
// Usage:
//
//	ceereportd -addr :8080 -cores-per-machine 64
//
// API:
//
//	POST /v1/report   {"machine":"m1","core":7,"kind":"app-error","time_sec":0}
//	                  → 202 on accept, 400 on a malformed or machine-less
//	                  report, 405 on a non-POST method
//	GET  /v1/suspects → 200, JSON array of nominated suspects
//	GET  /v1/stats    → 200, {"total_reports":N,"machines":N,"suspects":N}
//	GET  /v1/healthz  → 200, {"status":"ok"} — liveness probe
//
// Error contract: every non-2xx response carries Content-Type
// application/json and the uniform envelope {"error":"<human-readable
// cause>"}, so clients and load balancers never have to parse free-form
// text bodies.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/report"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cores := flag.Int("cores-per-machine", 64, "cores per machine (concentration-test shape)")
	flag.Parse()

	if *cores <= 0 {
		fmt.Fprintln(os.Stderr, "ceereportd: cores-per-machine must be positive")
		os.Exit(2)
	}
	srv := report.NewServer(*cores)
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	log.Printf("ceereportd listening on %s (machines shaped %d cores)", *addr, *cores)
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
