package main

import (
	"reflect"
	"testing"

	"repro/internal/lifecycle"
)

func TestParsePools(t *testing.T) {
	cases := []struct {
		spec    string
		want    []lifecycle.PoolConfig
		wantErr bool
	}{
		{spec: "", want: nil},
		{spec: "web:0.9", want: []lifecycle.PoolConfig{{Name: "web", MinHealthy: 0.9}}},
		{spec: "db:2", want: []lifecycle.PoolConfig{{Name: "db", MinHealthyCount: 2}}},
		{
			spec: "web:0.9, db:2",
			want: []lifecycle.PoolConfig{
				{Name: "web", MinHealthy: 0.9},
				{Name: "db", MinHealthyCount: 2},
			},
		},
		{spec: "web:1", want: []lifecycle.PoolConfig{{Name: "web", MinHealthyCount: 1}}},
		{spec: "web:0.9,web:2", wantErr: true}, // duplicate name
		{spec: "web", wantErr: true},           // missing floor
		{spec: ":0.9", wantErr: true},          // missing name
		{spec: "web:zero", wantErr: true},      // non-numeric floor
		{spec: "web:0", wantErr: true},         // zero floor
		{spec: "web:-1", wantErr: true},        // negative floor
		{spec: "web:2.5", wantErr: true},       // fractional absolute floor
	}
	for _, tc := range cases {
		got, err := parsePools(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parsePools(%q): want error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePools(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parsePools(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}
