// Command isarun assembles and executes programs on the cycle-level CPU
// simulator, optionally with injected gate-level stuck-at faults — the §9
// "cycle-level CPU simulator that allows injection of known CEE behavior".
//
// Usage:
//
//	isarun prog.s                        # run, print registers
//	isarun -fault 7:carry:0 prog.s       # stuck-at-0 carry node at bit 7
//	isarun -compare -fault 7:carry:0 prog.s   # run clean and faulty, diff
//	echo 'movi r1, 2
//	      add r2, r1, r1
//	      halt' | isarun -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func main() {
	memWords := flag.Int("mem", 1024, "data memory size in words")
	maxCycles := flag.Uint64("max-cycles", 10_000_000, "cycle budget")
	faultSpec := flag.String("fault", "", "inject stuck-at fault: <bit>:<sum|carry>:<0|1>")
	compare := flag.Bool("compare", false, "run both clean and faulty, report divergence")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isarun [flags] <prog.s | ->")
		os.Exit(2)
	}
	var src []byte
	var err error
	if flag.Arg(0) == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(flag.Arg(0))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "isarun:", err)
		os.Exit(1)
	}
	words, err := isa.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "isarun:", err)
		os.Exit(1)
	}

	var fault *cpu.StuckAt
	if *faultSpec != "" {
		f, err := parseFault(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "isarun:", err)
			os.Exit(2)
		}
		fault = &f
	}

	run := func(inject bool) (*cpu.CPU, error) {
		c, err := cpu.New(words, *memWords)
		if err != nil {
			return nil, err
		}
		if inject && fault != nil {
			if err := c.ALU.Inject(*fault); err != nil {
				return nil, err
			}
		}
		return c, c.Run(*maxCycles)
	}

	if *compare {
		if fault == nil {
			fmt.Fprintln(os.Stderr, "isarun: -compare needs -fault")
			os.Exit(2)
		}
		clean, errClean := run(false)
		faulty, errFaulty := run(true)
		fmt.Printf("clean : %s\n", outcome(clean, errClean))
		fmt.Printf("faulty: %s  (with %v)\n", outcome(faulty, errFaulty), *fault)
		if errClean == nil && errFaulty == nil {
			diff := 0
			for i := range clean.Regs {
				if clean.Regs[i] != faulty.Regs[i] {
					fmt.Printf("  r%-2d diverges: %d vs %d\n", i, clean.Regs[i], faulty.Regs[i])
					diff++
				}
			}
			if diff == 0 {
				fmt.Println("  no architectural divergence (fault was invisible on this input)")
			}
		}
		return
	}

	c, err := run(true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "isarun: %v (after %d cycles)\n", err, c.Cycles)
		os.Exit(1)
	}
	fmt.Println(outcome(c, nil))
	for i, v := range c.Regs {
		if v != 0 {
			fmt.Printf("  r%-2d = %-22d %#x\n", i, v, v)
		}
	}
}

func outcome(c *cpu.CPU, err error) string {
	if err != nil {
		return fmt.Sprintf("trapped: %v", err)
	}
	return fmt.Sprintf("halted after %d cycles", c.Cycles)
}

func parseFault(s string) (cpu.StuckAt, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return cpu.StuckAt{}, fmt.Errorf("bad fault %q (want bit:node:value)", s)
	}
	bit, err := strconv.Atoi(parts[0])
	if err != nil || bit < 0 || bit > 63 {
		return cpu.StuckAt{}, fmt.Errorf("bad fault bit %q", parts[0])
	}
	var node cpu.Node
	switch parts[1] {
	case "sum":
		node = cpu.NodeSum
	case "carry":
		node = cpu.NodeCarry
	default:
		return cpu.StuckAt{}, fmt.Errorf("bad fault node %q (sum|carry)", parts[1])
	}
	val, err := strconv.Atoi(parts[2])
	if err != nil || val < 0 || val > 1 {
		return cpu.StuckAt{}, fmt.Errorf("bad fault value %q", parts[2])
	}
	return cpu.StuckAt{Bit: uint(bit), Node: node, Value: uint(val)}, nil
}
