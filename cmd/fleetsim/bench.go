package main

// fleetsim bench: the repeatable day-loop performance harness behind
// BENCH_fleetsim.json. It runs the fleet simulator's Step loop over a
// matrix of fleet sizes and worker counts, measures wall-clock and
// allocation cost per simulated day, and appends the results to a JSON
// trajectory file so per-PR regressions are visible (ROADMAP: "start
// recording the trajectory as BENCH_fleetsim.json").
//
// The fleet build is excluded from the timing; one warm-up day runs before
// the measured window so steady-state costs (lazily built pools, corpus
// unlock state) are what get recorded.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
)

// BenchConfigResult is one (machines, parallelism) cell of the matrix.
type BenchConfigResult struct {
	Machines    int `json:"machines"`
	CoresPer    int `json:"cores_per_machine"`
	Parallelism int `json:"parallelism"` // effective worker count (NumCPU resolved)
	Days        int `json:"days"`
	// NsPerDay is wall-clock nanoseconds per simulated day.
	NsPerDay int64 `json:"ns_per_day"`
	// AllocsPerDay and BytesPerDay are heap allocation counts/bytes per
	// simulated day (runtime.MemStats deltas over the measured window).
	AllocsPerDay int64 `json:"allocs_per_day"`
	BytesPerDay  int64 `json:"bytes_per_day"`
}

// BenchRun is one invocation of the harness.
type BenchRun struct {
	Label      string              `json:"label"`
	UTC        string              `json:"utc"`
	GoVersion  string              `json:"go"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Configs    []BenchConfigResult `json:"configs"`
}

// BenchFile is the BENCH_fleetsim.json schema: a named benchmark plus the
// append-only trajectory of runs.
type BenchFile struct {
	Benchmark string     `json:"benchmark"`
	Units     BenchUnits `json:"units"`
	Runs      []BenchRun `json:"runs"`
}

// BenchUnits documents the measurement units inline, so the file is
// self-describing for dashboards and the CI schema check.
type BenchUnits struct {
	NsPerDay     string `json:"ns_per_day"`
	AllocsPerDay string `json:"allocs_per_day"`
	BytesPerDay  string `json:"bytes_per_day"`
}

const benchName = "fleetsim-day-loop"

func defaultUnits() BenchUnits {
	return BenchUnits{
		NsPerDay:     "wall-clock nanoseconds per simulated day (fleet build and warm-up excluded)",
		AllocsPerDay: "heap allocations per simulated day",
		BytesPerDay:  "heap bytes allocated per simulated day",
	}
}

// parseIntList parses "1000,10000,100000" into ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad value %q (want a non-negative integer)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// benchFleetConfig scales the calibrated default config to the given fleet
// size. Everything else — defect density, screening budget, noise — keeps
// the paper-calibrated defaults so the measured day is a representative
// production day, not a synthetic idle one.
func benchFleetConfig(machines int) fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Machines = machines
	cfg.Seed = 7
	return cfg
}

// measureDayLoop runs one matrix cell: build the fleet, warm one day, then
// time `days` Steps with MemStats deltas around the measured window.
func measureDayLoop(machines, parallelism, days int) (BenchConfigResult, error) {
	cfg := benchFleetConfig(machines)
	r, err := fleet.NewRunner(cfg, fleet.WithParallelism(parallelism))
	if err != nil {
		return BenchConfigResult{}, err
	}
	r.Step() // warm-up day, not measured

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < days; i++ {
		r.Step()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	return BenchConfigResult{
		Machines:     machines,
		CoresPer:     cfg.CoresPerMachine,
		Parallelism:  r.Parallelism(),
		Days:         days,
		NsPerDay:     elapsed.Nanoseconds() / int64(days),
		AllocsPerDay: int64(after.Mallocs-before.Mallocs) / int64(days),
		BytesPerDay:  int64(after.TotalAlloc-before.TotalAlloc) / int64(days),
	}, nil
}

// loadBenchFile reads an existing trajectory, or returns a fresh one. A
// file with the wrong benchmark name is an error, not an overwrite — the
// trajectory is append-only history.
func loadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchFile{Benchmark: benchName, Units: defaultUnits()}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: not a valid bench file: %v", path, err)
	}
	if bf.Benchmark != benchName {
		return nil, fmt.Errorf("%s: benchmark %q, want %q", path, bf.Benchmark, benchName)
	}
	bf.Units = defaultUnits()
	return &bf, nil
}

func cmdBench(args []string) int {
	fs := flag.NewFlagSet("fleetsim bench", flag.ContinueOnError)
	machinesFlag := fs.String("machines", "1000,10000,100000", "comma-separated fleet sizes")
	parFlag := fs.String("parallelism", "1,4,0", "comma-separated worker counts (0 = NumCPU)")
	days := fs.Int("days", 20, "simulated days per matrix cell (after one warm-up day)")
	out := fs.String("out", "BENCH_fleetsim.json", "trajectory file to append to ('-' prints without writing)")
	label := fs.String("label", "", "label for this run (default: utc timestamp)")
	quick := fs.Bool("quick", false, "CI smoke mode: 1k machines only, parallelism 1 and NumCPU, 3 days")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fleetsim bench [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim bench: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *days <= 0 {
		fmt.Fprintf(os.Stderr, "fleetsim bench: -days must be positive, got %d\n", *days)
		return 2
	}
	machines, err := parseIntList(*machinesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim bench: -machines: %v\n", err)
		return 2
	}
	pars, err := parseIntList(*parFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim bench: -parallelism: %v\n", err)
		return 2
	}
	if *quick {
		machines = []int{1000}
		pars = []int{1, 0}
		*days = 3
	}
	sort.Ints(machines)

	run := BenchRun{
		Label:      *label,
		UTC:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if run.Label == "" {
		run.Label = run.UTC
	}

	// Effective worker counts can collide (e.g. NumCPU == 1 on a small
	// host); measure each effective count once but keep the requested
	// matrix shape in the log line.
	for _, m := range machines {
		seen := map[int]bool{}
		for _, p := range pars {
			eff := p
			if eff <= 0 {
				eff = runtime.GOMAXPROCS(0)
			}
			if seen[eff] {
				continue
			}
			seen[eff] = true
			fmt.Fprintf(os.Stderr, "bench: machines=%d parallelism=%d days=%d ... ", m, eff, *days)
			res, err := measureDayLoop(m, eff, *days)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\nfleetsim bench: %v\n", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "%.3f ms/day, %d allocs/day\n",
				float64(res.NsPerDay)/1e6, res.AllocsPerDay)
			run.Configs = append(run.Configs, res)
		}
	}

	if *out == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(run)
		return 0
	}
	bf, err := loadBenchFile(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim bench: %v\n", err)
		return 1
	}
	bf.Runs = append(bf.Runs, run)
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim bench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim bench: %v\n", err)
		return 1
	}
	fmt.Printf("bench: %d config(s) appended to %s (label %q)\n", len(run.Configs), *out, run.Label)
	return 0
}
