package main

// fleetsim kvbench: the serving-path load generator behind BENCH_kvdb.json.
// It drives concurrent Get/Put/QueryByValue traffic at a TolerantDB whose
// replica set includes cores with injected deterministic defects, and runs
// the same workload twice — once against the historical single-mutex
// serving discipline (TolerantConfig.SingleLock) and once against the
// sharded store — so the file records the sharded layer's throughput
// multiple and tail-latency behaviour under real mitigation load
// (checksum failures, different-replica retries with nonzero backoff,
// suspect-signal emission).
//
// The workload is closed-loop by default (-workers goroutines, each
// issuing its next operation as soon as the previous one returns) and
// open-loop with -qps: operations are placed on a fixed schedule and
// latency is measured from the scheduled start, so queueing delay counts
// against the store (no coordinated omission).
//
// Three things are checked beyond speed, because a fast wrong store is
// worthless:
//   - correctness: every read must return a committed value for its key
//     (checked against the value layout) — corrupt bytes must never
//     escape to the client;
//   - reader isolation: an "ok" read (one that needed no mitigation of
//     its own) must not stall behind another read's backoff sleep. Ok
//     reads at or above the backoff delay are counted as stalls; the
//     sharded store must record zero.
//   - detection coverage: every defective core must produce at least one
//     suspect signal (ground truth from fault.Core.OnCorrupt).

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kvdb"
	"repro/internal/obs"
	"repro/internal/xrand"
)

const kvBenchName = "kvdb-serving"

// KVBenchConfigResult is one measured (mode, workload) cell.
type KVBenchConfigResult struct {
	Mode      string `json:"mode"` // "single-lock" | "sharded"
	Workers   int    `json:"workers"`
	QPS       int    `json:"qps"` // 0 = closed loop
	Replicas  int    `json:"replicas"`
	Defective int    `json:"defective"`
	Rows      int    `json:"rows"`
	Ops       int    `json:"ops"` // total operations issued
	ReadPct   int    `json:"read_pct"`
	QueryPct  int    `json:"query_pct"`
	BackoffNs int64  `json:"backoff_ns"`

	ElapsedNs int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`

	// Read latency quantiles by disposition, nanoseconds. "Ok" reads
	// needed no mitigation; "mitigated" reads retried, repaired, or were
	// served degraded.
	ReadOkP50Ns        int64 `json:"read_ok_p50_ns"`
	ReadOkP99Ns        int64 `json:"read_ok_p99_ns"`
	ReadOkP999Ns       int64 `json:"read_ok_p999_ns"`
	ReadMitigatedP99Ns int64 `json:"read_mitigated_p99_ns"`

	// OkReadStalls counts ok reads that took at least the configured
	// backoff — readers stalled behind someone else's mitigation.
	OkReadStalls int `json:"ok_read_stalls"`

	// Serving-layer accounting for the measured window.
	Reads            int `json:"reads"`
	Writes           int `json:"writes"`
	IndexQueries     int `json:"index_queries"`
	Retries          int `json:"retries"`
	RecoveredByRetry int `json:"recovered_by_retry"`
	Repairs          int `json:"repairs"`
	Errors           int `json:"errors"`
	ValueMismatches  int `json:"value_mismatches"`

	// Detection coverage under load: signals delivered, ground-truth
	// corruptions (fault.Core counters), and the fraction of defective
	// cores that produced at least one suspect signal.
	SignalsSent       int     `json:"signals_sent"`
	Corruptions       int64   `json:"corruptions"`
	DefectiveCores    int     `json:"defective_cores"`
	DetectedCores     int     `json:"detected_cores"`
	DetectionCoverage float64 `json:"detection_coverage"`
}

// KVBenchRun is one invocation: the single-lock/sharded pair plus the
// headline multiple.
type KVBenchRun struct {
	Label      string                `json:"label"`
	UTC        string                `json:"utc"`
	GoVersion  string                `json:"go"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Configs    []KVBenchConfigResult `json:"configs"`
	// Speedup is sharded ops/sec over single-lock ops/sec for the same
	// workload.
	Speedup float64 `json:"speedup"`
}

// KVBenchFile is the BENCH_kvdb.json schema: a named benchmark plus the
// append-only trajectory of runs, mirroring BENCH_fleetsim.json.
type KVBenchFile struct {
	Benchmark string       `json:"benchmark"`
	Units     KVBenchUnits `json:"units"`
	Runs      []KVBenchRun `json:"runs"`
}

// KVBenchUnits documents the measurement units inline.
type KVBenchUnits struct {
	OpsPerSec         string `json:"ops_per_sec"`
	ReadLatency       string `json:"read_latency"`
	OkReadStalls      string `json:"ok_read_stalls"`
	DetectionCoverage string `json:"detection_coverage"`
	Speedup           string `json:"speedup"`
}

func kvDefaultUnits() KVBenchUnits {
	return KVBenchUnits{
		OpsPerSec:         "operations completed per wall-clock second (measured window, warm-up excluded)",
		ReadLatency:       "nanoseconds; quantiles estimated from a 1µs-to-8s geometric histogram; open-loop (-qps) latency is measured from the scheduled start",
		OkReadStalls:      "reads that needed no mitigation of their own yet took >= the configured backoff (stalled behind another read's sleep)",
		DetectionCoverage: "fraction of defective cores that produced at least one suspect signal during the measured window",
		Speedup:           "sharded ops_per_sec / single-lock ops_per_sec for the identical workload",
	}
}

// kvValueBytes is the fixed record size. Values carry the key and a
// version so readers can verify any returned value is a committed write
// for the right row, then 0xFF padding so the injected stuck-at-0 bit
// corrupts every record the defective core copies.
const kvValueBytes = 64

func kvKey(i int) string { return "row" + strconv.Itoa(i) }

func kvValue(key string, version int) []byte {
	v := make([]byte, kvValueBytes)
	n := copy(v, key)
	n += copy(v[n:], "=")
	n += copy(v[n:], strconv.Itoa(version))
	n += copy(v[n:], "\xff")
	for i := n; i < kvValueBytes; i++ {
		v[i] = 0xFF
	}
	return v
}

// kvValueOK verifies a read result is a committed value for key (any
// version): right size, right key prefix, intact padding.
func kvValueOK(key string, v []byte) bool {
	if len(v) != kvValueBytes {
		return false
	}
	if !bytes.HasPrefix(v, []byte(key+"=")) {
		return false
	}
	return v[len(v)-1] == 0xFF
}

// kvSignalCount is a concurrency-safe sink counting signals per core.
type kvSignalCount struct {
	mu    sync.Mutex
	total int
	byRef map[string]int
}

func (c *kvSignalCount) sink(sig detect.Signal) error {
	c.mu.Lock()
	c.total++
	c.byRef[fmt.Sprintf("%s/%d", sig.Machine, sig.Core)]++
	c.mu.Unlock()
	return nil
}

// kvWorkload is the parameter block one measured cell runs under.
type kvWorkload struct {
	workers, qps, opsPerWorker int
	replicas, defective, rows  int
	readPct, queryPct          int
	backoff                    time.Duration
	singleLock                 bool
}

// kvBuildStore assembles a fresh replicated store for one cell: replica i
// serves from core i of a synthetic machine, and the first `defective`
// replicas get a deterministic stuck-at-0 bit in their copy path — the
// fail-silent wrong-answer core of §3, guaranteed to corrupt every record
// it stores (the 0xFF padding carries the stuck bit).
func kvBuildStore(w kvWorkload, counts *kvSignalCount) (*kvdb.TolerantDB, []*fault.Core, error) {
	defect := fault.Defect{
		ID: "kvbench-stuck", Unit: fault.UnitVec, Deterministic: true,
		Kind: fault.CorruptStuckBit, BitPos: 3, StuckVal: 0,
	}
	replicas := make([]*kvdb.Replica, w.replicas)
	cores := make([]*fault.Core, w.replicas)
	for i := 0; i < w.replicas; i++ {
		var defs []fault.Defect
		if i < w.defective {
			defs = append(defs, defect)
		}
		core := fault.NewCore(fmt.Sprintf("bench/%d", i), xrand.New(uint64(1000+i)), defs...)
		cores[i] = core
		replicas[i] = kvdb.NewReplica(fmt.Sprintf("r%d", i), engine.New(core)).
			Locate("bench", i)
	}
	db, err := kvdb.New(replicas...)
	if err != nil {
		return nil, nil, err
	}
	tdb := kvdb.NewTolerant(db, kvdb.TolerantConfig{
		RetryBackoff: w.backoff,
		Sink:         counts.sink,
		SingleLock:   w.singleLock,
	})
	return tdb, cores, nil
}

// kvRunCell executes one measured cell: build, preload, run the worker
// pool, reconcile.
func kvRunCell(w kvWorkload) (KVBenchConfigResult, error) {
	counts := &kvSignalCount{byRef: map[string]int{}}
	tdb, cores, err := kvBuildStore(w, counts)
	if err != nil {
		return KVBenchConfigResult{}, err
	}
	// Ground-truth corruption counters: one per core, atomically bumped
	// (a core only runs under its replica's engine mutex, but the main
	// goroutine reads them after the pool joins — atomics keep the bench
	// race-clean under -race).
	corrupt := make([]int64, len(cores))
	for i, c := range cores {
		i := i
		c.OnCorrupt = func(fault.CorruptionEvent) { atomic.AddInt64(&corrupt[i], 1) }
	}

	// Preload every row (through the tolerant layer, so the defective
	// replica's copies are already corrupt when the measured window
	// opens), then discard the warm-up accounting.
	for i := 0; i < w.rows; i++ {
		tdb.Put(kvKey(i), kvValue(kvKey(i), 0))
	}
	warm := tdb.Stats()
	warmSignals := func() int { counts.mu.Lock(); defer counts.mu.Unlock(); return counts.total }()
	var warmCorrupt int64
	for i := range corrupt {
		warmCorrupt += atomic.LoadInt64(&corrupt[i])
	}

	reg := obs.NewRegistry()
	latOK := reg.HistogramBuckets("kvbench_read_ok_seconds", obs.DefLatencyBuckets)
	latMit := reg.HistogramBuckets("kvbench_read_mitigated_seconds", obs.DefLatencyBuckets)
	var okStalls, mismatches, issued atomic.Int64

	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < w.workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := xrand.New(uint64(7700 + wk))
			// Open-loop pacing: this worker owns every w.workers-th slot
			// of the global schedule.
			var period time.Duration
			if w.qps > 0 {
				period = time.Duration(int64(time.Second) * int64(w.workers) / int64(w.qps))
			}
			version := 1
			for i := 0; i < w.opsPerWorker; i++ {
				opStart := time.Now()
				if period > 0 {
					sched := start.Add(time.Duration(i) * period)
					if d := time.Until(sched); d > 0 {
						time.Sleep(d)
						opStart = time.Now()
					} else {
						opStart = sched // behind schedule: queueing delay counts
					}
				}
				key := kvKey(rng.Intn(w.rows))
				r := rng.Intn(100)
				switch {
				case r < w.readPct:
					v, info, err := tdb.GetTraced(key)
					lat := time.Since(opStart)
					// Client-visible errors are reconciled from Stats()
					// afterwards; per-op we only vet returned bytes.
					if err == nil && !kvValueOK(key, v) {
						mismatches.Add(1)
					}
					if info.Result == "ok" {
						latOK.Observe(lat.Seconds())
						if w.backoff > 0 && lat >= w.backoff {
							okStalls.Add(1)
						}
					} else {
						latMit.Observe(lat.Seconds())
					}
				case r < w.readPct+w.queryPct:
					tdb.QueryByValue(kvValue(key, 0))
				default:
					tdb.Put(key, kvValue(key, version))
					version++
				}
				issued.Add(1)
			}
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	tdb.Close()

	st := tdb.Stats()
	res := KVBenchConfigResult{
		Mode:      "sharded",
		Workers:   w.workers,
		QPS:       w.qps,
		Replicas:  w.replicas,
		Defective: w.defective,
		Rows:      w.rows,
		Ops:       int(issued.Load()),
		ReadPct:   w.readPct,
		QueryPct:  w.queryPct,
		BackoffNs: w.backoff.Nanoseconds(),

		ElapsedNs: elapsed.Nanoseconds(),
		OpsPerSec: float64(issued.Load()) / elapsed.Seconds(),

		ReadOkP50Ns:        int64(latOK.Quantile(0.50) * 1e9),
		ReadOkP99Ns:        int64(latOK.Quantile(0.99) * 1e9),
		ReadOkP999Ns:       int64(latOK.Quantile(0.999) * 1e9),
		ReadMitigatedP99Ns: int64(latMit.Quantile(0.99) * 1e9),
		OkReadStalls:       int(okStalls.Load()),

		Reads:            st.Reads - warm.Reads,
		Writes:           st.Writes - warm.Writes,
		IndexQueries:     st.IndexQueries - warm.IndexQueries,
		Retries:          st.Retries - warm.Retries,
		RecoveredByRetry: st.RecoveredByRetry - warm.RecoveredByRetry,
		Repairs:          st.Repairs - warm.Repairs,
		Errors:           st.Errors - warm.Errors,
		ValueMismatches:  int(mismatches.Load()),
	}
	if w.singleLock {
		res.Mode = "single-lock"
	}

	counts.mu.Lock()
	res.SignalsSent = counts.total - warmSignals
	for i, c := range cores {
		if !c.Healthy() {
			res.DefectiveCores++
			if counts.byRef[fmt.Sprintf("bench/%d", i)] > 0 {
				res.DetectedCores++
			}
		}
	}
	counts.mu.Unlock()
	if res.DefectiveCores > 0 {
		res.DetectionCoverage = float64(res.DetectedCores) / float64(res.DefectiveCores)
	}
	var totalCorrupt int64
	for i := range corrupt {
		totalCorrupt += atomic.LoadInt64(&corrupt[i])
	}
	res.Corruptions = totalCorrupt - warmCorrupt
	return res, nil
}

// kvLoadBenchFile reads an existing BENCH_kvdb.json trajectory, or returns
// a fresh one. A file with the wrong benchmark name is an error, not an
// overwrite.
func kvLoadBenchFile(path string) (*KVBenchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &KVBenchFile{Benchmark: kvBenchName, Units: kvDefaultUnits()}, nil
	}
	if err != nil {
		return nil, err
	}
	var bf KVBenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: not a valid bench file: %v", path, err)
	}
	if bf.Benchmark != kvBenchName {
		return nil, fmt.Errorf("%s: benchmark %q, want %q", path, bf.Benchmark, kvBenchName)
	}
	bf.Units = kvDefaultUnits()
	return &bf, nil
}

func cmdKVBench(args []string) int {
	fs := flag.NewFlagSet("fleetsim kvbench", flag.ContinueOnError)
	workers := fs.Int("workers", 8, "concurrent client goroutines")
	qps := fs.Int("qps", 0, "open-loop target ops/sec across all workers (0 = closed loop)")
	ops := fs.Int("ops", 3000, "operations per worker in the measured window")
	replicas := fs.Int("replicas", 5, "replicas in the store")
	defective := fs.Int("defective", 1, "replicas served by a defective core")
	rows := fs.Int("rows", 512, "distinct keys in the working set")
	readPct := fs.Int("read", 90, "percentage of operations that are reads")
	queryPct := fs.Int("query", 2, "percentage of operations that are index queries (rest are writes)")
	backoff := fs.Duration("backoff", time.Millisecond, "first-retry backoff (doubled per retry)")
	out := fs.String("out", "BENCH_kvdb.json", "trajectory file to append to ('-' prints without writing)")
	label := fs.String("label", "", "label for this run (default: utc timestamp)")
	quick := fs.Bool("quick", false, "CI smoke mode: 4 workers, 300 ops/worker, 3 replicas, 128 rows, 200µs backoff")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fleetsim kvbench [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *quick {
		*workers, *ops, *replicas, *rows = 4, 300, 3, 128
		*backoff = 200 * time.Microsecond
	}
	switch {
	case *workers <= 0:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -workers must be positive, got %d\n", *workers)
		return 2
	case *ops <= 0:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -ops must be positive, got %d\n", *ops)
		return 2
	case *replicas < 1:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -replicas must be >= 1, got %d\n", *replicas)
		return 2
	case *defective < 0 || *defective >= *replicas:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -defective must be in [0, replicas), got %d\n", *defective)
		return 2
	case *rows <= 0:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -rows must be positive, got %d\n", *rows)
		return 2
	case *readPct < 0 || *queryPct < 0 || *readPct+*queryPct > 100:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -read + -query must fit in 100%%\n")
		return 2
	case *qps < 0:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -qps must be >= 0, got %d\n", *qps)
		return 2
	case *backoff < 0:
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: -backoff must be >= 0\n")
		return 2
	}

	run := KVBenchRun{
		Label:      *label,
		UTC:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if run.Label == "" {
		run.Label = run.UTC
	}

	base := kvWorkload{
		workers: *workers, qps: *qps, opsPerWorker: *ops,
		replicas: *replicas, defective: *defective, rows: *rows,
		readPct: *readPct, queryPct: *queryPct, backoff: *backoff,
	}
	for _, single := range []bool{true, false} {
		w := base
		w.singleLock = single
		mode := "sharded"
		if single {
			mode = "single-lock"
		}
		fmt.Fprintf(os.Stderr, "kvbench: mode=%s workers=%d ops=%d replicas=%d defective=%d backoff=%s ... ",
			mode, w.workers, w.workers*w.opsPerWorker, w.replicas, w.defective, w.backoff)
		res, err := kvRunCell(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\nfleetsim kvbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%.0f ops/s, ok-read p99 %s, %d stalls, coverage %.2f\n",
			res.OpsPerSec, time.Duration(res.ReadOkP99Ns), res.OkReadStalls, res.DetectionCoverage)
		if res.ValueMismatches > 0 {
			fmt.Fprintf(os.Stderr, "fleetsim kvbench: CORRECTNESS FAILURE: %d reads returned non-committed values\n",
				res.ValueMismatches)
			return 1
		}
		run.Configs = append(run.Configs, res)
	}
	if run.Configs[0].OpsPerSec > 0 {
		run.Speedup = run.Configs[1].OpsPerSec / run.Configs[0].OpsPerSec
	}
	fmt.Fprintf(os.Stderr, "kvbench: sharded/single-lock speedup %.2fx\n", run.Speedup)

	if *out == "-" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(run)
		return 0
	}
	bf, err := kvLoadBenchFile(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: %v\n", err)
		return 1
	}
	bf.Runs = append(bf.Runs, run)
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim kvbench: %v\n", err)
		return 1
	}
	fmt.Printf("kvbench: %d config(s) appended to %s (label %q, speedup %.2fx)\n",
		len(run.Configs), *out, run.Label, run.Speedup)
	return 0
}
