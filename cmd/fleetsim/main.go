// Command fleetsim regenerates the paper's figure and per-claim
// experiments from the fleet simulator.
//
// Usage:
//
//	fleetsim -experiment F1          # one experiment (F1, E1..E14)
//	fleetsim -experiment all         # everything, in order
//	fleetsim -experiment all -scale full
//	fleetsim -parallelism 1          # force the serial reference path
//	fleetsim -trace trace.jsonl      # one traced run: CEE lifecycle JSONL
//	fleetsim -trace t.jsonl -metrics m.prom -days 90
//
// Output is the text tables recorded in EXPERIMENTS.md. Every experiment
// is bit-identical at any -parallelism; the flag only trades wall-clock
// time for cores.
//
// With -trace (and/or -metrics), fleetsim runs a single instrumented
// simulation instead of the experiment registry: the CEE lifecycle trace
// (defect activation → first signal → suspect nomination → quarantine →
// repair/confession) is written as JSONL to the -trace file, a Prometheus
// text snapshot of the run's metrics to the -metrics file ("-" means
// stdout), and the detection report derived purely from the trace is
// cross-checked against ground truth before the summary prints. The trace
// too is bit-identical at any -parallelism.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (F1, E1..E14) or 'all'")
	scale := flag.String("scale", "small", "small | full")
	par := flag.Int("parallelism", 0, "fleet simulation workers (0 = GOMAXPROCS)")
	tracePath := flag.String("trace", "", "write a CEE lifecycle trace (JSONL) to this file (traced-run mode)")
	metricsPath := flag.String("metrics", "", "write a Prometheus text metrics snapshot to this file, '-' for stdout (traced-run mode)")
	days := flag.Int("days", 45, "days to simulate in traced-run mode")
	kvStores := flag.Int("kvstores", 0, "tolerant kvdb stores to serve during traced-run mode (0 disables)")
	taskRun := flag.Int("taskrun", 0, "checkpoint/retry tasks to run per day during traced-run mode (0 disables)")
	flag.Parse()

	// Reject nonsense before it silently misbehaves (a negative
	// parallelism used to fall through to the worker pool; 0 = auto).
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -parallelism must be >= 1 (or 0 for GOMAXPROCS), got %d\n", *par)
		os.Exit(2)
	}
	if *days <= 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -days must be positive, got %d\n", *days)
		os.Exit(2)
	}
	if *kvStores < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -kvstores must be >= 0, got %d\n", *kvStores)
		os.Exit(2)
	}
	if *taskRun < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -taskrun must be >= 0, got %d\n", *taskRun)
		os.Exit(2)
	}

	fleet.SetDefaultParallelism(*par)

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.Small
	case "full":
		s = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	if *tracePath != "" || *metricsPath != "" {
		if err := runTraced(s, *par, *days, *kvStores, *taskRun, *tracePath, *metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *kvStores > 0 {
		fmt.Fprintln(os.Stderr, "fleetsim: -kvstores needs traced-run mode (use -trace and/or -metrics)")
		os.Exit(2)
	}
	if *taskRun > 0 {
		fmt.Fprintln(os.Stderr, "fleetsim: -taskrun needs traced-run mode (use -trace and/or -metrics)")
		os.Exit(2)
	}

	ids := []string{strings.ToUpper(*exp)}
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fleetsim: unknown experiment %q (have %v)\n",
				id, experiments.IDs())
			os.Exit(2)
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Print(run(s))
		fmt.Println()
	}
}

// runTraced performs one instrumented fleet run at the given scale and
// dumps the requested observability artifacts.
func runTraced(s experiments.Scale, par, days, kvStores, taskRun int, tracePath, metricsPath string) error {
	if days <= 0 {
		return fmt.Errorf("days must be positive, got %d", days)
	}
	cfg := experiments.FleetConfig(s)
	if kvStores > 0 {
		cfg.KVDB.Stores = kvStores
	}
	if taskRun > 0 {
		cfg.TaskRun.Tasks = taskRun
	}
	opts := []fleet.RunnerOption{fleet.WithParallelism(par)}
	var tr *obs.Trace
	if tracePath != "" {
		tr = obs.NewTrace()
		opts = append(opts, fleet.WithTrace(tr))
	}
	var reg *obs.Registry
	if metricsPath != "" {
		reg = obs.NewRegistry()
		opts = append(opts, fleet.WithMetrics(reg))
	}
	r, err := fleet.NewRunner(cfg, opts...)
	if err != nil {
		return err
	}
	series := r.Run(days)
	if kvStores > 0 {
		var reads, retries, repairs, degraded, errs int
		for _, d := range series {
			reads += d.KVReads
			retries += d.KVRetries
			repairs += d.KVRepairs
			degraded += d.KVDegraded
			errs += d.KVErrors
		}
		fmt.Printf("kvdb: %d stores served %d reads: %d retries, %d repairs, %d degraded, %d client errors\n",
			kvStores, reads, retries, repairs, degraded, errs)
	}
	if taskRun > 0 {
		var granules, retries, migrations, restores, sigs, failures int
		for _, d := range series {
			granules += d.TRGranules
			retries += d.TRRetries
			migrations += d.TRMigrations
			restores += d.TRRestores
			sigs += d.TRSignals
			failures += d.TRFailures
		}
		fmt.Printf("taskrun: %d tasks/day committed %d granules: %d retries, %d restores, %d migrations, %d signals, %d failed tasks\n",
			taskRun, granules, retries, restores, migrations, sigs, failures)
	}

	if tr != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", tr.Len(), tracePath)
	}
	if reg != nil {
		out := os.Stdout
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := reg.WritePrometheus(out); err != nil {
			return err
		}
		if metricsPath != "-" {
			fmt.Printf("metrics: -> %s\n", metricsPath)
		}
	}

	rep := metrics.Detection(r.Fleet(), days)
	fmt.Printf("run: %d days, %d defective cores (%d past onset), %d quarantined (TP %d / FP %d), detected fraction %.3f\n",
		days, rep.TotalDefective, rep.PastOnset, rep.Quarantined,
		rep.TruePositive, rep.FalsePositive, rep.DetectedFraction())
	if tr != nil {
		fromTrace, err := metrics.DetectionFromTrace(tr.Events(), days)
		if err != nil {
			return fmt.Errorf("trace self-check: %w", err)
		}
		if fmt.Sprintf("%+v", fromTrace) != fmt.Sprintf("%+v", rep) {
			return fmt.Errorf("trace self-check failed: trace-derived report %+v != ground truth %+v",
				fromTrace, rep)
		}
		fmt.Println("trace self-check: detection report derived from trace matches ground truth")
	}
	return nil
}
