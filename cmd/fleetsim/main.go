// Command fleetsim drives the fleet simulator through subcommands:
//
//	fleetsim run scenarios/quickstart.yaml     # run a scenario, check its assertions
//	fleetsim run -trace t.jsonl -metrics m.prom scenarios/kv-under-load.yaml
//	fleetsim validate scenarios/*.yaml         # schema-check without running
//	fleetsim experiments -experiment F1        # the paper's experiment registry
//	fleetsim experiments -experiment all -scale full
//	fleetsim experiments -trace t.jsonl -days 90
//
// A scenario file (see scenarios/ and DESIGN.md §10) declares the fleet,
// a timeline of events (defect injection, drains, operating-point
// changes, workload phases), and end-state assertions; run executes it
// and exits non-zero when an assertion fails, which is what makes the
// scenario corpus a regression suite. Every run is bit-identical at any
// -parallelism.
//
// For compatibility, invoking fleetsim with a leading flag instead of a
// subcommand ("fleetsim -experiment E5") is routed to experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scenario"
)

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: fleetsim <command> [flags] [args]

Commands:
  run <scenario.yaml>      run one scenario and check its assertions
  validate <file>...       parse and schema-check scenario files
  experiments [flags]      run the paper's experiment registry (legacy flags)
  bench [flags]            benchmark the day loop, append BENCH_fleetsim.json
  kvbench [flags]          load-test tolerant kv serving, append BENCH_kvdb.json
  chaos [-quick]           fault-inject the control plane, check its invariants
  help                     show this message

Run 'fleetsim <command> -h' for the command's flags. Invoking fleetsim
with flags and no command ('fleetsim -experiment F1') is routed to
'experiments' for backwards compatibility.
`)
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage(os.Stderr)
		os.Exit(2)
	}
	// Legacy compatibility: a flag pile with no subcommand is the old CLI.
	if strings.HasPrefix(args[0], "-") && args[0] != "-h" && args[0] != "--help" {
		os.Exit(cmdExperiments(args))
	}
	switch args[0] {
	case "run":
		os.Exit(cmdRun(args[1:]))
	case "validate":
		os.Exit(cmdValidate(args[1:]))
	case "experiments":
		os.Exit(cmdExperiments(args[1:]))
	case "bench":
		os.Exit(cmdBench(args[1:]))
	case "kvbench":
		os.Exit(cmdKVBench(args[1:]))
	case "chaos":
		os.Exit(cmdChaos(args[1:]))
	case "help", "-h", "--help":
		usage(os.Stdout)
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: unknown command %q\n\n", args[0])
		usage(os.Stderr)
		os.Exit(2)
	}
}

// outputs holds the pre-opened observability sinks. Output paths are
// opened (and thus permission-checked) BEFORE the simulation runs, so an
// unwritable path fails in milliseconds, not after minutes of simulation.
type outputs struct {
	traceFile     *os.File
	metricsFile   *os.File // nil means stdout when metricsWanted
	metricsWanted bool
}

// openOutputs fails fast on unwritable -trace/-metrics paths.
func openOutputs(tracePath, metricsPath string) (*outputs, error) {
	o := &outputs{}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, fmt.Errorf("cannot write -trace output: %v", err)
		}
		o.traceFile = f
	}
	if metricsPath != "" {
		o.metricsWanted = true
		if metricsPath != "-" {
			f, err := os.Create(metricsPath)
			if err != nil {
				if o.traceFile != nil {
					o.traceFile.Close()
				}
				return nil, fmt.Errorf("cannot write -metrics output: %v", err)
			}
			o.metricsFile = f
		}
	}
	return o, nil
}

// write dumps the collected artifacts and closes the files.
func (o *outputs) write(tr *obs.Trace, reg *obs.Registry, tracePath, metricsPath string) error {
	if o.traceFile != nil {
		if err := tr.WriteJSONL(o.traceFile); err != nil {
			o.traceFile.Close()
			return err
		}
		if err := o.traceFile.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", tr.Len(), tracePath)
	}
	if o.metricsWanted {
		out := os.Stdout
		if o.metricsFile != nil {
			out = o.metricsFile
			defer o.metricsFile.Close()
		}
		if err := reg.WritePrometheus(out); err != nil {
			return err
		}
		if o.metricsFile != nil {
			fmt.Printf("metrics: -> %s\n", metricsPath)
		}
	}
	return nil
}

// ---- fleetsim run ----

func cmdRun(args []string) int {
	fs := flag.NewFlagSet("fleetsim run", flag.ContinueOnError)
	par := fs.Int("parallelism", 0, "fleet simulation workers (0 = scenario's setting, then GOMAXPROCS)")
	tracePath := fs.String("trace", "", "write the CEE lifecycle trace (JSONL) to this file")
	metricsPath := fs.String("metrics", "", "write a Prometheus text metrics snapshot to this file, '-' for stdout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fleetsim run <scenario.yaml> [flags]")
		fs.PrintDefaults()
	}
	// Accept the scenario path before, between, or after flags: the Go
	// flag package stops at the first positional, so parse in rounds,
	// peeling off the single allowed positional each time.
	scenarioPath := ""
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		if scenarioPath != "" {
			fs.Usage()
			return 2
		}
		scenarioPath = fs.Arg(0)
		rest = fs.Args()[1:]
	}
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -parallelism must be >= 0, got %d\n", *par)
		return 2
	}
	if scenarioPath == "" {
		fs.Usage()
		return 2
	}
	s, err := scenario.Load(scenarioPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	out, err := openOutputs(*tracePath, *metricsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		return 2
	}

	opts := scenario.Options{Parallelism: *par, Metrics: obs.NewRegistry()}
	var tr *obs.Trace
	if *tracePath != "" {
		tr = obs.NewTrace()
		opts.Trace = tr
	}
	res, err := s.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		return 1
	}
	printSummary(s, res)
	if err := out.write(tr, opts.Metrics, *tracePath, *metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		return 1
	}
	if tr != nil {
		if err := traceSelfCheck(tr, res.Detection, s.Days); err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			return 1
		}
	}
	if fails := s.Check(res); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "FAIL %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "fleetsim: %s: %d assertion(s) failed\n", s.Name, len(fails))
		return 1
	}
	if !s.Assert.Empty() {
		fmt.Printf("assertions: all passed\n")
	}
	return 0
}

// printSummary prints the run's headline numbers.
func printSummary(s *scenario.Scenario, res *scenario.Result) {
	t := res.Totals()
	rep := res.Detection
	fmt.Printf("scenario %s: %d days, %d machines x %d cores\n",
		s.Name, s.Days, s.Fleet.Machines, s.Fleet.Cores)
	fmt.Printf("run: %d corruptions, %d auto reports, %d user reports, %d screen detections\n",
		t.Corruptions, t.AutoReports, t.UserReports, t.ScreenDetections)
	fmt.Printf("detection: %d defective cores (%d past onset), %d quarantined (TP %d / FP %d), detected fraction %.3f\n",
		rep.TotalDefective, rep.PastOnset, rep.Quarantined,
		rep.TruePositive, rep.FalsePositive, rep.DetectedFraction())
	if t.KVReads > 0 || t.KVErrors > 0 {
		fmt.Printf("kvdb: %d reads: %d retries, %d repairs, %d degraded, %d client errors\n",
			t.KVReads, t.KVRetries, t.KVRepairs, t.KVDegraded, t.KVErrors)
	}
	if t.TRGranules > 0 || t.TRFailures > 0 {
		fmt.Printf("taskrun: %d granules: %d retries, %d restores, %d migrations, %d signals, %d failed tasks\n",
			t.TRGranules, t.TRRetries, t.TRRestores, t.TRMigrations, t.TRSignals, t.TRFailures)
	}
}

// traceSelfCheck audits the trace stream: the detection report derived
// purely from the JSONL events must equal the live fleet's.
func traceSelfCheck(tr *obs.Trace, rep metrics.DetectionReport, days int) error {
	fromTrace, err := metrics.DetectionFromTrace(tr.Events(), days)
	if err != nil {
		return fmt.Errorf("trace self-check: %w", err)
	}
	if fmt.Sprintf("%+v", fromTrace) != fmt.Sprintf("%+v", rep) {
		return fmt.Errorf("trace self-check failed: trace-derived report %+v != ground truth %+v",
			fromTrace, rep)
	}
	fmt.Println("trace self-check: detection report derived from trace matches ground truth")
	return nil
}

// ---- fleetsim validate ----

func cmdValidate(args []string) int {
	fs := flag.NewFlagSet("fleetsim validate", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fleetsim validate <scenario.yaml>...")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	bad := 0
	for _, path := range fs.Args() {
		s, err := scenario.Load(path)
		if err != nil {
			bad++
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		fmt.Printf("ok\t%s\t(%s: %d days, %d events, %d assertions)\n",
			path, s.Name, s.Days, len(s.Events),
			len(s.Assert.Quantities)+len(s.Assert.QuarantinedCores)+
				len(s.Assert.NotQuarantinedCores)+len(s.Assert.Metrics))
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: %d of %d file(s) invalid\n", bad, fs.NArg())
		return 1
	}
	return 0
}

// ---- fleetsim experiments (the legacy CLI) ----

func cmdExperiments(args []string) int {
	fs := flag.NewFlagSet("fleetsim experiments", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "experiment id (F1, E1..E14) or 'all'")
	scale := fs.String("scale", "small", "small | full")
	par := fs.Int("parallelism", 0, "fleet simulation workers (0 = GOMAXPROCS)")
	tracePath := fs.String("trace", "", "write a CEE lifecycle trace (JSONL) to this file (traced-run mode)")
	metricsPath := fs.String("metrics", "", "write a Prometheus text metrics snapshot to this file, '-' for stdout (traced-run mode)")
	days := fs.Int("days", 45, "days to simulate in traced-run mode")
	kvStores := fs.Int("kvstores", 0, "tolerant kvdb stores to serve during traced-run mode (0 disables)")
	taskRun := fs.Int("taskrun", 0, "checkpoint/retry tasks to run per day during traced-run mode (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Reject nonsense before it silently misbehaves (a negative
	// parallelism used to fall through to the worker pool; 0 = auto).
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -parallelism must be >= 1 (or 0 for GOMAXPROCS), got %d\n", *par)
		return 2
	}
	if *days <= 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -days must be positive, got %d\n", *days)
		return 2
	}
	if *kvStores < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -kvstores must be >= 0, got %d\n", *kvStores)
		return 2
	}
	if *taskRun < 0 {
		fmt.Fprintf(os.Stderr, "fleetsim: -taskrun must be >= 0, got %d\n", *taskRun)
		return 2
	}

	fleet.SetDefaultParallelism(*par)

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.Small
	case "full":
		s = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: unknown scale %q\n", *scale)
		return 2
	}

	if *tracePath != "" || *metricsPath != "" {
		return runTraced(s, *par, *days, *kvStores, *taskRun, *tracePath, *metricsPath)
	}
	if *kvStores > 0 {
		fmt.Fprintln(os.Stderr, "fleetsim: -kvstores needs traced-run mode (use -trace and/or -metrics)")
		return 2
	}
	if *taskRun > 0 {
		fmt.Fprintln(os.Stderr, "fleetsim: -taskrun needs traced-run mode (use -trace and/or -metrics)")
		return 2
	}

	ids := []string{strings.ToUpper(*exp)}
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fleetsim: unknown experiment %q (have %v)\n",
				id, experiments.IDs())
			return 2
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Print(run(s))
		fmt.Println()
	}
	return 0
}

// runTraced performs one instrumented fleet run at the given scale. The
// legacy flag pile is lowered onto a generated scenario, so this mode and
// 'fleetsim run' share one execution path.
func runTraced(s experiments.Scale, par, days, kvStores, taskRun int, tracePath, metricsPath string) int {
	cfg := experiments.FleetConfig(s)
	if kvStores > 0 {
		cfg.KVDB.Stores = kvStores
	}
	if taskRun > 0 {
		cfg.TaskRun.Tasks = taskRun
	}
	sc := scenario.FromConfig("traced-run", cfg, days)

	out, err := openOutputs(tracePath, metricsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		return 2
	}

	opts := scenario.Options{Parallelism: par, Metrics: obs.NewRegistry()}
	var tr *obs.Trace
	if tracePath != "" {
		tr = obs.NewTrace()
		opts.Trace = tr
	}
	res, err := sc.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		return 1
	}

	t := res.Totals()
	if kvStores > 0 {
		fmt.Printf("kvdb: %d stores served %d reads: %d retries, %d repairs, %d degraded, %d client errors\n",
			kvStores, t.KVReads, t.KVRetries, t.KVRepairs, t.KVDegraded, t.KVErrors)
	}
	if taskRun > 0 {
		fmt.Printf("taskrun: %d tasks/day committed %d granules: %d retries, %d restores, %d migrations, %d signals, %d failed tasks\n",
			taskRun, t.TRGranules, t.TRRetries, t.TRRestores, t.TRMigrations, t.TRSignals, t.TRFailures)
	}
	if err := out.write(tr, opts.Metrics, tracePath, metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
		return 1
	}

	rep := res.Detection
	fmt.Printf("run: %d days, %d defective cores (%d past onset), %d quarantined (TP %d / FP %d), detected fraction %.3f\n",
		days, rep.TotalDefective, rep.PastOnset, rep.Quarantined,
		rep.TruePositive, rep.FalsePositive, rep.DetectedFraction())
	if tr != nil {
		if err := traceSelfCheck(tr, rep, days); err != nil {
			fmt.Fprintf(os.Stderr, "fleetsim: %v\n", err)
			return 1
		}
	}
	return 0
}
