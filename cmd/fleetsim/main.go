// Command fleetsim regenerates the paper's figure and per-claim
// experiments from the fleet simulator.
//
// Usage:
//
//	fleetsim -experiment F1          # one experiment (F1, E1..E14)
//	fleetsim -experiment all         # everything, in order
//	fleetsim -experiment all -scale full
//	fleetsim -parallelism 1          # force the serial reference path
//
// Output is the text tables recorded in EXPERIMENTS.md. Every experiment
// is bit-identical at any -parallelism; the flag only trades wall-clock
// time for cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/fleet"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (F1, E1..E14) or 'all'")
	scale := flag.String("scale", "small", "small | full")
	par := flag.Int("parallelism", 0, "fleet simulation workers (0 = GOMAXPROCS)")
	flag.Parse()

	fleet.SetDefaultParallelism(*par)

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.Small
	case "full":
		s = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "fleetsim: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := []string{strings.ToUpper(*exp)}
	if strings.EqualFold(*exp, "all") {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "fleetsim: unknown experiment %q (have %v)\n",
				id, experiments.IDs())
			os.Exit(2)
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Print(run(s))
		fmt.Println()
	}
}
