// fleetsim chaos: the control-plane chaos smoke. Four deterministic
// storms fault-inject the control plane's own infrastructure — the disk
// under the lifecycle WAL, the pool capacity gate, the admin API's
// network, and the webhook notifier's network — and assert the chaos
// invariants from DESIGN.md §14:
//
//  1. nothing acknowledged was lost: an operation that returned an error
//     left the ledger exactly as it was;
//  2. no pool ever dips below its capacity floor;
//  3. every deferred drain is eventually admitted;
//  4. a crash-recovered ledger replays to exactly the acknowledged prefix.
//
// All fault arming is counter-based (never probabilistic), so every run
// is bit-identical and a CI failure reproduces locally.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/lifecycle"
	"repro/internal/remediate"
	"repro/internal/report"
)

// chaosScale sizes the four storms.
type chaosScale struct {
	machines int // machines per storm
	rounds   int // WAL-storm transition rounds
	actions  int // network-storm admin actions
	events   int // webhook-storm notifications
}

func cmdChaos(args []string) int {
	fs := flag.NewFlagSet("fleetsim chaos", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "smaller storms (the CI smoke setting)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fleetsim chaos [-quick]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return 2
	}
	sc := chaosScale{machines: 48, rounds: 18, actions: 96, events: 128}
	if *quick {
		sc = chaosScale{machines: 16, rounds: 6, actions: 24, events: 32}
	}

	dir, err := os.MkdirTemp("", "fleetsim-chaos-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	storms := []struct {
		name string
		run  func(string, chaosScale) (string, error)
	}{
		{"wal storm", walStorm},
		{"pool storm", poolStorm},
		{"net storm", netStorm},
		{"webhook storm", webhookStorm},
	}
	for _, st := range storms {
		summary, err := st.run(dir, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: FAIL: %s: %v\n", st.name, err)
			return 1
		}
		fmt.Printf("chaos: %s: %s\n", st.name, summary)
	}
	fmt.Println("chaos: all invariants held")
	return 0
}

// chaosMachine names machine i in a storm's fleet.
func chaosMachine(i int) string { return fmt.Sprintf("m%03d", i) }

// walStorm hammers a WAL-backed ledger while the disk under it fails:
// outright write failures, torn writes, fsync failures, and a sticky
// full-disk window mid-storm. After the storm the ledger is reopened and
// must replay to exactly the live (acknowledged) state. A coda breaks the
// append rollback itself and proves the log goes read-only, not corrupt.
func walStorm(dir string, sc chaosScale) (string, error) {
	fsys := chaos.NewFS(nil)
	path := filepath.Join(dir, "wal-storm.wal")
	mgr, _, err := lifecycle.Open(path, lifecycle.Options{FS: fsys})
	if err != nil {
		return "", err
	}
	defer mgr.Close()

	ops, acked := 0, 0
	for round := 0; round < sc.rounds; round++ {
		// One round of sticky disk-full in the middle of the storm; every
		// write in it must fail and the health latch must report it.
		enospc := round == sc.rounds/2
		fsys.SetENOSPC(enospc)
		for i := 0; i < sc.machines; i++ {
			// Deterministic fault pattern: roughly one op in three runs
			// over a freshly armed disk fault.
			switch (round*sc.machines + i) % 7 {
			case 1:
				fsys.FailWrites(1)
			case 3:
				fsys.TornWrites(1)
			case 5:
				fsys.FailSyncs(1)
			}
			m := chaosMachine(i)
			before, beforeOK := mgr.State(m)
			var opErr error
			switch {
			case !beforeOK || before.State == lifecycle.Healthy:
				_, opErr = mgr.Cordon(m, round, "chaos", "storm")
			case before.State == lifecycle.Cordoned:
				_, opErr = mgr.Drain(m, round, "chaos", "storm")
			case before.State == lifecycle.Draining:
				_, opErr = mgr.MarkDrained(m, round, "storm")
			case before.State == lifecycle.Drained:
				_, opErr = mgr.StartRepair(m, round, "storm")
			case before.State == lifecycle.Repairing, before.State == lifecycle.Probation:
				_, opErr = mgr.Reintroduce(m, round, "chaos", "storm")
			default: // Removed recidivists stay removed.
				continue
			}
			ops++
			if opErr != nil {
				// Invariant 1: a failed operation left the record exactly
				// as it was (or never created one).
				after, afterOK := mgr.State(m)
				if beforeOK != afterOK || (beforeOK && before != after) {
					return "", fmt.Errorf("machine %s changed across failed op: %+v -> %+v (err %v)", m, before, after, opErr)
				}
				if enospc && mgr.WALHealth() == nil {
					return "", fmt.Errorf("WAL health not latched during disk-full window")
				}
				continue
			}
			acked++
		}
	}
	fsys.SetENOSPC(false)
	// Probe until an append lands on clean disk (faults armed during the
	// disk-full window can outlive it, since the full-disk failure fires
	// first); the first success must clear the health latch.
	cleared := false
	for i := 0; i < sc.machines && !cleared; i++ {
		if _, err := mgr.Cordon(fmt.Sprintf("latch-probe-%d", i), sc.rounds, "chaos", "storm"); err == nil {
			cleared = true
			if mgr.WALHealth() != nil {
				return "", fmt.Errorf("WAL health latch not cleared by successful append: %v", mgr.WALHealth())
			}
		}
	}
	if !cleared {
		return "", fmt.Errorf("no append succeeded after the storm cleared")
	}
	if fsys.Injected() == 0 {
		return "", fmt.Errorf("storm injected no faults — harness is miswired")
	}

	// Invariant 4: reopen on a clean disk; the replayed ledger must equal
	// the live one, record for record, deferred intent for intent.
	live := mgr.List()
	liveDef := mgr.DeferredDrains()
	if err := mgr.Close(); err != nil {
		return "", err
	}
	re, info, err := lifecycle.Open(path, lifecycle.Options{})
	if err != nil {
		return "", err
	}
	defer re.Close()
	if !reflect.DeepEqual(re.List(), live) || !reflect.DeepEqual(re.DeferredDrains(), liveDef) {
		return "", fmt.Errorf("replayed ledger differs from acked state (recovered %d records, %d torn bytes)", info.Records, info.TornBytes)
	}

	// Coda: break the rollback path itself. The log must refuse further
	// appends rather than corrupt, and still replay its acked prefix.
	if err := brokenLogCheck(dir); err != nil {
		return "", err
	}
	return fmt.Sprintf("%d ops (%d acked) through %d disk faults; replay matches acked prefix; broken-log refusal holds",
		ops, acked, fsys.Injected()), nil
}

// brokenLogCheck arms a torn write whose rollback truncate also fails:
// the WAL must latch broken, refuse all further appends, and the file
// must still replay to the acknowledged prefix.
func brokenLogCheck(dir string) error {
	fsys := chaos.NewFS(nil)
	path := filepath.Join(dir, "broken.wal")
	mgr, _, err := lifecycle.Open(path, lifecycle.Options{FS: fsys})
	if err != nil {
		return err
	}
	defer mgr.Close()
	if _, err := mgr.Cordon("b0", 0, "chaos", "storm"); err != nil {
		return fmt.Errorf("seed append failed: %v", err)
	}
	fsys.TornWrites(1)
	fsys.FailTruncates(1)
	if _, err := mgr.Cordon("b1", 1, "chaos", "storm"); err == nil {
		return fmt.Errorf("torn write with failed rollback was acked")
	}
	if _, err := mgr.Cordon("b2", 2, "chaos", "storm"); err == nil {
		return fmt.Errorf("broken log accepted a further append")
	}
	live := mgr.List()
	mgr.Close()
	re, info, err := lifecycle.Open(path, lifecycle.Options{})
	if err != nil {
		return fmt.Errorf("reopen of broken log: %v", err)
	}
	defer re.Close()
	if info.TornBytes == 0 {
		return fmt.Errorf("reopen saw no torn tail on the broken log")
	}
	if !reflect.DeepEqual(re.List(), live) {
		return fmt.Errorf("broken log replayed beyond its acked prefix")
	}
	return nil
}

// poolStorm drains an entire two-pool fleet at once. Requests that would
// breach a floor must park on the deferred queue (never refuse, never
// breach), and as repaired machines return every parked intent must be
// admitted — the queue ends empty with the floors intact throughout.
func poolStorm(dir string, sc chaosScale) (string, error) {
	path := filepath.Join(dir, "pool-storm.wal")
	mgr, _, err := lifecycle.Open(path, lifecycle.Options{})
	if err != nil {
		return "", err
	}
	defer mgr.Close()

	mgr.DefinePool(lifecycle.PoolConfig{Name: "prod", MinHealthy: 0.6})
	mgr.DefinePool(lifecycle.PoolConfig{Name: "web", MinHealthyCount: sc.machines / 8})
	for i := 0; i < sc.machines; i++ {
		pool := "prod"
		if i%2 == 1 {
			pool = "web"
		}
		if err := mgr.AssignPool(chaosMachine(i), pool); err != nil {
			return "", err
		}
	}
	checkFloors := func() error {
		// Invariant 2: no pool below its floor, checked after every op.
		for _, p := range mgr.Pools() {
			if p.Serving < p.Floor {
				return fmt.Errorf("pool %s at %d serving, floor %d", p.Name, p.Serving, p.Floor)
			}
		}
		return nil
	}

	deferred := 0
	for i := 0; i < sc.machines; i++ {
		score := float64((i * 37) % 100)
		_, err := mgr.DrainScored(chaosMachine(i), 0, "chaos", "storm", score)
		switch {
		case err == lifecycle.ErrDeferred:
			deferred++
		case err != nil:
			return "", err
		}
		if err := checkFloors(); err != nil {
			return "", err
		}
	}
	if deferred == 0 {
		return "", fmt.Errorf("no drain was deferred — floors are not gating")
	}

	// Repair loop: march every out-of-service machine back toward service.
	// Each return sweeps the deferred queue, draining the next victim, so
	// the queue must hit empty within a bounded number of passes.
	passes := 0
	for day := 1; len(mgr.DeferredDrains()) > 0 || outOfService(mgr) > 0; day++ {
		if passes++; passes > 6*sc.machines {
			return "", fmt.Errorf("deferred queue never drained: %d intents left after %d passes", len(mgr.DeferredDrains()), passes)
		}
		for _, r := range mgr.List() {
			var err error
			switch r.State {
			case lifecycle.Draining:
				_, err = mgr.MarkDrained(r.Machine, day, "storm")
			case lifecycle.Drained:
				_, err = mgr.StartRepair(r.Machine, day, "storm")
			case lifecycle.Repairing, lifecycle.Probation:
				_, err = mgr.Reintroduce(r.Machine, day, "repaired", "storm")
			}
			if err != nil {
				return "", err
			}
			if err := checkFloors(); err != nil {
				return "", err
			}
		}
	}
	// Invariant 3 held: the queue is empty and every machine is serving
	// again, so each of the deferred drains completed a full drain cycle.
	for _, r := range mgr.List() {
		if r.Transitions == 0 {
			return "", fmt.Errorf("machine %s never drained", r.Machine)
		}
	}
	return fmt.Sprintf("%d drains (%d deferred) with floors intact; queue drained in %d passes",
		sc.machines, deferred, passes), nil
}

// outOfService counts machines not currently serving traffic.
func outOfService(m *lifecycle.Manager) int {
	n := 0
	for st, c := range m.CountByState() {
		switch st {
		case lifecycle.Healthy, lifecycle.Suspect, lifecycle.Probation:
		default:
			n += c
		}
	}
	return n
}

// netStorm partitions the admin API from its operator: every cordon rides
// through a transport that drops, resets, or 503s the first try. The
// retrying client must land them all, and — the acked-implies-durable
// invariant — after a cold restart of the daemon's WAL every acked cordon
// must still be there.
func netStorm(dir string, sc chaosScale) (string, error) {
	path := filepath.Join(dir, "net-storm.wal")
	mgr, _, err := lifecycle.Open(path, lifecycle.Options{})
	if err != nil {
		return "", err
	}
	srv := report.NewServer(8)
	srv.SetLifecycle(mgr)
	ts := httptest.NewServer(srv.Handler())

	tr := chaos.NewTransport(nil)
	client := &report.Client{
		BaseURL:      ts.URL,
		HTTPClient:   &http.Client{Transport: tr},
		MaxAttempts:  6,
		RetryBackoff: time.Millisecond,
		JitterSeed:   7,
	}
	ctx := context.Background()
	acked := make([]string, 0, sc.actions)
	for i := 0; i < sc.actions; i++ {
		switch i % 4 {
		case 0:
			tr.Inject(chaos.Drop, 1)
		case 1:
			tr.Inject(chaos.HTTP503, 1)
		case 2:
			tr.Inject(chaos.Reset, 1)
		}
		m := chaosMachine(i)
		rec, err := client.MachineAction(ctx, m, "cordon", report.ActionRequest{Reason: "chaos", Actor: "storm", Day: i})
		if err != nil {
			return "", fmt.Errorf("cordon %s did not survive retry: %v", m, err)
		}
		if rec.State != "cordoned" {
			return "", fmt.Errorf("cordon %s acked state %q", m, rec.State)
		}
		acked = append(acked, m)
	}
	fired := 0
	for _, n := range tr.Fired() {
		fired += n
	}
	if fired == 0 {
		return "", fmt.Errorf("no network faults fired — harness is miswired")
	}
	if tr.Pending() != 0 {
		return "", fmt.Errorf("%d injected faults never consumed", tr.Pending())
	}

	// Cold restart: close everything, reopen the WAL, and check that each
	// acked cordon survived.
	ts.Close()
	srv.Close()
	if err := mgr.Close(); err != nil {
		return "", err
	}
	re, _, err := lifecycle.Open(path, lifecycle.Options{})
	if err != nil {
		return "", err
	}
	defer re.Close()
	for _, m := range acked {
		rec, ok := re.State(m)
		if !ok || rec.State != lifecycle.Cordoned {
			return "", fmt.Errorf("acked cordon of %s lost across restart (state %v)", m, rec.State)
		}
	}
	return fmt.Sprintf("%d/%d actions acked through %d network faults, all durable across restart",
		len(acked), sc.actions, fired), nil
}

// webhookStorm pushes notifications through a faulty network: most events
// face one or two injected faults (up to a drop AND a 503 back to back)
// before their POST gets through. Deliveries are synchronous here so each
// event's faults are consumed by that event's retries, keeping the storm
// deterministic; the async queue's own semantics are covered by the
// remediate unit tests. Every event must land exactly once.
func webhookStorm(_ string, sc chaosScale) (string, error) {
	var received atomic.Int64
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		received.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer collector.Close()

	tr := chaos.NewTransport(nil)
	hook := &remediate.WebhookNotifier{
		URL:         collector.URL,
		Client:      &http.Client{Transport: tr},
		MaxAttempts: 4,
		Backoff:     time.Millisecond,
	}
	for i := 0; i < sc.events; i++ {
		switch i % 4 {
		case 0:
			tr.Inject(chaos.Drop, 1)
			tr.Inject(chaos.HTTP503, 1)
		case 1:
			tr.Inject(chaos.HTTP503, 1)
		case 2:
			tr.Inject(chaos.Drop, 1)
		}
		hook.Notify(remediate.Event{Day: i, Machine: chaosMachine(i), From: "healthy", To: "cordoned", Reason: "chaos"})
		if tr.Pending() != 0 {
			return "", fmt.Errorf("event %d left %d armed faults unconsumed", i, tr.Pending())
		}
	}
	fired := 0
	for _, n := range tr.Fired() {
		fired += n
	}
	switch {
	case fired == 0:
		return "", fmt.Errorf("no network faults fired — harness is miswired")
	case hook.Failed() != 0:
		return "", fmt.Errorf("%d events exhausted their retries", hook.Failed())
	case hook.Delivered() != sc.events:
		return "", fmt.Errorf("delivered %d of %d events", hook.Delivered(), sc.events)
	case int(received.Load()) != sc.events:
		return "", fmt.Errorf("collector received %d of %d events", received.Load(), sc.events)
	}
	return fmt.Sprintf("%d events delivered exactly once through %d network faults", sc.events, fired), nil
}
