// Package incidents contains cross-module integration tests that replay
// every production incident listed in §2 of "Cores that don't count",
// end to end, on the simulated substrate:
//
//	go test ./internal/incidents -run Incident -v
package incidents

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kvdb"
	"repro/internal/quarantine"
	"repro/internal/sched"
	"repro/internal/screen"
	"repro/internal/selfcheck"
	"repro/internal/storage"
	"repro/internal/xrand"
)

// TestIncidentSelfInvertingAES replays "a deterministic AES
// mis-computation, which was 'self-inverting': encrypting and decrypting
// on the same core yielded the identity function, but decryption elsewhere
// yielded gibberish."
func TestIncidentSelfInvertingAES(t *testing.T) {
	d := fault.Defect{ID: "aes", Unit: fault.UnitCrypto, Deterministic: true,
		Kind: fault.CorruptPreXORInput, Mask: 1 << 29}
	bad := engine.New(fault.NewCore("bad", xrand.New(1), d))
	other := engine.New(fault.NewCore("other", xrand.New(2)))

	const key = 0x5eed
	plaintexts := []uint64{0, 1, 0xdeadbeef, ^uint64(0)}
	for _, pt := range plaintexts {
		ct := bad.CryptoEncrypt64(pt, key)
		if got := bad.CryptoDecrypt64(ct, key); got != pt {
			t.Fatalf("same-core roundtrip broke for %#x", pt)
		}
		if got := other.CryptoDecrypt64(ct, key); got == pt {
			t.Fatalf("cross-core decrypt of %#x was NOT gibberish", pt)
		}
	}

	// The roundtrip-only library check passes (the trap the incident
	// set); the cross-core verified library refuses the ciphertext.
	v := selfcheck.NewVerifier(bad, other)
	if _, err := v.EncryptBlocks(plaintexts, key); !errors.Is(err, selfcheck.ErrCheckFailed) {
		t.Fatalf("verified library err = %v", err)
	}
}

// TestIncidentLockSemantics replays "violations of lock semantics leading
// to application data corruption and crashes."
func TestIncidentLockSemantics(t *testing.T) {
	d := fault.Defect{ID: "cas", Unit: fault.UnitAtomic, BaseRate: 0.05,
		Kind: fault.CorruptDropUpdate}
	e := engine.New(fault.NewCore("bad", xrand.New(3), d))
	w := corpus.NewLock(8, 64)
	rng := xrand.New(4)
	caught := false
	for i := 0; i < 20 && !caught; i++ {
		res := w.Run(e, rng)
		caught = res.Verdict == corpus.WrongAnswer
	}
	if !caught {
		t.Fatal("dropped-CAS defect never corrupted the locked counter")
	}
}

// TestIncidentGCLosesLiveData replays "corruption affecting garbage
// collection, in a storage system, causing live data to be lost" — and
// shows the double-check mitigation recovering.
func TestIncidentGCLosesLiveData(t *testing.T) {
	build := func() (*storage.Store, map[string]bool) {
		s := storage.NewStore(true)
		healthy := engine.New(fault.NewCore("writer", xrand.New(5)))
		live := map[string]bool{}
		for i := 0; i < 300; i++ {
			k := string(rune('a'+i%26)) + string(rune('0'+i/26))
			live[k] = true
			if err := s.PutFromClient(healthy, k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		return s, live
	}
	gcEngine := func(seed uint64) *engine.Engine {
		d := fault.Defect{ID: "gc", Unit: fault.UnitMul, BaseRate: 0.002,
			Kind: fault.CorruptBitFlip, BitPos: 21}
		return engine.New(fault.NewCore("gc", xrand.New(seed), d))
	}

	s1, live1 := build()
	s1.GC(gcEngine(6), storage.GCOptions{Live: live1})
	if s1.Stats.GCLostLive == 0 {
		t.Fatal("mercurial GC lost no live data")
	}

	s2, live2 := build()
	s2.GC(gcEngine(6), storage.GCOptions{Live: live2, DoubleCheck: true})
	if s2.Stats.GCLostLive >= s1.Stats.GCLostLive {
		t.Fatalf("double-check did not reduce loss: %d vs %d",
			s2.Stats.GCLostLive, s1.Stats.GCLostLive)
	}
}

// TestIncidentReplicaDependentIndex replays "database index corruption
// leading to some queries, depending on which replica (core) serves them,
// being non-deterministically corrupted."
func TestIncidentReplicaDependentIndex(t *testing.T) {
	d := fault.Defect{ID: "idx", Unit: fault.UnitMul, BaseRate: 0.3,
		Kind: fault.CorruptBitFlip, BitPos: 19}
	bad := kvdb.NewReplica("bad", engine.New(fault.NewCore("bad", xrand.New(7), d)))
	good1 := kvdb.NewReplica("g1", engine.New(fault.NewCore("g1", xrand.New(8))))
	good2 := kvdb.NewReplica("g2", engine.New(fault.NewCore("g2", xrand.New(9))))
	db, err := kvdb.New(bad, good1, good2)
	if err != nil {
		t.Fatal(err)
	}
	db.Put("row1", []byte("red"))
	db.Put("row2", []byte("blue"))

	wrong, right := 0, 0
	for i := 0; i < 60; i++ {
		keys := db.QueryByValue([]byte("red"))
		if len(keys) == 1 && keys[0] == "row1" {
			right++
		} else {
			wrong++
		}
	}
	if wrong == 0 || right == 0 {
		t.Fatalf("expected non-deterministic mix, got wrong=%d right=%d", wrong, right)
	}
	// Replica comparison (§6's dual computations) roots the cause.
	caught := false
	for i := 0; i < 10 && !caught; i++ {
		_, err := db.QueryByValueCompared([]byte("red"))
		caught = errors.Is(err, kvdb.ErrDivergent)
	}
	if !caught {
		t.Fatal("replica comparison never exposed the divergence")
	}
}

// TestIncidentStringBitFlips replays "repeated bit-flips in strings, at a
// particular bit position (which stuck out as unlikely to be coding bugs)."
func TestIncidentStringBitFlips(t *testing.T) {
	d := fault.Defect{ID: "str", Unit: fault.UnitVec, BaseRate: 0.02,
		Kind: fault.CorruptBitFlip, BitPos: 42}
	e := engine.New(fault.NewCore("bad", xrand.New(10), d))
	src := make([]byte, 8192)
	dst := make([]byte, 8192)
	e.Copy(dst, src)
	positions := map[uint]int{}
	for i := 0; i+8 <= len(dst); i += 8 {
		var w uint64
		for b := 0; b < 8; b++ {
			w |= uint64(dst[i+b]) << (8 * uint(b))
		}
		for bit := uint(0); bit < 64; bit++ {
			if w&(1<<bit) != 0 {
				positions[bit]++
			}
		}
	}
	if len(positions) != 1 {
		t.Fatalf("flips at %d positions, want exactly one: %v", len(positions), positions)
	}
	if positions[42] == 0 {
		t.Fatalf("flips not at the defect's position: %v", positions)
	}
	if positions[42] < 2 {
		t.Fatal("defect did not repeat")
	}
}

// TestIncidentKernelStateCorruption replays "corruption of kernel state
// resulting in process and kernel crashes and application malfunctions" —
// a wrong-address store smears a neighbouring structure, later observed as
// either a crash (trap) or a wrong answer.
func TestIncidentKernelStateCorruption(t *testing.T) {
	d := fault.Defect{ID: "lsu", Unit: fault.UnitLSU, BaseRate: 0.005,
		Kind: fault.CorruptOffByOne, Delta: 16}
	e := engine.New(fault.NewCore("bad", xrand.New(11), d))
	w := corpus.NewMem(4096)
	rng := xrand.New(12)
	sawWrong, sawTrap := false, false
	for i := 0; i < 40 && !(sawWrong && sawTrap); i++ {
		switch w.Run(e, rng).Verdict {
		case corpus.WrongAnswer:
			sawWrong = true
		case corpus.Trapped:
			sawTrap = true
		}
	}
	if !sawWrong {
		t.Fatal("no silent corruption observed")
	}
	// Traps depend on hitting the boundary; not guaranteed at this size,
	// so only assert when observed — the mix is the §2 observation that
	// "defective cores appear to exhibit both wrong results and
	// exceptions".
	t.Logf("observed wrong answers; traps observed: %v", sawTrap)
}

// TestIncidentPipelineEndToEnd wires a full detect→confess→quarantine loop
// around the §1 pipeline incident: heavy use of a rarely-used unit starts
// corrupting results on one machine; the pipeline's end-to-end checks feed
// the report service until the core is removed from service.
func TestIncidentPipelineEndToEnd(t *testing.T) {
	const machines = 4
	const coresPer = 4
	defective := fault.NewCore("m2/c1", xrand.New(13), fault.Defect{
		ID: "vec", Unit: fault.UnitVec, BaseRate: 0.02,
		Kind: fault.CorruptBitFlip, BitPos: 7})

	cluster := sched.NewCluster()
	for i := 0; i < machines; i++ {
		if _, err := cluster.AddMachine([]string{"m0", "m1", "m2", "m3"}[i], coresPer); err != nil {
			t.Fatal(err)
		}
	}
	tracker := detect.NewTracker(coresPer)
	rng := xrand.New(14)

	// Production: batches hashed through each (machine, core); only
	// m2/core1 uses the defective engine.
	for batch := 0; batch < 3000; batch++ {
		machine := []string{"m0", "m1", "m2", "m3"}[batch%machines]
		coreIdx := (batch / machines) % coresPer
		var e *engine.Engine
		if machine == "m2" && coreIdx == 1 {
			e = engine.New(defective)
		} else {
			e = engine.New(fault.NewCore("h", rng))
		}
		rec := make([]byte, 64)
		rng.Bytes(rec)
		out := make([]byte, 64)
		e.Copy(out, rec)
		if !bytes.Equal(out, rec) { // end-to-end check
			tracker.Add(detect.Signal{Machine: machine, Core: coreIdx,
				Kind: detect.SigAppError})
		}
	}

	suspects := tracker.Suspects()
	if len(suspects) == 0 {
		t.Fatal("no suspects nominated")
	}
	top := suspects[0]
	if top.Machine != "m2" || top.Core != 1 {
		t.Fatalf("wrong suspect: %+v", top)
	}

	mgr := quarantine.NewManager(cluster, quarantine.Policy{
		Mode: quarantine.CoreRemoval, RequireConfession: true})
	rec, err := mgr.Handle(top, 0, func(cfg screen.Config) detect.Confession {
		return detect.Confess(defective, cfg, xrand.New(15))
	})
	if err != nil || rec == nil {
		t.Fatalf("quarantine failed: rec=%v err=%v", rec, err)
	}
	if !rec.Confessed {
		t.Fatal("confession screen failed to reproduce")
	}
	if cluster.Capacity().Offline != 1 {
		t.Fatal("core not taken offline")
	}
}
