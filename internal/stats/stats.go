// Package stats provides the statistical substrate shared by the screening,
// detection, and fleet-simulation packages: summary statistics, quantiles,
// histograms, and the tail tests used to decide whether suspect-core reports
// are concentrated on a few cores (a CEE signature, §6 of the paper) or
// spread evenly (a software-bug signature).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds running moments of a stream of observations.
type Summary struct {
	n              int
	mean, m2       float64
	min, max       float64
	sum            float64
	hasObservation bool
}

// Add records one observation (Welford's online algorithm).
func (s *Summary) Add(x float64) {
	s.n++
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if !s.hasObservation || x < s.min {
		s.min = x
	}
	if !s.hasObservation || x > s.max {
		s.max = x
	}
	s.hasObservation = true
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Sum returns the sum of observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// String formats the summary for experiment output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns several quantiles of xs in one sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// Histogram is a fixed-bin-width histogram over [Lo, Hi). Observations
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float rounding at the upper edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including under/overflow.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// LogBucket returns the decade bucket of x: floor(log10 x), with values
// <= 0 mapped to math.MinInt. Used for the "orders of magnitude" spread in
// corruption rates (experiment E3).
func LogBucket(x float64) int {
	if x <= 0 {
		return math.MinInt
	}
	return int(math.Floor(math.Log10(x)))
}

// DecadeSpread returns the number of decades spanned by the positive values
// in xs (max bucket - min bucket + 1), and 0 if fewer than one positive.
func DecadeSpread(xs []float64) int {
	minB, maxB := math.MaxInt, math.MinInt
	any := false
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		b := LogBucket(x)
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
		any = true
	}
	if !any {
		return 0
	}
	return maxB - minB + 1
}

// lnGamma computes the natural log of the Gamma function (Lanczos
// approximation, g=7). Accurate to ~1e-13 over the positive reals, ample
// for the tail tests below.
func lnGamma(x float64) float64 {
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - lnGamma(1-x)
	}
	g := []float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	x -= 1
	a := g[0]
	t := x + 7.5
	for i := 1; i < len(g); i++ {
		a += g[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// lnChoose returns ln C(n, k).
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return lnGamma(float64(n)+1) - lnGamma(float64(k)+1) - lnGamma(float64(n-k)+1)
}

// BinomialTailAtLeast returns P[X >= k] for X ~ Binomial(n, p), computed by
// direct summation in log space. This is the concentration test used by the
// detection pipeline: with r reports across c cores, the probability that a
// single core would receive at least k reports under the uniform-spread
// hypothesis is BinomialTailAtLeast(r, 1/c, k).
func BinomialTailAtLeast(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lp := math.Log(p)
	lq := math.Log(1 - p)
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += math.Exp(lnChoose(n, i) + float64(i)*lp + float64(n-i)*lq)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// PoissonTailAtLeast returns P[X >= k] for X ~ Poisson(lambda).
func PoissonTailAtLeast(lambda float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if lambda <= 0 {
		return 0
	}
	// P[X >= k] = 1 - sum_{i<k} e^-l l^i / i!
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += math.Exp(-lambda + float64(i)*math.Log(lambda) - lnGamma(float64(i)+1))
	}
	tail := 1 - sum
	if tail < 0 {
		tail = 0
	}
	return tail
}

// ConcentrationPValue performs the §6 "evenly spread vs concentrated" test.
// counts[i] is the number of suspect reports attributed to core i. Under the
// null hypothesis (software bug: reports uniform over cores) the maximum
// per-core count has a Bonferroni-bounded tail probability. A small return
// value means the reports are implausibly concentrated, i.e. a CEE suspect.
func ConcentrationPValue(counts []int) float64 {
	c := len(counts)
	if c == 0 {
		return 1
	}
	total, maxCount := 0, 0
	for _, v := range counts {
		total += v
		if v > maxCount {
			maxCount = v
		}
	}
	if total == 0 {
		return 1
	}
	p := BinomialTailAtLeast(total, 1/float64(c), maxCount)
	bonferroni := p * float64(c)
	if bonferroni > 1 {
		return 1
	}
	return bonferroni
}

// Gini returns the Gini coefficient of the non-negative values xs — a
// secondary concentration measure reported by the detection pipeline
// (0 = perfectly even, → 1 = all mass on one element).
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	var cum, sum float64
	for i, x := range sorted {
		cum += float64(i+1) * x
		sum += x
	}
	if sum == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*sum) - (float64(n)+1)/float64(n)
}

// WilsonInterval returns the Wilson score 95% confidence interval for a
// proportion with k successes out of n trials. Used when reporting detected
// CEE incidence (§4: "quantifying their values in practice is difficult").
func WilsonInterval(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959964 // 97.5th percentile of the standard normal
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
