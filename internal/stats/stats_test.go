package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(s.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != 40 {
		t.Fatalf("sum = %v", s.Sum())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty summary not zero")
	}
	s.Add(-3)
	if s.Mean() != -3 || s.Variance() != 0 || s.Min() != -3 || s.Max() != -3 {
		t.Fatal("single-observation summary wrong")
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	s.Add(-5)
	s.Add(5)
	if s.Min() != -5 || s.Max() != 5 || s.Mean() != 0 {
		t.Fatalf("summary over negatives: %v", s.String())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Interpolation between order statistics.
	if q := Quantile([]float64{0, 10}, 0.5); q != 5 {
		t.Fatalf("interpolated median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	qs := Quantiles(xs, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 3 || qs[2] != 5 {
		t.Fatalf("Quantiles = %v", qs)
	}
	for _, v := range Quantiles(nil, 0.5) {
		if !math.IsNaN(v) {
			t.Fatal("empty Quantiles should be NaN")
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(10)
	h.Add(11)
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count %d", i, c)
		}
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 13 {
		t.Fatalf("total = %d", h.Total())
	}
	if !almostEqual(h.BinCenter(0), 0.5, 1e-12) {
		t.Fatalf("bin center = %v", h.BinCenter(0))
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	// A value just below Hi must land in the last bin, not panic.
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 {
		t.Fatalf("upper-edge value landed in %v", h.Counts)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestLogBucket(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{1, 0}, {9.99, 0}, {10, 1}, {0.1, -1}, {0.05, -2}, {1e6, 6},
	}
	for _, c := range cases {
		if got := LogBucket(c.x); got != c.want {
			t.Fatalf("LogBucket(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if LogBucket(0) != math.MinInt || LogBucket(-1) != math.MinInt {
		t.Fatal("non-positive LogBucket should be MinInt")
	}
}

func TestDecadeSpread(t *testing.T) {
	if d := DecadeSpread([]float64{1e-6, 1e-2}); d != 5 {
		t.Fatalf("spread = %d, want 5", d)
	}
	if d := DecadeSpread([]float64{3, 5}); d != 1 {
		t.Fatalf("same-decade spread = %d", d)
	}
	if d := DecadeSpread(nil); d != 0 {
		t.Fatalf("empty spread = %d", d)
	}
	if d := DecadeSpread([]float64{0, -1}); d != 0 {
		t.Fatalf("non-positive spread = %d", d)
	}
}

func TestLnGammaKnownValues(t *testing.T) {
	// Gamma(n) = (n-1)!
	cases := []struct {
		x, want float64
	}{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{5, math.Log(24)},
		{11, math.Log(3628800)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
	}
	for _, c := range cases {
		if got := lnGamma(c.x); !almostEqual(got, c.want, 1e-10) {
			t.Fatalf("lnGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestBinomialTail(t *testing.T) {
	// Fair coin, 10 flips: P[X >= 5] ≈ 0.623046875.
	if p := BinomialTailAtLeast(10, 0.5, 5); !almostEqual(p, 0.623046875, 1e-9) {
		t.Fatalf("tail = %v", p)
	}
	if p := BinomialTailAtLeast(10, 0.5, 0); p != 1 {
		t.Fatalf("k=0 tail = %v", p)
	}
	if p := BinomialTailAtLeast(10, 0.5, 11); p != 0 {
		t.Fatalf("k>n tail = %v", p)
	}
	if p := BinomialTailAtLeast(10, 0, 1); p != 0 {
		t.Fatalf("p=0 tail = %v", p)
	}
	if p := BinomialTailAtLeast(10, 1, 10); p != 1 {
		t.Fatalf("p=1 tail = %v", p)
	}
	// P[X >= 10] with p=0.5 is 2^-10.
	if p := BinomialTailAtLeast(10, 0.5, 10); !almostEqual(p, math.Pow(0.5, 10), 1e-12) {
		t.Fatalf("all-successes tail = %v", p)
	}
}

func TestPoissonTail(t *testing.T) {
	// P[X >= 1] = 1 - e^-lambda.
	if p := PoissonTailAtLeast(2, 1); !almostEqual(p, 1-math.Exp(-2), 1e-10) {
		t.Fatalf("tail = %v", p)
	}
	if p := PoissonTailAtLeast(2, 0); p != 1 {
		t.Fatalf("k=0 = %v", p)
	}
	if p := PoissonTailAtLeast(0, 3); p != 0 {
		t.Fatalf("lambda=0 = %v", p)
	}
}

func TestConcentrationDetectsHotCore(t *testing.T) {
	// 20 reports all on one of 64 cores: wildly improbable under uniform.
	counts := make([]int, 64)
	counts[17] = 20
	if p := ConcentrationPValue(counts); p > 1e-10 {
		t.Fatalf("concentrated p-value = %v, want tiny", p)
	}
}

func TestConcentrationAcceptsUniform(t *testing.T) {
	// 64 reports spread one per core: entirely consistent with uniform.
	counts := make([]int, 64)
	for i := range counts {
		counts[i] = 1
	}
	if p := ConcentrationPValue(counts); p < 0.5 {
		t.Fatalf("uniform p-value = %v, want large", p)
	}
}

func TestConcentrationEdges(t *testing.T) {
	if p := ConcentrationPValue(nil); p != 1 {
		t.Fatalf("empty = %v", p)
	}
	if p := ConcentrationPValue(make([]int, 8)); p != 1 {
		t.Fatalf("zero reports = %v", p)
	}
}

func TestConcentrationPowerGrowsWithReports(t *testing.T) {
	// More recidivist reports on the same core must never look less
	// suspicious (§6: recidivism increases confidence).
	prev := 1.0
	for k := 1; k <= 10; k++ {
		counts := make([]int, 32)
		counts[3] = k
		p := ConcentrationPValue(counts)
		if p > prev+1e-12 {
			t.Fatalf("p-value rose from %v to %v at k=%d", prev, p, k)
		}
		prev = p
	}
}

func TestGini(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); !almostEqual(g, 0, 1e-12) {
		t.Fatalf("even Gini = %v", g)
	}
	g := Gini([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Fatalf("concentrated Gini = %v, want high", g)
	}
	if g2 := Gini(nil); g2 != 0 {
		t.Fatalf("empty Gini = %v", g2)
	}
	if g3 := Gini([]float64{0, 0}); g3 != 0 {
		t.Fatalf("all-zero Gini = %v", g3)
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(5, 10)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v,%v] should contain 0.5", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi > 0.05 {
		t.Fatalf("zero-successes interval [%v,%v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval [%v,%v]", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100)
	if hi != 1 || lo < 0.95 {
		t.Fatalf("all-successes interval [%v,%v]", lo, hi)
	}
}

func TestQuickBinomialTailMonotoneInK(t *testing.T) {
	f := func(n uint8, pRaw uint16) bool {
		nn := int(n%50) + 1
		p := float64(pRaw) / 65536
		prev := 1.0
		for k := 0; k <= nn+1; k++ {
			cur := BinomialTailAtLeast(nn, p, k)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickQuantileWithinRange(t *testing.T) {
	r := xrand.New(99)
	f := func(n uint8, qRaw uint16) bool {
		m := int(n%100) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		q := float64(qRaw) / 65536
		v := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGiniRange(t *testing.T) {
	r := xrand.New(7)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		g := Gini(xs)
		return g >= -1e-9 && g < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkConcentrationPValue(b *testing.B) {
	counts := make([]int, 128)
	counts[5] = 12
	counts[9] = 1
	counts[77] = 2
	for i := 0; i < b.N; i++ {
		ConcentrationPValue(counts)
	}
}
