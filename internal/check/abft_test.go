package check

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

func TestABFTHealthyClean(t *testing.T) {
	e := engine.New(fault.NewCore("h", xrand.New(1)))
	rng := xrand.New(2)
	for _, n := range []int{1, 2, 8, 16} {
		a := randMatrix(rng, n)
		b := randMatrix(rng, n)
		c, rep, err := ABFTMatMul(e, a, b, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rep.Detected || rep.Corrected {
			t.Fatalf("n=%d: healthy run reported %v", n, rep)
		}
		want := goldenMul(a, b, n)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("n=%d: cell %d wrong", n, i)
			}
		}
	}
}

func TestABFTInputValidation(t *testing.T) {
	e := engine.New(fault.NewCore("h", xrand.New(3)))
	if _, _, err := ABFTMatMul(e, []uint64{1}, []uint64{1}, 2); err == nil {
		t.Fatal("bad shapes accepted")
	}
	if _, _, err := ABFTMatMul(e, nil, nil, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

// lowRateMulEngine corrupts roughly one multiply in `per` through bit 33.
func lowRateMulEngine(seed uint64, rate float64) *engine.Engine {
	d := fault.Defect{ID: "d", Unit: fault.UnitMul, BaseRate: rate,
		Kind: fault.CorruptBitFlip, BitPos: 33}
	return engine.New(fault.NewCore("m", xrand.New(seed), d))
}

func TestABFTCorrectsSingleCellCorruption(t *testing.T) {
	// Rate tuned so most runs see zero or one corrupted cell over the
	// n^3-ish multiplies; verify every corrected run against golden.
	rng := xrand.New(4)
	n := 12
	e := lowRateMulEngine(5, 3e-4)
	corrected, uncorrectable, clean := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		a := randMatrix(rng, n)
		b := randMatrix(rng, n)
		c, rep, err := ABFTMatMul(e, a, b, n)
		switch {
		case errors.Is(err, ErrABFTUncorrectable):
			uncorrectable++
			continue
		case err != nil:
			t.Fatal(err)
		}
		want := goldenMul(a, b, n)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("trial %d: wrong product escaped ABFT (rep=%v)", trial, rep)
			}
		}
		if rep.Corrected {
			corrected++
		} else {
			clean++
		}
	}
	if corrected == 0 {
		t.Fatal("no corruption was ever corrected; defect too cold for the test")
	}
	if clean == 0 {
		t.Fatal("every run was corrupted; rate too hot to test the clean path")
	}
	t.Logf("clean=%d corrected=%d uncorrectable=%d", clean, corrected, uncorrectable)
}

func TestABFTUncorrectableDetected(t *testing.T) {
	// A deterministic defect corrupts *every* multiply: vastly more than
	// one bad cell. ABFT must refuse rather than emit garbage.
	d := fault.Defect{ID: "d", Unit: fault.UnitMul, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 1}
	e := engine.New(fault.NewCore("m", xrand.New(6), d))
	rng := xrand.New(7)
	n := 8
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)
	_, rep, err := ABFTMatMul(e, a, b, n)
	if !errors.Is(err, ErrABFTUncorrectable) {
		t.Fatalf("err = %v", err)
	}
	if !rep.Detected {
		t.Fatal("report does not flag detection")
	}
	if !strings.Contains(rep.String(), "uncorrectable") {
		t.Fatalf("report string %q", rep.String())
	}
}

func TestABFTCorrectsChecksumCellCorruption(t *testing.T) {
	// Corrupt a checksum cell directly in the augmented product: a bad
	// row-checksum shows one bad row and zero bad columns.
	n := 6
	rng := xrand.New(8)
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)
	ac := augmentRows(a, n)
	br := augmentCols(b, n)
	healthy := engine.New(fault.NewCore("h", xrand.New(9)))
	full := mulAugmented(healthy, ac, br, n)
	cols := n + 1

	full[2*cols+n] ^= 1 << 7 // row-2 checksum cell
	rep, err := verifyAndCorrect(full, n)
	if err != nil || !rep.Corrected || rep.Row != 2 || rep.Col != n {
		t.Fatalf("row-checksum correction: rep=%v err=%v", rep, err)
	}

	full[n*cols+4] ^= 1 << 9 // column-4 checksum cell
	rep, err = verifyAndCorrect(full, n)
	if err != nil || !rep.Corrected || rep.Row != n || rep.Col != 4 {
		t.Fatalf("col-checksum correction: rep=%v err=%v", rep, err)
	}
}

func TestABFTReportStrings(t *testing.T) {
	if s := (ABFTReport{}).String(); !strings.Contains(s, "clean") {
		t.Fatalf("clean string %q", s)
	}
	if s := (ABFTReport{Detected: true, Corrected: true, Row: 1, Col: 2}).String(); !strings.Contains(s, "(1,2)") {
		t.Fatalf("corrected string %q", s)
	}
}

func TestABFTOverheadSmall(t *testing.T) {
	// The arithmetic overhead of checksum augmentation is (n+1)^2/n^2.
	n := 16
	rng := xrand.New(10)
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)

	plain := engine.New(fault.NewCore("p", xrand.New(11)))
	MulMatricesOps := func(e *engine.Engine) uint64 {
		before := e.Core().TotalOps()
		mulAugmented(e, augmentRows(a, n), augmentCols(b, n), n)
		return e.Core().TotalOps() - before
	}
	abftOps := MulMatricesOps(plain)

	plain2 := engine.New(fault.NewCore("q", xrand.New(12)))
	before := plain2.Core().TotalOps()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint64
			for k := 0; k < n; k++ {
				acc = plain2.Add64(acc, plain2.Mul64(a[i*n+k], b[k*n+j]))
			}
			_ = acc
		}
	}
	plainOps := plain2.Core().TotalOps() - before

	ratio := float64(abftOps) / float64(plainOps)
	want := float64((n+1)*(n+1)) / float64(n*n)
	if ratio < want*0.95 || ratio > want*1.05 {
		t.Fatalf("overhead ratio %v, want ~%v", ratio, want)
	}
}

func BenchmarkABFTMatMul(b *testing.B) {
	e := engine.New(fault.NewCore("h", xrand.New(1)))
	rng := xrand.New(2)
	n := 16
	am := randMatrix(rng, n)
	bm := randMatrix(rng, n)
	for i := 0; i < b.N; i++ {
		if _, _, err := ABFTMatMul(e, am, bm, n); err != nil {
			b.Fatal(err)
		}
	}
}
