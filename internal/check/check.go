// Package check implements Blum–Kannan-style result checkers (§3, §7, §9):
// programs that verify a computation's output far more cheaply than
// recomputing it. The paper cites these as one of the few ways to detect
// computational errors without the factor-of-two cost of full duplication,
// and asks (§9) whether the class of SDC-resilient algorithms can be
// extended; this package provides checkers for matrix multiplication
// (Freivalds' algorithm), sorting, and binary search, plus checked
// execution wrappers that retry on a different core when a check fails.
package check

import (
	"errors"

	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// ErrUncorrectable reports that checked execution ran out of retries.
var ErrUncorrectable = errors.New("check: retries exhausted")

// Freivalds verifies c == a*b for n×n row-major matrices in O(rounds·n²)
// using random ±{0,1} probe vectors: if c is wrong, each round catches it
// with probability >= 1/2, so `rounds` rounds miss with probability
// <= 2^-rounds. The probe arithmetic runs natively: the checker is assumed
// to execute on reliable hardware (or is itself replicated).
func Freivalds(a, b, c []uint64, n int, rounds int, rng *xrand.RNG) bool {
	if rounds < 1 {
		rounds = 1
	}
	r := make([]uint64, n)
	br := make([]uint64, n)
	abr := make([]uint64, n)
	cr := make([]uint64, n)
	for round := 0; round < rounds; round++ {
		for i := range r {
			r[i] = rng.Uint64() & 1
		}
		// br = B·r
		for i := 0; i < n; i++ {
			var s uint64
			row := b[i*n : (i+1)*n]
			for j, rv := range r {
				if rv != 0 {
					s += row[j]
				}
			}
			br[i] = s
		}
		// abr = A·(B·r), cr = C·r
		for i := 0; i < n; i++ {
			var s1, s2 uint64
			arow := a[i*n : (i+1)*n]
			crow := c[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				s1 += arow[j] * br[j]
				if r[j] != 0 {
					s2 += crow[j]
				}
			}
			abr[i] = s1
			cr[i] = s2
		}
		for i := 0; i < n; i++ {
			if abr[i] != cr[i] {
				return false
			}
		}
	}
	return true
}

// CheckedMatMul multiplies a×b on the engine and verifies with Freivalds;
// on failure it retries on the next engine in pool. It returns the product
// and the number of executions (1 = no corruption observed).
func CheckedMatMul(pool []*engine.Engine, a, b []uint64, n, rounds int, rng *xrand.RNG) ([]uint64, int, error) {
	if len(pool) == 0 {
		return nil, 0, errors.New("check: empty engine pool")
	}
	for i, e := range pool {
		c := corpus.MulMatrices(e, a, b, n)
		if Freivalds(a, b, c, n, rounds, rng) {
			return c, i + 1, nil
		}
	}
	return nil, len(pool), ErrUncorrectable
}

// CertifySorted checks that got is sorted and is a permutation of orig —
// the sort certifier. O(n) time with an O(n) multiset fingerprint.
func CertifySorted(orig, got []uint64) bool {
	if len(orig) != len(got) {
		return false
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			return false
		}
	}
	// Multiset equality via two independent fingerprints over a random-
	// oracle-style mix. Collisions require engineered inputs, which the
	// fault model does not produce.
	var sumO, sumG, mixO, mixG uint64
	for _, v := range orig {
		sumO += v
		mixO += mix(v)
	}
	for _, v := range got {
		sumG += v
		mixG += mix(v)
	}
	return sumO == sumG && mixO == mixG
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ x>>33
}

// CheckedSort sorts xs on the engine, certifies the result, and retries on
// the next engine on failure — the SDC-resilient sort of §9's research
// agenda. The input is not modified on failure. Returns the sorted slice
// and the number of attempts.
func CheckedSort(pool []*engine.Engine, xs []uint64) ([]uint64, int, error) {
	if len(pool) == 0 {
		return nil, 0, errors.New("check: empty engine pool")
	}
	for i, e := range pool {
		work := append([]uint64(nil), xs...)
		attemptSort(e, work)
		if CertifySorted(xs, work) {
			return work, i + 1, nil
		}
	}
	return nil, len(pool), ErrUncorrectable
}

// attemptSort contains panics from corrupted compares (out-of-range scans)
// so a crashing attempt counts as a failed attempt, not a crashed caller.
func attemptSort(e *engine.Engine, work []uint64) {
	defer func() { recover() }() //nolint:errcheck // crash == failed attempt
	corpus.SortSlice(e, work)
}

// CheckedSearch performs binary search for target on the engine and
// verifies the answer natively: a claimed hit must match, and a claimed
// miss is re-verified with a native search. Binary search is its own
// cheapest checker for hits; misses cost O(log n) to confirm.
func CheckedSearch(e *engine.Engine, xs []uint64, target uint64) (int, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.Less64(xs[mid], target) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found := lo < len(xs) && xs[lo] == target // native verification of hit
	if !found {
		// Verify the miss natively.
		lo2, hi2 := 0, len(xs)
		for lo2 < hi2 {
			mid := int(uint(lo2+hi2) >> 1)
			if xs[mid] < target {
				lo2 = mid + 1
			} else {
				hi2 = mid
			}
		}
		if lo2 < len(xs) && xs[lo2] == target {
			return lo2, true // engine lied; native result wins
		}
		return lo, false
	}
	return lo, true
}

// FaultyPool builds a pool of engines over the given cores — a convenience
// for checked execution across a machine's cores.
func FaultyPool(cores []*fault.Core) []*engine.Engine {
	out := make([]*engine.Engine, len(cores))
	for i, c := range cores {
		out[i] = engine.New(c)
	}
	return out
}
