package check

import (
	"errors"
	"fmt"

	"repro/internal/engine"
)

// This file extends the class of SDC-resilient algorithms (§9: "can we
// extend the class of SDC-resilient algorithms beyond sorting and matrix
// factorization?") with algorithm-based fault tolerance (ABFT) in the
// style of Huang–Abraham checksummed matrices: the multiply runs on the
// (possibly mercurial) core over checksum-augmented operands, and a
// reliable verifier can then *locate and correct* a single corrupted cell
// instead of merely detecting it — cheaper than any re-execution.
//
// All checksum arithmetic is modulo 2^64, which is exact for uint64.

// ErrABFTUncorrectable reports corruption beyond single-cell correction.
var ErrABFTUncorrectable = errors.New("check: ABFT detected uncorrectable corruption")

// ABFTReport describes what the verifier found and fixed.
type ABFTReport struct {
	// Detected is true if any checksum failed.
	Detected bool
	// Corrected is true if a single-cell error was located and fixed.
	Corrected bool
	// Row, Col locate the corrected cell (valid when Corrected).
	Row, Col int
	// Delta is the correction applied (wrong - right).
	Delta uint64
}

func (r ABFTReport) String() string {
	switch {
	case r.Corrected:
		return fmt.Sprintf("ABFT corrected cell (%d,%d), delta %#x", r.Row, r.Col, r.Delta)
	case r.Detected:
		return "ABFT detected uncorrectable corruption"
	default:
		return "ABFT clean"
	}
}

// augmentRows returns a with an extra row of column sums appended
// ((n+1) x n, row-major).
func augmentRows(a []uint64, n int) []uint64 {
	out := make([]uint64, (n+1)*n)
	copy(out, a)
	for j := 0; j < n; j++ {
		var s uint64
		for i := 0; i < n; i++ {
			s += a[i*n+j]
		}
		out[n*n+j] = s
	}
	return out
}

// augmentCols returns b with an extra column of row sums appended
// (n x (n+1), row-major).
func augmentCols(b []uint64, n int) []uint64 {
	out := make([]uint64, n*(n+1))
	for i := 0; i < n; i++ {
		var s uint64
		for j := 0; j < n; j++ {
			out[i*(n+1)+j] = b[i*n+j]
			s += b[i*n+j]
		}
		out[i*(n+1)+n] = s
	}
	return out
}

// mulAugmented multiplies the (n+1) x n row-checksummed A by the n x (n+1)
// column-checksummed B through the engine, producing the full
// (n+1) x (n+1) checksummed product.
func mulAugmented(e *engine.Engine, ac, br []uint64, n int) []uint64 {
	rows, cols := n+1, n+1
	c := make([]uint64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var acc uint64
			for k := 0; k < n; k++ {
				acc = e.Add64(acc, e.Mul64(ac[i*n+k], br[k*cols+j]))
			}
			c[i*cols+j] = acc
		}
	}
	return c
}

// verifyAndCorrect checks the checksum row and column of the augmented
// product natively (the verifier is the reliable endpoint) and corrects a
// single bad cell in place. It returns the report, or an error if the
// corruption pattern exceeds single-cell correction.
func verifyAndCorrect(c []uint64, n int) (ABFTReport, error) {
	cols := n + 1
	var badRows, badCols []int
	for i := 0; i < n; i++ {
		var s uint64
		for j := 0; j < n; j++ {
			s += c[i*cols+j]
		}
		if s != c[i*cols+n] {
			badRows = append(badRows, i)
		}
	}
	for j := 0; j < n; j++ {
		var s uint64
		for i := 0; i < n; i++ {
			s += c[i*cols+j]
		}
		if s != c[n*cols+j] {
			badCols = append(badCols, j)
		}
	}
	rep := ABFTReport{Detected: len(badRows) > 0 || len(badCols) > 0}
	switch {
	case !rep.Detected:
		return rep, nil
	case len(badRows) == 1 && len(badCols) == 1:
		// Single interior cell: correct from the row checksum.
		i, j := badRows[0], badCols[0]
		var s uint64
		for k := 0; k < n; k++ {
			if k != j {
				s += c[i*cols+k]
			}
		}
		right := c[i*cols+n] - s
		rep.Corrected = true
		rep.Row, rep.Col = i, j
		rep.Delta = c[i*cols+j] - right
		c[i*cols+j] = right
		return rep, nil
	case len(badRows) == 1 && len(badCols) == 0:
		// The row-checksum cell itself is corrupt: recompute it.
		i := badRows[0]
		var s uint64
		for k := 0; k < n; k++ {
			s += c[i*cols+k]
		}
		rep.Corrected = true
		rep.Row, rep.Col = i, n
		rep.Delta = c[i*cols+n] - s
		c[i*cols+n] = s
		return rep, nil
	case len(badRows) == 0 && len(badCols) == 1:
		// The column-checksum cell is corrupt: recompute it.
		j := badCols[0]
		var s uint64
		for k := 0; k < n; k++ {
			s += c[k*cols+j]
		}
		rep.Corrected = true
		rep.Row, rep.Col = n, j
		rep.Delta = c[n*cols+j] - s
		c[n*cols+j] = s
		return rep, nil
	default:
		return rep, fmt.Errorf("%w: %d bad rows, %d bad cols",
			ErrABFTUncorrectable, len(badRows), len(badCols))
	}
}

// ABFTMatMul multiplies two n x n matrices on the engine under checksum
// protection. A single corrupted product cell (or checksum cell) is
// located and corrected without re-execution; heavier corruption returns
// ErrABFTUncorrectable, and the caller should fall back to retry on
// another core. The arithmetic overhead over a plain multiply is
// (n+1)^2/n^2 ≈ 1 + 2/n.
func ABFTMatMul(e *engine.Engine, a, b []uint64, n int) ([]uint64, ABFTReport, error) {
	if n <= 0 || len(a) != n*n || len(b) != n*n {
		return nil, ABFTReport{}, fmt.Errorf("check: ABFT needs n x n inputs (n=%d)", n)
	}
	ac := augmentRows(a, n)
	br := augmentCols(b, n)
	full := mulAugmented(e, ac, br, n)
	rep, err := verifyAndCorrect(full, n)
	if err != nil {
		return nil, rep, err
	}
	// Strip the checksum row/column.
	cols := n + 1
	c := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		copy(c[i*n:(i+1)*n], full[i*cols:i*cols+n])
	}
	return c, rep, nil
}
