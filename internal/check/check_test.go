package check

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

func randMatrix(rng *xrand.RNG, n int) []uint64 {
	m := make([]uint64, n*n)
	for i := range m {
		m[i] = rng.Uint64()
	}
	return m
}

func goldenMul(a, b []uint64, n int) []uint64 {
	c := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s uint64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func TestFreivaldsAcceptsCorrectProduct(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{1, 2, 8, 16} {
		a := randMatrix(rng, n)
		b := randMatrix(rng, n)
		c := goldenMul(a, b, n)
		if !Freivalds(a, b, c, n, 10, rng) {
			t.Fatalf("n=%d: correct product rejected", n)
		}
	}
}

func TestFreivaldsRejectsCorruptedProduct(t *testing.T) {
	rng := xrand.New(2)
	n := 16
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)
	c := goldenMul(a, b, n)
	// Corrupt one cell; with 20 rounds the miss probability is ~1e-6.
	c[5*n+7] ^= 1 << 13
	if Freivalds(a, b, c, n, 20, rng) {
		t.Fatal("corrupted product accepted")
	}
}

func TestFreivaldsDetectionProbability(t *testing.T) {
	// One round must catch a single corrupted cell roughly half the time
	// or better.
	rng := xrand.New(3)
	n := 8
	caught := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := randMatrix(rng, n)
		b := randMatrix(rng, n)
		c := goldenMul(a, b, n)
		c[rng.Intn(n*n)] += 1 + rng.Uint64n(1000)
		if !Freivalds(a, b, c, n, 1, rng) {
			caught++
		}
	}
	if caught < trials*4/10 {
		t.Fatalf("one-round detection rate %d/%d, want >= 40%%", caught, trials)
	}
}

func TestFreivaldsMinimumRounds(t *testing.T) {
	rng := xrand.New(4)
	n := 4
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)
	c := goldenMul(a, b, n)
	if !Freivalds(a, b, c, n, 0, rng) { // clamps to 1 round
		t.Fatal("rounds=0 rejected a correct product")
	}
}

func TestCheckedMatMulHealthy(t *testing.T) {
	rng := xrand.New(5)
	pool := FaultyPool([]*fault.Core{fault.NewCore("h", xrand.New(6))})
	n := 8
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)
	c, attempts, err := CheckedMatMul(pool, a, b, n, 10, rng)
	if err != nil || attempts != 1 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
	want := goldenMul(a, b, n)
	for i := range c {
		if c[i] != want[i] {
			t.Fatal("wrong product accepted")
		}
	}
}

func TestCheckedMatMulRecoversFromBadCore(t *testing.T) {
	rng := xrand.New(7)
	bad := fault.NewCore("bad", xrand.New(8), fault.Defect{
		ID: "d", Unit: fault.UnitMul, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 3})
	good := fault.NewCore("good", xrand.New(9))
	pool := FaultyPool([]*fault.Core{bad, good})
	n := 8
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)
	c, attempts, err := CheckedMatMul(pool, a, b, n, 15, rng)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	want := goldenMul(a, b, n)
	for i := range c {
		if c[i] != want[i] {
			t.Fatal("wrong product survived checking")
		}
	}
}

func TestCheckedMatMulAllBad(t *testing.T) {
	rng := xrand.New(10)
	mk := func(id string, seed uint64) *fault.Core {
		return fault.NewCore(id, xrand.New(seed), fault.Defect{
			ID: "d", Unit: fault.UnitMul, Deterministic: true,
			Kind: fault.CorruptOffByOne, Delta: 1})
	}
	pool := FaultyPool([]*fault.Core{mk("b1", 11), mk("b2", 12)})
	n := 4
	a := randMatrix(rng, n)
	b := randMatrix(rng, n)
	_, attempts, err := CheckedMatMul(pool, a, b, n, 15, rng)
	if !errors.Is(err, ErrUncorrectable) || attempts != 2 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}

func TestCheckedMatMulEmptyPool(t *testing.T) {
	rng := xrand.New(13)
	if _, _, err := CheckedMatMul(nil, nil, nil, 0, 1, rng); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestCertifySorted(t *testing.T) {
	orig := []uint64{3, 1, 2}
	if !CertifySorted(orig, []uint64{1, 2, 3}) {
		t.Fatal("valid sort rejected")
	}
	if CertifySorted(orig, []uint64{1, 3, 2}) {
		t.Fatal("misordered output accepted")
	}
	if CertifySorted(orig, []uint64{1, 2, 4}) {
		t.Fatal("content change accepted")
	}
	if CertifySorted(orig, []uint64{1, 2}) {
		t.Fatal("length change accepted")
	}
	if !CertifySorted(nil, nil) {
		t.Fatal("empty sort rejected")
	}
	// Duplicate handling: dropping one copy of a dup and adding another
	// value with the same sum must be caught by the second fingerprint.
	if CertifySorted([]uint64{5, 5, 2}, []uint64{2, 4, 6}) {
		t.Fatal("sum-preserving substitution accepted")
	}
}

func TestQuickCertifySortedAgainstStdlib(t *testing.T) {
	f := func(xs []uint64) bool {
		got := append([]uint64(nil), xs...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		return CertifySorted(xs, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckedSortHealthy(t *testing.T) {
	pool := FaultyPool([]*fault.Core{fault.NewCore("h", xrand.New(14))})
	rng := xrand.New(15)
	xs := make([]uint64, 500)
	for i := range xs {
		xs[i] = rng.Uint64n(1000)
	}
	got, attempts, err := CheckedSort(pool, xs)
	if err != nil || attempts != 1 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
	if !CertifySorted(xs, got) {
		t.Fatal("result not certified")
	}
}

func TestCheckedSortRecoversFromCorruptCompares(t *testing.T) {
	bad := fault.NewCore("bad", xrand.New(16), fault.Defect{
		ID: "d", Unit: fault.UnitALU, BaseRate: 0.02,
		Kind: fault.CorruptBitFlip, BitPos: 0})
	good := fault.NewCore("good", xrand.New(17))
	pool := FaultyPool([]*fault.Core{bad, good})
	rng := xrand.New(18)
	xs := make([]uint64, 300)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	got, attempts, err := CheckedSort(pool, xs)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (bad core first)", attempts)
	}
	if !CertifySorted(xs, got) {
		t.Fatal("result not certified")
	}
}

func TestCheckedSortEmptyPool(t *testing.T) {
	if _, _, err := CheckedSort(nil, []uint64{1}); err == nil {
		t.Fatal("empty pool accepted")
	}
}

func TestCheckedSearchHealthy(t *testing.T) {
	e := engine.New(fault.NewCore("h", xrand.New(19)))
	xs := []uint64{2, 4, 6, 8, 10}
	for i, v := range xs {
		idx, ok := CheckedSearch(e, xs, v)
		if !ok || idx != i {
			t.Fatalf("search %d: idx=%d ok=%v", v, idx, ok)
		}
	}
	if _, ok := CheckedSearch(e, xs, 5); ok {
		t.Fatal("found a missing element")
	}
	if _, ok := CheckedSearch(e, nil, 1); ok {
		t.Fatal("found in empty slice")
	}
}

func TestCheckedSearchSurvivesCorruptCompares(t *testing.T) {
	bad := engine.New(fault.NewCore("bad", xrand.New(20), fault.Defect{
		ID: "d", Unit: fault.UnitALU, BaseRate: 0.3,
		Kind: fault.CorruptBitFlip, BitPos: 0}))
	rng := xrand.New(21)
	xs := make([]uint64, 128)
	for i := range xs {
		xs[i] = uint64(i * 3)
	}
	for trial := 0; trial < 200; trial++ {
		target := uint64(rng.Intn(128) * 3)
		idx, ok := CheckedSearch(bad, xs, target)
		if !ok {
			t.Fatalf("present element %d reported missing", target)
		}
		if xs[idx] != target {
			t.Fatalf("wrong hit index %d for %d", idx, target)
		}
		missing := target + 1
		if _, ok := CheckedSearch(bad, xs, missing); ok {
			t.Fatalf("missing element %d reported present", missing)
		}
	}
}

func TestFaultyPool(t *testing.T) {
	cores := []*fault.Core{fault.NewCore("a", xrand.New(22)), fault.NewCore("b", xrand.New(23))}
	pool := FaultyPool(cores)
	if len(pool) != 2 || pool[0].Core() != cores[0] || pool[1].Core() != cores[1] {
		t.Fatal("pool wiring wrong")
	}
}

func BenchmarkFreivaldsVsRecompute(b *testing.B) {
	rng := xrand.New(1)
	n := 64
	a := randMatrix(rng, n)
	bm := randMatrix(rng, n)
	c := goldenMul(a, bm, n)
	b.Run("freivalds-5rounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Freivalds(a, bm, c, n, 5, rng)
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			goldenMul(a, bm, n)
		}
	})
}
