package replay

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	rec := &Recorder{
		NextU64:   rng.Uint64,
		NextBytes: func() []byte { b := make([]byte, 8); rng.Bytes(b); return b },
		NextBool:  func() bool { return rng.Bernoulli(0.5) },
	}
	var us []uint64
	var bs [][]byte
	var fs []bool
	for i := 0; i < 20; i++ {
		u, err := rec.U64()
		if err != nil {
			t.Fatal(err)
		}
		us = append(us, u)
		b, err := rec.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		bs = append(bs, b)
		f, err := rec.Bool()
		if err != nil {
			t.Fatal(err)
		}
		fs = append(fs, f)
	}
	tape := rec.Tape()
	if tape.Len() != 60 {
		t.Fatalf("tape length %d", tape.Len())
	}

	p := NewReplayer(tape)
	for i := 0; i < 20; i++ {
		u, err := p.U64()
		if err != nil || u != us[i] {
			t.Fatalf("u64 %d: %v %v", i, u, err)
		}
		b, err := p.Bytes()
		if err != nil || string(b) != string(bs[i]) {
			t.Fatalf("bytes %d mismatch", i)
		}
		f, err := p.Bool()
		if err != nil || f != fs[i] {
			t.Fatalf("bool %d mismatch", i)
		}
	}
	if p.Remaining() != 0 {
		t.Fatalf("remaining = %d", p.Remaining())
	}
}

func TestReplayTapeExhausted(t *testing.T) {
	rec := &Recorder{NextU64: func() uint64 { return 7 }}
	rec.U64()
	p := NewReplayer(rec.Tape())
	if _, err := p.U64(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.U64(); !errors.Is(err, ErrTapeExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestReplayKindMismatch(t *testing.T) {
	rec := &Recorder{NextU64: func() uint64 { return 7 }}
	rec.U64()
	p := NewReplayer(rec.Tape())
	if _, err := p.Bytes(); !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecorderMissingProviders(t *testing.T) {
	rec := &Recorder{}
	if _, err := rec.U64(); err == nil {
		t.Fatal("missing NextU64 accepted")
	}
	if _, err := rec.Bytes(); err == nil {
		t.Fatal("missing NextBytes accepted")
	}
	if _, err := rec.Bool(); err == nil {
		t.Fatal("missing NextBool accepted")
	}
}

func TestTapeSnapshotIsolation(t *testing.T) {
	rec := &Recorder{NextU64: func() uint64 { return 1 }}
	rec.U64()
	tape := rec.Tape()
	rec.U64() // recorded after the snapshot
	if tape.Len() != 1 {
		t.Fatalf("snapshot grew: %d", tape.Len())
	}
}

func TestReplayerBytesCopied(t *testing.T) {
	rec := &Recorder{NextBytes: func() []byte { return []byte{1, 2, 3} }}
	rec.Bytes()
	tape := rec.Tape()
	p := NewReplayer(tape)
	b, _ := p.Bytes()
	b[0] = 99
	p2 := NewReplayer(tape)
	b2, _ := p2.Bytes()
	if b2[0] != 1 {
		t.Fatal("replayed bytes share storage with the tape")
	}
}

func TestKindString(t *testing.T) {
	if KindU64.String() != "u64" || KindBytes.String() != "bytes" || KindBool.String() != "bool" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should include number")
	}
}

func TestReplayExhaustedCarriesLabelAndPosition(t *testing.T) {
	rec := &Recorder{Label: "granule-7", NextU64: func() uint64 { return 7 }}
	rec.U64()
	rec.U64()
	tape := rec.Tape()
	if got := tape.Label(); got != "granule-7" {
		t.Fatalf("tape label = %q", got)
	}
	p := NewReplayer(tape)
	p.U64()
	p.U64()
	_, err := p.U64()
	if !errors.Is(err, ErrTapeExhausted) {
		t.Fatalf("err = %v, want ErrTapeExhausted", err)
	}
	if !strings.Contains(err.Error(), `granule "granule-7"`) {
		t.Fatalf("error %q does not name the granule", err)
	}
	if !strings.Contains(err.Error(), "position 2") {
		t.Fatalf("error %q does not carry the position", err)
	}
	if p.Position() != 2 {
		t.Fatalf("Position() = %d, want 2", p.Position())
	}
}

func TestReplayKindMismatchCarriesLabelAndPosition(t *testing.T) {
	rec := &Recorder{Label: "crc-step", NextU64: func() uint64 { return 1 }}
	rec.U64()
	p := NewReplayer(rec.Tape())
	_, err := p.Bytes()
	if !errors.Is(err, ErrKindMismatch) {
		t.Fatalf("err = %v, want ErrKindMismatch", err)
	}
	for _, want := range []string{`granule "crc-step"`, "position 0", "u64", "bytes"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if p.Position() != 0 {
		t.Fatalf("Position() = %d, want 0 (mismatch does not consume)", p.Position())
	}
}

func TestReplayUnlabeledErrorsOmitGranule(t *testing.T) {
	rec := &Recorder{NextU64: func() uint64 { return 1 }}
	rec.U64()
	p := NewReplayer(rec.Tape())
	p.U64()
	_, err := p.U64()
	if !errors.Is(err, ErrTapeExhausted) {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(err.Error(), "granule") {
		t.Fatalf("unlabeled error %q should not mention a granule", err)
	}
}
