// Package replay provides deterministic record/replay of computation
// inputs, the §7 building block for replicated execution: "Perhaps a
// compiler could automatically replicate computations to three cores, and
// use techniques from the deterministic-replay literature to choose the
// largest possible computation granules (i.e., to cope with
// non-deterministic inputs and to avoid externalizing unreliable
// outputs)."
//
// A computation that consumes nondeterministic inputs (time, randomness,
// network messages) cannot be compared across replicas directly. Wrapping
// its input boundary in a Recorder makes the first execution produce a
// Tape; Replayers feed the identical values to the replicas, so replica
// divergence can only come from the hardware — exactly what DMR/TMR need
// to vote on.
package replay

import (
	"errors"
	"fmt"
)

// Errors returned by replay sources.
var (
	// ErrTapeExhausted means the replica consumed more inputs than the
	// recording — a control-flow divergence, itself a CEE signal.
	ErrTapeExhausted = errors.New("replay: tape exhausted")
	// ErrKindMismatch means the replica asked for a different kind of
	// input than the recording at the same position — also divergence.
	ErrKindMismatch = errors.New("replay: input kind mismatch")
)

// Kind tags a recorded input so replay can detect control-flow skew.
type Kind uint8

// Input kinds.
const (
	KindU64 Kind = iota
	KindBytes
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindU64:
		return "u64"
	case KindBytes:
		return "bytes"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// entry is one recorded input.
type entry struct {
	kind Kind
	u    uint64
	b    []byte
}

// Tape is an immutable recording of a computation's input sequence.
type Tape struct {
	label   string
	entries []entry
}

// Len returns the number of recorded inputs.
func (t *Tape) Len() int { return len(t.entries) }

// Label returns the name of the computation the tape was recorded from
// (the granule name), "" if the recorder was unlabeled.
func (t *Tape) Label() string { return t.label }

// Source is the input boundary a replicable computation reads through.
// Recorder and Replayer both implement it.
type Source interface {
	// U64 obtains the next 64-bit input (e.g. a timestamp, an RNG draw).
	U64() (uint64, error)
	// Bytes obtains the next byte-string input (e.g. a network message).
	Bytes() ([]byte, error)
	// Bool obtains the next boolean input (e.g. a channel-ready flag).
	Bool() (bool, error)
}

// Recorder wraps a live input provider and records everything it returns.
type Recorder struct {
	// Label names the computation being recorded (e.g. a taskrun granule).
	// It is carried onto the tape and into replay-divergence errors so a
	// supervisor can attribute a control-flow divergence to its granule.
	Label string
	// NextU64 supplies live 64-bit inputs.
	NextU64 func() uint64
	// NextBytes supplies live byte-string inputs.
	NextBytes func() []byte
	// NextBool supplies live boolean inputs.
	NextBool func() bool
	tape     Tape
}

// U64 implements Source.
func (r *Recorder) U64() (uint64, error) {
	if r.NextU64 == nil {
		return 0, errors.New("replay: no NextU64 provider")
	}
	v := r.NextU64()
	r.tape.entries = append(r.tape.entries, entry{kind: KindU64, u: v})
	return v, nil
}

// Bytes implements Source.
func (r *Recorder) Bytes() ([]byte, error) {
	if r.NextBytes == nil {
		return nil, errors.New("replay: no NextBytes provider")
	}
	v := r.NextBytes()
	cp := append([]byte(nil), v...)
	r.tape.entries = append(r.tape.entries, entry{kind: KindBytes, b: cp})
	return v, nil
}

// Bool implements Source.
func (r *Recorder) Bool() (bool, error) {
	if r.NextBool == nil {
		return false, errors.New("replay: no NextBool provider")
	}
	v := r.NextBool()
	var u uint64
	if v {
		u = 1
	}
	r.tape.entries = append(r.tape.entries, entry{kind: KindBool, u: u})
	return v, nil
}

// Tape returns the recording so far. The returned tape shares no mutable
// state with the recorder's future appends beyond the recorded prefix.
func (r *Recorder) Tape() *Tape {
	return &Tape{label: r.Label, entries: append([]entry(nil), r.tape.entries...)}
}

// Replayer feeds a tape back to a replica.
type Replayer struct {
	tape *Tape
	pos  int
}

// NewReplayer returns a replayer positioned at the start of the tape.
func NewReplayer(t *Tape) *Replayer { return &Replayer{tape: t} }

// Remaining returns the number of unconsumed entries.
func (p *Replayer) Remaining() int { return len(p.tape.entries) - p.pos }

// Position returns the index of the next entry to be consumed — on a
// divergence error, how far into the granule the replica got.
func (p *Replayer) Position() int { return p.pos }

// where renders the tape's granule label for error messages.
func (p *Replayer) where() string {
	if p.tape.label == "" {
		return ""
	}
	return fmt.Sprintf(" (granule %q)", p.tape.label)
}

func (p *Replayer) next(kind Kind) (entry, error) {
	if p.pos >= len(p.tape.entries) {
		return entry{}, fmt.Errorf("%w at position %d%s", ErrTapeExhausted, p.pos, p.where())
	}
	e := p.tape.entries[p.pos]
	if e.kind != kind {
		return entry{}, fmt.Errorf("%w at position %d%s: tape has %v, replica wants %v",
			ErrKindMismatch, p.pos, p.where(), e.kind, kind)
	}
	p.pos++
	return e, nil
}

// U64 implements Source.
func (p *Replayer) U64() (uint64, error) {
	e, err := p.next(KindU64)
	return e.u, err
}

// Bytes implements Source.
func (p *Replayer) Bytes() ([]byte, error) {
	e, err := p.next(KindBytes)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), e.b...), nil
}

// Bool implements Source.
func (p *Replayer) Bool() (bool, error) {
	e, err := p.next(KindBool)
	return e.u != 0, err
}
