package metrics

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/fleet"
	"repro/internal/screen"
)

func testFleetConfig() fleet.Config {
	cfg := fleet.DefaultConfig()
	cfg.Machines = 400
	cfg.CoresPerMachine = 16
	cfg.DefectsPerMachine = 0.05
	cfg.Seed = 7
	cfg.ConfessionConfig = screen.NewConfig(screen.WithPasses(30),
		screen.WithSweep(2, 1, 2), screen.WithMaxOps(8_000_000))
	return cfg
}

// TestDetectionDeterministicAcrossParallelism is the regression guard for
// the parallel fleet: the same Config.Seed must yield an identical
// DetectionReport and an identical quarantine ledger — including isolation
// order — whether the simulation runs serial or sharded.
func TestDetectionDeterministicAcrossParallelism(t *testing.T) {
	const days = 45
	type outcome struct {
		report DetectionReport
		ledger []string
	}
	run := func(parallelism int) outcome {
		r, err := fleet.NewRunner(testFleetConfig(), fleet.WithParallelism(parallelism))
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		r.Run(days)
		var refs []string
		for _, rec := range r.Fleet().Manager().Records() {
			refs = append(refs, rec.Ref.String())
		}
		return outcome{report: Detection(r.Fleet(), days), ledger: refs}
	}
	serial := run(1)
	if serial.report.Quarantined == 0 {
		t.Fatal("serial run quarantined nothing; test would be vacuous")
	}
	for _, p := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(p)
		if !reflect.DeepEqual(serial.report, got.report) {
			t.Errorf("parallelism %d: DetectionReport diverged\nserial: %+v\ngot:    %+v",
				p, serial.report, got.report)
		}
		if !reflect.DeepEqual(serial.ledger, got.ledger) {
			t.Errorf("parallelism %d: quarantine ledger order diverged\nserial: %v\ngot:    %v",
				p, serial.ledger, got.ledger)
		}
	}
}

func TestDetectionReport(t *testing.T) {
	f := fleet.New(testFleetConfig())
	const days = 45
	f.Run(days)
	rep := Detection(f, days)
	if rep.TotalDefective != len(f.Defects()) {
		t.Fatalf("total = %d, want %d", rep.TotalDefective, len(f.Defects()))
	}
	if rep.PastOnset > rep.TotalDefective || rep.PastOnset == 0 {
		t.Fatalf("past onset = %d of %d", rep.PastOnset, rep.TotalDefective)
	}
	if rep.TruePositive+rep.FalsePositive != rep.Quarantined {
		t.Fatalf("report inconsistent: %+v", rep)
	}
	if rep.Quarantined == 0 {
		t.Fatal("nothing quarantined; detection pipeline inert")
	}
	if f := rep.DetectedFraction(); f < 0 || f > 1 {
		t.Fatalf("detected fraction = %v", f)
	}
	for _, l := range rep.LatencyDays {
		if l < 0 || l > days {
			t.Fatalf("latency %v out of range", l)
		}
	}
	if len(rep.LatencyDays) != rep.TruePositive {
		t.Fatalf("latencies %d != TP %d", len(rep.LatencyDays), rep.TruePositive)
	}
	if rep.MeanLatencyDays() < 0 {
		t.Fatal("negative mean latency")
	}
}

func TestDetectedFractionEmpty(t *testing.T) {
	if (DetectionReport{}).DetectedFraction() != 0 {
		t.Fatal("empty report fraction should be 0")
	}
	if (DetectionReport{}).MeanLatencyDays() != 0 {
		t.Fatal("empty report latency should be 0")
	}
}

func TestOnsetDistribution(t *testing.T) {
	f := fleet.New(testFleetConfig())
	onsets := OnsetDistributionDays(f)
	if len(onsets) != len(f.Defects()) {
		t.Fatalf("onsets = %d", len(onsets))
	}
	immediate, latent := 0, 0
	for _, o := range onsets {
		if o < 0 {
			t.Fatalf("negative onset %v", o)
		}
		if o == 0 {
			immediate++
		} else {
			latent++
		}
	}
	// The catalog makes ~40% of defects latent; with a mixed population
	// both kinds must be present.
	if immediate == 0 || latent == 0 {
		t.Fatalf("population not mixed: immediate=%d latent=%d", immediate, latent)
	}
}

func TestAppVisibility(t *testing.T) {
	days := []fleet.DayStats{
		{Corruptions: 100, ByOutcome: [5]int64{25, 15, 5, 10, 45}},
		{Corruptions: 100, ByOutcome: [5]int64{25, 15, 5, 10, 45}},
	}
	av := AppVisibility(days, 10)
	if math.Abs(av.CorruptionsPerMachineDay-10) > 1e-9 {
		t.Fatalf("corruptions/machine-day = %v", av.CorruptionsPerMachineDay)
	}
	if math.Abs(av.DetectedPerMachineDay-3.5) > 1e-9 {
		t.Fatalf("detected/machine-day = %v", av.DetectedPerMachineDay)
	}
	if math.Abs(av.SilentFraction-0.45) > 1e-9 {
		t.Fatalf("silent fraction = %v", av.SilentFraction)
	}
	if math.Abs(av.CrashFraction-0.20) > 1e-9 {
		t.Fatalf("crash fraction = %v", av.CrashFraction)
	}
}

func TestAppVisibilityEmpty(t *testing.T) {
	if av := AppVisibility(nil, 10); av.CorruptionsPerMachineDay != 0 {
		t.Fatal("empty series should be zero")
	}
	if av := AppVisibility([]fleet.DayStats{{}}, 10); av.SilentFraction != 0 {
		t.Fatal("zero corruptions should give zero fractions")
	}
}

func TestCoverageCurveMonotoneTrend(t *testing.T) {
	// E12: more corpus coverage should never dramatically reduce the
	// detected fraction; typically it rises.
	cfg := testFleetConfig()
	cfg.Machines = 300
	pts := CoverageCurve(cfg, []int{1, 13}, 30)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Workloads != 1 || pts[1].Workloads != 13 {
		t.Fatalf("workload labels wrong: %+v", pts)
	}
	if pts[1].DetectedFraction < pts[0].DetectedFraction {
		t.Fatalf("full corpus (%v) detected less than single workload (%v)",
			pts[1].DetectedFraction, pts[0].DetectedFraction)
	}
}
