package metrics

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// DetectionFromTrace reconstructs the detection report purely from a CEE
// lifecycle trace — no access to the fleet's ground-truth structures. It
// is the observability counterpart of Detection: the trace carries the
// defect census (defect-present events), the quarantine ledger
// (quarantine/release events), and the activation times needed for
// latency, so a JSONL trace written by one process can be audited by
// another. For a trace produced by a complete run of runDays days, the
// result is bit-identical to Detection on the live fleet — including the
// float64 latency values — which the fleet tests cross-check at multiple
// worker counts.
func DetectionFromTrace(events []obs.TraceEvent, runDays int) (DetectionReport, error) {
	rep := DetectionReport{}
	now := float64(simtime.Time(runDays) * simtime.Day)

	// Ground-truth census. The truth map mirrors Detection's: keyed by
	// core, holding the defect's activation time in seconds.
	truth := map[sched.CoreRef]float64{}
	// Live quarantine ledger, replayed the way quarantine.Manager maintains
	// it: Handle appends, Release removes, surviving entries keep insertion
	// order.
	type quar struct {
		ref sched.CoreRef
		day int
	}
	var ledger []quar

	for _, ev := range events {
		ref := sched.CoreRef{Machine: ev.Machine, Core: ev.Core}
		switch ev.Event {
		case obs.EventDefectPresent:
			rep.TotalDefective++
			truth[ref] = ev.FirstActiveSec
			if ev.FirstActiveSec <= now {
				rep.PastOnset++
			}
		case obs.EventQuarantine:
			ledger = append(ledger, quar{ref: ref, day: ev.Day})
		case obs.EventRelease:
			for i := range ledger {
				if ledger[i].ref == ref {
					ledger = append(ledger[:i], ledger[i+1:]...)
					break
				}
			}
		}
	}
	if rep.TotalDefective == 0 {
		return rep, fmt.Errorf("metrics: trace has no %s events — not a fleet lifecycle trace?", obs.EventDefectPresent)
	}

	for _, q := range ledger {
		rep.Quarantined++
		firstActiveSec, ok := truth[q.ref]
		if !ok {
			rep.FalsePositive++
			continue
		}
		rep.TruePositive++
		// Same float64 expression as Detection: quarantine day minus
		// activation day (simtime.Time.Days divides by the same constant),
		// clamped at zero for defects quarantined before onset.
		latency := float64(q.day) - firstActiveSec/float64(simtime.Day)
		if latency < 0 {
			latency = 0
		}
		rep.LatencyDays = append(rep.LatencyDays, latency)
	}
	return rep, nil
}
