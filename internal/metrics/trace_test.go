package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
)

// traceOutcome is one traced fleet run: the ground-truth report computed
// from the live fleet, and the lifecycle trace serialized to JSONL.
type traceOutcome struct {
	report DetectionReport
	jsonl  string
}

func runTraced(t *testing.T, parallelism, days int) traceOutcome {
	t.Helper()
	cfg := testFleetConfig()
	// A denser defect population plus the RMA loop makes the trace carry
	// release/repair events alongside live quarantines, so the ledger
	// replay in DetectionFromTrace is actually exercised.
	cfg.DefectsPerMachine = 0.2
	cfg.RepairAfterDays = 25
	tr := obs.NewTrace()
	r, err := fleet.NewRunner(cfg,
		fleet.WithParallelism(parallelism), fleet.WithTrace(tr))
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	r.Run(days)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return traceOutcome{report: Detection(r.Fleet(), days), jsonl: buf.String()}
}

// TestDetectionFromTraceMatchesGroundTruth is the acceptance check for the
// lifecycle trace: a detection report derived purely from the JSONL trace
// (written and re-read, so it also proves float64 activation times survive
// serialization) must reproduce Detection on the live fleet bit for bit —
// counts and every latency value — and the trace itself must be
// byte-identical across worker counts.
func TestDetectionFromTraceMatchesGroundTruth(t *testing.T) {
	const days = 45
	serial := runTraced(t, 1, days)
	if serial.report.Quarantined == 0 {
		t.Fatal("serial run quarantined nothing; test would be vacuous")
	}
	if !strings.Contains(serial.jsonl, `"event":"release"`) {
		t.Fatal("trace contains no release events; ledger replay untested")
	}

	events, err := obs.ReadJSONL(strings.NewReader(serial.jsonl))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	got, err := DetectionFromTrace(events, days)
	if err != nil {
		t.Fatalf("DetectionFromTrace: %v", err)
	}
	if !reflect.DeepEqual(got, serial.report) {
		t.Errorf("trace-derived report diverged from ground truth\ntruth: %+v\ntrace: %+v",
			serial.report, got)
	}

	par := runTraced(t, 4, days)
	if par.jsonl != serial.jsonl {
		t.Error("JSONL trace diverged between parallelism 1 and 4")
	}
	if !reflect.DeepEqual(par.report, serial.report) {
		t.Errorf("ground truth diverged between parallelism 1 and 4\nserial: %+v\npar:    %+v",
			serial.report, par.report)
	}
}

func TestDetectionFromTraceRejectsNonLifecycleTrace(t *testing.T) {
	if _, err := DetectionFromTrace(nil, 10); err == nil {
		t.Fatal("expected error for empty trace")
	}
	events := []obs.TraceEvent{{Event: obs.EventFirstSignal, Machine: "m00001", Core: 3}}
	if _, err := DetectionFromTrace(events, 10); err == nil {
		t.Fatal("expected error for trace without defect census")
	}
}
