// Package metrics computes the §4 reliability metrics the paper says are
// needed but hard to define: the fraction of cores exhibiting CEEs (and
// its dependence on test coverage), age until onset, detection latency,
// and the rate of application-visible corruption.
package metrics

import (
	"repro/internal/corpus"
	"repro/internal/fleet"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/stats"
)

// DetectionReport summarizes ground truth vs the quarantine ledger after a
// fleet run.
type DetectionReport struct {
	// TotalDefective is the number of defective cores in the fleet.
	TotalDefective int
	// PastOnset is the number of defective cores whose defect had
	// become active by the end of the run.
	PastOnset int
	// Quarantined is the number of isolation records.
	Quarantined int
	// TruePositive / FalsePositive split quarantines by ground truth.
	TruePositive, FalsePositive int
	// LatencyDays holds, for each true positive, the days between the
	// defect becoming active and its quarantine.
	LatencyDays []float64
}

// DetectedFraction returns TruePositive / PastOnset (the §4 "fraction of
// cores that exhibit CEEs" a detector can claim to measure), or 0.
func (r DetectionReport) DetectedFraction() float64 {
	if r.PastOnset == 0 {
		return 0
	}
	return float64(r.TruePositive) / float64(r.PastOnset)
}

// MeanLatencyDays returns the mean detection latency, or 0.
func (r DetectionReport) MeanLatencyDays() float64 {
	var s stats.Summary
	for _, l := range r.LatencyDays {
		s.Add(l)
	}
	return s.Mean()
}

// Detection computes the report for a fleet after Run, with the run length
// in days (to evaluate onset).
func Detection(f *fleet.Fleet, runDays int) DetectionReport {
	rep := DetectionReport{}
	now := simtime.Time(runDays) * simtime.Day
	truth := map[sched.CoreRef]*fleet.DefectSite{}
	for _, d := range f.Defects() {
		rep.TotalDefective++
		ref := sched.CoreRef{Machine: d.Machine, Core: d.Core}
		truth[ref] = d
		if d.FirstActive <= now {
			rep.PastOnset++
		}
	}
	for _, rec := range f.Manager().Records() {
		rep.Quarantined++
		site, ok := truth[rec.Ref]
		if !ok {
			rep.FalsePositive++
			continue
		}
		rep.TruePositive++
		if day, ok := f.QuarantineDay(rec.Ref); ok {
			activeDay := site.FirstActive.Days()
			latency := float64(day) - activeDay
			if latency < 0 {
				latency = 0
			}
			rep.LatencyDays = append(rep.LatencyDays, latency)
		}
	}
	return rep
}

// OnsetDistributionDays returns the onset age, in days, of every defect in
// the fleet's population — §4's "age until onset" metric. Zero entries are
// defects that escaped manufacturing test already active.
func OnsetDistributionDays(f *fleet.Fleet) []float64 {
	out := make([]float64, 0, len(f.Defects()))
	for _, d := range f.Defects() {
		out = append(out, d.FirstActive.Days())
	}
	return out
}

// AppVisible summarizes corruption visibility from a daily series — §4's
// "rate and nature of application-visible corruptions".
type AppVisible struct {
	// CorruptionsPerMachineDay is the ground-truth CEE rate.
	CorruptionsPerMachineDay float64
	// DetectedPerMachineDay counts corruptions surfaced by any channel.
	DetectedPerMachineDay float64
	// SilentFraction is the share of corruptions never detected.
	SilentFraction float64
	// CrashFraction is the share manifesting fail-noisy.
	CrashFraction float64
}

// AppVisibility computes the summary over a run.
func AppVisibility(days []fleet.DayStats, machines int) AppVisible {
	var total, silent, crash, detected int64
	for _, d := range days {
		total += d.Corruptions
		silent += d.ByOutcome[fleet.OutcomeSilent]
		crash += d.ByOutcome[fleet.OutcomeCrash] + d.ByOutcome[fleet.OutcomeMCE]
		detected += d.ByOutcome[fleet.OutcomeImmediate] + d.ByOutcome[fleet.OutcomeLate]
	}
	md := float64(machines) * float64(len(days))
	if md == 0 {
		return AppVisible{}
	}
	out := AppVisible{
		CorruptionsPerMachineDay: float64(total) / md,
		DetectedPerMachineDay:    float64(detected) / md,
	}
	if total > 0 {
		out.SilentFraction = float64(silent) / float64(total)
		out.CrashFraction = float64(crash) / float64(total)
	}
	return out
}

// CoveragePoint is one point of the E12 curve: detected fraction as a
// function of the screening corpus size (§4: the fraction-of-cores metric
// "depends on test coverage").
type CoveragePoint struct {
	Workloads        int
	DetectedFraction float64
	Quarantined      int
}

// CoverageCurve runs an independent fleet per corpus size and reports the
// detected fraction each achieves. Fleets share the base config (and
// therefore the same defect population, since the population derives from
// the seed). The restriction applies to confession screens too: a defect
// class with no test yet is a "zero-day" CEE that cannot be confirmed
// (§4's point).
func CoverageCurve(base fleet.Config, corpusSizes []int, days int) []CoveragePoint {
	all := corpus.All()
	out := make([]CoveragePoint, 0, len(corpusSizes))
	for _, n := range corpusSizes {
		cfg := base
		cfg.InitialCorpus = n
		cfg.CorpusGrowEveryDays = 0
		if n <= len(all) {
			cfg.ConfessionConfig.Workloads = all[:n]
		}
		f := fleet.New(cfg)
		f.Run(days)
		rep := Detection(f, days)
		out = append(out, CoveragePoint{
			Workloads:        n,
			DetectedFraction: rep.DetectedFraction(),
			Quarantined:      rep.Quarantined,
		})
	}
	return out
}
