package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// NetFault is one kind of injectable network failure.
type NetFault int

const (
	// Drop fails the round trip with a transport error (connection never
	// established — the client cannot know whether the server saw it).
	Drop NetFault = iota
	// Reset fails the round trip with a connection-reset error after the
	// request was (as far as the client knows) sent.
	Reset
	// HTTP500 answers with a synthesized 500 without reaching the server.
	HTTP500
	// HTTP503 answers with a synthesized 503 (retryable backpressure).
	HTTP503
	// Delay sleeps the transport's configured delay, then forwards.
	Delay
)

func (k NetFault) String() string {
	switch k {
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case HTTP500:
		return "http500"
	case HTTP503:
		return "http503"
	case Delay:
		return "delay"
	}
	return fmt.Sprintf("NetFault(%d)", int(k))
}

// NetFaultByName resolves a fault name ("drop", "reset", "http500",
// "http503", "delay") for scenario event decoding.
func NetFaultByName(name string) (NetFault, error) {
	for _, k := range []NetFault{Drop, Reset, HTTP500, HTTP503, Delay} {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown network fault %q", name)
}

// Transport is an http.RoundTripper that consumes a deterministic FIFO
// queue of injected faults before forwarding to the base transport. Wrap
// a report.Client's or webhook notifier's HTTP client with it to partition
// the control plane from its reporters.
type Transport struct {
	mu    sync.Mutex
	base  http.RoundTripper
	queue []NetFault
	fired map[NetFault]int
	delay time.Duration
}

// NewTransport returns a fault-injecting round tripper over base (nil
// means http.DefaultTransport).
func NewTransport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, fired: map[NetFault]int{}}
}

// Inject queues n consecutive faults of the given kind; round trips
// consume the queue in order and behave normally once it is empty.
func (t *Transport) Inject(kind NetFault, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < n; i++ {
		t.queue = append(t.queue, kind)
	}
}

// SetDelay sets the sleep used by Delay faults (default 50ms).
func (t *Transport) SetDelay(d time.Duration) {
	t.mu.Lock()
	t.delay = d
	t.mu.Unlock()
}

// Fired returns how many faults of each kind have fired.
func (t *Transport) Fired() map[NetFault]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[NetFault]int, len(t.fired))
	for k, v := range t.fired {
		out[k] = v
	}
	return out
}

// Pending returns the number of faults still queued.
func (t *Transport) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.queue)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	if len(t.queue) == 0 {
		base := t.base
		t.mu.Unlock()
		return base.RoundTrip(req)
	}
	kind := t.queue[0]
	t.queue = t.queue[1:]
	t.fired[kind]++
	delay := t.delay
	base := t.base
	t.mu.Unlock()

	// The request body must be drained and closed on any path that does
	// not forward it, per the RoundTripper contract.
	consumeBody := func() {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
	}
	switch kind {
	case Drop:
		consumeBody()
		return nil, fmt.Errorf("%w: connection dropped", ErrInjected)
	case Reset:
		consumeBody()
		return nil, fmt.Errorf("%w: connection reset by peer", ErrInjected)
	case HTTP500, HTTP503:
		consumeBody()
		status := http.StatusInternalServerError
		if kind == HTTP503 {
			status = http.StatusServiceUnavailable
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			StatusCode: status,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"chaos: injected fault"}`)),
			Request: req,
		}, nil
	case Delay:
		if delay <= 0 {
			delay = 50 * time.Millisecond
		}
		select {
		case <-req.Context().Done():
			consumeBody()
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
		return base.RoundTrip(req)
	}
	consumeBody()
	return nil, fmt.Errorf("%w: unknown fault kind %v", ErrInjected, kind)
}
