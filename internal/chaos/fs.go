// Package chaos fault-injects the control plane's own infrastructure —
// the disk under the lifecycle WAL and the network under the report
// client and webhook notifier. The paper's §5 point is that detection and
// mitigation machinery runs on the same unreliable fleet it polices;
// this package is how the repo proves its control plane degrades
// gracefully when that machinery's disk fills, its writes tear, and its
// network drops.
//
// All fault arming is deterministic: callers arm "the next N operations
// fail" style counters, never probabilities, so chaos tests and scenario
// runs stay bit-identical.
package chaos

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/lifecycle"
)

// ErrInjected is the base error wrapped by every injected fault, so tests
// can assert a failure came from the harness and not the real system.
var ErrInjected = errors.New("chaos: injected fault")

// FS wraps a lifecycle.FS with deterministic write/sync fault injection.
// Arm faults at any time (methods are safe for concurrent use); an
// unarmed FS is a passthrough.
type FS struct {
	mu   sync.Mutex
	base lifecycle.FS

	failWrites int  // fail the next N writes outright (no bytes reach disk)
	tornWrites int  // next N writes persist only half their bytes, then fail
	failSyncs  int  // fail the next N fsyncs
	failTruncs int  // fail the next N truncates (breaks append rollback)
	enospc     bool // sticky: every write fails with a disk-full error
	injected   int  // total faults fired
}

// NewFS returns a fault-injecting filesystem over base (nil means the
// real filesystem).
func NewFS(base lifecycle.FS) *FS {
	if base == nil {
		base = lifecycle.OSFS()
	}
	return &FS{base: base}
}

// OpenFile opens the file on the base filesystem and wraps it with the
// fault seam.
func (c *FS) OpenFile(path string) (lifecycle.File, error) {
	f, err := c.base.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{fs: c, f: f}, nil
}

// FailWrites arms the next n writes to fail with no bytes written.
func (c *FS) FailWrites(n int) { c.mu.Lock(); c.failWrites += n; c.mu.Unlock() }

// TornWrites arms the next n writes to persist only half their bytes
// before failing — the torn-record signature.
func (c *FS) TornWrites(n int) { c.mu.Lock(); c.tornWrites += n; c.mu.Unlock() }

// FailSyncs arms the next n fsyncs to fail after the write succeeded.
func (c *FS) FailSyncs(n int) { c.mu.Lock(); c.failSyncs += n; c.mu.Unlock() }

// FailTruncates arms the next n truncates to fail — this is how a test
// breaks the WAL's append rollback and proves the log goes read-only
// instead of corrupting.
func (c *FS) FailTruncates(n int) { c.mu.Lock(); c.failTruncs += n; c.mu.Unlock() }

// SetENOSPC switches the sticky disk-full mode: while set, every write
// fails (fsync and truncate still work, as on a real full disk).
func (c *FS) SetENOSPC(full bool) { c.mu.Lock(); c.enospc = full; c.mu.Unlock() }

// Injected returns the total number of faults fired so far.
func (c *FS) Injected() int { c.mu.Lock(); defer c.mu.Unlock(); return c.injected }

// chaosFile interposes on the write path; reads and seeks pass through.
type chaosFile struct {
	fs *FS
	f  lifecycle.File
}

func (c *chaosFile) Read(p []byte) (int, error)                { return c.f.Read(p) }
func (c *chaosFile) Seek(off int64, whence int) (int64, error) { return c.f.Seek(off, whence) }
func (c *chaosFile) Close() error                              { return c.f.Close() }

func (c *chaosFile) Write(p []byte) (int, error) {
	c.fs.mu.Lock()
	switch {
	case c.fs.enospc:
		c.fs.injected++
		c.fs.mu.Unlock()
		return 0, fmt.Errorf("%w: write: no space left on device", ErrInjected)
	case c.fs.failWrites > 0:
		c.fs.failWrites--
		c.fs.injected++
		c.fs.mu.Unlock()
		return 0, fmt.Errorf("%w: write failed", ErrInjected)
	case c.fs.tornWrites > 0:
		c.fs.tornWrites--
		c.fs.injected++
		c.fs.mu.Unlock()
		n, err := c.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: torn write (%d of %d bytes)", ErrInjected, n, len(p))
	}
	c.fs.mu.Unlock()
	return c.f.Write(p)
}

func (c *chaosFile) Sync() error {
	c.fs.mu.Lock()
	if c.fs.failSyncs > 0 {
		c.fs.failSyncs--
		c.fs.injected++
		c.fs.mu.Unlock()
		return fmt.Errorf("%w: fsync failed", ErrInjected)
	}
	c.fs.mu.Unlock()
	return c.f.Sync()
}

func (c *chaosFile) Truncate(size int64) error {
	c.fs.mu.Lock()
	if c.fs.failTruncs > 0 {
		c.fs.failTruncs--
		c.fs.injected++
		c.fs.mu.Unlock()
		return fmt.Errorf("%w: truncate failed", ErrInjected)
	}
	c.fs.mu.Unlock()
	return c.f.Truncate(size)
}
