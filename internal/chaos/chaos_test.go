package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openFile(t *testing.T, fs *FS) interface {
	io.ReadWriteCloser
	Sync() error
	Truncate(int64) error
} {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(t.TempDir(), "f"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFSPassthroughWhenUnarmed(t *testing.T) {
	fs := NewFS(nil)
	f := openFile(t, fs)
	if n, err := f.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if fs.Injected() != 0 {
		t.Fatalf("injected = %d, want 0", fs.Injected())
	}
}

func TestFSFaultCountersConsumeExactly(t *testing.T) {
	fs := NewFS(nil)
	f := openFile(t, fs)
	fs.FailWrites(2)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: err %v, want injected", i, err)
		}
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after faults drained: %v", err)
	}

	fs.FailSyncs(1)
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: err %v, want injected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	fs.FailTruncates(1)
	if err := f.Truncate(0); !errors.Is(err, ErrInjected) {
		t.Fatalf("truncate: err %v, want injected", err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if fs.Injected() != 4 {
		t.Fatalf("injected = %d, want 4", fs.Injected())
	}
}

func TestFSTornWritePersistsHalf(t *testing.T) {
	fs := NewFS(nil)
	path := filepath.Join(t.TempDir(), "torn")
	f, err := fs.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fs.TornWrites(1)
	n, err := f.Write([]byte("12345678"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err %v, want injected", err)
	}
	if n != 4 {
		t.Fatalf("n = %d, want half the record (4)", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1234" {
		t.Fatalf("on disk %q, want the torn half %q", data, "1234")
	}
}

func TestFSENOSPCSticky(t *testing.T) {
	fs := NewFS(nil)
	f := openFile(t, fs)
	fs.SetENOSPC(true)
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("write %d: err %v, want injected (sticky)", i, err)
		}
	}
	// Sync and truncate still work on a full disk.
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.SetENOSPC(false)
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("write after clear: %v", err)
	}
}

func TestNetFaultNames(t *testing.T) {
	for _, k := range []NetFault{Drop, Reset, HTTP500, HTTP503, Delay} {
		got, err := NetFaultByName(k.String())
		if err != nil || got != k {
			t.Fatalf("round trip %v: got %v, err %v", k, got, err)
		}
	}
	if _, err := NetFaultByName("lightning"); err == nil {
		t.Fatal("unknown fault name must error")
	}
}

func TestTransportQueueFIFO(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	tr.Inject(Drop, 1)
	tr.Inject(HTTP503, 1)

	// First request consumes the drop: transport-level error, server unseen.
	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("first request: err %v, want connection dropped", err)
	}
	// Second consumes the synthesized 503 without reaching the server.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request status = %d, want 503", resp.StatusCode)
	}
	if hits != 0 {
		t.Fatalf("server saw %d requests during faults, want 0", hits)
	}
	// Queue empty: passthrough.
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hits != 1 {
		t.Fatalf("passthrough: status %d hits %d, want 200/1", resp.StatusCode, hits)
	}
	if tr.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", tr.Pending())
	}
	fired := tr.Fired()
	if fired[Drop] != 1 || fired[HTTP503] != 1 {
		t.Fatalf("fired = %v, want one drop and one 503", fired)
	}
}

func TestTransportResetAndBodyDrain(t *testing.T) {
	tr := NewTransport(nil)
	client := &http.Client{Transport: tr}
	tr.Inject(Reset, 1)
	// POST with a body exercises the consume-body path of the contract.
	_, err := client.Post("http://127.0.0.1:0/unreachable", "text/plain", strings.NewReader("payload"))
	if err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("err %v, want connection reset", err)
	}
}
