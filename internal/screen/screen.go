// Package screen implements the mercurial-core screening infrastructure of
// §6: running the self-checking corpus against cores, offline (drained
// core, full corpus, operating-point sweeps) and online (spare-cycle
// sampling with partial coverage), with cost and coverage accounting.
//
// Screening is the paper's "first line of defense": testing as part of the
// full lifecycle of a CPU, not just burn-in.
package screen

import (
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/xrand"
)

// Config parameterizes one screening session.
type Config struct {
	// Workloads is the corpus subset to run; nil means corpus.All().
	Workloads []corpus.Workload
	// Passes repeats the whole corpus this many times per operating
	// point (intermittent defects need repetition). Minimum 1.
	Passes int
	// Points is the set of operating points to sweep; nil means screen
	// only at the core's current point. Offline screening "could involve
	// exposing CPUs to operating conditions outside normal ranges" (§6).
	Points []fault.OperatingPoint
	// StopOnDetect ends the session at the first detection, the cheap
	// policy; when false the full budget runs (better characterization).
	StopOnDetect bool
	// MaxOps bounds the session's engine-operation budget; 0 = unlimited.
	MaxOps uint64
	// Metrics, when set, receives screening telemetry (sessions, passes,
	// detections, ops). Recording is lock-free, so sessions sharded
	// across workers may share one registry. Nil records nothing.
	Metrics *obs.Registry
}

// record folds one finished session report into the configured registry.
func (cfg *Config) record(rep *Report) {
	r := cfg.Metrics
	if r == nil {
		return
	}
	r.Counter("screen_sessions_total").Inc()
	r.Counter("screen_passes_total").Add(float64(rep.PassesRun))
	r.Counter("screen_ops_total").Add(float64(rep.OpsUsed))
	if rep.Detected {
		r.Counter("screen_sessions_detected_total").Inc()
	}
	r.Counter("screen_detections_total").Add(float64(len(rep.Detections)))
}

// Quick returns the cheap screening config used for online and routine
// fleet screening: one pass at the current operating point.
func Quick() Config { return NewConfig() }

// Deep returns the thorough config used for confession testing of
// suspects: many passes over an operating-point sweep.
func Deep() Config {
	return NewConfig(WithPasses(8), WithSweep(3, 3, 3))
}

// SweepPoints builds an (f, V, T) grid around the nominal point with the
// given number of steps per axis, including stress corners.
func SweepPoints(fSteps, vSteps, tSteps int) []fault.OperatingPoint {
	if fSteps < 1 {
		fSteps = 1
	}
	if vSteps < 1 {
		vSteps = 1
	}
	if tSteps < 1 {
		tSteps = 1
	}
	freqs := axis(2.0, 3.6, fSteps)
	volts := axis(0.85, 1.1, vSteps)
	temps := axis(40, 95, tSteps)
	var pts []fault.OperatingPoint
	for _, f := range freqs {
		for _, v := range volts {
			for _, t := range temps {
				pts = append(pts, fault.OperatingPoint{FreqGHz: f, VoltageV: v, TempC: t})
			}
		}
	}
	return pts
}

func axis(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{(lo + hi) / 2}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// Detection records one failed workload run during screening.
type Detection struct {
	Result corpus.Result
	Point  fault.OperatingPoint
	Pass   int
}

// Report summarizes one screening session.
type Report struct {
	CoreID string
	// Detected is true if any workload failed a self-check or trapped.
	Detected bool
	// Detections lists every failure observed (first one first).
	Detections []Detection
	// OpsUsed is the total engine operations consumed — the screening
	// cost that §6's offline/online trade-off is about.
	OpsUsed uint64
	// OpsToFirstDetection is the cost until the first detection
	// (equals OpsUsed when nothing was detected).
	OpsToFirstDetection uint64
	// PassesRun counts completed (point, pass) corpus iterations.
	PassesRun int
	// UnitsCovered are the execution units exercised by the workloads
	// that actually ran.
	UnitsCovered map[fault.Unit]bool
}

// Screen runs one screening session against core. The core's operating
// point is saved and restored around sweeps. Determinism: same core state,
// config, and rng seed produce the same report.
func Screen(core *fault.Core, cfg Config, rng *xrand.RNG) Report {
	ws := cfg.Workloads
	if ws == nil {
		ws = corpus.All()
	}
	passes := cfg.Passes
	if passes < 1 {
		passes = 1
	}
	points := cfg.Points
	restore := core.Point
	defer func() { core.Point = restore }()
	if points == nil {
		points = []fault.OperatingPoint{restore}
	}

	e := engine.New(core)
	rep := Report{CoreID: core.ID, UnitsCovered: map[fault.Unit]bool{}}
	startOps := core.TotalOps()
	defer func() { cfg.record(&rep) }()

	// Pass-major order: every operating point is visited once per pass,
	// so stress corners are reached early even under a tight op budget.
	// (§4 notes that the order of the (f,V,T) sweep impacts
	// time-to-failure; point-major order can exhaust the budget before
	// ever leaving the first corner.)
	for pass := 0; pass < passes; pass++ {
		for _, pt := range points {
			core.Point = pt
			for _, w := range ws {
				if cfg.MaxOps > 0 && core.TotalOps()-startOps >= cfg.MaxOps {
					rep.OpsUsed = core.TotalOps() - startOps
					if !rep.Detected {
						rep.OpsToFirstDetection = rep.OpsUsed
					}
					return rep
				}
				res := w.Run(e, rng)
				for _, u := range w.Units() {
					rep.UnitsCovered[u] = true
				}
				if res.Verdict != corpus.Pass {
					if !rep.Detected {
						rep.Detected = true
						rep.OpsToFirstDetection = core.TotalOps() - startOps
					}
					rep.Detections = append(rep.Detections, Detection{
						Result: res, Point: pt, Pass: rep.PassesRun,
					})
					if cfg.StopOnDetect {
						rep.OpsUsed = core.TotalOps() - startOps
						rep.PassesRun++
						return rep
					}
				}
			}
			rep.PassesRun++
		}
	}
	rep.OpsUsed = core.TotalOps() - startOps
	if !rep.Detected {
		rep.OpsToFirstDetection = rep.OpsUsed
	}
	return rep
}

// ScreenAll screens a batch of cores — the machine-acceptance / burn-in
// flow — sharding the cores across up to `parallelism` workers
// (parallelism <= 0 selects GOMAXPROCS). Each core gets its own RNG
// derived from seed and its batch index, so the reports are bit-identical
// at any worker count and match a serial run core by core. Cores must be
// distinct: a screening session mutates the core it tests (operating
// point, op counters, RNG stream).
func ScreenAll(cores []*fault.Core, cfg Config, seed uint64, parallelism int) []Report {
	out := make([]Report, len(cores))
	parallel.ForEach(parallelism, len(cores), func(i int) {
		out[i] = Screen(cores[i], cfg, xrand.New(seed+uint64(i)))
	})
	return out
}

// Online models spare-cycle screening (§6): each Tick runs a few randomly
// chosen workloads within a small op budget, accumulating coverage over
// many ticks instead of draining the core.
type Online struct {
	// BudgetOps bounds engine operations per tick.
	BudgetOps uint64
	// Workloads is the corpus to sample from; nil means corpus.All().
	Workloads []corpus.Workload
	// Metrics, when set, receives per-tick telemetry (lock-free; safe to
	// share across worker goroutines). Nil records nothing.
	Metrics *obs.Registry

	// Sharded counter handles resolved by Bind. When unbound, ticks fall
	// back to per-tick registry lookups (correct but slower: every tick
	// takes the registry mutex and every worker contends on one cell).
	ticks, ops, detections *obs.ShardedCounter
}

// onlineCounterNames are the per-tick telemetry series. They register as
// sharded counters so concurrent workers never contend on a cache line;
// snapshots merge the shards and render a plain counter.
const (
	onlineTicksName      = "screen_online_ticks_total"
	onlineOpsName        = "screen_online_ops_total"
	onlineDetectionsName = "screen_online_detections_total"
)

// Bind resolves the per-tick counters once, sharded across `workers`
// cells, so recording from worker w (TickOn) is a single uncontended
// atomic add. Call from one goroutine before fanning ticks out; a nil
// Metrics registry makes Bind a no-op.
func (o *Online) Bind(workers int) {
	if o.Metrics == nil {
		return
	}
	o.ticks = o.Metrics.ShardedCounter(onlineTicksName, workers)
	o.ops = o.Metrics.ShardedCounter(onlineOpsName, workers)
	o.detections = o.Metrics.ShardedCounter(onlineDetectionsName, workers)
}

// Tick runs one online screening slice against core and returns the
// (possibly empty) detections plus the ops consumed.
func (o *Online) Tick(core *fault.Core, rng *xrand.RNG) ([]corpus.Result, uint64) {
	return o.TickOn(core, rng, 0)
}

// TickOn is Tick with the caller's worker identity, which routes the
// telemetry to that worker's counter shard (see parallel.ForEachWorker).
func (o *Online) TickOn(core *fault.Core, rng *xrand.RNG, worker int) ([]corpus.Result, uint64) {
	ws := o.Workloads
	if ws == nil {
		ws = corpus.All()
	}
	budget := o.BudgetOps
	if budget == 0 {
		budget = 100_000
	}
	e := engine.New(core)
	start := core.TotalOps()
	var found []corpus.Result
	for core.TotalOps()-start < budget {
		w := ws[rng.Intn(len(ws))]
		res := w.Run(e, rng)
		if res.Verdict != corpus.Pass {
			found = append(found, res)
		}
	}
	ops := core.TotalOps() - start
	switch {
	case o.ticks != nil:
		o.ticks.Shard(worker).Inc()
		o.ops.Shard(worker).Add(float64(ops))
		o.detections.Shard(worker).Add(float64(len(found)))
	case o.Metrics != nil:
		// Unbound path: look the sharded families up per tick so the
		// series stay kind-consistent with the bound path.
		o.Metrics.ShardedCounter(onlineTicksName, 1).Shard(worker).Inc()
		o.Metrics.ShardedCounter(onlineOpsName, 1).Shard(worker).Add(float64(ops))
		o.Metrics.ShardedCounter(onlineDetectionsName, 1).Shard(worker).Add(float64(len(found)))
	}
	return found, ops
}
