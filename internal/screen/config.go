package screen

import (
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
)

// ConfigOption configures a screening Config under construction — the
// single way the repository composes screening sessions. The Config struct
// remains public for wire/struct compatibility, but new code should build
// it via NewConfig rather than hand-writing literals.
type ConfigOption func(*Config)

// NewConfig returns a screening configuration: the cheap baseline (one
// pass, current operating point, stop at first detection) refined by the
// given options.
func NewConfig(opts ...ConfigOption) Config {
	cfg := Config{Passes: 1, StopOnDetect: true}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithWorkloads restricts the session to a corpus subset (nil means the
// full corpus).
func WithWorkloads(ws []corpus.Workload) ConfigOption {
	return func(c *Config) { c.Workloads = ws }
}

// WithPasses repeats the corpus the given number of times per operating
// point; intermittent defects need repetition.
func WithPasses(n int) ConfigOption {
	return func(c *Config) { c.Passes = n }
}

// WithSweep screens over an (f, V, T) grid with the given steps per axis,
// including stress corners — §6's "operating conditions outside normal
// ranges".
func WithSweep(fSteps, vSteps, tSteps int) ConfigOption {
	return func(c *Config) { c.Points = SweepPoints(fSteps, vSteps, tSteps) }
}

// WithPoints screens at an explicit set of operating points.
func WithPoints(pts []fault.OperatingPoint) ConfigOption {
	return func(c *Config) { c.Points = pts }
}

// WithMaxOps bounds the session's engine-operation budget (0 = unlimited).
func WithMaxOps(n uint64) ConfigOption {
	return func(c *Config) { c.MaxOps = n }
}

// WithStopOnDetect selects between the cheap policy (true: end at the
// first detection) and full characterization (false: spend the whole
// budget and collect every failure — what forensics and SafeTasks need).
func WithStopOnDetect(stop bool) ConfigOption {
	return func(c *Config) { c.StopOnDetect = stop }
}

// WithMetrics routes the session's screening telemetry (sessions, passes,
// detections, ops) into reg. Nil records nothing.
func WithMetrics(reg *obs.Registry) ConfigOption {
	return func(c *Config) { c.Metrics = reg }
}
