package screen

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

func TestHealthyCorePassesDeepScreen(t *testing.T) {
	core := fault.NewCore("h", xrand.New(1))
	rep := Screen(core, Deep(), xrand.New(2))
	if rep.Detected {
		t.Fatalf("healthy core flagged: %+v", rep.Detections[0])
	}
	if rep.OpsUsed == 0 || rep.PassesRun == 0 {
		t.Fatal("screen did no work")
	}
	if rep.CoreID != "h" {
		t.Fatalf("core id %q", rep.CoreID)
	}
}

func TestQuickScreenCatchesHotDefect(t *testing.T) {
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, BaseRate: 1e-3,
		Kind: fault.CorruptBitFlip, BitPos: 11}
	core := fault.NewCore("m", xrand.New(3), d)
	rep := Screen(core, Quick(), xrand.New(4))
	if !rep.Detected {
		t.Fatal("quick screen missed a high-rate ALU defect")
	}
	if len(rep.Detections) == 0 {
		t.Fatal("detected but no detections recorded")
	}
	if rep.OpsToFirstDetection == 0 || rep.OpsToFirstDetection > rep.OpsUsed {
		t.Fatalf("cost accounting wrong: first=%d total=%d",
			rep.OpsToFirstDetection, rep.OpsUsed)
	}
}

func TestQuickScreenMissesColdDefect(t *testing.T) {
	// A 1e-12 defect cannot be caught in one corpus pass — the paper's
	// coverage problem.
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, BaseRate: 1e-12,
		Kind: fault.CorruptBitFlip, BitPos: 11}
	core := fault.NewCore("m", xrand.New(5), d)
	rep := Screen(core, Quick(), xrand.New(6))
	if rep.Detected {
		t.Fatal("quick screen implausibly caught a 1e-12 defect")
	}
}

func TestDeepScreenBeatsQuickOnMediumDefect(t *testing.T) {
	// A medium-rate defect: quick screen mostly misses, deep screen
	// mostly catches — the detection/cost trade-off of §6.
	mk := func(seed uint64) *fault.Core {
		d := fault.Defect{ID: "d", Unit: fault.UnitMul, BaseRate: 2e-6,
			Kind: fault.CorruptBitFlip, BitPos: 33,
			Sens: fault.Sensitivity{Freq: 1.2, Volt: 1.0, Temp: 0.4}}
		return fault.NewCore("m", xrand.New(seed), d)
	}
	quickHits, deepHits := 0, 0
	const trials = 10
	for i := uint64(0); i < trials; i++ {
		if Screen(mk(i), Quick(), xrand.New(100+i)).Detected {
			quickHits++
		}
		if Screen(mk(i), Deep(), xrand.New(100+i)).Detected {
			deepHits++
		}
	}
	if deepHits <= quickHits {
		t.Fatalf("deep screen (%d/%d) not better than quick (%d/%d)",
			deepHits, trials, quickHits, trials)
	}
}

func TestScreenRestoresOperatingPoint(t *testing.T) {
	core := fault.NewCore("h", xrand.New(7))
	orig := core.Point
	Screen(core, Deep(), xrand.New(8))
	if core.Point != orig {
		t.Fatalf("operating point not restored: %+v", core.Point)
	}
}

func TestScreenRespectsOpsBudget(t *testing.T) {
	core := fault.NewCore("h", xrand.New(9))
	cfg := Deep()
	cfg.MaxOps = 50_000
	rep := Screen(core, cfg, xrand.New(10))
	// The budget check runs between workloads, so allow one workload of
	// overshoot.
	if rep.OpsUsed > cfg.MaxOps+5_000_000 {
		t.Fatalf("ops budget wildly exceeded: %d", rep.OpsUsed)
	}
	if rep.OpsUsed < cfg.MaxOps/2 {
		t.Fatalf("budget barely used: %d", rep.OpsUsed)
	}
}

func TestScreenCoverageAccounting(t *testing.T) {
	core := fault.NewCore("h", xrand.New(11))
	rep := Screen(core, Quick(), xrand.New(12))
	for _, u := range []fault.Unit{fault.UnitALU, fault.UnitMul, fault.UnitVec,
		fault.UnitCrypto, fault.UnitAtomic, fault.UnitFPU, fault.UnitLSU} {
		if !rep.UnitsCovered[u] {
			t.Fatalf("unit %v not covered by full corpus", u)
		}
	}
}

func TestScreenStopOnDetectFalseKeepsGoing(t *testing.T) {
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, BaseRate: 1e-3,
		Kind: fault.CorruptBitFlip, BitPos: 2}
	core := fault.NewCore("m", xrand.New(13), d)
	cfg := Config{Passes: 3}
	rep := Screen(core, cfg, xrand.New(14))
	if !rep.Detected {
		t.Fatal("no detection")
	}
	if len(rep.Detections) < 2 {
		t.Fatalf("expected multiple detections without StopOnDetect, got %d", len(rep.Detections))
	}
	if rep.PassesRun != 3 {
		t.Fatalf("PassesRun = %d, want 3", rep.PassesRun)
	}
}

func TestScreenDeterministic(t *testing.T) {
	mk := func() *fault.Core {
		d := fault.Defect{ID: "d", Unit: fault.UnitVec, BaseRate: 1e-4,
			Kind: fault.CorruptWrongLane}
		return fault.NewCore("m", xrand.New(15), d)
	}
	r1 := Screen(mk(), Quick(), xrand.New(16))
	r2 := Screen(mk(), Quick(), xrand.New(16))
	if r1.Detected != r2.Detected || r1.OpsUsed != r2.OpsUsed ||
		len(r1.Detections) != len(r2.Detections) {
		t.Fatalf("screen not deterministic: %+v vs %+v", r1, r2)
	}
}

func TestSweepPoints(t *testing.T) {
	pts := SweepPoints(3, 2, 2)
	if len(pts) != 12 {
		t.Fatalf("got %d points, want 12", len(pts))
	}
	pts = SweepPoints(1, 1, 1)
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	pts = SweepPoints(0, 0, 0)
	if len(pts) != 1 {
		t.Fatalf("clamped sweep: %d points", len(pts))
	}
}

func TestSweepIncludesStressCorners(t *testing.T) {
	pts := SweepPoints(3, 3, 3)
	var sawHot, sawCold, sawLowV bool
	for _, p := range pts {
		if p.TempC >= 90 {
			sawHot = true
		}
		if p.FreqGHz <= 2.1 {
			sawCold = true
		}
		if p.VoltageV <= 0.86 {
			sawLowV = true
		}
	}
	if !sawHot || !sawCold || !sawLowV {
		t.Fatal("sweep misses stress corners")
	}
}

func TestFVTSweepCatchesLowFreqDefect(t *testing.T) {
	// A §5 lower-frequency-worse defect: nearly silent at nominal 3 GHz,
	// hot at 2 GHz. The sweep must catch it.
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, BaseRate: 3e-7,
		Sens: fault.Sensitivity{Freq: -6},
		Kind: fault.CorruptXORMask, Mask: 0x40}
	catches := 0
	const trials = 8
	for i := uint64(0); i < trials; i++ {
		core := fault.NewCore("m", xrand.New(30+i), d)
		cfg := Config{Passes: 2, Points: SweepPoints(3, 1, 1), StopOnDetect: true}
		rep := Screen(core, cfg, xrand.New(40+i))
		if rep.Detected {
			catches++
			// The detection should come from a low-frequency point.
			if rep.Detections[0].Point.FreqGHz > 2.9 {
				t.Fatalf("detection at high frequency %v is implausible",
					rep.Detections[0].Point.FreqGHz)
			}
		}
	}
	if catches == 0 {
		t.Fatal("sweep never caught the low-frequency defect")
	}
}

func TestLatentDefectInvisibleUntilOnset(t *testing.T) {
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, BaseRate: 1e-3,
		Kind: fault.CorruptBitFlip, BitPos: 8, Onset: 2 * simtime.Year}
	core := fault.NewCore("m", xrand.New(17), d)
	core.Age = simtime.Year
	if Screen(core, Quick(), xrand.New(18)).Detected {
		t.Fatal("latent defect detected before onset")
	}
	core.Age = 3 * simtime.Year
	if !Screen(core, Quick(), xrand.New(19)).Detected {
		t.Fatal("defect not detected after onset")
	}
}

func TestOnlineTickBudget(t *testing.T) {
	core := fault.NewCore("h", xrand.New(20))
	o := Online{BudgetOps: 200_000}
	found, ops := o.Tick(core, xrand.New(21))
	if len(found) != 0 {
		t.Fatal("healthy core produced online detections")
	}
	if ops < 200_000 {
		t.Fatalf("online tick underused budget: %d", ops)
	}
	if ops > 10_000_000 {
		t.Fatalf("online tick wildly overran budget: %d", ops)
	}
}

func TestOnlineEventuallyCatchesDefect(t *testing.T) {
	d := fault.Defect{ID: "d", Unit: fault.UnitVec, BaseRate: 1e-4,
		Kind: fault.CorruptBitFlip, BitPos: 21}
	core := fault.NewCore("m", xrand.New(22), d)
	o := Online{BudgetOps: 100_000}
	rng := xrand.New(23)
	caught := false
	for tick := 0; tick < 200 && !caught; tick++ {
		found, _ := o.Tick(core, rng)
		caught = len(found) > 0
	}
	if !caught {
		t.Fatal("online screening never caught a 1e-4 VEC defect in 200 ticks")
	}
}

func TestOnlineDefaultBudget(t *testing.T) {
	core := fault.NewCore("h", xrand.New(24))
	var o Online
	_, ops := o.Tick(core, xrand.New(25))
	if ops == 0 {
		t.Fatal("zero-value Online did no work")
	}
}

func BenchmarkQuickScreenHealthy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core := fault.NewCore("h", xrand.New(1))
		Screen(core, Quick(), xrand.New(2))
	}
}
