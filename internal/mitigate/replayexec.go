package mitigate

import (
	"bytes"

	"repro/internal/engine"
	"repro/internal/replay"
)

// ReplayComputation is a computation with a nondeterministic input
// boundary: all external inputs must be read through in, so replicas can
// be fed the identical sequence. Output bytes are the votable result.
type ReplayComputation func(e *engine.Engine, in replay.Source) ([]byte, error)

// VerifyReplay is the DMR half of the replay sketch: re-run a recorded
// computation on a second (verifier) engine from its tape and compare the
// output against the primary's bytes. agree is false when the verifier
// errors, traps, or produces different bytes — with identical inputs any
// of those is a disagreement only hardware can explain. A non-nil err
// means the verifier could not even follow the tape (control-flow
// divergence: tape exhaustion or kind mismatch) or the computation itself
// failed on the verifier; the caller decides which side to blame, since
// DMR by construction cannot.
func VerifyReplay(verifier *engine.Engine, comp ReplayComputation, tape *replay.Tape, primary []byte) (agree bool, st Stats, err error) {
	core := verifier.Core()
	before := core.TotalOps()
	out, err := comp(verifier, replay.NewReplayer(tape))
	st.Executions++
	st.Ops += core.TotalOps() - before
	if err != nil {
		st.Disagreements++
		return false, st, err
	}
	if verifier.Trapped() != nil || !bytes.Equal(out, primary) {
		st.Disagreements++
		return false, st, nil
	}
	return true, st, nil
}

// TMRWithReplay implements §7's replicated-execution sketch for
// nondeterministic computations: the first execution runs against live
// inputs through rec (recording them), then two replicas replay the tape
// on different cores, and the three outputs are majority-voted. Replica
// control-flow divergence (tape exhaustion or kind mismatch) counts as a
// failed replica — it is itself a CEE symptom, since with identical
// inputs only the hardware can differ.
func (x *Executor) TMRWithReplay(comp ReplayComputation, rec *replay.Recorder) ([]byte, Stats, error) {
	var st Stats
	idx, err := x.pick(3, nil)
	if err != nil {
		return nil, st, err
	}
	outs := make([][]byte, 0, 3)

	// Primary: live inputs, recorded.
	primary, err := func() (out []byte, err error) {
		core := x.cores[idx[0]]
		before := core.TotalOps()
		defer func() {
			st.Executions++
			st.Ops += core.TotalOps() - before
		}()
		return comp(engine.New(core), rec)
	}()
	if err != nil {
		return nil, st, err
	}
	outs = append(outs, primary)
	tape := rec.Tape()

	// Replicas: identical inputs from the tape.
	for _, ci := range idx[1:] {
		core := x.cores[ci]
		before := core.TotalOps()
		out, err := comp(engine.New(core), replay.NewReplayer(tape))
		st.Executions++
		st.Ops += core.TotalOps() - before
		if err != nil {
			st.Disagreements++
			continue
		}
		outs = append(outs, out)
	}

	// Majority vote over the surviving outputs (2-of-3 needed).
	for i, a := range outs {
		votes := 1
		for j, b := range outs {
			if i != j && bytes.Equal(a, b) {
				votes++
			}
		}
		if votes >= 2 {
			if votes != 3 {
				st.Disagreements++
			}
			return a, st, nil
		}
	}
	st.Disagreements++
	return nil, st, ErrNoQuorum
}
