package mitigate

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/replay"
	"repro/internal/xrand"
)

// nondetComp consumes nondeterministic inputs (an RNG standing in for
// timestamps/messages) and reduces them through the engine: impossible to
// vote on without record/replay, trivial with it.
func nondetComp(e *engine.Engine, in replay.Source) ([]byte, error) {
	var sum uint64
	for i := 0; i < 50; i++ {
		v, err := in.U64()
		if err != nil {
			return nil, err
		}
		sum = e.Add64(sum, v)
		flag, err := in.Bool()
		if err != nil {
			return nil, err
		}
		if flag {
			sum = e.Mul64(sum|1, 3)
		}
	}
	return []byte(fmt.Sprintf("%d", sum)), nil
}

func liveRecorder(seed uint64) *replay.Recorder {
	rng := xrand.New(seed)
	return &replay.Recorder{
		NextU64:  rng.Uint64,
		NextBool: func() bool { return rng.Bernoulli(0.3) },
	}
}

func TestTMRWithReplayHealthy(t *testing.T) {
	x := NewExecutor(healthyPool(3, 31), 32)
	out, st, err := x.TMRWithReplay(nondetComp, liveRecorder(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	if st.Executions != 3 || st.Disagreements != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTMRWithReplayOutvotesBadCore(t *testing.T) {
	// Despite nondeterministic inputs, the bad core's replica diverges
	// and the two healthy replicas win — the point of §7's
	// deterministic-replay suggestion.
	for seed := uint64(0); seed < 8; seed++ {
		x := NewExecutor(poolWithBadCore(3, seed), seed+40)
		out, st, err := x.TMRWithReplay(nondetComp, liveRecorder(seed+100))
		if err != nil {
			t.Fatalf("seed %d: %v (stats %+v)", seed, err, st)
		}
		// Verify against a native recomputation from a fresh identical
		// input stream.
		rng := xrand.New(seed + 100)
		var want uint64
		for i := 0; i < 50; i++ {
			want += rng.Uint64()
			if rng.Bernoulli(0.3) {
				want = (want | 1) * 3
			}
		}
		if string(out) != fmt.Sprintf("%d", want) {
			t.Fatalf("seed %d: wrong answer %s survived replay-TMR", seed, out)
		}
		// The bad core corrupts every add, so one replica must have
		// disagreed (whether it was primary or replica).
		if st.Disagreements == 0 {
			t.Fatalf("seed %d: bad core never disagreed", seed)
		}
	}
}

func TestTMRWithReplayPoolTooSmall(t *testing.T) {
	x := NewExecutor(healthyPool(2, 33), 34)
	if _, _, err := x.TMRWithReplay(nondetComp, liveRecorder(2)); err == nil {
		t.Fatal("pool of 2 accepted for replay-TMR")
	}
}

func TestTMRWithReplayPrimaryError(t *testing.T) {
	x := NewExecutor(healthyPool(3, 35), 36)
	// A recorder with no providers makes the primary fail cleanly.
	_, _, err := x.TMRWithReplay(nondetComp, &replay.Recorder{})
	if err == nil {
		t.Fatal("primary input failure not propagated")
	}
}
