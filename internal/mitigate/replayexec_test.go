package mitigate

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/replay"
	"repro/internal/xrand"
)

// nondetComp consumes nondeterministic inputs (an RNG standing in for
// timestamps/messages) and reduces them through the engine: impossible to
// vote on without record/replay, trivial with it.
func nondetComp(e *engine.Engine, in replay.Source) ([]byte, error) {
	var sum uint64
	for i := 0; i < 50; i++ {
		v, err := in.U64()
		if err != nil {
			return nil, err
		}
		sum = e.Add64(sum, v)
		flag, err := in.Bool()
		if err != nil {
			return nil, err
		}
		if flag {
			sum = e.Mul64(sum|1, 3)
		}
	}
	return []byte(fmt.Sprintf("%d", sum)), nil
}

func liveRecorder(seed uint64) *replay.Recorder {
	rng := xrand.New(seed)
	return &replay.Recorder{
		NextU64:  rng.Uint64,
		NextBool: func() bool { return rng.Bernoulli(0.3) },
	}
}

func TestTMRWithReplayHealthy(t *testing.T) {
	x := NewExecutor(healthyPool(3, 31), 32)
	out, st, err := x.TMRWithReplay(nondetComp, liveRecorder(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	if st.Executions != 3 || st.Disagreements != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTMRWithReplayOutvotesBadCore(t *testing.T) {
	// Despite nondeterministic inputs, the bad core's replica diverges
	// and the two healthy replicas win — the point of §7's
	// deterministic-replay suggestion.
	for seed := uint64(0); seed < 8; seed++ {
		x := NewExecutor(poolWithBadCore(3, seed), seed+40)
		out, st, err := x.TMRWithReplay(nondetComp, liveRecorder(seed+100))
		if err != nil {
			t.Fatalf("seed %d: %v (stats %+v)", seed, err, st)
		}
		// Verify against a native recomputation from a fresh identical
		// input stream.
		rng := xrand.New(seed + 100)
		var want uint64
		for i := 0; i < 50; i++ {
			want += rng.Uint64()
			if rng.Bernoulli(0.3) {
				want = (want | 1) * 3
			}
		}
		if string(out) != fmt.Sprintf("%d", want) {
			t.Fatalf("seed %d: wrong answer %s survived replay-TMR", seed, out)
		}
		// The bad core corrupts every add, so one replica must have
		// disagreed (whether it was primary or replica).
		if st.Disagreements == 0 {
			t.Fatalf("seed %d: bad core never disagreed", seed)
		}
	}
}

func TestTMRWithReplayPoolTooSmall(t *testing.T) {
	x := NewExecutor(healthyPool(2, 33), 34)
	if _, _, err := x.TMRWithReplay(nondetComp, liveRecorder(2)); err == nil {
		t.Fatal("pool of 2 accepted for replay-TMR")
	}
}

func TestTMRWithReplayPrimaryError(t *testing.T) {
	x := NewExecutor(healthyPool(3, 35), 36)
	// A recorder with no providers makes the primary fail cleanly.
	_, _, err := x.TMRWithReplay(nondetComp, &replay.Recorder{})
	if err == nil {
		t.Fatal("primary input failure not propagated")
	}
}

func TestVerifyReplayAgreesOnHealthyPair(t *testing.T) {
	rec := liveRecorder(1)
	primary, err := nondetComp(engine.New(fault.NewCore("p", xrand.New(2))), rec)
	if err != nil {
		t.Fatal(err)
	}
	agree, st, err := VerifyReplay(engine.New(fault.NewCore("v", xrand.New(3))),
		nondetComp, rec.Tape(), primary)
	if err != nil || !agree {
		t.Fatalf("agree = %v, err = %v", agree, err)
	}
	if st.Executions != 1 || st.Disagreements != 0 || st.Ops == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVerifyReplayFlagsCorruptVerifier(t *testing.T) {
	rec := liveRecorder(4)
	primary, err := nondetComp(engine.New(fault.NewCore("p", xrand.New(5))), rec)
	if err != nil {
		t.Fatal(err)
	}
	defect := fault.Defect{ID: "flip", Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 9}
	agree, st, err := VerifyReplay(engine.New(fault.NewCore("v", xrand.New(6), defect)),
		nondetComp, rec.Tape(), primary)
	if err != nil || agree {
		t.Fatalf("agree = %v, err = %v, want silent disagreement", agree, err)
	}
	if st.Disagreements != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVerifyReplayShortTapeSurfacesDivergence(t *testing.T) {
	// A truncated tape makes the verifier's control flow run off the end:
	// VerifyReplay must disagree AND surface the replay error for the
	// caller to attribute.
	rec := liveRecorder(7)
	rec.U64() // only one entry recorded; nondetComp wants 100
	agree, st, err := VerifyReplay(engine.New(fault.NewCore("v", xrand.New(8))),
		nondetComp, rec.Tape(), []byte("whatever"))
	if agree {
		t.Fatal("agree on a tape the verifier could not follow")
	}
	if !errors.Is(err, replay.ErrTapeExhausted) {
		t.Fatalf("err = %v, want ErrTapeExhausted", err)
	}
	if st.Disagreements != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
