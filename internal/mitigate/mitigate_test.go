package mitigate

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// sumComp is a simple deterministic computation: sum 0..999 through the
// engine and serialize the result.
func sumComp(e *engine.Engine) []byte {
	var s uint64
	for i := uint64(0); i < 1000; i++ {
		s = e.Add64(s, i)
	}
	return []byte(fmt.Sprintf("%d", s))
}

const sumWant = "499500"

func healthyPool(n int, seed uint64) []*fault.Core {
	rng := xrand.New(seed)
	cores := make([]*fault.Core, n)
	for i := range cores {
		cores[i] = fault.NewCore(fmt.Sprintf("h%d", i), rng)
	}
	return cores
}

// poolWithBadCore returns n cores where core 0 corrupts every add.
func poolWithBadCore(n int, seed uint64) []*fault.Core {
	cores := healthyPool(n, seed)
	// Off-by-delta compounds across the additions, so the bad core's
	// output provably differs from the healthy result (bit-flip defects
	// can telescope away over a running sum).
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 5}
	cores[0] = fault.NewCore("bad", xrand.New(seed+100), d)
	return cores
}

func TestOnceHealthy(t *testing.T) {
	x := NewExecutor(healthyPool(4, 1), 2)
	out, st, err := x.Once(sumComp)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sumWant {
		t.Fatalf("out = %s", out)
	}
	if st.Executions != 1 || st.Ops == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDMRAgreesOnHealthyPool(t *testing.T) {
	x := NewExecutor(healthyPool(4, 3), 4)
	out, st, err := x.DMR(sumComp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != sumWant {
		t.Fatalf("out = %s", out)
	}
	if st.Executions != 2 || st.Disagreements != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDMRRecoversFromBadCore(t *testing.T) {
	// With one always-bad core in a pool of 4, the first pair may
	// disagree; DMR must converge to the correct answer.
	for seed := uint64(0); seed < 10; seed++ {
		x := NewExecutor(poolWithBadCore(4, seed), seed+50)
		out, st, err := x.DMR(sumComp, 3)
		if err != nil {
			t.Fatalf("seed %d: %v (stats %+v)", seed, err, st)
		}
		if string(out) != sumWant {
			t.Fatalf("seed %d: wrong answer %s survived DMR", seed, out)
		}
	}
}

func TestDMRCostIsTwiceBaseline(t *testing.T) {
	x := NewExecutor(healthyPool(4, 5), 6)
	_, stOnce, _ := x.Once(sumComp)
	_, stDMR, _ := x.DMR(sumComp, 3)
	ratio := float64(stDMR.Ops) / float64(stOnce.Ops)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("DMR cost ratio = %v, want ~2", ratio)
	}
}

func TestDMRPoolTooSmall(t *testing.T) {
	x := NewExecutor(healthyPool(1, 7), 8)
	if _, _, err := x.DMR(sumComp, 2); err == nil {
		t.Fatal("DMR on one core should fail")
	}
}

func TestTMROutvotesBadCore(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		x := NewExecutor(poolWithBadCore(3, seed), seed+60)
		out, st, err := x.TMR(sumComp)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(out) != sumWant {
			t.Fatalf("seed %d: TMR produced wrong answer %s", seed, out)
		}
		if st.Executions != 3 {
			t.Fatalf("stats = %+v", st)
		}
		// The bad core always corrupts, so one replica disagreed.
		if st.Disagreements != 1 {
			t.Fatalf("disagreements = %d, want 1", st.Disagreements)
		}
	}
}

func TestTMRCostIsThriceBaseline(t *testing.T) {
	x := NewExecutor(healthyPool(4, 9), 10)
	_, stOnce, _ := x.Once(sumComp)
	_, stTMR, _ := x.TMR(sumComp)
	ratio := float64(stTMR.Ops) / float64(stOnce.Ops)
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("TMR cost ratio = %v, want ~3", ratio)
	}
}

func TestTMRNoQuorumWhenMajorityBad(t *testing.T) {
	// Two different always-bad cores + one healthy: three distinct
	// answers, no quorum.
	cores := healthyPool(3, 11)
	cores[0] = fault.NewCore("bad0", xrand.New(200), fault.Defect{
		ID: "d0", Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 1})
	cores[1] = fault.NewCore("bad1", xrand.New(201), fault.Defect{
		ID: "d1", Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 2})
	x := NewExecutor(cores, 12)
	_, _, err := x.TMR(sumComp)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("err = %v, want ErrNoQuorum", err)
	}
}

func TestNModularValidation(t *testing.T) {
	x := NewExecutor(healthyPool(5, 13), 14)
	if _, _, err := x.NModular(sumComp, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, _, err := x.NModular(sumComp, 9); err == nil {
		t.Fatal("n beyond pool accepted")
	}
	out, st, err := x.NModular(sumComp, 5)
	if err != nil || string(out) != sumWant || st.Executions != 5 {
		t.Fatalf("5-modular: %v %s %+v", err, out, st)
	}
}

func TestNModularRejectsEvenN(t *testing.T) {
	x := NewExecutor(healthyPool(6, 27), 28)
	for _, n := range []int{2, 4, 6} {
		if _, _, err := x.NModular(sumComp, n); err == nil {
			t.Fatalf("even n=%d accepted; an even split carries no majority", n)
		}
	}
}

// allBadPool returns n cores that each corrupt every add by a distinct
// delta, so any pair of them disagrees deterministically.
func allBadPool(n int, seed uint64) []*fault.Core {
	cores := make([]*fault.Core, n)
	for i := range cores {
		cores[i] = fault.NewCore(fmt.Sprintf("bad%d", i), xrand.New(seed*100+uint64(i)),
			fault.Defect{ID: fmt.Sprintf("d%d", i), Unit: fault.UnitALU,
				Deterministic: true, Kind: fault.CorruptOffByOne, Delta: int64(i + 1)})
	}
	return cores
}

func TestDMRNeverRepeatsFailingPair(t *testing.T) {
	// Three always-disagreeing cores force pool exhaustion after round 1.
	// The retry pair must never be the exact pair that just disagreed —
	// re-running it would deterministically reproduce the disagreement.
	for seed := uint64(0); seed < 20; seed++ {
		var order []string
		comp := func(e *engine.Engine) []byte {
			order = append(order, e.Core().ID)
			return sumComp(e)
		}
		x := NewExecutor(allBadPool(3, seed), seed+31)
		_, st, err := x.DMR(comp, 6)
		if !errors.Is(err, ErrRetriesExhausted) {
			t.Fatalf("seed %d: err = %v, want ErrRetriesExhausted", seed, err)
		}
		if st.Retries != 6 || len(order) != 12 {
			t.Fatalf("seed %d: stats %+v, %d executions", seed, st, len(order))
		}
		pair := func(r int) string {
			a, b := order[2*r], order[2*r+1]
			if a > b {
				a, b = b, a
			}
			return a + "+" + b
		}
		for r := 1; r < 6; r++ {
			if pair(r) == pair(r-1) {
				t.Fatalf("seed %d: round %d reused the failing pair %s", seed, r, pair(r))
			}
		}
	}
}

func TestDMRTwoCorePoolDegradesToReuse(t *testing.T) {
	// With only two cores the failing pair is the only pair: DMR keeps
	// retrying it (rather than erroring out of picks) and exhausts rounds.
	x := NewExecutor(allBadPool(2, 5), 33)
	_, st, err := x.DMR(sumComp, 3)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if st.Executions != 6 {
		t.Fatalf("executions = %d, want 6 (3 rounds of 2)", st.Executions)
	}
}

func TestNModularOneIsBaseline(t *testing.T) {
	x := NewExecutor(healthyPool(2, 15), 16)
	out, st, err := x.NModular(sumComp, 1)
	if err != nil || string(out) != sumWant || st.Executions != 1 {
		t.Fatalf("1-modular: %v %s %+v", err, out, st)
	}
}

func TestCheckpointedHappyPath(t *testing.T) {
	x := NewExecutor(healthyPool(3, 17), 18)
	steps := []Step{
		{
			Name: "add",
			Do: func(e *engine.Engine, state []byte) []byte {
				return append(state, byte(e.Add64(1, 1)))
			},
			Check: func(s []byte) bool { return len(s) > 0 && s[len(s)-1] == 2 },
		},
		{
			Name: "double",
			Do: func(e *engine.Engine, state []byte) []byte {
				return append(state, byte(e.Mul64(uint64(state[len(state)-1]), 2)))
			},
			Check: func(s []byte) bool { return s[len(s)-1] == 4 },
		},
	}
	out, st, err := x.RunCheckpointed(steps, []byte{9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 9 || out[1] != 2 || out[2] != 4 {
		t.Fatalf("out = %v", out)
	}
	if st.Recoveries != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckpointedRecoversOnDifferentCore(t *testing.T) {
	// Pool: one always-bad core among three. Steps that fail their
	// invariant on the bad core must be retried elsewhere and recover.
	for seed := uint64(0); seed < 10; seed++ {
		x := NewExecutor(poolWithBadCore(3, seed), seed+70)
		steps := []Step{{
			Name: "sum",
			Do: func(e *engine.Engine, state []byte) []byte {
				var s uint64
				for i := uint64(0); i < 100; i++ {
					s = e.Add64(s, i)
				}
				return []byte(fmt.Sprintf("%d", s))
			},
			Check: func(s []byte) bool { return string(s) == "4950" },
		}}
		out, _, err := x.RunCheckpointed(steps, nil, 3)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(out) != "4950" {
			t.Fatalf("seed %d: out = %s", seed, out)
		}
	}
}

func TestCheckpointedExhaustsRetries(t *testing.T) {
	x := NewExecutor(healthyPool(2, 19), 20)
	steps := []Step{{
		Name:  "impossible",
		Do:    func(e *engine.Engine, state []byte) []byte { return state },
		Check: func([]byte) bool { return false },
	}}
	_, st, err := x.RunCheckpointed(steps, nil, 2)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v", err)
	}
	if st.Retries != 3 { // initial + 2 retries, all failed
		t.Fatalf("retries = %d", st.Retries)
	}
}

func TestCheckpointedNilDoRejected(t *testing.T) {
	x := NewExecutor(healthyPool(1, 21), 22)
	if _, _, err := x.RunCheckpointed([]Step{{Name: "broken"}}, nil, 1); err == nil {
		t.Fatal("nil Do accepted")
	}
}

func TestCheckpointStatePassedBetweenSteps(t *testing.T) {
	x := NewExecutor(healthyPool(2, 23), 24)
	steps := make([]Step, 5)
	for i := range steps {
		steps[i] = Step{
			Name: fmt.Sprintf("s%d", i),
			Do: func(e *engine.Engine, state []byte) []byte {
				return append(state, byte(len(state)))
			},
		}
	}
	out, _, err := x.RunCheckpointed(steps, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("out = %v", out)
	}
	for i, b := range out {
		if int(b) != i {
			t.Fatalf("state chain broken: %v", out)
		}
	}
}

func TestPoolSize(t *testing.T) {
	if NewExecutor(healthyPool(7, 25), 26).PoolSize() != 7 {
		t.Fatal("PoolSize wrong")
	}
}

func BenchmarkOnce(b *testing.B) {
	x := NewExecutor(healthyPool(4, 1), 2)
	for i := 0; i < b.N; i++ {
		x.Once(sumComp)
	}
}

func BenchmarkTMR(b *testing.B) {
	x := NewExecutor(healthyPool(4, 1), 2)
	for i := 0; i < b.N; i++ {
		x.TMR(sumComp)
	}
}
