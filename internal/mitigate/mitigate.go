// Package mitigate implements the CEE-tolerance mechanisms sketched in §7:
// dual-modular execution with retry on disagreement, triple-modular
// redundancy with majority voting, checkpoint/restart with invariant
// checks, and selective replication of critical computations.
//
// All mechanisms run a Computation on cores drawn from a pool; the paper's
// "run a computation on two cores, and if they disagree, restart on a
// different pair of cores from a checkpoint" is Executor.DMR.
package mitigate

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Computation is a deterministic function of the engine it runs on: given
// equal inputs it must produce identical output on any healthy core.
type Computation func(*engine.Engine) []byte

// ErrNoQuorum reports that replicated execution could not produce a
// majority answer.
var ErrNoQuorum = errors.New("mitigate: no majority among replicas")

// ErrRetriesExhausted reports that DMR or checkpoint retries ran out.
var ErrRetriesExhausted = errors.New("mitigate: retries exhausted")

// Stats accounts the cost and behaviour of a mitigated execution — the
// numbers behind experiment E7's overhead table.
type Stats struct {
	// Executions is the number of times the computation ran.
	Executions int
	// Disagreements counts replica mismatches observed.
	Disagreements int
	// Retries counts restart rounds.
	Retries int
	// Ops is the total engine operations consumed.
	Ops uint64
}

// Executor runs computations on a pool of cores.
type Executor struct {
	cores []*fault.Core
	rng   *xrand.RNG
}

// NewExecutor returns an executor over the pool. The pool must contain at
// least one core; DMR needs two, TMR three.
func NewExecutor(cores []*fault.Core, seed uint64) *Executor {
	return &Executor{cores: append([]*fault.Core(nil), cores...), rng: xrand.New(seed)}
}

// PoolSize returns the number of cores available.
func (x *Executor) PoolSize() int { return len(x.cores) }

// pick selects n distinct cores, excluding indices in excl.
func (x *Executor) pick(n int, excl map[int]bool) ([]int, error) {
	avail := make([]int, 0, len(x.cores))
	for i := range x.cores {
		if !excl[i] {
			avail = append(avail, i)
		}
	}
	if len(avail) < n {
		return nil, fmt.Errorf("mitigate: need %d cores, only %d available", n, len(avail))
	}
	x.rng.Shuffle(len(avail), func(i, j int) { avail[i], avail[j] = avail[j], avail[i] })
	return avail[:n], nil
}

// runOn executes comp on core index i, accounting ops into st.
func (x *Executor) runOn(i int, comp Computation, st *Stats) []byte {
	core := x.cores[i]
	before := core.TotalOps()
	out := comp(engine.New(core))
	st.Executions++
	st.Ops += core.TotalOps() - before
	return out
}

// Once runs the computation once on a random core — the unprotected
// baseline whose cost the mitigations are measured against.
func (x *Executor) Once(comp Computation) ([]byte, Stats, error) {
	var st Stats
	idx, err := x.pick(1, nil)
	if err != nil {
		return nil, st, err
	}
	out := x.runOn(idx[0], comp, &st)
	return out, st, nil
}

// DMR runs the computation on two cores; on disagreement it restarts on a
// different pair, up to maxRounds rounds. Cost ~2× when cores agree.
//
// When retries exhaust the pool of never-used cores, cores are reused —
// but never the exact pair that just disagreed: re-running the same pair
// would deterministically reproduce the same disagreement on a
// deterministic defect. On a pool too small to avoid both members, the
// next pair differs in at least one core; only a two-core pool may repeat
// a pair, since no other pair exists.
func (x *Executor) DMR(comp Computation, maxRounds int) ([]byte, Stats, error) {
	var st Stats
	if maxRounds < 1 {
		maxRounds = 1
	}
	used := map[int]bool{}
	lastA, lastB := -1, -1
	for round := 0; round < maxRounds; round++ {
		idx, err := x.pick(2, used)
		if err != nil {
			// Pool exhausted: allow reuse, excluding the failing pair.
			used = map[int]bool{}
			if lastA >= 0 {
				used[lastA] = true
				used[lastB] = true
			}
			idx, err = x.pick(2, used)
			if err != nil && lastA >= 0 {
				// Three-core pool: excluding both members leaves one core.
				// Exclude a single member so the pair still changes.
				used = map[int]bool{lastA: true}
				idx, err = x.pick(2, used)
				if err != nil {
					// Two-core pool: the failing pair is the only pair.
					used = map[int]bool{}
					idx, err = x.pick(2, used)
				}
			}
			if err != nil {
				return nil, st, err
			}
		}
		a := x.runOn(idx[0], comp, &st)
		b := x.runOn(idx[1], comp, &st)
		if bytes.Equal(a, b) {
			return a, st, nil
		}
		st.Disagreements++
		st.Retries++
		lastA, lastB = idx[0], idx[1]
		used[idx[0]] = true
		used[idx[1]] = true
	}
	return nil, st, ErrRetriesExhausted
}

// TMR runs the computation on three cores and majority-votes the outputs.
// The vote itself executes natively — §7 notes the voting mechanism must be
// reliable; here the host is the reliable substrate. Cost ~3×.
func (x *Executor) TMR(comp Computation) ([]byte, Stats, error) {
	return x.NModular(comp, 3)
}

// NModular generalizes TMR to n replicas with majority voting — the
// "certain computations are critical enough that we are willing to pay"
// knob. n must be odd: an even split carries no majority, so even n buys
// extra executions without buying extra decisiveness. Even n is rejected
// rather than silently accepted.
func (x *Executor) NModular(comp Computation, n int) ([]byte, Stats, error) {
	var st Stats
	if n < 1 {
		return nil, st, fmt.Errorf("mitigate: NModular needs n >= 1, got %d", n)
	}
	if n%2 == 0 {
		return nil, st, fmt.Errorf("mitigate: NModular needs odd n for a guaranteed possible majority, got %d", n)
	}
	idx, err := x.pick(n, nil)
	if err != nil {
		return nil, st, err
	}
	outs := make([][]byte, n)
	for i, c := range idx {
		outs[i] = x.runOn(c, comp, &st)
	}
	need := n/2 + 1
	for i, a := range outs {
		votes := 1
		for j, b := range outs {
			if i != j && bytes.Equal(a, b) {
				votes++
			}
		}
		if votes >= need {
			if votes != n {
				st.Disagreements++
			}
			return a, st, nil
		}
	}
	st.Disagreements++
	return nil, st, ErrNoQuorum
}

// Step is one stage of a checkpointed task: Do advances the state, Check
// validates the new state (nil means no invariant available). The state is
// the checkpoint: if Check fails, the step is retried from the prior state
// on a different core — §7's "system support for efficient checkpointing,
// to recover from a failed computation by restarting on a different core"
// combined with "application-specific detection methods, to decide whether
// to continue past a checkpoint or to retry".
type Step struct {
	Name  string
	Do    func(e *engine.Engine, state []byte) []byte
	Check func(state []byte) bool
}

// CheckpointStats extends Stats with per-step recovery accounting.
type CheckpointStats struct {
	Stats
	// Recoveries counts steps that failed their invariant and were
	// successfully retried.
	Recoveries int
}

// RunCheckpointed executes the steps in order with invariant-gated
// checkpointing. Each step gets up to retriesPerStep retries on distinct
// cores before the task fails.
func (x *Executor) RunCheckpointed(steps []Step, initial []byte, retriesPerStep int) ([]byte, CheckpointStats, error) {
	var st CheckpointStats
	state := append([]byte(nil), initial...)
	for _, step := range steps {
		if step.Do == nil {
			return nil, st, fmt.Errorf("mitigate: step %q has no Do", step.Name)
		}
		ok := false
		used := map[int]bool{}
		for attempt := 0; attempt <= retriesPerStep; attempt++ {
			idx, err := x.pick(1, used)
			if err != nil {
				used = map[int]bool{}
				idx, err = x.pick(1, used)
				if err != nil {
					return nil, st, err
				}
			}
			used[idx[0]] = true
			checkpoint := append([]byte(nil), state...)
			next := x.runOn(idx[0], func(e *engine.Engine) []byte {
				return step.Do(e, checkpoint)
			}, &st.Stats)
			if step.Check == nil || step.Check(next) {
				if attempt > 0 {
					st.Recoveries++
				}
				state = next
				ok = true
				break
			}
			st.Retries++
		}
		if !ok {
			return nil, st, fmt.Errorf("mitigate: step %q: %w", step.Name, ErrRetriesExhausted)
		}
	}
	return state, st, nil
}
