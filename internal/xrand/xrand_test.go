package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		t.Fatal("zero seed left all-zero state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator repeated values: %d unique of 100", len(seen))
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	diff := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff++
		}
	}
	if diff < 1000 {
		t.Fatalf("forked streams overlapped: only %d/1000 differ", diff)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(9).ForkString("machine-17")
	b := New(9).ForkString("machine-17")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-label forks diverged")
		}
	}
	c := New(9).ForkString("machine-18")
	d := New(9).ForkString("machine-17")
	if c.Uint64() == d.Uint64() {
		t.Fatal("different-label forks coincide on first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	r := New(6)
	const n = 10
	counts := make([]int, n)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(16)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(8); v >= 8 {
			t.Fatalf("Uint64n(8) = %d", v)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(8)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(12)
	for _, lambda := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Fatalf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	r := New(13)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson with non-positive lambda must be 0")
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(14)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {64, 0.1}, {1000, 0.01}, {500, 0.9}} {
		const trials = 20000
		sum := 0
		for i := 0; i < trials; i++ {
			k := r.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, k)
			}
			sum += k
		}
		mean := float64(sum) / trials
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > want*0.06+0.1 {
			t.Fatalf("Binomial(%d,%v) mean %v want %v", tc.n, tc.p, mean, want)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(15)
	if r.Binomial(0, 0.5) != 0 {
		t.Fatal("Binomial(0,p) != 0")
	}
	if r.Binomial(10, 0) != 0 {
		t.Fatal("Binomial(n,0) != 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Fatal("Binomial(n,1) != n")
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	r := New(17)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 2)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("Weibull(1,2) mean %v want 2", mean)
	}
}

func TestWeibullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Weibull(0,1) did not panic")
		}
	}()
	New(1).Weibull(0, 1)
}

func TestLogNormalMedian(t *testing.T) {
	r := New(18)
	const n = 100001
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.LogNormal(2, 1.5)
	}
	// Median of lognormal is exp(mu); use a coarse selection.
	below := 0
	want := math.Exp(2)
	for _, v := range vs {
		if v < want {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("LogNormal median check: %v below exp(mu)", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(20)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestBytesFills(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 65} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 16 {
			zero := 0
			for _, c := range b {
				if c == 0 {
					zero++
				}
			}
			if zero == n {
				t.Fatalf("Bytes left %d-byte buffer all zero", n)
			}
		}
	}
}

func TestBytesDeterministic(t *testing.T) {
	a := make([]byte, 33)
	b := make([]byte, 33)
	New(5).Bytes(a)
	New(5).Bytes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Bytes not deterministic")
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	r := New(22)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPermValid(t *testing.T) {
	r := New(23)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		seen := make(map[int]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}

func TestForkIntoMatchesFork(t *testing.T) {
	a := New(99)
	b := New(99)
	var dst RNG
	for _, label := range []uint64{0, 1, 42, 1 << 63} {
		forked := a.Fork(label)
		b.ForkInto(label, &dst)
		for i := 0; i < 64; i++ {
			if x, y := forked.Uint64(), dst.Uint64(); x != y {
				t.Fatalf("label %d draw %d: Fork %d != ForkInto %d", label, i, x, y)
			}
		}
	}
	// The parents must have consumed identical randomness.
	if a.Uint64() != b.Uint64() {
		t.Fatal("parents diverged after forking")
	}
}

func TestForkStringIntoMatchesConcatForkString(t *testing.T) {
	cases := []struct{ prefix, rest string }{
		{"prod:", "m00017/c03"},
		{"screen:", "m00000/c00"},
		{"", ""},
		{"a", "b"},
		{"confess:", "x/y/z with spaces"},
	}
	for _, c := range cases {
		a := New(7)
		b := New(7)
		forked := a.ForkString(c.prefix + c.rest)
		var dst RNG
		b.ForkStringInto(c.prefix, c.rest, &dst)
		for i := 0; i < 64; i++ {
			if x, y := forked.Uint64(), dst.Uint64(); x != y {
				t.Fatalf("%q+%q draw %d: ForkString %d != ForkStringInto %d",
					c.prefix, c.rest, i, x, y)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("%q+%q: parents diverged", c.prefix, c.rest)
		}
	}
}

func TestForkStringIntoAllocFree(t *testing.T) {
	r := New(3)
	var dst RNG
	allocs := testing.AllocsPerRun(100, func() {
		r.ForkStringInto("prod:", "m00017/c03", &dst)
	})
	if allocs != 0 {
		t.Fatalf("ForkStringInto allocates %v per call, want 0", allocs)
	}
}
