// Package xrand provides a deterministic, forkable pseudo-random number
// generator used by every simulator component in this repository.
//
// Reproducibility is a hard requirement for the experiments: the paper's
// observations are statistical, so each experiment must be replayable from
// a single seed. xrand implements xoshiro256** seeded via SplitMix64, the
// combination recommended by Blackman & Vigna. A generator can be Forked
// into an independent stream derived from its state plus a label, which is
// how the fleet simulator gives every machine, core, and defect its own
// stream without cross-coupling.
package xrand

import "math"

// RNG is a xoshiro256** generator. The zero value is not valid; use New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances x and returns the next SplitMix64 output. It is used
// only for seeding so that closely-spaced seeds yield well-separated states.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state from seed.
func (r *RNG) Reseed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro256** must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Fork returns a new generator whose stream is a deterministic function of
// the parent's current state and label, and advances the parent once.
// Distinct labels produce independent streams.
func (r *RNG) Fork(label uint64) *RNG {
	x := r.Uint64() ^ (label * 0xda942042e4dd58b5)
	return New(splitmix64(&x))
}

// ForkInto is Fork without the allocation: it reseeds dst in place to the
// exact state Fork(label) would return. Hot loops that fork thousands of
// streams per simulated day reuse one RNG value instead of churning the
// heap.
func (r *RNG) ForkInto(label uint64, dst *RNG) {
	x := r.Uint64() ^ (label * 0xda942042e4dd58b5)
	dst.Reseed(splitmix64(&x))
}

// FNV-1a parameters, used for string fork labels.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a folds s into an FNV-1a hash state h.
func fnv1a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// ForkString forks using a string label hashed with FNV-1a.
func (r *RNG) ForkString(label string) *RNG {
	return r.Fork(fnv1a(fnvOffset64, label))
}

// ForkStringInto reseeds dst to the state ForkString(prefix+rest) would
// produce, without allocating the concatenated label or the generator.
// FNV-1a hashes bytes sequentially, so hashing the two parts in order is
// identical to hashing their concatenation — the streams are bit-for-bit
// the same as the allocating path.
func (r *RNG) ForkStringInto(prefix, rest string, dst *RNG) {
	r.ForkInto(fnv1a(fnv1a(fnvOffset64, prefix), rest), dst)
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's method with a
// rejection step to remove modulo bias. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with mean lambda. For small lambda it
// uses Knuth's multiplication method; for large lambda a normal
// approximation with continuity correction, which is ample for the fleet
// simulator's arrival processes.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
	if n < 0 {
		n = 0
	}
	return n
}

// Binomial returns a Binomial(n, p) variate by direct simulation for small
// n and a normal approximation for large n.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// Weibull returns a Weibull(shape, scale) variate. The fleet simulator uses
// this for defect age-of-onset distributions (§2: "we have some evidence
// that aging is a factor").
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("xrand: Weibull parameters must be positive")
	}
	return scale * math.Pow(r.ExpFloat64(), 1/shape)
}

// LogNormal returns exp(mu + sigma*Z). Used for the orders-of-magnitude
// spread in per-defect corruption rates (§2).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
