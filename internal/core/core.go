// Package core is the top-level façade of the mercurial-cores toolkit —
// the reproduction of "Cores that don't count" (HotOS '21). It bundles the
// lower-level packages into the API an application or operator would use:
//
//   - Machine: a multi-core host whose cores may carry injected defects;
//     per-core execution engines run real workloads with CEE semantics.
//   - Screening, confession testing, and quarantine glue (see packages
//     screen, detect, quarantine for the mechanisms).
//   - Mitigated execution: DMR/TMR/checkpointed runs over a machine's
//     cores (package mitigate) and verified critical-function libraries
//     (package selfcheck).
//   - Fleet simulation for the paper's fleet-scale statistics (package
//     fleet).
//
// A three-line taste:
//
//	m := core.NewMachine("host0", 4, 42, core.WithDefectClass(2, "crypto-self-inverting"))
//	rep := m.ScreenCore(2, screen.Deep(), 1)
//	fmt.Println(rep.Detected) // true: the corpus extracted a confession
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mitigate"
	"repro/internal/screen"
	"repro/internal/selfcheck"
	"repro/internal/xrand"
)

// Machine is a multi-core host for single-machine experiments: each core
// is a fault-model core with its own execution engine.
type Machine struct {
	ID    string
	cores []*fault.Core
}

// Option configures a Machine under construction.
type Option func(*machineConfig) error

type machineConfig struct {
	defects map[int][]fault.Defect
}

// WithDefect places a concrete defect on core index idx.
func WithDefect(idx int, d fault.Defect) Option {
	return func(c *machineConfig) error {
		c.defects[idx] = append(c.defects[idx], d)
		return nil
	}
}

// WithDefectClass places a defect sampled from the named catalog class
// (see fault.Catalog) on core index idx.
func WithDefectClass(idx int, class string) Option {
	return func(c *machineConfig) error {
		spec, err := fault.ClassByName(class)
		if err != nil {
			return err
		}
		// The sampling RNG is derived later, at construction, so the
		// machine seed fully determines the defect.
		c.defects[idx] = append(c.defects[idx], fault.Defect{Class: "pending:" + spec.Name})
		return nil
	}
}

// NewMachine builds a machine with n cores. Core defects are attached via
// options; everything is deterministic given seed.
func NewMachine(id string, n int, seed uint64, opts ...Option) (*Machine, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: machine needs at least one core")
	}
	cfg := &machineConfig{defects: map[int][]fault.Defect{}}
	for _, o := range opts {
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	for idx := range cfg.defects {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("core: defect on non-existent core %d", idx)
		}
	}
	rng := xrand.New(seed)
	m := &Machine{ID: id}
	for i := 0; i < n; i++ {
		var ds []fault.Defect
		for _, d := range cfg.defects[i] {
			if len(d.Class) > 8 && d.Class[:8] == "pending:" {
				class := d.Class[8:]
				spec, err := fault.ClassByName(class)
				if err != nil {
					return nil, err
				}
				ds = append(ds, spec.Sample(fmt.Sprintf("%s-c%d-%s", id, i, class), rng.ForkString(class)))
			} else {
				if d.ID == "" {
					d.ID = fmt.Sprintf("%s-c%d", id, i)
				}
				ds = append(ds, d)
			}
		}
		m.cores = append(m.cores, fault.NewCore(fmt.Sprintf("%s/c%d", id, i), rng, ds...))
	}
	return m, nil
}

// MustMachine is NewMachine that panics on error — for examples and tests.
func MustMachine(id string, n int, seed uint64, opts ...Option) *Machine {
	m, err := NewMachine(id, n, seed, opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// Cores returns the number of cores.
func (m *Machine) Cores() int { return len(m.cores) }

// Core returns the fault-model core at idx.
func (m *Machine) Core(idx int) *fault.Core { return m.cores[idx] }

// Engine returns a fresh execution engine bound to core idx. Engines are
// cheap; create one per logical task.
func (m *Machine) Engine(idx int) *engine.Engine { return engine.New(m.cores[idx]) }

// MercurialCores returns the indices of cores whose defects are active at
// the cores' current ages — ground truth for experiments.
func (m *Machine) MercurialCores() []int {
	var out []int
	for i, c := range m.cores {
		if c.Mercurial() {
			out = append(out, i)
		}
	}
	return out
}

// ScreenCore runs a screening session against core idx.
func (m *Machine) ScreenCore(idx int, cfg screen.Config, seed uint64) screen.Report {
	return screen.Screen(m.cores[idx], cfg, xrand.New(seed))
}

// ScreenAll screens every core and returns the reports in core order —
// the machine-acceptance flow (burn-in, §6 pre-deployment screening).
// Cores are screened in parallel across host cores; the reports are
// bit-identical to a serial run (see screen.ScreenAll).
func (m *Machine) ScreenAll(cfg screen.Config, seed uint64) []screen.Report {
	return screen.ScreenAll(m.cores, cfg, seed, 0)
}

// Executor returns a mitigated-execution executor over all cores — the
// entry point for DMR/TMR/checkpointed runs.
func (m *Machine) Executor(seed uint64) *mitigate.Executor {
	return mitigate.NewExecutor(m.cores, seed)
}

// Verifier returns a self-checking library instance running on primary
// with verification on checker — §7's verified critical functions.
func (m *Machine) Verifier(primary, checker int) *selfcheck.Verifier {
	return selfcheck.NewVerifier(m.Engine(primary), m.Engine(checker))
}
