package core

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/screen"
)

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine("m", 0, 1); err == nil {
		t.Fatal("zero-core machine accepted")
	}
	if _, err := NewMachine("m", 2, 1, WithDefectClass(5, "alu-stuck-bit")); err == nil {
		t.Fatal("defect on non-existent core accepted")
	}
	if _, err := NewMachine("m", 2, 1, WithDefectClass(0, "no-such-class")); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestHealthyMachine(t *testing.T) {
	m := MustMachine("m", 4, 1)
	if m.Cores() != 4 {
		t.Fatalf("cores = %d", m.Cores())
	}
	if got := m.MercurialCores(); len(got) != 0 {
		t.Fatalf("healthy machine has mercurial cores %v", got)
	}
	e := m.Engine(0)
	if e.Add64(2, 3) != 5 {
		t.Fatal("engine broken")
	}
}

func TestDefectiveMachine(t *testing.T) {
	m := MustMachine("m", 4, 2, WithDefect(1, fault.Defect{
		Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 0,
	}))
	if got := m.MercurialCores(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("mercurial cores = %v", got)
	}
	if m.Engine(1).Add64(2, 2) == 4 {
		t.Fatal("defective core computed correctly")
	}
	if m.Engine(0).Add64(2, 2) != 4 {
		t.Fatal("healthy neighbour corrupted")
	}
}

func TestWithDefectClass(t *testing.T) {
	m := MustMachine("m", 2, 3, WithDefectClass(0, "crypto-self-inverting"))
	core := m.Core(0)
	if core.Healthy() {
		t.Fatal("class defect not attached")
	}
	if core.Defects[0].Class != "crypto-self-inverting" {
		t.Fatalf("class = %q", core.Defects[0].Class)
	}
	if core.Defects[0].ID == "" {
		t.Fatal("sampled defect has no ID")
	}
}

func TestMachineDeterministic(t *testing.T) {
	a := MustMachine("m", 2, 9, WithDefectClass(1, "alu-stuck-bit"))
	b := MustMachine("m", 2, 9, WithDefectClass(1, "alu-stuck-bit"))
	da, db := a.Core(1).Defects[0], b.Core(1).Defects[0]
	if da.BitPos != db.BitPos || da.BaseRate != db.BaseRate {
		t.Fatal("machine construction not deterministic")
	}
}

func TestScreenCoreAndAll(t *testing.T) {
	m := MustMachine("m", 3, 4, WithDefect(2, fault.Defect{
		Unit: fault.UnitVec, BaseRate: 1e-3,
		Kind: fault.CorruptWrongLane,
	}))
	reps := m.ScreenAll(screen.Quick(), 5)
	if len(reps) != 3 {
		t.Fatalf("reports = %d", len(reps))
	}
	if reps[0].Detected || reps[1].Detected {
		t.Fatal("healthy cores flagged")
	}
	if !reps[2].Detected {
		t.Fatal("defective core passed the screen")
	}
	one := m.ScreenCore(2, screen.Quick(), 6)
	if !one.Detected {
		t.Fatal("single-core screen missed the defect")
	}
}

func TestExecutorTMRAcrossMachine(t *testing.T) {
	m := MustMachine("m", 3, 7, WithDefect(0, fault.Defect{
		Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 1,
	}))
	x := m.Executor(8)
	out, st, err := x.TMR(func(e *engine.Engine) []byte {
		var s uint64
		for i := uint64(0); i < 100; i++ {
			s = e.Add64(s, i)
		}
		return []byte(fmt.Sprintf("%d", s))
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "4950" {
		t.Fatalf("TMR result %s; bad core outvoted the healthy pair?", out)
	}
	if st.Disagreements != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVerifierAcrossCores(t *testing.T) {
	m := MustMachine("m", 2, 10, WithDefect(0, fault.Defect{
		Unit: fault.UnitCrypto, Deterministic: true,
		Kind: fault.CorruptPreXORInput, Mask: 1 << 12,
	}))
	v := m.Verifier(0, 1)
	if _, err := v.EncryptBlocks([]uint64{5}, 3); err == nil {
		t.Fatal("cross-core verifier missed the self-inverting defect")
	}
}
