package taskrun

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/quarantine"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/screen"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// aluFlip is a deterministic ALU defect: every arithmetic op flips bit 5,
// so any self-checking arithmetic granule fails fast and reproducibly.
var aluFlip = fault.Defect{ID: "alu-flip5", Unit: fault.UnitALU,
	Deterministic: true, Kind: fault.CorruptBitFlip, BitPos: 5}

// healthyPool returns n healthy cores seeded deterministically.
func healthyPool(n int, seed uint64) []*fault.Core {
	cores := make([]*fault.Core, n)
	for i := range cores {
		cores[i] = fault.NewCore(fmt.Sprintf("h%d", i), xrand.New(seed+uint64(i)))
	}
	return cores
}

// corpusGranules is the granule mix used by the end-to-end tests: the
// first exercises the ALU hard (fails on the defective core), the rest
// verify the task keeps going after migration.
func corpusGranules() []Granule {
	return []Granule{
		CorpusGranule(corpus.NewArith(256)),
		CorpusGranule(corpus.NewHash(128)),
		CorpusGranule(corpus.NewCRC(128)),
	}
}

// mulGranule is a cheap deterministic granule for churn tests: output is
// a pure function of the one recorded seed on a healthy core.
func mulGranule(name string) Granule {
	return Granule{
		Name:  name,
		Units: []fault.Unit{fault.UnitALU},
		Work: func(e *engine.Engine, in replay.Source) ([]byte, error) {
			seed, err := in.U64()
			if err != nil {
				return nil, err
			}
			v := seed
			for i := 0; i < 64; i++ {
				v = e.Mul64(v, 0x9e3779b97f4a7c15)
				v = e.Add64(v, uint64(i))
			}
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, v)
			return out, nil
		},
	}
}

// referenceOutput runs the task on an all-healthy pool and returns its
// output — what a correct run must produce byte for byte.
func referenceOutput(t *testing.T, task *Task, inputSeed uint64) []byte {
	t.Helper()
	cluster, provider, err := NewPool("ref", healthyPool(4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(cluster, provider, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := &Task{ID: task.ID, Granules: task.Granules}
	res, err := sup.Run(ref, xrand.New(inputSeed))
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	if res.Stats.Retries != 0 {
		t.Fatalf("reference run retried %d times on healthy cores", res.Stats.Retries)
	}
	return res.Output
}

// TestTaskRunSurvivesDefectiveCoreEndToEnd is the acceptance scenario:
// corpus workloads pinned onto a machine's defective core complete with
// byte-correct results after migrating off it; the accumulated
// divergences escalate into accepted suspect signals; quarantine lands
// the core in the ledger (with a confession); and subsequent tasks pinned
// to the same core are rerouted with zero retries.
func TestTaskRunSurvivesDefectiveCoreEndToEnd(t *testing.T) {
	badCore := fault.NewCore("m0/1", xrand.New(11), aluFlip)
	cores := []*fault.Core{
		fault.NewCore("m0/0", xrand.New(10)),
		badCore,
		fault.NewCore("m0/2", xrand.New(12)),
		fault.NewCore("m0/3", xrand.New(13)),
	}
	cluster, provider, err := NewPool("m0", cores)
	if err != nil {
		t.Fatal(err)
	}
	server := report.NewServer(4)
	reg := obs.NewRegistry()
	var clock simtime.Time
	sup, err := NewSupervisor(cluster, provider, Config{
		Sink:    ServerSink(server),
		Metrics: reg,
		Now:     func() simtime.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := sched.CoreRef{Machine: "m0", Core: 1}

	// Eight tasks pinned to the bad core: each one's arith granule fails
	// there once and recovers elsewhere. The concentration test needs >=6
	// same-core reports at coresPerMachine=4 to clear Alpha=0.001.
	const tasks = 8
	for i := 0; i < tasks; i++ {
		clock++
		task := &Task{ID: fmt.Sprintf("t%d", i), Start: &bad, Granules: corpusGranules()}
		res, err := sup.Run(task, xrand.New(uint64(100+i)))
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if res.Path[0] != bad {
			t.Fatalf("task %d started on %v, want pinned %v", i, res.Path[0], bad)
		}
		if res.Stats.Migrations == 0 {
			t.Fatalf("task %d never migrated off the defective core", i)
		}
		want := referenceOutput(t, task, uint64(100+i))
		if !bytes.Equal(res.Output, want) {
			t.Fatalf("task %d output diverges from healthy reference:\n got %q\nwant %q",
				i, res.Output, want)
		}
	}
	st := sup.Stats()
	if st.SignalsSent == 0 {
		t.Fatal("no suspect signals escalated")
	}
	if got := sup.Divergences(bad); got < tasks {
		t.Fatalf("divergences on bad core = %d, want >= %d", got, tasks)
	}

	// The report pipeline nominates the core...
	suspects := server.Suspects()
	if len(suspects) == 0 {
		t.Fatal("no suspects nominated from taskrun signals")
	}
	if suspects[0].Machine != "m0" || suspects[0].Core != 1 {
		t.Fatalf("top suspect = %s/%d, want m0/1", suspects[0].Machine, suspects[0].Core)
	}

	// ...and quarantine accepts it into the ledger after a confession.
	mgr := quarantine.NewManager(cluster, quarantine.Policy{
		Mode: quarantine.CoreRemoval, MinScore: 1,
		RequireConfession: true,
		ConfessionConfig: screen.NewConfig(screen.WithPasses(4),
			screen.WithMaxOps(500_000)),
	})
	srng := xrand.New(5)
	for _, s := range suspects {
		if _, err := mgr.Handle(s, clock, func(cfg screen.Config) detect.Confession {
			return detect.Confess(badCore, cfg, srng)
		}); err != nil {
			t.Fatal(err)
		}
	}
	ledger := mgr.Records()
	if len(ledger) != 1 || ledger[0].Ref != bad || !ledger[0].Confessed {
		t.Fatalf("quarantine ledger = %+v, want one confessed record for %v", ledger, bad)
	}

	// A task pinned to the now-offline core reroutes: zero retries.
	clock++
	res, err := sup.Run(&Task{ID: "after", Start: &bad, Granules: corpusGranules()},
		xrand.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if res.Path[0] == bad {
		t.Fatal("task placed on a quarantined core")
	}
	if res.Stats.Retries != 0 || res.Stats.Restores != 0 {
		t.Fatalf("post-quarantine task retried: %+v", res.Stats)
	}
	if want := referenceOutput(t, &Task{ID: "after", Granules: corpusGranules()}, 999); !bytes.Equal(res.Output, want) {
		t.Fatal("post-quarantine output diverges from reference")
	}

	// The obs instruments saw it all.
	found := map[string]float64{}
	for _, s := range reg.Snapshot() {
		if s.Kind == "counter" {
			key := s.Name
			for _, l := range s.Labels {
				key += "{" + l.Key + "=" + l.Value + "}"
			}
			found[key] = s.Value
		}
	}
	if found["taskrun_granules_total{outcome=committed}"] == 0 {
		t.Fatalf("no committed granules in registry: %v", found)
	}
	if found["taskrun_granules_total{outcome=recovered}"] == 0 {
		t.Fatalf("no recovered granules in registry: %v", found)
	}
	if found["taskrun_migrations_total"] < float64(tasks) {
		t.Fatalf("migrations counter = %v, want >= %d", found["taskrun_migrations_total"], tasks)
	}
	if found["taskrun_signals_total"] != float64(st.SignalsSent) {
		t.Fatalf("signals counter = %v, stats say %d", found["taskrun_signals_total"], st.SignalsSent)
	}
	if found["taskrun_checkpoint_restores_total"] == 0 {
		t.Fatal("restore counter never incremented")
	}
}

// TestTaskRunExactlyOnceUnderChurn quarantines the task's current core
// mid-run (between granule commits) across 20 seeds and asserts every
// granule commits exactly once, in order, with output identical to an
// unchurned run.
func TestTaskRunExactlyOnceUnderChurn(t *testing.T) {
	const granules = 6
	task := func() *Task {
		tk := &Task{ID: "churn"}
		for g := 0; g < granules; g++ {
			tk.Granules = append(tk.Granules, mulGranule(fmt.Sprintf("g%d", g)))
		}
		return tk
	}
	want := referenceOutput(t, task(), 42)

	for seed := uint64(0); seed < 20; seed++ {
		cluster, provider, err := NewPool("m0", healthyPool(8, 500+seed))
		if err != nil {
			t.Fatal(err)
		}
		var commits []string
		churnAt := int(seed % (granules - 1)) // always before the last commit
		sup, err := NewSupervisor(cluster, provider, Config{
			OnCommit: func(taskID string, granule int, ref sched.CoreRef) {
				commits = append(commits, fmt.Sprintf("%s/%d", taskID, granule))
				if granule == churnAt {
					// Quarantine the core under the running task.
					if _, err := cluster.SetCoreState(ref, sched.CoreOffline, nil); err != nil {
						t.Fatal(err)
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sup.Run(task(), xrand.New(42))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(res.Output, want) {
			t.Fatalf("seed %d: churned output diverges from reference", seed)
		}
		if res.Stats.Migrations == 0 {
			t.Fatalf("seed %d: eviction did not surface as a migration", seed)
		}
		if len(commits) != granules {
			t.Fatalf("seed %d: %d commits, want %d: %v", seed, len(commits), granules, commits)
		}
		for g := 0; g < granules; g++ {
			if got := commits[g]; got != fmt.Sprintf("churn/%d", g) {
				t.Fatalf("seed %d: commit %d = %q (lost or double-run granule)", seed, g, got)
			}
		}
	}
}

// TestTaskRunBackoffSeam pins the exponential backoff sequence through
// the test-seam sleeper: with only the defective core available, each
// retry doubles the delay up to the cap, and the granule ultimately fails
// with ErrGranuleFailed.
func TestTaskRunBackoffSeam(t *testing.T) {
	bad := fault.NewCore("solo", xrand.New(3), aluFlip)
	cluster, provider, err := NewPool("m0", []*fault.Core{bad})
	if err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	sup, err := NewSupervisor(cluster, provider, Config{
		MaxRetries:   3,
		RetryBackoff: 10 * time.Millisecond,
		MaxBackoff:   30 * time.Millisecond,
		sleep:        func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sup.Run(&Task{ID: "doomed", Granules: []Granule{CorpusGranule(corpus.NewArith(64))}},
		xrand.New(1))
	if !errors.Is(err, ErrGranuleFailed) {
		t.Fatalf("err = %v, want ErrGranuleFailed", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (sequence %v)", i, slept[i], want[i], slept)
		}
	}
}

// TestTaskRunTapeDivergenceBlamesRecorder forces a control-flow
// divergence: the defective core's live attempt takes the error path
// after one input; the healthy retry follows the success path and asks
// for a second input the tape doesn't have. That ErrTapeExhausted must be
// attributed to the *recording* core, counted as a tape divergence, and
// recovered by re-recording live.
func TestTaskRunTapeDivergenceBlamesRecorder(t *testing.T) {
	badCore := fault.NewCore("m0/0", xrand.New(7), aluFlip)
	cluster, provider, err := NewPool("m0", []*fault.Core{badCore,
		fault.NewCore("m0/1", xrand.New(8))})
	if err != nil {
		t.Fatal(err)
	}
	var signals []detect.Signal
	sup, err := NewSupervisor(cluster, provider, Config{
		Sink: func(s detect.Signal) error { signals = append(signals, s); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	branchy := Granule{
		Name:  "branchy",
		Units: []fault.Unit{fault.UnitALU},
		Work: func(e *engine.Engine, in replay.Source) ([]byte, error) {
			seed, err := in.U64()
			if err != nil {
				return nil, err
			}
			if e.Add64(seed, 1) != seed+1 { // corrupted: bail after 1 input
				return nil, errors.New("self-check mismatch")
			}
			extra, err := in.U64() // healthy path consumes a 2nd input
			if err != nil {
				return nil, err
			}
			out := make([]byte, 8)
			binary.LittleEndian.PutUint64(out, seed^extra)
			return out, nil
		},
	}
	bad := sched.CoreRef{Machine: "m0", Core: 0}
	res, err := sup.Run(&Task{ID: "t", Start: &bad, Granules: []Granule{branchy}}, xrand.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TapeDivergences != 1 {
		t.Fatalf("tape divergences = %d, want 1", res.Stats.TapeDivergences)
	}
	if got := sup.Divergences(bad); got != 2 {
		t.Fatalf("divergences on recorder core = %d, want 2 (live failure + tape divergence)", got)
	}
	if len(signals) != 1 {
		t.Fatalf("signals = %d, want 1 (threshold 2 reached on second divergence)", len(signals))
	}
	if signals[0].Machine != "m0" || signals[0].Core != 0 || signals[0].Kind != detect.SigAppError {
		t.Fatalf("signal = %+v, want app-error on m0/0", signals[0])
	}
	if res.Stats.Granules != 1 || len(res.Output) != 8 {
		t.Fatalf("granule did not recover: %+v", res.Stats)
	}
}

// TestTaskRunParanoidCatchesSilentCorruption runs a granule with no
// self-check and no Verify on a silently-corrupting core: without
// paranoid mode the wrong bytes commit; with it, DMR disagreement forces
// a retry that commits the correct bytes.
func TestTaskRunParanoidCatchesSilentCorruption(t *testing.T) {
	// mulGranule has no self-check and no Verify: on the defective core
	// it commits silently corrupted bytes unless paranoid DMR objects.
	silent := mulGranule("silent")
	want := referenceOutput(t, &Task{ID: "x", Granules: []Granule{silent}}, 77)

	build := func(paranoid bool) (*Supervisor, sched.CoreRef) {
		badCore := fault.NewCore("m0/0", xrand.New(21), aluFlip)
		cluster, provider, err := NewPool("m0", []*fault.Core{badCore,
			fault.NewCore("m0/1", xrand.New(22)),
			fault.NewCore("m0/2", xrand.New(23))})
		if err != nil {
			t.Fatal(err)
		}
		sup, err := NewSupervisor(cluster, provider, Config{Paranoid: paranoid})
		if err != nil {
			t.Fatal(err)
		}
		return sup, sched.CoreRef{Machine: "m0", Core: 0}
	}

	// Control: non-paranoid commits silently corrupted bytes.
	sup, bad := build(false)
	res, err := sup.Run(&Task{ID: "x", Start: &bad, Granules: []Granule{silent}}, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(res.Output, want) {
		t.Fatal("control run unexpectedly produced correct bytes; defect not exercised")
	}

	// Paranoid: disagreement is a retryable fault; the replayed retry on
	// a healthy core commits the reference bytes.
	sup, bad = build(true)
	res, err = sup.Run(&Task{ID: "x", Start: &bad, Granules: []Granule{silent}}, xrand.New(77))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, want) {
		t.Fatalf("paranoid run output %x, want %x", res.Output, want)
	}
	if res.Stats.Restores == 0 || res.Stats.Migrations == 0 {
		t.Fatalf("paranoid disagreement did not restore+migrate: %+v", res.Stats)
	}
}

// TestTaskRunConfigValidation covers constructor and Run input errors.
func TestTaskRunConfigValidation(t *testing.T) {
	cluster, provider, err := NewPool("m0", healthyPool(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSupervisor(nil, provider, Config{}); err == nil {
		t.Fatal("nil cluster accepted")
	}
	if _, err := NewSupervisor(cluster, nil, Config{}); err == nil {
		t.Fatal("nil provider accepted")
	}
	sup, err := NewSupervisor(cluster, provider, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sup.Run(&Task{}, xrand.New(1)); err == nil {
		t.Fatal("task without ID accepted")
	}
	if _, err := sup.Run(&Task{ID: "t"}, xrand.New(1)); err == nil {
		t.Fatal("task without granules accepted")
	}
	if _, err := sup.Run(&Task{ID: "t", Granules: []Granule{mulGranule("g")}}, nil); err == nil {
		t.Fatal("nil input stream accepted")
	}
	if _, err := sup.Run(&Task{ID: "t", Granules: []Granule{{Name: "noop"}}}, xrand.New(1)); err == nil {
		t.Fatal("granule without work accepted")
	}
}
