// Package taskrun is the §7 execution runtime the mitigation toolbox was
// missing: a supervisor that runs work through engine.Engine in
// checkpointed granules and makes the task *finish correctly* on a
// machine with a mercurial core.
//
// Each granule's nondeterministic inputs are read through a
// replay.Recorder, so the live execution produces a replay.Tape as a side
// effect. A committed granule is a checkpoint: its output bytes are
// appended to the task result and never re-derived. When a granule fails
// — the work errors (self-check mismatch), the engine traps, the caller's
// checksum rejects the output, or paranoid DMR disagrees — the supervisor
// restores the last checkpoint and re-executes the granule *from the
// tape* on a different core (sched placement honoring
// CoreRestricted/CoreOffline), with bounded exponential backoff. Because
// the retry consumes the identical input sequence, a different answer can
// only come from the hardware; re-execution doubles as RepTFD-style fault
// detection.
//
// Escalation follows the Facebook SDC-at-scale playbook: repeated
// divergences attributed to the same core are themselves a
// high-confidence suspect signal, emitted as a core-attributed
// detect.Signal through the same pluggable SignalSink the kvdb serving
// layer uses — so the report/quarantine pipeline reroutes future granules
// away from the core without any taskrun-specific plumbing.
package taskrun

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kvdb"
	"repro/internal/mitigate"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// SignalSink is where escalated divergence signals go — the same
// pluggable sink type the kvdb serving layer uses, so kvdb.ServerSink /
// kvdb.ClientSink plug in directly.
type SignalSink = kvdb.SignalSink

// ServerSink adapts an in-process report server into a SignalSink.
var ServerSink = kvdb.ServerSink

// ClientSink adapts a report HTTP client into a SignalSink.
var ClientSink = kvdb.ClientSink

// Work is a granule body: a computation whose nondeterministic inputs all
// cross the replay boundary, making it re-executable from a tape.
type Work = mitigate.ReplayComputation

// CoreProvider resolves a scheduler core reference to the fault-model
// core that actually executes there.
type CoreProvider func(ref sched.CoreRef) *fault.Core

// ErrGranuleFailed is wrapped by Run when a granule exhausts its retry
// budget without committing.
var ErrGranuleFailed = errors.New("taskrun: granule retries exhausted")

// Granule is one checkpointed unit of a task.
type Granule struct {
	// Name labels the granule on tapes, in errors, and in signals.
	Name string
	// Units lists the execution units the granule exercises, for
	// restricted-core admission.
	Units []fault.Unit
	// Work is the computation; required.
	Work Work
	// Verify optionally checks the output (an end-to-end checksum);
	// returning false is a granule failure.
	Verify func(out []byte) bool
}

// Task is an ordered sequence of granules committed one at a time.
type Task struct {
	ID string
	// Start optionally pins the first placement to a specific core;
	// if that core is unavailable the supervisor falls back to normal
	// placement.
	Start *sched.CoreRef
	// Granules run in order; each commits independently.
	Granules []Granule
}

// Stats counts supervisor activity. TaskResult carries the per-task
// deltas; Supervisor.Stats the running totals.
type Stats struct {
	Tasks       int // tasks run to completion or failure
	TasksFailed int // tasks that exhausted a granule's retries
	Granules    int // granules committed (including recovered ones)
	Restores    int // checkpoint restores (failed attempts)
	Retries     int // re-executions after a restore
	Migrations  int // placements moved off a failing core
	// TapeDivergences counts replay attempts that could not follow the
	// tape (exhaustion/kind mismatch) — control-flow divergence blamed
	// on the recording core.
	TapeDivergences int
	Divergences     int // total divergences attributed to any core
	SignalsSent     int
	SignalsDropped  int
	Ops             uint64 // engine ops across all attempts
}

// add folds b into s.
func (s *Stats) add(b Stats) {
	s.Tasks += b.Tasks
	s.TasksFailed += b.TasksFailed
	s.Granules += b.Granules
	s.Restores += b.Restores
	s.Retries += b.Retries
	s.Migrations += b.Migrations
	s.TapeDivergences += b.TapeDivergences
	s.Divergences += b.Divergences
	s.SignalsSent += b.SignalsSent
	s.SignalsDropped += b.SignalsDropped
	s.Ops += b.Ops
}

// TaskResult is the outcome of one task.
type TaskResult struct {
	// Output is the concatenation of committed granule outputs, in
	// granule order — byte-identical regardless of how many retries or
	// migrations the run needed.
	Output []byte
	// Path lists the cores the task occupied, in order; len > 1 means it
	// migrated.
	Path []sched.CoreRef
	// Stats holds this task's deltas.
	Stats Stats
}

// Config tunes a Supervisor.
type Config struct {
	// MaxRetries bounds re-executions per granule after the initial
	// attempt. 0 means the default (3); negative disables retries.
	MaxRetries int
	// DivergenceThreshold is how many divergences a single core
	// accumulates before further failures there emit suspect signals.
	// 0 means the default (2) — one bad granule could be the task's own
	// bug; a repeat offender is a core problem.
	DivergenceThreshold int
	// Paranoid makes every successful granule re-run DMR-style on a
	// second idle core from its tape; disagreement is a retryable fault.
	Paranoid bool
	// Sink receives escalated divergence signals; nil drops them.
	Sink SignalSink
	// Now timestamps signals; nil leaves Time zero.
	Now func() simtime.Time
	// RetryBackoff is the first retry's delay; doubled per retry up to
	// MaxBackoff (default 8×RetryBackoff). Zero disables sleeping.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// Metrics, when set, receives taskrun_* instruments.
	Metrics *obs.Registry
	// OnCommit, when set, observes every granule commit — a test seam
	// for injecting churn between granules.
	OnCommit func(taskID string, granule int, ref sched.CoreRef)

	// sleep is the backoff sleeper; tests replace it.
	sleep func(time.Duration)
}

// withDefaults resolves the config's zero values.
func (c Config) withDefaults() Config {
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 3
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.DivergenceThreshold <= 0 {
		c.DivergenceThreshold = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 8 * c.RetryBackoff
	}
	if c.sleep == nil {
		c.sleep = time.Sleep
	}
	return c
}

// Supervisor drives tasks through the checkpoint/retry state machine.
// It is single-goroutine, like the engines it runs.
type Supervisor struct {
	cluster *sched.Cluster
	cores   CoreProvider
	cfg     Config
	// div tracks cumulative divergences per core across tasks —
	// recidivism is the escalation signal.
	div   map[sched.CoreRef]int
	stats Stats
}

// NewSupervisor builds a supervisor over an existing cluster. cores
// resolves placements to executable cores.
func NewSupervisor(cluster *sched.Cluster, cores CoreProvider, cfg Config) (*Supervisor, error) {
	if cluster == nil {
		return nil, errors.New("taskrun: nil cluster")
	}
	if cores == nil {
		return nil, errors.New("taskrun: nil core provider")
	}
	return &Supervisor{
		cluster: cluster,
		cores:   cores,
		cfg:     cfg.withDefaults(),
		div:     map[sched.CoreRef]int{},
	}, nil
}

// Stats returns the cumulative counters.
func (s *Supervisor) Stats() Stats { return s.stats }

// Divergences returns how many divergences have been attributed to ref.
func (s *Supervisor) Divergences(ref sched.CoreRef) int { return s.div[ref] }

// SetMetrics (re)binds the obs registry the supervisor instruments into.
func (s *Supervisor) SetMetrics(reg *obs.Registry) { s.cfg.Metrics = reg }

// counter is a nil-safe registry accessor.
func (s *Supervisor) counter(name string, labels ...obs.Label) *obs.Counter {
	if s.cfg.Metrics == nil {
		return nil
	}
	return s.cfg.Metrics.Counter(name, labels...)
}

// Run executes the task's granules in order, committing each at most
// once. inputs supplies the live nondeterministic input stream; retries
// replay the recorded tape instead of drawing fresh inputs, so the
// committed output does not depend on which attempt succeeded.
func (s *Supervisor) Run(t *Task, inputs *xrand.RNG) (TaskResult, error) {
	var res TaskResult
	defer func() { s.stats.add(res.Stats) }()
	res.Stats.Tasks++
	if t == nil || t.ID == "" {
		res.Stats.TasksFailed++
		return res, errors.New("taskrun: task needs an ID")
	}
	if len(t.Granules) == 0 {
		res.Stats.TasksFailed++
		return res, fmt.Errorf("taskrun: task %q has no granules", t.ID)
	}
	if inputs == nil {
		res.Stats.TasksFailed++
		return res, fmt.Errorf("taskrun: task %q needs an input stream", t.ID)
	}
	st := &sched.Task{ID: t.ID, Units: unionUnits(t.Granules)}
	ref, err := s.place(t, st)
	if err != nil {
		res.Stats.TasksFailed++
		return res, err
	}
	defer s.cluster.Finish(t.ID)
	res.Path = append(res.Path, ref)

	for gi := range t.Granules {
		// The quarantine pipeline may have evicted us between granules
		// (SetCoreState on a suspect core). Re-place and carry on; the
		// committed prefix is the checkpoint, nothing re-runs.
		if cur, ok := s.cluster.Lookup(t.ID); ok {
			ref = cur
		} else {
			ref, err = s.cluster.Place(st)
			if err != nil {
				res.Stats.TasksFailed++
				return res, fmt.Errorf("taskrun: task %q evicted and unplaceable: %w", t.ID, err)
			}
			s.noteMigration(&res, ref)
		}
		out, gerr := s.runGranule(t, gi, st, &ref, inputs, &res)
		if gerr != nil {
			res.Stats.TasksFailed++
			return res, gerr
		}
		res.Output = append(res.Output, out...)
		if s.cfg.OnCommit != nil {
			s.cfg.OnCommit(t.ID, gi, ref)
		}
	}
	return res, nil
}

// place performs the task's initial placement, honoring Start when the
// pinned core is available.
func (s *Supervisor) place(t *Task, st *sched.Task) (sched.CoreRef, error) {
	if t.Start != nil {
		if ref, err := s.cluster.PlaceAt(st, *t.Start); err == nil {
			return ref, nil
		}
		// Pinned core gone (quarantined, drained, occupied): any core.
	}
	return s.cluster.Place(st)
}

// runGranule drives one granule through run → verify → commit |
// restore-and-migrate until it commits or the retry budget runs out.
func (s *Supervisor) runGranule(t *Task, gi int, st *sched.Task, ref *sched.CoreRef, inputs *xrand.RNG, res *TaskResult) ([]byte, error) {
	g := &t.Granules[gi]
	if g.Work == nil {
		return nil, fmt.Errorf("taskrun: task %q granule %d (%s) has no work", t.ID, gi, g.Name)
	}
	var tape *replay.Tape
	var tapeOrigin sched.CoreRef
	for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			res.Stats.Retries++
			s.counter("taskrun_retries_total").Inc()
			s.backoff(attempt - 1)
		}
		core := s.cores(*ref)
		if core == nil {
			return nil, fmt.Errorf("taskrun: no core behind %s", *ref)
		}
		live := tape == nil
		var src replay.Source
		var rec *replay.Recorder
		if live {
			rec = &replay.Recorder{
				Label:   g.Name,
				NextU64: inputs.Uint64,
				NextBytes: func() []byte {
					b := make([]byte, 32)
					inputs.Bytes(b)
					return b
				},
				NextBool: func() bool { return inputs.Uint64()&1 == 1 },
			}
			src = rec
		} else {
			src = replay.NewReplayer(tape)
		}

		e := engine.New(core)
		before := core.TotalOps()
		start := time.Now()
		out, err := g.Work(e, src)
		res.Stats.Ops += core.TotalOps() - before
		s.observeLatency(g, core.TotalOps()-before, time.Since(start))
		if live {
			// Keep the recorded prefix even on failure: the retry feeds
			// the identical inputs, so divergence isolates the hardware.
			tape = rec.Tape()
			tapeOrigin = *ref
		} else if err != nil && isReplayDivergence(err) {
			// The replica could not follow the tape: control-flow
			// divergence, blamed on the core that recorded it. Drop the
			// tape and re-record live on the current core.
			res.Stats.TapeDivergences++
			res.Stats.Restores++
			s.counter("taskrun_tape_divergences_total").Inc()
			s.counter("taskrun_checkpoint_restores_total").Inc()
			s.noteDivergence(tapeOrigin, fmt.Sprintf("replay of granule %q diverged: %v", g.Name, err), res)
			tape = nil
			continue
		}

		reason := ""
		switch {
		case err != nil:
			reason = "self-check: " + err.Error()
		case e.Trapped() != nil:
			reason = "trap: " + e.Trapped().Error()
		case g.Verify != nil && !g.Verify(out):
			reason = "checksum failure"
		}
		if reason == "" && s.cfg.Paranoid {
			if vref, agree := s.paranoidCheck(g, st, *ref, tape, out, res); !agree {
				reason = "dmr disagreement"
				// DMR cannot attribute: blame both sides and let
				// concentration sort it out.
				s.noteDivergence(vref, fmt.Sprintf("dmr disagreement on granule %q", g.Name), res)
			}
		}
		if reason == "" {
			outcome := "committed"
			if attempt > 0 {
				outcome = "recovered"
			}
			s.counter("taskrun_granules_total", obs.L("outcome", outcome)).Inc()
			res.Stats.Granules++
			return out, nil
		}

		// Restore the checkpoint and migrate off the suspect core.
		res.Stats.Restores++
		s.counter("taskrun_checkpoint_restores_total").Inc()
		s.noteDivergence(*ref, fmt.Sprintf("granule %q attempt %d: %s", g.Name, attempt, reason), res)
		if next, merr := s.migrateAway(t.ID, st, *ref, res); merr == nil {
			*ref = next
		}
	}
	s.counter("taskrun_granules_total", obs.L("outcome", "failed")).Inc()
	return nil, fmt.Errorf("taskrun: task %q granule %q: %w", t.ID, g.Name, ErrGranuleFailed)
}

// paranoidCheck replays a successful granule on a second idle core and
// compares outputs. The verifier is the idle admissible core with the
// fewest divergences on record — DMR cannot attribute a disagreement, so
// letting a known-suspect core veto results would livelock the retry
// loop. Returns the verifier used and whether it agreed; when no idle
// admissible core exists the check is skipped (capacity over paranoia)
// and agree is true.
func (s *Supervisor) paranoidCheck(g *Granule, st *sched.Task, cur sched.CoreRef, tape *replay.Tape, out []byte, res *TaskResult) (sched.CoreRef, bool) {
	probe := &sched.Task{ID: st.ID + "/verify", Units: g.Units}
	var vref sched.CoreRef
	found := false
	for _, cand := range s.cluster.IdleCores(probe) {
		if cand == cur {
			continue
		}
		if !found || s.div[cand] < s.div[vref] {
			vref, found = cand, true
		}
	}
	if !found {
		return cur, true
	}
	core := s.cores(vref)
	if core == nil {
		return cur, true
	}
	agree, vst, _ := mitigate.VerifyReplay(engine.New(core), g.Work, tape, out)
	res.Stats.Ops += vst.Ops
	return vref, agree
}

// migrateAway moves the task off bad, re-placing from scratch if external
// churn already evicted it.
func (s *Supervisor) migrateAway(taskID string, st *sched.Task, bad sched.CoreRef, res *TaskResult) (sched.CoreRef, error) {
	avoid := func(r sched.CoreRef) bool { return r == bad }
	var (
		next sched.CoreRef
		err  error
	)
	if _, placed := s.cluster.Lookup(taskID); placed {
		next, err = s.cluster.MigrateAvoid(taskID, avoid)
	} else if ref, found := s.cluster.FindIdle(st, avoid); found {
		next, err = s.cluster.PlaceAt(st, ref)
	} else {
		next, err = s.cluster.Place(st)
	}
	if err != nil {
		return bad, err
	}
	s.noteMigration(res, next)
	return next, nil
}

// noteMigration counts a placement change and records it on the path.
func (s *Supervisor) noteMigration(res *TaskResult, ref sched.CoreRef) {
	res.Stats.Migrations++
	s.counter("taskrun_migrations_total").Inc()
	res.Path = append(res.Path, ref)
}

// noteDivergence attributes one divergence to ref; past the threshold,
// each further divergence emits a core-attributed suspect signal, so a
// recidivist core keeps feeding the tracker's concentration test.
func (s *Supervisor) noteDivergence(ref sched.CoreRef, detail string, res *TaskResult) {
	s.div[ref]++
	res.Stats.Divergences++
	s.counter("taskrun_divergences_total").Inc()
	if s.div[ref] < s.cfg.DivergenceThreshold {
		return
	}
	sig := detect.Signal{
		Machine: ref.Machine,
		Core:    ref.Core,
		Kind:    detect.SigAppError,
		Detail:  fmt.Sprintf("taskrun: %s (%d divergences on %s)", detail, s.div[ref], ref),
	}
	if s.cfg.Now != nil {
		sig.Time = s.cfg.Now()
	}
	if s.cfg.Sink == nil {
		res.Stats.SignalsDropped++
		s.counter("taskrun_signals_dropped_total").Inc()
		return
	}
	if err := s.cfg.Sink(sig); err != nil {
		res.Stats.SignalsDropped++
		s.counter("taskrun_signals_dropped_total").Inc()
		return
	}
	res.Stats.SignalsSent++
	s.counter("taskrun_signals_total").Inc()
}

// backoff sleeps 2^retry × RetryBackoff capped at MaxBackoff, through the
// test-seam sleeper. Zero RetryBackoff disables sleeping entirely.
func (s *Supervisor) backoff(retry int) {
	if s.cfg.RetryBackoff <= 0 {
		return
	}
	d := s.cfg.RetryBackoff
	for i := 0; i < retry && d < s.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > s.cfg.MaxBackoff {
		d = s.cfg.MaxBackoff
	}
	s.cfg.sleep(d)
}

// observeLatency records the granule-latency histograms.
func (s *Supervisor) observeLatency(g *Granule, ops uint64, wall time.Duration) {
	if s.cfg.Metrics == nil {
		return
	}
	s.cfg.Metrics.Histogram("taskrun_granule_seconds").Observe(wall.Seconds())
	s.cfg.Metrics.HistogramBuckets("taskrun_granule_ops",
		[]float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7}).Observe(float64(ops))
}

// isReplayDivergence reports whether err is a control-flow divergence
// surfaced by the replay layer.
func isReplayDivergence(err error) bool {
	return errors.Is(err, replay.ErrTapeExhausted) || errors.Is(err, replay.ErrKindMismatch)
}

// unionUnits collects the distinct execution units across granules, in
// first-use order, for restricted-core admission of the whole task.
func unionUnits(gs []Granule) []fault.Unit {
	var out []fault.Unit
	seen := map[fault.Unit]bool{}
	for i := range gs {
		for _, u := range gs[i].Units {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}

// CorpusGranule adapts a self-checking corpus workload into a granule.
// The workload's only nondeterministic input — its RNG stream — crosses
// the replay boundary as a single recorded seed, so a retry on another
// core feeds the byte-identical input sequence. The workload's own golden
// self-check is the granule's verification; its verdict maps onto the
// supervisor's failure classes.
func CorpusGranule(w corpus.Workload) Granule {
	return Granule{
		Name:  w.Name(),
		Units: w.Units(),
		Work: func(e *engine.Engine, in replay.Source) ([]byte, error) {
			seed, err := in.U64()
			if err != nil {
				return nil, err
			}
			res := w.Run(e, xrand.New(seed))
			switch res.Verdict {
			case corpus.Pass:
				return []byte(fmt.Sprintf("%s:%016x:pass\n", res.Workload, seed)), nil
			case corpus.Trapped:
				return nil, fmt.Errorf("%s trapped: %s", res.Workload, res.Detail)
			default:
				return nil, fmt.Errorf("%s: %s", res.Workload, res.Detail)
			}
		},
	}
}

// NewPool builds a single-machine cluster over the given cores plus the
// provider resolving placements onto them — the standalone harness for
// running a supervisor outside the fleet simulator.
func NewPool(machine string, cores []*fault.Core) (*sched.Cluster, CoreProvider, error) {
	cluster := sched.NewCluster()
	if _, err := cluster.AddMachine(machine, len(cores)); err != nil {
		return nil, nil, err
	}
	pool := append([]*fault.Core(nil), cores...)
	provider := func(ref sched.CoreRef) *fault.Core {
		if ref.Machine != machine || ref.Core < 0 || ref.Core >= len(pool) {
			return nil
		}
		return pool[ref.Core]
	}
	return cluster, provider, nil
}
