package corpus

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Atomic is the atomic-unit torture workload. The Lock workload checks
// lock *semantics*, which a store-value-corrupting CAS can survive (the
// lock still excludes — a real coverage gap found while building the
// forensics classifier); this workload checks the atomic unit's *values*
// directly: every FetchAdd and CAS result is verified against a native
// mirror, so dropped updates and corrupted stores are both caught.
type Atomic struct {
	// Ops is the number of atomic operations per run.
	Ops int
}

// NewAtomic returns an Atomic workload with the given op count.
func NewAtomic(ops int) *Atomic { return &Atomic{Ops: ops} }

// Name implements Workload.
func (*Atomic) Name() string { return "atomic-torture" }

// Units implements Workload.
func (*Atomic) Units() []fault.Unit { return []fault.Unit{fault.UnitAtomic} }

// Run implements Workload.
func (w *Atomic) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		var v uint64
		var want uint64
		for i := 0; i < w.Ops; i++ {
			delta := rng.Uint64n(1 << 32)
			old := e.FetchAdd(&v, delta)
			if old != want {
				return fmt.Sprintf("op %d: FetchAdd returned %#x want %#x", i, old, want)
			}
			want += delta
			if v != want {
				return fmt.Sprintf("op %d: FetchAdd stored %#x want %#x", i, v, want)
			}
		}
		// CAS ladder: each step must observe and store exact values.
		var c uint64
		for i := uint64(1); i <= uint64(w.Ops); i++ {
			if !e.CAS(&c, i-1, i) {
				return fmt.Sprintf("cas %d: spurious failure at %#x", i, c)
			}
			if c != i {
				return fmt.Sprintf("cas %d: stored %#x want %#x", i, c, i)
			}
		}
		// Failed-CAS path must not mutate.
		before := c
		if e.CAS(&c, before+1, 0) {
			return "cas: succeeded against wrong expected value"
		}
		if c != before {
			return fmt.Sprintf("failed cas mutated value: %#x -> %#x", before, c)
		}
		return ""
	})
}
