package corpus

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

func healthyEngine(seed uint64) *engine.Engine {
	return engine.New(fault.NewCore("h", xrand.New(seed)))
}

func defectiveEngine(seed uint64, d fault.Defect) *engine.Engine {
	d.ID = "d"
	return engine.New(fault.NewCore("m", xrand.New(seed), d))
}

func TestAllWorkloadsPassOnHealthyCore(t *testing.T) {
	for _, w := range All() {
		res := w.Run(healthyEngine(1), xrand.New(7))
		if res.Verdict != Pass {
			t.Fatalf("%s on healthy core: %v (%s)", w.Name(), res.Verdict, res.Detail)
		}
		if res.Ops == 0 {
			t.Fatalf("%s consumed no engine ops; it is not exercising the core", w.Name())
		}
		if res.Workload != w.Name() {
			t.Fatalf("result workload name %q != %q", res.Workload, w.Name())
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range Names() {
		w1, _ := ByName(name)
		w2, _ := ByName(name)
		r1 := w1.Run(healthyEngine(5), xrand.New(9))
		r2 := w2.Run(healthyEngine(5), xrand.New(9))
		if r1.Verdict != r2.Verdict || r1.Ops != r2.Ops {
			t.Fatalf("%s not deterministic: %+v vs %+v", name, r1, r2)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("matmul")
	if err != nil || w.Name() != "matmul" {
		t.Fatalf("ByName: %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestNamesUniqueAndNonEmpty(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("corpus too small: %d workloads", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestVerdictString(t *testing.T) {
	if Pass.String() != "pass" || WrongAnswer.String() != "wrong-answer" || Trapped.String() != "trap" {
		t.Fatal("verdict strings wrong")
	}
	if !strings.Contains(Verdict(9).String(), "9") {
		t.Fatal("unknown verdict should include number")
	}
}

func TestUnitsDeclared(t *testing.T) {
	for _, w := range All() {
		if len(w.Units()) == 0 {
			t.Fatalf("%s declares no units", w.Name())
		}
	}
}

// detects runs the workload repeatedly on a defective engine and reports
// whether any run detected the defect (wrong answer or trap).
func detects(t *testing.T, w Workload, d fault.Defect, runs int) bool {
	t.Helper()
	e := defectiveEngine(3, d)
	rng := xrand.New(11)
	for i := 0; i < runs; i++ {
		res := w.Run(e, rng)
		if res.Verdict != Pass {
			return true
		}
	}
	return false
}

func TestArithDetectsALUDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitALU, BaseRate: 1e-3, Kind: fault.CorruptBitFlip, BitPos: 13}
	if !detects(t, NewArith(4096), d, 10) {
		t.Fatal("arith-torture missed an ALU defect")
	}
}

func TestArithDetectsMulDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitMul, BaseRate: 1e-2, Kind: fault.CorruptBitFlip, BitPos: 40}
	if !detects(t, NewArith(4096), d, 10) {
		t.Fatal("arith-torture missed a MUL defect")
	}
}

func TestHashDetectsMulDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitMul, BaseRate: 1e-3, Kind: fault.CorruptBitFlip, BitPos: 7}
	if !detects(t, NewHash(2048), d, 10) {
		t.Fatal("hash-fnv missed a MUL defect")
	}
}

func TestCRCDetectsALUDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitALU, BaseRate: 1e-3, Kind: fault.CorruptStuckBit, BitPos: 5, StuckVal: 1}
	if !detects(t, NewCRC(2048), d, 10) {
		t.Fatal("crc missed an ALU defect")
	}
}

func TestCopyDetectsVecDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitVec, BaseRate: 1e-3, Kind: fault.CorruptBitFlip, BitPos: 9}
	if !detects(t, NewCopy(4096), d, 10) {
		t.Fatal("memcpy missed a VEC defect")
	}
}

func TestVecDetectsVecDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitVec, BaseRate: 1e-3, Kind: fault.CorruptWrongLane}
	if !detects(t, NewVec(1024), d, 10) {
		t.Fatal("vector-ops missed a VEC defect")
	}
}

func TestFloatDetectsFPUDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitFPU, BaseRate: 1e-2, Kind: fault.CorruptBitFlip, BitPos: 3}
	if !detects(t, NewFloat(2048), d, 10) {
		t.Fatal("float-ops missed an FPU defect")
	}
}

func TestMatMulDetectsMulDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitMul, BaseRate: 1e-3, Kind: fault.CorruptBitFlip, BitPos: 22}
	if !detects(t, NewMatMul(12), d, 10) {
		t.Fatal("matmul missed a MUL defect")
	}
}

func TestSortDetectsCompareDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitALU, BaseRate: 5e-3, Kind: fault.CorruptBitFlip, BitPos: 0}
	if !detects(t, NewSort(512), d, 20) {
		t.Fatal("sort missed a compare defect")
	}
}

func TestLockDetectsDroppedCAS(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitAtomic, BaseRate: 0.05, Kind: fault.CorruptDropUpdate}
	if !detects(t, NewLock(8, 64), d, 20) {
		t.Fatal("lock-semantics missed a dropped CAS")
	}
}

func TestMemDetectsLSUDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitLSU, BaseRate: 1e-3, Kind: fault.CorruptOffByOne, Delta: 1}
	if !detects(t, NewMem(1024), d, 10) {
		t.Fatal("mem-pattern missed an LSU address defect")
	}
}

func TestMemDataDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitLSU, BaseRate: 1e-3, Kind: fault.CorruptBitFlip, BitPos: 17}
	if !detects(t, NewMem(1024), d, 10) {
		t.Fatal("mem-pattern missed an LSU data defect")
	}
}

func TestCryptoKnownAnswerCatchesSelfInverting(t *testing.T) {
	d := fault.Defect{
		Unit: fault.UnitCrypto, Deterministic: true,
		Kind: fault.CorruptPreXORInput, Mask: 1 << 23,
	}
	if !detects(t, NewCryptoKnownAnswer(64), d, 1) {
		t.Fatal("known-answer crypto test missed the self-inverting defect")
	}
}

func TestCryptoRoundtripMissesSelfInverting(t *testing.T) {
	// The paper's key observation: the self-inverting AES defect is
	// invisible to same-core roundtrip checks.
	d := fault.Defect{
		Unit: fault.UnitCrypto, Deterministic: true,
		Kind: fault.CorruptPreXORInput, Mask: 1 << 23,
	}
	w := NewCryptoRoundtrip(256)
	e := defectiveEngine(3, d)
	rng := xrand.New(11)
	for i := 0; i < 5; i++ {
		if res := w.Run(e, rng); res.Verdict != Pass {
			t.Fatalf("roundtrip check unexpectedly detected self-inverting defect: %s", res.Detail)
		}
	}
}

func TestCryptoRoundtripCatchesNonInverting(t *testing.T) {
	d := fault.Defect{
		Unit: fault.UnitCrypto, BaseRate: 0.01,
		Kind: fault.CorruptBitFlip, BitPos: 11,
	}
	if !detects(t, NewCryptoRoundtrip(256), d, 20) {
		t.Fatal("roundtrip check missed an ordinary crypto defect")
	}
}

func TestLZRoundtripHealthy(t *testing.T) {
	e := healthyEngine(2)
	rng := xrand.New(3)
	for _, n := range []int{0, 1, 10, 100, 2048} {
		src := compressible(rng, n)
		comp := LZCompress(e, src)
		dec, err := LZDecompress(e, comp)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("n=%d: roundtrip mismatch", n)
		}
	}
}

func TestLZActuallyCompresses(t *testing.T) {
	e := healthyEngine(2)
	src := bytes.Repeat([]byte("abcdefgh"), 200)
	comp := LZCompress(e, src)
	if len(comp) >= len(src)/2 {
		t.Fatalf("poor compression: %d -> %d", len(src), len(comp))
	}
}

func TestLZRandomDataRoundtrips(t *testing.T) {
	e := healthyEngine(2)
	rng := xrand.New(5)
	src := make([]byte, 1000)
	rng.Bytes(src)
	comp := LZCompress(e, src)
	dec, err := LZDecompress(e, comp)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatalf("incompressible roundtrip failed: %v", err)
	}
}

func TestLZDecompressRejectsGarbage(t *testing.T) {
	e := healthyEngine(2)
	cases := [][]byte{
		{0x00},             // zero-length literal run
		{0x05, 'a'},        // truncated literal run
		{0x80},             // match with missing offset
		{0x80, 0x00, 0x00}, // zero offset
		{0x81, 0xFF, 0x7F}, // offset beyond output
	}
	for i, c := range cases {
		if _, err := LZDecompress(e, c); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestCompressDetectsVecDefect(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitVec, BaseRate: 1e-3, Kind: fault.CorruptBitFlip, BitPos: 3}
	if !detects(t, NewCompress(2048), d, 10) {
		t.Fatal("lz-compress missed a VEC defect")
	}
}

func TestSortSliceHealthy(t *testing.T) {
	e := healthyEngine(4)
	rng := xrand.New(6)
	for _, n := range []int{0, 1, 2, 15, 16, 17, 100, 1000} {
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = rng.Uint64n(100)
		}
		SortSlice(e, xs)
		for i := 1; i < n; i++ {
			if xs[i-1] > xs[i] {
				t.Fatalf("n=%d misordered at %d", n, i)
			}
		}
	}
}

func TestLockPassesHealthy(t *testing.T) {
	res := NewLock(16, 32).Run(healthyEngine(8), xrand.New(12))
	if res.Verdict != Pass {
		t.Fatalf("healthy lock run failed: %s", res.Detail)
	}
}

func TestMulMatricesGoldenAgreement(t *testing.T) {
	e := healthyEngine(9)
	rng := xrand.New(13)
	n := 6
	a := make([]uint64, n*n)
	b := make([]uint64, n*n)
	for i := range a {
		a[i] = rng.Uint64()
		b[i] = rng.Uint64()
	}
	got := MulMatrices(e, a, b, n)
	want := mulGolden(a, b, n)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestRunContainsCrash(t *testing.T) {
	e := healthyEngine(10)
	res := run(e, "crashy", func() string { panic("boom") })
	if res.Verdict != Trapped {
		t.Fatalf("verdict = %v", res.Verdict)
	}
	if !strings.Contains(res.Detail, "boom") {
		t.Fatalf("detail = %q", res.Detail)
	}
}

func BenchmarkCorpusFullPassHealthy(b *testing.B) {
	e := healthyEngine(1)
	rng := xrand.New(2)
	all := All()
	for i := 0; i < b.N; i++ {
		for _, w := range all {
			if res := w.Run(e, rng); res.Verdict != Pass {
				b.Fatalf("%s failed on healthy core", w.Name())
			}
		}
	}
}

func TestAtomicDetectsStoreValueCorruption(t *testing.T) {
	// The coverage gap the forensics work exposed: a deterministic
	// store-value corruption on CAS preserves mutual exclusion (the lock
	// workload passes) but atomic-torture must catch it.
	d := fault.Defect{Unit: fault.UnitAtomic, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 1}
	if !detects(t, NewAtomic(256), d, 1) {
		t.Fatal("atomic-torture missed a store-value CAS corruption")
	}
	lock := NewLock(8, 64)
	e := defectiveEngine(9, d)
	rng := xrand.New(10)
	for i := 0; i < 5; i++ {
		if res := lock.Run(e, rng); res.Verdict != Pass {
			t.Skip("lock workload unexpectedly caught it; gap closed elsewhere")
		}
	}
}

func TestAtomicDetectsDroppedUpdate(t *testing.T) {
	d := fault.Defect{Unit: fault.UnitAtomic, BaseRate: 0.01,
		Kind: fault.CorruptDropUpdate}
	if !detects(t, NewAtomic(256), d, 20) {
		t.Fatal("atomic-torture missed dropped updates")
	}
}

func TestAtomicPassesHealthy(t *testing.T) {
	if res := NewAtomic(256).Run(healthyEngine(11), xrand.New(12)); res.Verdict != Pass {
		t.Fatalf("healthy atomic run failed: %s", res.Detail)
	}
}
