package corpus

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// CryptoRoundtrip encrypts and decrypts blocks on the same core and checks
// that the roundtrip is the identity. Deliberately weak: it cannot detect
// the §2 self-inverting defect, because on the defective core
// decrypt(encrypt(x)) == x even though the ciphertext is wrong. The paper's
// point — some CEEs are only visible by checking against results computed
// elsewhere — falls out of comparing this workload with CryptoKnownAnswer.
type CryptoRoundtrip struct {
	// Blocks is the number of 64-bit blocks per run.
	Blocks int
}

// NewCryptoRoundtrip returns the roundtrip-only crypto workload.
func NewCryptoRoundtrip(blocks int) *CryptoRoundtrip {
	return &CryptoRoundtrip{Blocks: blocks}
}

// Name implements Workload.
func (*CryptoRoundtrip) Name() string { return "crypto-roundtrip" }

// Units implements Workload.
func (*CryptoRoundtrip) Units() []fault.Unit { return []fault.Unit{fault.UnitCrypto} }

// Run implements Workload.
func (w *CryptoRoundtrip) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		key := rng.Uint64()
		for i := 0; i < w.Blocks; i++ {
			x := rng.Uint64()
			ct := e.CryptoEncrypt64(x, key)
			if got := e.CryptoDecrypt64(ct, key); got != x {
				return fmt.Sprintf("block %d: roundtrip %#x -> %#x", i, x, got)
			}
		}
		return ""
	})
}

// CryptoKnownAnswer encrypts blocks and compares the ciphertext against the
// golden cipher — the strong check that does catch self-inverting defects.
type CryptoKnownAnswer struct {
	// Blocks is the number of 64-bit blocks per run.
	Blocks int
}

// NewCryptoKnownAnswer returns the known-answer crypto workload.
func NewCryptoKnownAnswer(blocks int) *CryptoKnownAnswer {
	return &CryptoKnownAnswer{Blocks: blocks}
}

// Name implements Workload.
func (*CryptoKnownAnswer) Name() string { return "crypto-known-answer" }

// Units implements Workload.
func (*CryptoKnownAnswer) Units() []fault.Unit { return []fault.Unit{fault.UnitCrypto} }

// Run implements Workload.
func (w *CryptoKnownAnswer) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		key := rng.Uint64()
		for i := 0; i < w.Blocks; i++ {
			x := rng.Uint64()
			ct := e.CryptoEncrypt64(x, key)
			if want := engine.GoldenCryptoEncrypt64(x, key); ct != want {
				return fmt.Sprintf("block %d: ciphertext %#x want %#x", i, ct, want)
			}
			pt := e.CryptoDecrypt64(ct, key)
			if pt != x {
				return fmt.Sprintf("block %d: plaintext %#x want %#x", i, pt, x)
			}
		}
		return ""
	})
}
