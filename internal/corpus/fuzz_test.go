package corpus

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// FuzzLZDecompress asserts the decoder never panics or over-allocates on
// arbitrary input — a corrupted compressed stream is exactly what a
// mercurial core produces, so the decoder must be fail-noisy, not
// fail-crashy.
func FuzzLZDecompress(f *testing.F) {
	e := engine.New(fault.NewCore("fuzz", xrand.New(1)))
	seedSrc := compressible(xrand.New(2), 300)
	f.Add(LZCompress(e, seedSrc))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x01, 0x00})
	f.Add([]byte{0x05, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		out, err := LZDecompress(e, data)
		if err == nil && len(out) > 128*len(data)+256 {
			t.Fatalf("suspicious expansion: %d -> %d", len(data), len(out))
		}
	})
}

// FuzzLZRoundTrip asserts compress∘decompress is the identity for any
// input on a healthy core.
func FuzzLZRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA, 0x55}, 300))
	e := engine.New(fault.NewCore("fuzz2", xrand.New(3)))
	f.Fuzz(func(t *testing.T, src []byte) {
		if len(src) > 1<<15 {
			return
		}
		comp := LZCompress(e, src)
		out, err := LZDecompress(e, comp)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("roundtrip mismatch: %d bytes in, %d out", len(src), len(out))
		}
	})
}
