package corpus

import (
	"fmt"

	"repro/internal/ecc"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Hash is the hashing workload: FNV-1a through the engine's multiply and
// logic units, compared against a native mirror.
type Hash struct {
	// Bytes is the input size per run.
	Bytes int
}

// NewHash returns a Hash workload over the given input size.
func NewHash(n int) *Hash { return &Hash{Bytes: n} }

// Name implements Workload.
func (*Hash) Name() string { return "hash-fnv" }

// Units implements Workload.
func (*Hash) Units() []fault.Unit { return []fault.Unit{fault.UnitALU, fault.UnitMul} }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvGolden is the native FNV-1a mirror.
func fnvGolden(data []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}

// Run implements Workload.
func (w *Hash) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		data := make([]byte, w.Bytes)
		rng.Bytes(data)
		h := uint64(fnvOffset)
		for _, b := range data {
			h = e.Xor64(h, uint64(b))
			h = e.Mul64(h, fnvPrime)
		}
		if want := fnvGolden(data); h != want {
			return fmt.Sprintf("fnv: got %#x want %#x", h, want)
		}
		// A second pass over the same data must agree with the first —
		// catches intermittent defects that fire on one pass only.
		h2 := uint64(fnvOffset)
		for _, b := range data {
			h2 = e.Xor64(h2, uint64(b))
			h2 = e.Mul64(h2, fnvPrime)
		}
		if h2 != h {
			return fmt.Sprintf("fnv: unstable hash %#x vs %#x", h, h2)
		}
		return ""
	})
}

// CRC is the checksum workload: CRC32-C and CRC-64 through the engine,
// compared against golden values.
type CRC struct {
	// Bytes is the input size per run.
	Bytes int
}

// NewCRC returns a CRC workload over the given input size.
func NewCRC(n int) *CRC { return &CRC{Bytes: n} }

// Name implements Workload.
func (*CRC) Name() string { return "crc" }

// Units implements Workload.
func (*CRC) Units() []fault.Unit { return []fault.Unit{fault.UnitALU} }

// Run implements Workload.
func (w *CRC) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		data := make([]byte, w.Bytes)
		rng.Bytes(data)
		if got, want := ecc.CRC32C(e, data), ecc.CRC32CGolden(data); got != want {
			return fmt.Sprintf("crc32c: got %#x want %#x", got, want)
		}
		if got, want := ecc.CRC64(e, data), ecc.CRC64Golden(data); got != want {
			return fmt.Sprintf("crc64: got %#x want %#x", got, want)
		}
		if got, want := ecc.Fletcher64(e, data), ecc.Fletcher64Golden(data); got != want {
			return fmt.Sprintf("fletcher64: got %#x want %#x", got, want)
		}
		return ""
	})
}
