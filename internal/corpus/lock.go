package corpus

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Lock is the locking workload, reproducing §2's "violations of lock
// semantics leading to application data corruption". It simulates several
// logical threads incrementing a shared counter under a CAS spinlock, with
// a deterministic randomized interleaving. A defective atomic unit that
// reports CAS success without storing lets two threads into the critical
// section, losing updates: the final count disagrees with the expected
// total.
//
// The simulation is single-goroutine so runs are exactly reproducible; the
// thread interleaving lives in the scheduler, not in Go's runtime.
type Lock struct {
	// Threads is the number of logical threads.
	Threads int
	// Increments is the number of increments each thread performs.
	Increments int
}

// NewLock returns a Lock workload with the given shape.
func NewLock(threads, increments int) *Lock {
	return &Lock{Threads: threads, Increments: increments}
}

// Name implements Workload.
func (*Lock) Name() string { return "lock-semantics" }

// Units implements Workload.
func (*Lock) Units() []fault.Unit { return []fault.Unit{fault.UnitAtomic, fault.UnitALU} }

// thread states for the critical-section state machine.
const (
	stTryLock = iota
	stRead
	stWrite
	stUnlock
	stDone
)

// Run implements Workload.
func (w *Lock) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		var lock, counter uint64
		type thread struct {
			state int
			left  int
			local uint64 // value read inside the critical section
		}
		threads := make([]*thread, w.Threads)
		for i := range threads {
			threads[i] = &thread{state: stTryLock, left: w.Increments}
		}
		live := w.Threads
		inCritical := 0
		mutualExclusionViolated := false
		for live > 0 {
			th := threads[rng.Intn(w.Threads)]
			switch th.state {
			case stTryLock:
				if e.CAS(&lock, 0, 1) {
					// We believe we hold the lock. If the CAS was
					// dropped by the defect, so can someone else.
					inCritical++
					if inCritical > 1 {
						mutualExclusionViolated = true
					}
					th.state = stRead
				}
			case stRead:
				th.local = counter
				th.state = stWrite
			case stWrite:
				// Non-atomic read-modify-write: safe only under the lock.
				counter = e.Add64(th.local, 1)
				th.state = stUnlock
			case stUnlock:
				inCritical--
				lock = 0
				th.left--
				if th.left == 0 {
					th.state = stDone
					live--
				} else {
					th.state = stTryLock
				}
			case stDone:
				// Spurious wakeup of a finished thread; ignore.
			}
		}
		want := uint64(w.Threads * w.Increments)
		if counter != want {
			return fmt.Sprintf("lost updates: counter=%d want %d (exclusion violated: %v)",
				counter, want, mutualExclusionViolated)
		}
		if mutualExclusionViolated {
			// Updates happened to survive, but two threads were inside
			// the critical section — still a detected violation.
			return "mutual exclusion violated without lost update"
		}
		return ""
	})
}

// Mem is the memory-path workload: writes a recognizable pattern through
// the engine's store path, reads it back through the load path, and checks
// every word. Address-path defects silently smear state onto neighbouring
// words or trap; data-path defects corrupt values in flight.
type Mem struct {
	// Words is the memory size in 64-bit words.
	Words int
}

// NewMem returns a Mem workload over the given number of words.
func NewMem(words int) *Mem { return &Mem{Words: words} }

// Name implements Workload.
func (*Mem) Name() string { return "mem-pattern" }

// Units implements Workload.
func (*Mem) Units() []fault.Unit { return []fault.Unit{fault.UnitLSU} }

// memPattern is the expected value of word i for a given seed.
func memPattern(seed, i uint64) uint64 {
	x := seed ^ i*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	return x ^ x>>32
}

// Run implements Workload.
func (w *Mem) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		m := engine.NewMemory(w.Words)
		seed := rng.Uint64()
		for i := 0; i < w.Words; i++ {
			e.Store(m, uint64(i), memPattern(seed, uint64(i)))
		}
		for i := 0; i < w.Words; i++ {
			got := e.Load(m, uint64(i))
			if want := memPattern(seed, uint64(i)); got != want {
				return fmt.Sprintf("word %d: got %#x want %#x", i, got, want)
			}
		}
		return ""
	})
}
