package corpus

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Compress is the compression-library workload: an LZ77-style codec whose
// match search, hashing, and data movement all route through the engine.
// The self-check compresses on the core under test, compresses on a golden
// core, and compares both the streams and the decompressed output — the
// "check the results against expected results" discipline of §1.
type Compress struct {
	// Bytes is the input size per run.
	Bytes int
}

// NewCompress returns a Compress workload over the given input size.
func NewCompress(n int) *Compress { return &Compress{Bytes: n} }

// Name implements Workload.
func (*Compress) Name() string { return "lz-compress" }

// Units implements Workload.
func (*Compress) Units() []fault.Unit {
	return []fault.Unit{fault.UnitALU, fault.UnitMul, fault.UnitVec}
}

// LZ stream format:
//
//	0x00..0x7F: literal run of length N (1..127), followed by N bytes
//	0x80|N:     match of length N+minMatch (minMatch..minMatch+127),
//	            followed by a 2-byte little-endian backward offset (>= 1)
const (
	lzMinMatch = 4
	lzMaxMatch = lzMinMatch + 127
	lzMaxLit   = 127
	lzWindow   = 1 << 16
	lzHashBits = 12
)

// lzHash hashes the 4 bytes at src[i:] through the engine's multiplier.
func lzHash(e *engine.Engine, src []byte, i int) uint64 {
	w := uint64(src[i]) | uint64(src[i+1])<<8 | uint64(src[i+2])<<16 | uint64(src[i+3])<<24
	return e.Shr64(e.Mul64(w, 2654435761), 64-lzHashBits)
}

// LZCompress compresses src through the engine.
func LZCompress(e *engine.Engine, src []byte) []byte {
	var out []byte
	var table [1 << lzHashBits]int
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	flushLiterals := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > lzMaxLit {
				n = lzMaxLit
			}
			out = append(out, byte(n))
			pos := len(out)
			out = append(out, make([]byte, n)...)
			e.Copy(out[pos:], src[litStart:litStart+n])
			litStart += n
		}
	}
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(e, src, i)
		cand := table[h]
		table[h] = i
		if cand >= 0 && i-cand < lzWindow {
			// Verify and extend the match through the compare unit.
			n := 0
			max := len(src) - i
			if max > lzMaxMatch {
				max = lzMaxMatch
			}
			for n < max && e.Equal64(uint64(src[cand+n]), uint64(src[i+n])) {
				n++
			}
			if n >= lzMinMatch {
				flushLiterals(i)
				off := i - cand
				out = append(out, byte(0x80|(n-lzMinMatch)), byte(off), byte(off>>8))
				i += n
				litStart = i
				continue
			}
		}
		i++
	}
	flushLiterals(len(src))
	return out
}

// ErrCorrupt reports a malformed LZ stream.
var ErrCorrupt = errors.New("corpus: corrupt LZ stream")

// LZDecompress decompresses through the engine. A corrupted stream yields
// ErrCorrupt (the detected-wrong-answer case); a stream that decodes
// cleanly to wrong bytes is the silent case the caller must catch by
// comparison.
func LZDecompress(e *engine.Engine, comp []byte) ([]byte, error) {
	var out []byte
	i := 0
	for i < len(comp) {
		ctrl := comp[i]
		i++
		if ctrl&0x80 == 0 {
			n := int(ctrl)
			if n == 0 || i+n > len(comp) {
				return nil, ErrCorrupt
			}
			pos := len(out)
			out = append(out, make([]byte, n)...)
			e.Copy(out[pos:], comp[i:i+n])
			i += n
			continue
		}
		n := int(ctrl&0x7F) + lzMinMatch
		if i+2 > len(comp) {
			return nil, ErrCorrupt
		}
		off := int(comp[i]) | int(comp[i+1])<<8
		i += 2
		if off == 0 || off > len(out) {
			return nil, ErrCorrupt
		}
		// Overlapping copies must proceed byte by byte, via the copy path.
		for j := 0; j < n; j++ {
			var b [1]byte
			e.Copy(b[:], out[len(out)-off:len(out)-off+1])
			out = append(out, b[0])
		}
	}
	return out, nil
}

// compressible produces input with repeated runs so matches actually occur.
func compressible(rng *xrand.RNG, n int) []byte {
	words := [][]byte{
		[]byte("mercurial "), []byte("core "), []byte("silent "),
		[]byte("corrupt "), []byte("execution "), []byte("error "),
	}
	out := make([]byte, 0, n)
	for len(out) < n {
		if rng.Float64() < 0.2 {
			out = append(out, byte(rng.Uint64()))
		} else {
			out = append(out, words[rng.Intn(len(words))]...)
		}
	}
	return out[:n]
}

// Run implements Workload.
func (w *Compress) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		src := compressible(rng, w.Bytes)
		comp := LZCompress(e, src)
		golden := engine.New(fault.NewCore("golden", xrand.New(0)))
		goldenComp := LZCompress(golden, src)
		if !bytes.Equal(comp, goldenComp) {
			return fmt.Sprintf("compressed stream differs from golden (%d vs %d bytes)",
				len(comp), len(goldenComp))
		}
		dec, err := LZDecompress(e, comp)
		if err != nil {
			return fmt.Sprintf("decompress: %v", err)
		}
		if !bytes.Equal(dec, src) {
			return "roundtrip mismatch"
		}
		return ""
	})
}
