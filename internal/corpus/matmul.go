package corpus

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// MatMul is the math-library workload: an n×n uint64 matrix multiply whose
// multiplies and adds route through the engine, checked cell by cell
// against a native mirror.
type MatMul struct {
	// N is the matrix dimension.
	N int
}

// NewMatMul returns a MatMul workload for n×n matrices.
func NewMatMul(n int) *MatMul { return &MatMul{N: n} }

// Name implements Workload.
func (*MatMul) Name() string { return "matmul" }

// Units implements Workload.
func (*MatMul) Units() []fault.Unit { return []fault.Unit{fault.UnitALU, fault.UnitMul} }

// MulMatrices multiplies n×n row-major matrices a and b through the engine.
func MulMatrices(e *engine.Engine, a, b []uint64, n int) []uint64 {
	c := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint64
			for k := 0; k < n; k++ {
				acc = e.Add64(acc, e.Mul64(a[i*n+k], b[k*n+j]))
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// mulGolden is the native mirror of MulMatrices.
func mulGolden(a, b []uint64, n int) []uint64 {
	c := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc uint64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// Run implements Workload.
func (w *MatMul) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		n := w.N
		a := make([]uint64, n*n)
		b := make([]uint64, n*n)
		for i := range a {
			a[i] = rng.Uint64()
			b[i] = rng.Uint64()
		}
		got := MulMatrices(e, a, b, n)
		want := mulGolden(a, b, n)
		for i := range got {
			if got[i] != want[i] {
				return fmt.Sprintf("cell (%d,%d): got %#x want %#x", i/n, i%n, got[i], want[i])
			}
		}
		return ""
	})
}

// Sort is the sorting workload: an engine-routed quicksort whose compares
// go through the compare unit, verified natively for order and content.
// A corrupted compare silently misorders output — the control-flow CEE.
type Sort struct {
	// N is the slice length per run.
	N int
}

// NewSort returns a Sort workload over slices of length n.
func NewSort(n int) *Sort { return &Sort{N: n} }

// Name implements Workload.
func (*Sort) Name() string { return "sort" }

// Units implements Workload.
func (*Sort) Units() []fault.Unit { return []fault.Unit{fault.UnitALU} }

// SortSlice sorts xs in place using the engine's compare unit (insertion
// sort for small runs, quicksort otherwise).
func SortSlice(e *engine.Engine, xs []uint64) {
	if len(xs) < 16 {
		insertion(e, xs)
		return
	}
	// Median-of-three pivot through the compare unit.
	mid := len(xs) / 2
	hi := len(xs) - 1
	if e.Less64(xs[mid], xs[0]) {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if e.Less64(xs[hi], xs[0]) {
		xs[hi], xs[0] = xs[0], xs[hi]
	}
	if e.Less64(xs[hi], xs[mid]) {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	i, j := 0, hi
	for i <= j {
		for e.Less64(xs[i], pivot) {
			i++
		}
		for e.Less64(pivot, xs[j]) {
			j--
		}
		if i <= j {
			xs[i], xs[j] = xs[j], xs[i]
			i++
			j--
		}
	}
	SortSlice(e, xs[:j+1])
	SortSlice(e, xs[i:])
}

func insertion(e *engine.Engine, xs []uint64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && e.Less64(v, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// Run implements Workload.
func (w *Sort) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		xs := make([]uint64, w.N)
		var xorAll, sumAll uint64
		for i := range xs {
			xs[i] = rng.Uint64()
			xorAll ^= xs[i]
			sumAll += xs[i]
		}
		SortSlice(e, xs)
		for i := 1; i < len(xs); i++ {
			if xs[i-1] > xs[i] {
				return fmt.Sprintf("misordered at %d: %#x > %#x", i, xs[i-1], xs[i])
			}
		}
		// Content check: sort must be a permutation of the input.
		var xorGot, sumGot uint64
		for _, v := range xs {
			xorGot ^= v
			sumGot += v
		}
		if xorGot != xorAll || sumGot != sumAll {
			return "content changed: output is not a permutation of input"
		}
		return ""
	})
}
