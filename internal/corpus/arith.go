package corpus

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Arith is the integer-torture workload: random chains of add/sub/mul/div/
// logic/shift/compare operations mirrored natively, checked step by step so
// a single corrupted operation is localized.
type Arith struct {
	// Steps is the number of operations per run.
	Steps int
}

// NewArith returns an Arith workload with the given step count.
func NewArith(steps int) *Arith { return &Arith{Steps: steps} }

// Name implements Workload.
func (*Arith) Name() string { return "arith-torture" }

// Units implements Workload.
func (*Arith) Units() []fault.Unit {
	return []fault.Unit{fault.UnitALU, fault.UnitMul, fault.UnitDiv}
}

// Run implements Workload.
func (w *Arith) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		x := rng.Uint64() | 1
		want := x
		for i := 0; i < w.Steps; i++ {
			b := rng.Uint64()
			var got uint64
			switch op := rng.Intn(8); op {
			case 0:
				got, want = e.Add64(x, b), want+b
			case 1:
				got, want = e.Sub64(x, b), want-b
			case 2:
				got, want = e.Mul64(x, b), want*b
			case 3:
				d := b | 1 // avoid div-by-zero: that path is tested separately
				q, _ := e.Div64(x, d)
				got, want = q, want/d
			case 4:
				got, want = e.Xor64(x, b), want^b
			case 5:
				got, want = e.Or64(x, b), want|b
			case 6:
				k := uint(b & 63)
				got, want = e.Shl64(x, k), want<<k
			default:
				k := uint(b & 63)
				got, want = e.Shr64(x, k), want>>k
			}
			if got != want {
				return fmt.Sprintf("step %d: got %#x want %#x", i, got, want)
			}
			x = got
			// Interleave compares so the compare unit is exercised too.
			if e.Less64(x, b) != (x < b) {
				return fmt.Sprintf("step %d: corrupted compare", i)
			}
			want = x
		}
		return ""
	})
}

// Vec is the vector-unit workload: lane-wise adds, xors, and reductions
// checked against native results.
type Vec struct {
	// Lanes is the vector length per operation batch.
	Lanes int
}

// NewVec returns a Vec workload over the given number of lanes.
func NewVec(lanes int) *Vec { return &Vec{Lanes: lanes} }

// Name implements Workload.
func (*Vec) Name() string { return "vector-ops" }

// Units implements Workload.
func (*Vec) Units() []fault.Unit { return []fault.Unit{fault.UnitVec} }

// Run implements Workload.
func (w *Vec) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		a := make([]uint64, w.Lanes)
		b := make([]uint64, w.Lanes)
		for i := range a {
			a[i] = rng.Uint64()
			b[i] = rng.Uint64()
		}
		dst := make([]uint64, w.Lanes)
		e.VecAdd(dst, a, b)
		for i := range dst {
			if dst[i] != a[i]+b[i] {
				return fmt.Sprintf("vecadd lane %d: got %#x want %#x", i, dst[i], a[i]+b[i])
			}
		}
		e.VecXor(dst, a, b)
		for i := range dst {
			if dst[i] != a[i]^b[i] {
				return fmt.Sprintf("vecxor lane %d: got %#x want %#x", i, dst[i], a[i]^b[i])
			}
		}
		var want uint64
		for _, v := range a {
			want += v
		}
		if got := e.VecSum(a); got != want {
			return fmt.Sprintf("vecsum: got %#x want %#x", got, want)
		}
		return ""
	})
}

// Float is the floating-point workload: deterministic sums and products
// compared exactly against a native mirror executing the same op order.
type Float struct {
	// Steps is the number of FPU operations per run.
	Steps int
}

// NewFloat returns a Float workload with the given step count.
func NewFloat(steps int) *Float { return &Float{Steps: steps} }

// Name implements Workload.
func (*Float) Name() string { return "float-ops" }

// Units implements Workload.
func (*Float) Units() []fault.Unit { return []fault.Unit{fault.UnitFPU} }

// Run implements Workload.
func (w *Float) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		x := 1.0
		want := 1.0
		for i := 0; i < w.Steps; i++ {
			v := rng.NormFloat64()
			if i%2 == 0 {
				x = e.FAdd(x, v)
				want += v
			} else {
				m := 1 + v/1000 // keep magnitudes bounded
				x = e.FMul(x, m)
				want *= m
			}
			if x != want {
				return fmt.Sprintf("step %d: got %v want %v", i, x, want)
			}
		}
		return ""
	})
}

// Copy is the bulk-copy workload: copies a buffer through the engine and
// compares natively — the test that catches the §2 string-bitflip defect.
type Copy struct {
	// Bytes is the buffer size per run.
	Bytes int
}

// NewCopy returns a Copy workload over the given buffer size.
func NewCopy(n int) *Copy { return &Copy{Bytes: n} }

// Name implements Workload.
func (*Copy) Name() string { return "memcpy" }

// Units implements Workload.
func (*Copy) Units() []fault.Unit { return []fault.Unit{fault.UnitVec} }

// Run implements Workload.
func (w *Copy) Run(e *engine.Engine, rng *xrand.RNG) Result {
	return run(e, w.Name(), func() string {
		src := make([]byte, w.Bytes)
		rng.Bytes(src)
		dst := make([]byte, w.Bytes)
		e.Copy(dst, src)
		for i := range src {
			if dst[i] != src[i] {
				return fmt.Sprintf("byte %d: got %#x want %#x", i, dst[i], src[i])
			}
		}
		return ""
	})
}
