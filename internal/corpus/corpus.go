// Package corpus implements the screening test corpus of §2: "real-code
// snippets, interesting libraries (e.g., compression, hash, math,
// cryptography, copying, locking ...), and specially-written tests".
//
// Every workload executes its operations through an engine.Engine bound to
// the core under test, checks its own results against golden values
// computed natively, and reports a verdict. On a mercurial core a workload
// may report a wrong answer, a trap, or — the dangerous case — silently
// pass despite the defect (insufficient coverage, the paper's central
// screening challenge).
package corpus

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// Verdict classifies one workload run.
type Verdict int

const (
	// Pass means all self-checks succeeded.
	Pass Verdict = iota
	// WrongAnswer means a self-check caught a computation error — a
	// detected CEE.
	WrongAnswer
	// Trapped means the run raised a synchronous fault (exception,
	// segfault analogue) — fail-noisy rather than silent.
	Trapped
)

func (v Verdict) String() string {
	switch v {
	case Pass:
		return "pass"
	case WrongAnswer:
		return "wrong-answer"
	case Trapped:
		return "trap"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Result is the outcome of one workload run.
type Result struct {
	Workload string
	Verdict  Verdict
	// Detail describes the first detected mismatch, for triage logs.
	Detail string
	// Ops is the number of engine operations the run consumed.
	Ops uint64
}

// Workload is one self-checking test from the corpus.
type Workload interface {
	// Name is the stable identifier used in reports.
	Name() string
	// Units lists the execution units the workload meaningfully
	// exercises; the screener uses this for coverage accounting.
	Units() []fault.Unit
	// Run executes the workload on e using rng for input generation and
	// returns a verdict. Implementations must be deterministic given
	// (engine state, rng state).
	Run(e *engine.Engine, rng *xrand.RNG) Result
}

// run wraps the common bookkeeping: trap detection, crash containment, and
// op accounting. check runs the workload body and returns a mismatch
// description or "". A panic inside the body — e.g. a corrupted compare
// driving an index out of bounds — is contained and reported as Trapped,
// mirroring §2's observation that defective cores produce both wrong
// results and crashes.
func run(e *engine.Engine, name string, check func() string) Result {
	e.ClearTrap()
	before := e.Core().TotalOps()
	detail, crashed := runContained(check)
	ops := e.Core().TotalOps() - before
	if crashed {
		return Result{Workload: name, Verdict: Trapped, Detail: detail, Ops: ops}
	}
	if tr := e.Trapped(); tr != nil {
		return Result{Workload: name, Verdict: Trapped, Detail: tr.Error(), Ops: ops}
	}
	if detail != "" {
		return Result{Workload: name, Verdict: WrongAnswer, Detail: detail, Ops: ops}
	}
	return Result{Workload: name, Verdict: Pass, Ops: ops}
}

func runContained(check func() string) (detail string, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			detail = fmt.Sprintf("crash: %v", r)
			crashed = true
		}
	}()
	return check(), false
}

// All returns a fresh instance of every corpus workload at default sizes.
// The order is stable.
func All() []Workload {
	return []Workload{
		NewArith(4096),
		NewHash(2048),
		NewCRC(2048),
		NewCompress(2048),
		NewCryptoRoundtrip(256),
		NewCryptoKnownAnswer(256),
		NewMatMul(12),
		NewSort(512),
		NewLock(8, 64),
		NewAtomic(256),
		NewMem(1024),
		NewVec(1024),
		NewFloat(2048),
		NewCopy(4096),
	}
}

// ByName returns the workload with the given name from All.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("corpus: unknown workload %q", name)
}

// Names returns the names of all workloads, in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name()
	}
	return names
}
