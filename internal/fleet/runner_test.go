package fleet

import (
	"reflect"
	"runtime"
	"testing"
)

// TestRunnerDeterministicAcrossParallelism is the tentpole's core
// guarantee: the whole daily telemetry series and the triage ledger are
// bit-identical whether a day is simulated serially or sharded across
// workers.
func TestRunnerDeterministicAcrossParallelism(t *testing.T) {
	cfg := testConfig()
	cfg.Machines = 200
	const days = 40
	type outcome struct {
		series []DayStats
		triage TriageStats
	}
	run := func(parallelism int) outcome {
		r, err := NewRunner(cfg, WithParallelism(parallelism))
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		return outcome{series: r.Run(days), triage: r.Fleet().Triage}
	}
	serial := run(1)
	var quarantines int
	for _, d := range serial.series {
		quarantines += d.NewQuarantines
	}
	if quarantines == 0 {
		t.Fatal("serial run quarantined nothing; determinism check would be weak")
	}
	for _, p := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(p)
		for i := range serial.series {
			if !reflect.DeepEqual(serial.series[i], got.series[i]) {
				t.Fatalf("parallelism %d: day %d diverged\nserial: %+v\ngot:    %+v",
					p, i, serial.series[i], got.series[i])
			}
		}
		if serial.triage != got.triage {
			t.Fatalf("parallelism %d: triage diverged: %+v vs %+v", p, serial.triage, got.triage)
		}
	}
}

func TestRunnerOptionValidation(t *testing.T) {
	cfg := testConfig()
	if _, err := NewRunner(cfg, WithParallelism(-1)); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	if _, err := NewRunner(cfg, WithObserver(nil)); err == nil {
		t.Fatal("nil observer accepted")
	}
	bad := cfg
	bad.Machines = 0
	if _, err := NewRunner(bad); err == nil {
		t.Fatal("zero machines accepted")
	}
}

func TestRunnerObserverSeesEveryDay(t *testing.T) {
	cfg := testConfig()
	cfg.Machines = 50
	var days []int
	r, err := NewRunner(cfg, WithObserver(func(d DayStats) { days = append(days, d.Day) }))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(5)
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(days, want) {
		t.Fatalf("observer saw %v, want %v", days, want)
	}
}

func TestDefaultParallelism(t *testing.T) {
	defer SetDefaultParallelism(0)
	if got := DefaultParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("unset default = %d, want GOMAXPROCS", got)
	}
	SetDefaultParallelism(3)
	if got := DefaultParallelism(); got != 3 {
		t.Fatalf("default = %d, want 3", got)
	}
	if f := New(testConfig()); f.parallelism != 3 {
		t.Fatalf("New picked up %d, want 3", f.parallelism)
	}
	SetDefaultParallelism(-5) // negative resets
	if got := DefaultParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset default = %d, want GOMAXPROCS", got)
	}
}
