package fleet

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/quarantine"
	"repro/internal/sched"
	"repro/internal/screen"
)

// testConfig returns a small, defect-dense fleet that exercises every
// mechanism quickly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Machines = 400
	cfg.CoresPerMachine = 16
	cfg.DefectsPerMachine = 0.05 // dense for test speed
	cfg.Seed = 7
	cfg.ConfessionConfig = screen.NewConfig(screen.WithPasses(60),
		screen.WithSweep(2, 1, 2), screen.WithMaxOps(15_000_000))
	return cfg
}

func TestPopulationIncidence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 5000
	cfg.CoresPerMachine = 8
	f := New(cfg)
	// "A few mercurial cores per several thousand machines": expected
	// 0.002 * 5000 = 10 defective cores.
	n := len(f.Defects())
	if n < 2 || n > 30 {
		t.Fatalf("defective cores = %d, want ~10", n)
	}
	// Typically one defective core per affected machine (§2).
	byMachine := map[string]int{}
	for _, d := range f.Defects() {
		byMachine[d.Machine]++
	}
	multi := 0
	for _, c := range byMachine {
		if c > 1 {
			multi++
		}
	}
	if multi > n/3 {
		t.Fatalf("too many multi-defect machines: %d of %d", multi, len(byMachine))
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := New(testConfig())
	b := New(testConfig())
	if len(a.Defects()) != len(b.Defects()) {
		t.Fatal("population not deterministic")
	}
	for i := range a.Defects() {
		da, db := a.Defects()[i], b.Defects()[i]
		if da.Machine != db.Machine || da.Core != db.Core ||
			da.Site.Defects[0].Class != db.Site.Defects[0].Class {
			t.Fatalf("defect %d differs", i)
		}
	}
}

func TestRunProducesTelemetry(t *testing.T) {
	f := New(testConfig())
	days := f.Run(30)
	if len(days) != 30 {
		t.Fatalf("days = %d", len(days))
	}
	var corruptions, auto int64
	for _, d := range days {
		corruptions += d.Corruptions
		auto += int64(d.AutoReports)
	}
	if corruptions == 0 {
		t.Fatal("no corruptions in 30 days with dense defects")
	}
	if auto == 0 {
		t.Fatal("no automated reports")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := New(testConfig()).Run(15)
	b := New(testConfig()).Run(15)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("day %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOutcomeSplitConserves(t *testing.T) {
	f := New(testConfig())
	days := f.Run(20)
	for _, d := range days {
		var sum int64
		for _, v := range d.ByOutcome {
			sum += v
		}
		if sum != d.Corruptions {
			t.Fatalf("day %d: outcomes %v sum %d != corruptions %d",
				d.Day, d.ByOutcome, sum, d.Corruptions)
		}
	}
}

func TestSilentFractionDominates(t *testing.T) {
	// With the default probabilities, ~45% of corruptions are never
	// detected — the paper's central worry.
	f := New(testConfig())
	days := f.Run(30)
	var silent, total int64
	for _, d := range days {
		silent += d.ByOutcome[OutcomeSilent]
		total += d.Corruptions
	}
	if total == 0 {
		t.Skip("no corruptions at this seed")
	}
	frac := float64(silent) / float64(total)
	if frac < 0.3 || frac > 0.6 {
		t.Fatalf("silent fraction = %v, want ~0.45", frac)
	}
}

func TestQuarantineIsMostlyTruePositive(t *testing.T) {
	f := New(testConfig())
	f.Run(60)
	recs := f.Manager().Records()
	if len(recs) == 0 {
		t.Fatal("nothing quarantined in 60 days with dense defects")
	}
	truth := map[sched.CoreRef]bool{}
	for _, d := range f.Defects() {
		truth[sched.CoreRef{Machine: d.Machine, Core: d.Core}] = true
	}
	tp := 0
	for _, r := range recs {
		if truth[r.Ref] {
			tp++
		}
	}
	if tp*2 < len(recs) {
		t.Fatalf("true positives %d of %d quarantines", tp, len(recs))
	}
	// With confession required, false positives should be rare.
	if fp := len(recs) - tp; fp > len(recs)/4 {
		t.Fatalf("false positives %d of %d", fp, len(recs))
	}
}

func TestQuarantineStopsSignals(t *testing.T) {
	cfg := testConfig()
	f := New(cfg)
	days := f.Run(90)
	// Once hot defects are quarantined, active defects should shrink.
	if days[89].ActiveDefects >= days[0].ActiveDefects && days[0].ActiveDefects > 0 {
		// Aging can activate latent defects, so only require that the
		// quarantine machinery engaged at all.
		total := 0
		for _, d := range days {
			total += d.NewQuarantines
		}
		if total == 0 {
			t.Fatal("no quarantines despite persistent active defects")
		}
	}
}

func TestQuarantineDayRecorded(t *testing.T) {
	f := New(testConfig())
	f.Run(60)
	for _, r := range f.Manager().Records() {
		if _, ok := f.QuarantineDay(r.Ref); !ok {
			t.Fatalf("no quarantine day for %v", r.Ref)
		}
	}
}

func TestFig1AutoRateRises(t *testing.T) {
	// Fig. 1's headline shape: the automated detector's reported rate
	// gradually increases (corpus growth + aging onset), while the
	// user-reported rate stays comparatively flat.
	cfg := testConfig()
	cfg.Machines = 800
	cfg.DefectsPerMachine = 0.03
	// Disable quarantine so the series is not truncated by isolation
	// (Fig. 1 reports raw incident rates).
	cfg.Policy = quarantine.Policy{Mode: quarantine.CoreRemoval, MinScore: math.Inf(1)}
	f := New(cfg)
	days := f.Run(365)
	rates := Normalize(WeeklyRates(days, cfg.Machines))
	if len(rates) < 50 {
		t.Fatalf("weeks = %d", len(rates))
	}
	autoSlope := TrendSlope(rates, func(r WeeklyRate) float64 { return r.Auto })
	if autoSlope <= 0 {
		t.Fatalf("auto-report slope = %v, want > 0", autoSlope)
	}
	// First-quarter vs last-quarter comparison, more robust than slope.
	q := len(rates) / 4
	var early, late float64
	for _, r := range rates[:q] {
		early += r.Auto
	}
	for _, r := range rates[len(rates)-q:] {
		late += r.Auto
	}
	if late <= early {
		t.Fatalf("auto rate did not rise: early=%v late=%v", early, late)
	}
}

func TestTriageConfirmationRoughlyHalf(t *testing.T) {
	// §6: "roughly half of these human-identified suspects are actually
	// proven, on deeper investigation, to be mercurial cores".
	cfg := testConfig()
	cfg.Machines = 800
	cfg.DefectsPerMachine = 0.03
	// Isolate the human channel: with automated quarantine active, hot
	// cores are isolated before humans ever get to investigate them.
	cfg.Policy = quarantine.Policy{Mode: quarantine.CoreRemoval, MinScore: math.Inf(1)}
	f := New(cfg)
	f.Run(120)
	tr := f.Triage
	if tr.Investigated < 5 {
		t.Skipf("only %d investigations; not enough signal", tr.Investigated)
	}
	rate := float64(tr.Confirmed) / float64(tr.Investigated)
	if rate < 0.15 || rate > 0.9 {
		t.Fatalf("confirmation rate = %v (%+v), want roughly half", rate, tr)
	}
	// The unconfirmed half must be a mix of false accusations and
	// limited reproducibility, as the paper describes.
	if tr.Confirmed+tr.FalseAccusations+tr.RealNotReproduced != tr.Investigated {
		t.Fatalf("triage ledger inconsistent: %+v", tr)
	}
}

func TestScreenCorpusGrows(t *testing.T) {
	cfg := testConfig()
	cfg.InitialCorpus = 3
	cfg.CorpusGrowEveryDays = 10
	f := New(cfg)
	if got := f.screenCorpusSize(0); got != 3 {
		t.Fatalf("day 0 corpus = %d", got)
	}
	if got := f.screenCorpusSize(25); got != 5 {
		t.Fatalf("day 25 corpus = %d", got)
	}
	if got := f.screenCorpusSize(100000); got != len(f.allWork) {
		t.Fatalf("corpus should cap at %d, got %d", len(f.allWork), got)
	}
}

func TestScreenCorpusGrowthDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.InitialCorpus = 0
	cfg.CorpusGrowEveryDays = 0
	f := New(cfg)
	if got := f.screenCorpusSize(50); got != len(f.allWork) {
		t.Fatalf("corpus = %d", got)
	}
}

func TestWeeklyRatesAggregation(t *testing.T) {
	days := make([]DayStats, 14)
	for i := range days {
		days[i].UserReports = 1
		days[i].AutoReports = 2
	}
	rates := WeeklyRates(days, 10)
	if len(rates) != 2 {
		t.Fatalf("weeks = %d", len(rates))
	}
	if rates[0].User != 0.7 || rates[0].Auto != 1.4 {
		t.Fatalf("week 0 = %+v", rates[0])
	}
	if WeeklyRates(days, 0) != nil {
		t.Fatal("zero machines should return nil")
	}
}

func TestNormalize(t *testing.T) {
	rates := []WeeklyRate{{0, 0, 0}, {1, 1, 2}, {2, 2, 4}}
	n := Normalize(rates)
	if n[1].Auto != 1 || n[2].Auto != 2 || n[1].User != 0.5 {
		t.Fatalf("normalized = %+v", n)
	}
	// All-zero series passes through.
	zero := []WeeklyRate{{0, 0, 0}}
	if out := Normalize(zero); out[0] != zero[0] {
		t.Fatal("zero series changed")
	}
}

func TestTrendSlope(t *testing.T) {
	rates := []WeeklyRate{{0, 0, 1}, {1, 0, 2}, {2, 0, 3}}
	s := TrendSlope(rates, func(r WeeklyRate) float64 { return r.Auto })
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("slope = %v", s)
	}
	if TrendSlope(rates[:1], func(r WeeklyRate) float64 { return r.Auto }) != 0 {
		t.Fatal("single-point slope should be 0")
	}
}

func TestSplitOutcomesSumsAndProbabilities(t *testing.T) {
	f := New(testConfig())
	rng := f.rng.Fork(1)
	var totals [numOutcomes]int64
	const trials = 500
	const n = 100
	for i := 0; i < trials; i++ {
		out := f.splitOutcomes(n, rng)
		var sum int64
		for o, v := range out {
			if v < 0 {
				t.Fatalf("negative outcome count %v", out)
			}
			totals[o] += v
			sum += v
		}
		if sum != n {
			t.Fatalf("split sum %d != %d", sum, n)
		}
	}
	total := float64(trials * n)
	cfg := f.cfg
	wants := map[Outcome]float64{
		OutcomeImmediate: cfg.PImmediateDetect,
		OutcomeCrash:     cfg.PCrash,
		OutcomeMCE:       cfg.PMCE,
		OutcomeLate:      cfg.PLateDetect,
	}
	for o, want := range wants {
		got := float64(totals[o]) / total
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("outcome %v rate %v want %v", o, got, want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeSilent.String() != "silent" || OutcomeCrash.String() != "crash" {
		t.Fatal("outcome names wrong")
	}
}

func TestMachineByID(t *testing.T) {
	f := New(testConfig())
	if m := f.machineByID("m00037"); m.ID != "m00037" {
		t.Fatalf("machineByID = %s", m.ID)
	}
}

func TestPatternFraction(t *testing.T) {
	check := func(mask uint64, want float64) {
		d := fault.Defect{PatternMask: mask}
		if got := patternFraction(&d); got != want {
			t.Fatalf("mask %#x: %v want %v", mask, got, want)
		}
	}
	check(0, 1)
	check(0x7, 1.0/8)
	check(0xF0, 1.0/16)
}

func BenchmarkFleetDay(b *testing.B) {
	cfg := testConfig()
	f := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step()
	}
}

func TestSKUPopulationShapes(t *testing.T) {
	cfg := testConfig()
	cfg.Machines = 2000
	cfg.SKUs = []SKU{
		{Name: "quiet", Fraction: 0.5, DefectMultiplier: 0.2},
		{Name: "noisy", Fraction: 0.3, DefectMultiplier: 3},
		{Name: "aged", Fraction: 0.2, DefectMultiplier: 1, PreAgeDays: 1000},
	}
	f := New(cfg)
	counts := map[string]int{}
	for _, id := range f.Cluster().Machines() {
		counts[f.MachineSKU(id)]++
	}
	if counts["quiet"] < 800 || counts["noisy"] < 400 || counts["aged"] < 250 {
		t.Fatalf("SKU assignment off: %v", counts)
	}
	defects := map[string]int{}
	for _, d := range f.Defects() {
		defects[f.MachineSKU(d.Machine)]++
	}
	// noisy has 15x the per-machine defect rate of quiet but only 0.6x
	// the machines: it must dominate.
	if defects["noisy"] <= defects["quiet"] {
		t.Fatalf("defect density not SKU-scaled: %v", defects)
	}
}

func TestSKUPreAgingActivatesLatentDefects(t *testing.T) {
	base := testConfig()
	base.Machines = 3000
	fresh := base
	fresh.SKUs = []SKU{{Name: "fresh", Fraction: 1, DefectMultiplier: 1}}
	old := base
	old.SKUs = []SKU{{Name: "old", Fraction: 1, DefectMultiplier: 1, PreAgeDays: 2000}}

	countActive := func(cfg Config) (active, total int) {
		f := New(cfg)
		for _, d := range f.Defects() {
			total++
			if d.FirstActive == 0 {
				active++
			}
		}
		return active, total
	}
	freshActive, freshTotal := countActive(fresh)
	oldActive, oldTotal := countActive(old)
	if freshTotal == 0 || oldTotal == 0 {
		t.Skip("no defects sampled")
	}
	freshFrac := float64(freshActive) / float64(freshTotal)
	oldFrac := float64(oldActive) / float64(oldTotal)
	if oldFrac <= freshFrac {
		t.Fatalf("pre-aging did not activate latent defects: fresh=%.2f old=%.2f",
			freshFrac, oldFrac)
	}
}

func TestDefaultSKUBackwardCompatible(t *testing.T) {
	// A nil SKUs config must behave exactly like the pre-SKU simulator.
	a := New(testConfig()).Run(10)
	b := New(testConfig()).Run(10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nil-SKU runs diverge")
		}
	}
	f := New(testConfig())
	if f.MachineSKU("m00000") != "default" {
		t.Fatalf("default SKU = %q", f.MachineSKU("m00000"))
	}
}

func TestRepairRestoresCapacityAndRetiresDefects(t *testing.T) {
	cfg := testConfig()
	cfg.RepairAfterDays = 7
	f := New(cfg)
	days := f.Run(90)
	totalQuar, totalRepair := 0, 0
	for _, d := range days {
		totalQuar += d.NewQuarantines
		totalRepair += d.RepairsDone
	}
	if totalQuar == 0 {
		t.Fatal("nothing quarantined; repair path unexercised")
	}
	if totalRepair == 0 {
		t.Fatal("no repairs completed despite quarantines and RepairAfterDays=7")
	}
	if f.Repairs != totalRepair {
		t.Fatalf("repair counters disagree: %d vs %d", f.Repairs, totalRepair)
	}
	// Repaired sites must be marked and their silicon removed.
	repaired := 0
	for _, d := range f.Defects() {
		if d.Repaired {
			repaired++
			if f.machineByID(d.Machine).Defective[d.Core] != nil {
				t.Fatal("repaired site still has defective silicon")
			}
		}
	}
	if repaired == 0 {
		t.Fatal("no sites marked repaired")
	}
	// Capacity: repaired cores are schedulable again. All quarantines
	// older than RepairAfterDays must be back; only recent ones offline.
	cap := f.Cluster().Capacity()
	if cap.Offline+cap.DrainedCores > totalQuar-totalRepair {
		t.Fatalf("capacity not restored: offline=%d drained=%d repairs=%d quarantines=%d",
			cap.Offline, cap.DrainedCores, totalRepair, totalQuar)
	}
}

func TestRepairDisabledByDefault(t *testing.T) {
	f := New(testConfig())
	days := f.Run(60)
	for _, d := range days {
		if d.RepairsDone != 0 {
			t.Fatal("repairs happened with RepairAfterDays=0")
		}
	}
}
