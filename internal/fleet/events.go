package fleet

// Mid-run event hooks for the scenario runner (internal/scenario): defect
// injection, maintenance drains, fleet-wide operating-point changes, and
// switching the optional workload phases on and off between days.
//
// Every hook mutates fleet state and MUST be called from the goroutine
// that owns the fleet, between Step calls — never concurrently with one.
// Hooks that consume randomness fork the master stream serially, so a
// fixed event timeline keeps the bit-identical-at-any-parallelism
// determinism contract: worker count shards days, never events.

import (
	"fmt"
	"strconv"

	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Day returns the next day Step will simulate (0 before the first Step).
func (f *Fleet) Day() int { return f.day }

// OperatingPoint returns the fleet-wide operating point.
func (f *Fleet) OperatingPoint() fault.OperatingPoint { return f.point }

// lookupMachine resolves a dense machine id ("m00017") with validation —
// unlike the hot-path machineByID, malformed or out-of-range ids return
// an error instead of corrupting the index arithmetic.
func (f *Fleet) lookupMachine(id string) (*Machine, error) {
	if len(id) < 2 || id[0] != 'm' {
		return nil, fmt.Errorf("fleet: machine id %q must look like m00017", id)
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 || n >= len(f.machines) {
		return nil, fmt.Errorf("fleet: no machine %q (fleet has %d)", id, len(f.machines))
	}
	return f.machines[n], nil
}

// InjectDefect materializes defect d on (machine, core) at the current
// simulated day — silicon that was healthy until now starts carrying a
// flaw, the recidivist/aging shapes of §2. d.Onset is interpreted as a
// delay from the injection instant (not an install age): zero means the
// defect can fire today. The core must currently be healthy; injecting
// over an existing defect is an error (repair it first — after
// retireDefect the core is healthy again and injectable).
func (f *Fleet) InjectDefect(machineID string, core int, d fault.Defect) error {
	m, err := f.lookupMachine(machineID)
	if err != nil {
		return err
	}
	if core < 0 || core >= f.cfg.CoresPerMachine {
		return fmt.Errorf("fleet: core %d out of range [0, %d)", core, f.cfg.CoresPerMachine)
	}
	if _, dup := m.Defective[core]; dup {
		return fmt.Errorf("fleet: core %s/%d is already defective", machineID, core)
	}
	now := simtime.Time(f.day) * simtime.Day
	delay := d.Onset
	// Rebase onset from injection-relative to the install-age clock the
	// rate model runs on.
	d.Onset = (now - m.install) + delay
	if d.ID == "" {
		d.ID = fmt.Sprintf("INJ-%s-c%02d-d%04d", machineID, core, f.day)
	}
	if d.Class == "" {
		d.Class = "injected"
	}
	coreName := fmt.Sprintf("%s/c%02d", machineID, core)
	fc := fault.NewCore(coreName, f.rng.ForkString("inject:"+coreName), d)
	fc.Point = f.point
	m.Defective[core] = fc
	site := &DefectSite{
		Machine: machineID, Core: core, Site: fc,
		FirstActive: now + delay,
	}
	f.defects = append(f.defects, site)
	f.siteMachines = append(f.siteMachines, m)
	// The ground-truth census event. Day 0 is traced by traceDefects'
	// population sweep, which runs after day-0 events apply.
	if f.trace != nil && f.day > 0 {
		f.trace.Emit(obs.TraceEvent{
			Day: f.day, Machine: machineID, Core: core,
			Event:          obs.EventDefectPresent,
			FirstActiveSec: float64(site.FirstActive),
		})
	}
	return nil
}

// InjectDefectClass samples a defect from the named catalog class and
// injects it, with the class's sampled onset treated as a delay from
// injection (late-onset classes stay latent for years of simulated time).
func (f *Fleet) InjectDefectClass(machineID string, core int, class string) error {
	spec, err := fault.ClassByName(class)
	if err != nil {
		return err
	}
	coreName := fmt.Sprintf("%s/c%02d", machineID, core)
	rng := f.rng.ForkString("inject-class:" + coreName)
	d := spec.Sample(fmt.Sprintf("INJ-%s-d%04d", coreName, f.day), rng)
	d.ID = "" // InjectDefect assigns the canonical id
	return f.InjectDefect(machineID, core, d)
}

// DrainMachine takes a machine out of service for maintenance: its tasks
// are evicted, its cores stop running workload and screening, and its
// defects stop corrupting. Accumulated suspect evidence is kept — a
// maintenance drain is not an exoneration. Draining a drained machine is
// a no-op.
func (f *Fleet) DrainMachine(id string) error {
	m, err := f.lookupMachine(id)
	if err != nil {
		return err
	}
	if m.drained {
		return nil
	}
	// Pool budget first: a maintenance drain that would breach the
	// machine's pool floor is deferred — the durable intent is queued and
	// the machine keeps serving until repaired capacity readmits it.
	if f.life != nil && f.life.DrainWouldDefer(id) {
		return f.life.DeferDrain(id, f.day, "maintenance", "operator", 0)
	}
	if _, err := f.cluster.Drain(id); err != nil {
		return err
	}
	m.drained = true
	// Record the maintenance drain in the lifecycle ledger when the
	// control plane is on. Best-effort: a ledger oddity (say, the machine
	// was already removed) must not undo the cluster drain above.
	if f.life != nil {
		if st, _ := f.life.Drain(id, f.day, "maintenance", "operator"); st == lifecycle.Draining {
			f.life.MarkDrained(id, f.day, "operator")
		}
	}
	return nil
}

// UndrainMachine returns a drained machine to service with its silicon —
// including any defects — intact. Undraining an in-service machine is a
// no-op.
func (f *Fleet) UndrainMachine(id string) error {
	m, err := f.lookupMachine(id)
	if err != nil {
		return err
	}
	if !m.drained {
		return nil
	}
	if err := f.cluster.Undrain(id); err != nil {
		return err
	}
	m.drained = false
	if f.life != nil {
		// Reintroduce is an idempotent no-op for ledger-healthy machines;
		// errors (e.g. a removed machine) are deliberately not fatal here —
		// the cluster state above is authoritative for the simulator.
		f.life.Reintroduce(id, f.day, "maintenance complete", "operator")
	}
	return nil
}

// CordonMachine stops new placements on the machine while its running
// tasks continue — the operator's light-touch isolation verb (contrast
// DrainMachine, which evicts). With the control plane enabled, the
// cordon is recorded in the lifecycle ledger, where a machine past its
// repair budget escalates to permanent removal. Cordoning a cordoned
// machine is a no-op.
func (f *Fleet) CordonMachine(id string) error {
	if _, err := f.lookupMachine(id); err != nil {
		return err
	}
	// Pool budget first, as in DrainMachine: a cordon also removes the
	// machine from its pool's serving set.
	if f.life != nil && f.life.DrainWouldDefer(id) {
		return f.life.DeferCordon(id, f.day, "operator cordon", "operator", 0)
	}
	if err := f.cluster.Cordon(id); err != nil {
		return err
	}
	if f.life != nil {
		if _, err := f.life.Cordon(id, f.day, "operator cordon", "operator"); err != nil {
			return err
		}
	}
	return nil
}

// ReleaseMachine lifts a cordon: the machine schedules new work again
// and, with the control plane enabled, returns to healthy in the
// lifecycle ledger. Releasing an uncordoned machine is a no-op.
func (f *Fleet) ReleaseMachine(id string) error {
	if _, err := f.lookupMachine(id); err != nil {
		return err
	}
	if err := f.cluster.Uncordon(id); err != nil {
		return err
	}
	if f.life != nil {
		if _, err := f.life.Reintroduce(id, f.day, "operator release", "operator"); err != nil {
			return err
		}
	}
	return nil
}

// SetOperatingPoint moves the whole fleet to a new (f, V, T) point — the
// §5 experiment of running suspect populations at corners. Every
// materialized core (and every core injected later) computes its
// activation rates at the new point from the next day on.
func (f *Fleet) SetOperatingPoint(pt fault.OperatingPoint) {
	f.point = pt
	for _, site := range f.defects {
		if site.Repaired {
			continue
		}
		site.Site.Point = pt
	}
}

// StartKVLoad switches the tolerant key-value workload phase on mid-run.
// The stores fork their streams from the master RNG at the call, so a
// given start day yields the same stores at any parallelism. Starting
// while a KV load is active is an error; stop the old one first.
func (f *Fleet) StartKVLoad(cfg KVDBConfig) error {
	if len(f.kvStores) > 0 {
		return fmt.Errorf("fleet: kv load already running")
	}
	if cfg.Stores <= 0 {
		return fmt.Errorf("fleet: kv load needs stores > 0")
	}
	f.cfg.KVDB = cfg
	f.buildKVStores()
	return nil
}

// StopKVLoad tears the KV workload phase down; stopping when none is
// running is a no-op.
func (f *Fleet) StopKVLoad() {
	f.kvStores = nil
	f.kvSignals = nil
	f.kvAvoid = nil
	f.cfg.KVDB = KVDBConfig{}
}

// StartTaskRun switches the checkpoint/retry batch workload phase on
// mid-run. Starting while one is active is an error.
func (f *Fleet) StartTaskRun(cfg TaskRunConfig) error {
	if f.taskSup != nil {
		return fmt.Errorf("fleet: taskrun workload already running")
	}
	if cfg.Tasks <= 0 {
		return fmt.Errorf("fleet: taskrun workload needs tasks > 0")
	}
	f.cfg.TaskRun = cfg
	f.buildTaskRun()
	return nil
}

// StopTaskRun tears the batch workload phase down; stopping when none is
// running is a no-op.
func (f *Fleet) StopTaskRun() {
	f.taskSup = nil
	f.trSignals = nil
	f.cfg.TaskRun = TaskRunConfig{}
}
