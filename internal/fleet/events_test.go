package fleet

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/quarantine"
	"repro/internal/screen"
	"repro/internal/simtime"
)

// eventTestConfig is a small clean fleet (no background defects) so
// every observation traces back to the event under test.
func eventTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Machines = 50
	cfg.CoresPerMachine = 8
	cfg.DefectsPerMachine = 0
	cfg.Seed = 3
	cfg.ConfessionConfig = screen.NewConfig(screen.WithPasses(20),
		screen.WithSweep(2, 1, 2), screen.WithMaxOps(4_000_000))
	return cfg
}

func hotDefect(bit uint) fault.Defect {
	return fault.Defect{
		Unit:     fault.UnitALU,
		Kind:     fault.CorruptBitFlip,
		BitPos:   bit,
		BaseRate: 1e-6,
	}
}

func TestInjectDefectValidation(t *testing.T) {
	f := New(eventTestConfig())
	if err := f.InjectDefect("nope", 0, hotDefect(1)); err == nil {
		t.Error("bad machine id accepted")
	}
	if err := f.InjectDefect("m00099", 0, hotDefect(1)); err == nil {
		t.Error("out-of-range machine accepted")
	}
	if err := f.InjectDefect("m00001", 99, hotDefect(1)); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := f.InjectDefect("m00001", 2, hotDefect(1)); err != nil {
		t.Fatalf("valid injection rejected: %v", err)
	}
	if err := f.InjectDefect("m00001", 2, hotDefect(2)); err == nil {
		t.Error("double injection on one core accepted")
	}
	if n := len(f.Defects()); n != 1 {
		t.Errorf("defect sites = %d, want 1", n)
	}
}

func TestInjectedDefectCorruptsAndOnsetDelays(t *testing.T) {
	f := New(eventTestConfig())
	if err := f.InjectDefect("m00004", 1, hotDefect(7)); err != nil {
		t.Fatal(err)
	}
	late := hotDefect(9)
	late.Onset = 30 * simtime.Day // delay from injection, not install age
	if err := f.InjectDefect("m00005", 2, late); err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for day := 0; day < 10; day++ {
		total += f.Step().Corruptions
	}
	if total == 0 {
		t.Error("hot injected defect produced no corruptions in 10 days")
	}
	sites := f.Defects()
	if sites[1].FirstActive != 30*simtime.Day {
		t.Errorf("delayed site FirstActive = %v, want 30 days", sites[1].FirstActive)
	}
}

func TestDrainSuspendsAndUndrainResumes(t *testing.T) {
	f := New(eventTestConfig())
	if err := f.InjectDefect("m00006", 3, hotDefect(5)); err != nil {
		t.Fatal(err)
	}
	if err := f.DrainMachine("m00006"); err != nil {
		t.Fatal(err)
	}
	if err := f.DrainMachine("m00006"); err != nil {
		t.Fatalf("drain must be idempotent: %v", err)
	}
	drained := int64(0)
	for day := 0; day < 8; day++ {
		drained += f.Step().Corruptions
	}
	if drained != 0 {
		t.Errorf("drained machine corrupted %d results", drained)
	}
	if err := f.UndrainMachine("m00006"); err != nil {
		t.Fatal(err)
	}
	resumed := int64(0)
	for day := 0; day < 8; day++ {
		resumed += f.Step().Corruptions
	}
	if resumed == 0 {
		t.Error("undrained machine never resumed corrupting")
	}
}

func TestSetOperatingPointChangesRates(t *testing.T) {
	f := New(eventTestConfig())
	cold := fault.Defect{
		Unit:     fault.UnitALU,
		Kind:     fault.CorruptBitFlip,
		BitPos:   3,
		BaseRate: 1e-9,
		Sens:     fault.Sensitivity{Volt: 12, Temp: 1.5},
	}
	if err := f.InjectDefect("m00008", 4, cold); err != nil {
		t.Fatal(err)
	}
	nominal := int64(0)
	for day := 0; day < 10; day++ {
		nominal += f.Step().Corruptions
	}
	pt := f.OperatingPoint()
	pt.VoltageV = 0.85
	pt.TempC = 90
	f.SetOperatingPoint(pt)
	corner := int64(0)
	for day := 0; day < 10; day++ {
		corner += f.Step().Corruptions
	}
	if corner <= nominal {
		t.Errorf("corner corruptions (%d) not above nominal (%d)", corner, nominal)
	}
}

// TestRepairedSiteStopsCorrupting is the regression test for the ghost
// corruption bug: a site whose silicon was replaced must not keep
// producing corruptions (it used to — the planning loop never skipped
// repaired sites).
func TestRepairedSiteStopsCorrupting(t *testing.T) {
	cfg := eventTestConfig()
	cfg.RepairAfterDays = 5
	cfg.Policy = quarantine.Policy{Mode: quarantine.CoreRemoval,
		RequireConfession: true, DeclineRetry: 2 * simtime.Day}
	f := New(cfg)
	if err := f.InjectDefect("m00009", 6, hotDefect(13)); err != nil {
		t.Fatal(err)
	}
	repairedOn := -1
	for day := 0; day < 40; day++ {
		st := f.Step()
		if st.RepairsDone > 0 {
			repairedOn = day
		}
	}
	if repairedOn < 0 {
		t.Fatal("hot defect was never convicted and repaired in 40 days")
	}
	tail := int64(0)
	for day := 0; day < 5; day++ {
		tail += f.Step().Corruptions
	}
	if tail != 0 {
		t.Errorf("repaired site still corrupting: %d corruptions after repair", tail)
	}
	sites := f.Defects()
	if len(sites) != 1 || !sites[0].Repaired {
		t.Errorf("site not marked repaired: %+v", sites)
	}
}

func TestWorkloadPhaseSwitches(t *testing.T) {
	f := New(eventTestConfig())
	if err := f.StartKVLoad(KVDBConfig{Stores: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.StartKVLoad(KVDBConfig{Stores: 2}); err == nil {
		t.Error("double kv start accepted")
	}
	if err := f.StartTaskRun(TaskRunConfig{Tasks: 2}); err != nil {
		t.Fatal(err)
	}
	if err := f.StartTaskRun(TaskRunConfig{Tasks: 2}); err == nil {
		t.Error("double taskrun start accepted")
	}
	st := f.Step()
	if st.KVReads == 0 {
		t.Error("kv phase produced no reads")
	}
	if st.TRGranules == 0 {
		t.Error("taskrun phase produced no granules")
	}
	f.StopKVLoad()
	f.StopTaskRun()
	st = f.Step()
	if st.KVReads != 0 || st.TRGranules != 0 {
		t.Errorf("stopped phases still active: %+v", st)
	}
}
