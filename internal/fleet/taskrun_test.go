package fleet

import (
	"reflect"
	"testing"

	"repro/internal/fault"
)

// trTestConfig is a small defect-dense fleet with the taskrun workload
// on. Two granules per task keeps the corpus cost of 8 simulated days
// manageable while still exercising multi-granule checkpointing.
func trTestConfig() Config {
	cfg := testConfig()
	cfg.Machines = 120
	cfg.CoresPerMachine = 8
	cfg.DefectsPerMachine = 0.1
	cfg.TaskRun = TaskRunConfig{Tasks: 3, GranulesPerTask: 2}
	return cfg
}

// injectDeterministic gives the first n defect sites an always-on ALU
// defect. The catalog's sampled defects fire at ~1e-8..1e-6 per op —
// realistic, but a few-thousand-op granule would essentially never trip
// one in an 8-day test. Tasks pin onto defect sites, so deterministic
// silicon guarantees the checkpoint/retry path runs. Identical injection
// on every compared fleet keeps determinism comparisons valid.
func injectDeterministic(f *Fleet, n int) {
	d := fault.Defect{ID: "inject-alu", Unit: fault.UnitALU,
		Deterministic: true, Kind: fault.CorruptBitFlip, BitPos: 5}
	for i := 0; i < n && i < len(f.defects); i++ {
		f.defects[i].Site.Defects = append(f.defects[i].Site.Defects, d)
	}
}

func TestTaskRunPhaseDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []DayStats {
		r, err := NewRunner(trTestConfig(), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		injectDeterministic(r.Fleet(), 3)
		return r.Run(8)
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("taskrun-enabled run diverges across parallelism:\n serial   %+v\n parallel %+v",
			serial, parallel)
	}
	var granules, migrations, restores, failures int
	for _, d := range serial {
		granules += d.TRGranules
		migrations += d.TRMigrations
		restores += d.TRRestores
		failures += d.TRFailures
	}
	if failures != 0 {
		t.Fatalf("%d tasks exhausted retries on a 960-core fleet", failures)
	}
	if want := 3 * 2 * 8; granules != want {
		t.Fatalf("TRGranules = %d, want %d (tasks x granules x days)", granules, want)
	}
	// Tasks pinned onto deterministic defect sites must restore at least
	// one checkpoint and migrate off the bad silicon.
	if restores == 0 || migrations == 0 {
		t.Fatalf("defect-pinned workload saw restores=%d migrations=%d, want both > 0",
			restores, migrations)
	}
}

func TestTaskRunDisabledForksNothing(t *testing.T) {
	// The phase must be invisible when off: identical seeds with the
	// TaskRun field untouched produce identical telemetry, and the TR
	// counters stay zero.
	base := testConfig()
	base.Machines = 120
	base.CoresPerMachine = 8
	base.DefectsPerMachine = 0.1
	a := New(base).Run(5)
	b := New(base).Run(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("baseline run not reproducible")
	}
	for _, d := range a {
		if d.TRGranules != 0 || d.TRRetries != 0 || d.TRMigrations != 0 ||
			d.TRRestores != 0 || d.TRSignals != 0 || d.TRFailures != 0 {
			t.Fatalf("taskrun counters nonzero with the phase disabled: %+v", d)
		}
	}
}

// TestTaskRunPhaseFeedsQuarantine checks escalation reaches the report
// path: with the divergence threshold at 1, a task failing on its pinned
// deterministic defect site emits a suspect signal the same day.
func TestTaskRunPhaseFeedsQuarantine(t *testing.T) {
	cfg := trTestConfig()
	cfg.TaskRun.Tasks = 4
	cfg.TaskRun.DivergenceThreshold = 1
	f := New(cfg)
	injectDeterministic(f, 4)
	var signals, reports int
	for d := 0; d < 5; d++ {
		st := f.Step()
		signals += st.TRSignals
		reports += st.AutoReports
	}
	if signals == 0 {
		t.Fatal("no taskrun escalations in 5 days of deterministic failures")
	}
	if reports < signals {
		t.Fatalf("AutoReports %d < TRSignals %d: escalations not merged into the report path",
			reports, signals)
	}
}
