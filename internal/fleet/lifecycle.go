package fleet

// Machine-lifecycle control-plane wiring (see internal/lifecycle). When
// Config.Lifecycle enables it, the simulator keeps the same ledger the
// report daemon serves over its admin API: convicted machines are
// cordoned → drained in the ledger as quarantine drains them, repairs
// send them through repairing → probation, and a clean probation window
// releases them to healthy. A machine that burns through its repair
// budget is escalated to permanent removal (the recidivist policy) — it
// keeps its drain and never gets another repair ticket.
//
// Every call in this file happens in the day loop's serial phases (or in
// between-day event hooks), and the lifecycle package consumes no
// randomness, so an enabled control plane preserves the bit-identical-
// at-any-parallelism contract.

import (
	"fmt"
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/remediate"
	"repro/internal/sched"
)

// LifecycleConfig enables the machine-lifecycle control plane inside the
// simulator. The zero value disables it and changes nothing — no ledger,
// no recidivist removal, no probation accounting.
type LifecycleConfig struct {
	// Enabled switches the control plane on.
	Enabled bool
	// MaxRepairs is the recidivist threshold: after this many completed
	// repair cycles the next cordon escalates to permanent removal.
	// 0 means the lifecycle package default (2).
	MaxRepairs int
	// ProbationDays is how long a repaired machine stays in probation
	// before a clean record releases it to healthy. 0 means 7.
	ProbationDays int
	// WALPath, when set, persists every ledger transition to a CRC-framed
	// write-ahead log (replayed if the file already holds records). Empty
	// keeps the ledger memory-only — the usual simulator configuration.
	WALPath string
	// FS overrides the filesystem under the WAL (the chaos fault seam);
	// nil means the real one. Ignored without WALPath.
	FS lifecycle.FS
	// Pools declares capacity pools with serving floors; machines are
	// striped across them round-robin at build time. Drains that would
	// breach a floor are deferred onto the ledger's admission queue
	// instead of applied. Empty means no pools and no deferral — the
	// pre-pools behavior, bit for bit.
	Pools []lifecycle.PoolConfig
	// Notifier, when set, receives every applied ledger record (state
	// transitions and defer/undefer bookkeeping). It is called from the
	// fleet's serial phases and must not call back into the fleet or the
	// manager.
	Notifier remediate.Notifier
}

// lifeCounters buffers one day's ledger transitions for DayStats.
type lifeCounters struct {
	cordoned, drained, removed, reintroduced int
	deferred, admitted, retests, swaps       int
}

// buildLifecycle constructs the manager in New when the config enables it.
func (f *Fleet) buildLifecycle() {
	cfg := f.cfg.Lifecycle
	if !cfg.Enabled {
		return
	}
	f.probation = map[string]int{}
	f.retests = map[string]int{}
	f.lifeNotify = cfg.Notifier
	opts := lifecycle.Options{MaxRepairs: cfg.MaxRepairs, Observer: f.lifeObserve, FS: cfg.FS}
	if cfg.WALPath == "" {
		f.life = lifecycle.NewManager(opts)
	} else {
		life, _, err := lifecycle.Open(cfg.WALPath, opts)
		if err != nil {
			panic("fleet: lifecycle WAL: " + err.Error())
		}
		f.life = life
	}
	f.buildPolicy()
	if len(cfg.Pools) == 0 {
		return
	}
	f.poolTickets = map[string]int{}
	for _, p := range cfg.Pools {
		f.life.DefinePool(p)
		if n := f.cfg.Remediate.RepairTicketsPerPool; n > 0 {
			f.poolTickets[p.Name] = n
		}
	}
	// Stripe machines across pools round-robin. Membership is a WAL
	// record, so a replayed ledger already holds it and AssignPool no-ops.
	for i, m := range f.machines {
		if err := f.life.AssignPool(m.ID, cfg.Pools[i%len(cfg.Pools)].Name); err != nil {
			panic("fleet: pool assignment: " + err.Error())
		}
	}
}

// buildPolicy resolves the configured remediation policy. Unknown names
// panic in New, like every other invalid fleet configuration.
func (f *Fleet) buildPolicy() {
	r := f.cfg.Remediate
	switch r.Policy {
	case "", "default":
		f.policy = remediate.DefaultPolicy{}
	case "escalating":
		f.policy = remediate.EscalatingPolicy{ScoreThreshold: r.ScoreThreshold, MaxRetests: r.MaxRetests}
	case "swap":
		f.policy = remediate.SwapPolicy{}
	default:
		panic(fmt.Sprintf("fleet: unknown remediation policy %q", r.Policy))
	}
}

// Lifecycle returns the machine-lifecycle ledger (nil when disabled).
func (f *Fleet) Lifecycle() *lifecycle.Manager { return f.life }

// lifeObserve is the manager's record observer: it tallies the day's
// counters for DayStats, mirrors them into the metrics registry, and
// forwards every record to the configured notifier. It runs inside the
// manager's lock but only ever from the fleet's own serial phases.
func (f *Fleet) lifeObserve(t lifecycle.Transition) {
	switch t.Kind {
	case lifecycle.KindDefer:
		// A bookkeeping record, not a state transition: the To field names
		// the parked verb, so it must not fall into the counter switch.
		f.lifePending.deferred++
	case lifecycle.KindUndefer:
		if t.Reason == "admitted" {
			f.lifePending.admitted++
			// The ledger has already applied the parked verb; the cluster
			// side completes in lifeEndOfDay, in admission order.
			f.lifeAdmitted = append(f.lifeAdmitted, t.Machine)
		}
	case lifecycle.KindAssign:
		// Setup-time membership; nothing to count.
	default:
		switch t.To {
		case lifecycle.Cordoned.String():
			f.lifePending.cordoned++
		case lifecycle.Drained.String():
			f.lifePending.drained++
		case lifecycle.Removed.String():
			f.lifePending.removed++
		case lifecycle.Probation.String(), lifecycle.Healthy.String():
			// Both count as "coming back toward service": repair completion
			// lands in probation, releases and exonerations land in healthy.
			f.lifePending.reintroduced++
		}
		if f.obs != nil {
			f.obs.Counter("lifecycle_transitions_total", obs.L("to", t.To)).Inc()
		}
	}
	if f.lifeNotify != nil {
		f.lifeNotify.Notify(remediate.Event{
			Seq: t.Seq, Day: t.Day, Machine: t.Machine,
			From: t.From, To: t.To, Kind: t.Kind, Pool: t.Pool,
			Score: t.Score, Reason: t.Reason, Actor: t.Actor,
		})
	}
}

// probationDays returns the configured probation window with its default.
func (f *Fleet) probationDays() int {
	if d := f.cfg.Lifecycle.ProbationDays; d > 0 {
		return d
	}
	return 7
}

// lifeConvict records a conviction-driven machine drain in the ledger:
// cordon (possibly escalating), drain, and — because Cluster.Drain
// already evicted the tasks synchronously — drained, all stamped today.
// It returns true when the cordon escalated to permanent removal: the
// caller must not schedule a repair ticket, the machine stays drained.
func (f *Fleet) lifeConvict(machine string, day int) bool {
	if f.life == nil {
		return false
	}
	// The conviction consumed the suspicion; replaced silicon starts a
	// fresh retest budget.
	delete(f.retests, machine)
	st, _ := f.life.Drain(machine, day, "convicted mercurial core", "quarantine")
	if st == lifecycle.Removed {
		return true
	}
	f.life.MarkDrained(machine, day, "quarantine")
	return false
}

// lifeRepairComplete moves a repaired machine through repairing into
// probation and schedules the probation expiry.
func (f *Fleet) lifeRepairComplete(machine string, day int) {
	if f.life == nil {
		return
	}
	f.life.StartRepair(machine, day, "repair")
	st, _ := f.life.Reintroduce(machine, day, "silicon replaced", "repair")
	if st == lifecycle.Probation {
		f.probation[machine] = day + f.probationDays()
	}
}

// lifeCoreRepaired clears a machine's suspect mark after a core-granular
// repair (the machine itself was never drained, so there is no probation).
func (f *Fleet) lifeCoreRepaired(machine string, day int) {
	if f.life == nil {
		return
	}
	if rec, ok := f.life.State(machine); ok && rec.State == lifecycle.Suspect {
		f.life.Reintroduce(machine, day, "core repaired", "repair")
	}
}

// lifeEndOfDay releases machines whose probation window expired cleanly
// (sorted order — the map must never leak iteration order into the
// ledger), completes the cluster side of drains the ledger admitted off
// the deferred queue today, and flushes the day's transition counters
// into st.
func (f *Fleet) lifeEndOfDay(day int, st *DayStats) {
	if f.life == nil {
		return
	}
	if len(f.probation) > 0 {
		due := make([]string, 0, len(f.probation))
		for m, until := range f.probation {
			if until <= day {
				due = append(due, m)
			}
		}
		sort.Strings(due)
		for _, m := range due {
			// A machine re-convicted during probation has moved on; its
			// expiry entry is stale and just dropped.
			if rec, ok := f.life.State(m); ok && rec.State == lifecycle.Probation {
				f.life.Reintroduce(m, day, "probation clean", "fleet")
			}
			delete(f.probation, m)
		}
	}
	f.completeAdmitted(day)
	for _, ps := range f.life.Pools() {
		if ps.Serving < ps.Floor {
			f.lifeTotals.FloorBreaches++
		}
	}
	if f.life.WALHealth() != nil {
		f.lifeTotals.WALErrorDays++
	}
	st.LifeCordoned = f.lifePending.cordoned
	st.LifeDrained = f.lifePending.drained
	st.LifeRemoved = f.lifePending.removed
	st.LifeReintroduced = f.lifePending.reintroduced
	f.lifeTotals.Deferred += f.lifePending.deferred
	f.lifeTotals.Admitted += f.lifePending.admitted
	f.lifeTotals.Retests += f.lifePending.retests
	f.lifeTotals.Swaps += f.lifePending.swaps
	f.lifePending = lifeCounters{}
}

// LifeTotals returns the run's cumulative pool/remediation accounting
// (all zero under the default configuration).
func (f *Fleet) LifeTotals() LifeTotals { return f.lifeTotals }

// completeAdmitted applies the cluster side of drains (and cordons) the
// ledger admitted off the deferred queue today, in admission order. The
// ledger transitions already happened inside the manager (cordoned, or
// cordoned→draining→drained); here the simulator catches the cluster up:
// evict tasks, stop workload and screening, and — for drains — schedule
// the repair that eventually returns the capacity.
func (f *Fleet) completeAdmitted(day int) {
	admitted := f.lifeAdmitted
	f.lifeAdmitted = nil
	for _, id := range admitted {
		rec, ok := f.life.State(id)
		if !ok {
			continue
		}
		m := f.machineByID(id)
		if m == nil {
			continue
		}
		switch rec.State {
		case lifecycle.Cordoned:
			// An admitted cordon intent: stop placements, keep running tasks.
			f.cluster.Cordon(id)
		case lifecycle.Drained, lifecycle.Removed:
			if m.drained {
				continue
			}
			f.cluster.Drain(id)
			m.drained = true
			f.server.Forget(id)
			if rec.State == lifecycle.Removed {
				// Admission tripped the recidivist escalation: the machine is
				// permanently decommissioned — no repair ticket.
				continue
			}
			if f.cfg.RepairAfterDays > 0 {
				f.poolTicketConsume(id)
				f.repairQueue = append(f.repairQueue, repairTicket{
					machine: id, core: -1, dueDay: day + f.cfg.RepairAfterDays,
				})
			}
		}
	}
}

// poolTicketsFor reports the remaining repair-ticket budget of machine's
// pool: -1 when unbudgeted (no pool, or no budget configured).
func (f *Fleet) poolTicketsFor(machine string) int {
	if f.poolTickets == nil || f.life == nil {
		return -1
	}
	pool := f.life.PoolOf(machine)
	if pool == "" {
		return -1
	}
	n, ok := f.poolTickets[pool]
	if !ok {
		return -1
	}
	return n
}

// poolTicketConsume spends one repair ticket from machine's pool budget.
func (f *Fleet) poolTicketConsume(machine string) {
	if n := f.poolTicketsFor(machine); n > 0 {
		f.poolTickets[f.life.PoolOf(machine)] = n - 1
	}
}

// poolTicketRestore returns a repair ticket to machine's pool budget when
// its whole-machine repair completes.
func (f *Fleet) poolTicketRestore(machine string) {
	if n := f.poolTicketsFor(machine); n >= 0 {
		f.poolTickets[f.life.PoolOf(machine)] = n + 1
	}
}

// remediateGate consults the remediation policy (and the pool's drain
// budget) before a machine-drain conviction. It returns proceed=false
// when the suspect should not be convicted today — retested in place, or
// its drain deferred behind the pool floor — and swap=true when the
// policy wants the silicon swapped from spares instead of repaired
// through the ticket queue. Under the default policy with no pools it
// always returns (true, false) without touching any state, keeping the
// default path bit-identical.
func (f *Fleet) remediateGate(machine string, score float64, day int) (proceed, swap bool) {
	view := remediate.MachineView{
		Machine:           machine,
		Score:             score,
		Retests:           f.retests[machine],
		PoolRepairTickets: f.poolTicketsFor(machine),
	}
	if f.life != nil {
		view.Pool = f.life.PoolOf(machine)
		if rec, ok := f.life.State(machine); ok {
			view.State = rec.State.String()
			view.RepairCycles = rec.RepairCycles
		}
	}
	act := f.policy.Decide(view)
	switch act.Kind {
	case remediate.ActRetest:
		f.retests[machine]++
		f.lifePending.retests++
		return false, false
	case remediate.ActNone:
		return false, false
	case remediate.ActSwap:
		return true, true
	}
	// ActDrain: the pool budget has the last word. A deferred machine
	// keeps serving; the durable intent admits itself (and the cluster
	// side completes) once repaired capacity returns.
	if f.life != nil && f.life.DrainWouldDefer(machine) {
		f.life.DeferDrain(machine, day, "convicted mercurial core", "quarantine", score)
		return false, false
	}
	return true, false
}

// completeSwap finishes a swap-policy conviction: the machine's defective
// silicon is replaced from spares the same day — no repair-queue wait.
// Mirrors the whole-machine branch of processRepairs.
func (f *Fleet) completeSwap(machine string, day int, st *DayStats) {
	m := f.machineByID(machine)
	for _, idx := range sortedDefectiveCores(m) {
		f.retireDefect(machine, idx)
		ref := sched.CoreRef{Machine: machine, Core: idx}
		if f.manager.Isolated(ref) {
			f.traceRelease(ref, day)
		}
		f.manager.Release(ref)
		f.traceRepair(machine, idx, day)
	}
	m.drained = false
	if err := f.cluster.Undrain(machine); err == nil {
		f.Repairs++
		st.RepairsDone++
		f.traceRepair(machine, -1, day)
	}
	f.lifeRepairComplete(machine, day)
	f.lifePending.swaps++
}
