package fleet

// Machine-lifecycle control-plane wiring (see internal/lifecycle). When
// Config.Lifecycle enables it, the simulator keeps the same ledger the
// report daemon serves over its admin API: convicted machines are
// cordoned → drained in the ledger as quarantine drains them, repairs
// send them through repairing → probation, and a clean probation window
// releases them to healthy. A machine that burns through its repair
// budget is escalated to permanent removal (the recidivist policy) — it
// keeps its drain and never gets another repair ticket.
//
// Every call in this file happens in the day loop's serial phases (or in
// between-day event hooks), and the lifecycle package consumes no
// randomness, so an enabled control plane preserves the bit-identical-
// at-any-parallelism contract.

import (
	"sort"

	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// LifecycleConfig enables the machine-lifecycle control plane inside the
// simulator. The zero value disables it and changes nothing — no ledger,
// no recidivist removal, no probation accounting.
type LifecycleConfig struct {
	// Enabled switches the control plane on.
	Enabled bool
	// MaxRepairs is the recidivist threshold: after this many completed
	// repair cycles the next cordon escalates to permanent removal.
	// 0 means the lifecycle package default (2).
	MaxRepairs int
	// ProbationDays is how long a repaired machine stays in probation
	// before a clean record releases it to healthy. 0 means 7.
	ProbationDays int
	// WALPath, when set, persists every ledger transition to a CRC-framed
	// write-ahead log (replayed if the file already holds records). Empty
	// keeps the ledger memory-only — the usual simulator configuration.
	WALPath string
}

// lifeCounters buffers one day's ledger transitions for DayStats.
type lifeCounters struct {
	cordoned, drained, removed, reintroduced int
}

// buildLifecycle constructs the manager in New when the config enables it.
func (f *Fleet) buildLifecycle() {
	cfg := f.cfg.Lifecycle
	if !cfg.Enabled {
		return
	}
	f.probation = map[string]int{}
	opts := lifecycle.Options{MaxRepairs: cfg.MaxRepairs, Observer: f.lifeObserve}
	if cfg.WALPath == "" {
		f.life = lifecycle.NewManager(opts)
		return
	}
	life, _, err := lifecycle.Open(cfg.WALPath, opts)
	if err != nil {
		panic("fleet: lifecycle WAL: " + err.Error())
	}
	f.life = life
}

// Lifecycle returns the machine-lifecycle ledger (nil when disabled).
func (f *Fleet) Lifecycle() *lifecycle.Manager { return f.life }

// lifeObserve is the manager's transition observer: it tallies the day's
// counters for DayStats and mirrors them into the metrics registry. It
// runs inside the manager's lock but only ever from the fleet's own
// serial phases.
func (f *Fleet) lifeObserve(t lifecycle.Transition) {
	switch t.To {
	case lifecycle.Cordoned.String():
		f.lifePending.cordoned++
	case lifecycle.Drained.String():
		f.lifePending.drained++
	case lifecycle.Removed.String():
		f.lifePending.removed++
	case lifecycle.Probation.String(), lifecycle.Healthy.String():
		// Both count as "coming back toward service": repair completion
		// lands in probation, releases and exonerations land in healthy.
		f.lifePending.reintroduced++
	}
	if f.obs != nil {
		f.obs.Counter("lifecycle_transitions_total", obs.L("to", t.To)).Inc()
	}
}

// probationDays returns the configured probation window with its default.
func (f *Fleet) probationDays() int {
	if d := f.cfg.Lifecycle.ProbationDays; d > 0 {
		return d
	}
	return 7
}

// lifeConvict records a conviction-driven machine drain in the ledger:
// cordon (possibly escalating), drain, and — because Cluster.Drain
// already evicted the tasks synchronously — drained, all stamped today.
// It returns true when the cordon escalated to permanent removal: the
// caller must not schedule a repair ticket, the machine stays drained.
func (f *Fleet) lifeConvict(machine string, day int) bool {
	if f.life == nil {
		return false
	}
	st, _ := f.life.Drain(machine, day, "convicted mercurial core", "quarantine")
	if st == lifecycle.Removed {
		return true
	}
	f.life.MarkDrained(machine, day, "quarantine")
	return false
}

// lifeRepairComplete moves a repaired machine through repairing into
// probation and schedules the probation expiry.
func (f *Fleet) lifeRepairComplete(machine string, day int) {
	if f.life == nil {
		return
	}
	f.life.StartRepair(machine, day, "repair")
	st, _ := f.life.Reintroduce(machine, day, "silicon replaced", "repair")
	if st == lifecycle.Probation {
		f.probation[machine] = day + f.probationDays()
	}
}

// lifeCoreRepaired clears a machine's suspect mark after a core-granular
// repair (the machine itself was never drained, so there is no probation).
func (f *Fleet) lifeCoreRepaired(machine string, day int) {
	if f.life == nil {
		return
	}
	if rec, ok := f.life.State(machine); ok && rec.State == lifecycle.Suspect {
		f.life.Reintroduce(machine, day, "core repaired", "repair")
	}
}

// lifeEndOfDay releases machines whose probation window expired cleanly
// (sorted order — the map must never leak iteration order into the
// ledger) and flushes the day's transition counters into st.
func (f *Fleet) lifeEndOfDay(day int, st *DayStats) {
	if f.life == nil {
		return
	}
	if len(f.probation) > 0 {
		due := make([]string, 0, len(f.probation))
		for m, until := range f.probation {
			if until <= day {
				due = append(due, m)
			}
		}
		sort.Strings(due)
		for _, m := range due {
			// A machine re-convicted during probation has moved on; its
			// expiry entry is stale and just dropped.
			if rec, ok := f.life.State(m); ok && rec.State == lifecycle.Probation {
				f.life.Reintroduce(m, day, "probation clean", "fleet")
			}
			delete(f.probation, m)
		}
	}
	st.LifeCordoned = f.lifePending.cordoned
	st.LifeDrained = f.lifePending.drained
	st.LifeRemoved = f.lifePending.removed
	st.LifeReintroduced = f.lifePending.reintroduced
	f.lifePending = lifeCounters{}
}
