package fleet

// The taskrun day phase: batch tasks built from corpus workloads run
// under the taskrun.Supervisor's checkpoint/retry state machine, with
// each task's first placement pinned onto a live defect site so the §7
// runtime exercises real mercurial cores daily. Granule failures restore
// the last checkpoint, replay the recorded inputs on a different core,
// and — past the per-core divergence threshold — escalate core-attributed
// signals into the same report server the production and kvdb paths feed.
//
// Like the kvdb phase, it is disabled by default (Config.TaskRun.Tasks ==
// 0) and consumes no randomness when disabled, so existing experiment
// outputs stay bit-identical. Enabled, it runs serially (phase 3c, after
// kvdb, before noise): every RNG fork is ordered and every signal lands
// in the batch buffer in task order, preserving bit-identical output at
// any parallelism.

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/taskrun"
	"repro/internal/xrand"
)

// TaskRunConfig parameterizes the optional checkpoint/retry workload
// phase.
type TaskRunConfig struct {
	// Tasks is the number of supervised tasks run per day; 0 disables
	// the phase. Task k's first placement is pinned to defect site k mod
	// sites (when one is schedulable), so the runtime meets real
	// mercurial cores.
	Tasks int
	// GranulesPerTask is the checkpoint granularity (default 3); the
	// granules cycle through the screening corpus.
	GranulesPerTask int
	// MaxRetries bounds re-executions per granule (default 3).
	MaxRetries int
	// DivergenceThreshold is the per-core escalation floor (default 2).
	DivergenceThreshold int
	// Paranoid enables DMR-style verification of every granule.
	Paranoid bool
}

func (c TaskRunConfig) withDefaults() TaskRunConfig {
	if c.GranulesPerTask <= 0 {
		c.GranulesPerTask = 3
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.DivergenceThreshold <= 0 {
		c.DivergenceThreshold = 2
	}
	return c
}

// buildTaskRun constructs the supervisor during New. Only called when
// the phase is enabled, so the master RNG is untouched otherwise.
func (f *Fleet) buildTaskRun() {
	tcfg := f.cfg.TaskRun.withDefaults()
	sup, err := taskrun.NewSupervisor(f.cluster, f.coreFor, taskrun.Config{
		MaxRetries:          tcfg.MaxRetries,
		DivergenceThreshold: tcfg.DivergenceThreshold,
		Paranoid:            tcfg.Paranoid,
		// Signals are buffered and batch-merged by the serial phase.
		Sink: func(sig detect.Signal) error {
			f.trSignals = append(f.trSignals, sig)
			return nil
		},
		Metrics: f.obs,
		Now:     func() simtime.Time { return f.trNow },
	})
	if err != nil {
		panic(err)
	}
	f.taskSup = sup
}

// taskrunStart picks the defect site task t pins its first placement to,
// cycling through live (unrepaired, undrained, unquarantined) sites. Nil
// when none remains schedulable — the task then places normally.
func (f *Fleet) taskrunStart(t int) *sched.CoreRef {
	n := len(f.defects)
	for probe := 0; probe < n; probe++ {
		site := f.defects[(t+probe)%n]
		if site.Repaired {
			continue
		}
		m := f.machineByID(site.Machine)
		if m == nil || m.drained || m.quarantined[site.Core] {
			continue
		}
		return &sched.CoreRef{Machine: site.Machine, Core: site.Core}
	}
	return nil
}

// runTaskRun is phase 3c: the day's supervised batch workload. Serial —
// every fork is ordered and every signal lands in the buffer in task
// order.
func (f *Fleet) runTaskRun(dayRNG *xrand.RNG, now simtime.Time, st *DayStats) {
	tcfg := f.cfg.TaskRun.withDefaults()
	f.trNow = now
	before := f.taskSup.Stats()
	for t := 0; t < tcfg.Tasks; t++ {
		id := fmt.Sprintf("tr-d%04d-t%03d", st.Day, t)
		task := &taskrun.Task{ID: id, Start: f.taskrunStart(t)}
		for g := 0; g < tcfg.GranulesPerTask; g++ {
			w := f.allWork[(t+g)%len(f.allWork)]
			task.Granules = append(task.Granules, taskrun.CorpusGranule(w))
		}
		if _, err := f.taskSup.Run(task, dayRNG.ForkString("taskrun:"+id)); err != nil {
			st.TRFailures++
		}
	}
	after := f.taskSup.Stats()
	st.TRGranules += after.Granules - before.Granules
	st.TRRetries += after.Retries - before.Retries
	st.TRMigrations += after.Migrations - before.Migrations
	st.TRRestores += after.Restores - before.Restores
	st.TRSignals += after.SignalsSent - before.SignalsSent

	// Merge the buffered detection signals exactly like site signals:
	// batch-ingested in deterministic order, traced, counted.
	if len(f.trSignals) > 0 {
		st.AutoReports += len(f.trSignals)
		f.server.IngestBatch(f.trSignals)
		f.traceFirstSignals(f.trSignals)
		f.trSignals = f.trSignals[:0]
	}
}
