package fleet

import (
	"reflect"
	"testing"
)

// kvTestConfig is a small defect-dense fleet with the kvdb workload on.
func kvTestConfig() Config {
	cfg := testConfig()
	cfg.Machines = 120
	cfg.CoresPerMachine = 8
	cfg.DefectsPerMachine = 0.1
	cfg.KVDB = KVDBConfig{Stores: 3, ReadsPerDay: 32, WritesPerDay: 2}
	return cfg
}

func TestKVDBPhaseDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) []DayStats {
		r, err := NewRunner(kvTestConfig(), WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		return r.Run(8)
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("kvdb-enabled run diverges across parallelism:\n serial   %+v\n parallel %+v",
			serial, parallel)
	}
	var reads int
	for _, d := range serial {
		reads += d.KVReads
	}
	if want := 3 * 32 * 8; reads != want {
		t.Fatalf("KVReads = %d, want %d (stores x reads x days)", reads, want)
	}
}

func TestKVDBDisabledForksNothing(t *testing.T) {
	// The phase must be invisible when off: identical seeds with and
	// without the KVDB field untouched produce identical telemetry.
	base := testConfig()
	base.Machines = 120
	base.CoresPerMachine = 8
	base.DefectsPerMachine = 0.1
	a := New(base).Run(5)
	b := New(base).Run(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("baseline run not reproducible")
	}
	for _, d := range a {
		if d.KVReads != 0 || d.KVRetries != 0 || d.KVRepairs != 0 ||
			d.KVDegraded != 0 || d.KVErrors != 0 {
			t.Fatalf("kv counters nonzero with the phase disabled: %+v", d)
		}
	}
}
