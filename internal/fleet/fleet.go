// Package fleet implements the fleet-scale simulator that ties the whole
// system together and regenerates the paper's Figure 1 and quantified
// claims: a population of machines with rare mercurial cores, production
// workload that intermittently manifests CEEs as crashes, machine checks,
// detected wrong answers, and silent corruption; automated screening whose
// corpus coverage grows over time; human incident triage; the suspect-
// report service; and quarantine.
//
// The simulation is hybrid, mirroring how the numbers arise in production:
//
//   - Production-workload CEE manifestation is analytic: each defective
//     core's daily corruption count is Poisson with mean given by the
//     defect's activation rate and the workload's operation mix. This is
//     what makes simulating tens of thousands of machines tractable.
//   - Screening and confession testing are *real*: they run the actual
//     self-checking corpus through the op-level engine against the
//     materialized defective cores, so detection rates are produced by
//     the mechanism, not assumed.
//
// Healthy cores are not materialized (they cannot fail self-checks), which
// keeps memory proportional to the number of defects, not fleet size.
package fleet

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/corpus"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/quarantine"
	"repro/internal/remediate"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/screen"
	"repro/internal/simtime"
	"repro/internal/taskrun"
	"repro/internal/xrand"
)

// Config parameterizes a fleet simulation.
type Config struct {
	// Machines and CoresPerMachine shape the fleet.
	Machines        int
	CoresPerMachine int
	// Seed makes the whole run reproducible.
	Seed uint64
	// DefectsPerMachine is the expected number of defective cores per
	// machine. The paper reports "on the order of a few mercurial cores
	// per several thousand machines"; the default 0.002 reproduces that.
	DefectsPerMachine float64
	// DailyOpsPerCore is the production operation volume per core per
	// day that defects can act on.
	DailyOpsPerCore float64
	// PImmediateDetect is the probability an application-level check
	// (checksum, replica compare) catches a corruption promptly.
	PImmediateDetect float64
	// PCrash is the probability a corruption crashes the process or
	// kernel (fail-noisy).
	PCrash float64
	// PMCE is the probability of a machine-check event.
	PMCE float64
	// PLateDetect is the probability the wrong answer is detected after
	// it is too late to retry.
	PLateDetect float64
	// PCoreAttribution is the probability a detected signal names the
	// specific core (vs only the machine).
	PCoreAttribution float64
	// SoftwareBugSignalsPerMachineDay is the background rate of
	// corruption-looking signals caused by ordinary software bugs,
	// spread evenly over cores — the noise the concentration test
	// rejects and the source of false human accusations.
	SoftwareBugSignalsPerMachineDay float64
	// UserReportFraction is the fraction of detected incidents that a
	// human investigates and files as a user report.
	UserReportFraction float64
	// ScreenOpsPerCoreDay is the online screening budget per core per
	// day, in engine operations.
	ScreenOpsPerCoreDay uint64
	// InitialCorpus and CorpusGrowEveryDays model §6's expanding test
	// corpus ("our regular fleet-wide testing has expanded to new
	// classes of CEEs ... a few times per year"): the automated screener
	// starts with the first InitialCorpus workloads and unlocks one more
	// every CorpusGrowEveryDays days. Zero disables growth.
	InitialCorpus       int
	CorpusGrowEveryDays int
	// MaxSignalsPerCoreDay rate-limits reporting, as production signal
	// pipelines do.
	MaxSignalsPerCoreDay int
	// Policy is the quarantine policy applied to nominated suspects.
	Policy quarantine.Policy
	// ConfessionConfig is the screen used for confessions; its zero
	// value selects a cheap two-pass sweep suitable for daily use.
	ConfessionConfig screen.Config
	// RepairAfterDays returns quarantined cores and drained machines to
	// service with healthy replacement silicon after this many days
	// (the RMA loop); 0 disables repair.
	RepairAfterDays int
	// SKUs describes the CPU-product mix (§2: "the rate is not uniform
	// across CPU products"; §4: fleets have "various CPU types, from
	// several vendors, and of various ages"). Nil means one uniform SKU
	// with no pre-aging.
	SKUs []SKU
	// KVDB enables the tolerant key-value-store workload phase (see
	// kvdb.go); the zero value disables it and leaves every random
	// stream — and therefore all existing experiment output — untouched.
	KVDB KVDBConfig
	// TaskRun enables the checkpoint/retry batch-workload phase (see
	// taskrun.go); the zero value disables it and, like KVDB, consumes
	// no randomness when disabled.
	TaskRun TaskRunConfig
	// Lifecycle enables the machine-lifecycle control plane (see
	// lifecycle.go in this package and internal/lifecycle): a per-machine
	// ledger of cordon/drain/repair/probation transitions, recidivist
	// removal, and probationary reintroduction. The zero value disables
	// it and changes nothing.
	Lifecycle LifecycleConfig
	// Remediate selects the remediation policy the suspect phase consults
	// before convicting a machine (see internal/remediate). The zero value
	// is the default policy — bit-identical to the fixed paper loop.
	// Ignored unless Lifecycle is enabled.
	Remediate RemediateConfig
}

// RemediateConfig configures the pluggable remediation policy.
type RemediateConfig struct {
	// Policy names the policy: "" or "default" (the fixed paper loop),
	// "escalating" (retest low-score suspects in place before draining),
	// or "swap" (swap in spare silicon once a pool's repair-ticket budget
	// is exhausted).
	Policy string
	// ScoreThreshold is the escalating policy's immediate-drain score
	// (0 means its default).
	ScoreThreshold float64
	// MaxRetests bounds the escalating policy's in-place retests per
	// machine (0 means its default).
	MaxRetests int
	// RepairTicketsPerPool budgets concurrent whole-machine repair
	// tickets per pool for the swap policy (0 means unbudgeted).
	RepairTicketsPerPool int
}

// SKU is one CPU product population in the fleet.
type SKU struct {
	// Name labels the product in reports.
	Name string
	// Fraction is the share of machines carrying this SKU; fractions
	// are normalized over the configured SKUs.
	Fraction float64
	// DefectMultiplier scales Config.DefectsPerMachine for this SKU.
	DefectMultiplier float64
	// PreAgeDays is the maximum in-service age (uniform per machine) at
	// simulation start — older products carry partially elapsed onset
	// clocks.
	PreAgeDays float64
}

// DefaultConfig returns the calibrated configuration used by the
// experiments. The fleet is smaller than Google's but large enough for
// every statistic the paper reports to emerge.
func DefaultConfig() Config {
	return Config{
		Machines:                        4000,
		CoresPerMachine:                 32,
		Seed:                            1,
		DefectsPerMachine:               0.002,
		DailyOpsPerCore:                 2e7,
		PImmediateDetect:                0.25,
		PCrash:                          0.15,
		PMCE:                            0.05,
		PLateDetect:                     0.10,
		PCoreAttribution:                0.8,
		SoftwareBugSignalsPerMachineDay: 0.001,
		UserReportFraction:              0.05,
		ScreenOpsPerCoreDay:             50_000,
		InitialCorpus:                   5,
		CorpusGrowEveryDays:             120,
		MaxSignalsPerCoreDay:            10,
		Policy: quarantine.Policy{
			Mode:              quarantine.CoreRemoval,
			RequireConfession: true,
		},
		ConfessionConfig: screen.NewConfig(
			screen.WithPasses(60),
			screen.WithSweep(2, 1, 2),
			screen.WithMaxOps(15_000_000),
		),
	}
}

// DefectSite locates one materialized defective core.
type DefectSite struct {
	Machine string
	Core    int
	Site    *fault.Core
	// FirstActive is the simulated day the defect first became able to
	// fire (install age crossing onset).
	FirstActive simtime.Time
	// Repaired is set when the defective silicon was replaced.
	Repaired bool
	// activationTraced dedups the lifecycle trace's activation event.
	activationTraced bool
}

// Machine is the simulator's per-machine record.
type Machine struct {
	ID        string
	SKU       string
	Defective map[int]*fault.Core
	// install is the (possibly negative) simulated time the machine
	// entered service; cores age from it.
	install simtime.Time
	// quarantined cores no longer run workload or screening.
	quarantined map[int]bool
	drained     bool
}

// pickSKU draws a SKU proportionally to Fraction.
func pickSKU(skus []SKU, total float64, rng *xrand.RNG) SKU {
	if total <= 0 {
		return skus[0]
	}
	x := rng.Float64() * total
	for _, k := range skus {
		x -= k.Fraction
		if x < 0 {
			return k
		}
	}
	return skus[len(skus)-1]
}

// MachineSKU returns the SKU name of a machine (empty if unknown).
func (f *Fleet) MachineSKU(id string) string {
	m := f.machineByID(id)
	if m == nil {
		return ""
	}
	return m.SKU
}

// Outcome classifies one corruption event per §2's risk ladder.
type Outcome int

const (
	// OutcomeImmediate is a wrong answer detected nearly immediately.
	OutcomeImmediate Outcome = iota
	// OutcomeCrash is a process/kernel crash or segfault.
	OutcomeCrash
	// OutcomeMCE is a machine check.
	OutcomeMCE
	// OutcomeLate is a wrong answer detected too late to retry.
	OutcomeLate
	// OutcomeSilent is a wrong answer never detected.
	OutcomeSilent
	numOutcomes
)

var outcomeNames = [...]string{"immediate", "crash", "mce", "late", "silent"}

func (o Outcome) String() string {
	if o < 0 || int(o) >= len(outcomeNames) {
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
	return outcomeNames[o]
}

// repairTicket schedules one isolation's return to service.
type repairTicket struct {
	machine string
	core    int // -1 for whole-machine drain
	dueDay  int
}

// DayStats is one day of fleet telemetry — the raw series behind Fig. 1.
type DayStats struct {
	Day int
	// Corruptions is ground truth: CEE events that actually occurred.
	Corruptions int64
	// ByOutcome splits corruptions by §2 class.
	ByOutcome [numOutcomes]int64
	// AutoReports are core-attributed signals from automated sources
	// (crashes, MCEs, sanitizers, app checks, screening).
	AutoReports int
	// UserReports are human-filed suspicions.
	UserReports int
	// ScreenDetections are corpus failures from online screening.
	ScreenDetections int
	// NewQuarantines is the number of cores isolated today.
	NewQuarantines int
	// RepairsDone is the number of isolations returned to service today.
	RepairsDone int
	// ActiveDefects is the number of defective cores past onset and not
	// yet quarantined.
	ActiveDefects int
	// KV* count the tolerant key-value workload's day (zero unless
	// Config.KVDB enables the phase): reads served, different-replica
	// retries, read-repair heals, degraded (no-majority) serves, and
	// client-visible errors.
	KVReads, KVRetries, KVRepairs, KVDegraded, KVErrors int
	// TR* count the checkpoint/retry workload's day (zero unless
	// Config.TaskRun enables the phase): granules committed, granule
	// re-executions, placements migrated, checkpoint restores, suspect
	// signals escalated, and tasks that exhausted their retries.
	TRGranules, TRRetries, TRMigrations, TRRestores, TRSignals, TRFailures int
	// Life* count the machine-lifecycle ledger's day (zero unless
	// Config.Lifecycle enables the control plane): machines cordoned,
	// fully drained, permanently removed (recidivists), and moved back
	// toward service (into probation or healthy) today.
	LifeCordoned, LifeDrained, LifeRemoved, LifeReintroduced int
}

// LifeTotals is the cumulative pool/remediation accounting of a run. It
// lives outside DayStats deliberately: the kvdb seed golden fingerprints
// the printed DayStats stream, so that struct's shape is frozen.
type LifeTotals struct {
	// Deferred counts drains parked because applying them would have
	// breached a pool's capacity floor; Admitted counts parked drains the
	// ledger admitted as capacity returned.
	Deferred, Admitted int
	// Retests and Swaps count the non-default remediation policies'
	// decisions (escalating retest-in-place; swap-from-spares).
	Retests, Swaps int
	// FloorBreaches counts pool×day observations below the serving floor
	// — the invariant the deferred-drain queue exists to hold at zero.
	FloorBreaches int
	// WALErrorDays counts days the lifecycle WAL ended unhealthy (appends
	// failing) — nonzero only under injected faults.
	WALErrorDays int
}

// TriageStats tracks the human-triage ledger for experiment E5. The paper
// reports that "roughly half of these human-identified suspects are
// actually proven ... to be mercurial cores — we must extract confessions
// via further testing ... The other half is a mix of false accusations and
// limited reproducibility."
type TriageStats struct {
	// Investigated counts unique human investigations (one per suspect
	// machine).
	Investigated int
	// Confirmed counts investigations whose confession screen
	// reproduced a failure.
	Confirmed int
	// FalseAccusations counts investigations that fingered a core that
	// is in truth healthy.
	FalseAccusations int
	// RealNotReproduced counts investigations of genuinely defective
	// cores whose confession screen failed to reproduce the defect —
	// the paper's "limited reproducibility".
	RealNotReproduced int
}

// Fleet is one simulated fleet.
//
// A Fleet's mutable state is owned by one goroutine: Step and Run must not
// be called concurrently. Internally each day is sharded across a worker
// pool (see tick.go); the telemetry is bit-identical at any worker count.
type Fleet struct {
	cfg         Config
	rng         *xrand.RNG
	parallelism int
	machines    []*Machine
	defects     []*DefectSite
	// siteMachines[i] is the resolved machine of defects[i] — struct-of-
	// arrays companion to the defect list, so the per-day planning loop
	// never re-parses machine ids. Kept aligned with defects by New and
	// InjectDefect (sites are never removed, only marked Repaired).
	siteMachines []*Machine
	// scratch holds the day loop's pooled buffers (see tick.go).
	scratch dayScratch
	server  *report.Server
	cluster *sched.Cluster
	manager *quarantine.Manager
	allWork []corpus.Workload
	// Truth and detection ledgers.
	Triage TriageStats
	// quarantineDay maps core ref to the day it was isolated.
	quarantineDay map[sched.CoreRef]int
	repairQueue   []repairTicket
	// Repairs counts completed repairs.
	Repairs int
	day     int
	// userSeen dedups human investigations per machine: production
	// humans investigate a suspect machine once, not per incident.
	userSeen map[string]bool
	// Observability sinks (optional; see SetMetrics/SetTrace). Both are
	// written only from serial phases or via lock-free instruments, so
	// they never perturb the determinism contract.
	obs   *obs.Registry
	trace *obs.Trace
	// sigSeen and nominated dedup the lifecycle trace's first-signal and
	// suspect-nominated events per core; repairs reset them so replaced
	// silicon starts a fresh stream.
	sigSeen   map[sched.CoreRef]bool
	nominated map[sched.CoreRef]bool
	// kvdb workload state (see kvdb.go); empty unless Config.KVDB enables
	// the phase. kvSignals buffers the day's detection signals for batch
	// merge; kvAvoid caches the day's high-score suspect cores; kvNow
	// timestamps outgoing signals.
	kvStores  []*kvStore
	kvSignals []detect.Signal
	kvAvoid   map[sched.CoreRef]bool
	kvNow     simtime.Time
	// taskrun workload state (see taskrun.go); nil unless Config.TaskRun
	// enables the phase. trSignals buffers the day's escalated signals
	// for batch merge; trNow timestamps them.
	taskSup   *taskrun.Supervisor
	trSignals []detect.Signal
	trNow     simtime.Time
	// point is the fleet-wide operating point (see SetOperatingPoint);
	// materialized cores carry their own copy.
	point fault.OperatingPoint
	// life is the machine-lifecycle ledger (nil unless Config.Lifecycle
	// enables the control plane); lifePending buffers the day's ledger
	// transitions for DayStats; probation maps machine id → the day its
	// probation window expires. See lifecycle.go.
	life        *lifecycle.Manager
	lifePending lifeCounters
	probation   map[string]int
	// policy is the remediation policy consulted before machine-drain
	// convictions (nil unless the control plane is on); retests counts
	// in-place retests per machine for the escalating policy; poolTickets
	// tracks per-pool repair-ticket budgets for the swap policy (absent
	// key = unbudgeted); lifeAdmitted buffers machines whose deferred
	// drains the ledger admitted today, completed cluster-side in
	// lifeEndOfDay; lifeNotify mirrors ledger records to the configured
	// notifier. See lifecycle.go and internal/remediate.
	policy       remediate.Policy
	retests      map[string]int
	poolTickets  map[string]int
	lifeAdmitted []string
	lifeNotify   remediate.Notifier
	lifeTotals   LifeTotals
}

// New builds the fleet population deterministically from cfg.
func New(cfg Config) *Fleet {
	if cfg.Machines <= 0 || cfg.CoresPerMachine <= 0 {
		panic("fleet: machines and cores must be positive")
	}
	// The quarantine manager picks its confession screen from the
	// policy; default it to the fleet's (cheap) confession config so
	// daily suspect processing does not run full deep screens.
	if cfg.Policy.ConfessionConfig.Passes == 0 {
		cfg.Policy.ConfessionConfig = cfg.ConfessionConfig
	}
	if cfg.Policy.DeclineRetry == 0 {
		cfg.Policy.DeclineRetry = 30 * simtime.Day
	}
	f := &Fleet{
		cfg:           cfg,
		rng:           xrand.New(cfg.Seed),
		parallelism:   DefaultParallelism(),
		point:         fault.Nominal,
		server:        report.NewServer(cfg.CoresPerMachine),
		cluster:       sched.NewCluster(),
		allWork:       corpus.All(),
		quarantineDay: map[sched.CoreRef]int{},
		userSeen:      map[string]bool{},
		sigSeen:       map[sched.CoreRef]bool{},
		nominated:     map[sched.CoreRef]bool{},
	}
	f.manager = quarantine.NewManager(f.cluster, cfg.Policy)
	popRNG := f.rng.ForkString("population")
	skus := cfg.SKUs
	if len(skus) == 0 {
		skus = []SKU{{Name: "default", Fraction: 1, DefectMultiplier: 1}}
	}
	var fracTotal float64
	for _, k := range skus {
		fracTotal += k.Fraction
	}
	defectID := 0
	for i := 0; i < cfg.Machines; i++ {
		id := fmt.Sprintf("m%05d", i)
		sku := pickSKU(skus, fracTotal, popRNG)
		m := &Machine{
			ID: id, SKU: sku.Name,
			Defective: map[int]*fault.Core{}, quarantined: map[int]bool{},
		}
		if sku.PreAgeDays > 0 {
			m.install = -simtime.Time(popRNG.Float64()*sku.PreAgeDays) * simtime.Day
		}
		if _, err := f.cluster.AddMachine(id, cfg.CoresPerMachine); err != nil {
			panic(err)
		}
		// Expected defective cores per machine; Poisson-thin across cores.
		mult := sku.DefectMultiplier
		if mult == 0 {
			mult = 1
		}
		n := popRNG.Poisson(cfg.DefectsPerMachine * mult)
		if n > cfg.CoresPerMachine {
			n = cfg.CoresPerMachine
		}
		for j := 0; j < n; j++ {
			coreIdx := popRNG.Intn(cfg.CoresPerMachine)
			if _, dup := m.Defective[coreIdx]; dup {
				continue
			}
			defectID++
			d := fault.SampleDefect(fmt.Sprintf("D%04d", defectID), popRNG)
			coreName := fmt.Sprintf("%s/c%02d", id, coreIdx)
			core := fault.NewCore(coreName, popRNG, d)
			m.Defective[coreIdx] = core
			// FirstActive is wall-clock: pre-aged machines may carry
			// defects already past onset at simulation start.
			firstActive := m.install + d.Onset
			if firstActive < 0 {
				firstActive = 0
			}
			f.defects = append(f.defects, &DefectSite{
				Machine: id, Core: coreIdx, Site: core,
				FirstActive: firstActive,
			})
			f.siteMachines = append(f.siteMachines, m)
		}
		f.machines = append(f.machines, m)
	}
	// The control plane consumes no randomness; order relative to the
	// workload builds below is immaterial.
	f.buildLifecycle()
	// The opt-in workloads build last so their streams fork after the
	// population's; disabled (the default), they fork nothing.
	if cfg.KVDB.Stores > 0 {
		f.buildKVStores()
	}
	if cfg.TaskRun.Tasks > 0 {
		f.buildTaskRun()
	}
	return f
}

// Config returns the fleet's configuration.
func (f *Fleet) Config() Config { return f.cfg }

// SetMetrics routes the whole stack's telemetry — per-phase wall time,
// report-service counters, screening passes, quarantine ledger
// transitions — into one shared registry. Call before the first Step.
// Metrics never affect simulation results: nothing here consumes
// randomness or changes control flow.
func (f *Fleet) SetMetrics(reg *obs.Registry) {
	f.obs = reg
	f.server.SetMetrics(reg)
	f.manager.Metrics = reg
	for _, ks := range f.kvStores {
		ks.tdb.SetMetrics(reg)
	}
	if f.taskSup != nil {
		f.taskSup.SetMetrics(reg)
	}
}

// SetTrace attaches a CEE-lifecycle trace. Call before the first Step:
// the ground-truth defect population is emitted on day 0. All emission
// happens in the serial phases of a day, so the stream is bit-identical
// at any parallelism.
func (f *Fleet) SetTrace(tr *obs.Trace) { f.trace = tr }

// Trace returns the attached lifecycle trace (nil when tracing is off).
func (f *Fleet) Trace() *obs.Trace { return f.trace }

// Defects returns the ground-truth defect sites.
func (f *Fleet) Defects() []*DefectSite { return f.defects }

// Server returns the suspect-report service.
func (f *Fleet) Server() *report.Server { return f.server }

// Cluster returns the scheduler state.
func (f *Fleet) Cluster() *sched.Cluster { return f.cluster }

// Manager returns the quarantine manager.
func (f *Fleet) Manager() *quarantine.Manager { return f.manager }

// QuarantineDay returns the day a core was isolated, if it was.
func (f *Fleet) QuarantineDay(ref sched.CoreRef) (int, bool) {
	d, ok := f.quarantineDay[ref]
	return d, ok
}

// patternFraction returns the fraction of uniform operands matching the
// defect's pattern gate.
func patternFraction(d *fault.Defect) float64 {
	if d.PatternMask == 0 {
		return 1
	}
	return 1 / float64(uint64(1)<<uint(bits.OnesCount64(d.PatternMask)))
}

// opMix is the default production operation mix by class (fractions sum to
// 1): integer-heavy with meaningful copy/vector traffic, sparse crypto and
// atomics — a plausible datacenter profile.
var opMix = [fault.NumOpClasses]float64{
	fault.OpAdd:    0.22,
	fault.OpSub:    0.08,
	fault.OpMul:    0.07,
	fault.OpDiv:    0.01,
	fault.OpLogic:  0.10,
	fault.OpShift:  0.05,
	fault.OpCmp:    0.12,
	fault.OpFAdd:   0.04,
	fault.OpFMul:   0.04,
	fault.OpVec:    0.07,
	fault.OpCopy:   0.10,
	fault.OpCrypto: 0.02,
	fault.OpAtomic: 0.02,
	fault.OpLoad:   0.04,
	fault.OpStore:  0.02,
}

// dailyLambda computes the expected number of production corruptions per
// day for a defective core at its current age and operating point.
func (f *Fleet) dailyLambda(core *fault.Core) float64 {
	var lambda float64
	for i := range core.Defects {
		d := &core.Defects[i]
		rate := d.Rate(core.Point, core.Age)
		if rate <= 0 {
			continue
		}
		frac := patternFraction(d)
		for op := fault.OpClass(0); op < fault.NumOpClasses; op++ {
			if fault.UnitOf(op) != d.Unit {
				continue
			}
			lambda += rate * frac * f.cfg.DailyOpsPerCore * opMix[op]
		}
	}
	return lambda
}

// splitOutcomes distributes n corruption events over the §2 outcome
// classes using successive binomial thinning.
func (f *Fleet) splitOutcomes(n int64, rng *xrand.RNG) [numOutcomes]int64 {
	var out [numOutcomes]int64
	remaining := n
	probs := []struct {
		o Outcome
		p float64
	}{
		{OutcomeImmediate, f.cfg.PImmediateDetect},
		{OutcomeCrash, f.cfg.PCrash},
		{OutcomeMCE, f.cfg.PMCE},
		{OutcomeLate, f.cfg.PLateDetect},
	}
	left := 1.0
	for _, pr := range probs {
		if remaining <= 0 || left <= 0 {
			break
		}
		cond := pr.p / left
		if cond > 1 {
			cond = 1
		}
		var k int64
		if remaining > math.MaxInt32 {
			k = int64(float64(remaining) * cond)
		} else {
			k = int64(rng.Binomial(int(remaining), cond))
		}
		out[pr.o] = k
		remaining -= k
		left -= pr.p
	}
	out[OutcomeSilent] = remaining
	return out
}
