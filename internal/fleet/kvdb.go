package fleet

// The kvdb day phase: a handful of replicated key-value stores served
// through kvdb.TolerantDB, with replicas deliberately placed on the
// fleet's defective cores. This is the application-level detection loop of
// §6 running *inside* the simulation: checksum failures and divergence
// during serving become suspect-report signals, the tracker concentrates
// them, quarantine isolates the core, and the store's health-aware replica
// selection reroutes subsequent reads — client-visible errors drop to zero
// while the defect is still physically present.
//
// The phase is disabled by default (Config.KVDB.Stores == 0) and consumes
// no randomness when disabled, so existing experiment outputs are
// bit-identical. When enabled it runs serially (phase 3b), after the site
// merge and before noise, so its signals reach the tracker the same day
// and every stream it forks is ordered deterministically.

import (
	"fmt"

	"repro/internal/detect"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kvdb"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// KVDBConfig parameterizes the optional kvdb-workload day phase.
type KVDBConfig struct {
	// Stores is the number of simulated stores; 0 disables the phase.
	// Store k's first replica is served by defect site k (when one
	// exists), so the workload exercises real mercurial cores.
	Stores int
	// Replicas per store (default 3).
	Replicas int
	// Rows per store (default 16).
	Rows int
	// ReadsPerDay and WritesPerDay shape the daily workload per store
	// (defaults 64 and 4).
	ReadsPerDay, WritesPerDay int
	// ValueBytes is the row payload size (default 64).
	ValueBytes int
	// MaxRetries bounds per-read different-replica retries (default 2).
	MaxRetries int
	// AvoidScore is the tracker suspect score at which a replica's core
	// is deprioritized before any quarantine decision (default 6).
	AvoidScore float64
}

func (c KVDBConfig) withDefaults() KVDBConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Rows <= 0 {
		c.Rows = 16
	}
	if c.ReadsPerDay <= 0 {
		c.ReadsPerDay = 64
	}
	if c.WritesPerDay <= 0 {
		c.WritesPerDay = 4
	}
	if c.ValueBytes <= 0 {
		c.ValueBytes = 64
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.AvoidScore <= 0 {
		c.AvoidScore = 6
	}
	return c
}

// kvSlot is one replica's binding to a fleet core.
type kvSlot struct {
	replica *kvdb.Replica
	// site is the defect site serving this replica, nil for replicas on
	// healthy cores.
	site *DefectSite
	// rebound is set once repaired silicon replaced the serving core.
	rebound bool
}

// kvStore is one simulated store and its workload state.
type kvStore struct {
	id    string
	tdb   *kvdb.TolerantDB
	slots []kvSlot
	keys  []string
	// last is the previous day's cumulative stats, for daily deltas.
	last kvdb.TolerantStats
}

// buildKVStores constructs the stores during New. Only called when the
// phase is enabled, so the master RNG is untouched otherwise.
func (f *Fleet) buildKVStores() {
	kcfg := f.cfg.KVDB.withDefaults()
	krng := f.rng.ForkString("kvdb")
	for s := 0; s < kcfg.Stores; s++ {
		ks := &kvStore{id: fmt.Sprintf("kv%03d", s)}
		var replicas []*kvdb.Replica
		for r := 0; r < kcfg.Replicas; r++ {
			name := fmt.Sprintf("%s-r%d", ks.id, r)
			slot := kvSlot{}
			if r == 0 && s < len(f.defects) {
				// The interesting replica: served by a real mercurial core.
				site := f.defects[s]
				slot.site = site
				slot.replica = kvdb.NewReplica(name, engine.New(site.Site)).
					Locate(site.Machine, site.Core)
			} else {
				machine, core := f.kvHealthySlot(s, r)
				hc := fault.NewCore(name, krng.ForkString("healthy:"+name))
				slot.replica = kvdb.NewReplica(name, engine.New(hc)).
					Locate(machine, core)
			}
			ks.slots = append(ks.slots, slot)
			replicas = append(replicas, slot.replica)
		}
		db, err := kvdb.New(replicas...)
		if err != nil {
			panic(err)
		}
		ks.tdb = kvdb.NewTolerant(db, kvdb.TolerantConfig{
			MaxRetries: kcfg.MaxRetries,
			// Signals are buffered and batch-merged by the serial phase.
			Sink: func(sig detect.Signal) error {
				f.kvSignals = append(f.kvSignals, sig)
				return nil
			},
			Health:  f.kvHealth,
			Metrics: f.obs,
			Now:     func() simtime.Time { return f.kvNow },
		})
		// Seed the rows. Defective replicas may store corrupt bytes right
		// away — exactly the latent state tolerant reads must survive.
		seed := krng.ForkString("rows:" + ks.id)
		for i := 0; i < kcfg.Rows; i++ {
			key := fmt.Sprintf("row%04d", i)
			val := make([]byte, kcfg.ValueBytes)
			seed.Bytes(val)
			ks.tdb.Put(key, val)
			ks.keys = append(ks.keys, key)
		}
		f.kvStores = append(f.kvStores, ks)
	}
}

// kvHealthySlot deterministically picks a (machine, core) home for a
// healthy replica, skipping machines that carry any defective silicon so
// attribution can never finger a genuinely defective core by accident.
func (f *Fleet) kvHealthySlot(store, replica int) (string, int) {
	idx := (store*31 + replica*7) % len(f.machines)
	for tries := 0; tries < len(f.machines); tries++ {
		m := f.machines[(idx+tries)%len(f.machines)]
		if len(m.Defective) == 0 {
			return m.ID, replica % f.cfg.CoresPerMachine
		}
	}
	// Every machine defective (tiny test fleets): fall back to the pick.
	return f.machines[idx].ID, replica % f.cfg.CoresPerMachine
}

// kvHealth is the store's HealthFunc: a replica is deprioritized when its
// core is quarantined (or its machine drained), or when the tracker's
// current nominations score it above the avoid threshold (cached per day
// in kvAvoid). Only ever called from the serial kvdb phase.
func (f *Fleet) kvHealth(machine string, core int) bool {
	if machine == "" || core < 0 || machine[0] != 'm' {
		return false
	}
	m := f.machineByID(machine)
	if m == nil {
		return false
	}
	if m.drained || m.quarantined[core] {
		return true
	}
	ref := sched.CoreRef{Machine: machine, Core: core}
	if f.manager.Isolated(ref) {
		return true
	}
	return f.kvAvoid[ref]
}

// runKVDB is phase 3b: the day's store workload. Serial — every fork is
// ordered, every signal lands in the batch buffer in store order.
func (f *Fleet) runKVDB(dayRNG *xrand.RNG, now simtime.Time, st *DayStats) {
	kcfg := f.cfg.KVDB.withDefaults()
	f.kvNow = now

	// Refresh the pre-quarantine avoidance cache from today's nominations.
	f.kvAvoid = map[sched.CoreRef]bool{}
	for _, s := range f.server.Suspects() {
		if s.Core >= 0 && s.Score() >= kcfg.AvoidScore {
			f.kvAvoid[sched.CoreRef{Machine: s.Machine, Core: s.Core}] = true
		}
	}

	for _, ks := range f.kvStores {
		rng := dayRNG.ForkString("kvdb:" + ks.id)
		f.kvRebindRepaired(ks)
		for w := 0; w < kcfg.WritesPerDay; w++ {
			key := ks.keys[rng.Intn(len(ks.keys))]
			val := make([]byte, kcfg.ValueBytes)
			rng.Bytes(val)
			ks.tdb.Put(key, val)
		}
		for r := 0; r < kcfg.ReadsPerDay; r++ {
			key := ks.keys[rng.Intn(len(ks.keys))]
			_, _ = ks.tdb.Get(key)
		}
		cur := ks.tdb.Stats()
		st.KVReads += cur.Reads - ks.last.Reads
		st.KVRetries += cur.Retries - ks.last.Retries
		st.KVRepairs += cur.Repairs - ks.last.Repairs
		st.KVDegraded += cur.DegradedServes - ks.last.DegradedServes
		st.KVErrors += cur.Errors - ks.last.Errors
		ks.last = cur
	}

	// Merge the buffered detection signals exactly like site signals:
	// batch-ingested in deterministic order, traced, counted.
	if len(f.kvSignals) > 0 {
		st.AutoReports += len(f.kvSignals)
		f.server.IngestBatch(f.kvSignals)
		f.traceFirstSignals(f.kvSignals)
		f.kvSignals = f.kvSignals[:0]
	}
}

// kvRebindRepaired moves replicas off repaired defect sites onto fresh
// healthy silicon (the RMA loop replaced the core; the replica's stored
// rows — including any corrupt ones — survive and heal via read repair).
func (f *Fleet) kvRebindRepaired(ks *kvStore) {
	for i := range ks.slots {
		slot := &ks.slots[i]
		if slot.site == nil || slot.rebound || !slot.site.Repaired {
			continue
		}
		name := slot.replica.ID + "-repl"
		hc := fault.NewCore(name, f.rng.ForkString("kv-repair:"+name))
		slot.replica.Engine = engine.New(hc)
		slot.rebound = true
	}
}
