package fleet

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestKVDBPhaseMatchesSeedGolden pins the kvdb day phase bit-identical to
// the pre-sharding store: the FNV-64a fingerprint of the full DayStats
// stream was captured on the single-mutex TolerantDB immediately before
// the concurrent refactor, and must never drift — at any parallelism. The
// serial phase 3b drives the same engine-op order, replica-pick rotation,
// and signal-emission order through the sharded store, so detection
// outcomes (and every downstream quarantine decision) are unchanged.
func TestKVDBPhaseMatchesSeedGolden(t *testing.T) {
	golden := map[int]uint64{
		3: 0x7cfaa53146f11c3e,
		5: 0xf595d3ada6a7bf88,
	}
	for stores, want := range golden {
		for _, par := range []int{1, 4} {
			cfg := kvTestConfig()
			cfg.KVDB.Stores = stores
			r, err := NewRunner(cfg, WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			h := fnv.New64a()
			for _, d := range r.Run(8) {
				fmt.Fprintf(h, "%+v\n", d)
			}
			if got := h.Sum64(); got != want {
				t.Errorf("stores=%d par=%d: DayStats fingerprint %#x, want seed %#x",
					stores, par, got, want)
			}
		}
	}
}
