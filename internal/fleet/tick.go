package fleet

import (
	"math"
	"sort"

	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/quarantine"
	"repro/internal/sched"
	"repro/internal/screen"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// Each simulated day is a pipeline of phases. Phases that touch shared
// state (RNG forking, signal merge, quarantine decisions) run serially on
// the caller's goroutine in a fixed order; the two expensive phases — the
// per-defect production/screening work and the confession screens — are
// sharded across a worker pool. Every random stream a worker consumes is
// forked serially beforehand, one per work item, and every worker writes
// only to its own item's buffer, so the day's outcome is bit-identical at
// any worker count:
//
//	1 serial   shard plan: age cores, compute CEE intensity, fork
//	           per-site RNG streams in defect-site order
//	2 parallel per site: analytic production draws + online screening
//	           against the real corpus, buffered into siteResult
//	3 serial   single-writer merge of site buffers, in site order
//	4 serial   fleet-wide software-bug noise from the day stream
//	5 mixed    human investigations: dedup serially, confess in
//	           parallel, tally the triage ledger serially
//	6 mixed    suspect processing: precompute confessions in parallel,
//	           apply quarantine decisions serially
//	7 serial   repairs
//
// screenCorpusSize returns how many corpus workloads the automated
// screener has unlocked by the given day (§6's growing test corpus).
func (f *Fleet) screenCorpusSize(day int) int {
	n := f.cfg.InitialCorpus
	if n <= 0 {
		n = len(f.allWork)
	}
	if f.cfg.CorpusGrowEveryDays > 0 {
		n += day / f.cfg.CorpusGrowEveryDays
	}
	if n > len(f.allWork) {
		n = len(f.allWork)
	}
	return n
}

// siteJob is one defective core's shard of a day's work, with its
// pre-forked random streams.
type siteJob struct {
	site *DefectSite
	// lambda is the expected production corruption count; 0 means the
	// defect is latent or cannot fire at the operating point.
	lambda float64
	// doScreen marks the site for an online-screening tick today.
	doScreen bool
	// prodRNG drives the analytic outcome draws and signal attribution;
	// screenRNG drives the screening workload sampling. Both are reseeded
	// in place (ForkStringInto) serially during planning — inline values,
	// not pointers, so a reused jobs slice forks thousands of streams per
	// day without touching the heap. The streams are bit-identical to the
	// old allocating ForkString path.
	prodRNG, screenRNG xrand.RNG
}

// dayScratch holds the day loop's reusable buffers. Everything here is
// sized by the busiest day seen so far and reset (length, not capacity)
// at the start of each day, so the steady-state day loop allocates
// nothing for planning, per-site results, signal emission, or
// investigation queues. Single-goroutine ownership follows the Fleet's:
// workers only ever touch their own jobs/results elements.
type dayScratch struct {
	jobs    []siteJob
	results []siteResult
	invs    []invRequest
	// online is the day's online-screening harness, rebound (corpus
	// window, sharded counters) each day instead of reallocated.
	online screen.Online
}

// invRequest asks for a human investigation of (machine, core).
type invRequest struct {
	machine string
	core    int
}

// siteResult buffers everything one site's day produced. Workers fill it;
// the single-writer merge phase drains it in site order.
type siteResult struct {
	corruptions int64
	outcomes    [numOutcomes]int64
	active      bool
	// signals holds the rate-limited, attributed signals (production
	// outcomes and screening failures) in emission order.
	signals []detect.Signal
	// invs are the human investigations this site's incidents triggered.
	invs []invRequest
	// screenFails counts SigScreenFail entries within signals.
	screenFails int
}

// Step advances the simulation by one day and returns its telemetry.
func (f *Fleet) Step() DayStats {
	day := f.day
	f.day++
	now := simtime.Time(day) * simtime.Day
	st := DayStats{Day: day}
	dayRNG := f.rng.Fork(uint64(day) + 0x9e37)
	pc := f.newPhaseClock()

	// Phase 1: shard plan (serial). All forks happen here, in defect-site
	// order. Ground-truth trace events (defect population, activations) are
	// part of planning: they depend only on the defect sites, never on
	// worker output.
	f.traceDefects(day, now)
	size := f.screenCorpusSize(day)
	sc := &f.scratch
	online := &sc.online
	online.BudgetOps = f.cfg.ScreenOpsPerCoreDay
	online.Workloads = f.allWork[:size]
	online.Metrics = f.obs
	online.Bind(f.parallelism)
	sc.jobs = sc.jobs[:0]
	for i, site := range f.defects {
		m := f.siteMachines[i]
		// Repaired sites keep their ledger entry but the silicon is gone:
		// without this skip a repaired core's ghost kept corrupting (and
		// spamming signals a healthy-core confession could never confirm).
		if site.Repaired || m.drained || m.quarantined[site.Core] {
			continue
		}
		core := site.Site
		core.Age = now - m.install
		j := siteJob{site: site, lambda: f.dailyLambda(core)}
		j.doScreen = f.cfg.ScreenOpsPerCoreDay > 0 && core.Mercurial()
		if j.lambda <= 0 && !j.doScreen {
			continue
		}
		sc.jobs = append(sc.jobs, j)
		jp := &sc.jobs[len(sc.jobs)-1]
		dayRNG.ForkStringInto("prod:", core.ID, &jp.prodRNG)
		dayRNG.ForkStringInto("screen:", core.ID, &jp.screenRNG)
	}
	jobs := sc.jobs
	pc.mark("plan")

	// Phase 2: per-site work (parallel). Each worker owns its site's core
	// and its own result slot; nothing shared is written. Result buffers
	// (signal and investigation arenas included) are reused across days —
	// runSite resets lengths, capacity stays.
	if cap(sc.results) < len(jobs) {
		grown := make([]siteResult, len(jobs))
		copy(grown, sc.results)
		sc.results = grown
	}
	results := sc.results[:len(jobs)]
	parallel.ForEachWorker(f.parallelism, len(jobs), func(w, k int) {
		f.runSite(&jobs[k], &results[k], online, now, w)
	})
	pc.mark("sites")

	// Phase 3: single-writer merge, in site order. First-signal trace
	// events are emitted here, not in the workers, so the stream order is
	// the serial site order at any parallelism.
	invs := sc.invs[:0]
	for i := range results {
		r := &results[i]
		if r.active {
			st.ActiveDefects++
		}
		st.Corruptions += r.corruptions
		for o := Outcome(0); o < numOutcomes; o++ {
			st.ByOutcome[o] += r.outcomes[o]
		}
		st.ScreenDetections += r.screenFails
		st.AutoReports += len(r.signals)
		f.server.IngestBatch(r.signals)
		f.traceFirstSignals(r.signals)
		invs = append(invs, r.invs...)
	}
	pc.mark("merge")

	// Phase 3b: the tolerant kvdb workload (serial, optional). Runs after
	// the merge so its health view reflects yesterday's quarantines, and
	// before suspect processing so today's serving signals can nominate
	// today. Consumes randomness only when enabled.
	if len(f.kvStores) > 0 {
		f.runKVDB(dayRNG, now, &st)
		pc.mark("kvdb")
	}

	// Phase 3c: the checkpoint/retry batch workload (serial, optional).
	// Same position rationale as kvdb: after the merge so placement sees
	// yesterday's quarantines, before suspect processing so today's
	// escalations can nominate today.
	if f.taskSup != nil {
		f.runTaskRun(dayRNG, now, &st)
		pc.mark("taskrun")
	}

	// Phase 4: background software-bug noise over the whole fleet, spread
	// evenly — the signals the concentration test must reject.
	noiseLambda := f.cfg.SoftwareBugSignalsPerMachineDay * float64(len(f.machines))
	noise := dayRNG.Poisson(noiseLambda)
	for i := 0; i < noise; i++ {
		m := f.machines[dayRNG.Intn(len(f.machines))]
		if m.drained {
			continue
		}
		coreIdx := dayRNG.Intn(f.cfg.CoresPerMachine)
		sig := detect.Signal{
			Machine: m.ID, Core: coreIdx, Kind: detect.SigCrash,
			Time: now, Detail: "software bug",
		}
		f.server.Ingest(sig)
		f.traceFirstSignal(sig)
		st.AutoReports++
		// Some bug-noise also triggers human investigation — the false
		// accusations in §6's triage ledger.
		if dayRNG.Bernoulli(f.cfg.UserReportFraction) {
			invs = append(invs, invRequest{machine: m.ID, core: coreIdx})
		}
	}
	pc.mark("noise")

	// Phase 5: human triage — confession screens run in parallel, the
	// ledger is tallied serially. The investigation queue's storage is
	// day-scoped scratch; keep whatever capacity the appends grew.
	sc.invs = invs
	f.processInvestigations(invs, now, dayRNG, &st)
	pc.mark("triage")

	// Phase 6: suspect processing — concentration-tested nominations flow
	// into quarantine with confession testing against the real core.
	f.processSuspects(now, dayRNG, &st)
	pc.mark("suspects")

	// Phase 7: repairs — isolated hardware returns to service with healthy
	// replacement silicon after the RMA turnaround.
	f.processRepairs(day, &st)
	pc.mark("repairs")

	// Phase 7b: lifecycle probation expiry and day-counter flush (serial;
	// no-op when the control plane is disabled).
	f.lifeEndOfDay(day, &st)

	return st
}

// runSite performs one site's day: analytic production-workload CEE
// manifestation and, for mercurial cores, a real online-screening tick. It
// runs on worker goroutine w and must only touch the site's own core and
// its own result slot (f is read-only here). r is scratch reused across
// days: lengths reset here, capacities persist as the signal/investigation
// arenas.
func (f *Fleet) runSite(j *siteJob, r *siteResult, online *screen.Online, now simtime.Time, w int) {
	r.corruptions = 0
	r.outcomes = [numOutcomes]int64{}
	r.active = false
	r.signals = r.signals[:0]
	r.invs = r.invs[:0]
	r.screenFails = 0
	site := j.site
	if j.lambda > 0 {
		r.active = true
		lambda := j.lambda
		// Cap: a core cannot corrupt more ops than it executes.
		if max := f.cfg.DailyOpsPerCore; lambda > max {
			lambda = max
		}
		var n int64
		if lambda > 1e6 {
			// Deterministic high-rate defects: Poisson ≈ mean.
			n = int64(lambda)
		} else {
			n = int64(j.prodRNG.Poisson(lambda))
		}
		if n > 0 {
			r.corruptions = n
			r.outcomes = f.splitOutcomes(n, &j.prodRNG)
			f.emitSignals(site, r, now, &j.prodRNG)
		}
	}
	if j.doScreen {
		// Online screening: real corpus execution against the defective
		// core (healthy cores cannot fail self-checks, so only their cost
		// would matter; it is accounted implicitly by the budget).
		found, _ := online.TickOn(site.Site, &j.screenRNG, w)
		for range found {
			r.signals = append(r.signals, detect.Signal{
				Machine: site.Machine, Core: site.Core,
				Kind: detect.SigScreenFail, Time: now,
			})
			r.screenFails++
		}
	}
}

// emitSignals converts one site's daily outcomes into rate-limited signal
// and investigation buffers.
func (f *Fleet) emitSignals(site *DefectSite, r *siteResult, now simtime.Time, rng *xrand.RNG) {
	budget := f.cfg.MaxSignalsPerCoreDay
	if budget <= 0 {
		budget = 10
	}
	emit := func(kind detect.SignalKind, count int64) {
		for i := int64(0); i < count && budget > 0; i++ {
			budget--
			core := site.Core
			if !rng.Bernoulli(f.cfg.PCoreAttribution) {
				core = -1 // machine-level attribution only
			}
			r.signals = append(r.signals, detect.Signal{
				Machine: site.Machine, Core: core, Kind: kind, Time: now,
			})
		}
	}
	emit(detect.SigAppError, r.outcomes[OutcomeImmediate])
	emit(detect.SigCrash, r.outcomes[OutcomeCrash])
	emit(detect.SigMCE, r.outcomes[OutcomeMCE])
	emit(detect.SigAppError, r.outcomes[OutcomeLate])
	// Detected incidents spawn human investigations at the configured
	// rate; humans usually finger the right core, sometimes a neighbour.
	detected := r.outcomes[OutcomeImmediate] + r.outcomes[OutcomeCrash] + r.outcomes[OutcomeLate]
	investigations := rng.Binomial(int(min64(detected, 50)), f.cfg.UserReportFraction)
	for i := 0; i < investigations; i++ {
		coreIdx := site.Core
		if !rng.Bernoulli(f.cfg.PCoreAttribution) {
			coreIdx = rng.Intn(f.cfg.CoresPerMachine) // wrong core fingered
		}
		r.invs = append(r.invs, invRequest{machine: site.Machine, core: coreIdx})
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// forceRealConfessions disables the healthy-core confession fast path so
// the equivalence regression test can prove the skip is behavior-
// identical. Never set outside tests.
var forceRealConfessions = false

// confessOrSkip runs a confession screen, short-circuiting provably clean
// ones: a core with no defects cannot fail a self-check, so Confess would
// burn the full multi-million-op budget to report Confirmed=false with an
// empty report — which is exactly what this returns for free. The
// profiling that motivated this found ~90% of day-loop time inside
// confession screens of healthy cores fingered by software-bug noise.
//
// Determinism: the skipped screen's RNG stream is an independent fork
// consumed by nobody else, so not draining it cannot shift any other
// stream; downstream consumers (triage tally, quarantine manager, trace)
// read only Confirmed and the report's detections — both identical to a
// really-executed healthy screen.
func confessOrSkip(fc *fault.Core, cfg screen.Config, rng *xrand.RNG) detect.Confession {
	if fc.Healthy() && !forceRealConfessions {
		return detect.Confession{CoreID: fc.ID, Report: screen.Report{CoreID: fc.ID}}
	}
	return detect.Confess(fc, cfg, rng)
}

// confessJob is one deferred confession screen, with the stream it must
// consume pre-forked.
type confessJob struct {
	machine        string
	core           int
	truthDefective bool
	fc             *fault.Core
	rng            *xrand.RNG
	conf           detect.Confession
}

// processInvestigations records user reports, dedups human investigations
// (production humans investigate a suspect machine once, not per
// incident), extracts confessions via further testing (§6) in parallel,
// and tallies the triage ledger in request order.
func (f *Fleet) processInvestigations(invs []invRequest, now simtime.Time, dayRNG *xrand.RNG, st *DayStats) {
	var jobs []confessJob
	for _, iv := range invs {
		sig := detect.Signal{
			Machine: iv.machine, Core: iv.core, Kind: detect.SigUserReport, Time: now,
		}
		f.server.Ingest(sig)
		f.traceFirstSignal(sig)
		st.UserReports++
		if f.userSeen[iv.machine] {
			continue
		}
		f.userSeen[iv.machine] = true
		f.Triage.Investigated++
		ref := sched.CoreRef{Machine: iv.machine, Core: iv.core}
		jobs = append(jobs, confessJob{
			machine:        iv.machine,
			core:           iv.core,
			truthDefective: f.machineByID(iv.machine).Defective[iv.core] != nil,
			fc:             f.coreFor(ref), // may fork f.rng: serial only
			rng:            dayRNG.ForkString("confess:" + ref.String()),
		})
	}
	cfg := f.confessionConfig()
	// The cores are distinct (one investigation per machine per run), so
	// the screens shard cleanly.
	parallel.ForEach(f.parallelism, len(jobs), func(k int) {
		jobs[k].conf = confessOrSkip(jobs[k].fc, cfg, jobs[k].rng)
	})
	for i := range jobs {
		f.traceConfession(jobs[i].machine, jobs[i].core, jobs[i].conf.Confirmed, "triage", now)
		switch {
		case jobs[i].conf.Confirmed:
			f.Triage.Confirmed++
		case jobs[i].truthDefective:
			f.Triage.RealNotReproduced++
		default:
			f.Triage.FalseAccusations++
		}
	}
}

// coreFor returns the materialized defective core at ref, or a fresh
// healthy core (healthy cores are not stored). It forks the fleet's master
// stream for healthy cores and must only be called from the serial phases.
func (f *Fleet) coreFor(ref sched.CoreRef) *fault.Core {
	m := f.machineByID(ref.Machine)
	if core, ok := m.Defective[ref.Core]; ok {
		return core
	}
	return fault.NewCore(ref.String(), f.rng.ForkString("healthy:"+ref.String()))
}

func (f *Fleet) confessionConfig() screen.Config {
	cfg := f.cfg.ConfessionConfig
	if cfg.Passes == 0 {
		cfg = screen.NewConfig(screen.WithPasses(60), screen.WithSweep(2, 1, 2),
			screen.WithMaxOps(15_000_000))
	}
	if cfg.Metrics == nil {
		cfg.Metrics = f.obs
	}
	return cfg
}

// processSuspects runs the tracker's nominations through the quarantine
// manager, binding confessions to the real cores. The isolation decisions
// are inherently serial (each may drain a machine or shift cluster
// capacity), but the expensive part — the deep confession screens — is
// precomputed in parallel for every suspect the manager would screen, each
// against its own core with its own pre-forked stream.
func (f *Fleet) processSuspects(now simtime.Time, dayRNG *xrand.RNG, st *DayStats) {
	suspects := f.server.Suspects()
	if len(suspects) == 0 {
		return
	}
	f.traceNominations(suspects, now)
	if f.life != nil {
		// Ledger first contact: nominated machines turn suspect (no-op for
		// machines already being acted on). Suspect order is deterministic,
		// so the ledger's transition sequence is too.
		for _, s := range suspects {
			f.life.MarkSuspect(s.Machine, f.day-1, "concentration nomination")
		}
	}
	jobs := make([]confessJob, len(suspects))
	var runnable []int
	for i, s := range suspects {
		ref := sched.CoreRef{Machine: s.Machine, Core: s.Core}
		jobs[i].machine, jobs[i].core = s.Machine, s.Core
		// Fork unconditionally, in suspect order, so the stream a suspect
		// consumes does not depend on its neighbours' gate outcomes.
		jobs[i].rng = dayRNG.ForkString("suspect:" + ref.String())
		if !f.manager.NeedsConfession(s, now) {
			continue
		}
		jobs[i].fc = f.coreFor(ref)
		runnable = append(runnable, i)
	}
	cfg := f.manager.ConfessionScreenConfig()
	parallel.ForEach(f.parallelism, len(runnable), func(k int) {
		j := &jobs[runnable[k]]
		j.conf = confessOrSkip(j.fc, cfg, j.rng)
	})
	// Precomputed confessions enter the trace here, serially, in suspect
	// order — not from the worker goroutines above.
	for _, k := range runnable {
		j := &jobs[k]
		f.traceConfession(j.machine, j.core, j.conf.Confirmed, "suspect", now)
	}
	for i, s := range suspects {
		ref := sched.CoreRef{Machine: s.Machine, Core: s.Core}
		if f.manager.Isolated(ref) {
			continue
		}
		// Remediation-policy gate (machine-drain mode with the control
		// plane on): the policy may retest the suspect in place instead of
		// convicting it, swap silicon instead of queueing a repair, or the
		// pool's drain budget may defer the conviction entirely. Confession
		// streams were forked above for every suspect unconditionally, so
		// skipping Handle here consumes no one else's randomness.
		swapWanted := false
		if f.policy != nil && f.cfg.Policy.Mode == quarantine.MachineDrain {
			proceed, swap := f.remediateGate(s.Machine, s.Score(), f.day-1)
			if !proceed {
				continue
			}
			swapWanted = swap
		}
		j := &jobs[i]
		rec, err := f.manager.Handle(s, now, func(cfg screen.Config) detect.Confession {
			if j.fc == nil {
				// The precompute gate said no confession would be needed
				// but the manager asked anyway (e.g. state changed while
				// handling an earlier suspect): run it now, on the stream
				// reserved for this suspect.
				conf := confessOrSkip(f.coreFor(ref), cfg, j.rng)
				f.traceConfession(j.machine, j.core, conf.Confirmed, "suspect", now)
				return conf
			}
			return j.conf
		})
		if err != nil || rec == nil {
			continue
		}
		st.NewQuarantines++
		f.traceQuarantine(s.Machine, s.Core, rec.Mode.String(), now)
		f.quarantineDay[ref] = f.day - 1
		m := f.machineByID(s.Machine)
		if rec.Mode == quarantine.MachineDrain {
			m.drained = true
			f.server.Forget(s.Machine)
			// A recidivist conviction escalates to permanent removal in the
			// lifecycle ledger: the machine stays drained, no repair ticket.
			permanent := f.lifeConvict(s.Machine, f.day-1)
			if swapWanted && !permanent {
				// Swap policy: replace the silicon from spares the same day
				// instead of holding capacity through repair turnaround.
				f.completeSwap(s.Machine, f.day-1, st)
			} else if f.cfg.RepairAfterDays > 0 && !permanent {
				f.poolTicketConsume(s.Machine)
				f.repairQueue = append(f.repairQueue, repairTicket{
					machine: s.Machine, core: -1,
					dueDay: f.day - 1 + f.cfg.RepairAfterDays,
				})
			}
		} else {
			m.quarantined[s.Core] = true
			f.server.ForgetCore(s.Machine, s.Core)
			if f.cfg.RepairAfterDays > 0 {
				f.repairQueue = append(f.repairQueue, repairTicket{
					machine: s.Machine, core: s.Core,
					dueDay: f.day - 1 + f.cfg.RepairAfterDays,
				})
			}
		}
	}
}

// processRepairs completes due repair tickets: the defective silicon is
// replaced, capacity is restored, and the (new) core is eligible for
// placement again.
func (f *Fleet) processRepairs(day int, st *DayStats) {
	if f.cfg.RepairAfterDays <= 0 {
		return
	}
	keep := f.repairQueue[:0]
	for _, tk := range f.repairQueue {
		if tk.dueDay > day {
			keep = append(keep, tk)
			continue
		}
		m := f.machineByID(tk.machine)
		if tk.core < 0 {
			// Whole-machine drain: replace every defective core and
			// undrain. Defective-core indices are visited in ascending
			// order so the trace (and the manager ledger it mirrors) does
			// not depend on map iteration.
			for _, idx := range sortedDefectiveCores(m) {
				f.retireDefect(tk.machine, idx)
				ref := sched.CoreRef{Machine: tk.machine, Core: idx}
				if f.manager.Isolated(ref) {
					f.traceRelease(ref, day)
				}
				f.manager.Release(ref)
				f.traceRepair(tk.machine, idx, day)
			}
			m.drained = false
			if err := f.cluster.Undrain(tk.machine); err == nil {
				f.Repairs++
				st.RepairsDone++
				f.traceRepair(tk.machine, -1, day)
			}
			f.lifeRepairComplete(tk.machine, day)
			f.poolTicketRestore(tk.machine)
			continue
		}
		f.retireDefect(tk.machine, tk.core)
		delete(m.quarantined, tk.core)
		ref := sched.CoreRef{Machine: tk.machine, Core: tk.core}
		if f.manager.Isolated(ref) {
			f.traceRelease(ref, day)
		}
		f.manager.Release(ref)
		if _, err := f.cluster.SetCoreState(ref, sched.CoreHealthy, nil); err == nil {
			f.Repairs++
			st.RepairsDone++
			f.traceRepair(tk.machine, tk.core, day)
		}
		f.lifeCoreRepaired(tk.machine, day)
	}
	f.repairQueue = keep
}

// sortedDefectiveCores returns the machine's defective core indices in
// ascending order.
func sortedDefectiveCores(m *Machine) []int {
	idxs := make([]int, 0, len(m.Defective))
	for idx := range m.Defective {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs
}

// retireDefect marks the defect site at (machine, core) repaired and
// removes the defective silicon from the machine.
func (f *Fleet) retireDefect(machine string, core int) {
	m := f.machineByID(machine)
	if _, ok := m.Defective[core]; !ok {
		return
	}
	delete(m.Defective, core)
	for _, site := range f.defects {
		if site.Machine == machine && site.Core == core {
			site.Repaired = true
		}
	}
}

// machineByID is O(1) via index arithmetic: IDs are dense ("m%05d").
func (f *Fleet) machineByID(id string) *Machine {
	// Parse the numeric suffix without fmt.Sscanf for speed.
	n := 0
	for i := 1; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return f.machines[n]
}

// Run advances the simulation the given number of days and returns the
// daily series. It is the compatibility entry point; new code should use
// NewRunner, which adds parallelism and observer options.
func (f *Fleet) Run(days int) []DayStats {
	out := make([]DayStats, 0, days)
	for i := 0; i < days; i++ {
		out = append(out, f.Step())
	}
	return out
}

// WeeklyRate aggregates a daily series into per-machine weekly report
// rates — the two curves of Fig. 1.
type WeeklyRate struct {
	Week int
	// User and Auto are reports per machine per week.
	User, Auto float64
}

// WeeklyRates computes Fig. 1's series from a daily run.
func WeeklyRates(days []DayStats, machines int) []WeeklyRate {
	if machines <= 0 {
		return nil
	}
	var out []WeeklyRate
	for start := 0; start < len(days); start += 7 {
		end := start + 7
		if end > len(days) {
			end = len(days)
		}
		var user, auto int
		for _, d := range days[start:end] {
			user += d.UserReports
			auto += d.AutoReports
		}
		out = append(out, WeeklyRate{
			Week: start / 7,
			User: float64(user) / float64(machines),
			Auto: float64(auto) / float64(machines),
		})
	}
	return out
}

// Normalize scales both series so the first non-zero auto rate is 1 —
// Fig. 1 is "normalized to an arbitrary baseline".
func Normalize(rates []WeeklyRate) []WeeklyRate {
	var base float64
	for _, r := range rates {
		if r.Auto > 0 {
			base = r.Auto
			break
		}
	}
	if base == 0 {
		return rates
	}
	out := make([]WeeklyRate, len(rates))
	for i, r := range rates {
		out[i] = WeeklyRate{Week: r.Week, User: r.User / base, Auto: r.Auto / base}
	}
	return out
}

// TrendSlope fits a least-squares line to the auto series and returns its
// slope per week — the "gradually increasing" claim of Fig. 1 is slope>0.
func TrendSlope(rates []WeeklyRate, pick func(WeeklyRate) float64) float64 {
	n := float64(len(rates))
	if n < 2 {
		return 0
	}
	var sx, sy, sxy, sxx float64
	for _, r := range rates {
		x := float64(r.Week)
		y := pick(r)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
	}
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-12 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
