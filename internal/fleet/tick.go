package fleet

import (
	"math"

	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/quarantine"
	"repro/internal/sched"
	"repro/internal/screen"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// screenCorpusSize returns how many corpus workloads the automated
// screener has unlocked by the given day (§6's growing test corpus).
func (f *Fleet) screenCorpusSize(day int) int {
	n := f.cfg.InitialCorpus
	if n <= 0 {
		n = len(f.allWork)
	}
	if f.cfg.CorpusGrowEveryDays > 0 {
		n += day / f.cfg.CorpusGrowEveryDays
	}
	if n > len(f.allWork) {
		n = len(f.allWork)
	}
	return n
}

// Step advances the simulation by one day and returns its telemetry.
func (f *Fleet) Step() DayStats {
	day := f.day
	f.day++
	now := simtime.Time(day) * simtime.Day
	st := DayStats{Day: day}
	dayRNG := f.rng.Fork(uint64(day) + 0x9e37)

	// 1. Production workload on defective cores: analytic incident
	// generation plus signal emission.
	for _, site := range f.defects {
		m := f.machineByID(site.Machine)
		if m.drained || m.quarantined[site.Core] {
			continue
		}
		core := site.Site
		core.Age = now - m.install
		lambda := f.dailyLambda(core)
		if lambda <= 0 {
			continue
		}
		st.ActiveDefects++
		// Cap: a core cannot corrupt more ops than it executes.
		if max := f.cfg.DailyOpsPerCore; lambda > max {
			lambda = max
		}
		var n int64
		if lambda > 1e6 {
			// Deterministic high-rate defects: Poisson ≈ mean.
			n = int64(lambda)
		} else {
			n = int64(dayRNG.Poisson(lambda))
		}
		if n == 0 {
			continue
		}
		st.Corruptions += n
		outcomes := f.splitOutcomes(n, dayRNG)
		for o := Outcome(0); o < numOutcomes; o++ {
			st.ByOutcome[o] += outcomes[o]
		}
		f.emitSignals(site, outcomes, now, dayRNG, &st)
	}

	// 2. Background software-bug noise over the whole fleet, spread
	// evenly — the signals the concentration test must reject.
	noiseLambda := f.cfg.SoftwareBugSignalsPerMachineDay * float64(len(f.machines))
	noise := dayRNG.Poisson(noiseLambda)
	for i := 0; i < noise; i++ {
		m := f.machines[dayRNG.Intn(len(f.machines))]
		if m.drained {
			continue
		}
		coreIdx := dayRNG.Intn(f.cfg.CoresPerMachine)
		f.server.Ingest(detect.Signal{
			Machine: m.ID, Core: coreIdx, Kind: detect.SigCrash,
			Time: now, Detail: "software bug",
		})
		st.AutoReports++
		// Some bug-noise also triggers human investigation — the false
		// accusations in §6's triage ledger.
		if dayRNG.Bernoulli(f.cfg.UserReportFraction) {
			f.fileUserReport(m.ID, coreIdx, now, &st)
		}
	}

	// 3. Online screening: real corpus execution against defective
	// cores (healthy cores cannot fail self-checks, so only their cost
	// would matter; it is accounted implicitly by the budget).
	f.runScreening(day, now, dayRNG, &st)

	// 4. Suspect processing: concentration-tested nominations flow into
	// quarantine with confession testing against the real core.
	f.processSuspects(now, dayRNG, &st)

	// 5. Repairs: isolated hardware returns to service with healthy
	// replacement silicon after the RMA turnaround.
	f.processRepairs(day, &st)

	return st
}

// processRepairs completes due repair tickets: the defective silicon is
// replaced, capacity is restored, and the (new) core is eligible for
// placement again.
func (f *Fleet) processRepairs(day int, st *DayStats) {
	if f.cfg.RepairAfterDays <= 0 {
		return
	}
	keep := f.repairQueue[:0]
	for _, tk := range f.repairQueue {
		if tk.dueDay > day {
			keep = append(keep, tk)
			continue
		}
		m := f.machineByID(tk.machine)
		if tk.core < 0 {
			// Whole-machine drain: replace every defective core and
			// undrain.
			for idx := range m.Defective {
				f.retireDefect(tk.machine, idx)
				f.manager.Release(sched.CoreRef{Machine: tk.machine, Core: idx})
			}
			m.drained = false
			if err := f.cluster.Undrain(tk.machine); err == nil {
				f.Repairs++
				st.RepairsDone++
			}
			continue
		}
		f.retireDefect(tk.machine, tk.core)
		delete(m.quarantined, tk.core)
		ref := sched.CoreRef{Machine: tk.machine, Core: tk.core}
		f.manager.Release(ref)
		if _, err := f.cluster.SetCoreState(ref, sched.CoreHealthy, nil); err == nil {
			f.Repairs++
			st.RepairsDone++
		}
	}
	f.repairQueue = keep
}

// retireDefect marks the defect site at (machine, core) repaired and
// removes the defective silicon from the machine.
func (f *Fleet) retireDefect(machine string, core int) {
	m := f.machineByID(machine)
	if _, ok := m.Defective[core]; !ok {
		return
	}
	delete(m.Defective, core)
	for _, site := range f.defects {
		if site.Machine == machine && site.Core == core {
			site.Repaired = true
		}
	}
}

// machineByID is O(1) via index arithmetic: IDs are dense ("m%05d").
func (f *Fleet) machineByID(id string) *Machine {
	// Parse the numeric suffix without fmt.Sscanf for speed.
	n := 0
	for i := 1; i < len(id); i++ {
		n = n*10 + int(id[i]-'0')
	}
	return f.machines[n]
}

// emitSignals converts one core's daily outcomes into rate-limited signals
// to the report service.
func (f *Fleet) emitSignals(site *DefectSite, outcomes [numOutcomes]int64, now simtime.Time, rng *xrand.RNG, st *DayStats) {
	budget := f.cfg.MaxSignalsPerCoreDay
	if budget <= 0 {
		budget = 10
	}
	emit := func(kind detect.SignalKind, count int64) {
		for i := int64(0); i < count && budget > 0; i++ {
			budget--
			core := site.Core
			if !rng.Bernoulli(f.cfg.PCoreAttribution) {
				core = -1 // machine-level attribution only
			}
			f.server.Ingest(detect.Signal{
				Machine: site.Machine, Core: core, Kind: kind, Time: now,
			})
			st.AutoReports++
		}
	}
	emit(detect.SigAppError, outcomes[OutcomeImmediate])
	emit(detect.SigCrash, outcomes[OutcomeCrash])
	emit(detect.SigMCE, outcomes[OutcomeMCE])
	emit(detect.SigAppError, outcomes[OutcomeLate])
	// Detected incidents spawn human investigations at the configured
	// rate; humans usually finger the right core, sometimes a neighbour.
	detected := outcomes[OutcomeImmediate] + outcomes[OutcomeCrash] + outcomes[OutcomeLate]
	investigations := rng.Binomial(int(min64(detected, 50)), f.cfg.UserReportFraction)
	for i := 0; i < investigations; i++ {
		coreIdx := site.Core
		if !rng.Bernoulli(f.cfg.PCoreAttribution) {
			coreIdx = rng.Intn(f.cfg.CoresPerMachine) // wrong core fingered
		}
		f.fileUserReport(site.Machine, coreIdx, now, st)
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// fileUserReport records a human-filed suspicion and queues it for triage.
// Each suspect machine is investigated at most once — humans triage the
// incident stream per machine, not per event.
func (f *Fleet) fileUserReport(machine string, coreIdx int, now simtime.Time, st *DayStats) {
	f.server.Ingest(detect.Signal{
		Machine: machine, Core: coreIdx, Kind: detect.SigUserReport, Time: now,
	})
	st.UserReports++
	if f.userSeen[machine] {
		return
	}
	f.userSeen[machine] = true
	// Human triage: extract a confession via further testing (§6).
	f.Triage.Investigated++
	ref := sched.CoreRef{Machine: machine, Core: coreIdx}
	core := f.coreFor(ref)
	truthDefective := f.machineByID(machine).Defective[coreIdx] != nil
	conf := detect.Confess(core, f.confessionConfig(), f.rng.Fork(uint64(len(f.userSeen))))
	switch {
	case conf.Confirmed:
		f.Triage.Confirmed++
	case truthDefective:
		f.Triage.RealNotReproduced++
	default:
		f.Triage.FalseAccusations++
	}
}

// coreFor returns the materialized defective core at ref, or a fresh
// healthy core (healthy cores are not stored).
func (f *Fleet) coreFor(ref sched.CoreRef) *fault.Core {
	m := f.machineByID(ref.Machine)
	if core, ok := m.Defective[ref.Core]; ok {
		return core
	}
	return fault.NewCore(ref.String(), f.rng.ForkString("healthy:"+ref.String()))
}

func (f *Fleet) confessionConfig() screen.Config {
	cfg := f.cfg.ConfessionConfig
	if cfg.Passes == 0 {
		cfg = screen.Config{Passes: 60, Points: screen.SweepPoints(2, 1, 2),
			StopOnDetect: true, MaxOps: 15_000_000}
	}
	return cfg
}

// runScreening executes real online screening against every active
// defective core with the day's unlocked corpus subset.
func (f *Fleet) runScreening(day int, now simtime.Time, rng *xrand.RNG, st *DayStats) {
	if f.cfg.ScreenOpsPerCoreDay == 0 {
		return // screening disabled: detection relies on incident signals only
	}
	size := f.screenCorpusSize(day)
	ws := f.allWork[:size]
	online := &screen.Online{BudgetOps: f.cfg.ScreenOpsPerCoreDay, Workloads: ws}
	for _, site := range f.defects {
		m := f.machineByID(site.Machine)
		if m.drained || m.quarantined[site.Core] {
			continue
		}
		core := site.Site
		core.Age = now - m.install
		if !core.Mercurial() {
			continue // latent: screening cannot catch it yet
		}
		found, _ := online.Tick(core, rng.ForkString("screen:"+core.ID))
		for range found {
			f.server.Ingest(detect.Signal{
				Machine: site.Machine, Core: site.Core,
				Kind: detect.SigScreenFail, Time: now,
			})
			st.ScreenDetections++
			st.AutoReports++
		}
	}
}

// processSuspects runs the tracker's nominations through the quarantine
// manager, binding confessions to the real cores.
func (f *Fleet) processSuspects(now simtime.Time, rng *xrand.RNG, st *DayStats) {
	for _, s := range f.server.Suspects() {
		ref := sched.CoreRef{Machine: s.Machine, Core: s.Core}
		if f.manager.Isolated(ref) {
			continue
		}
		core := f.coreFor(ref)
		seed := rng.Uint64()
		rec, err := f.manager.Handle(s, now, func(cfg screen.Config) detect.Confession {
			return detect.Confess(core, cfg, xrand.New(seed))
		})
		if err != nil || rec == nil {
			continue
		}
		st.NewQuarantines++
		f.quarantineDay[ref] = f.day - 1
		m := f.machineByID(s.Machine)
		if rec.Mode == quarantine.MachineDrain {
			m.drained = true
			f.server.Forget(s.Machine)
			if f.cfg.RepairAfterDays > 0 {
				f.repairQueue = append(f.repairQueue, repairTicket{
					machine: s.Machine, core: -1,
					dueDay: f.day - 1 + f.cfg.RepairAfterDays,
				})
			}
		} else {
			m.quarantined[s.Core] = true
			f.server.ForgetCore(s.Machine, s.Core)
			if f.cfg.RepairAfterDays > 0 {
				f.repairQueue = append(f.repairQueue, repairTicket{
					machine: s.Machine, core: s.Core,
					dueDay: f.day - 1 + f.cfg.RepairAfterDays,
				})
			}
		}
	}
}

// Run advances the simulation the given number of days and returns the
// daily series.
func (f *Fleet) Run(days int) []DayStats {
	out := make([]DayStats, 0, days)
	for i := 0; i < days; i++ {
		out = append(out, f.Step())
	}
	return out
}

// WeeklyRates aggregates a daily series into per-machine weekly report
// rates — the two curves of Fig. 1.
type WeeklyRate struct {
	Week int
	// User and Auto are reports per machine per week.
	User, Auto float64
}

// WeeklyRates computes Fig. 1's series from a daily run.
func WeeklyRates(days []DayStats, machines int) []WeeklyRate {
	if machines <= 0 {
		return nil
	}
	var out []WeeklyRate
	for start := 0; start < len(days); start += 7 {
		end := start + 7
		if end > len(days) {
			end = len(days)
		}
		var user, auto int
		for _, d := range days[start:end] {
			user += d.UserReports
			auto += d.AutoReports
		}
		out = append(out, WeeklyRate{
			Week: start / 7,
			User: float64(user) / float64(machines),
			Auto: float64(auto) / float64(machines),
		})
	}
	return out
}

// Normalize scales both series so the first non-zero auto rate is 1 —
// Fig. 1 is "normalized to an arbitrary baseline".
func Normalize(rates []WeeklyRate) []WeeklyRate {
	var base float64
	for _, r := range rates {
		if r.Auto > 0 {
			base = r.Auto
			break
		}
	}
	if base == 0 {
		return rates
	}
	out := make([]WeeklyRate, len(rates))
	for i, r := range rates {
		out[i] = WeeklyRate{Week: r.Week, User: r.User / base, Auto: r.Auto / base}
	}
	return out
}

// TrendSlope fits a least-squares line to the auto series and returns its
// slope per week — the "gradually increasing" claim of Fig. 1 is slope>0.
func TrendSlope(rates []WeeklyRate, pick func(WeeklyRate) float64) float64 {
	n := float64(len(rates))
	if n < 2 {
		return 0
	}
	var sx, sy, sxy, sxx float64
	for _, r := range rates {
		x := float64(r.Week)
		y := pick(r)
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
	}
	denom := n*sxx - sx*sx
	if math.Abs(denom) < 1e-12 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
