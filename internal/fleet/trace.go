package fleet

import (
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/simtime"
)

// The CEE lifecycle trace answers §4's open question — "what happened
// between defect activation and quarantine" — while a run is in flight.
// Every emission below happens in a serial phase of the day (planning,
// merge, noise, triage, suspect processing, repairs), so the stream
// order is deterministic and bit-identical at any worker count. All
// helpers are no-ops when no trace is attached.

// traceDefects emits the ground-truth side of the stream: the defect
// population on day 0 and each defect's activation on the day its install
// age crosses onset. Activation is emitted for every site regardless of
// quarantine state — ground truth does not stop because the core was
// isolated — which is what lets metrics.DetectionFromTrace reproduce the
// ground-truth PastOnset count exactly.
func (f *Fleet) traceDefects(day int, now simtime.Time) {
	if f.trace == nil {
		return
	}
	if day == 0 {
		for _, site := range f.defects {
			f.trace.Emit(obs.TraceEvent{
				Day: 0, Machine: site.Machine, Core: site.Core,
				Event:          obs.EventDefectPresent,
				FirstActiveSec: float64(site.FirstActive),
			})
		}
	}
	for _, site := range f.defects {
		// "<= now+Day" means "activates during today": a run of D days
		// traces exactly the defects with FirstActive <= D*Day, matching
		// the ground-truth PastOnset predicate.
		if site.activationTraced || site.FirstActive > now+simtime.Day {
			continue
		}
		site.activationTraced = true
		f.trace.Emit(obs.TraceEvent{
			Day: day, TimeSec: float64(site.FirstActive),
			Machine: site.Machine, Core: site.Core,
			Event:          obs.EventDefectActivated,
			FirstActiveSec: float64(site.FirstActive),
		})
	}
}

// traceFirstSignal emits the first core-attributed signal seen for a
// core. Machine-level (core == -1) signals never open a core's stream.
func (f *Fleet) traceFirstSignal(sig detect.Signal) {
	if f.trace == nil || sig.Core < 0 {
		return
	}
	ref := sched.CoreRef{Machine: sig.Machine, Core: sig.Core}
	if f.sigSeen[ref] {
		return
	}
	f.sigSeen[ref] = true
	f.trace.Emit(obs.TraceEvent{
		Day: f.day - 1, TimeSec: float64(sig.Time),
		Machine: sig.Machine, Core: sig.Core,
		Event: obs.EventFirstSignal, Kind: sig.Kind.String(),
	})
}

// traceFirstSignals folds a merged signal buffer through traceFirstSignal.
func (f *Fleet) traceFirstSignals(sigs []detect.Signal) {
	if f.trace == nil {
		return
	}
	for _, s := range sigs {
		f.traceFirstSignal(s)
	}
}

// traceNominations emits each core's first concentration-test nomination.
func (f *Fleet) traceNominations(suspects []detect.Suspect, now simtime.Time) {
	if f.trace == nil {
		return
	}
	for _, s := range suspects {
		ref := sched.CoreRef{Machine: s.Machine, Core: s.Core}
		if f.nominated[ref] {
			continue
		}
		f.nominated[ref] = true
		f.trace.Emit(obs.TraceEvent{
			Day: f.day - 1, TimeSec: float64(now),
			Machine: s.Machine, Core: s.Core,
			Event: obs.EventSuspectNominated, Reports: s.Reports, PValue: s.PValue,
		})
	}
}

// traceConfession emits one deep-screen outcome; source is "triage" for
// human investigations and "suspect" for quarantine-gate confessions.
func (f *Fleet) traceConfession(machine string, core int, confirmed bool, source string, now simtime.Time) {
	if f.trace == nil {
		return
	}
	f.trace.Emit(obs.TraceEvent{
		Day: f.day - 1, TimeSec: float64(now),
		Machine: machine, Core: core,
		Event: obs.EventConfession, Confirmed: confirmed, Detail: source,
	})
}

// traceQuarantine emits an isolation decision.
func (f *Fleet) traceQuarantine(machine string, core int, mode string, now simtime.Time) {
	if f.trace == nil {
		return
	}
	f.trace.Emit(obs.TraceEvent{
		Day: f.day - 1, TimeSec: float64(now),
		Machine: machine, Core: core,
		Event: obs.EventQuarantine, Mode: mode,
	})
}

// traceRelease emits the removal of a live isolation record (mirroring
// quarantine.Manager.Release), and traceRepair the return of repaired
// silicon to service (Core == -1 for a whole-machine undrain). Repair
// also resets the core's first-signal/nomination dedup: replacement
// silicon starts a fresh lifecycle stream.
func (f *Fleet) traceRelease(ref sched.CoreRef, day int) {
	if f.trace == nil {
		return
	}
	f.trace.Emit(obs.TraceEvent{
		Day: day, TimeSec: float64(simtime.Time(day) * simtime.Day),
		Machine: ref.Machine, Core: ref.Core, Event: obs.EventRelease,
	})
}

func (f *Fleet) traceRepair(machine string, core int, day int) {
	if f.trace == nil {
		return
	}
	if core >= 0 {
		delete(f.sigSeen, sched.CoreRef{Machine: machine, Core: core})
		delete(f.nominated, sched.CoreRef{Machine: machine, Core: core})
	}
	f.trace.Emit(obs.TraceEvent{
		Day: day, TimeSec: float64(simtime.Time(day) * simtime.Day),
		Machine: machine, Core: core, Event: obs.EventRepair,
	})
}

// phaseClock times the day's phases into the metrics registry; a nil
// clock (metrics off) records nothing and costs two branches per phase.
type phaseClock struct {
	reg  *obs.Registry
	last time.Time
}

func (f *Fleet) newPhaseClock() *phaseClock {
	if f.obs == nil {
		return nil
	}
	return &phaseClock{reg: f.obs, last: time.Now()}
}

// mark closes the current phase, attributing the wall time since the
// previous mark to it.
func (p *phaseClock) mark(phase string) {
	if p == nil {
		return
	}
	now := time.Now()
	p.reg.Histogram("fleet_phase_seconds", obs.L("phase", phase)).
		Observe(now.Sub(p.last).Seconds())
	p.last = now
}
