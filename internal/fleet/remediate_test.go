package fleet

// Tests for the remediation-policy plug point and capacity pools: the
// default policy must reproduce the fixed paper loop bit for bit at any
// parallelism, the non-default policies must actually spend retests and
// swaps, and no pool may ever be observed below its serving floor.

import (
	"reflect"
	"testing"

	"repro/internal/lifecycle"
)

// runOutcome captures everything the remediation layer can influence.
type runOutcome struct {
	series []DayStats
	ledger []lifecycle.Record
	totals LifeTotals
}

func runWith(t *testing.T, cfg Config, parallelism int, days int) runOutcome {
	t.Helper()
	r, err := NewRunner(cfg, WithParallelism(parallelism))
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	series := r.Run(days)
	return runOutcome{
		series: series,
		ledger: r.Fleet().Lifecycle().List(),
		totals: r.Fleet().LifeTotals(),
	}
}

// TestDefaultPolicyBitIdentical: naming the default policy explicitly
// (with pools left off) must reproduce the unconfigured control plane's
// day series and ledger exactly, serial and parallel alike.
func TestDefaultPolicyBitIdentical(t *testing.T) {
	const days = 60
	base := lifecycleConfig()
	base.Machines = 200

	named := base
	named.Remediate = RemediateConfig{Policy: "default"}

	want := runWith(t, base, 1, days)
	var drained int
	for _, d := range want.series {
		drained += d.LifeDrained
	}
	if drained == 0 {
		t.Fatal("baseline drained nothing; the comparison would be vacuous")
	}
	for _, c := range []struct {
		name string
		cfg  Config
		par  int
	}{
		{"named default, serial", named, 1},
		{"named default, par4", named, 4},
		{"unconfigured, par4", base, 4},
	} {
		got := runWith(t, c.cfg, c.par, days)
		if !reflect.DeepEqual(got.series, want.series) {
			t.Fatalf("%s: day series diverged from baseline", c.name)
		}
		if !reflect.DeepEqual(got.ledger, want.ledger) {
			t.Fatalf("%s: ledger diverged\nbaseline: %+v\ngot:      %+v",
				c.name, want.ledger, got.ledger)
		}
	}
	if want.totals != (LifeTotals{}) {
		t.Fatalf("default policy without pools produced remediation totals %+v, want zero", want.totals)
	}
}

// TestEscalatingPolicySpendsRetests: with the threshold set above any
// achievable score, every conviction must be preceded by the configured
// retests — and the machines still drain in the end.
func TestEscalatingPolicySpendsRetests(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.Remediate = RemediateConfig{Policy: "escalating", ScoreThreshold: 1e9, MaxRetests: 2}
	out := runWith(t, cfg, 1, 120)
	var drained int
	for _, d := range out.series {
		drained += d.LifeDrained
	}
	if drained == 0 {
		t.Fatal("escalating policy never drained; defects unconvicted")
	}
	// The first conviction of any machine must have burned its full retest
	// budget before the drain went through.
	if out.totals.Retests < 2 {
		t.Fatalf("retests = %d with %d drains; escalation never engaged", out.totals.Retests, drained)
	}
	// Purity check: the same configuration at parallelism 4 lands on the
	// identical ledger.
	par := runWith(t, cfg, 4, 120)
	if !reflect.DeepEqual(out.ledger, par.ledger) {
		t.Fatal("escalating policy diverged across parallelism")
	}
	if out.totals != par.totals {
		t.Fatalf("totals diverged: serial %+v par %+v", out.totals, par.totals)
	}
}

// poolFloorNeverBreached asserts the tentpole invariant on a finished
// fleet: every pool's serving population sits at or above its floor.
func poolFloorNeverBreached(t *testing.T, f *Fleet) {
	t.Helper()
	if n := f.LifeTotals().FloorBreaches; n != 0 {
		t.Fatalf("observed %d pool×day floor breaches, want 0", n)
	}
	for _, p := range f.Lifecycle().Pools() {
		if p.Serving < p.Floor {
			t.Fatalf("pool %s finished below floor: %+v", p.Name, p)
		}
	}
}

// TestPoolFloorHoldsUnderConvictions: a tight pool floor forces deferrals
// instead of capacity loss, the floor is never breached, and parked drains
// admit as repaired machines return.
func TestPoolFloorHoldsUnderConvictions(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.Machines = 60
	cfg.DefectsPerMachine = 0.3 // enough convictions to fight over headroom
	cfg.RepairAfterDays = 3
	// Floor of 59/60 leaves headroom for exactly one machine out of
	// service: any overlapping convictions must queue.
	cfg.Lifecycle.Pools = []lifecycle.PoolConfig{
		{Name: "prod", MinHealthy: 0.97},
	}
	r, err := NewRunner(cfg, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	r.Run(150)
	f := r.Fleet()
	totals := f.LifeTotals()
	if totals.Deferred == 0 {
		t.Fatalf("single-slot floor in a defect-dense pool deferred nothing: %+v", totals)
	}
	if totals.Admitted == 0 {
		t.Fatalf("no deferred drain was ever admitted: %+v", totals)
	}
	poolFloorNeverBreached(t, f)
	// The same run at parallelism 4 must agree on every pool decision.
	r4, err := NewRunner(cfg, WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	r4.Run(150)
	if got := r4.Fleet().LifeTotals(); got != totals {
		t.Fatalf("pool totals diverged: serial %+v par %+v", totals, got)
	}
	if !reflect.DeepEqual(f.Lifecycle().List(), r4.Fleet().Lifecycle().List()) {
		t.Fatal("pooled ledger diverged across parallelism")
	}
}

// TestSwapPolicySpendsSpares: with a one-ticket budget and repairs that
// outlast the run, the second concurrent conviction must swap in spare
// silicon instead of queueing for repair.
func TestSwapPolicySpendsSpares(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.Machines = 120
	cfg.DefectsPerMachine = 0.3
	cfg.RepairAfterDays = 60 // repairs outlast the run: tickets stay pinned
	cfg.Lifecycle.Pools = []lifecycle.PoolConfig{{Name: "prod"}}
	cfg.Remediate = RemediateConfig{Policy: "swap", RepairTicketsPerPool: 1}
	out := runWith(t, cfg, 1, 120)
	if out.totals.Swaps == 0 {
		t.Fatalf("swap policy never swapped: %+v", out.totals)
	}
	par := runWith(t, cfg, 4, 120)
	if out.totals != par.totals || !reflect.DeepEqual(out.ledger, par.ledger) {
		t.Fatalf("swap run diverged across parallelism: %+v vs %+v", out.totals, par.totals)
	}
}
