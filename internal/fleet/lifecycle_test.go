package fleet

import (
	"reflect"
	"testing"

	"repro/internal/lifecycle"
	"repro/internal/quarantine"
	"repro/internal/sched"
)

// lifecycleConfig is testConfig with the control plane on and a
// machine-drain policy so convictions exercise the whole ledger loop:
// suspect → cordoned → draining → drained → repairing → probation →
// healthy, with MaxRepairs=1 making second convictions removals.
func lifecycleConfig() Config {
	cfg := testConfig()
	cfg.Policy = quarantine.Policy{
		Mode:              quarantine.MachineDrain,
		RequireConfession: true,
	}
	cfg.RepairAfterDays = 5
	cfg.Lifecycle = LifecycleConfig{Enabled: true, MaxRepairs: 1, ProbationDays: 3}
	return cfg
}

func TestLifecycleLedgerFollowsConvictions(t *testing.T) {
	f := New(lifecycleConfig())
	var agg DayStats
	for _, d := range f.Run(120) {
		agg.NewQuarantines += d.NewQuarantines
		agg.LifeCordoned += d.LifeCordoned
		agg.LifeDrained += d.LifeDrained
		agg.LifeRemoved += d.LifeRemoved
		agg.LifeReintroduced += d.LifeReintroduced
	}
	if agg.NewQuarantines == 0 {
		t.Fatal("no quarantines; ledger loop unexercised")
	}
	if agg.LifeDrained == 0 || agg.LifeCordoned == 0 {
		t.Fatalf("ledger saw no drains: %+v", agg)
	}
	if agg.LifeReintroduced == 0 {
		t.Fatalf("no machine came back toward service: %+v", agg)
	}
	life := f.Lifecycle()
	if life == nil {
		t.Fatal("Lifecycle() nil with control plane enabled")
	}
	// Every convicted-and-repaired machine must have burned a repair
	// cycle; drained+removed machines must really be out of the pool.
	sawRepairCycle := false
	for _, rec := range life.List() {
		if rec.RepairCycles > 0 {
			sawRepairCycle = true
		}
		switch rec.State {
		case lifecycle.Removed:
			m := f.machineByID(rec.Machine)
			if !m.drained {
				t.Fatalf("removed machine %s is not drained in the simulator", rec.Machine)
			}
			for _, tk := range f.repairQueue {
				if tk.machine == rec.Machine {
					t.Fatalf("removed machine %s still has a repair ticket", rec.Machine)
				}
			}
		case lifecycle.Drained, lifecycle.Draining:
			if !f.machineByID(rec.Machine).drained {
				t.Fatalf("ledger says %s is %s but the machine serves work",
					rec.Machine, rec.State)
			}
		}
	}
	if !sawRepairCycle {
		t.Fatal("no machine completed a repair cycle in 120 days")
	}
}

// TestLifecycleRecidivistRemovedPermanently drives one machine through
// conviction → repair → relapse (a second injected defect) and checks
// the second cordon escalates to permanent removal: the machine stays
// drained and never gets another repair ticket. Repairs replace all
// defective silicon, so the relapse must be injected explicitly.
func TestLifecycleRecidivistRemovedPermanently(t *testing.T) {
	cfg := eventTestConfig()
	cfg.Policy = quarantine.Policy{
		Mode:              quarantine.MachineDrain,
		RequireConfession: true,
	}
	cfg.RepairAfterDays = 3
	cfg.Lifecycle = LifecycleConfig{Enabled: true, MaxRepairs: 1, ProbationDays: 2}
	f := New(cfg)
	const id = "m00007"
	if err := f.InjectDefect(id, 1, hotDefect(4)); err != nil {
		t.Fatal(err)
	}
	waitState := func(want lifecycle.State, maxDays int) {
		t.Helper()
		for i := 0; i < maxDays; i++ {
			if rec, _ := f.Lifecycle().State(id); rec.State == want {
				return
			}
			f.Step()
		}
		rec, _ := f.Lifecycle().State(id)
		t.Fatalf("machine never reached %s in %d days (is %s)", want, maxDays, rec.State)
	}
	waitState(lifecycle.Drained, 60)
	waitState(lifecycle.Healthy, 60) // repair + clean probation
	rec, _ := f.Lifecycle().State(id)
	if rec.RepairCycles != 1 {
		t.Fatalf("repair cycles after first loop = %d, want 1", rec.RepairCycles)
	}
	// Relapse: new silicon on the same chassis goes bad again.
	if err := f.InjectDefect(id, 2, hotDefect(6)); err != nil {
		t.Fatal(err)
	}
	waitState(lifecycle.Removed, 60)
	rec, _ = f.Lifecycle().State(id)
	if rec.LastReason == "" {
		t.Fatal("removal has no reason")
	}
	if !f.machineByID(id).drained {
		t.Fatal("removed machine not drained")
	}
	// Long after RepairAfterDays, the removal must hold: no ticket ever
	// resurrects the machine.
	f.Run(20)
	if rec, _ := f.Lifecycle().State(id); rec.State != lifecycle.Removed {
		t.Fatalf("removed machine resurrected to %s", rec.State)
	}
	if !f.machineByID(id).drained {
		t.Fatal("removed machine returned to service")
	}
}

// TestLifecycleDeterministicAcrossParallelism extends the bit-identical
// contract to the control plane: the day series (including Life*
// counters) and the final ledger must not depend on worker count.
func TestLifecycleDeterministicAcrossParallelism(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.Machines = 200
	const days = 60
	type outcome struct {
		series []DayStats
		ledger []lifecycle.Record
	}
	run := func(parallelism int) outcome {
		r, err := NewRunner(cfg, WithParallelism(parallelism))
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		series := r.Run(days)
		return outcome{series: series, ledger: r.Fleet().Lifecycle().List()}
	}
	serial := run(1)
	var drained int
	for _, d := range serial.series {
		drained += d.LifeDrained
	}
	if drained == 0 {
		t.Fatal("serial run drained nothing; determinism check would be weak")
	}
	got := run(4)
	for i := range serial.series {
		if !reflect.DeepEqual(serial.series[i], got.series[i]) {
			t.Fatalf("day %d diverged\nserial: %+v\npar4:   %+v",
				i, serial.series[i], got.series[i])
		}
	}
	if !reflect.DeepEqual(serial.ledger, got.ledger) {
		t.Fatalf("ledger diverged\nserial: %+v\npar4:   %+v", serial.ledger, got.ledger)
	}
}

func TestCordonReleaseEvents(t *testing.T) {
	cfg := lifecycleConfig()
	f := New(cfg)
	const id = "m00003"
	if err := f.CordonMachine(id); err != nil {
		t.Fatalf("CordonMachine: %v", err)
	}
	if rec, _ := f.Lifecycle().State(id); rec.State != lifecycle.Cordoned {
		t.Fatalf("ledger state after cordon = %s", rec.State)
	}
	// Cordoned machines accept no new placements.
	if _, err := f.Cluster().PlaceAt(&sched.Task{ID: "t1"}, sched.CoreRef{Machine: id, Core: 0}); err == nil {
		t.Fatal("placement on cordoned machine succeeded")
	}
	if err := f.CordonMachine(id); err != nil {
		t.Fatalf("re-cordon not idempotent: %v", err)
	}
	if err := f.ReleaseMachine(id); err != nil {
		t.Fatalf("ReleaseMachine: %v", err)
	}
	if rec, _ := f.Lifecycle().State(id); rec.State != lifecycle.Healthy {
		t.Fatalf("ledger state after release = %s", rec.State)
	}
	if _, err := f.Cluster().PlaceAt(&sched.Task{ID: "t2"}, sched.CoreRef{Machine: id, Core: 0}); err != nil {
		t.Fatalf("placement after release: %v", err)
	}
	if err := f.CordonMachine("m99999"); err == nil {
		t.Fatal("cordon of unknown machine succeeded")
	}

	// The verbs also work with the control plane off — pure sched effect.
	plain := New(testConfig())
	if err := plain.CordonMachine(id); err != nil {
		t.Fatalf("cordon without lifecycle: %v", err)
	}
	if plain.Lifecycle() != nil {
		t.Fatal("Lifecycle() non-nil when disabled")
	}
	if err := plain.ReleaseMachine(id); err != nil {
		t.Fatalf("release without lifecycle: %v", err)
	}
}

func TestMaintenanceDrainUpdatesLedger(t *testing.T) {
	f := New(lifecycleConfig())
	const id = "m00011"
	if err := f.DrainMachine(id); err != nil {
		t.Fatal(err)
	}
	if rec, _ := f.Lifecycle().State(id); rec.State != lifecycle.Drained {
		t.Fatalf("ledger after maintenance drain = %s", rec.State)
	}
	if err := f.UndrainMachine(id); err != nil {
		t.Fatal(err)
	}
	if rec, _ := f.Lifecycle().State(id); rec.State != lifecycle.Healthy {
		t.Fatalf("ledger after undrain = %s", rec.State)
	}
}
