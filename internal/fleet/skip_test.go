package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

// TestHealthyConfessionSkipIsBehaviorIdentical is the regression proof for
// the confession fast path: a healthy core cannot fail a self-check, so
// confessOrSkip fabricates its empty confession instead of burning
// millions of simulated screening ops. The skip must be invisible — the
// forceRealConfessions hook turns it off, and the two runs must produce
// identical day series, triage ledgers, and quarantine records. The RNG
// streams a real healthy confession would consume are dead-end forks
// nobody else reads, which is the property this test pins.
func TestHealthyConfessionSkipIsBehaviorIdentical(t *testing.T) {
	cfg := testConfig()
	cfg.Machines = 200
	const days = 40

	type outcome struct {
		series  []DayStats
		triage  TriageStats
		records []string
	}
	run := func(force bool) outcome {
		orig := forceRealConfessions
		forceRealConfessions = force
		defer func() { forceRealConfessions = orig }()
		r, err := NewRunner(cfg, WithParallelism(1))
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		series := r.Run(days)
		var recs []string
		for _, rec := range r.Fleet().Manager().Records() {
			recs = append(recs, fmt.Sprintf("%s mode=%v day=%v confessed=%v banned=%d",
				rec.Ref, rec.Mode, rec.When, rec.Confessed, len(rec.BannedUnits)))
		}
		return outcome{series: series, triage: r.Fleet().Triage, records: recs}
	}

	skipped := run(false)
	real := run(true)

	// The run must actually exercise confessions of healthy cores, or the
	// equivalence claim is vacuous: false accusations only happen when a
	// non-defective core went through a confession screen.
	if skipped.triage.FalseAccusations == 0 {
		t.Fatal("no healthy core was ever screened: the fast path was never exercised")
	}
	for i := range skipped.series {
		if !reflect.DeepEqual(skipped.series[i], real.series[i]) {
			t.Fatalf("day %d diverged\nskip: %+v\nreal: %+v",
				i, skipped.series[i], real.series[i])
		}
	}
	if skipped.triage != real.triage {
		t.Fatalf("triage diverged:\nskip: %+v\nreal: %+v", skipped.triage, real.triage)
	}
	if !reflect.DeepEqual(skipped.records, real.records) {
		t.Fatalf("quarantine records diverged:\nskip: %v\nreal: %v",
			skipped.records, real.records)
	}
}
