package fleet

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// defaultParallelism is the worker count used by fleets built through the
// compatibility entry points (New + Fleet.Run); 0 means GOMAXPROCS. It
// exists so command-line tools can set a process-wide policy without
// threading an option through every experiment driver. Results do not
// depend on it — only wall-clock time does.
var defaultParallelism int64

// SetDefaultParallelism sets the worker count newly built fleets use when
// no Runner option overrides it. n <= 0 restores the default
// (runtime.GOMAXPROCS).
func SetDefaultParallelism(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&defaultParallelism, int64(n))
}

// DefaultParallelism returns the process-wide default fleet worker count.
func DefaultParallelism() int {
	if n := atomic.LoadInt64(&defaultParallelism); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Runner is the public entry point for fleet simulation. It owns a Fleet
// and the run policy around it: how many workers each simulated day is
// sharded across, and who observes the daily telemetry. The legacy
// New(cfg)/Fleet.Run path remains as a thin compatibility layer over the
// same machinery.
//
//	r, err := fleet.NewRunner(cfg,
//	        fleet.WithParallelism(8),
//	        fleet.WithObserver(func(d fleet.DayStats) { log(d) }))
//	series := r.Run(365)
//
// Determinism contract: for a fixed Config (including Seed), Run produces
// bit-identical DayStats, quarantine ledger, and triage counters at any
// parallelism — worker count is a performance knob, never a semantic one.
type Runner struct {
	fleet     *Fleet
	observers []func(DayStats)
	metrics   *obs.Registry
	// day holds the fleet_* instrument handles, resolved once at
	// construction: recordDay runs every simulated day and each registry
	// lookup takes the registry mutex, so per-day lookups were pure
	// overhead (and, with scrapers attached, lock traffic against them).
	day *dayInstruments
}

// dayInstruments caches the per-day fleet counters and gauges.
type dayInstruments struct {
	corruptions      *obs.Counter
	byOutcome        [numOutcomes]*obs.Counter
	autoReports      *obs.Counter
	userReports      *obs.Counter
	screenDetections *obs.Counter
	quarantines      *obs.Counter
	repairs          *obs.Counter
	activeDefects    *obs.Gauge
	fleetDay         *obs.Gauge
	daySeconds       *obs.Histogram
}

func newDayInstruments(reg *obs.Registry) *dayInstruments {
	di := &dayInstruments{
		corruptions:      reg.Counter("fleet_corruptions_total"),
		autoReports:      reg.Counter("fleet_reports_auto_total"),
		userReports:      reg.Counter("fleet_reports_user_total"),
		screenDetections: reg.Counter("fleet_screen_detections_total"),
		quarantines:      reg.Counter("fleet_quarantines_total"),
		repairs:          reg.Counter("fleet_repairs_total"),
		activeDefects:    reg.Gauge("fleet_active_defects"),
		fleetDay:         reg.Gauge("fleet_day"),
		daySeconds:       reg.Histogram("fleet_day_seconds"),
	}
	for o := Outcome(0); o < numOutcomes; o++ {
		di.byOutcome[o] = reg.Counter("fleet_corruptions_by_outcome_total",
			obs.L("outcome", o.String()))
	}
	return di
}

// RunnerOption configures a Runner under construction.
type RunnerOption func(*runnerOptions) error

type runnerOptions struct {
	parallelism int
	observers   []func(DayStats)
	metrics     *obs.Registry
	trace       *obs.Trace
}

// WithParallelism shards each simulated day across n workers. n == 0 (the
// default) selects runtime.GOMAXPROCS; n == 1 forces the serial reference
// path.
func WithParallelism(n int) RunnerOption {
	return func(o *runnerOptions) error {
		if n < 0 {
			return fmt.Errorf("fleet: parallelism must be >= 0, got %d", n)
		}
		o.parallelism = n
		return nil
	}
}

// WithObserver registers fn to receive every day's telemetry as it is
// produced — progress meters, live plots, streaming exports. Observers run
// on the runner's goroutine, after the day completes, in registration
// order.
func WithObserver(fn func(DayStats)) RunnerOption {
	return func(o *runnerOptions) error {
		if fn == nil {
			return fmt.Errorf("fleet: nil observer")
		}
		o.observers = append(o.observers, fn)
		return nil
	}
}

// WithMetrics routes the run's telemetry into reg: per-day fleet counters
// and gauges, per-phase wall-time histograms, screening and quarantine
// instrumentation, and the report server's ingest counters. Recording is
// lock-free and never consumes randomness, so attaching a registry does
// not perturb simulation results. Nil is rejected — omit the option to
// run without metrics.
func WithMetrics(reg *obs.Registry) RunnerOption {
	return func(o *runnerOptions) error {
		if reg == nil {
			return fmt.Errorf("fleet: nil metrics registry")
		}
		o.metrics = reg
		return nil
	}
}

// WithTrace attaches a CEE lifecycle trace: every defect activation, first
// signal, suspect nomination, confession, quarantine, release, and repair
// is appended to tr as it happens. Events are emitted only from the serial
// phases of each day, so the stream is bit-identical at any parallelism.
func WithTrace(tr *obs.Trace) RunnerOption {
	return func(o *runnerOptions) error {
		if tr == nil {
			return fmt.Errorf("fleet: nil trace")
		}
		o.trace = tr
		return nil
	}
}

// NewRunner validates cfg, builds the fleet population deterministically
// from cfg.Seed, and applies the options.
func NewRunner(cfg Config, opts ...RunnerOption) (*Runner, error) {
	if cfg.Machines <= 0 || cfg.CoresPerMachine <= 0 {
		return nil, fmt.Errorf("fleet: machines and cores must be positive (got %d x %d)",
			cfg.Machines, cfg.CoresPerMachine)
	}
	var o runnerOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	f := New(cfg)
	if o.parallelism > 0 {
		f.parallelism = o.parallelism
	}
	if o.metrics != nil {
		f.SetMetrics(o.metrics)
	}
	if o.trace != nil {
		f.SetTrace(o.trace)
	}
	r := &Runner{fleet: f, metrics: o.metrics}
	if o.metrics != nil {
		r.day = newDayInstruments(o.metrics)
		// The per-day counter observer runs first, before user observers,
		// so user observers that scrape the registry see the day applied.
		r.observers = append(r.observers, r.recordDay)
	}
	r.observers = append(r.observers, o.observers...)
	return r, nil
}

// recordDay folds one day's telemetry into the cached instruments.
func (r *Runner) recordDay(st DayStats) {
	di := r.day
	di.corruptions.Add(float64(st.Corruptions))
	for o := Outcome(0); o < numOutcomes; o++ {
		di.byOutcome[o].Add(float64(st.ByOutcome[o]))
	}
	di.autoReports.Add(float64(st.AutoReports))
	di.userReports.Add(float64(st.UserReports))
	di.screenDetections.Add(float64(st.ScreenDetections))
	di.quarantines.Add(float64(st.NewQuarantines))
	di.repairs.Add(float64(st.RepairsDone))
	di.activeDefects.Set(float64(st.ActiveDefects))
	di.fleetDay.Set(float64(st.Day))
}

// Fleet exposes the underlying simulator state (defect ground truth,
// quarantine manager, scheduler) for metrics and inspection.
func (r *Runner) Fleet() *Fleet { return r.fleet }

// Parallelism returns the effective worker count.
func (r *Runner) Parallelism() int { return r.fleet.parallelism }

// Step advances the simulation one day and notifies observers.
func (r *Runner) Step() DayStats {
	start := time.Now()
	st := r.fleet.Step()
	if r.day != nil {
		r.day.daySeconds.Observe(time.Since(start).Seconds())
	}
	for _, ob := range r.observers {
		ob(st)
	}
	return st
}

// Run advances the simulation the given number of days and returns the
// daily series.
func (r *Runner) Run(days int) []DayStats {
	out := make([]DayStats, 0, days)
	for i := 0; i < days; i++ {
		out = append(out, r.Step())
	}
	return out
}
