package fleet

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// defaultParallelism is the worker count used by fleets built through the
// compatibility entry points (New + Fleet.Run); 0 means GOMAXPROCS. It
// exists so command-line tools can set a process-wide policy without
// threading an option through every experiment driver. Results do not
// depend on it — only wall-clock time does.
var defaultParallelism int64

// SetDefaultParallelism sets the worker count newly built fleets use when
// no Runner option overrides it. n <= 0 restores the default
// (runtime.GOMAXPROCS).
func SetDefaultParallelism(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt64(&defaultParallelism, int64(n))
}

// DefaultParallelism returns the process-wide default fleet worker count.
func DefaultParallelism() int {
	if n := atomic.LoadInt64(&defaultParallelism); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Runner is the public entry point for fleet simulation. It owns a Fleet
// and the run policy around it: how many workers each simulated day is
// sharded across, and who observes the daily telemetry. The legacy
// New(cfg)/Fleet.Run path remains as a thin compatibility layer over the
// same machinery.
//
//	r, err := fleet.NewRunner(cfg,
//	        fleet.WithParallelism(8),
//	        fleet.WithObserver(func(d fleet.DayStats) { log(d) }))
//	series := r.Run(365)
//
// Determinism contract: for a fixed Config (including Seed), Run produces
// bit-identical DayStats, quarantine ledger, and triage counters at any
// parallelism — worker count is a performance knob, never a semantic one.
type Runner struct {
	fleet     *Fleet
	observers []func(DayStats)
}

// RunnerOption configures a Runner under construction.
type RunnerOption func(*runnerOptions) error

type runnerOptions struct {
	parallelism int
	observers   []func(DayStats)
}

// WithParallelism shards each simulated day across n workers. n == 0 (the
// default) selects runtime.GOMAXPROCS; n == 1 forces the serial reference
// path.
func WithParallelism(n int) RunnerOption {
	return func(o *runnerOptions) error {
		if n < 0 {
			return fmt.Errorf("fleet: parallelism must be >= 0, got %d", n)
		}
		o.parallelism = n
		return nil
	}
}

// WithObserver registers fn to receive every day's telemetry as it is
// produced — progress meters, live plots, streaming exports. Observers run
// on the runner's goroutine, after the day completes, in registration
// order.
func WithObserver(fn func(DayStats)) RunnerOption {
	return func(o *runnerOptions) error {
		if fn == nil {
			return fmt.Errorf("fleet: nil observer")
		}
		o.observers = append(o.observers, fn)
		return nil
	}
}

// NewRunner validates cfg, builds the fleet population deterministically
// from cfg.Seed, and applies the options.
func NewRunner(cfg Config, opts ...RunnerOption) (*Runner, error) {
	if cfg.Machines <= 0 || cfg.CoresPerMachine <= 0 {
		return nil, fmt.Errorf("fleet: machines and cores must be positive (got %d x %d)",
			cfg.Machines, cfg.CoresPerMachine)
	}
	var o runnerOptions
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	f := New(cfg)
	if o.parallelism > 0 {
		f.parallelism = o.parallelism
	}
	return &Runner{fleet: f, observers: o.observers}, nil
}

// Fleet exposes the underlying simulator state (defect ground truth,
// quarantine manager, scheduler) for metrics and inspection.
func (r *Runner) Fleet() *Fleet { return r.fleet }

// Parallelism returns the effective worker count.
func (r *Runner) Parallelism() int { return r.fleet.parallelism }

// Step advances the simulation one day and notifies observers.
func (r *Runner) Step() DayStats {
	st := r.fleet.Step()
	for _, ob := range r.observers {
		ob(st)
	}
	return st
}

// Run advances the simulation the given number of days and returns the
// daily series.
func (r *Runner) Run(days int) []DayStats {
	out := make([]DayStats, 0, days)
	for i := 0; i < days; i++ {
		out = append(out, r.Step())
	}
	return out
}
