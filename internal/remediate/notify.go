package remediate

// Operator notification hooks. Lifecycle transitions (and deferred-drain
// queue changes) fan out to pluggable Notifiers: a log sink for humans
// tailing the daemon, and a webhook POST with bounded retry for paging
// systems. The lifecycle manager calls its observer inside its own lock,
// so anything that blocks — a webhook over a faulty network — must sit
// behind Async, which hands events to a background sender over a bounded
// queue and never blocks a transition.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Event is one notified control-plane occurrence.
type Event struct {
	Seq     uint64 `json:"seq,omitempty"`
	Day     int    `json:"day"`
	Machine string `json:"machine"`
	From    string `json:"from,omitempty"`
	To      string `json:"to,omitempty"`
	// Kind is "" for a state transition, or the WAL bookkeeping kind
	// ("defer", "undefer") for drain-queue changes.
	Kind   string  `json:"kind,omitempty"`
	Pool   string  `json:"pool,omitempty"`
	Score  float64 `json:"score,omitempty"`
	Reason string  `json:"reason,omitempty"`
	Actor  string  `json:"actor,omitempty"`
}

// Notifier receives control-plane events. Notify must tolerate being
// called from hot paths; implementations that do I/O belong behind Async.
type Notifier interface {
	Notify(Event)
	Close() error
}

// LogNotifier writes one line per event to W.
type LogNotifier struct {
	mu sync.Mutex
	W  io.Writer
}

// NewLogNotifier returns a line-per-event sink on w.
func NewLogNotifier(w io.Writer) *LogNotifier { return &LogNotifier{W: w} }

func (l *LogNotifier) Notify(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch e.Kind {
	case "defer":
		fmt.Fprintf(l.W, "lifecycle: day %d machine %s drain deferred (pool %s, score %.2f): %s\n",
			e.Day, e.Machine, e.Pool, e.Score, e.Reason)
	case "undefer":
		fmt.Fprintf(l.W, "lifecycle: day %d machine %s deferred drain %s\n", e.Day, e.Machine, e.Reason)
	default:
		fmt.Fprintf(l.W, "lifecycle: day %d machine %s %s -> %s (%s by %s)\n",
			e.Day, e.Machine, e.From, e.To, e.Reason, e.Actor)
	}
}

func (l *LogNotifier) Close() error { return nil }

// WebhookNotifier POSTs each event as JSON to URL, retrying transport
// errors and 5xx/429 answers with clamped exponential backoff. It blocks
// for the duration of the delivery — wrap it in Async for use as a
// lifecycle observer.
type WebhookNotifier struct {
	URL string
	// Client defaults to a 5s-timeout client. Chaos tests swap in a
	// client whose Transport injects faults.
	Client *http.Client
	// MaxAttempts bounds tries per event (0 means 4).
	MaxAttempts int
	// Backoff is the base retry delay (0 means 25ms), doubled per retry
	// and clamped at 32× base with overflow protection.
	Backoff time.Duration

	mu        sync.Mutex
	delivered int
	failed    int
}

func (n *WebhookNotifier) client() *http.Client {
	if n.Client != nil {
		return n.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// backoffDelay returns the clamped exponential delay before retry i
// (0-based), immune to shift overflow at absurd attempt counts.
func (n *WebhookNotifier) backoffDelay(i int) time.Duration {
	base := n.Backoff
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	max := 32 * base
	d := base
	for ; i > 0 && d < max; i-- {
		d <<= 1
		if d <= 0 { // overflowed
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// Notify delivers e, retrying per the notifier's policy. Delivery
// failures are counted, never surfaced — notifications must not be able
// to wedge the control plane they describe.
func (n *WebhookNotifier) Notify(e Event) {
	body, err := json.Marshal(e)
	if err != nil {
		n.mu.Lock()
		n.failed++
		n.mu.Unlock()
		return
	}
	attempts := n.MaxAttempts
	if attempts <= 0 {
		attempts = 4
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(n.backoffDelay(attempt - 1))
		}
		req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, n.URL, bytes.NewReader(body))
		if err != nil {
			break
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.client().Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			continue
		}
		n.mu.Lock()
		n.delivered++
		n.mu.Unlock()
		return
	}
	n.mu.Lock()
	n.failed++
	n.mu.Unlock()
}

// Delivered returns the number of events acknowledged by the endpoint.
func (n *WebhookNotifier) Delivered() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered
}

// Failed returns the number of events that exhausted their retries.
func (n *WebhookNotifier) Failed() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failed
}

func (n *WebhookNotifier) Close() error { return nil }

// Async decouples a blocking Notifier from its caller: Notify enqueues
// onto a bounded buffer served by one background sender, dropping (and
// counting) events when the buffer is full. This is the only safe way to
// hang a WebhookNotifier off the lifecycle manager's observer, which runs
// under the manager lock.
type Async struct {
	inner Notifier
	ch    chan Event
	done  chan struct{}

	mu      sync.Mutex
	dropped int
	closed  bool
}

// NewAsync wraps inner with a bounded asynchronous queue (size 0 means
// 1024) and starts the sender.
func NewAsync(inner Notifier, size int) *Async {
	if size <= 0 {
		size = 1024
	}
	a := &Async{inner: inner, ch: make(chan Event, size), done: make(chan struct{})}
	go a.run()
	return a
}

func (a *Async) run() {
	defer close(a.done)
	for e := range a.ch {
		a.inner.Notify(e)
	}
}

// Notify enqueues without blocking; a full queue drops the event. The
// non-blocking send happens under the mutex so it cannot race Close's
// channel close.
func (a *Async) Notify(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	select {
	case a.ch <- e:
	default:
		a.dropped++
	}
}

// Dropped returns how many events the full queue discarded.
func (a *Async) Dropped() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Close drains the queue, waits for the sender, and closes the inner
// notifier. Safe to call once.
func (a *Async) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		<-a.done
		return nil
	}
	a.closed = true
	a.mu.Unlock()
	close(a.ch)
	<-a.done
	return a.inner.Close()
}
