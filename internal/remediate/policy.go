// Package remediate holds the pluggable remediation policies and operator
// notification hooks of the control plane. The paper's fixed loop —
// cordon → drain → repair → probation — is one Policy among several: an
// escalating policy retests low-score suspects in place before spending a
// drain on them (the §5 "quarantine vs. immediate repair" tradeoff), and
// a swap policy trades repair-queue latency for spare silicon once a
// pool's repair-ticket budget is exhausted.
//
// Policies are pure decision functions over a MachineView snapshot: they
// hold no state and consume no randomness, so a policy-driven fleet keeps
// the simulator's bit-identical-at-any-parallelism contract. The caller
// (the fleet's serial suspect phase, or a daemon) owns the counters the
// view reports.
package remediate

import "fmt"

// MachineView is the snapshot a Policy decides on.
type MachineView struct {
	// Machine is the suspect machine's id.
	Machine string
	// State is the machine's lifecycle state name ("healthy", "suspect", …).
	State string
	// Pool is the machine's capacity pool ("" when unassigned).
	Pool string
	// Score is the conviction score of the machine's strongest suspect
	// core (higher = more evidence).
	Score float64
	// RepairCycles counts the machine's completed repair loops.
	RepairCycles int
	// Retests counts in-place retests already spent on this suspicion.
	Retests int
	// PoolRepairTickets is the pool's remaining repair-ticket budget
	// (negative means unbudgeted).
	PoolRepairTickets int
}

// ActionKind is what the policy wants done with a convictable suspect.
type ActionKind int

const (
	// ActDrain follows the paper's loop: cordon, drain, queue for repair.
	ActDrain ActionKind = iota
	// ActRetest leaves the machine serving and spends another in-place
	// retest on it; the decision repeats when it is nominated again.
	ActRetest
	// ActSwap drains and immediately replaces the silicon from spares —
	// no repair-queue wait, no capacity lost beyond the day.
	ActSwap
	// ActNone takes no action on this nomination.
	ActNone
)

func (k ActionKind) String() string {
	switch k {
	case ActDrain:
		return "drain"
	case ActRetest:
		return "retest"
	case ActSwap:
		return "swap"
	case ActNone:
		return "none"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Action is a policy decision with its audit-trail reason.
type Action struct {
	Kind   ActionKind
	Reason string
}

// Policy decides what remediation a nominated suspect machine gets.
// Implementations must be pure: same view, same answer.
type Policy interface {
	Name() string
	Decide(MachineView) Action
}

// DefaultPolicy reproduces the fixed paper loop bit-for-bit: every
// convictable suspect is drained.
type DefaultPolicy struct{}

func (DefaultPolicy) Name() string { return "default" }

func (DefaultPolicy) Decide(MachineView) Action {
	return Action{Kind: ActDrain, Reason: "default remediation loop"}
}

// EscalatingPolicy retests low-score suspects in place before draining
// them: weak evidence buys MaxRetests more days of serving (and signal
// accumulation) before the machine is convicted. Strong evidence drains
// immediately.
type EscalatingPolicy struct {
	// ScoreThreshold is the score at or above which a suspect drains
	// without retesting. 0 means 6 (roughly two concentrated signals
	// beyond nomination).
	ScoreThreshold float64
	// MaxRetests bounds the in-place retests per suspicion. 0 means 2.
	MaxRetests int
}

func (EscalatingPolicy) Name() string { return "escalating" }

func (p EscalatingPolicy) Decide(v MachineView) Action {
	threshold := p.ScoreThreshold
	if threshold <= 0 {
		threshold = 6
	}
	max := p.MaxRetests
	if max <= 0 {
		max = 2
	}
	if v.Score < threshold && v.Retests < max {
		return Action{Kind: ActRetest,
			Reason: fmt.Sprintf("score %.2f below %.2f: retest %d/%d in place", v.Score, threshold, v.Retests+1, max)}
	}
	return Action{Kind: ActDrain, Reason: "escalation exhausted"}
}

// SwapPolicy spends the pool's repair-ticket budget first and swaps in
// spare silicon once it runs out: a pool with a saturated repair queue
// stops losing capacity to RMA turnaround.
type SwapPolicy struct{}

func (SwapPolicy) Name() string { return "swap" }

func (SwapPolicy) Decide(v MachineView) Action {
	if v.PoolRepairTickets == 0 {
		return Action{Kind: ActSwap, Reason: "pool repair-ticket budget exhausted"}
	}
	return Action{Kind: ActDrain, Reason: "repair ticket available"}
}

// ByName resolves a configured policy name; "" and "default" mean the
// paper loop.
func ByName(name string) (Policy, error) {
	switch name {
	case "", "default":
		return DefaultPolicy{}, nil
	case "escalating":
		return EscalatingPolicy{}, nil
	case "swap":
		return SwapPolicy{}, nil
	}
	return nil, fmt.Errorf("remediate: unknown policy %q (want default, escalating, or swap)", name)
}
