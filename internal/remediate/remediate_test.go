package remediate

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"", "default", "escalating", "swap"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if name != "" && p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("yolo"); err == nil {
		t.Fatal("unknown policy must error")
	}
}

func TestDefaultPolicyAlwaysDrains(t *testing.T) {
	p := DefaultPolicy{}
	for _, v := range []MachineView{
		{},
		{Score: 1000, Retests: 5, PoolRepairTickets: 0},
	} {
		if a := p.Decide(v); a.Kind != ActDrain {
			t.Fatalf("Decide(%+v) = %v, want drain", v, a.Kind)
		}
	}
}

func TestEscalatingPolicy(t *testing.T) {
	cases := []struct {
		name string
		p    EscalatingPolicy
		v    MachineView
		want ActionKind
	}{
		{"low score retests", EscalatingPolicy{}, MachineView{Score: 2}, ActRetest},
		{"strong evidence drains", EscalatingPolicy{}, MachineView{Score: 6}, ActDrain},
		{"retest budget spent", EscalatingPolicy{}, MachineView{Score: 2, Retests: 2}, ActDrain},
		{"custom threshold", EscalatingPolicy{ScoreThreshold: 100}, MachineView{Score: 50}, ActRetest},
		{"custom max retests", EscalatingPolicy{MaxRetests: 5}, MachineView{Score: 2, Retests: 4}, ActRetest},
	}
	for _, c := range cases {
		if a := c.p.Decide(c.v); a.Kind != c.want {
			t.Errorf("%s: Decide = %v, want %v", c.name, a.Kind, c.want)
		}
	}
	// Purity: same view, same answer.
	v := MachineView{Score: 3, Retests: 1}
	p := EscalatingPolicy{}
	if p.Decide(v) != p.Decide(v) {
		t.Fatal("policy is not pure")
	}
}

func TestSwapPolicy(t *testing.T) {
	p := SwapPolicy{}
	if a := p.Decide(MachineView{PoolRepairTickets: 2}); a.Kind != ActDrain {
		t.Fatalf("budget available: %v, want drain", a.Kind)
	}
	if a := p.Decide(MachineView{PoolRepairTickets: 0}); a.Kind != ActSwap {
		t.Fatalf("budget exhausted: %v, want swap", a.Kind)
	}
	// Negative means unbudgeted: the paper loop.
	if a := p.Decide(MachineView{PoolRepairTickets: -1}); a.Kind != ActDrain {
		t.Fatalf("unbudgeted pool: %v, want drain", a.Kind)
	}
}

func TestActionKindStrings(t *testing.T) {
	for k, want := range map[ActionKind]string{
		ActDrain: "drain", ActRetest: "retest", ActSwap: "swap", ActNone: "none",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestLogNotifierFormats(t *testing.T) {
	var buf bytes.Buffer
	n := NewLogNotifier(&buf)
	n.Notify(Event{Day: 3, Machine: "m1", From: "healthy", To: "cordoned", Reason: "cee", Actor: "detector"})
	n.Notify(Event{Day: 4, Machine: "m2", Kind: "defer", Pool: "web", Score: 7.5, Reason: "floor"})
	n.Notify(Event{Day: 5, Machine: "m2", Kind: "undefer", Reason: "admitted"})
	out := buf.String()
	for _, want := range []string{
		"day 3 machine m1 healthy -> cordoned",
		"drain deferred (pool web, score 7.50)",
		"deferred drain admitted",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

// collector is a webhook endpoint that records received events and can be
// told to answer 500 a few times first.
func collector(t *testing.T) (*httptest.Server, func() int) {
	t.Helper()
	var mu sync.Mutex
	var got int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		mu.Lock()
		got++
		mu.Unlock()
	}))
	t.Cleanup(srv.Close)
	return srv, func() int { mu.Lock(); defer mu.Unlock(); return got }
}

func TestWebhookRetriesTransportFaults(t *testing.T) {
	srv, received := collector(t)
	tr := chaos.NewTransport(nil)
	n := &WebhookNotifier{
		URL:     srv.URL,
		Client:  &http.Client{Transport: tr},
		Backoff: time.Millisecond,
	}
	// Two faults, four attempts: the third try lands.
	tr.Inject(chaos.Drop, 1)
	tr.Inject(chaos.HTTP503, 1)
	n.Notify(Event{Day: 1, Machine: "m1", To: "cordoned"})
	if n.Delivered() != 1 || n.Failed() != 0 {
		t.Fatalf("delivered %d failed %d, want 1/0", n.Delivered(), n.Failed())
	}
	if received() != 1 {
		t.Fatalf("endpoint received %d, want 1", received())
	}
	fired := tr.Fired()
	if fired[chaos.Drop] != 1 || fired[chaos.HTTP503] != 1 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestWebhookExhaustsRetries(t *testing.T) {
	srv, received := collector(t)
	tr := chaos.NewTransport(nil)
	n := &WebhookNotifier{
		URL:         srv.URL,
		Client:      &http.Client{Transport: tr},
		Backoff:     time.Millisecond,
		MaxAttempts: 3,
	}
	tr.Inject(chaos.Drop, 3)
	n.Notify(Event{Day: 1, Machine: "m1"})
	if n.Delivered() != 0 || n.Failed() != 1 {
		t.Fatalf("delivered %d failed %d, want 0/1", n.Delivered(), n.Failed())
	}
	if received() != 0 {
		t.Fatalf("endpoint received %d, want 0", received())
	}
}

func TestBackoffDelayClampedNoOverflow(t *testing.T) {
	n := &WebhookNotifier{Backoff: 25 * time.Millisecond}
	if d := n.backoffDelay(0); d != 25*time.Millisecond {
		t.Fatalf("delay(0) = %v, want base", d)
	}
	if d := n.backoffDelay(3); d != 200*time.Millisecond {
		t.Fatalf("delay(3) = %v, want 200ms", d)
	}
	max := 32 * 25 * time.Millisecond
	// The regression: absurd attempt counts used to shift into overflow.
	for _, i := range []int{5, 6, 63, 64, 100, 1 << 20} {
		if d := n.backoffDelay(i); d != max {
			t.Fatalf("delay(%d) = %v, want clamp at %v", i, d, max)
		}
		if d := n.backoffDelay(i); d <= 0 {
			t.Fatalf("delay(%d) = %v: negative/zero means shift overflow", i, d)
		}
	}
}

func TestAsyncDeliversAndDrops(t *testing.T) {
	block := make(chan struct{})
	var mu sync.Mutex
	var got []string
	inner := notifierFunc(func(e Event) {
		<-block
		mu.Lock()
		got = append(got, e.Machine)
		mu.Unlock()
	})
	a := NewAsync(inner, 2)
	// First event occupies the sender (blocked); two fill the queue; the
	// fourth must be dropped, not block the caller.
	for _, id := range []string{"m1", "m2", "m3", "m4"} {
		a.Notify(Event{Machine: id})
	}
	if a.Dropped() == 0 {
		t.Fatal("full queue should have dropped at least one event")
	}
	close(block)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got)+a.Dropped() != 4 {
		t.Fatalf("delivered %d + dropped %d != 4", len(got), a.Dropped())
	}
	if got[0] != "m1" {
		t.Fatalf("first delivery = %q, want m1 (FIFO)", got[0])
	}
	// Notify after Close is a silent no-op.
	a.Notify(Event{Machine: "m5"})
}

// notifierFunc adapts a func to Notifier for tests.
type notifierFunc func(Event)

func (f notifierFunc) Notify(e Event) { f(e) }
func (f notifierFunc) Close() error   { return nil }
