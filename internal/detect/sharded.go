package detect

// ShardedTracker partitions signal aggregation by machine hash so that
// concurrent producers (HTTP ingest handlers, queue drainers) contend on
// a shard's lock instead of one global mutex. Every per-machine statistic
// lives entirely inside one shard — a machine's signals always hash to
// the same shard — so nomination is identical to a single Tracker fed the
// same multiset of signals, and Suspects' merged ranking is bit-identical
// (same comparator, same per-machine inputs). This is the ingest-path
// scaling step for the paper's O(100k)-machine regime: the daemon absorbs
// batched floods across shards instead of serializing on one lock.

import (
	"hash/fnv"
	"sync"
)

// DefaultTrackerShards is the shard count NewShardedTracker uses when the
// caller passes 0. Sixteen shards keep lock contention negligible for tens
// of HTTP handler goroutines without meaningfully fragmenting memory.
const DefaultTrackerShards = 16

// ShardedTracker is a Tracker partitioned by machine hash. Unlike Tracker
// it is safe for concurrent use.
type ShardedTracker struct {
	shards []trackerShard
}

type trackerShard struct {
	mu sync.Mutex
	t  *Tracker
	// pad the shard to its own cache lines so neighbouring shard locks
	// do not false-share under concurrent ingest.
	_ [40]byte
}

// NewShardedTracker returns a tracker sharded n ways (0 → the default)
// for machines with coresPerMachine cores.
func NewShardedTracker(coresPerMachine, n int) *ShardedTracker {
	if n <= 0 {
		n = DefaultTrackerShards
	}
	s := &ShardedTracker{shards: make([]trackerShard, n)}
	for i := range s.shards {
		s.shards[i].t = NewTracker(coresPerMachine)
	}
	return s
}

// shardFor hashes a machine id onto its shard. FNV-1a matches the repo's
// other string-hash choices and spreads dense "mNNNNN" ids well.
func (s *ShardedTracker) shardFor(machine string) *trackerShard {
	h := fnv.New32a()
	h.Write([]byte(machine))
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Shards returns the shard count.
func (s *ShardedTracker) Shards() int { return len(s.shards) }

// Add ingests one signal.
func (s *ShardedTracker) Add(sig Signal) {
	sh := s.shardFor(sig.Machine)
	sh.mu.Lock()
	sh.t.Add(sig)
	sh.mu.Unlock()
}

// AddBatch ingests a buffer of signals, grouping by shard so each shard's
// lock is taken once per contiguous run instead of once per signal.
func (s *ShardedTracker) AddBatch(sigs []Signal) {
	var (
		cur   *trackerShard
		start int
	)
	flush := func(end int) {
		if cur == nil || start == end {
			return
		}
		cur.mu.Lock()
		cur.t.AddBatch(sigs[start:end])
		cur.mu.Unlock()
	}
	for i := range sigs {
		sh := s.shardFor(sigs[i].Machine)
		if sh != cur {
			flush(i)
			cur, start = sh, i
		}
	}
	flush(len(sigs))
}

// Forget drops all tracker state for a machine.
func (s *ShardedTracker) Forget(machine string) {
	sh := s.shardFor(machine)
	sh.mu.Lock()
	sh.t.Forget(machine)
	sh.mu.Unlock()
}

// ForgetCore drops tracker state for one core.
func (s *ShardedTracker) ForgetCore(machine string, core int) {
	sh := s.shardFor(machine)
	sh.mu.Lock()
	sh.t.ForgetCore(machine, core)
	sh.mu.Unlock()
}

// Reports returns the total core-attributed signal count for a machine.
func (s *ShardedTracker) Reports(machine string) int {
	sh := s.shardFor(machine)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.t.Reports(machine)
}

// ReportingMachines returns the lifetime census of distinct reporting
// machines across every shard.
func (s *ShardedTracker) ReportingMachines() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.t.ReportingMachines()
		sh.mu.Unlock()
	}
	return total
}

// Suspects merges every shard's nominations into one ranking, identical
// to a single Tracker's (per-machine evaluation never crosses shards, and
// the final sort uses the same comparator).
func (s *ShardedTracker) Suspects() []Suspect {
	var out []Suspect
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.t.Suspects()...)
		sh.mu.Unlock()
	}
	sortSuspects(out)
	return out
}
