package detect

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/screen"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

func TestSignalKindString(t *testing.T) {
	if SigCrash.String() != "crash" || SigUserReport.String() != "user-report" {
		t.Fatal("signal names wrong")
	}
	if !strings.Contains(SignalKind(42).String(), "42") {
		t.Fatal("unknown kind should include number")
	}
}

func TestTrackerNominatesConcentratedCore(t *testing.T) {
	tr := NewTracker(64)
	for i := 0; i < 8; i++ {
		tr.Add(Signal{Machine: "m1", Core: 17, Kind: SigAppError, Time: simtime.Time(i)})
	}
	sus := tr.Suspects()
	if len(sus) != 1 {
		t.Fatalf("suspects = %d, want 1", len(sus))
	}
	s := sus[0]
	if s.Machine != "m1" || s.Core != 17 || s.Reports != 8 {
		t.Fatalf("suspect = %+v", s)
	}
	if s.PValue > 1e-6 {
		t.Fatalf("p-value %v too large for 8 reports on one of 64 cores", s.PValue)
	}
	if s.Kinds[SigAppError] != 8 {
		t.Fatalf("kinds = %v", s.Kinds)
	}
	if s.First != 0 || s.Last != 7 {
		t.Fatalf("window = [%v, %v]", s.First, s.Last)
	}
}

func TestTrackerIgnoresEvenSpread(t *testing.T) {
	// The software-bug signature: reports spread over all cores.
	tr := NewTracker(32)
	for i := 0; i < 64; i++ {
		tr.Add(Signal{Machine: "m1", Core: i % 32, Kind: SigCrash})
	}
	if sus := tr.Suspects(); len(sus) != 0 {
		t.Fatalf("even spread nominated suspects: %+v", sus)
	}
}

func TestTrackerSingleReportInsufficient(t *testing.T) {
	// Recidivism requirement: one report never nominates.
	tr := NewTracker(64)
	tr.Add(Signal{Machine: "m1", Core: 3, Kind: SigCrash})
	if sus := tr.Suspects(); len(sus) != 0 {
		t.Fatalf("single report nominated: %+v", sus)
	}
}

func TestTrackerMachineLevelSignals(t *testing.T) {
	tr := NewTracker(8)
	tr.Add(Signal{Machine: "m1", Core: -1, Kind: SigMCE})
	tr.Add(Signal{Machine: "m1", Core: -1, Kind: SigMCE})
	if got := tr.Reports("m1"); got != 0 {
		t.Fatalf("machine-level signals should not count as core reports: %d", got)
	}
	if sus := tr.Suspects(); len(sus) != 0 {
		t.Fatalf("machine-level signals nominated a core: %+v", sus)
	}
	if tr.perMachine["m1"] != 2 {
		t.Fatal("machine-level count not recorded")
	}
}

func TestTrackerMultipleMachines(t *testing.T) {
	tr := NewTracker(16)
	for i := 0; i < 6; i++ {
		tr.Add(Signal{Machine: "mA", Core: 2, Kind: SigAppError})
		tr.Add(Signal{Machine: "mB", Core: 9, Kind: SigCrash})
	}
	sus := tr.Suspects()
	if len(sus) != 2 {
		t.Fatalf("suspects = %d, want 2", len(sus))
	}
	seen := map[string]int{}
	for _, s := range sus {
		seen[s.Machine] = s.Core
	}
	if seen["mA"] != 2 || seen["mB"] != 9 {
		t.Fatalf("suspects = %+v", sus)
	}
}

func TestTrackerRankingByScore(t *testing.T) {
	tr := NewTracker(64)
	for i := 0; i < 3; i++ {
		tr.Add(Signal{Machine: "weak", Core: 1, Kind: SigCrash})
	}
	for i := 0; i < 20; i++ {
		tr.Add(Signal{Machine: "strong", Core: 2, Kind: SigCrash})
	}
	sus := tr.Suspects()
	if len(sus) != 2 {
		t.Fatalf("suspects = %d", len(sus))
	}
	if sus[0].Machine != "strong" {
		t.Fatalf("ranking wrong: %+v", sus)
	}
	if sus[0].Score() <= sus[1].Score() {
		t.Fatal("scores not ordered")
	}
}

func TestTrackerDeterministicOrder(t *testing.T) {
	build := func() []Suspect {
		tr := NewTracker(8)
		for _, m := range []string{"m3", "m1", "m2"} {
			for i := 0; i < 5; i++ {
				tr.Add(Signal{Machine: m, Core: 0, Kind: SigCrash})
			}
		}
		return tr.Suspects()
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Machine != b[i].Machine || a[i].Core != b[i].Core {
			t.Fatalf("order not deterministic: %+v vs %+v", a, b)
		}
	}
}

func TestTrackerNoisePlusHotCore(t *testing.T) {
	// Realistic mix: background software-bug noise over all cores plus a
	// genuinely hot core. Only the hot core should surface.
	tr := NewTracker(32)
	rng := xrand.New(9)
	for i := 0; i < 30; i++ {
		tr.Add(Signal{Machine: "m", Core: rng.Intn(32), Kind: SigCrash})
	}
	for i := 0; i < 25; i++ {
		tr.Add(Signal{Machine: "m", Core: 7, Kind: SigAppError})
	}
	sus := tr.Suspects()
	if len(sus) == 0 {
		t.Fatal("hot core not nominated over noise")
	}
	if sus[0].Core != 7 {
		t.Fatalf("top suspect core = %d, want 7", sus[0].Core)
	}
	if sus[0].Gini <= 0.3 {
		t.Fatalf("gini = %v, want concentrated", sus[0].Gini)
	}
}

func TestSuspectScoreMonotoneInReports(t *testing.T) {
	a := Suspect{Reports: 2, PValue: 1e-4}
	b := Suspect{Reports: 10, PValue: 1e-4}
	if b.Score() <= a.Score() {
		t.Fatal("score should grow with reports")
	}
	c := Suspect{Reports: 2, PValue: 1e-12}
	if c.Score() <= a.Score() {
		t.Fatal("score should grow as p-value shrinks")
	}
}

func TestSuspectScoreHandlesZeroPValue(t *testing.T) {
	s := Suspect{Reports: 5, PValue: 0}
	if sc := s.Score(); sc <= 0 || sc != sc /* NaN check */ {
		t.Fatalf("score = %v", sc)
	}
}

func TestConfessConfirmsRealDefect(t *testing.T) {
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, BaseRate: 1e-4,
		Kind: fault.CorruptBitFlip, BitPos: 3}
	core := fault.NewCore("guilty", xrand.New(1), d)
	conf := Confess(core, screen.Deep(), xrand.New(2))
	if !conf.Confirmed {
		t.Fatal("deep screen failed to extract a confession from a 1e-4 defect")
	}
	if conf.CoreID != "guilty" {
		t.Fatalf("core id %q", conf.CoreID)
	}
}

func TestConfessExoneratesHealthyCore(t *testing.T) {
	core := fault.NewCore("innocent", xrand.New(3))
	conf := Confess(core, screen.Deep(), xrand.New(4))
	if conf.Confirmed {
		t.Fatal("healthy core confessed")
	}
	if conf.Report.OpsUsed == 0 {
		t.Fatal("no screening work recorded")
	}
}

func TestTrackerTimeWindow(t *testing.T) {
	tr := NewTracker(4)
	tr.Add(Signal{Machine: "m", Core: 0, Kind: SigCrash, Time: 100})
	tr.Add(Signal{Machine: "m", Core: 0, Kind: SigCrash, Time: 50})
	tr.Add(Signal{Machine: "m", Core: 0, Kind: SigCrash, Time: 200})
	tr.Add(Signal{Machine: "m", Core: 0, Kind: SigCrash, Time: 150})
	tr.Alpha = 1 // accept anything for this test
	sus := tr.Suspects()
	if len(sus) != 1 {
		t.Fatalf("suspects = %d", len(sus))
	}
	if sus[0].First != 50 || sus[0].Last != 200 {
		t.Fatalf("window = [%v, %v]", sus[0].First, sus[0].Last)
	}
}

func TestTrackerOutOfRangeCoreIndex(t *testing.T) {
	// A signal naming a core index beyond the machine shape must not
	// panic the concentration test.
	tr := NewTracker(4)
	for i := 0; i < 5; i++ {
		tr.Add(Signal{Machine: "m", Core: 9, Kind: SigCrash})
	}
	_ = tr.Suspects() // must not panic
}

func BenchmarkTrackerSuspects(b *testing.B) {
	tr := NewTracker(128)
	rng := xrand.New(1)
	for m := 0; m < 50; m++ {
		machine := string(rune('a' + m%26))
		for i := 0; i < 40; i++ {
			tr.Add(Signal{Machine: machine, Core: rng.Intn(128), Kind: SigCrash})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Suspects()
	}
}

func TestForgetMachine(t *testing.T) {
	tr := NewTracker(8)
	for i := 0; i < 6; i++ {
		tr.Add(Signal{Machine: "m", Core: 1, Kind: SigCrash})
	}
	if len(tr.Suspects()) != 1 {
		t.Fatal("setup: no suspect")
	}
	tr.Forget("m")
	if len(tr.Suspects()) != 0 {
		t.Fatal("forgotten machine still nominated")
	}
	if tr.Reports("m") != 0 {
		t.Fatal("reports survived Forget")
	}
}

func TestForgetCore(t *testing.T) {
	tr := NewTracker(8)
	for i := 0; i < 6; i++ {
		tr.Add(Signal{Machine: "m", Core: 1, Kind: SigCrash})
		tr.Add(Signal{Machine: "m", Core: 3, Kind: SigCrash})
	}
	tr.ForgetCore("m", 1)
	sus := tr.Suspects()
	if len(sus) != 1 || sus[0].Core != 3 {
		t.Fatalf("suspects after ForgetCore = %+v", sus)
	}
	// Forgetting the last core clears the machine entry.
	tr.ForgetCore("m", 3)
	if len(tr.Suspects()) != 0 || len(tr.perCore) != 0 {
		t.Fatal("machine entry not cleared")
	}
	// Forgetting unknown machine/core is a no-op.
	tr.ForgetCore("nope", 0)
	tr.Forget("nope")
}

func TestReportingMachines(t *testing.T) {
	tr := NewTracker(8)
	if tr.ReportingMachines() != 0 {
		t.Fatal("fresh tracker has reporters")
	}
	tr.Add(Signal{Machine: "a", Core: 1, Kind: SigCrash})
	tr.Add(Signal{Machine: "a", Core: 2, Kind: SigMCE})
	tr.Add(Signal{Machine: "b", Core: -1, Kind: SigCrash}) // machine-level only
	tr.Add(Signal{Machine: "c", Core: 0, Kind: SigAppError})
	if got := tr.ReportingMachines(); got != 3 {
		t.Fatalf("ReportingMachines = %d, want 3", got)
	}
	// The census is lifetime, not live state: Forget does not shrink it.
	tr.Forget("a")
	tr.ForgetCore("c", 0)
	if got := tr.ReportingMachines(); got != 3 {
		t.Fatalf("ReportingMachines after Forget = %d, want 3", got)
	}
}
