// Package detect implements the §6 signal pipeline for identifying
// mercurial-core suspects: aggregating crash, machine-check, sanitizer,
// application-error, and user reports; testing whether reports concentrate
// on a few cores (a CEE signature) or spread evenly (a software-bug
// signature); tracking recidivism; and extracting "confessions" from
// suspects via deep screening.
//
// Concurrency model: Tracker is a deliberately lock-free single-writer
// structure. Concurrent producers (parallel fleet shards, HTTP handlers)
// must not call Add directly; they buffer []Signal privately and hand the
// buffers to one merging goroutine — report.Server wraps exactly that
// single-writer merge behind a mutex, and the fleet simulator merges its
// per-shard buffers in deterministic shard order. Suspect nomination is
// insensitive to signal order within a day (counts, first/last-time
// bounds, and the concentration statistic are all multiset functions), so
// an ordered merge of per-shard buffers is bit-identical to a serial run.
package detect

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/screen"
	"repro/internal/simtime"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// SignalKind enumerates the automatable CEE signals of §6.
type SignalKind int

const (
	// SigCrash is a user-process or kernel crash attributed to a core.
	SigCrash SignalKind = iota
	// SigMCE is a machine-check event.
	SigMCE
	// SigSanitizer is a code-sanitizer report (e.g. ASan-style memory
	// corruption on a healthy-looking program).
	SigSanitizer
	// SigAppError is an application-level self-check failure (checksum
	// mismatch, replica divergence) reported via the RPC service.
	SigAppError
	// SigScreenFail is a screening-corpus failure.
	SigScreenFail
	// SigUserReport is a human-filed suspicion from incident triage.
	SigUserReport
)

var signalNames = [...]string{"crash", "mce", "sanitizer", "app-error", "screen-fail", "user-report"}

func (k SignalKind) String() string {
	if k < 0 || int(k) >= len(signalNames) {
		return fmt.Sprintf("SignalKind(%d)", int(k))
	}
	return signalNames[k]
}

// Signal is one suspect-core report.
type Signal struct {
	Machine string
	// Core is the core index within the machine, or -1 when the signal
	// could not be attributed below machine granularity.
	Core int
	Kind SignalKind
	Time simtime.Time
	// Detail carries free-form triage context.
	Detail string
}

// Suspect is a core the tracker believes may be mercurial.
type Suspect struct {
	Machine string
	Core    int
	// Reports is the number of core-attributed signals.
	Reports int
	// PValue is the concentration test result: the probability of
	// seeing this core's report count under the uniform (software-bug)
	// hypothesis. Small = suspicious.
	PValue float64
	// Gini is the machine-level report concentration.
	Gini float64
	// Kinds tallies signals by kind.
	Kinds map[SignalKind]int
	// First and Last bound the report window (recidivism over time).
	First, Last simtime.Time
}

// Score orders suspects: more reports and a smaller p-value rank higher.
func (s *Suspect) Score() float64 {
	p := s.PValue
	if p < 1e-300 {
		p = 1e-300
	}
	return float64(s.Reports) * -math.Log10(p)
}

// Tracker aggregates signals and nominates suspects. It implements the §6
// policy: "Reports that are evenly spread across cores probably are not
// CEEs; reports from multiple applications that appear to be concentrated
// on a few cores might well be CEEs."
type Tracker struct {
	// CoresPerMachine is needed to form the per-core histogram
	// (including zero-report cores) for the concentration test.
	CoresPerMachine int
	// Alpha is the concentration-test significance threshold.
	Alpha float64
	// MinReports is the recidivism floor: a single report never
	// nominates a suspect.
	MinReports int

	perCore    map[string]map[int]*coreStats
	perMachine map[string]int // machine-level (core == -1) signal counts
	// reporters records every machine that has ever submitted a signal —
	// including machines whose reports never concentrated into a
	// nomination. Forget deliberately leaves it alone: it is a lifetime
	// census (bounded by fleet size), not live tracker state, and it is
	// what /v1/stats reports as "machines".
	reporters map[string]bool
}

type coreStats struct {
	count       int
	kinds       map[SignalKind]int
	first, last simtime.Time
}

// NewTracker returns a tracker with the given machine shape and the
// default policy (alpha = 0.001, at least 2 reports).
func NewTracker(coresPerMachine int) *Tracker {
	return &Tracker{
		CoresPerMachine: coresPerMachine,
		Alpha:           0.001,
		MinReports:      2,
		perCore:         map[string]map[int]*coreStats{},
		perMachine:      map[string]int{},
		reporters:       map[string]bool{},
	}
}

// Add ingests one signal.
func (t *Tracker) Add(s Signal) {
	t.reporters[s.Machine] = true
	if s.Core < 0 {
		t.perMachine[s.Machine]++
		return
	}
	m := t.perCore[s.Machine]
	if m == nil {
		m = map[int]*coreStats{}
		t.perCore[s.Machine] = m
	}
	cs := m[s.Core]
	if cs == nil {
		cs = &coreStats{kinds: map[SignalKind]int{}, first: s.Time}
		m[s.Core] = cs
	}
	cs.count++
	cs.kinds[s.Kind]++
	if s.Time < cs.first {
		cs.first = s.Time
	}
	if s.Time > cs.last {
		cs.last = s.Time
	}
}

// AddBatch ingests a buffer of signals in order — the single-writer merge
// step for concurrent producers that accumulated signals privately.
func (t *Tracker) AddBatch(sigs []Signal) {
	for _, s := range sigs {
		t.Add(s)
	}
}

// Forget drops all state for a machine — called after the machine is
// drained, repaired, or replaced, so stale reports cannot re-nominate a
// core that no longer exists (and the tracker's memory stays bounded by
// the live fleet).
func (t *Tracker) Forget(machine string) {
	delete(t.perCore, machine)
	delete(t.perMachine, machine)
}

// ForgetCore drops state for one core — called after the core is
// quarantined, so its historical reports stop dominating the machine's
// concentration statistics.
func (t *Tracker) ForgetCore(machine string, core int) {
	if m := t.perCore[machine]; m != nil {
		delete(m, core)
		if len(m) == 0 {
			delete(t.perCore, machine)
		}
	}
}

// ReportingMachines returns the number of distinct machines that have
// ever submitted a signal — a lifetime census that, unlike the suspect
// list, also counts machines whose reports never produced a nomination.
// Forget does not shrink it.
func (t *Tracker) ReportingMachines() int { return len(t.reporters) }

// Reports returns the total core-attributed signal count for a machine.
func (t *Tracker) Reports(machine string) int {
	total := 0
	for _, cs := range t.perCore[machine] {
		total += cs.count
	}
	return total
}

// Suspects evaluates every machine and returns the cores whose report
// concentration beats the tracker's policy, ranked by Score (highest
// first). Ties break deterministically by (machine, core).
func (t *Tracker) Suspects() []Suspect {
	var out []Suspect
	machines := make([]string, 0, len(t.perCore))
	for m := range t.perCore {
		machines = append(machines, m)
	}
	sort.Strings(machines)
	for _, machine := range machines {
		cores := t.perCore[machine]
		counts := make([]int, t.CoresPerMachine)
		gvals := make([]float64, t.CoresPerMachine)
		for idx, cs := range cores {
			if idx >= 0 && idx < t.CoresPerMachine {
				counts[idx] = cs.count
				gvals[idx] = float64(cs.count)
			}
		}
		gini := stats.Gini(gvals)
		for idx, cs := range cores {
			if cs.count < t.MinReports {
				continue
			}
			total := 0
			for _, c := range counts {
				total += c
			}
			p := stats.BinomialTailAtLeast(total, 1/float64(t.CoresPerMachine), cs.count)
			p *= float64(t.CoresPerMachine) // Bonferroni over cores
			if p > 1 {
				p = 1
			}
			if p > t.Alpha {
				continue
			}
			out = append(out, Suspect{
				Machine: machine,
				Core:    idx,
				Reports: cs.count,
				PValue:  p,
				Gini:    gini,
				Kinds:   copyKinds(cs.kinds),
				First:   cs.first,
				Last:    cs.last,
			})
		}
	}
	sortSuspects(out)
	return out
}

// sortSuspects orders suspects by Score (highest first), ties broken
// deterministically by (machine, core) — the ranking contract shared by
// Tracker and ShardedTracker.
func sortSuspects(out []Suspect) {
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Score(), out[j].Score()
		if si != sj {
			return si > sj
		}
		if out[i].Machine != out[j].Machine {
			return out[i].Machine < out[j].Machine
		}
		return out[i].Core < out[j].Core
	})
}

func copyKinds(in map[SignalKind]int) map[SignalKind]int {
	out := make(map[SignalKind]int, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// Confession is the result of deep-screening a suspect: §6's "we must
// extract confessions via further testing".
type Confession struct {
	CoreID string
	// Confirmed is true if the deep screen reproduced a failure.
	Confirmed bool
	// Report is the underlying screening report.
	Report screen.Report
}

// Confess runs a deep screen against the physical core behind a suspect.
// In production this is the expensive, offline step; in the simulator the
// caller supplies the fault.Core under suspicion.
func Confess(core *fault.Core, cfg screen.Config, rng *xrand.RNG) Confession {
	rep := screen.Screen(core, cfg, rng)
	return Confession{CoreID: core.ID, Confirmed: rep.Detected, Report: rep}
}
