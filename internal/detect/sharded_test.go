package detect

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/simtime"
)

// shardedSignals builds a mixed workload: concentrated CEE-style reports on
// a few cores, diffuse software-bug-style noise, and machine-level signals,
// spread over enough machines to populate every shard.
func shardedSignals() []Signal {
	var sigs []Signal
	day := func(d int) simtime.Time { return simtime.Time(d) * simtime.Day }
	for i := 0; i < 64; i++ {
		m := fmt.Sprintf("m%05d", i)
		// Concentrated reports on core i%8 for every fourth machine.
		if i%4 == 0 {
			for r := 0; r < 6; r++ {
				sigs = append(sigs, Signal{Machine: m, Core: i % 8, Kind: SigCrash, Time: day(r)})
			}
		}
		// Diffuse noise across cores.
		sigs = append(sigs,
			Signal{Machine: m, Core: (i * 3) % 16, Kind: SigAppError, Time: day(i % 5)},
			Signal{Machine: m, Core: (i * 7) % 16, Kind: SigSanitizer, Time: day(i % 3)},
			Signal{Machine: m, Core: -1, Kind: SigMCE, Time: day(1)},
		)
	}
	return sigs
}

// TestShardedEquivalence feeds the same multiset of signals to a plain
// Tracker and a ShardedTracker and asserts identical nominations, census,
// and per-machine counts — including after Forget/ForgetCore.
func TestShardedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 3, 16} {
		sigs := shardedSignals()
		plain := NewTracker(16)
		sharded := NewShardedTracker(16, shards)
		plain.AddBatch(sigs)
		sharded.AddBatch(sigs)

		if got, want := sharded.ReportingMachines(), plain.ReportingMachines(); got != want {
			t.Fatalf("shards=%d: ReportingMachines %d, want %d", shards, got, want)
		}
		for i := 0; i < 64; i++ {
			m := fmt.Sprintf("m%05d", i)
			if got, want := sharded.Reports(m), plain.Reports(m); got != want {
				t.Fatalf("shards=%d: Reports(%s) %d, want %d", shards, m, got, want)
			}
		}
		if got, want := sharded.Suspects(), plain.Suspects(); !suspectsEqual(got, want) {
			t.Fatalf("shards=%d: suspects diverge:\n got %+v\nwant %+v", shards, got, want)
		}

		plain.Forget("m00000")
		sharded.Forget("m00000")
		plain.ForgetCore("m00004", 4)
		sharded.ForgetCore("m00004", 4)
		if got, want := sharded.Suspects(), plain.Suspects(); !suspectsEqual(got, want) {
			t.Fatalf("shards=%d: suspects diverge after forget", shards)
		}
	}
}

// TestShardedOrderInsensitive checks concurrent sharded ingest lands on the
// same state as serial ingest: suspect nomination is a multiset function,
// so interleaving across shards must not change the outcome.
func TestShardedOrderInsensitive(t *testing.T) {
	sigs := shardedSignals()
	serial := NewShardedTracker(16, 8)
	serial.AddBatch(sigs)

	concurrent := NewShardedTracker(16, 8)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(sigs); i += workers {
				concurrent.Add(sigs[i])
			}
		}(w)
	}
	// Concurrent readers exercise the shard locks under -race.
	wg.Add(2)
	go func() { defer wg.Done(); _ = concurrent.Suspects() }()
	go func() { defer wg.Done(); _ = concurrent.ReportingMachines() }()
	wg.Wait()

	if got, want := concurrent.Suspects(), serial.Suspects(); !suspectsEqual(got, want) {
		t.Fatalf("concurrent ingest diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestShardedBatchGrouping(t *testing.T) {
	// A batch alternating between shards exercises the flush-per-run path.
	var sigs []Signal
	for r := 0; r < 3; r++ {
		for i := 0; i < 10; i++ {
			sigs = append(sigs, Signal{Machine: fmt.Sprintf("m%05d", i), Core: 2, Kind: SigCrash})
		}
	}
	sharded := NewShardedTracker(16, 4)
	sharded.AddBatch(sigs)
	plain := NewTracker(16)
	plain.AddBatch(sigs)
	if got, want := sharded.Suspects(), plain.Suspects(); !suspectsEqual(got, want) {
		t.Fatalf("batched ingest diverged:\n got %+v\nwant %+v", got, want)
	}
}

func suspectsEqual(a, b []Suspect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Machine != y.Machine || x.Core != y.Core || x.Reports != y.Reports ||
			x.PValue != y.PValue || x.Gini != y.Gini || x.First != y.First || x.Last != y.Last {
			return false
		}
		if len(x.Kinds) != len(y.Kinds) {
			return false
		}
		for k, v := range x.Kinds {
			if y.Kinds[k] != v {
				return false
			}
		}
	}
	return true
}
