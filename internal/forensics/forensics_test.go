package forensics

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/screen"
	"repro/internal/xrand"
)

func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(fault.CorruptionEvent{Op: fault.OpAdd, Seq: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("events = %+v", evs)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	r := NewRing(8)
	r.Add(fault.CorruptionEvent{Op: fault.OpMul, Seq: 1})
	r.Add(fault.CorruptionEvent{Op: fault.OpMul, Seq: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 100; i++ {
		r.Add(fault.CorruptionEvent{Seq: uint64(i)})
	}
	if len(r.Events()) != 64 {
		t.Fatalf("retained %d", len(r.Events()))
	}
}

func TestRingHookCapturesEngineCorruption(t *testing.T) {
	d := fault.Defect{ID: "d", Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 2}
	core := fault.NewCore("c", xrand.New(1), d)
	ring := NewRing(16)
	core.OnCorrupt = ring.Hook()
	e := engine.New(core)
	for i := 0; i < 5; i++ {
		e.Add64(1, 1)
	}
	e.Mul64(2, 2) // different unit, no corruption
	if ring.Total() != 5 {
		t.Fatalf("total = %d", ring.Total())
	}
	byOp := ring.ByOpClass()
	if byOp[fault.OpAdd] != 5 || byOp[fault.OpMul] != 0 {
		t.Fatalf("byOp = %v", byOp)
	}
}

// characterize runs a full (no-early-stop) screen for classification.
func characterize(t *testing.T, core *fault.Core, seed uint64) screen.Report {
	t.Helper()
	cfg := screen.NewConfig(screen.WithPasses(3), screen.WithSweep(2, 1, 2),
		screen.WithStopOnDetect(false))
	return screen.Screen(core, cfg, xrand.New(seed))
}

func TestClassifyDeterministicCrypto(t *testing.T) {
	d := fault.Defect{ID: "d", Unit: fault.UnitCrypto, Deterministic: true,
		Kind: fault.CorruptXORMask, Mask: 1 << 5}
	core := fault.NewCore("c", xrand.New(2), d)
	mode, ok := Classify(characterize(t, core, 3))
	if !ok {
		t.Fatal("nothing to classify")
	}
	if !mode.Deterministic {
		t.Fatalf("deterministic defect classified as intermittent: %v", mode)
	}
	hasCrypto := false
	for _, u := range mode.Units {
		if u == fault.UnitCrypto {
			hasCrypto = true
		}
	}
	if !hasCrypto {
		t.Fatalf("crypto unit not implicated: %v", mode)
	}
	if !strings.Contains(mode.Key(), "/det") {
		t.Fatalf("key = %q", mode.Key())
	}
}

func TestClassifyNothing(t *testing.T) {
	core := fault.NewCore("h", xrand.New(4))
	if _, ok := Classify(characterize(t, core, 5)); ok {
		t.Fatal("healthy core produced a classification")
	}
}

func TestSameClassSameSignature(t *testing.T) {
	mk := func(seed uint64) Mode {
		d := fault.Defect{ID: "d", Unit: fault.UnitVec, Deterministic: true,
			Kind: fault.CorruptWrongLane}
		core := fault.NewCore("c", xrand.New(seed), d)
		m, ok := Classify(characterize(t, core, seed+10))
		if !ok {
			t.Fatal("no classification")
		}
		return m
	}
	a, b := mk(6), mk(7)
	if a.Key() != b.Key() {
		t.Fatalf("same defect class classified differently: %q vs %q", a.Key(), b.Key())
	}
}

func TestDifferentUnitsDifferentSignature(t *testing.T) {
	mkMode := func(u fault.Unit, seed uint64) Mode {
		d := fault.Defect{ID: "d", Unit: u, Deterministic: true,
			Kind: fault.CorruptOffByOne, Delta: 1}
		core := fault.NewCore("c", xrand.New(seed), d)
		m, ok := Classify(characterize(t, core, seed+20))
		if !ok {
			t.Fatal("no classification")
		}
		return m
	}
	// Note: UnitAtomic is unusable here — a deterministic store-value
	// corruption on CAS keeps the lock workload's mutual exclusion
	// intact and is invisible to the whole corpus, a genuine coverage
	// gap of the kind §4 warns about.
	crypto := mkMode(fault.UnitCrypto, 8)
	fpu := mkMode(fault.UnitFPU, 9)
	if crypto.Key() == fpu.Key() {
		t.Fatalf("distinct units share signature %q", crypto.Key())
	}
}

func TestModeDBNovelty(t *testing.T) {
	db := NewModeDB()
	m1 := Mode{Units: []fault.Unit{fault.UnitALU}, Deterministic: false}
	m2 := Mode{Units: []fault.Unit{fault.UnitCrypto}, Deterministic: true}
	if !db.Observe(m1) {
		t.Fatal("first observation not novel")
	}
	if db.Observe(m1) {
		t.Fatal("second observation still novel")
	}
	if !db.Observe(m2) {
		t.Fatal("distinct mode not novel")
	}
	if db.Count(m1) != 2 || db.Count(m2) != 1 {
		t.Fatalf("counts: %d %d", db.Count(m1), db.Count(m2))
	}
	known := db.Known()
	if len(known) != 2 || known[0] != m1.Key() {
		t.Fatalf("known = %v", known)
	}
	rep := db.Report()
	if !strings.Contains(rep, "known defect modes: 2") {
		t.Fatalf("report = %q", rep)
	}
}

func TestModeString(t *testing.T) {
	m := Mode{Units: []fault.Unit{fault.UnitALU, fault.UnitMul}}
	if got := m.String(); !strings.Contains(got, "ALU+MUL/int") {
		t.Fatalf("string = %q", got)
	}
}
