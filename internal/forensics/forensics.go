// Package forensics implements the §9 research ask to "develop methods to
// detect novel defect modes, and to efficiently record sufficient forensic
// evidence across large fleets":
//
//   - Ring is a constant-memory per-core recorder of recent corruption
//     events (attached via fault.Core's OnCorrupt hook) — the evidence a
//     triage engineer dumps after a suspicion fires, without paying for
//     unbounded logs fleet-wide.
//   - Mode/ModeDB classify a characterization screen into a defect-mode
//     signature (which execution units are implicated, and whether the
//     failures reproduce deterministically) and track which signatures the
//     fleet has seen before. A novel signature is exactly the §6 situation
//     where "new tests might be developed, in response to newly-discovered
//     defect modes, after deployment".
package forensics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/screen"
)

// Ring is a fixed-capacity ring buffer of corruption events. It is safe
// for use from a single goroutine (like the engine that feeds it); wrap
// externally if shared.
type Ring struct {
	events []fault.CorruptionEvent
	next   int
	total  uint64
}

// NewRing returns a ring holding the most recent capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 64
	}
	return &Ring{events: make([]fault.CorruptionEvent, 0, capacity)}
}

// Hook returns a function suitable for fault.Core.OnCorrupt.
func (r *Ring) Hook() func(fault.CorruptionEvent) {
	return func(e fault.CorruptionEvent) { r.Add(e) }
}

// Add records one event, evicting the oldest if full.
func (r *Ring) Add(e fault.CorruptionEvent) {
	r.total++
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
		return
	}
	r.events[r.next] = e
	r.next = (r.next + 1) % cap(r.events)
}

// Total returns the number of events ever recorded (not just retained).
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []fault.CorruptionEvent {
	if len(r.events) < cap(r.events) {
		return append([]fault.CorruptionEvent(nil), r.events...)
	}
	out := make([]fault.CorruptionEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// ByOpClass tallies retained events by operation class — the first thing
// a triage engineer looks at ("this code has miscomputed on that core").
func (r *Ring) ByOpClass() map[fault.OpClass]int {
	out := map[fault.OpClass]int{}
	for _, e := range r.Events() {
		out[e.Op]++
	}
	return out
}

// Mode is an observable defect-mode signature derived from a
// characterization screen: the set of implicated execution units plus
// gross reproducibility. It deliberately contains nothing that requires
// knowing the underlying defect — production triage cannot see that.
type Mode struct {
	// Units is the sorted set of execution units implicated by failing
	// workloads.
	Units []fault.Unit
	// Deterministic is true when every pass at some operating point
	// failed (the defect reproduces on demand).
	Deterministic bool
}

// Key renders the mode as a stable map key.
func (m Mode) Key() string {
	parts := make([]string, len(m.Units))
	for i, u := range m.Units {
		parts[i] = u.String()
	}
	k := strings.Join(parts, "+")
	if m.Deterministic {
		k += "/det"
	} else {
		k += "/int"
	}
	return k
}

func (m Mode) String() string { return "mode[" + m.Key() + "]" }

// Classify derives the mode signature from a characterization report. The
// report should come from a full (StopOnDetect=false) screen so the
// failing-workload set is complete. ok is false when the report contains
// no detections (nothing to classify).
func Classify(rep screen.Report) (Mode, bool) {
	if len(rep.Detections) == 0 {
		return Mode{}, false
	}
	unitSet := map[fault.Unit]bool{}
	failuresPerWorkload := map[string]int{}
	for _, det := range rep.Detections {
		failuresPerWorkload[det.Result.Workload]++
		w, err := corpus.ByName(det.Result.Workload)
		if err != nil {
			continue
		}
		for _, u := range w.Units() {
			unitSet[u] = true
		}
	}
	units := make([]fault.Unit, 0, len(unitSet))
	for u := range unitSet {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })

	// Deterministic heuristic: some workload failed on every pass run.
	det := false
	for _, n := range failuresPerWorkload {
		if rep.PassesRun > 0 && n >= rep.PassesRun {
			det = true
			break
		}
	}
	return Mode{Units: units, Deterministic: det}, true
}

// ModeDB tracks the defect modes a fleet has confirmed so far. Safe for
// concurrent use.
type ModeDB struct {
	mu    sync.Mutex
	seen  map[string]int
	order []string
}

// NewModeDB returns an empty mode database.
func NewModeDB() *ModeDB {
	return &ModeDB{seen: map[string]int{}}
}

// Observe records a mode occurrence and reports whether it was novel —
// the trigger for §6's "develop a new automatable test" loop.
func (db *ModeDB) Observe(m Mode) (novel bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := m.Key()
	if db.seen[k] == 0 {
		novel = true
		db.order = append(db.order, k)
	}
	db.seen[k]++
	return novel
}

// Count returns how many times a mode has been observed.
func (db *ModeDB) Count(m Mode) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.seen[m.Key()]
}

// Known returns all observed mode keys in first-seen order.
func (db *ModeDB) Known() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]string(nil), db.order...)
}

// Report renders the database for operator consumption.
func (db *ModeDB) Report() string {
	db.mu.Lock()
	defer db.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "known defect modes: %d\n", len(db.order))
	for _, k := range db.order {
		fmt.Fprintf(&b, "  %-24s seen %d time(s)\n", k, db.seen[k])
	}
	return b.String()
}
