// Package engine provides the operation-level faulty execution engine: the
// software analogue of running real code on a (possibly mercurial) core.
//
// Every workload in this repository performs its arithmetic, vector, copy,
// crypto, atomic, and memory operations through an Engine bound to a
// fault.Core. On a healthy core the engine computes exact results; on a
// defective core the fault model may corrupt individual results, exactly
// the software-visible contract of a CEE: "the instructions malfunctioned
// in a way that could only be detected by checking the results of these
// instructions against the expected results" (§1).
//
// This is the "fault injector for testing software resilience" that §9 of
// the paper calls for.
package engine

import (
	"fmt"
	"math"

	"repro/internal/fault"
)

// Trap describes a synchronous fault raised by an operation — the
// "fail-noisy" outcomes of §2 (exceptions, segmentation faults) as opposed
// to silent wrong answers.
type Trap struct {
	Kind string // "div-by-zero", "segfault"
	Op   fault.OpClass
	Addr uint64
}

func (t *Trap) Error() string {
	return fmt.Sprintf("trap: %s during %v (addr=%#x)", t.Kind, t.Op, t.Addr)
}

// Engine executes operations on one core. It is not safe for concurrent
// use; logical concurrency (the lock-semantics tests) is simulated
// deterministically by the corpus.
type Engine struct {
	core *fault.Core
	// trap records the first synchronous fault since the last ClearTrap.
	trap *Trap
}

// New binds an engine to a core.
func New(core *fault.Core) *Engine {
	return &Engine{core: core}
}

// Core returns the underlying fault-model core.
func (e *Engine) Core() *fault.Core { return e.core }

// Trapped returns the first trap since the last ClearTrap, or nil.
func (e *Engine) Trapped() *Trap { return e.trap }

// ClearTrap clears trap state (used between workload runs).
func (e *Engine) ClearTrap() { e.trap = nil }

func (e *Engine) raise(kind string, op fault.OpClass, addr uint64) {
	if e.trap == nil {
		e.trap = &Trap{Kind: kind, Op: op, Addr: addr}
	}
}

// alu applies the defect decision to a computed result for op with first
// operand a.
func (e *Engine) alu(op fault.OpClass, a, result uint64) uint64 {
	if d := e.core.Decide(op, a); d != nil {
		return d.CorruptResult(result)
	}
	return result
}

// Add64 returns a + b (possibly corrupted).
func (e *Engine) Add64(a, b uint64) uint64 { return e.alu(fault.OpAdd, a, a+b) }

// Sub64 returns a - b.
func (e *Engine) Sub64(a, b uint64) uint64 { return e.alu(fault.OpSub, a, a-b) }

// Mul64 returns a * b (low 64 bits).
func (e *Engine) Mul64(a, b uint64) uint64 { return e.alu(fault.OpMul, a, a*b) }

// Div64 returns a / b and a % b. Division by zero raises a trap and
// returns zeros — fail-noisy, like the hardware.
func (e *Engine) Div64(a, b uint64) (q, r uint64) {
	if b == 0 {
		e.raise("div-by-zero", fault.OpDiv, 0)
		return 0, 0
	}
	q = e.alu(fault.OpDiv, a, a/b)
	return q, a - q*b
}

// And64 returns a & b.
func (e *Engine) And64(a, b uint64) uint64 { return e.alu(fault.OpLogic, a, a&b) }

// Or64 returns a | b.
func (e *Engine) Or64(a, b uint64) uint64 { return e.alu(fault.OpLogic, a, a|b) }

// Xor64 returns a ^ b.
func (e *Engine) Xor64(a, b uint64) uint64 { return e.alu(fault.OpLogic, a, a^b) }

// Shl64 returns a << (k & 63).
func (e *Engine) Shl64(a uint64, k uint) uint64 { return e.alu(fault.OpShift, a, a<<(k&63)) }

// Shr64 returns a >> (k & 63).
func (e *Engine) Shr64(a uint64, k uint) uint64 { return e.alu(fault.OpShift, a, a>>(k&63)) }

// Rotl64 returns a rotated left by k; built from the shift unit.
func (e *Engine) Rotl64(a uint64, k uint) uint64 {
	k &= 63
	if k == 0 {
		return e.alu(fault.OpShift, a, a)
	}
	return e.alu(fault.OpShift, a, a<<k|a>>(64-k))
}

// Less64 reports a < b through the compare unit. A corrupted compare
// returns the wrong branch — the control-flow corruption path.
func (e *Engine) Less64(a, b uint64) bool {
	res := uint64(0)
	if a < b {
		res = 1
	}
	return e.alu(fault.OpCmp, a, res)&1 != 0
}

// Equal64 reports a == b through the compare unit.
func (e *Engine) Equal64(a, b uint64) bool {
	res := uint64(0)
	if a == b {
		res = 1
	}
	return e.alu(fault.OpCmp, a, res)&1 != 0
}

// FAdd returns a + b in float64, routed through the FPU.
func (e *Engine) FAdd(a, b float64) float64 {
	bits := math.Float64bits(a + b)
	return math.Float64frombits(e.alu(fault.OpFAdd, math.Float64bits(a), bits))
}

// FMul returns a * b in float64.
func (e *Engine) FMul(a, b float64) float64 {
	bits := math.Float64bits(a * b)
	return math.Float64frombits(e.alu(fault.OpFMul, math.Float64bits(a), bits))
}

// VecXor computes dst[i] = a[i] ^ b[i] lane by lane through the vector
// unit. Slices must have equal length.
func (e *Engine) VecXor(dst, a, b []uint64) {
	for i := range a {
		dst[i] = e.alu(fault.OpVec, a[i], a[i]^b[i])
	}
}

// VecAdd computes dst[i] = a[i] + b[i] through the vector unit.
func (e *Engine) VecAdd(dst, a, b []uint64) {
	for i := range a {
		dst[i] = e.alu(fault.OpVec, a[i], a[i]+b[i])
	}
}

// VecSum reduces a through the vector unit.
func (e *Engine) VecSum(a []uint64) uint64 {
	var s uint64
	for i := range a {
		s = e.alu(fault.OpVec, a[i], s+a[i])
	}
	return s
}

// Copy copies src to dst through the bulk-copy data path (which shares the
// vector unit, per §5), 8 bytes at a time. It returns the number of bytes
// copied (min of the two lengths).
func (e *Engine) Copy(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	i := 0
	for ; i+8 <= n; i += 8 {
		w := le64(src[i:])
		w2 := e.alu(fault.OpCopy, w, w)
		putLE64(dst[i:], w2)
	}
	if i < n {
		// Tail: one word op over the remaining bytes.
		var buf [8]byte
		copy(buf[:], src[i:n])
		w := le64(buf[:])
		w2 := e.alu(fault.OpCopy, w, w)
		putLE64(buf[:], w2)
		copy(dst[i:n], buf[:n-i])
	}
	return n
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// --- Crypto accelerator -------------------------------------------------
//
// The crypto unit implements a 64-bit ARX block cipher as a single
// accelerator operation, mirroring the paper's observation that CPUs are
// becoming "sets of discrete accelerators" whose defects are highly
// specific. A CorruptPreXORInput defect XORs the *plaintext input* of
// encryption and the *output* of decryption, reproducing §2's
// self-inverting AES mis-computation.

const (
	cryptoRounds = 8
	cryptoMulC   = 0x9e3779b97f4a7c15 // odd, hence invertible mod 2^64
	cryptoMulInv = 0xf1de83e19937733d // cryptoMulC^-1 mod 2^64
)

// cryptoE is the golden encryption of one block under key k.
func cryptoE(x, k uint64) uint64 {
	for r := 0; r < cryptoRounds; r++ {
		x ^= k + uint64(r)*0xbf58476d1ce4e5b9
		x = x<<17 | x>>47
		x *= cryptoMulC
	}
	return x
}

// cryptoD is the golden inverse of cryptoE.
func cryptoD(y, k uint64) uint64 {
	for r := cryptoRounds - 1; r >= 0; r-- {
		y *= cryptoMulInv
		y = y>>17 | y<<47
		y ^= k + uint64(r)*0xbf58476d1ce4e5b9
	}
	return y
}

// GoldenCryptoEncrypt64 is the defect-free reference encryption, used by
// known-answer self-checks and cross-core verification.
func GoldenCryptoEncrypt64(x, k uint64) uint64 { return cryptoE(x, k) }

// GoldenCryptoDecrypt64 is the defect-free reference decryption.
func GoldenCryptoDecrypt64(y, k uint64) uint64 { return cryptoD(y, k) }

// CryptoEncrypt64 encrypts one 64-bit block under key k through the crypto
// accelerator.
func (e *Engine) CryptoEncrypt64(x, k uint64) uint64 {
	if d := e.core.Decide(fault.OpCrypto, x); d != nil {
		if d.Kind == fault.CorruptPreXORInput {
			return cryptoE(x^d.Mask, k)
		}
		return d.CorruptResult(cryptoE(x, k))
	}
	return cryptoE(x, k)
}

// CryptoDecrypt64 decrypts one 64-bit block under key k. Note that the
// pattern gate of a PreXOR defect is evaluated against the *decrypted
// plaintext*, matching the hardware view where the defective stage sits on
// the plaintext side of the pipeline.
func (e *Engine) CryptoDecrypt64(y, k uint64) uint64 {
	plain := cryptoD(y, k)
	if d := e.core.Decide(fault.OpCrypto, plain); d != nil {
		if d.Kind == fault.CorruptPreXORInput {
			return plain ^ d.Mask
		}
		return d.CorruptResult(plain)
	}
	return plain
}

// --- Atomics -------------------------------------------------------------

// CAS performs a compare-and-swap on *p. A CorruptDropUpdate defect makes
// the CAS report success without performing the store — the lock-semantics
// violation of §2. Other corruption kinds corrupt the stored value.
func (e *Engine) CAS(p *uint64, old, new uint64) bool {
	if *p != old {
		// The failure path still consumes the atomic unit.
		e.core.Decide(fault.OpAtomic, old)
		return false
	}
	if d := e.core.Decide(fault.OpAtomic, old); d != nil {
		if d.Kind == fault.CorruptDropUpdate {
			return true // lies: reports success, stores nothing
		}
		*p = d.CorruptResult(new)
		return true
	}
	*p = new
	return true
}

// FetchAdd atomically adds delta to *p and returns the old value, subject
// to the same defect model as CAS.
func (e *Engine) FetchAdd(p *uint64, delta uint64) uint64 {
	old := *p
	if d := e.core.Decide(fault.OpAtomic, old); d != nil {
		if d.Kind == fault.CorruptDropUpdate {
			return old // update lost
		}
		*p = d.CorruptResult(old + delta)
		return old
	}
	*p = old + delta
	return old
}

// --- Memory --------------------------------------------------------------

// Memory is a word-addressed memory region for load/store workloads.
type Memory struct {
	Words []uint64
}

// NewMemory returns a memory of n words.
func NewMemory(n int) *Memory { return &Memory{Words: make([]uint64, n)} }

// Load reads word idx through the load/store unit. An address-path defect
// (CorruptOffByOne) perturbs the effective address: the load silently reads
// a neighbouring word, or traps if the bad address is out of range — the
// wrong-answers-and-exceptions mix of §2. Data-path defects corrupt the
// loaded value.
func (e *Engine) Load(m *Memory, idx uint64) uint64 {
	eff := idx
	var d *fault.Defect
	if d = e.core.Decide(fault.OpLoad, idx); d != nil && d.Kind == fault.CorruptOffByOne {
		eff = uint64(int64(idx) + d.Delta)
	}
	if eff >= uint64(len(m.Words)) {
		e.raise("segfault", fault.OpLoad, eff)
		return 0
	}
	v := m.Words[eff]
	if d != nil && d.Kind != fault.CorruptOffByOne {
		v = d.CorruptResult(v)
	}
	return v
}

// Store writes word idx through the load/store unit, with the same
// address/data defect semantics as Load. A wrong-address store corrupts
// *neighbouring* state — the blast-radius pattern behind §2's kernel
// crashes.
func (e *Engine) Store(m *Memory, idx, v uint64) {
	eff := idx
	var d *fault.Defect
	if d = e.core.Decide(fault.OpStore, idx); d != nil && d.Kind == fault.CorruptOffByOne {
		eff = uint64(int64(idx) + d.Delta)
	}
	if eff >= uint64(len(m.Words)) {
		e.raise("segfault", fault.OpStore, eff)
		return
	}
	if d != nil && d.Kind != fault.CorruptOffByOne {
		v = d.CorruptResult(v)
	}
	m.Words[eff] = v
}
