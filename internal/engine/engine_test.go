package engine

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/xrand"
)

func healthy(t testing.TB) *Engine {
	t.Helper()
	return New(fault.NewCore("h", xrand.New(1)))
}

func defective(t testing.TB, d fault.Defect) *Engine {
	t.Helper()
	d.ID = "d"
	return New(fault.NewCore("m", xrand.New(2), d))
}

func TestHealthyArithmetic(t *testing.T) {
	e := healthy(t)
	if e.Add64(3, 4) != 7 || e.Sub64(10, 4) != 6 || e.Mul64(6, 7) != 42 {
		t.Fatal("basic arithmetic wrong on healthy core")
	}
	q, r := e.Div64(17, 5)
	if q != 3 || r != 2 {
		t.Fatalf("div: q=%d r=%d", q, r)
	}
	if e.And64(0xF0, 0x3C) != 0x30 || e.Or64(0xF0, 0x0F) != 0xFF || e.Xor64(0xFF, 0x0F) != 0xF0 {
		t.Fatal("logic ops wrong")
	}
	if e.Shl64(1, 10) != 1024 || e.Shr64(1024, 10) != 1 {
		t.Fatal("shift ops wrong")
	}
	if e.Rotl64(1, 64) != 1 || e.Rotl64(0x8000000000000000, 1) != 1 {
		t.Fatal("rotate wrong")
	}
	if !e.Less64(1, 2) || e.Less64(2, 1) || e.Less64(2, 2) {
		t.Fatal("compare wrong")
	}
	if !e.Equal64(5, 5) || e.Equal64(5, 6) {
		t.Fatal("equality wrong")
	}
	if e.FAdd(1.5, 2.5) != 4.0 || e.FMul(3, 4) != 12.0 {
		t.Fatal("float ops wrong")
	}
}

func TestHealthyQuickMatchesNative(t *testing.T) {
	e := healthy(t)
	f := func(a, b uint64) bool {
		if e.Add64(a, b) != a+b || e.Sub64(a, b) != a-b || e.Mul64(a, b) != a*b {
			return false
		}
		if e.Xor64(a, b) != a^b || e.And64(a, b) != a&b || e.Or64(a, b) != a|b {
			return false
		}
		if b != 0 {
			q, r := e.Div64(a, b)
			if q != a/b || r != a%b {
				return false
			}
		}
		return e.Less64(a, b) == (a < b) && e.Equal64(a, b) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	e := healthy(t)
	q, r := e.Div64(1, 0)
	if q != 0 || r != 0 {
		t.Fatal("div-by-zero should return zeros")
	}
	trap := e.Trapped()
	if trap == nil || trap.Kind != "div-by-zero" {
		t.Fatalf("trap = %v", trap)
	}
	e.ClearTrap()
	if e.Trapped() != nil {
		t.Fatal("ClearTrap did not clear")
	}
}

func TestTrapKeepsFirst(t *testing.T) {
	e := healthy(t)
	e.Div64(1, 0)
	m := NewMemory(4)
	e.Load(m, 100)
	if e.Trapped().Kind != "div-by-zero" {
		t.Fatal("trap should record the first fault")
	}
}

func TestTrapError(t *testing.T) {
	tr := &Trap{Kind: "segfault", Op: fault.OpLoad, Addr: 0xdead}
	if got := tr.Error(); got == "" {
		t.Fatal("empty trap error")
	}
}

func TestDefectiveAddCorrupts(t *testing.T) {
	e := defective(t, fault.Defect{
		Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 0,
	})
	if e.Add64(2, 2) != 5 {
		t.Fatal("expected corrupted add 2+2=5")
	}
	// Mul routes through a different unit and stays correct.
	if e.Mul64(2, 2) != 4 {
		t.Fatal("mul should be unaffected by ALU defect")
	}
}

func TestCorruptedCompareFlipsBranch(t *testing.T) {
	e := defective(t, fault.Defect{
		Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 0,
	})
	if e.Less64(1, 2) {
		t.Fatal("corrupted compare should report 1 < 2 as false")
	}
}

func TestVectorOpsHealthy(t *testing.T) {
	e := healthy(t)
	a := []uint64{1, 2, 3, 4}
	b := []uint64{10, 20, 30, 40}
	dst := make([]uint64, 4)
	e.VecAdd(dst, a, b)
	for i := range dst {
		if dst[i] != a[i]+b[i] {
			t.Fatalf("VecAdd[%d] = %d", i, dst[i])
		}
	}
	e.VecXor(dst, a, b)
	for i := range dst {
		if dst[i] != a[i]^b[i] {
			t.Fatalf("VecXor[%d] = %d", i, dst[i])
		}
	}
	if e.VecSum(a) != 10 {
		t.Fatal("VecSum wrong")
	}
}

func TestVectorDefectAlsoHitsCopy(t *testing.T) {
	// §5: data-copy and vector ops share hardware logic — one defect must
	// corrupt both.
	e := defective(t, fault.Defect{
		Unit: fault.UnitVec, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 7,
	})
	dst := make([]uint64, 1)
	e.VecAdd(dst, []uint64{1}, []uint64{1})
	if dst[0] == 2 {
		t.Fatal("vector defect did not corrupt VecAdd")
	}
	src := []byte("12345678")
	out := make([]byte, 8)
	e.Copy(out, src)
	if bytes.Equal(out, src) {
		t.Fatal("vector defect did not corrupt Copy")
	}
}

func TestCopyHealthyAllSizes(t *testing.T) {
	e := healthy(t)
	rng := xrand.New(3)
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000} {
		src := make([]byte, n)
		rng.Bytes(src)
		dst := make([]byte, n)
		if got := e.Copy(dst, src); got != n {
			t.Fatalf("Copy returned %d, want %d", got, n)
		}
		if !bytes.Equal(dst, src) {
			t.Fatalf("Copy corrupted healthy data at n=%d", n)
		}
	}
}

func TestCopyShorterDst(t *testing.T) {
	e := healthy(t)
	src := []byte("abcdefghij")
	dst := make([]byte, 4)
	if n := e.Copy(dst, src); n != 4 {
		t.Fatalf("n = %d", n)
	}
	if string(dst) != "abcd" {
		t.Fatalf("dst = %q", dst)
	}
}

func TestCopyBitflipPositionPattern(t *testing.T) {
	// The §2 string-bitflip incident: same bit position every time.
	e := defective(t, fault.Defect{
		Unit: fault.UnitVec, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 9,
	})
	src := make([]byte, 64)
	dst := make([]byte, 64)
	e.Copy(dst, src)
	for i := 0; i < 64; i += 8 {
		w := le64(dst[i:])
		if w != 1<<9 {
			t.Fatalf("word %d = %#x, want bit 9 flipped", i/8, w)
		}
	}
}

func TestCryptoRoundTripHealthy(t *testing.T) {
	e := healthy(t)
	f := func(x, k uint64) bool {
		return e.CryptoDecrypt64(e.CryptoEncrypt64(x, k), k) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCryptoGoldenInverse(t *testing.T) {
	f := func(x, k uint64) bool { return cryptoD(cryptoE(x, k), k) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCryptoDiffusion(t *testing.T) {
	// Flipping one plaintext bit should change many ciphertext bits.
	y0 := cryptoE(0, 42)
	y1 := cryptoE(1, 42)
	diff := y0 ^ y1
	n := 0
	for ; diff != 0; diff &= diff - 1 {
		n++
	}
	if n < 16 {
		t.Fatalf("only %d bits differ; cipher has poor diffusion", n)
	}
}

func TestSelfInvertingCryptoDefect(t *testing.T) {
	// §2's deterministic AES mis-computation. Same core: E then D is the
	// identity. Different (healthy) core: decryption yields gibberish.
	mask := uint64(1) << 37
	d := fault.Defect{
		Unit: fault.UnitCrypto, Deterministic: true,
		Kind: fault.CorruptPreXORInput, Mask: mask,
	}
	bad := defective(t, d)
	good := healthy(t)
	const key = 0xfeedface
	for x := uint64(0); x < 64; x++ {
		ct := bad.CryptoEncrypt64(x, key)
		if got := bad.CryptoDecrypt64(ct, key); got != x {
			t.Fatalf("same-core roundtrip broke: %#x -> %#x", x, got)
		}
		if got := good.CryptoDecrypt64(ct, key); got != x^mask {
			t.Fatalf("cross-core decrypt: got %#x want gibberish %#x", got, x^mask)
		}
		if ct == good.CryptoEncrypt64(x, key) {
			t.Fatalf("defective ciphertext equals healthy ciphertext for x=%d", x)
		}
	}
}

func TestSelfInvertingPatternGated(t *testing.T) {
	d := fault.Defect{
		Unit: fault.UnitCrypto, Deterministic: true,
		Kind: fault.CorruptPreXORInput, Mask: 1 << 5,
		PatternMask: 0x7, PatternVal: 0x3,
	}
	bad := defective(t, d)
	good := healthy(t)
	const key = 99
	// Non-matching block encrypts correctly.
	if bad.CryptoEncrypt64(0, key) != good.CryptoEncrypt64(0, key) {
		t.Fatal("pattern-gated defect fired on non-matching block")
	}
	// Matching block (low bits 0b011) is corrupted.
	if bad.CryptoEncrypt64(3, key) == good.CryptoEncrypt64(3, key) {
		t.Fatal("pattern-gated defect did not fire on matching block")
	}
}

func TestCASHealthy(t *testing.T) {
	e := healthy(t)
	var v uint64 = 5
	if !e.CAS(&v, 5, 9) || v != 9 {
		t.Fatalf("CAS success path: v=%d", v)
	}
	if e.CAS(&v, 5, 1) || v != 9 {
		t.Fatalf("CAS failure path: v=%d", v)
	}
}

func TestCASDropUpdateLies(t *testing.T) {
	e := defective(t, fault.Defect{
		Unit: fault.UnitAtomic, Deterministic: true,
		Kind: fault.CorruptDropUpdate,
	})
	var v uint64 = 5
	if !e.CAS(&v, 5, 9) {
		t.Fatal("drop-update CAS should still report success")
	}
	if v != 5 {
		t.Fatalf("drop-update CAS stored: v=%d", v)
	}
}

func TestFetchAddHealthyAndDropped(t *testing.T) {
	e := healthy(t)
	var v uint64 = 10
	if old := e.FetchAdd(&v, 5); old != 10 || v != 15 {
		t.Fatalf("FetchAdd: old=%d v=%d", old, v)
	}
	bad := defective(t, fault.Defect{
		Unit: fault.UnitAtomic, Deterministic: true,
		Kind: fault.CorruptDropUpdate,
	})
	v = 10
	if old := bad.FetchAdd(&v, 5); old != 10 || v != 10 {
		t.Fatalf("dropped FetchAdd: old=%d v=%d", old, v)
	}
}

func TestMemoryLoadStoreHealthy(t *testing.T) {
	e := healthy(t)
	m := NewMemory(16)
	e.Store(m, 3, 77)
	if e.Load(m, 3) != 77 {
		t.Fatal("load after store wrong")
	}
	if e.Trapped() != nil {
		t.Fatal("unexpected trap")
	}
}

func TestMemoryOOBTraps(t *testing.T) {
	e := healthy(t)
	m := NewMemory(4)
	if v := e.Load(m, 4); v != 0 {
		t.Fatalf("OOB load returned %d", v)
	}
	if tr := e.Trapped(); tr == nil || tr.Kind != "segfault" {
		t.Fatalf("trap = %v", tr)
	}
	e.ClearTrap()
	e.Store(m, 99, 1)
	if tr := e.Trapped(); tr == nil || tr.Kind != "segfault" {
		t.Fatalf("store trap = %v", tr)
	}
}

func TestAddressDefectCorruptsNeighbour(t *testing.T) {
	// The LSU off-by-delta defect: a store lands on a neighbouring word,
	// silently corrupting unrelated state (§2's kernel-crash pattern).
	e := defective(t, fault.Defect{
		Unit: fault.UnitLSU, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 2,
	})
	m := NewMemory(16)
	m.Words[5] = 111 // victim
	e.Store(m, 3, 42)
	if m.Words[3] != 0 {
		t.Fatal("store landed at the right address despite defect")
	}
	if m.Words[5] != 42 {
		t.Fatalf("neighbour not corrupted: %v", m.Words[:8])
	}
}

func TestAddressDefectCanTrap(t *testing.T) {
	e := defective(t, fault.Defect{
		Unit: fault.UnitLSU, Deterministic: true,
		Kind: fault.CorruptOffByOne, Delta: 100,
	})
	m := NewMemory(4)
	e.Load(m, 3)
	if tr := e.Trapped(); tr == nil || tr.Kind != "segfault" {
		t.Fatal("wild address should trap")
	}
}

func TestLoadDataDefectCorruptsValue(t *testing.T) {
	e := defective(t, fault.Defect{
		Unit: fault.UnitLSU, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 4,
	})
	m := NewMemory(8)
	m.Words[2] = 0
	if v := e.Load(m, 2); v != 1<<4 {
		t.Fatalf("load data defect: got %#x", v)
	}
}

func TestOpAccounting(t *testing.T) {
	e := healthy(t)
	e.Add64(1, 2)
	e.Add64(1, 2)
	e.Mul64(3, 4)
	c := e.Core()
	if c.OpCount[fault.OpAdd] != 2 || c.OpCount[fault.OpMul] != 1 {
		t.Fatalf("op counts: %v", c.OpCount)
	}
}

func TestIntermittentCorruptionRate(t *testing.T) {
	e := defective(t, fault.Defect{
		Unit: fault.UnitALU, BaseRate: 0.01,
		Kind: fault.CorruptBitFlip, BitPos: 3,
	})
	const n = 100000
	bad := 0
	for i := 0; i < n; i++ {
		if e.Add64(uint64(i), 1) != uint64(i)+1 {
			bad++
		}
	}
	rate := float64(bad) / n
	if rate < 0.005 || rate > 0.02 {
		t.Fatalf("observed corruption rate %v, want ~0.01", rate)
	}
}

func TestLE64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		var b [8]byte
		putLE64(b[:], v)
		return le64(b[:]) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd64Healthy(b *testing.B) {
	e := New(fault.NewCore("b", xrand.New(1)))
	var s uint64
	for i := 0; i < b.N; i++ {
		s = e.Add64(s, uint64(i))
	}
	_ = s
}

func BenchmarkCopyHealthy(b *testing.B) {
	e := New(fault.NewCore("b", xrand.New(1)))
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		e.Copy(dst, src)
	}
}

func BenchmarkCryptoEncrypt(b *testing.B) {
	e := New(fault.NewCore("b", xrand.New(1)))
	var s uint64
	for i := 0; i < b.N; i++ {
		s = e.CryptoEncrypt64(s, 42)
	}
	_ = s
}
