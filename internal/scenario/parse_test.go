package scenario

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *node {
	t.Helper()
	n, err := parseDocument("test.yaml", []byte(src))
	if err != nil {
		t.Fatalf("parseDocument: %v", err)
	}
	return n
}

func TestParseBlockMapping(t *testing.T) {
	root := mustParse(t, `
# comment
name: demo
days: 45
fleet:
  machines: 200
  cores_per_machine: 8
`)
	if root.kind != nMap {
		t.Fatalf("root kind = %v, want map", root.kind)
	}
	if got := root.child("name").text; got != "demo" {
		t.Errorf("name = %q", got)
	}
	fl := root.child("fleet")
	if fl.kind != nMap {
		t.Fatalf("fleet kind = %v, want map", fl.kind)
	}
	if got := fl.child("machines").text; got != "200" {
		t.Errorf("machines = %q", got)
	}
	// Line numbers are 1-based positions in the source.
	if got := root.keyLine("days"); got != 4 {
		t.Errorf("days keyLine = %d, want 4", got)
	}
	if got := fl.child("cores_per_machine").line; got != 7 {
		t.Errorf("cores_per_machine line = %d, want 7", got)
	}
}

func TestParseSequences(t *testing.T) {
	root := mustParse(t, `
events:
  - day: 3
    drain_machine:
      machine: m00001
  - day: 9
    undrain_machine:
      machine: m00001
tags:
  - a
  - b
`)
	evs := root.child("events")
	if evs.kind != nSeq || len(evs.items) != 2 {
		t.Fatalf("events: kind=%v items=%d", evs.kind, len(evs.items))
	}
	if got := evs.items[1].child("day").text; got != "9" {
		t.Errorf("second event day = %q", got)
	}
	tags := root.child("tags")
	if len(tags.items) != 2 || tags.items[0].text != "a" {
		t.Errorf("tags = %+v", tags.items)
	}
}

func TestParseFlowAndQuotes(t *testing.T) {
	root := mustParse(t, `
point: {freq_ghz: 2.5, temp_c: 90}
cores: [1, 2, 3]
label: "say \"hi\" #not-a-comment"
single: 'it''s'
empty:
`)
	pt := root.child("point")
	if pt.kind != nMap || pt.child("temp_c").text != "90" {
		t.Errorf("flow map: %+v", pt)
	}
	cores := root.child("cores")
	if cores.kind != nSeq || len(cores.items) != 3 || cores.items[2].text != "3" {
		t.Errorf("flow seq: %+v", cores)
	}
	if got := root.child("label").text; got != `say "hi" #not-a-comment` {
		t.Errorf("label = %q", got)
	}
	if got := root.child("single").text; got != "it's" {
		t.Errorf("single = %q", got)
	}
	if root.child("empty").kind != nNull {
		t.Errorf("empty should be null")
	}
}

func TestParseErrorsCarryLines(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"tab indent", "a: 1\n\tb: 2\n", "test.yaml:2"},
		{"duplicate key", "a: 1\nb: 2\na: 3\n", "test.yaml:3"},
		{"unclosed flow", "a: {b: 1\n", "test.yaml:1"},
		{"block scalar unsupported", "a: |\n  text\n", "test.yaml:1"},
		{"anchor unsupported", "a: &x 1\n", "test.yaml:1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseDocument("test.yaml", []byte(tc.src))
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
