package scenario

// A dependency-free parser for the YAML subset scenarios are written in.
// The subset is deliberately small — block mappings and sequences by
// indentation, flow mappings/sequences ({...}, [...]) which make every
// JSON document valid input, quoted and bare scalars, and # comments —
// but every node carries its source line so schema errors point at the
// offending line, not just the file.
//
// Unsupported YAML (anchors, aliases, tags, multi-document streams,
// block scalars |/>) is rejected with an error rather than misparsed.

import (
	"fmt"
	"strconv"
	"strings"
)

type nodeKind int

const (
	nScalar nodeKind = iota
	nMap
	nSeq
	nNull
)

// node is one parse-tree vertex. Scalars keep their raw text; typing
// (int/float/bool) happens at decode time so error messages can show the
// original spelling.
type node struct {
	kind nodeKind
	line int
	// Scalar state. quoted marks explicitly-quoted scalars (always
	// strings, never null).
	text   string
	quoted bool
	// Mapping state: insertion-ordered keys.
	keys     []string
	children map[string]*node
	keyLines map[string]int
	// Sequence state.
	items []*node
}

func (n *node) child(key string) *node {
	if n == nil || n.kind != nMap {
		return nil
	}
	return n.children[key]
}

func (n *node) keyLine(key string) int {
	if l, ok := n.keyLines[key]; ok {
		return l
	}
	return n.line
}

func newMapNode(line int) *node {
	return &node{kind: nMap, line: line, children: map[string]*node{}, keyLines: map[string]int{}}
}

// srcLine is one non-blank, non-comment source line.
type srcLine struct {
	no     int
	indent int
	text   string // content after indentation, trailing newline removed
}

type parser struct {
	name  string
	lines []srcLine
	pos   int
}

func (p *parser) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", p.name, line, fmt.Sprintf(format, args...))
}

// parseDocument parses one scenario document (YAML subset or JSON).
func parseDocument(name string, data []byte) (*node, error) {
	p := &parser{name: name}
	for i, raw := range strings.Split(string(data), "\n") {
		ln := strings.TrimRight(raw, "\r")
		indent := 0
		for indent < len(ln) && ln[indent] == ' ' {
			indent++
		}
		if indent < len(ln) && ln[indent] == '\t' {
			return nil, p.errf(i+1, "tab in indentation (use spaces)")
		}
		rest := strings.TrimRight(ln[indent:], " \t")
		if rest == "" || strings.HasPrefix(rest, "#") {
			continue
		}
		if len(p.lines) == 0 && rest == "---" {
			continue // document-start marker
		}
		p.lines = append(p.lines, srcLine{no: i + 1, indent: indent, text: rest})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty document", name)
	}
	var (
		n   *node
		err error
	)
	if c := p.lines[0].text[0]; c == '{' || c == '[' {
		ln := p.next()
		n, err = p.parseFlow(ln.no, cutComment(ln.text))
	} else {
		n, err = p.parseBlock(0)
	}
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		return nil, p.errf(p.lines[p.pos].no, "unexpected content after document")
	}
	return n, nil
}

func (p *parser) peek() (srcLine, bool) {
	if p.pos >= len(p.lines) {
		return srcLine{}, false
	}
	return p.lines[p.pos], true
}

func (p *parser) next() srcLine {
	ln := p.lines[p.pos]
	p.pos++
	return ln
}

// pushBack re-inserts a synthetic line at the cursor — used for compact
// sequence items ("- key: value"), whose content parses as a mapping
// starting in the middle of the dash line.
func (p *parser) pushBack(ln srcLine) {
	p.lines = append(p.lines, srcLine{})
	copy(p.lines[p.pos+1:], p.lines[p.pos:])
	p.lines[p.pos] = ln
}

func (p *parser) lastLine() int {
	if p.pos == 0 {
		return 1
	}
	return p.lines[p.pos-1].no
}

// parseBlock parses the value nested under a key or dash: a mapping or
// sequence indented at least minIndent, or null when nothing qualifies.
func (p *parser) parseBlock(minIndent int) (*node, error) {
	ln, ok := p.peek()
	if !ok || ln.indent < minIndent {
		return &node{kind: nNull, line: p.lastLine()}, nil
	}
	if isDashLine(ln.text) {
		return p.parseSeq(ln.indent)
	}
	return p.parseMap(ln.indent)
}

func isDashLine(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *parser) parseMap(indent int) (*node, error) {
	first, _ := p.peek()
	n := newMapNode(first.no)
	for {
		ln, ok := p.peek()
		if !ok || ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, p.errf(ln.no, "unexpected indentation (expected %d spaces, got %d)", indent, ln.indent)
		}
		content := cutComment(ln.text)
		if content == "" { // line was only a comment after indentation
			p.next()
			continue
		}
		if isDashLine(content) {
			return nil, p.errf(ln.no, "sequence item not allowed here (expected 'key: value')")
		}
		key, rest, ok2, err := splitKey(content)
		if err != nil {
			return nil, p.errf(ln.no, "%v", err)
		}
		if !ok2 {
			return nil, p.errf(ln.no, "expected 'key: value', got %q", content)
		}
		if _, dup := n.children[key]; dup {
			return nil, p.errf(ln.no, "duplicate key %q (first on line %d)", key, n.keyLines[key])
		}
		p.next()
		val, err := p.parseValue(ln, rest, indent)
		if err != nil {
			return nil, err
		}
		n.keys = append(n.keys, key)
		n.children[key] = val
		n.keyLines[key] = ln.no
	}
	return n, nil
}

// parseValue parses what follows "key:" on line ln: an inline scalar or
// flow collection, or — when rest is empty — a nested block.
func (p *parser) parseValue(ln srcLine, rest string, indent int) (*node, error) {
	if rest == "" {
		if nxt, ok := p.peek(); ok && nxt.indent == indent && isDashLine(nxt.text) {
			// A sequence may sit at the same indent as its key.
			return p.parseSeq(indent)
		}
		return p.parseBlock(indent + 1)
	}
	switch rest[0] {
	case '{', '[':
		return p.parseFlow(ln.no, rest)
	case '|', '>':
		return nil, p.errf(ln.no, "block scalars (%q) are not supported", rest[:1])
	case '&', '*':
		return nil, p.errf(ln.no, "anchors and aliases are not supported")
	}
	return p.scalarNode(ln.no, rest)
}

func (p *parser) parseSeq(indent int) (*node, error) {
	first, _ := p.peek()
	n := &node{kind: nSeq, line: first.no}
	for {
		ln, ok := p.peek()
		if !ok || ln.indent != indent {
			break
		}
		content := cutComment(ln.text)
		if !isDashLine(content) {
			break
		}
		p.next()
		if content == "-" {
			item, err := p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			n.items = append(n.items, item)
			continue
		}
		rest := content[2:]
		extra := 0
		for extra < len(rest) && rest[extra] == ' ' {
			extra++
		}
		rest = rest[extra:]
		itemIndent := indent + 2 + extra
		var (
			item *node
			err  error
		)
		switch {
		case rest[0] == '{' || rest[0] == '[':
			item, err = p.parseFlow(ln.no, rest)
		case isDashLine(rest):
			err = p.errf(ln.no, "nested inline sequences are not supported")
		default:
			if _, _, isKV, kerr := splitKey(rest); kerr == nil && isKV {
				// Compact mapping: the first entry starts on the dash line.
				p.pushBack(srcLine{no: ln.no, indent: itemIndent, text: rest})
				item, err = p.parseMap(itemIndent)
			} else {
				item, err = p.scalarNode(ln.no, rest)
			}
		}
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
	}
	return n, nil
}

// scalarNode builds a scalar (or null) node from inline text.
func (p *parser) scalarNode(line int, text string) (*node, error) {
	val, quoted, err := unquoteScalar(text)
	if err != nil {
		return nil, p.errf(line, "%v", err)
	}
	if !quoted && (val == "null" || val == "~" || val == "") {
		return &node{kind: nNull, line: line}, nil
	}
	return &node{kind: nScalar, line: line, text: val, quoted: quoted}, nil
}

// ---- flow (JSON-style) collections ----

// parseFlow parses a flow collection that starts on line startNo with
// firstFrag and may continue over subsequent source lines until brackets
// balance (which is what makes multi-line JSON documents parse).
func (p *parser) parseFlow(startNo int, firstFrag string) (*node, error) {
	var (
		buf    []byte
		lineOf []int
		inS    bool
		inD    bool
		esc    bool
		depth  int
	)
	appendFrag := func(frag string, no int) (done bool, err error) {
		for i := 0; i < len(frag); i++ {
			c := frag[i]
			buf = append(buf, c)
			lineOf = append(lineOf, no)
			switch {
			case esc:
				esc = false
			case inD:
				if c == '\\' {
					esc = true
				} else if c == '"' {
					inD = false
				}
			case inS:
				if c == '\'' {
					inS = false
				}
			case c == '"':
				inD = true
			case c == '\'':
				inS = true
			case c == '{' || c == '[':
				depth++
			case c == '}' || c == ']':
				depth--
				if depth == 0 {
					if rest := strings.TrimSpace(frag[i+1:]); rest != "" {
						return false, p.errf(no, "unexpected content after flow value: %q", rest)
					}
					return true, nil
				}
				if depth < 0 {
					return false, p.errf(no, "unbalanced %q in flow value", string(c))
				}
			}
		}
		return false, nil
	}
	done, err := appendFrag(firstFrag, startNo)
	if err != nil {
		return nil, err
	}
	for !done {
		ln, ok := p.peek()
		if !ok {
			return nil, p.errf(startNo, "unterminated flow value (missing closing bracket)")
		}
		p.next()
		buf = append(buf, ' ')
		lineOf = append(lineOf, ln.no)
		frag := ln.text
		if !inS && !inD {
			frag = cutComment(frag)
		}
		if done, err = appendFrag(frag, ln.no); err != nil {
			return nil, err
		}
	}
	fp := &flowParser{name: p.name, buf: buf, lineOf: lineOf}
	n, err := fp.parseValue()
	if err != nil {
		return nil, err
	}
	fp.skipSpace()
	if fp.pos < len(fp.buf) {
		return nil, fp.errf("unexpected content after flow value")
	}
	return n, nil
}

type flowParser struct {
	name   string
	buf    []byte
	lineOf []int
	pos    int
}

func (f *flowParser) line() int {
	if f.pos < len(f.lineOf) {
		return f.lineOf[f.pos]
	}
	if len(f.lineOf) > 0 {
		return f.lineOf[len(f.lineOf)-1]
	}
	return 1
}

func (f *flowParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", f.name, f.line(), fmt.Sprintf(format, args...))
}

func (f *flowParser) skipSpace() {
	for f.pos < len(f.buf) && (f.buf[f.pos] == ' ' || f.buf[f.pos] == '\t') {
		f.pos++
	}
}

func (f *flowParser) parseValue() (*node, error) {
	f.skipSpace()
	if f.pos >= len(f.buf) {
		return nil, f.errf("expected a value")
	}
	switch f.buf[f.pos] {
	case '{':
		return f.parseMap()
	case '[':
		return f.parseSeq()
	}
	return f.parseScalar(false)
}

func (f *flowParser) parseMap() (*node, error) {
	n := newMapNode(f.line())
	f.pos++ // '{'
	for {
		f.skipSpace()
		if f.pos >= len(f.buf) {
			return nil, f.errf("unterminated flow mapping")
		}
		if f.buf[f.pos] == '}' {
			f.pos++
			return n, nil
		}
		keyLine := f.line()
		keyNode, err := f.parseScalar(true)
		if err != nil {
			return nil, err
		}
		if keyNode.kind == nNull || keyNode.text == "" {
			return nil, f.errf("expected a mapping key")
		}
		key := keyNode.text
		f.skipSpace()
		if f.pos >= len(f.buf) || f.buf[f.pos] != ':' {
			return nil, f.errf("expected ':' after key %q", key)
		}
		f.pos++
		val, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		if _, dup := n.children[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate key %q", f.name, keyLine, key)
		}
		n.keys = append(n.keys, key)
		n.children[key] = val
		n.keyLines[key] = keyLine
		f.skipSpace()
		if f.pos < len(f.buf) && f.buf[f.pos] == ',' {
			f.pos++
			continue
		}
		if f.pos < len(f.buf) && f.buf[f.pos] == '}' {
			f.pos++
			return n, nil
		}
		return nil, f.errf("expected ',' or '}' in flow mapping")
	}
}

func (f *flowParser) parseSeq() (*node, error) {
	n := &node{kind: nSeq, line: f.line()}
	f.pos++ // '['
	for {
		f.skipSpace()
		if f.pos >= len(f.buf) {
			return nil, f.errf("unterminated flow sequence")
		}
		if f.buf[f.pos] == ']' {
			f.pos++
			return n, nil
		}
		item, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		n.items = append(n.items, item)
		f.skipSpace()
		if f.pos < len(f.buf) && f.buf[f.pos] == ',' {
			f.pos++
			continue
		}
		if f.pos < len(f.buf) && f.buf[f.pos] == ']' {
			f.pos++
			return n, nil
		}
		return nil, f.errf("expected ',' or ']' in flow sequence")
	}
}

// parseScalar reads a quoted or bare scalar. asKey additionally stops a
// bare scalar at ':'.
func (f *flowParser) parseScalar(asKey bool) (*node, error) {
	f.skipSpace()
	line := f.line()
	if f.pos >= len(f.buf) {
		return nil, f.errf("expected a value")
	}
	if q := f.buf[f.pos]; q == '"' || q == '\'' {
		start := f.pos
		f.pos++
		for f.pos < len(f.buf) {
			c := f.buf[f.pos]
			if q == '"' && c == '\\' {
				f.pos += 2
				continue
			}
			if c == q {
				if q == '\'' && f.pos+1 < len(f.buf) && f.buf[f.pos+1] == '\'' {
					f.pos += 2 // escaped single quote
					continue
				}
				f.pos++
				text, _, err := unquoteScalar(string(f.buf[start:f.pos]))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", f.name, line, err)
				}
				return &node{kind: nScalar, line: line, text: text, quoted: true}, nil
			}
			f.pos++
		}
		return nil, fmt.Errorf("%s:%d: unterminated quoted string", f.name, line)
	}
	start := f.pos
	for f.pos < len(f.buf) {
		c := f.buf[f.pos]
		if c == ',' || c == '}' || c == ']' || (asKey && c == ':') {
			break
		}
		f.pos++
	}
	text := strings.TrimSpace(string(f.buf[start:f.pos]))
	if text == "null" || text == "~" || text == "" {
		return &node{kind: nNull, line: line}, nil
	}
	return &node{kind: nScalar, line: line, text: text}, nil
}

// ---- lexical helpers ----

// cutComment removes a trailing "# ..." comment that is outside quotes
// and preceded by whitespace (or at the start of the content).
func cutComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inD:
			if c == '\\' {
				i++
			} else if c == '"' {
				inD = false
			}
		case inS:
			if c == '\'' {
				inS = false
			}
		case c == '"':
			inD = true
		case c == '\'':
			inS = true
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return strings.TrimRight(s[:i], " \t")
		}
	}
	return strings.TrimRight(s, " \t")
}

// splitKey splits "key: value" at the first unquoted, unbracketed ':'
// that is followed by a space or ends the line. ok is false when the
// content has no such separator (it is a plain scalar).
func splitKey(s string) (key, rest string, ok bool, err error) {
	inS, inD := false, false
	depth := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inD:
			if c == '\\' {
				i++
			} else if c == '"' {
				inD = false
			}
		case inS:
			if c == '\'' {
				inS = false
			}
		case c == '"':
			inD = true
		case c == '\'':
			inS = true
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0 && (i+1 == len(s) || s[i+1] == ' '):
			rawKey := strings.TrimSpace(s[:i])
			if rawKey == "" {
				return "", "", false, fmt.Errorf("empty mapping key")
			}
			key, _, uerr := unquoteScalar(rawKey)
			if uerr != nil {
				return "", "", false, uerr
			}
			return key, strings.TrimSpace(s[i+1:]), true, nil
		}
	}
	return "", "", false, nil
}

// unquoteScalar resolves quoting: double quotes decode escape sequences,
// single quotes decode ” to ', bare text is returned as-is.
func unquoteScalar(s string) (text string, quoted bool, err error) {
	if len(s) >= 2 && s[0] == '"' {
		if s[len(s)-1] != '"' {
			return "", false, fmt.Errorf("unterminated double-quoted string %q", s)
		}
		out, err := decodeDouble(s[1 : len(s)-1])
		return out, true, err
	}
	if len(s) >= 2 && s[0] == '\'' {
		if s[len(s)-1] != '\'' {
			return "", false, fmt.Errorf("unterminated single-quoted string %q", s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), true, nil
	}
	if len(s) > 0 && (s[0] == '"' || s[0] == '\'') {
		return "", false, fmt.Errorf("unterminated quoted string %q", s)
	}
	return s, false, nil
}

func decodeDouble(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling backslash in %q", s)
		}
		switch s[i] {
		case '"':
			b.WriteByte('"')
		case '\\':
			b.WriteByte('\\')
		case '/':
			b.WriteByte('/')
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case 'b':
			b.WriteByte('\b')
		case 'f':
			b.WriteByte('\f')
		case '0':
			b.WriteByte(0)
		case 'u':
			if i+4 >= len(s) {
				return "", fmt.Errorf("truncated \\u escape in %q", s)
			}
			v, err := strconv.ParseUint(s[i+1:i+5], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad \\u escape in %q", s)
			}
			b.WriteRune(rune(v))
			i += 4
		default:
			return "", fmt.Errorf("unsupported escape \\%c", s[i])
		}
	}
	return b.String(), nil
}
