package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDecodeValidCorpus loads every shipped scenario: the corpus in
// scenarios/ doubles as the decoder's golden "valid" set.
func TestDecodeValidCorpus(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil || len(files) < 8 {
		t.Fatalf("scenario corpus too small: %d files (err %v)", len(files), err)
	}
	for _, path := range files {
		s, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if s.Name == "" || s.Days <= 0 || s.Fleet.Machines <= 0 {
			t.Errorf("%s: incomplete scenario %+v", path, s)
		}
		if s.Assert.Empty() {
			t.Errorf("%s: shipped scenarios must declare assertions", path)
		}
		if _, err := s.Compile(); err != nil {
			t.Errorf("%s: Compile: %v", path, err)
		}
	}
}

// TestDecodeInvalidGolden checks that schema violations produce the
// expected stable, line-numbered errors. Each testdata/invalid/X.yaml is
// paired with X.want holding one expected-error prefix per line.
func TestDecodeInvalidGolden(t *testing.T) {
	files, err := filepath.Glob("testdata/invalid/*.yaml")
	if err != nil || len(files) == 0 {
		t.Fatalf("no invalid testdata: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			_, perr := Parse(filepath.Base(path), data)
			if perr == nil {
				t.Fatalf("Parse accepted invalid input")
			}
			got := strings.Split(strings.TrimSpace(perr.Error()), "\n")
			wantRaw, err := os.ReadFile(strings.TrimSuffix(path, ".yaml") + ".want")
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range strings.Split(strings.TrimSpace(string(wantRaw)), "\n") {
				found := false
				for _, g := range got {
					if strings.HasPrefix(g, want) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("missing expected error %q\ngot:\n  %s", want, strings.Join(got, "\n  "))
				}
			}
		})
	}
}

// TestDecodeRoundTripValues spot-checks that decoded values land in the
// right fields with the right types.
func TestDecodeRoundTripValues(t *testing.T) {
	src := `
name: rt
seed: 99
days: 12
parallelism: 3
fleet:
  machines: 20
  cores_per_machine: 4
  defects_per_machine: 0
  repair_after_days: 7
  policy:
    mode: machine-drain
    decline_retry_days: 5
  confession:
    passes: 10
    max_ops: 1000000
workloads:
  kvdb:
    stores: 2
    replicas: 5
events:
  - day: 1
    inject_defect:
      machine: m00003
      core: 2
      unit: VEC
      kind: bitflip
      bit_pos: 13
      base_rate: 2.5e-7
      pattern_mask: 0xf0
      pattern_val: 0x50
  - day: 4
    set_operating_point:
      voltage_v: 0.9
assert:
  corruptions: {min: 1}
  quarantined_cores:
    - m00003/2
`
	s, err := Parse("rt.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed == nil || *s.Seed != 99 || s.Days != 12 || s.Parallelism != 3 {
		t.Errorf("header: %+v", s)
	}
	if s.Fleet.RepairAfterDays == nil || *s.Fleet.RepairAfterDays != 7 {
		t.Errorf("repair_after_days: %+v", s.Fleet.RepairAfterDays)
	}
	if s.Fleet.Policy == nil || s.Fleet.Policy.Mode != "machine-drain" ||
		s.Fleet.Policy.DeclineRetryDays == nil || *s.Fleet.Policy.DeclineRetryDays != 5 {
		t.Errorf("policy: %+v", s.Fleet.Policy)
	}
	if s.Workloads.KVDB == nil || s.Workloads.KVDB.Stores != 2 || *s.Workloads.KVDB.Replicas != 5 {
		t.Errorf("kvdb: %+v", s.Workloads.KVDB)
	}
	if len(s.Events) != 2 {
		t.Fatalf("events: %d", len(s.Events))
	}
	in := s.Events[0].Inject
	if in == nil || in.Machine != "m00003" || in.Core != 2 ||
		in.PatternMask != 0xf0 || in.PatternVal != 0x50 ||
		in.BitPos == nil || *in.BitPos != 13 || in.BaseRate != 2.5e-7 {
		t.Errorf("inject: %+v", in)
	}
	pt := s.Events[1].Point
	if pt == nil || pt.VoltageV == nil || *pt.VoltageV != 0.9 || pt.FreqGHz != nil {
		t.Errorf("point: %+v", pt)
	}
	if len(s.Assert.Quantities) != 1 || len(s.Assert.QuarantinedCores) != 1 {
		t.Errorf("assert: %+v", s.Assert)
	}
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 99 || cfg.Machines != 20 || cfg.RepairAfterDays != 7 || cfg.KVDB.Replicas != 5 {
		t.Errorf("compiled: %+v", cfg)
	}
}

// TestDecodePoolsAndChaos round-trips the pools / remediation / chaos
// surface of the schema into the typed model and the compiled fleet
// config.
func TestDecodePoolsAndChaos(t *testing.T) {
	src := `
name: pc
days: 9
fleet:
  machines: 12
  cores_per_machine: 4
  defects_per_machine: 0
  lifecycle:
    enabled: true
    wal: true
    policy: swap
    repair_tickets_per_pool: 2
    notify: webhook
    pools:
      - name: web
        min_healthy: 0.75
      - name: db
        min_healthy_count: 3
events:
  - day: 2
    inject_wal_fault:
      kind: torn_write
  - day: 3
    inject_network_fault:
      kind: drop
      count: 2
assert:
  wal_faults: 1
  net_faults: 2
`
	s, err := Parse("pc.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	lc := s.Fleet.Lifecycle
	if lc == nil || !lc.Enabled || !lc.WAL || lc.Policy != "swap" || lc.Notify != "webhook" {
		t.Fatalf("lifecycle: %+v", lc)
	}
	if lc.RepairTicketsPerPool == nil || *lc.RepairTicketsPerPool != 2 {
		t.Fatalf("repair tickets: %+v", lc.RepairTicketsPerPool)
	}
	if len(lc.Pools) != 2 || lc.Pools[0].Name != "web" || lc.Pools[1].Name != "db" {
		t.Fatalf("pools: %+v", lc.Pools)
	}
	if lc.Pools[0].MinHealthy == nil || *lc.Pools[0].MinHealthy != 0.75 {
		t.Fatalf("pool web: %+v", lc.Pools[0])
	}
	if lc.Pools[1].MinHealthyCount == nil || *lc.Pools[1].MinHealthyCount != 3 {
		t.Fatalf("pool db: %+v", lc.Pools[1])
	}
	if len(s.Events) != 2 {
		t.Fatalf("events: %+v", s.Events)
	}
	wf := s.Events[0].WALFault
	if s.Events[0].Kind != EvInjectWALFault || wf == nil || wf.Kind != "torn_write" || wf.Count != 1 {
		t.Fatalf("wal fault event: %+v %+v", s.Events[0], wf)
	}
	nf := s.Events[1].NetFault
	if s.Events[1].Kind != EvInjectNetFault || nf == nil || nf.Kind != "drop" || nf.Count != 2 {
		t.Fatalf("net fault event: %+v %+v", s.Events[1], nf)
	}
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Lifecycle.Pools) != 2 || cfg.Lifecycle.Pools[1].MinHealthyCount != 3 {
		t.Fatalf("compiled pools: %+v", cfg.Lifecycle.Pools)
	}
	if cfg.Remediate.Policy != "swap" || cfg.Remediate.RepairTicketsPerPool != 2 {
		t.Fatalf("compiled remediation: %+v", cfg.Remediate)
	}
}
