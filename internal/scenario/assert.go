package scenario

// End-state assertions turn a scenario into a regression test: after the
// run, named quantities derived from the daily telemetry, the detection
// report, the triage ledger, and the quarantine ledger are checked
// against declared ranges, specific cores are required to be in (or out
// of) quarantine, and metrics-registry series can be pinned too. Every
// failure message carries the file:line of the assertion that failed.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lifecycle"
	"repro/internal/obs"
)

// Range bounds one quantity. A bare scalar in the file means Min == Max.
type Range struct {
	Min, Max *float64
	Line     int
}

func (r Range) check(name string, v float64) string {
	if r.Min != nil && v < *r.Min {
		return fmt.Sprintf("%s = %s, want >= %s", name, fmtNum(v), fmtNum(*r.Min))
	}
	if r.Max != nil && v > *r.Max {
		return fmt.Sprintf("%s = %s, want <= %s", name, fmtNum(v), fmtNum(*r.Max))
	}
	return ""
}

func fmtNum(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// MetricAssert bounds one metrics-registry series (summed over every
// series of the family whose labels are a superset of Labels). Counters
// and gauges contribute their value, histograms their observation count.
type MetricAssert struct {
	Name   string
	Labels map[string]string
	Range  Range
	Line   int
}

// CoreAssert requires a specific core to be present in (or absent from)
// the final quarantine ledger.
type CoreAssert struct {
	Machine string
	Core    int
	Line    int
}

// MachineStateAssert pins one machine's final lifecycle-ledger state
// ("m00007" must end the run "drained"). Requires the control plane
// (fleet.lifecycle.enabled) — validated at parse time.
type MachineStateAssert struct {
	Machine string
	State   string
	Line    int
}

// Assertions is the decoded assert section.
type Assertions struct {
	// Quantities maps assertable-quantity names (see Quantities) to
	// their declared ranges, in file order.
	Quantities []QuantityAssert
	// QuarantinedCores must appear in the final ledger.
	QuarantinedCores []CoreAssert
	// NotQuarantinedCores must NOT appear in the final ledger.
	NotQuarantinedCores []CoreAssert
	Metrics             []MetricAssert
	// MachineStates pins final lifecycle-ledger states per machine.
	MachineStates []MachineStateAssert
}

// QuantityAssert is one named-quantity range.
type QuantityAssert struct {
	Name  string
	Range Range
}

// Empty reports whether the scenario declares no assertions at all.
func (a Assertions) Empty() bool {
	return len(a.Quantities) == 0 && len(a.QuarantinedCores) == 0 &&
		len(a.NotQuarantinedCores) == 0 && len(a.Metrics) == 0 &&
		len(a.MachineStates) == 0
}

// quantities maps every assertable name to its extractor. The names are
// the public assertion vocabulary, documented in DESIGN.md §10.
var quantities = map[string]func(*Result) float64{
	// Ground truth and signal flow (summed over the run).
	"corruptions":       func(r *Result) float64 { return float64(r.totals.Corruptions) },
	"auto_reports":      func(r *Result) float64 { return float64(r.totals.AutoReports) },
	"user_reports":      func(r *Result) float64 { return float64(r.totals.UserReports) },
	"screen_detections": func(r *Result) float64 { return float64(r.totals.ScreenDetections) },
	"quarantined":       func(r *Result) float64 { return float64(r.totals.NewQuarantines) },
	"repairs":           func(r *Result) float64 { return float64(r.totals.RepairsDone) },
	// End-of-run state.
	"active_defects_end": func(r *Result) float64 {
		if len(r.Days) == 0 {
			return 0
		}
		return float64(r.Days[len(r.Days)-1].ActiveDefects)
	},
	// Detection report (ground truth vs quarantine ledger).
	"defective":         func(r *Result) float64 { return float64(r.Detection.TotalDefective) },
	"past_onset":        func(r *Result) float64 { return float64(r.Detection.PastOnset) },
	"true_positive":     func(r *Result) float64 { return float64(r.Detection.TruePositive) },
	"false_positive":    func(r *Result) float64 { return float64(r.Detection.FalsePositive) },
	"detected_fraction": func(r *Result) float64 { return r.Detection.DetectedFraction() },
	"mean_latency_days": func(r *Result) float64 { return r.Detection.MeanLatencyDays() },
	// Human-triage ledger.
	"investigated":        func(r *Result) float64 { return float64(r.Triage.Investigated) },
	"triage_confirmed":    func(r *Result) float64 { return float64(r.Triage.Confirmed) },
	"false_accusations":   func(r *Result) float64 { return float64(r.Triage.FalseAccusations) },
	"real_not_reproduced": func(r *Result) float64 { return float64(r.Triage.RealNotReproduced) },
	// Tolerant-kvdb workload.
	"kv_reads":    func(r *Result) float64 { return float64(r.totals.KVReads) },
	"kv_retries":  func(r *Result) float64 { return float64(r.totals.KVRetries) },
	"kv_repairs":  func(r *Result) float64 { return float64(r.totals.KVRepairs) },
	"kv_degraded": func(r *Result) float64 { return float64(r.totals.KVDegraded) },
	"kv_errors":   func(r *Result) float64 { return float64(r.totals.KVErrors) },
	// Checkpoint/retry workload.
	"tr_granules":   func(r *Result) float64 { return float64(r.totals.TRGranules) },
	"tr_retries":    func(r *Result) float64 { return float64(r.totals.TRRetries) },
	"tr_migrations": func(r *Result) float64 { return float64(r.totals.TRMigrations) },
	"tr_restores":   func(r *Result) float64 { return float64(r.totals.TRRestores) },
	"tr_signals":    func(r *Result) float64 { return float64(r.totals.TRSignals) },
	"tr_failures":   func(r *Result) float64 { return float64(r.totals.TRFailures) },
	// Machine-lifecycle control plane (zero unless fleet.lifecycle
	// enables it).
	"life_cordoned":     func(r *Result) float64 { return float64(r.totals.LifeCordoned) },
	"life_drained":      func(r *Result) float64 { return float64(r.totals.LifeDrained) },
	"life_removed":      func(r *Result) float64 { return float64(r.totals.LifeRemoved) },
	"life_reintroduced": func(r *Result) float64 { return float64(r.totals.LifeReintroduced) },
	// Pools, remediation policies, and the deferred-drain queue
	// (fleet.LifeTotals; zero without fleet.lifecycle.pools / policy).
	"life_deferred":       func(r *Result) float64 { return float64(r.LifeTotals.Deferred) },
	"life_admitted":       func(r *Result) float64 { return float64(r.LifeTotals.Admitted) },
	"life_retests":        func(r *Result) float64 { return float64(r.LifeTotals.Retests) },
	"life_swaps":          func(r *Result) float64 { return float64(r.LifeTotals.Swaps) },
	"pool_floor_breaches": func(r *Result) float64 { return float64(r.LifeTotals.FloorBreaches) },
	"wal_error_days":      func(r *Result) float64 { return float64(r.LifeTotals.WALErrorDays) },
	// Chaos harness counters (zero unless the scenario arms faults).
	"wal_faults":       func(r *Result) float64 { return float64(r.Chaos.WALFaults) },
	"net_faults":       func(r *Result) float64 { return float64(r.Chaos.NetFaults) },
	"notify_delivered": func(r *Result) float64 { return float64(r.Chaos.NotifyDelivered) },
	"notify_failed":    func(r *Result) float64 { return float64(r.Chaos.NotifyFailed) },
	"notify_dropped":   func(r *Result) float64 { return float64(r.Chaos.NotifyDropped) },
}

// QuantityNames returns the assertable quantity vocabulary, sorted.
func QuantityNames() []string {
	out := make([]string, 0, len(quantities))
	for k := range quantities {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- decoding ----

func (d *decoder) assertions(m *node) Assertions {
	var a Assertions
	for _, key := range m.keys {
		child := m.children[key]
		switch key {
		case "quarantined_cores":
			a.QuarantinedCores = d.coreList(child, key)
		case "not_quarantined_cores":
			a.NotQuarantinedCores = d.coreList(child, key)
		case "machine_states":
			a.MachineStates = d.machineStates(child)
		case "metrics":
			if child.kind != nSeq {
				d.errf(child.line, "assert.metrics must be a sequence")
				continue
			}
			for _, item := range child.items {
				if ma, ok := d.metricAssert(item); ok {
					a.Metrics = append(a.Metrics, ma)
				}
			}
		default:
			if _, known := quantities[key]; !known {
				d.errf(m.keyLine(key), "unknown assertion %q (known: %s, quarantined_cores, not_quarantined_cores, machine_states, metrics)",
					key, strings.Join(QuantityNames(), ", "))
				continue
			}
			if rng, ok := d.rangeVal(child, "assert."+key); ok {
				a.Quantities = append(a.Quantities, QuantityAssert{Name: key, Range: rng})
			}
		}
	}
	return a
}

// rangeVal decodes {min: x, max: y} or a bare scalar (exact value).
func (d *decoder) rangeVal(n *node, what string) (Range, bool) {
	switch n.kind {
	case nScalar:
		v, ok := d.floatNode(n, what)
		if !ok {
			return Range{}, false
		}
		return Range{Min: &v, Max: &v, Line: n.line}, true
	case nMap:
		d.known(n, what, "min", "max")
		r := Range{Line: n.line}
		r.Min = d.optFloat(n, "min", what)
		r.Max = d.optFloat(n, "max", what)
		if r.Min == nil && r.Max == nil {
			d.errf(n.line, "%s needs min and/or max", what)
			return Range{}, false
		}
		if r.Min != nil && r.Max != nil && *r.Min > *r.Max {
			d.errf(n.line, "%s: min %g > max %g", what, *r.Min, *r.Max)
			return Range{}, false
		}
		return r, true
	}
	d.errf(lineOf(n), "%s must be a number or {min, max}", what)
	return Range{}, false
}

func (d *decoder) floatNode(n *node, what string) (float64, bool) {
	v, err := strconv.ParseFloat(n.text, 64)
	if err != nil {
		d.errf(n.line, "%s: %q is not a number", what, n.text)
		return 0, false
	}
	return v, true
}

func (d *decoder) coreList(n *node, what string) []CoreAssert {
	if n.kind != nSeq {
		d.errf(lineOf(n), "assert.%s must be a sequence of \"mNNNNN/core\" strings", what)
		return nil
	}
	var out []CoreAssert
	for _, item := range n.items {
		if item.kind != nScalar {
			d.errf(item.line, "assert.%s entries must be \"mNNNNN/core\" strings", what)
			continue
		}
		ca, err := parseCoreRef(item.text)
		if err != nil {
			d.errf(item.line, "assert.%s: %v", what, err)
			continue
		}
		ca.Line = item.line
		out = append(out, ca)
	}
	return out
}

func parseCoreRef(s string) (CoreAssert, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return CoreAssert{}, fmt.Errorf("core ref %q must look like m00017/3", s)
	}
	machine, coreStr := s[:slash], s[slash+1:]
	if _, err := parseMachineID(machine); err != nil {
		return CoreAssert{}, err
	}
	var core int
	if _, err := fmt.Sscanf(coreStr, "%d", &core); err != nil || core < 0 {
		return CoreAssert{}, fmt.Errorf("core ref %q must look like m00017/3", s)
	}
	return CoreAssert{Machine: machine, Core: core}, nil
}

// machineStates decodes the assert.machine_states mapping: machine id →
// lifecycle state name, both validated here so typos fail at parse time.
func (d *decoder) machineStates(n *node) []MachineStateAssert {
	if n == nil || n.kind != nMap {
		d.errf(lineOf(n), "assert.machine_states must be a mapping of machine id to state")
		return nil
	}
	var out []MachineStateAssert
	for _, id := range n.keys {
		v := n.children[id]
		line := n.keyLine(id)
		if _, err := parseMachineID(id); err != nil {
			d.errf(line, "assert.machine_states: %v", err)
			continue
		}
		if v.kind != nScalar {
			d.errf(lineOf(v), "assert.machine_states.%s must be a state name", id)
			continue
		}
		if _, err := lifecycle.StateByName(v.text); err != nil {
			d.errf(v.line, "assert.machine_states.%s: state %q unknown (have %s)",
				id, v.text, strings.Join(lifecycle.StateNames(), ", "))
			continue
		}
		out = append(out, MachineStateAssert{Machine: id, State: v.text, Line: line})
	}
	return out
}

func (d *decoder) metricAssert(n *node) (MetricAssert, bool) {
	m := d.asMap(n, "assert.metrics entry")
	if m == nil {
		return MetricAssert{}, false
	}
	d.known(m, "assert.metrics entry", "name", "labels", "min", "max")
	ma := MetricAssert{Line: m.line, Range: Range{Line: m.line}}
	ma.Name, _ = d.str(m, "name", "assert.metrics")
	if ma.Name == "" {
		d.errf(m.line, "assert.metrics entry needs a name")
		return ma, false
	}
	if ln := m.child("labels"); ln != nil {
		lm := d.asMap(ln, "assert.metrics labels")
		if lm == nil {
			return ma, false
		}
		ma.Labels = map[string]string{}
		for _, k := range lm.keys {
			v := lm.children[k]
			if v.kind != nScalar {
				d.errf(v.line, "assert.metrics label %q must be a string", k)
				continue
			}
			ma.Labels[k] = v.text
		}
	}
	ma.Range.Min = d.optFloat(m, "min", "assert.metrics")
	ma.Range.Max = d.optFloat(m, "max", "assert.metrics")
	if ma.Range.Min == nil && ma.Range.Max == nil {
		d.errf(m.line, "assert.metrics entry needs min and/or max")
		return ma, false
	}
	return ma, true
}

// ---- checking ----

// Check evaluates every assertion against a finished run and returns one
// message per failure (empty = all passed). Messages are prefixed with
// the scenario file and the assertion's line.
func (s *Scenario) Check(res *Result) []string {
	var fails []string
	at := func(line int, msg string) {
		fails = append(fails, fmt.Sprintf("%s:%d: %s", s.File, line, msg))
	}
	for _, q := range s.Assert.Quantities {
		v := quantities[q.Name](res)
		if msg := q.Range.check(q.Name, v); msg != "" {
			at(q.Range.Line, msg)
		}
	}
	inLedger := map[string]bool{}
	for _, rec := range res.Records {
		inLedger[fmt.Sprintf("%s/%d", rec.Ref.Machine, rec.Ref.Core)] = true
	}
	for _, ca := range s.Assert.QuarantinedCores {
		key := fmt.Sprintf("%s/%d", ca.Machine, ca.Core)
		if !inLedger[key] {
			at(ca.Line, fmt.Sprintf("core %s not in the final quarantine ledger", key))
		}
	}
	for _, ca := range s.Assert.NotQuarantinedCores {
		key := fmt.Sprintf("%s/%d", ca.Machine, ca.Core)
		if inLedger[key] {
			at(ca.Line, fmt.Sprintf("core %s unexpectedly in the final quarantine ledger", key))
		}
	}
	if len(s.Assert.MachineStates) > 0 {
		// Machines never touched by the ledger are implicitly healthy.
		states := map[string]string{}
		for _, rec := range res.Lifecycle {
			states[rec.Machine] = rec.StateName
		}
		for _, ms := range s.Assert.MachineStates {
			got := states[ms.Machine]
			if got == "" {
				got = lifecycle.Healthy.String()
			}
			if got != ms.State {
				at(ms.Line, fmt.Sprintf("machine %s ended %s, want %s", ms.Machine, got, ms.State))
			}
		}
	}
	for _, ma := range s.Assert.Metrics {
		v, found := metricValue(res.Snapshot, ma.Name, ma.Labels)
		if !found {
			at(ma.Line, fmt.Sprintf("metric %s%s not found in registry", ma.Name, labelStr(ma.Labels)))
			continue
		}
		if msg := ma.Range.check(ma.Name+labelStr(ma.Labels), v); msg != "" {
			at(ma.Line, msg)
		}
	}
	return fails
}

func labelStr(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// metricValue sums every series of family name whose labels are a
// superset of want. Counters and gauges contribute Value, histograms
// their observation Count.
func metricValue(snap []obs.SeriesSnapshot, name string, want map[string]string) (float64, bool) {
	var (
		sum   float64
		found bool
	)
	for _, s := range snap {
		if s.Name != name || !labelsMatch(s.Labels, want) {
			continue
		}
		found = true
		if s.Kind == "histogram" {
			sum += float64(s.Count)
		} else {
			sum += s.Value
		}
	}
	return sum, found
}

func labelsMatch(have []obs.Label, want map[string]string) bool {
	for k, v := range want {
		ok := false
		for _, l := range have {
			if l.Key == k && l.Value == v {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
