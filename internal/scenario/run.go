package scenario

// Compiling and running: a Scenario lowers onto the existing
// fleet.Runner/Config machinery. Events apply serially between Step
// calls (the same serial phases the day loop already uses), so a
// scenario inherits the runner's determinism contract unchanged:
// identical file + seed → bit-identical DayStats, quarantine ledger, and
// metrics snapshot at any parallelism.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/lifecycle"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/quarantine"
	"repro/internal/remediate"
	"repro/internal/screen"
	"repro/internal/simtime"
)

// FromConfig wraps an already-built fleet.Config in a generated scenario
// — the bridge that lets the legacy flag-pile CLI ride the scenario
// runner. The config is used verbatim; only Seed is overridable.
func FromConfig(name string, cfg fleet.Config, days int) *Scenario {
	return &Scenario{
		Name: name,
		Days: days,
		Fleet: FleetDef{
			Machines: cfg.Machines,
			Cores:    cfg.CoresPerMachine,
		},
		base: &cfg,
	}
}

// Compile lowers the scenario onto a fleet.Config: the defaults, with
// every field the file actually set overriding.
func (s *Scenario) Compile() (fleet.Config, error) {
	if s.base != nil {
		cfg := *s.base
		if s.Seed != nil {
			cfg.Seed = *s.Seed
		}
		return cfg, nil
	}
	cfg := fleet.DefaultConfig()
	cfg.Machines = s.Fleet.Machines
	cfg.CoresPerMachine = s.Fleet.Cores
	if s.Seed != nil {
		cfg.Seed = *s.Seed
	}
	fd := &s.Fleet
	setF := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setF(&cfg.DefectsPerMachine, fd.DefectsPerMachine)
	setF(&cfg.DailyOpsPerCore, fd.DailyOpsPerCore)
	setF(&cfg.PImmediateDetect, fd.PImmediateDetect)
	setF(&cfg.PCrash, fd.PCrash)
	setF(&cfg.PMCE, fd.PMCE)
	setF(&cfg.PLateDetect, fd.PLateDetect)
	setF(&cfg.PCoreAttribution, fd.PCoreAttribution)
	setF(&cfg.SoftwareBugSignalsPerMachineDay, fd.SoftwareBugSignalsPerDay)
	setF(&cfg.UserReportFraction, fd.UserReportFraction)
	if fd.ScreenOpsPerCoreDay != nil {
		cfg.ScreenOpsPerCoreDay = *fd.ScreenOpsPerCoreDay
	}
	if fd.InitialCorpus != nil {
		cfg.InitialCorpus = *fd.InitialCorpus
	}
	if fd.CorpusGrowEveryDays != nil {
		cfg.CorpusGrowEveryDays = *fd.CorpusGrowEveryDays
	}
	if fd.MaxSignalsPerCoreDay != nil {
		cfg.MaxSignalsPerCoreDay = *fd.MaxSignalsPerCoreDay
	}
	if fd.RepairAfterDays != nil {
		cfg.RepairAfterDays = *fd.RepairAfterDays
	}
	if fd.Policy != nil {
		if fd.Policy.Mode != "" {
			mode, err := policyMode(fd.Policy.Mode)
			if err != nil {
				return cfg, err
			}
			cfg.Policy.Mode = mode
		}
		if fd.Policy.MinScore != nil {
			cfg.Policy.MinScore = *fd.Policy.MinScore
		}
		if fd.Policy.RequireConfession != nil {
			cfg.Policy.RequireConfession = *fd.Policy.RequireConfession
		}
		if fd.Policy.DeclineRetryDays != nil {
			cfg.Policy.DeclineRetry = simtime.Time(*fd.Policy.DeclineRetryDays) * simtime.Day
		}
	}
	if fd.Confession != nil {
		passes, maxOps := 60, uint64(15_000_000)
		if fd.Confession.Passes != nil {
			passes = *fd.Confession.Passes
		}
		if fd.Confession.MaxOps != nil {
			maxOps = *fd.Confession.MaxOps
		}
		cfg.ConfessionConfig = screen.NewConfig(
			screen.WithPasses(passes),
			screen.WithSweep(2, 1, 2),
			screen.WithMaxOps(maxOps),
		)
		// New(cfg) only defaults the policy's screen from the fleet's
		// when the policy screen is unset; keep them in sync explicitly.
		cfg.Policy.ConfessionConfig = screen.Config{}
	}
	for _, sku := range fd.SKUs {
		cfg.SKUs = append(cfg.SKUs, fleet.SKU{
			Name:             sku.Name,
			Fraction:         sku.Fraction,
			DefectMultiplier: sku.DefectMultiplier,
			PreAgeDays:       sku.PreAgeDays,
		})
	}
	if fd.Lifecycle != nil {
		cfg.Lifecycle.Enabled = fd.Lifecycle.Enabled
		if fd.Lifecycle.MaxRepairs != nil {
			cfg.Lifecycle.MaxRepairs = *fd.Lifecycle.MaxRepairs
		}
		if fd.Lifecycle.ProbationDays != nil {
			cfg.Lifecycle.ProbationDays = *fd.Lifecycle.ProbationDays
		}
		for _, p := range fd.Lifecycle.Pools {
			pc := lifecycle.PoolConfig{Name: p.Name}
			if p.MinHealthy != nil {
				pc.MinHealthy = *p.MinHealthy
			}
			if p.MinHealthyCount != nil {
				pc.MinHealthyCount = *p.MinHealthyCount
			}
			cfg.Lifecycle.Pools = append(cfg.Lifecycle.Pools, pc)
		}
		cfg.Remediate.Policy = fd.Lifecycle.Policy
		if fd.Lifecycle.ScoreThreshold != nil {
			cfg.Remediate.ScoreThreshold = *fd.Lifecycle.ScoreThreshold
		}
		if fd.Lifecycle.MaxRetests != nil {
			cfg.Remediate.MaxRetests = *fd.Lifecycle.MaxRetests
		}
		if fd.Lifecycle.RepairTicketsPerPool != nil {
			cfg.Remediate.RepairTicketsPerPool = *fd.Lifecycle.RepairTicketsPerPool
		}
		// WAL and Notify are run-scoped resources (temp file, collector
		// server); Run materializes them after Compile.
	}
	if s.Workloads.KVDB != nil {
		cfg.KVDB = kvConfig(s.Workloads.KVDB)
	}
	if s.Workloads.TaskRun != nil {
		cfg.TaskRun = taskRunConfig(s.Workloads.TaskRun)
	}
	return cfg, nil
}

func policyMode(name string) (quarantine.Mode, error) {
	switch name {
	case "machine-drain":
		return quarantine.MachineDrain, nil
	case "core-removal":
		return quarantine.CoreRemoval, nil
	case "safe-tasks":
		return quarantine.SafeTasks, nil
	}
	return 0, fmt.Errorf("scenario: unknown policy mode %q", name)
}

func kvConfig(k *KVDef) fleet.KVDBConfig {
	cfg := fleet.KVDBConfig{Stores: k.Stores}
	if k.Replicas != nil {
		cfg.Replicas = *k.Replicas
	}
	if k.Rows != nil {
		cfg.Rows = *k.Rows
	}
	if k.ReadsPerDay != nil {
		cfg.ReadsPerDay = *k.ReadsPerDay
	}
	if k.WritesPerDay != nil {
		cfg.WritesPerDay = *k.WritesPerDay
	}
	if k.ValueBytes != nil {
		cfg.ValueBytes = *k.ValueBytes
	}
	if k.MaxRetries != nil {
		cfg.MaxRetries = *k.MaxRetries
	}
	if k.AvoidScore != nil {
		cfg.AvoidScore = *k.AvoidScore
	}
	return cfg
}

func taskRunConfig(t *TaskRunDef) fleet.TaskRunConfig {
	cfg := fleet.TaskRunConfig{Tasks: t.Tasks}
	if t.GranulesPerTask != nil {
		cfg.GranulesPerTask = *t.GranulesPerTask
	}
	if t.MaxRetries != nil {
		cfg.MaxRetries = *t.MaxRetries
	}
	if t.DivergenceThreshold != nil {
		cfg.DivergenceThreshold = *t.DivergenceThreshold
	}
	if t.Paranoid != nil {
		cfg.Paranoid = *t.Paranoid
	}
	return cfg
}

// Options configures one scenario run. The zero value is usable: default
// parallelism, a private metrics registry, no trace, no observer.
type Options struct {
	// Parallelism overrides the scenario's worker count (0 keeps the
	// scenario's own setting, which itself defaults to GOMAXPROCS).
	Parallelism int
	// Metrics receives the run's telemetry; nil allocates a private
	// registry (assertions over metrics still work either way).
	Metrics *obs.Registry
	// Trace, when set, receives the CEE lifecycle stream.
	Trace *obs.Trace
	// Observer, when set, receives every day's stats as produced.
	Observer func(fleet.DayStats)
}

// Result is everything a finished run exposes to assertions and callers.
type Result struct {
	Scenario string
	// Days is the daily telemetry series.
	Days []fleet.DayStats
	// totals accumulates the countable DayStats fields over the run.
	totals fleet.DayStats
	// Detection compares the quarantine ledger against ground truth.
	Detection metrics.DetectionReport
	// Triage is the human-investigation ledger.
	Triage fleet.TriageStats
	// Records is the final quarantine ledger, in isolation order.
	Records []*quarantine.Record
	// Lifecycle is the final machine-lifecycle ledger, sorted by machine
	// (nil when the control plane is disabled).
	Lifecycle []lifecycle.Record
	// Snapshot is the metrics registry at end of run, sorted.
	Snapshot []obs.SeriesSnapshot
	// LifeTotals is the run's cumulative pools/remediation counters
	// (zero-valued when the control plane is off).
	LifeTotals fleet.LifeTotals
	// Chaos summarizes injected infrastructure faults and notification
	// delivery.
	Chaos ChaosStats
	// WALReplay describes the end-of-run replay-equality check (zero when
	// the scenario does not persist a WAL).
	WALReplay lifecycle.RecoverInfo
	// Fleet is the underlying simulator, for further inspection.
	Fleet *fleet.Fleet
}

// ChaosStats counts what the chaos harness did to the run.
type ChaosStats struct {
	// WALFaults is how many injected filesystem faults fired under the
	// lifecycle WAL.
	WALFaults int
	// NetFaults is how many injected transport faults fired under the
	// webhook notifier.
	NetFaults int
	// NotifyDelivered / NotifyFailed / NotifyDropped are the webhook
	// notifier's delivery ledger (zero for notify: log).
	NotifyDelivered, NotifyFailed, NotifyDropped int
}

// runEnv holds the chaos handles a running scenario arms through
// inject_wal_fault / inject_network_fault events, plus the notifier
// plumbing torn down at end of run.
type runEnv struct {
	fs        *chaos.FS
	transport *chaos.Transport
	webhook   *remediate.WebhookNotifier
	async     *remediate.Async
	walPath   string
	collector *httptest.Server
}

// build materializes the run-scoped lifecycle infrastructure (temp WAL
// behind the chaos fs, notifier, webhook collector) onto cfg. The
// returned cleanup is safe to call exactly once, after the run.
func (e *runEnv) build(lc *LifecycleDef, cfg *fleet.Config) (cleanup func(), err error) {
	var undo []func()
	cleanup = func() {
		for i := len(undo) - 1; i >= 0; i-- {
			undo[i]()
		}
	}
	if lc == nil || !lc.Enabled {
		return cleanup, nil
	}
	if lc.WAL {
		dir, err := os.MkdirTemp("", "scenario-wal-")
		if err != nil {
			return cleanup, err
		}
		undo = append(undo, func() { os.RemoveAll(dir) })
		e.fs = chaos.NewFS(nil)
		e.walPath = filepath.Join(dir, "lifecycle.wal")
		cfg.Lifecycle.WALPath = e.walPath
		cfg.Lifecycle.FS = e.fs
	}
	switch lc.Notify {
	case "log":
		cfg.Lifecycle.Notifier = remediate.NewLogNotifier(io.Discard)
	case "webhook":
		e.collector = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			w.WriteHeader(http.StatusOK)
		}))
		undo = append(undo, e.collector.Close)
		e.transport = chaos.NewTransport(nil)
		e.transport.SetDelay(time.Millisecond)
		e.webhook = &remediate.WebhookNotifier{
			URL:     e.collector.URL,
			Client:  &http.Client{Transport: e.transport, Timeout: 5 * time.Second},
			Backoff: time.Millisecond,
		}
		e.async = remediate.NewAsync(e.webhook, 0)
		cfg.Lifecycle.Notifier = e.async
	}
	return cleanup, nil
}

// finish drains the notifier and collects the chaos counters. Called
// after the last Step, before assertions read the result.
func (e *runEnv) finish(res *Result) {
	if e.async != nil {
		e.async.Close()
		res.Chaos.NotifyDropped = e.async.Dropped()
	}
	if e.webhook != nil {
		res.Chaos.NotifyDelivered = e.webhook.Delivered()
		res.Chaos.NotifyFailed = e.webhook.Failed()
	}
	if e.fs != nil {
		res.Chaos.WALFaults = e.fs.Injected()
	}
	if e.transport != nil {
		for _, n := range e.transport.Fired() {
			res.Chaos.NetFaults += n
		}
	}
}

// checkWALReplay reopens the run's WAL on the real filesystem and
// requires the replayed ledger and deferred-drain queue to equal the live
// ones — the "replay equals acked prefix" invariant, checked implicitly
// on every wal: true scenario even when faults tore the on-disk tail.
func (e *runEnv) checkWALReplay(f *fleet.Fleet) (lifecycle.RecoverInfo, error) {
	if e.fs == nil {
		return lifecycle.RecoverInfo{}, nil
	}
	live := f.Lifecycle()
	m, info, err := lifecycle.Open(e.walPath, lifecycle.Options{})
	if err != nil {
		return info, fmt.Errorf("wal replay: %v", err)
	}
	defer m.Close()
	if replayed := m.List(); !reflect.DeepEqual(replayed, live.List()) {
		return info, fmt.Errorf("wal replay mismatch: %d replayed ledger records vs %d live (durable prefix diverged from acked ledger)",
			len(replayed), len(live.List()))
	}
	if replayed := m.DeferredDrains(); !reflect.DeepEqual(replayed, live.DeferredDrains()) {
		return info, fmt.Errorf("wal replay mismatch: %d replayed deferred drains vs %d live",
			len(replayed), len(live.DeferredDrains()))
	}
	return info, nil
}

// Totals returns the run's summed daily counters.
func (r *Result) Totals() fleet.DayStats { return r.totals }

// Run compiles and executes the scenario. Assertions are NOT evaluated
// here — call Check on the result — so callers can inspect a failing
// run's state.
func (s *Scenario) Run(opts Options) (*Result, error) {
	cfg, err := s.Compile()
	if err != nil {
		return nil, err
	}
	env := &runEnv{}
	cleanup, err := env.build(s.Fleet.Lifecycle, &cfg)
	if cleanup != nil {
		defer cleanup()
	}
	if err != nil {
		return nil, err
	}
	par := opts.Parallelism
	if par == 0 {
		par = s.Parallelism
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ropts := []fleet.RunnerOption{fleet.WithMetrics(reg)}
	if par > 0 {
		ropts = append(ropts, fleet.WithParallelism(par))
	}
	if opts.Trace != nil {
		ropts = append(ropts, fleet.WithTrace(opts.Trace))
	}
	if opts.Observer != nil {
		ropts = append(ropts, fleet.WithObserver(opts.Observer))
	}
	r, err := fleet.NewRunner(cfg, ropts...)
	if err != nil {
		return nil, err
	}
	f := r.Fleet()
	evs := s.sortedEvents()
	res := &Result{Scenario: s.Name}
	next := 0
	for day := 0; day < s.Days; day++ {
		for next < len(evs) && evs[next].Day == day {
			ev := evs[next]
			next++
			if err := applyEvent(f, ev, env); err != nil {
				return nil, fmt.Errorf("%s:%d: %s on day %d: %v", s.File, ev.Line, ev.Kind, day, err)
			}
		}
		st := r.Step()
		res.Days = append(res.Days, st)
		addTotals(&res.totals, st)
	}
	env.finish(res)
	res.Detection = metrics.Detection(f, s.Days)
	res.Triage = f.Triage
	res.Records = f.Manager().Records()
	if lm := f.Lifecycle(); lm != nil {
		res.Lifecycle = lm.List()
	}
	res.Snapshot = reg.Snapshot()
	res.LifeTotals = f.LifeTotals()
	res.Fleet = f
	info, err := env.checkWALReplay(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", s.File, err)
	}
	res.WALReplay = info
	return res, nil
}

// applyEvent dispatches one timed action onto the fleet's serial hooks.
func applyEvent(f *fleet.Fleet, ev Event, env *runEnv) error {
	switch ev.Kind {
	case EvInjectDefect:
		return applyInject(f, ev.Inject)
	case EvDrainMachine:
		return f.DrainMachine(ev.Machine)
	case EvUndrainMachine:
		return f.UndrainMachine(ev.Machine)
	case EvCordonMachine:
		return f.CordonMachine(ev.Machine)
	case EvReleaseMachine:
		return f.ReleaseMachine(ev.Machine)
	case EvSetOperatingPoint:
		pt := f.OperatingPoint()
		if ev.Point.FreqGHz != nil {
			pt.FreqGHz = *ev.Point.FreqGHz
		}
		if ev.Point.VoltageV != nil {
			pt.VoltageV = *ev.Point.VoltageV
		}
		if ev.Point.TempC != nil {
			pt.TempC = *ev.Point.TempC
		}
		f.SetOperatingPoint(pt)
		return nil
	case EvStartKVLoad:
		return f.StartKVLoad(kvConfig(ev.KV))
	case EvStopKVLoad:
		f.StopKVLoad()
		return nil
	case EvStartTaskRun:
		return f.StartTaskRun(taskRunConfig(ev.TaskRun))
	case EvStopTaskRun:
		f.StopTaskRun()
		return nil
	case EvInjectWALFault:
		if env.fs == nil {
			return fmt.Errorf("no lifecycle WAL to fault (fleet.lifecycle.wal: true required)")
		}
		switch ev.WALFault.Kind {
		case "fail_write":
			env.fs.FailWrites(ev.WALFault.Count)
		case "torn_write":
			env.fs.TornWrites(ev.WALFault.Count)
		case "fail_sync":
			env.fs.FailSyncs(ev.WALFault.Count)
		case "fail_truncate":
			env.fs.FailTruncates(ev.WALFault.Count)
		case "enospc":
			env.fs.SetENOSPC(true)
		case "enospc_clear":
			env.fs.SetENOSPC(false)
		default:
			return fmt.Errorf("unknown WAL fault kind %q", ev.WALFault.Kind)
		}
		return nil
	case EvInjectNetFault:
		if env.transport == nil {
			return fmt.Errorf("no webhook transport to fault (fleet.lifecycle.notify: webhook required)")
		}
		k, err := chaos.NetFaultByName(ev.NetFault.Kind)
		if err != nil {
			return err
		}
		env.transport.Inject(k, ev.NetFault.Count)
		return nil
	}
	return fmt.Errorf("unknown event kind %q", ev.Kind)
}

func applyInject(f *fleet.Fleet, in *InjectDef) error {
	if in.Class != "" {
		return f.InjectDefectClass(in.Machine, in.Core, in.Class)
	}
	unit, err := fault.UnitByName(in.Unit)
	if err != nil {
		return err
	}
	kind, err := fault.KindByName(in.Kind)
	if err != nil {
		return err
	}
	d := fault.Defect{
		Unit:            unit,
		Kind:            kind,
		BaseRate:        in.BaseRate,
		Deterministic:   in.Deterministic,
		Mask:            in.Mask,
		Delta:           in.Delta,
		PatternMask:     in.PatternMask,
		PatternVal:      in.PatternVal,
		Onset:           simtime.Time(in.OnsetDays) * simtime.Day,
		EscalatePerYear: in.EscalatePerYear,
		Sens: fault.Sensitivity{
			Freq: in.FreqSens,
			Volt: in.VoltSens,
			Temp: in.TempSens,
		},
	}
	if in.BitPos != nil {
		d.BitPos = uint(*in.BitPos)
	}
	if in.StuckVal != nil {
		d.StuckVal = uint(*in.StuckVal)
	}
	return f.InjectDefect(in.Machine, in.Core, d)
}

// addTotals folds one day's countable fields into the accumulator.
func addTotals(acc *fleet.DayStats, st fleet.DayStats) {
	acc.Corruptions += st.Corruptions
	for i := range acc.ByOutcome {
		acc.ByOutcome[i] += st.ByOutcome[i]
	}
	acc.AutoReports += st.AutoReports
	acc.UserReports += st.UserReports
	acc.ScreenDetections += st.ScreenDetections
	acc.NewQuarantines += st.NewQuarantines
	acc.RepairsDone += st.RepairsDone
	acc.KVReads += st.KVReads
	acc.KVRetries += st.KVRetries
	acc.KVRepairs += st.KVRepairs
	acc.KVDegraded += st.KVDegraded
	acc.KVErrors += st.KVErrors
	acc.TRGranules += st.TRGranules
	acc.TRRetries += st.TRRetries
	acc.TRMigrations += st.TRMigrations
	acc.TRRestores += st.TRRestores
	acc.TRSignals += st.TRSignals
	acc.TRFailures += st.TRFailures
	acc.LifeCordoned += st.LifeCordoned
	acc.LifeDrained += st.LifeDrained
	acc.LifeRemoved += st.LifeRemoved
	acc.LifeReintroduced += st.LifeReintroduced
}
