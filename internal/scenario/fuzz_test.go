package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the scenario decoder — the
// YAML-subset parser in parse.go plus the schema walk in scenario.go. The
// decoder fronts user-authored files (fleetsim validate/run), so the
// contract is: any input either decodes or returns an error; it must never
// panic, hang, or return (nil, nil). Seeds come from the shipped scenario
// corpus and the invalid-file fixtures so the fuzzer starts from both
// sides of the schema boundary.
func FuzzDecode(f *testing.F) {
	for _, dir := range []string{
		filepath.Join("..", "..", "scenarios"),
		filepath.Join("testdata", "invalid"),
	} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			f.Fatalf("seed dir %s: %v", dir, err)
		}
		seeded := 0
		for _, e := range entries {
			if filepath.Ext(e.Name()) != ".yaml" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			seeded++
		}
		if seeded == 0 {
			f.Fatalf("seed dir %s had no .yaml files", dir)
		}
	}
	// Hand-picked structural edge cases the corpus doesn't cover.
	f.Add([]byte(""))
	f.Add([]byte("\xff\xfe"))
	f.Add([]byte("name: x\ndays: 1\nfleet:\n"))
	f.Add([]byte("events:\n  - day: 0\n    inject_defect: {}"))
	f.Add([]byte("a:\n\tb: tab-indented"))
	f.Add([]byte("assert:\n  - metric: fleet_corruptions_total\n    min: -1e309"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse("fuzz.yaml", data)
		if err == nil && s == nil {
			t.Fatal("Parse returned (nil, nil)")
		}
	})
}
