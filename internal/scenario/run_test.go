package scenario

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// eventHeavy is a scenario exercising every event kind — the determinism
// stress case: injections, drains, operating-point moves, and workload
// phase churn all fork the master RNG mid-run.
const eventHeavy = `
name: event-heavy
seed: 5
days: 25
fleet:
  machines: 60
  cores_per_machine: 8
  defects_per_machine: 0.05
  repair_after_days: 8
  policy:
    decline_retry_days: 4
  confession:
    passes: 20
    max_ops: 4000000
events:
  - day: 0
    inject_defect:
      machine: m00007
      core: 3
      unit: ALU
      kind: bitflip
      bit_pos: 11
      base_rate: 5.0e-7
  - day: 2
    start_kv_load:
      stores: 4
      reads_per_day: 32
  - day: 3
    inject_defect:
      machine: m00011
      core: 1
      class: vec-copy-lane
  - day: 4
    drain_machine:
      machine: m00002
  - day: 6
    start_taskrun:
      tasks: 3
  - day: 8
    set_operating_point:
      voltage_v: 0.9
      temp_c: 80
  - day: 10
    undrain_machine:
      machine: m00002
  - day: 14
    stop_kv_load: {}
  - day: 18
    stop_taskrun: {}
`

func runAt(t *testing.T, s *Scenario, par int) *Result {
	t.Helper()
	res, err := s.Run(Options{Parallelism: par})
	if err != nil {
		t.Fatalf("run (parallelism %d): %v", par, err)
	}
	return res
}

// TestDeterminismAcrossParallelism is the contract the scenario layer
// inherits and must preserve: identical file + seed → bit-identical
// daily stats, quarantine ledger, and metrics snapshot at any worker
// count, even with every event kind firing mid-run.
func TestDeterminismAcrossParallelism(t *testing.T) {
	s, err := Parse("event-heavy.yaml", []byte(eventHeavy))
	if err != nil {
		t.Fatal(err)
	}
	r1 := runAt(t, s, 1)
	r4 := runAt(t, s, 4)

	if !reflect.DeepEqual(r1.Days, r4.Days) {
		for i := range r1.Days {
			if !reflect.DeepEqual(r1.Days[i], r4.Days[i]) {
				t.Fatalf("day %d diverges:\n  p1: %+v\n  p4: %+v", i, r1.Days[i], r4.Days[i])
			}
		}
		t.Fatal("day series diverge")
	}
	if !reflect.DeepEqual(r1.Detection, r4.Detection) {
		t.Errorf("detection reports diverge:\n  p1: %+v\n  p4: %+v", r1.Detection, r4.Detection)
	}
	l1, l4 := ledgerString(r1), ledgerString(r4)
	if l1 != l4 {
		t.Errorf("quarantine ledgers diverge:\n  p1: %s\n  p4: %s", l1, l4)
	}
	s1, s4 := simSeries(r1), simSeries(r4)
	if !reflect.DeepEqual(s1, s4) {
		t.Errorf("metrics snapshots diverge (%d vs %d series)", len(s1), len(s4))
	}
}

// simSeries drops wall-clock timing series (*_seconds): they measure the
// host, not the simulation, and are the one legitimately nondeterministic
// part of the registry.
func simSeries(r *Result) []obs.SeriesSnapshot {
	out := make([]obs.SeriesSnapshot, 0, len(r.Snapshot))
	for _, s := range r.Snapshot {
		if strings.HasSuffix(s.Name, "_seconds") {
			continue
		}
		out = append(out, s)
	}
	return out
}

func ledgerString(r *Result) string {
	out := ""
	for _, rec := range r.Records {
		out += fmt.Sprintf("%s/%d@%v:%v;", rec.Ref.Machine, rec.Ref.Core, rec.When, rec.Confessed)
	}
	return out
}

// TestCorpusAssertions runs every shipped scenario and enforces its
// embedded assertions — the corpus is a regression suite, not
// documentation.
func TestCorpusAssertions(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.yaml")
	if err != nil || len(files) < 8 {
		t.Fatalf("scenario corpus too small: %d files (err %v)", len(files), err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, fail := range s.Check(res) {
				t.Error(fail)
			}
		})
	}
}

// TestFromConfigBridgesLegacyRuns covers the experiments-CLI bridge: a
// prebuilt config wrapped by FromConfig must run and honour its seed
// override.
func TestFromConfigBridgesLegacyRuns(t *testing.T) {
	s, err := Parse("base.yaml", []byte(`
name: base
seed: 3
days: 5
fleet:
  machines: 30
  cores_per_machine: 4
  defects_per_machine: 0.1
`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wrapped := FromConfig("wrapped", cfg, 5)
	direct := runAt(t, s, 2)
	bridged := runAt(t, wrapped, 2)
	if !reflect.DeepEqual(direct.Days, bridged.Days) {
		t.Errorf("FromConfig run diverges from direct run")
	}
	seed := uint64(4)
	wrapped2 := FromConfig("wrapped2", cfg, 5)
	wrapped2.Seed = &seed
	other := runAt(t, wrapped2, 2)
	if reflect.DeepEqual(direct.Days, other.Days) {
		t.Errorf("seed override had no effect")
	}
}
