// Package scenario makes mercurial-core incidents first-class,
// regression-testable artifacts: a declarative scenario (fleet
// definition, seed, timed events such as inject_defect / drain_machine /
// start_kv_load / start_taskrun, and end-state assertions over the daily
// telemetry, the quarantine ledger, and the metrics registry) is decoded
// from a dependency-free YAML-subset/JSON file, validated with
// line-numbered errors, and compiled onto the existing fleet.Runner
// machinery — preserving the bit-identical-at-any-parallelism
// determinism contract, because every event applies in a serial phase
// between simulated days.
//
// The paper's observation (§2, §4) is that incidents are
// scenario-shaped: aging onset, f/V/T sensitivity, data-pattern-gated
// corruption, recidivist cores. Each of those shapes lives in
// scenarios/*.yaml as a runnable file whose assertions double as a
// regression suite.
package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/fleet"
)

// Scenario is one declarative simulation: who the fleet is, what happens
// to it and when, and what must be true at the end.
type Scenario struct {
	// File is the source path ("" for generated scenarios); error and
	// assertion-failure messages are prefixed with it.
	File        string
	Name        string
	Description string
	// Seed overrides the fleet seed (nil keeps the default).
	Seed *uint64
	// Days is the simulated run length.
	Days int
	// Parallelism is the default worker count (0 = GOMAXPROCS); the CLI
	// -parallelism flag overrides it. Results never depend on it.
	Parallelism int
	Fleet       FleetDef
	Workloads   Workloads
	Events      []Event
	Assert      Assertions

	// base, when set, bypasses FleetDef compilation entirely — used by
	// FromConfig to map legacy flag piles onto a generated scenario.
	base *fleet.Config
}

// FleetDef shapes the simulated fleet. Machines and Cores are required;
// every other field is an optional override of fleet.DefaultConfig.
type FleetDef struct {
	Machines int
	Cores    int

	DefectsPerMachine        *float64
	DailyOpsPerCore          *float64
	PImmediateDetect         *float64
	PCrash                   *float64
	PMCE                     *float64
	PLateDetect              *float64
	PCoreAttribution         *float64
	SoftwareBugSignalsPerDay *float64
	UserReportFraction       *float64
	ScreenOpsPerCoreDay      *uint64
	InitialCorpus            *int
	CorpusGrowEveryDays      *int
	MaxSignalsPerCoreDay     *int
	RepairAfterDays          *int

	Policy     *PolicyDef
	Confession *ConfessionDef
	SKUs       []SKUDef
	Lifecycle  *LifecycleDef
}

// LifecycleDef is the machine-lifecycle control-plane section; it maps
// onto fleet.LifecycleConfig and fleet.RemediateConfig.
type LifecycleDef struct {
	Enabled       bool
	MaxRepairs    *int
	ProbationDays *int

	// WAL persists the ledger to a run-private write-ahead log opened
	// through the chaos fault seam. Required by inject_wal_fault events;
	// the runner checks replay-equality (replayed ledger == live ledger)
	// at end of run as an implicit invariant.
	WAL bool
	// Pools declares capacity pools with serving floors; machines stripe
	// across them round-robin.
	Pools []PoolDef
	// Policy names the remediation policy: default, escalating, or swap.
	Policy               string
	ScoreThreshold       *float64
	MaxRetests           *int
	RepairTicketsPerPool *int
	// Notify hangs a notifier off the ledger: "log" (line sink) or
	// "webhook" (in-process collector behind the chaos transport, enabling
	// inject_network_fault events and the notify_* assert quantities).
	Notify string
}

// PoolDef is one capacity pool: the effective serving floor is
// max(min_healthy_count, ceil(min_healthy × members)).
type PoolDef struct {
	Name            string
	MinHealthy      *float64
	MinHealthyCount *int
	Line            int
}

// PolicyDef is the quarantine policy section.
type PolicyDef struct {
	Mode              string // machine-drain | core-removal | safe-tasks
	MinScore          *float64
	RequireConfession *bool
	DeclineRetryDays  *float64
}

// ConfessionDef tunes the deep confession screen.
type ConfessionDef struct {
	Passes *int
	MaxOps *uint64
}

// SKUDef is one CPU-product population.
type SKUDef struct {
	Name             string
	Fraction         float64
	DefectMultiplier float64
	PreAgeDays       float64
}

// Workloads are the application phases active from day 0. The same
// shapes can instead be switched on mid-run by start_kv_load /
// start_taskrun events.
type Workloads struct {
	KVDB    *KVDef
	TaskRun *TaskRunDef
}

// KVDef mirrors fleet.KVDBConfig.
type KVDef struct {
	Stores       int
	Replicas     *int
	Rows         *int
	ReadsPerDay  *int
	WritesPerDay *int
	ValueBytes   *int
	MaxRetries   *int
	AvoidScore   *float64
}

// TaskRunDef mirrors fleet.TaskRunConfig.
type TaskRunDef struct {
	Tasks               int
	GranulesPerTask     *int
	MaxRetries          *int
	DivergenceThreshold *int
	Paranoid            *bool
}

// Event kinds. Exactly one action is present per event.
const (
	EvInjectDefect      = "inject_defect"
	EvDrainMachine      = "drain_machine"
	EvUndrainMachine    = "undrain_machine"
	EvCordonMachine     = "cordon_machine"
	EvReleaseMachine    = "release_machine"
	EvSetOperatingPoint = "set_operating_point"
	EvStartKVLoad       = "start_kv_load"
	EvStopKVLoad        = "stop_kv_load"
	EvStartTaskRun      = "start_taskrun"
	EvStopTaskRun       = "stop_taskrun"
	EvInjectWALFault    = "inject_wal_fault"
	EvInjectNetFault    = "inject_network_fault"
)

var eventKinds = []string{
	EvInjectDefect, EvDrainMachine, EvUndrainMachine, EvCordonMachine,
	EvReleaseMachine, EvSetOperatingPoint,
	EvStartKVLoad, EvStopKVLoad, EvStartTaskRun, EvStopTaskRun,
	EvInjectWALFault, EvInjectNetFault,
}

// Event is one timed action, applied serially before the Step of Day.
type Event struct {
	Day  int
	Line int
	Kind string

	Inject   *InjectDef   // inject_defect
	Machine  string       // drain/undrain/cordon/release_machine
	Point    *PointDef    // set_operating_point
	KV       *KVDef       // start_kv_load
	TaskRun  *TaskRunDef  // start_taskrun
	WALFault *WALFaultDef // inject_wal_fault
	NetFault *NetFaultDef // inject_network_fault
}

// WALFaultDef arms the chaos filesystem under the lifecycle WAL: the next
// Count operations of the named kind fail deterministically.
type WALFaultDef struct {
	// Kind is fail_write, torn_write, fail_sync, fail_truncate, enospc,
	// or enospc_clear (the sticky disk-full toggle ignores Count).
	Kind  string
	Count int
}

// walFaultKinds is the inject_wal_fault vocabulary.
var walFaultKinds = []string{
	"fail_write", "torn_write", "fail_sync", "fail_truncate",
	"enospc", "enospc_clear",
}

// NetFaultDef queues Count faults of the named kind on the chaos
// transport under the webhook notifier.
type NetFaultDef struct {
	// Kind is drop, reset, http500, http503, or delay
	// (chaos.NetFaultByName).
	Kind  string
	Count int
}

// InjectDef materializes a new defective core mid-run — either sampled
// from a catalog class, or built field-by-field (§2 incident
// reproductions pin the exact corruption shape).
type InjectDef struct {
	Machine string
	Core    int
	// Class samples from the fault catalog; when set, the explicit
	// fields below must be absent.
	Class string
	// Explicit defect.
	Unit            string
	Kind            string
	BaseRate        float64
	Deterministic   bool
	BitPos          *int
	StuckVal        *int
	Mask            uint64
	Delta           int64
	PatternMask     uint64
	PatternVal      uint64
	OnsetDays       float64
	EscalatePerYear float64
	FreqSens        float64
	VoltSens        float64
	TempSens        float64
}

// PointDef overrides parts of the fleet-wide operating point; absent
// fields keep their current value.
type PointDef struct {
	FreqGHz  *float64
	VoltageV *float64
	TempC    *float64
}

// ---- loading ----

// Load reads, parses, and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// Parse decodes and validates a scenario from data; name prefixes every
// error ("name:line: message"). All schema errors are collected and
// reported together, not one at a time.
func Parse(name string, data []byte) (*Scenario, error) {
	root, err := parseDocument(name, data)
	if err != nil {
		return nil, err
	}
	d := &decoder{name: name}
	s := d.scenario(root)
	if len(d.errs) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(d.errs, "\n"))
	}
	s.File = name
	return s, nil
}

// decoder walks the parse tree, collecting every schema violation with
// its source line.
type decoder struct {
	name string
	errs []string
}

func (d *decoder) errf(line int, format string, args ...interface{}) {
	d.errs = append(d.errs, fmt.Sprintf("%s:%d: %s", d.name, line, fmt.Sprintf(format, args...)))
}

// asMap coerces a node into a mapping; null is accepted as an empty
// mapping (e.g. "stop_kv_load:" with no parameters).
func (d *decoder) asMap(n *node, what string) *node {
	if n == nil || n.kind == nNull {
		return newMapNode(lineOf(n))
	}
	if n.kind != nMap {
		d.errf(n.line, "%s must be a mapping", what)
		return nil
	}
	return n
}

func lineOf(n *node) int {
	if n == nil {
		return 0
	}
	return n.line
}

// known flags every key outside allowed as an error.
func (d *decoder) known(m *node, what string, allowed ...string) {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	for _, k := range m.keys {
		if !ok[k] {
			d.errf(m.keyLine(k), "unknown key %q in %s (known: %s)", k, what, strings.Join(allowed, ", "))
		}
	}
}

func (d *decoder) scalar(m *node, key, what string) (*node, bool) {
	c := m.child(key)
	if c == nil {
		return nil, false
	}
	if c.kind != nScalar {
		d.errf(c.line, "%s.%s must be a scalar", what, key)
		return nil, false
	}
	return c, true
}

func (d *decoder) str(m *node, key, what string) (string, bool) {
	c, ok := d.scalar(m, key, what)
	if !ok {
		return "", false
	}
	return c.text, true
}

func (d *decoder) intVal(m *node, key, what string) (int64, bool) {
	c, ok := d.scalar(m, key, what)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(c.text, 0, 64)
	if err != nil {
		d.errf(c.line, "%s.%s: %q is not an integer", what, key, c.text)
		return 0, false
	}
	return v, true
}

func (d *decoder) uintVal(m *node, key, what string) (uint64, bool) {
	c, ok := d.scalar(m, key, what)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseUint(c.text, 0, 64)
	if err != nil {
		d.errf(c.line, "%s.%s: %q is not an unsigned integer", what, key, c.text)
		return 0, false
	}
	return v, true
}

func (d *decoder) floatVal(m *node, key, what string) (float64, bool) {
	c, ok := d.scalar(m, key, what)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(c.text, 64)
	if err != nil {
		d.errf(c.line, "%s.%s: %q is not a number", what, key, c.text)
		return 0, false
	}
	return v, true
}

func (d *decoder) boolVal(m *node, key, what string) (bool, bool) {
	c, ok := d.scalar(m, key, what)
	if !ok {
		return false, false
	}
	switch c.text {
	case "true":
		return true, true
	case "false":
		return false, true
	}
	d.errf(c.line, "%s.%s: %q is not a boolean (true/false)", what, key, c.text)
	return false, false
}

// Optional-pointer getters.
func (d *decoder) optInt(m *node, key, what string) *int {
	if v, ok := d.intVal(m, key, what); ok {
		i := int(v)
		return &i
	}
	return nil
}

func (d *decoder) optUint(m *node, key, what string) *uint64 {
	if v, ok := d.uintVal(m, key, what); ok {
		return &v
	}
	return nil
}

func (d *decoder) optFloat(m *node, key, what string) *float64 {
	if v, ok := d.floatVal(m, key, what); ok {
		return &v
	}
	return nil
}

func (d *decoder) optBool(m *node, key, what string) *bool {
	if v, ok := d.boolVal(m, key, what); ok {
		return &v
	}
	return nil
}

// ---- sections ----

func (d *decoder) scenario(root *node) *Scenario {
	s := &Scenario{}
	m := d.asMap(root, "document")
	if m == nil {
		return s
	}
	d.known(m, "scenario", "name", "description", "seed", "days", "parallelism",
		"fleet", "workloads", "events", "assert")
	if v, ok := d.str(m, "name", "scenario"); ok {
		s.Name = v
	}
	if s.Name == "" {
		d.errf(m.line, "scenario.name is required")
	}
	s.Description, _ = d.str(m, "description", "scenario")
	s.Seed = d.optUint(m, "seed", "scenario")
	if v, ok := d.intVal(m, "days", "scenario"); ok {
		s.Days = int(v)
	}
	if s.Days <= 0 {
		d.errf(m.keyLine("days"), "scenario.days must be a positive integer")
	}
	if p := d.optInt(m, "parallelism", "scenario"); p != nil {
		if *p < 0 {
			d.errf(m.keyLine("parallelism"), "scenario.parallelism must be >= 0")
		} else {
			s.Parallelism = *p
		}
	}
	if fm := d.asMap(m.child("fleet"), "fleet"); fm != nil {
		if m.child("fleet") == nil {
			d.errf(m.line, "scenario.fleet is required")
		} else {
			s.Fleet = d.fleetDef(fm)
		}
	}
	if wn := m.child("workloads"); wn != nil {
		if wm := d.asMap(wn, "workloads"); wm != nil {
			s.Workloads = d.workloads(wm)
		}
	}
	if en := m.child("events"); en != nil {
		if en.kind != nSeq {
			d.errf(en.line, "events must be a sequence")
		} else {
			for _, item := range en.items {
				if ev, ok := d.event(item, s); ok {
					s.Events = append(s.Events, ev)
				}
			}
		}
	}
	if an := m.child("assert"); an != nil {
		if am := d.asMap(an, "assert"); am != nil {
			s.Assert = d.assertions(am)
		}
	}
	for _, ms := range s.Assert.MachineStates {
		if s.Fleet.Lifecycle == nil || !s.Fleet.Lifecycle.Enabled {
			d.errf(ms.Line, "assert.machine_states requires fleet.lifecycle.enabled: true")
			break
		}
	}
	if lc := s.Fleet.Lifecycle; lc != nil && !lc.Enabled &&
		(lc.WAL || len(lc.Pools) > 0 || lc.Policy != "" || lc.Notify != "") {
		d.errf(m.keyLine("fleet"), "fleet.lifecycle options (wal, pools, policy, notify) require enabled: true")
	}
	for _, ev := range s.Events {
		switch ev.Kind {
		case EvInjectWALFault:
			if lc := s.Fleet.Lifecycle; lc == nil || !lc.Enabled || !lc.WAL {
				d.errf(ev.Line, "inject_wal_fault requires fleet.lifecycle.wal: true")
			}
		case EvInjectNetFault:
			if lc := s.Fleet.Lifecycle; lc == nil || !lc.Enabled || lc.Notify != "webhook" {
				d.errf(ev.Line, "inject_network_fault requires fleet.lifecycle.notify: webhook")
			}
		}
	}
	for _, ms := range s.Assert.MachineStates {
		if idx, err := parseMachineID(ms.Machine); err == nil &&
			s.Fleet.Machines > 0 && idx >= s.Fleet.Machines {
			d.errf(ms.Line, "assert.machine_states: machine %q outside the fleet (machines: %d)",
				ms.Machine, s.Fleet.Machines)
		}
	}
	return s
}

func (d *decoder) fleetDef(m *node) FleetDef {
	var f FleetDef
	d.known(m, "fleet", "machines", "cores_per_machine", "defects_per_machine",
		"daily_ops_per_core", "p_immediate_detect", "p_crash", "p_mce",
		"p_late_detect", "p_core_attribution", "software_bug_signals_per_machine_day",
		"user_report_fraction", "screen_ops_per_core_day", "initial_corpus",
		"corpus_grow_every_days", "max_signals_per_core_day", "repair_after_days",
		"policy", "confession", "skus", "lifecycle")
	if v, ok := d.intVal(m, "machines", "fleet"); ok {
		f.Machines = int(v)
	}
	if f.Machines <= 0 {
		d.errf(m.keyLine("machines"), "fleet.machines must be a positive integer")
	}
	if v, ok := d.intVal(m, "cores_per_machine", "fleet"); ok {
		f.Cores = int(v)
	}
	if f.Cores <= 0 {
		d.errf(m.keyLine("cores_per_machine"), "fleet.cores_per_machine must be a positive integer")
	}
	f.DefectsPerMachine = d.optFloat(m, "defects_per_machine", "fleet")
	f.DailyOpsPerCore = d.optFloat(m, "daily_ops_per_core", "fleet")
	f.PImmediateDetect = d.optFloat(m, "p_immediate_detect", "fleet")
	f.PCrash = d.optFloat(m, "p_crash", "fleet")
	f.PMCE = d.optFloat(m, "p_mce", "fleet")
	f.PLateDetect = d.optFloat(m, "p_late_detect", "fleet")
	f.PCoreAttribution = d.optFloat(m, "p_core_attribution", "fleet")
	f.SoftwareBugSignalsPerDay = d.optFloat(m, "software_bug_signals_per_machine_day", "fleet")
	f.UserReportFraction = d.optFloat(m, "user_report_fraction", "fleet")
	f.ScreenOpsPerCoreDay = d.optUint(m, "screen_ops_per_core_day", "fleet")
	f.InitialCorpus = d.optInt(m, "initial_corpus", "fleet")
	f.CorpusGrowEveryDays = d.optInt(m, "corpus_grow_every_days", "fleet")
	f.MaxSignalsPerCoreDay = d.optInt(m, "max_signals_per_core_day", "fleet")
	f.RepairAfterDays = d.optInt(m, "repair_after_days", "fleet")
	if pn := m.child("policy"); pn != nil {
		if pm := d.asMap(pn, "fleet.policy"); pm != nil {
			f.Policy = d.policyDef(pm)
		}
	}
	if ln := m.child("lifecycle"); ln != nil {
		if lm := d.asMap(ln, "fleet.lifecycle"); lm != nil {
			f.Lifecycle = d.lifecycleDef(lm)
		}
	}
	if cn := m.child("confession"); cn != nil {
		if cm := d.asMap(cn, "fleet.confession"); cm != nil {
			d.known(cm, "fleet.confession", "passes", "max_ops")
			f.Confession = &ConfessionDef{
				Passes: d.optInt(cm, "passes", "fleet.confession"),
				MaxOps: d.optUint(cm, "max_ops", "fleet.confession"),
			}
		}
	}
	if sn := m.child("skus"); sn != nil {
		if sn.kind != nSeq {
			d.errf(sn.line, "fleet.skus must be a sequence")
		} else {
			for _, item := range sn.items {
				sm := d.asMap(item, "fleet.skus entry")
				if sm == nil {
					continue
				}
				d.known(sm, "fleet.skus entry", "name", "fraction", "defect_multiplier", "pre_age_days")
				var sku SKUDef
				sku.Name, _ = d.str(sm, "name", "sku")
				if sku.Name == "" {
					d.errf(sm.line, "sku.name is required")
				}
				if v, ok := d.floatVal(sm, "fraction", "sku"); ok {
					sku.Fraction = v
				}
				if sku.Fraction <= 0 {
					d.errf(sm.keyLine("fraction"), "sku.fraction must be > 0")
				}
				if v, ok := d.floatVal(sm, "defect_multiplier", "sku"); ok {
					sku.DefectMultiplier = v
				}
				if v, ok := d.floatVal(sm, "pre_age_days", "sku"); ok {
					sku.PreAgeDays = v
				}
				f.SKUs = append(f.SKUs, sku)
			}
		}
	}
	return f
}

var policyModes = map[string]bool{"machine-drain": true, "core-removal": true, "safe-tasks": true}

func (d *decoder) policyDef(m *node) *PolicyDef {
	d.known(m, "fleet.policy", "mode", "min_score", "require_confession", "decline_retry_days")
	p := &PolicyDef{}
	if v, ok := d.str(m, "mode", "policy"); ok {
		if !policyModes[v] {
			d.errf(m.keyLine("mode"), "policy.mode %q unknown (machine-drain, core-removal, safe-tasks)", v)
		}
		p.Mode = v
	}
	p.MinScore = d.optFloat(m, "min_score", "policy")
	p.RequireConfession = d.optBool(m, "require_confession", "policy")
	p.DeclineRetryDays = d.optFloat(m, "decline_retry_days", "policy")
	return p
}

var remediationPolicies = map[string]bool{"default": true, "escalating": true, "swap": true}

func (d *decoder) lifecycleDef(lm *node) *LifecycleDef {
	d.known(lm, "fleet.lifecycle", "enabled", "max_repairs", "probation_days",
		"wal", "pools", "policy", "score_threshold", "max_retests",
		"repair_tickets_per_pool", "notify")
	lc := &LifecycleDef{}
	if v, ok := d.boolVal(lm, "enabled", "fleet.lifecycle"); ok {
		lc.Enabled = v
	}
	lc.MaxRepairs = d.optInt(lm, "max_repairs", "fleet.lifecycle")
	lc.ProbationDays = d.optInt(lm, "probation_days", "fleet.lifecycle")
	if lc.MaxRepairs != nil && *lc.MaxRepairs < 0 {
		d.errf(lm.keyLine("max_repairs"), "fleet.lifecycle.max_repairs must be >= 0")
	}
	if lc.ProbationDays != nil && *lc.ProbationDays < 0 {
		d.errf(lm.keyLine("probation_days"), "fleet.lifecycle.probation_days must be >= 0")
	}
	if v, ok := d.boolVal(lm, "wal", "fleet.lifecycle"); ok {
		lc.WAL = v
	}
	if v, ok := d.str(lm, "policy", "fleet.lifecycle"); ok {
		if !remediationPolicies[v] {
			d.errf(lm.keyLine("policy"), "fleet.lifecycle.policy %q unknown (default, escalating, swap)", v)
		}
		lc.Policy = v
	}
	lc.ScoreThreshold = d.optFloat(lm, "score_threshold", "fleet.lifecycle")
	lc.MaxRetests = d.optInt(lm, "max_retests", "fleet.lifecycle")
	lc.RepairTicketsPerPool = d.optInt(lm, "repair_tickets_per_pool", "fleet.lifecycle")
	if lc.ScoreThreshold != nil && *lc.ScoreThreshold < 0 {
		d.errf(lm.keyLine("score_threshold"), "fleet.lifecycle.score_threshold must be >= 0")
	}
	if lc.MaxRetests != nil && *lc.MaxRetests < 0 {
		d.errf(lm.keyLine("max_retests"), "fleet.lifecycle.max_retests must be >= 0")
	}
	if lc.RepairTicketsPerPool != nil && *lc.RepairTicketsPerPool < 0 {
		d.errf(lm.keyLine("repair_tickets_per_pool"), "fleet.lifecycle.repair_tickets_per_pool must be >= 0")
	}
	if v, ok := d.str(lm, "notify", "fleet.lifecycle"); ok {
		if v != "log" && v != "webhook" {
			d.errf(lm.keyLine("notify"), "fleet.lifecycle.notify %q unknown (log, webhook)", v)
		}
		lc.Notify = v
	}
	if pn := lm.child("pools"); pn != nil {
		if pn.kind != nSeq {
			d.errf(pn.line, "fleet.lifecycle.pools must be a sequence")
		} else {
			seen := map[string]bool{}
			for _, item := range pn.items {
				pm := d.asMap(item, "fleet.lifecycle.pools entry")
				if pm == nil {
					continue
				}
				d.known(pm, "fleet.lifecycle.pools entry", "name", "min_healthy", "min_healthy_count")
				p := PoolDef{Line: pm.line}
				p.Name, _ = d.str(pm, "name", "pool")
				if p.Name == "" {
					d.errf(pm.line, "pool.name is required")
				} else if seen[p.Name] {
					d.errf(pm.line, "duplicate pool %q", p.Name)
				}
				seen[p.Name] = true
				p.MinHealthy = d.optFloat(pm, "min_healthy", "pool")
				p.MinHealthyCount = d.optInt(pm, "min_healthy_count", "pool")
				if p.MinHealthy != nil && (*p.MinHealthy <= 0 || *p.MinHealthy > 1) {
					d.errf(pm.keyLine("min_healthy"), "pool.min_healthy must be in (0, 1]")
				}
				if p.MinHealthyCount != nil && *p.MinHealthyCount < 0 {
					d.errf(pm.keyLine("min_healthy_count"), "pool.min_healthy_count must be >= 0")
				}
				if p.MinHealthy == nil && p.MinHealthyCount == nil {
					d.errf(pm.line, "pool %q needs min_healthy and/or min_healthy_count", p.Name)
				}
				lc.Pools = append(lc.Pools, p)
			}
		}
	}
	return lc
}

func (d *decoder) workloads(m *node) Workloads {
	d.known(m, "workloads", "kvdb", "taskrun")
	var w Workloads
	if kn := m.child("kvdb"); kn != nil {
		if km := d.asMap(kn, "workloads.kvdb"); km != nil {
			w.KVDB = d.kvDef(km, "workloads.kvdb")
		}
	}
	if tn := m.child("taskrun"); tn != nil {
		if tm := d.asMap(tn, "workloads.taskrun"); tm != nil {
			w.TaskRun = d.taskRunDef(tm, "workloads.taskrun")
		}
	}
	return w
}

func (d *decoder) kvDef(m *node, what string) *KVDef {
	d.known(m, what, "stores", "replicas", "rows", "reads_per_day", "writes_per_day",
		"value_bytes", "max_retries", "avoid_score")
	k := &KVDef{}
	if v, ok := d.intVal(m, "stores", what); ok {
		k.Stores = int(v)
	}
	if k.Stores <= 0 {
		d.errf(m.keyLine("stores"), "%s.stores must be a positive integer", what)
	}
	k.Replicas = d.optInt(m, "replicas", what)
	k.Rows = d.optInt(m, "rows", what)
	k.ReadsPerDay = d.optInt(m, "reads_per_day", what)
	k.WritesPerDay = d.optInt(m, "writes_per_day", what)
	k.ValueBytes = d.optInt(m, "value_bytes", what)
	k.MaxRetries = d.optInt(m, "max_retries", what)
	k.AvoidScore = d.optFloat(m, "avoid_score", what)
	return k
}

func (d *decoder) taskRunDef(m *node, what string) *TaskRunDef {
	d.known(m, what, "tasks", "granules_per_task", "max_retries",
		"divergence_threshold", "paranoid")
	t := &TaskRunDef{}
	if v, ok := d.intVal(m, "tasks", what); ok {
		t.Tasks = int(v)
	}
	if t.Tasks <= 0 {
		d.errf(m.keyLine("tasks"), "%s.tasks must be a positive integer", what)
	}
	t.GranulesPerTask = d.optInt(m, "granules_per_task", what)
	t.MaxRetries = d.optInt(m, "max_retries", what)
	t.DivergenceThreshold = d.optInt(m, "divergence_threshold", what)
	t.Paranoid = d.optBool(m, "paranoid", what)
	return t
}

// ---- events ----

func (d *decoder) event(n *node, s *Scenario) (Event, bool) {
	m := d.asMap(n, "events entry")
	if m == nil {
		return Event{}, false
	}
	ev := Event{Line: m.line}
	if v, ok := d.intVal(m, "day", "event"); ok {
		ev.Day = int(v)
	} else if m.child("day") == nil {
		d.errf(m.line, "event.day is required")
	}
	if ev.Day < 0 || (s.Days > 0 && ev.Day >= s.Days) {
		d.errf(m.keyLine("day"), "event.day %d out of range [0, %d)", ev.Day, s.Days)
	}
	var actions []string
	for _, k := range m.keys {
		for _, kind := range eventKinds {
			if k == kind {
				actions = append(actions, k)
			}
		}
	}
	if len(actions) != 1 {
		d.errf(m.line, "event must have exactly one action of %s (got %d)",
			strings.Join(eventKinds, ", "), len(actions))
		return ev, false
	}
	ev.Kind = actions[0]
	d.known(m, "event", append([]string{"day"}, ev.Kind)...)
	body := m.child(ev.Kind)
	switch ev.Kind {
	case EvInjectDefect:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			ev.Inject = d.injectDef(bm, s)
		}
	case EvDrainMachine, EvUndrainMachine, EvCordonMachine, EvReleaseMachine:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			d.known(bm, ev.Kind, "machine")
			ev.Machine, _ = d.str(bm, "machine", ev.Kind)
			d.checkMachine(bm, ev.Machine, s)
		}
	case EvSetOperatingPoint:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			d.known(bm, ev.Kind, "freq_ghz", "voltage_v", "temp_c")
			ev.Point = &PointDef{
				FreqGHz:  d.optFloat(bm, "freq_ghz", ev.Kind),
				VoltageV: d.optFloat(bm, "voltage_v", ev.Kind),
				TempC:    d.optFloat(bm, "temp_c", ev.Kind),
			}
		}
	case EvStartKVLoad:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			ev.KV = d.kvDef(bm, ev.Kind)
		}
	case EvStartTaskRun:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			ev.TaskRun = d.taskRunDef(bm, ev.Kind)
		}
	case EvStopKVLoad, EvStopTaskRun:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			d.known(bm, ev.Kind) // no parameters
		}
	case EvInjectWALFault:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			d.known(bm, ev.Kind, "kind", "count")
			w := &WALFaultDef{Count: 1}
			w.Kind, _ = d.str(bm, "kind", ev.Kind)
			known := false
			for _, k := range walFaultKinds {
				if w.Kind == k {
					known = true
				}
			}
			if !known {
				d.errf(bm.keyLine("kind"), "inject_wal_fault.kind %q unknown (have %s)",
					w.Kind, strings.Join(walFaultKinds, ", "))
			}
			if v, ok := d.intVal(bm, "count", ev.Kind); ok {
				w.Count = int(v)
			}
			if w.Count <= 0 {
				d.errf(bm.keyLine("count"), "inject_wal_fault.count must be a positive integer")
			}
			ev.WALFault = w
		}
	case EvInjectNetFault:
		if bm := d.asMap(body, ev.Kind); bm != nil {
			d.known(bm, ev.Kind, "kind", "count")
			nf := &NetFaultDef{Count: 1}
			nf.Kind, _ = d.str(bm, "kind", ev.Kind)
			if _, err := chaos.NetFaultByName(nf.Kind); err != nil {
				d.errf(bm.keyLine("kind"), "inject_network_fault.kind: %v", err)
			}
			if v, ok := d.intVal(bm, "count", ev.Kind); ok {
				nf.Count = int(v)
			}
			if nf.Count <= 0 {
				d.errf(bm.keyLine("count"), "inject_network_fault.count must be a positive integer")
			}
			ev.NetFault = nf
		}
	}
	return ev, true
}

// parseMachineID extracts the index from a dense machine id ("m00017").
func parseMachineID(id string) (int, error) {
	if len(id) < 2 || id[0] != 'm' {
		return 0, fmt.Errorf("machine id %q must look like m00017", id)
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("machine id %q must look like m00017", id)
	}
	return n, nil
}

func (d *decoder) checkMachine(m *node, id string, s *Scenario) {
	if id == "" {
		d.errf(m.line, "machine is required")
		return
	}
	idx, err := parseMachineID(id)
	if err != nil {
		d.errf(m.keyLine("machine"), "%v", err)
		return
	}
	if s.Fleet.Machines > 0 && idx >= s.Fleet.Machines {
		d.errf(m.keyLine("machine"), "machine %q outside the fleet (machines: %d)", id, s.Fleet.Machines)
	}
}

func (d *decoder) injectDef(m *node, s *Scenario) *InjectDef {
	d.known(m, "inject_defect", "machine", "core", "class", "unit", "kind",
		"base_rate", "deterministic", "bit_pos", "stuck_val", "mask", "delta",
		"pattern_mask", "pattern_val", "onset_days", "escalate_per_year",
		"freq_sens", "volt_sens", "temp_sens")
	in := &InjectDef{Core: -1, EscalatePerYear: 1}
	in.Machine, _ = d.str(m, "machine", "inject_defect")
	d.checkMachine(m, in.Machine, s)
	if v, ok := d.intVal(m, "core", "inject_defect"); ok {
		in.Core = int(v)
	}
	if in.Core < 0 || (s.Fleet.Cores > 0 && in.Core >= s.Fleet.Cores) {
		d.errf(m.keyLine("core"), "inject_defect.core %d out of range [0, %d)", in.Core, s.Fleet.Cores)
	}
	in.Class, _ = d.str(m, "class", "inject_defect")
	in.Unit, _ = d.str(m, "unit", "inject_defect")
	in.Kind, _ = d.str(m, "kind", "inject_defect")
	if v, ok := d.floatVal(m, "base_rate", "inject_defect"); ok {
		in.BaseRate = v
	}
	if v, ok := d.boolVal(m, "deterministic", "inject_defect"); ok {
		in.Deterministic = v
	}
	in.BitPos = d.optInt(m, "bit_pos", "inject_defect")
	in.StuckVal = d.optInt(m, "stuck_val", "inject_defect")
	if v, ok := d.uintVal(m, "mask", "inject_defect"); ok {
		in.Mask = v
	}
	if v, ok := d.intVal(m, "delta", "inject_defect"); ok {
		in.Delta = v
	}
	if v, ok := d.uintVal(m, "pattern_mask", "inject_defect"); ok {
		in.PatternMask = v
	}
	if v, ok := d.uintVal(m, "pattern_val", "inject_defect"); ok {
		in.PatternVal = v
	}
	if v, ok := d.floatVal(m, "onset_days", "inject_defect"); ok {
		in.OnsetDays = v
	}
	if v, ok := d.floatVal(m, "escalate_per_year", "inject_defect"); ok {
		in.EscalatePerYear = v
	}
	if v, ok := d.floatVal(m, "freq_sens", "inject_defect"); ok {
		in.FreqSens = v
	}
	if v, ok := d.floatVal(m, "volt_sens", "inject_defect"); ok {
		in.VoltSens = v
	}
	if v, ok := d.floatVal(m, "temp_sens", "inject_defect"); ok {
		in.TempSens = v
	}

	if in.Class != "" {
		if in.Unit != "" || in.Kind != "" || in.BaseRate != 0 || in.Deterministic {
			d.errf(m.keyLine("class"), "inject_defect: class and explicit defect fields are mutually exclusive")
		}
		if _, err := fault.ClassByName(in.Class); err != nil {
			d.errf(m.keyLine("class"), "inject_defect.class %q unknown (have %s)",
				in.Class, strings.Join(fault.ClassNames(), ", "))
		}
		return in
	}
	if in.Unit == "" {
		d.errf(m.line, "inject_defect needs either class or an explicit unit")
		return in
	}
	if _, err := fault.UnitByName(in.Unit); err != nil {
		d.errf(m.keyLine("unit"), "%v", err)
	}
	if in.Kind == "" {
		d.errf(m.line, "inject_defect: explicit defects need kind (bitflip, stuckbit, xormask, wronglane, dropupdate, prexor, offbyone)")
	} else if _, err := fault.KindByName(in.Kind); err != nil {
		d.errf(m.keyLine("kind"), "%v", err)
	}
	if in.BaseRate <= 0 && !in.Deterministic {
		d.errf(m.line, "inject_defect: explicit defects need base_rate > 0 or deterministic: true")
	}
	return in
}

// sortedEvents returns the events ordered by day, preserving file order
// within a day (sort.SliceStable keeps the determinism contract: event
// application order never depends on map iteration or timing).
func (s *Scenario) sortedEvents() []Event {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Day < evs[j].Day })
	return evs
}
