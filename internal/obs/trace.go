package obs

import (
	"encoding/json"
	"errors"
	"io"
	"sync"
)

// The CEE lifecycle events, in the order a defective core typically
// traverses them: the defect exists (latent), activates, manifests its
// first detectable signal, concentrates enough reports to be nominated,
// confesses under deep screening, is quarantined, and is eventually
// repaired (releasing its isolation record).
//
// Healthy cores can enter the stream mid-way — a falsely accused core's
// stream starts at its first signal and may still reach quarantine.
const (
	// EventDefectPresent enumerates the ground-truth defect population at
	// the start of a traced run; FirstActiveSec carries the onset time.
	EventDefectPresent = "defect-present"
	// EventDefectActivated marks the day a latent defect becomes able to
	// fire (install age crossing onset).
	EventDefectActivated = "defect-activated"
	// EventFirstSignal is the first core-attributed signal the report
	// service saw for this core; Kind carries the signal kind.
	EventFirstSignal = "first-signal"
	// EventSuspectNominated is the core's first concentration-test
	// nomination; Reports and PValue carry the evidence.
	EventSuspectNominated = "suspect-nominated"
	// EventConfession is one deep screen against the core; Confirmed says
	// whether it reproduced a failure, Detail whether it ran for human
	// triage ("triage") or suspect processing ("suspect").
	EventConfession = "confession"
	// EventQuarantine is an isolation decision; Mode carries the
	// quarantine mode.
	EventQuarantine = "quarantine"
	// EventRelease clears a core's isolation record (repair/replacement).
	EventRelease = "release"
	// EventRepair returns repaired silicon to service; Core is -1 for a
	// whole-machine undrain.
	EventRepair = "repair"
)

// TraceEvent is one CEE-lifecycle event. The (Machine, Core) pair keys
// the per-core stream; events appear in emission order, which for the
// fleet simulator is chronological and bit-identical at any parallelism.
type TraceEvent struct {
	Day     int     `json:"day"`
	TimeSec float64 `json:"time_sec"`
	Machine string  `json:"machine"`
	Core    int     `json:"core"`
	Event   string  `json:"event"`
	// Kind is the signal kind for first-signal events.
	Kind string `json:"kind,omitempty"`
	// Mode is the isolation mode for quarantine events.
	Mode string `json:"mode,omitempty"`
	// Confirmed reports a confession's outcome.
	Confirmed bool `json:"confirmed,omitempty"`
	// Reports and PValue carry nomination evidence.
	Reports int     `json:"reports,omitempty"`
	PValue  float64 `json:"p_value,omitempty"`
	// FirstActiveSec is the defect's ground-truth onset time (defect
	// events only). It is the value detection latencies derive from.
	FirstActiveSec float64 `json:"first_active_sec,omitempty"`
	// Detail carries free-form context ("triage"/"suspect" on
	// confessions).
	Detail string `json:"detail,omitempty"`
}

// Trace is an append-only CEE lifecycle event stream. A nil *Trace is a
// valid no-op sink. Emission is mutex-guarded; the fleet simulator only
// emits from its serial phases, so the stream order is deterministic.
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Emit appends one event. No-op on a nil trace.
func (t *Trace) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Len returns the number of events recorded so far.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the stream in emission order.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteJSONL writes the stream as JSON Lines — one event per line, in
// emission order. Float fields round-trip exactly (encoding/json emits
// the shortest representation that parses back to the same float64), so
// latencies derived from a re-read trace are bit-identical.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w) // Encode appends the newline
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSON Lines stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) ([]TraceEvent, error) {
	dec := json.NewDecoder(r)
	var out []TraceEvent
	for {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, err
		}
		out = append(out, ev)
	}
}
