package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramSnapshotCountCoversBuckets stresses the snapshot/exposition
// read-order fix: with writers incrementing the total count before their
// bucket, and Snapshot reading buckets before the total, every snapshot
// taken mid-storm must satisfy count >= Σ buckets (the +Inf bucket, being
// cumulative, equals the sum). Before the fix the writer updated its
// bucket first, so a snapshot could observe a bucket increment whose count
// increment hadn't landed yet and render count < Σ buckets — an exposition
// no Prometheus consumer should ever see. Run under -race.
func TestHistogramSnapshotCountCoversBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("stress_seconds", []float64{1, 10, 100})

	const writerCount = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writerCount; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := float64(w % 4) // spread observations across buckets
			for !stop.Load() {
				h.Observe(v * 40)
			}
		}(w)
	}

	const snapshots = 2000
	for i := 0; i < snapshots; i++ {
		snap := r.Snapshot()
		if len(snap) != 1 {
			t.Fatalf("snapshot has %d series", len(snap))
		}
		s := snap[0]
		// Buckets are cumulative; the last (+Inf) bucket is the total of
		// all bucket increments visible to this snapshot.
		inBuckets := s.Buckets[len(s.Buckets)-1].Count
		if s.Count < inBuckets {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("snapshot %d: count %d < buckets %d — a consumer saw "+
				"an observation's bucket before its count", i, s.Count, inBuckets)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Quiescent: everything reconciles exactly.
	snap := r.Snapshot()
	s := snap[0]
	if s.Count != s.Buckets[len(s.Buckets)-1].Count {
		t.Fatalf("after quiesce count %d != buckets %d",
			s.Count, s.Buckets[len(s.Buckets)-1].Count)
	}
}
