package obs

import (
	"math"
	"testing"
)

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1e-6, 2, 4)
	want := []float64{1e-6, 2e-6, 4e-6, 8e-6}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
	for i := 1; i < len(DefLatencyBuckets); i++ {
		if DefLatencyBuckets[i] <= DefLatencyBuckets[i-1] {
			t.Fatalf("DefLatencyBuckets not ascending at %d: %v", i, DefLatencyBuckets)
		}
	}
	if DefLatencyBuckets[0] != 1e-6 {
		t.Fatalf("DefLatencyBuckets[0] = %g, want 1µs", DefLatencyBuckets[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate ExpBuckets did not panic")
		}
	}()
	ExpBuckets(1, 1, 3)
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1]: every quantile interpolates
	// inside the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); math.Abs(q-0.5) > 1e-9 {
		t.Fatalf("p50 = %g, want 0.5 (midpoint of first bucket)", q)
	}
	// Add 100 observations in (2,4]: p75+ moves into that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(3)
	}
	if q := h.Quantile(0.75); q <= 2 || q > 4 {
		t.Fatalf("p75 = %g, want inside (2,4]", q)
	}
	if q := h.Quantile(0.25); q <= 0 || q > 1 {
		t.Fatalf("p25 = %g, want inside (0,1]", q)
	}
	// Quantiles are monotone in q.
	last := -1.0
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("Quantile not monotone: q=%g gave %g after %g", q, v, last)
		}
		last = v
	}
	// +Inf landings clamp to the highest finite bound.
	h.Observe(100)
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("p100 with +Inf landing = %g, want clamp to 8", q)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if q := nilH.Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %g", q)
	}
	r := NewRegistry()
	h := r.HistogramBuckets("empty", []float64{1, 2})
	if q := h.Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g", q)
	}
	if q := QuantileFromBuckets(nil, 0.5); q != 0 {
		t.Fatalf("no-bucket quantile = %g", q)
	}
	// Snapshot-level helper agrees with the live histogram.
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(1.5)
	var snap *SeriesSnapshot
	for _, s := range r.Snapshot() {
		if s.Name == "empty" {
			c := s
			snap = &c
		}
	}
	if snap == nil {
		t.Fatal("series missing from snapshot")
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a, b := h.Quantile(q), QuantileFromBuckets(snap.Buckets, q); math.Abs(a-b) > 1e-12 {
			t.Fatalf("q=%g: live %g vs snapshot %g", q, a, b)
		}
	}
}
