package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestShardedCounterMergesShards(t *testing.T) {
	r := NewRegistry()
	sc := r.ShardedCounter("ops_total", 4, L("phase", "screen"))
	sc.Shard(0).Add(1)
	sc.Shard(1).Add(2)
	sc.Shard(2).Add(3)
	sc.Shard(3).Add(4)
	if got := sc.Value(); got != 10 {
		t.Fatalf("merged value = %v, want 10", got)
	}
	// Convenience methods land on shard 0.
	sc.Inc()
	sc.Add(4)
	if got := sc.Value(); got != 15 {
		t.Fatalf("after Inc+Add = %v, want 15", got)
	}
}

func TestShardedCounterShardWraps(t *testing.T) {
	r := NewRegistry()
	sc := r.ShardedCounter("wrap_total", 3)
	// Out-of-range and negative worker ids must map to some valid shard,
	// never panic: callers pass raw worker indices.
	sc.Shard(3).Inc()
	sc.Shard(7).Inc()
	sc.Shard(-1).Inc()
	if got := sc.Value(); got != 3 {
		t.Fatalf("value = %v, want 3", got)
	}
}

func TestShardedCounterSnapshotRendersAsCounter(t *testing.T) {
	r := NewRegistry()
	r.ShardedCounter("sharded_total", 8).Shard(5).Add(7)
	r.Counter("plain_total").Add(7)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series", len(snap))
	}
	for _, s := range snap {
		if s.Kind != "counter" {
			t.Fatalf("%s rendered as %q, want counter", s.Name, s.Kind)
		}
		if s.Value != 7 {
			t.Fatalf("%s = %v, want 7", s.Name, s.Value)
		}
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, "# TYPE sharded_total counter") ||
		!strings.Contains(got, "sharded_total 7") {
		t.Fatalf("exposition does not render sharded counter as counter:\n%s", got)
	}
}

func TestShardedCounterReusedAcrossLookups(t *testing.T) {
	r := NewRegistry()
	a := r.ShardedCounter("reused_total", 4)
	// A second lookup — even with a different shard request — must reuse
	// the same cells, or totals would split across duplicates.
	b := r.ShardedCounter("reused_total", 16)
	a.Shard(1).Add(2)
	b.Shard(2).Add(3)
	if a.Value() != 5 || b.Value() != 5 {
		t.Fatalf("lookups split the series: %v vs %v", a.Value(), b.Value())
	}
}

func TestShardedCounterMixingPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("first_plain_total")
	mustPanic("sharded over plain", func() { r.ShardedCounter("first_plain_total", 4) })

	r2 := NewRegistry()
	r2.ShardedCounter("first_sharded_total", 4)
	mustPanic("plain over sharded", func() { r2.Counter("first_sharded_total") })
}

func TestShardedCounterNilRegistry(t *testing.T) {
	// A nil registry hands out a detached sink, same idiom as nopCounter:
	// writes must be safe (they land nowhere observable), never panic.
	var r *Registry
	sc := r.ShardedCounter("nop_total", 4)
	sc.Shard(3).Inc()
	sc.Add(5)
	var nilSC *ShardedCounter
	nilSC.Shard(0).Inc()
	if nilSC.Value() != 0 {
		t.Fatal("nil ShardedCounter must read as 0")
	}
}

// TestShardedCounterConcurrent drives every shard from its own goroutine
// while a reader merges, under -race. Integral increments make the merged
// total exact regardless of interleaving once writers finish.
func TestShardedCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	const shards, perShard = 8, 10000
	sc := r.ShardedCounter("race_total", shards)

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() { // concurrent reader: merge must never overshoot the writers
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := sc.Value(); v > shards*perShard {
				t.Errorf("merged value %v exceeds total written", v)
				return
			}
		}
	}()

	var writers sync.WaitGroup
	for w := 0; w < shards; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := sc.Shard(w)
			for i := 0; i < perShard; i++ {
				c.Inc()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := sc.Value(); got != shards*perShard {
		t.Fatalf("final value = %v, want %d", got, shards*perShard)
	}
}
