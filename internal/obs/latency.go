package obs

// Time-based latency histograms and quantile estimation. The serving-path
// benchmarks (fleetsim kvbench) need p50/p99/p999 read latency at
// microsecond resolution — DefBuckets is tuned for phase wall times and
// bottoms out at 500µs, useless for a store that answers in single-digit
// microseconds. ExpBuckets builds geometric ladders; Quantile estimates
// order statistics from the fixed buckets the same way Prometheus's
// histogram_quantile does (linear interpolation inside the bucket).

import "math"

// ExpBuckets returns count geometric bucket upper bounds: start,
// start*factor, start*factor², …. It panics on a non-positive start or
// count, or a factor <= 1 — a degenerate ladder is a programming error,
// caught at registration like the registry's kind-mismatch panics.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count > 0")
	}
	out := make([]float64, count)
	b := start
	for i := 0; i < count; i++ {
		out[i] = b
		b *= factor
	}
	return out
}

// DefLatencyBuckets grade serving-path latencies, in seconds: 1µs doubling
// to ~8.4s. 24 buckets resolve p999 shifts of a few microseconds at the
// bottom while still capturing multi-second stalls (a reader blocked
// behind a lock-held backoff) at the top.
var DefLatencyBuckets = ExpBuckets(1e-6, 2, 24)

// Quantile estimates the q-quantile (0 <= q <= 1) of the observations,
// interpolating linearly inside the owning bucket. Observations that
// landed in the +Inf bucket clamp to the highest finite bound, and an
// empty histogram returns 0 — both the Prometheus conventions. The bucket
// reads are not atomic as a set; quantiles read during concurrent
// observation are estimates (exact once recording has stopped).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	cum := make([]BucketCount, 0, len(h.buckets)+1)
	var total uint64
	for i, b := range h.buckets {
		total += h.counts[i].Load()
		cum = append(cum, BucketCount{UpperBound: b, Count: total})
	}
	total += h.counts[len(h.buckets)].Load()
	cum = append(cum, BucketCount{UpperBound: math.Inf(1), Count: total})
	return QuantileFromBuckets(cum, q)
}

// QuantileFromBuckets estimates the q-quantile from cumulative
// (Prometheus "le") bucket counts, e.g. a SeriesSnapshot's Buckets. See
// Histogram.Quantile for the conventions.
func QuantileFromBuckets(buckets []BucketCount, q float64) float64 {
	if len(buckets) == 0 {
		return 0
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var prevCount uint64
	var prevBound float64
	for _, b := range buckets {
		if float64(b.Count) >= rank && b.Count > prevCount {
			if math.IsInf(b.UpperBound, 1) {
				// Clamp to the highest finite bound (or 0 if there is none).
				return prevBound
			}
			inBucket := float64(b.Count - prevCount)
			frac := (rank - float64(prevCount)) / inBucket
			return prevBound + (b.UpperBound-prevBound)*frac
		}
		prevCount = b.Count
		if !math.IsInf(b.UpperBound, 1) {
			prevBound = b.UpperBound
		}
	}
	return prevBound
}
