// Package obs is the fleet-wide observability layer: a small,
// dependency-free metrics registry (counters, gauges, histograms with
// fixed buckets) plus a structured CEE-lifecycle trace (trace.go).
//
// §4 of the paper argues that the hardest open problem with mercurial
// cores is *measuring* them — detection latency, fraction of cores
// detected, rate of application-visible corruption. Every component of
// the reproduction reports through this package so those measurements
// exist while a run is in flight, not only as end-of-run aggregates.
//
// Design rules:
//
//   - Instruments are lock-free (atomics), so hot paths — parallel fleet
//     shards, screening workers, HTTP handlers — can record concurrently
//     without serializing on the registry.
//   - Snapshot order is deterministic: series sort by (name, label
//     signature), never by map iteration order. Two runs that record the
//     same values render the same text.
//   - A nil *Registry (and a nil *Trace) is a valid no-op sink, so
//     instrumented packages never need nil checks at call sites.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "phase", Value: "merge"}.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored (counters
// are monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefBuckets are the default histogram buckets, in seconds — tuned for
// the phase/day wall times the fleet records (sub-millisecond planning up
// to multi-second confession sweeps).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	buckets []float64 // sorted upper bounds, no +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

// Observe records one value.
//
// Write order matters for concurrent scrapes: the total count is
// incremented BEFORE the bucket count. Snapshot reads the buckets before
// the total, so any bucket increment a snapshot observes is preceded by
// its total-count increment — the exposed invariant is count >= Σ buckets
// (the +Inf cumulative bucket), never the reverse. With the old
// bucket-first order a scrape landing between the two increments could
// render cumulative buckets exceeding _count, which Prometheus clients
// reject as a malformed histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.count.Add(1)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// metric kinds.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// series is one (name, labels) instrument. Counters come in two physical
// layouts — plain (c) and per-worker sharded (sc, see sharded.go) — that
// render identically.
type series struct {
	labels []Label
	sig    string
	c      *Counter
	sc     *ShardedCounter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name    string
	kind    string
	buckets []float64 // histogram families only
	series  map[string]*series
}

// Registry holds a process's metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid no-op sink: every accessor
// returns a detached instrument that records nowhere.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Detached no-op instruments handed out by nil registries. They are real
// instruments (writes are race-safe); their values are simply never read.
var (
	nopCounter   = &Counter{}
	nopGauge     = &Gauge{}
	nopHistogram = &Histogram{buckets: nil, counts: make([]atomic.Uint64, 1)}
)

// signature renders labels into a canonical, sorted key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// get returns the series for (name, labels), creating it with the given
// kind; it panics if the name is already registered with another kind
// (or, for histograms, other buckets) — mixed kinds under one name would
// corrupt the exposition format.
func (r *Registry) get(name, kind string, buckets []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kind, buckets: buckets, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as %s", name, f.kind, kind))
	}
	sig := signature(labels)
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sortedLabels(labels), sig: sig}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHist:
			s.h = &Histogram{buckets: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
		}
		f.series[sig] = s
	}
	if kind == kindCounter && s.c == nil {
		panic(fmt.Sprintf("obs: counter %q already registered sharded", name))
	}
	return s
}

func sortedLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nopCounter
	}
	return r.get(name, kindCounter, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nopGauge
	}
	return r.get(name, kindGauge, nil, labels).g
}

// Histogram returns the histogram for (name, labels) with DefBuckets,
// creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.HistogramBuckets(name, DefBuckets, labels...)
}

// HistogramBuckets returns the histogram for (name, labels) with explicit
// bucket upper bounds (sorted ascending; +Inf is implicit). Every series
// of one histogram family shares the buckets fixed at first registration.
func (r *Registry) HistogramBuckets(name string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nopHistogram
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return r.get(name, kindHist, bs, labels).h
}

// BucketCount is one histogram bucket in a snapshot: the cumulative count
// of observations <= UpperBound (Prometheus "le" semantics).
type BucketCount struct {
	UpperBound float64 // math.Inf(1) for the +Inf bucket
	Count      uint64
}

// SeriesSnapshot is one series' state at snapshot time.
type SeriesSnapshot struct {
	Name   string
	Kind   string // "counter", "gauge", "histogram"
	Labels []Label
	// Value is the counter/gauge value (histograms use the fields below).
	Value float64
	// Buckets, Sum, Count are set for histograms.
	Buckets []BucketCount
	Sum     float64
	Count   uint64
}

// Snapshot returns every series in deterministic order: families sorted
// by name, series within a family sorted by label signature.
func (r *Registry) Snapshot() []SeriesSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []SeriesSnapshot
	for _, n := range names {
		f := r.families[n]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			snap := SeriesSnapshot{Name: n, Kind: f.kind, Labels: s.labels}
			switch f.kind {
			case kindCounter:
				if s.sc != nil {
					snap.Value = s.sc.Value()
				} else {
					snap.Value = s.c.Value()
				}
			case kindGauge:
				snap.Value = s.g.Value()
			case kindHist:
				// Cumulative counts, Prometheus "le" style. Reading the
				// buckets is not atomic as a set; per-bucket counts are.
				// Buckets are read BEFORE the total count (Observe
				// increments the total first), so count >= Σ buckets holds
				// in every snapshot even mid-Observe.
				var cum uint64
				for i, b := range f.buckets {
					cum += s.h.counts[i].Load()
					snap.Buckets = append(snap.Buckets, BucketCount{UpperBound: b, Count: cum})
				}
				cum += s.h.counts[len(f.buckets)].Load()
				snap.Buckets = append(snap.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
				snap.Sum = s.h.Sum()
				snap.Count = s.h.Count()
			}
			out = append(out, snap)
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), in deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snaps := r.Snapshot()
	var lastName string
	for _, s := range snaps {
		if s.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastName = s.Name
		}
		switch s.Kind {
		case kindCounter, kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Value)); err != nil {
				return err
			}
		case kindHist:
			for _, b := range s.Buckets {
				le := "+Inf"
				if !math.IsInf(b.UpperBound, 1) {
					le = formatFloat(b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, "le", le), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
				s.Name, promLabels(s.Labels, "", ""), formatFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
				s.Name, promLabels(s.Labels, "", ""), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a label set (plus an optional extra pair, used for
// "le") as a {k="v",...} block, or "" when empty.
func promLabels(labels []Label, extraKey, extraValue string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
