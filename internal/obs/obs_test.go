package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", L("kind", "crash"))
	c.Inc()
	c.Add(2.5)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if again := r.Counter("requests_total", L("kind", "crash")); again != c {
		t.Fatal("same (name, labels) returned a different counter")
	}
	if other := r.Counter("requests_total", L("kind", "mce")); other == c {
		t.Fatal("different labels shared a counter")
	}

	g := r.Gauge("active")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestLabelOrderDoesNotSplitSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", L("a", "1"), L("b", "2"))
	b := r.Counter("x", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order split one series into two")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("lat", []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 111.5 {
		t.Fatalf("sum = %v", h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	// le semantics: 1 lands in the le="1" bucket; cumulative counts.
	want := []uint64{2, 3, 4, 5}
	for i, b := range snap[0].Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d (le=%v) = %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if !math.IsInf(snap[0].Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket is not +Inf")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func() []SeriesSnapshot {
		r := NewRegistry()
		// Register in scrambled order; snapshot must not care.
		r.Counter("zebra").Inc()
		r.Gauge("apple", L("b", "2")).Set(1)
		r.Gauge("apple", L("a", "1")).Set(2)
		r.Counter("mango", L("k", "v")).Add(3)
		return r.Snapshot()
	}
	a, b := build(), build()
	if len(a) != 4 {
		t.Fatalf("snapshot has %d series", len(a))
	}
	names := []string{a[0].Name, a[1].Name, a[2].Name, a[3].Name}
	if names[0] != "apple" || names[1] != "apple" || names[2] != "mango" || names[3] != "zebra" {
		t.Fatalf("family order = %v", names)
	}
	if a[0].Labels[0].Key != "a" || a[1].Labels[0].Key != "b" {
		t.Fatalf("series order within family = %+v, %+v", a[0].Labels, a[1].Labels)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Value != b[i].Value {
			t.Fatalf("snapshots diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("reports_total", L("kind", "crash")).Add(4)
	r.Counter("reports_total", L("kind", "mce")).Inc()
	r.Gauge("suspects").Set(2)
	h := r.HistogramBuckets("phase_seconds", []float64{0.1, 1}, L("phase", "merge"))
	h.Observe(0.05)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE phase_seconds histogram
phase_seconds_bucket{phase="merge",le="0.1"} 1
phase_seconds_bucket{phase="merge",le="1"} 2
phase_seconds_bucket{phase="merge",le="+Inf"} 2
phase_seconds_sum{phase="merge"} 0.55
phase_seconds_count{phase="merge"} 2
# TYPE reports_total counter
reports_total{kind="crash"} 4
reports_total{kind="mce"} 1
# TYPE suspects gauge
suspects 2
`
	if got != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", L("d", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `d="a\"b\\c\nd"`) {
		t.Fatalf("escaping wrong: %q", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m").Inc()
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestNilRegistryAndTraceAreNoOpSinks(t *testing.T) {
	var r *Registry
	r.Counter("c", L("k", "v")).Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(2)
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %+v", s)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry wrote %q (err %v)", b.String(), err)
	}

	var tr *Trace
	tr.Emit(TraceEvent{Event: EventQuarantine})
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace recorded something")
	}
	if err := tr.WriteJSONL(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil trace wrote %q (err %v)", b.String(), err)
	}
}

// TestConcurrentInstruments drives every instrument kind from many
// goroutines; run under -race this is the registry's concurrency
// contract.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace()
	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c", L("worker", string(rune('a'+g)))).Inc()
				r.Counter("shared").Add(0.5)
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i) / 100)
				tr.Emit(TraceEvent{Day: i, Event: EventFirstSignal})
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*iters*0.5 {
		t.Fatalf("shared counter = %v", got)
	}
	if got := r.Histogram("h").Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d", got)
	}
	if tr.Len() != goroutines*iters {
		t.Fatalf("trace len = %d", tr.Len())
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := NewTrace()
	events := []TraceEvent{
		{Day: 0, TimeSec: 0, Machine: "m00001", Core: 3, Event: EventDefectPresent,
			FirstActiveSec: 86400.123456789},
		{Day: 1, TimeSec: 86400, Machine: "m00001", Core: 3, Event: EventDefectActivated,
			FirstActiveSec: 86400.123456789},
		{Day: 2, TimeSec: 172800, Machine: "m00001", Core: 3, Event: EventFirstSignal, Kind: "crash"},
		{Day: 3, TimeSec: 259200, Machine: "m00001", Core: 3, Event: EventSuspectNominated,
			Reports: 4, PValue: 2.5e-17},
		{Day: 3, TimeSec: 259200, Machine: "m00001", Core: 3, Event: EventConfession,
			Confirmed: true, Detail: "suspect"},
		{Day: 3, TimeSec: 259200, Machine: "m00001", Core: 3, Event: EventQuarantine,
			Mode: "core-removal"},
		{Day: 33, TimeSec: 2851200, Machine: "m00001", Core: 3, Event: EventRelease},
		{Day: 33, TimeSec: 2851200, Machine: "m00001", Core: 3, Event: EventRepair},
	}
	for _, ev := range events {
		tr.Emit(ev)
	}
	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != len(events) {
		t.Fatalf("JSONL has %d lines, want %d", lines, len(events))
	}
	back, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip lost events: %d of %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d diverged:\n%+v\n%+v", i, back[i], events[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"day\":1}\nnot json\n")); err == nil {
		t.Fatal("garbage line parsed")
	}
}
