package obs

import "fmt"

// Sharded counters: per-worker counter cells merged on read.
//
// A plain Counter is lock-free but still a single cache line; when every
// worker goroutine of a sharded fleet day bumps the same hot counter per
// item, the line ping-pongs between cores and the CAS loop spins under
// contention. A ShardedCounter gives each worker its own padded cell —
// increments are uncontended — and folds the cells only when the value is
// read (snapshot/exposition), which is rare.
//
// Determinism: the fleet's counters record integral event counts. Integral
// float64 additions are exact, so the merged total does not depend on which
// worker happened to process which item — the snapshot is bit-identical at
// any parallelism, the same contract plain counters give.

// cacheLineSize is the assumed coherence-line size; cells are padded to it
// so two shards never share a line.
const cacheLineSize = 64

// counterCell is one shard, padded to a full cache line.
type counterCell struct {
	c Counter
	_ [cacheLineSize - 8]byte
}

// ShardedCounter is a monotone counter split across per-worker cells.
// Obtain one from Registry.ShardedCounter; it renders in snapshots and the
// Prometheus exposition exactly like a plain counter.
type ShardedCounter struct {
	cells []counterCell
}

func newShardedCounter(shards int) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{cells: make([]counterCell, shards)}
}

// nopSharded is the detached instrument handed out by nil registries.
var nopSharded = newShardedCounter(1)

// Shard returns the cell for worker w (wrapped modulo the shard count), a
// plain *Counter the worker increments without contention. Callers obtain
// their shard once per fan-out, not per increment.
func (s *ShardedCounter) Shard(w int) *Counter {
	if s == nil {
		return nopCounter
	}
	if w < 0 {
		w = -w
	}
	return &s.cells[w%len(s.cells)].c
}

// Add folds v into shard 0 — for serial-phase callers without a worker
// identity.
func (s *ShardedCounter) Add(v float64) { s.Shard(0).Add(v) }

// Inc adds 1 to shard 0.
func (s *ShardedCounter) Inc() { s.Add(1) }

// Value returns the merged total across all shards.
func (s *ShardedCounter) Value() float64 {
	if s == nil {
		return 0
	}
	var t float64
	for i := range s.cells {
		t += s.cells[i].c.Value()
	}
	return t
}

// ShardedCounter returns the sharded counter for (name, labels), creating
// it with the given shard count on first use (later calls reuse the
// existing cells regardless of the requested count; Shard wraps modulo the
// actual count). The series registers under the "counter" kind and is
// indistinguishable from a plain counter in snapshots and exposition. A
// name/label pair must be consistently plain or sharded; mixing panics.
func (r *Registry) ShardedCounter(name string, shards int, labels ...Label) *ShardedCounter {
	if r == nil {
		return nopSharded
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: kindCounter, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kindCounter {
		panic(fmt.Sprintf("obs: metric %q is a %s, requested as counter", name, f.kind))
	}
	sig := signature(labels)
	s := f.series[sig]
	if s == nil {
		s = &series{labels: sortedLabels(labels), sig: sig, sc: newShardedCounter(shards)}
		f.series[sig] = s
	}
	if s.sc == nil {
		panic(fmt.Sprintf("obs: counter %q already registered unsharded", name))
	}
	return s.sc
}
