package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
)

// otherShardKey returns a key hashing to a different storage shard than
// ref (so a test can prove shard independence explicitly).
func otherShardKey(t *testing.T, ref string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("cold%04d", i)
		if shardIndex(k) != shardIndex(ref) {
			return k
		}
	}
	t.Fatal("no key in another shard within 1000 tries")
	return ""
}

// TestBackoffDoesNotBlockConcurrentReaders is the regression test for the
// lock-held-backoff bug: the historical store slept its retry backoff
// while holding the global mutex, so one corrupt row with a nonzero
// RetryBackoff stalled every other reader for the full backoff ladder.
// Here a reader backs off for ~360ms on a fully corrupt row while a
// second reader completes hundreds of healthy reads in a different shard;
// the healthy reader must finish well inside the first sleep.
func TestBackoffDoesNotBlockConcurrentReaders(t *testing.T) {
	db, _ := New(healthyReplica("r0", 1), healthyReplica("r1", 2), healthyReplica("r2", 3))
	firstSleep := make(chan struct{})
	var once sync.Once
	tdb := NewTolerant(db, TolerantConfig{
		MaxRetries:   2,
		RetryBackoff: 120 * time.Millisecond,
		MaxBackoff:   240 * time.Millisecond,
		sleep: func(d time.Duration) {
			once.Do(func() { close(firstSleep) })
			time.Sleep(d)
		},
	})
	hot := "hotrow"
	cold := otherShardKey(t, hot)
	tdb.Put(hot, []byte("hot payload bytes"))
	tdb.Put(cold, []byte("cold payload bytes"))
	// Corrupt the hot row on every replica so the read walks the whole
	// retry ladder (two backoffs: 120ms + 240ms) and ends in ErrCorrupt.
	for _, r := range db.replicas {
		r.row(hot).value[0] ^= 0xFF
	}

	hotDone := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := tdb.Get(hot)
		hotDone <- err
	}()

	<-firstSleep // the hot read is now inside its first backoff sleep
	const coldReads = 200
	for i := 0; i < coldReads; i++ {
		if _, err := tdb.Get(cold); err != nil {
			t.Fatalf("cold read %d: %v", i, err)
		}
	}
	coldElapsed := time.Since(start)

	err := <-hotDone
	hotElapsed := time.Since(start)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hot read err = %v, want ErrCorrupt", err)
	}
	if hotElapsed < 360*time.Millisecond {
		t.Fatalf("hot read finished in %v, expected >= 360ms of backoff", hotElapsed)
	}
	// The healthy reader ran entirely inside the hot read's backoff
	// window. 100ms for 200 in-memory reads is an enormous margin; with
	// the old lock-held backoff this took the full ladder (360ms+).
	if coldElapsed > 100*time.Millisecond {
		t.Fatalf("%d healthy reads took %v during a backoff; reader was stalled", coldReads, coldElapsed)
	}
	if st := tdb.Stats(); st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
}

// TestPickCursorOverflow pre-sets the round-robin cursor to the int
// boundaries: the historical ever-growing cursor overflowed, went
// negative, and panicked on replicas[negative]. pick must renormalize and
// keep serving in rotation.
func TestPickCursorOverflow(t *testing.T) {
	db, _ := New(healthyReplica("r0", 1), healthyReplica("r1", 2), healthyReplica("r2", 3))
	db.Put("k", []byte("v"))
	for _, start := range []int{math.MaxInt, math.MaxInt - 1, math.MinInt, math.MinInt + 1, -1} {
		db.next = start
		for i := 0; i < 7; i++ {
			if _, err := db.Get("k"); err != nil {
				t.Fatalf("cursor=%d read %d: %v", start, i, err)
			}
			if db.next < 0 || db.next > len(db.replicas) {
				t.Fatalf("cursor=%d left db.next=%d out of range", start, db.next)
			}
		}
	}
	// The rotation sequence is the same modular walk the unbounded cursor
	// produced: from next=1 the picks go r1, r2, r0, r1...
	db.next = 1
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, db.pick().ID)
	}
	if want := []string{"r1", "r2", "r0", "r1"}; !equalStrings(ids, want) {
		t.Fatalf("rotation = %v, want %v", ids, want)
	}
}

// TestTolerantCursorOverflow does the same for the tolerant layer's own
// atomic cursor.
func TestTolerantCursorOverflow(t *testing.T) {
	db, _ := New(healthyReplica("r0", 1), healthyReplica("r1", 2), healthyReplica("r2", 3))
	tdb := NewTolerant(db, TolerantConfig{})
	tdb.Put("k", []byte("v"))
	for _, start := range []int64{math.MaxInt64, math.MaxInt64 - 1, math.MinInt64, math.MinInt64 + 1, -1} {
		tdb.cursor.Store(start)
		for i := 0; i < 7; i++ {
			if v, err := tdb.Get("k"); err != nil || !bytes.Equal(v, []byte("v")) {
				t.Fatalf("cursor=%d read %d: %q, %v", start, i, v, err)
			}
			if c := tdb.cursor.Load(); c < 0 || c >= int64(len(db.replicas)) {
				t.Fatalf("cursor=%d left cursor=%d out of range", start, c)
			}
		}
	}
}

// TestBackoffDelayClamped covers the shift-overflow satellite: doubling by
// the raw retry count overflowed time.Duration and skipped the sleep;
// backoffDelay must saturate at the cap for any retry count.
func TestBackoffDelayClamped(t *testing.T) {
	tdb := NewTolerant(mustTestDB(t), TolerantConfig{
		RetryBackoff: 10 * time.Millisecond,
		MaxBackoff:   time.Hour,
	})
	for retry, want := range map[int]time.Duration{
		0: 10 * time.Millisecond,
		1: 20 * time.Millisecond,
		5: 320 * time.Millisecond,
	} {
		if got := tdb.backoffDelay(retry); got != want {
			t.Fatalf("backoffDelay(%d) = %v, want %v", retry, got, want)
		}
	}
	// Shifts past 63 bits historically went negative; now they clamp.
	for _, retry := range []int{40, 63, 64, 100, 1 << 20} {
		if got := tdb.backoffDelay(retry); got != time.Hour {
			t.Fatalf("backoffDelay(%d) = %v, want clamp at %v", retry, got, time.Hour)
		}
	}
	// Default cap (8x base) with a huge retry count.
	tdb2 := NewTolerant(mustTestDB(t), TolerantConfig{RetryBackoff: time.Millisecond})
	if got := tdb2.backoffDelay(1000); got != 8*time.Millisecond {
		t.Fatalf("default-cap backoffDelay(1000) = %v, want 8ms", got)
	}
	// A cap near the Duration ceiling must still terminate and stay positive.
	tdb3 := NewTolerant(mustTestDB(t), TolerantConfig{
		RetryBackoff: time.Nanosecond,
		MaxBackoff:   math.MaxInt64,
	})
	if got := tdb3.backoffDelay(200); got <= 0 {
		t.Fatalf("ceiling-cap backoffDelay(200) = %v, want positive", got)
	}
}

func mustTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := New(healthyReplica("r0", 1), healthyReplica("r1", 2), healthyReplica("r2", 3))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTrackerHealthTTLEquivalence proves the memoized health view gives
// the same answers as the historical per-call suspects() sweep, while
// calling suspects() once per TTL window instead of once per query.
func TestTrackerHealthTTLEquivalence(t *testing.T) {
	suspectSet := []detect.Suspect{
		{Machine: "m0", Core: 2, Reports: 10, PValue: 1e-6}, // score 60
		{Machine: "m1", Core: 0, Reports: 2, PValue: 0.5},   // score ~0.6
		{Machine: "m2", Core: 7, Reports: 8, PValue: 1e-4},  // score 32
	}
	var calls atomic.Int64
	suspects := func() []detect.Suspect {
		calls.Add(1)
		return append([]detect.Suspect(nil), suspectSet...)
	}
	isolated := func(machine string, core int) bool {
		return machine == "iso" && core == 0
	}
	clock := time.Unix(0, 0)
	now := func() time.Time { return clock }

	naive := TrackerHealthTTL(isolated, suspects, 10, 0, nil)
	cached := TrackerHealthTTL(isolated, suspects, 10, 50*time.Millisecond, now)

	queries := []struct {
		machine string
		core    int
	}{
		{"m0", 2}, {"m0", 1}, {"m1", 0}, {"m2", 7}, {"m3", 4},
		{"iso", 0}, {"", 3}, {"m0", -1}, {"m0", 2}, {"m2", 7},
	}
	calls.Store(0)
	for _, q := range queries {
		want := naive(q.machine, q.core)
		calls.Store(0)
		if got := cached(q.machine, q.core); got != want {
			t.Fatalf("cached(%q,%d) = %v, naive = %v", q.machine, q.core, got, want)
		}
		cachedCalls := calls.Load()
		calls.Store(0)
		if cachedCalls > 1 {
			t.Fatalf("cached(%q,%d) swept suspects %d times in one query", q.machine, q.core, cachedCalls)
		}
	}
	// Within the TTL the snapshot is reused: a burst of queries costs at
	// most the one sweep that built it.
	calls.Store(0)
	for i := 0; i < 100; i++ {
		cached("m0", 2)
		cached("m2", 7)
	}
	if got := calls.Load(); got > 1 {
		t.Fatalf("suspects() swept %d times inside one TTL window, want <= 1", got)
	}
	// After expiry the next query rebuilds the snapshot and sees changes.
	suspectSet[0].PValue = 1 // score drops to ~0: m0/2 no longer avoided
	clock = clock.Add(51 * time.Millisecond)
	if cached("m0", 2) {
		t.Fatal("expired snapshot not rebuilt: m0/2 still avoided")
	}
	// Isolation is always consulted live, never cached.
	if !cached("iso", 0) {
		t.Fatal("isolated core not avoided")
	}
}

// TestShardedStressStatsReconcile hammers the sharded store from many
// goroutines — mixed Get/GetTraced/Put/QueryByValue against a replica set
// that includes a deterministically corrupt core — and then reconciles
// every ledger: client op counts, sink deliveries, and the metrics
// registry must all agree. Run under -race this is also the memory-model
// proof for the sharded design.
func TestShardedStressStatsReconcile(t *testing.T) {
	bad := stuckBitReplica("bad", 1).Locate("m0", 2)
	db, _ := New(bad, healthyReplica("g1", 2).Locate("m1", 0), healthyReplica("g2", 3).Locate("m2", 0))
	var cs collectSink
	reg := obs.NewRegistry()
	tdb := NewTolerant(db, TolerantConfig{Sink: cs.sink, Metrics: reg})
	val := bit3Payload()
	const keys = 16
	for i := 0; i < keys; i++ {
		tdb.Put(fmt.Sprintf("k%02d", i), val)
	}

	const workers = 8
	const opsEach = 300
	var wantReads, wantWrites, wantQueries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k%02d", (w*7+i)%keys)
				switch i % 8 {
				case 0:
					tdb.Put(key, val)
					wantWrites.Add(1)
				case 1:
					tdb.QueryByValue(val)
					wantQueries.Add(1)
				case 2:
					tdb.Stats()
					tdb.SuspectRows()
					tdb.RowSuspect(key)
				case 3:
					v, info, err := tdb.GetTraced(key)
					if err != nil || !bytes.Equal(v, val) {
						t.Errorf("traced get %s: %v (result %s)", key, err, info.Result)
					}
					if info.Attempts < 1 || info.Result == "" {
						t.Errorf("traced get %s: empty trace %+v", key, info)
					}
					wantReads.Add(1)
				default:
					if v, err := tdb.Get(key); err != nil || !bytes.Equal(v, val) {
						t.Errorf("get %s: %v", key, err)
					}
					wantReads.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	st := tdb.Stats()
	if got, want := st.Reads, int(wantReads.Load()); got != want {
		t.Fatalf("Reads = %d, want %d", got, want)
	}
	if got, want := st.Writes, int(wantWrites.Load())+keys; got != want {
		t.Fatalf("Writes = %d, want %d", got, want)
	}
	if got, want := st.IndexQueries, int(wantQueries.Load()); got != want {
		t.Fatalf("IndexQueries = %d, want %d", got, want)
	}
	if st.SignalsSent != len(cs.all()) {
		t.Fatalf("SignalsSent = %d, sink saw %d", st.SignalsSent, len(cs.all()))
	}
	if st.SignalsDropped != 0 || st.SignalsShed != 0 {
		t.Fatalf("lossless sink recorded losses: %+v", st)
	}
	if st.Errors != 0 {
		t.Fatalf("client-visible errors under stress: %+v", st)
	}
	// The metrics registry reconciles with the stats ledger.
	snap := map[string]float64{}
	var attempts uint64
	for _, s := range reg.Snapshot() {
		if s.Kind == "histogram" {
			attempts = s.Count
			continue
		}
		snap[s.Name] += s.Value
	}
	if got := int(snap["kvdb_writes_total"]); got != st.Writes {
		t.Fatalf("kvdb_writes_total = %d, stats %d", got, st.Writes)
	}
	if got := int(snap["kvdb_reads_total"]); got != st.Reads {
		t.Fatalf("kvdb_reads_total = %d, stats %d", got, st.Reads)
	}
	if got := int(snap["kvdb_read_retries_total"]); got != st.Retries {
		t.Fatalf("kvdb_read_retries_total = %d, stats %d", got, st.Retries)
	}
	if got := int(snap["kvdb_signals_total"]); got != st.SignalsSent {
		t.Fatalf("kvdb_signals_total = %d, stats %d", got, st.SignalsSent)
	}
	if attempts != uint64(st.Reads) {
		t.Fatalf("kvdb_read_attempts count = %d, reads %d", attempts, st.Reads)
	}
	// The mirrored db.Stats ledger agrees with the tolerant one.
	if db.Stats.Reads != st.Reads || db.Stats.Writes != st.Writes {
		t.Fatalf("db.Stats (%d reads, %d writes) diverged from tolerant (%d, %d)",
			db.Stats.Reads, db.Stats.Writes, st.Reads, st.Writes)
	}
}

// TestAsyncSignalQueueShedsAndFlushes drives the bounded async signal
// queue through its full lifecycle: delivery in order, overflow shedding,
// Flush barriers, and post-Close shedding.
func TestAsyncSignalQueueShedsAndFlushes(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	var mu sync.Mutex
	var got []string
	sink := func(sig detect.Signal) error {
		entered <- struct{}{}
		<-release
		mu.Lock()
		got = append(got, sig.Detail)
		mu.Unlock()
		return nil
	}
	db := mustTestDB(t)
	tdb := NewTolerant(db, TolerantConfig{Sink: sink, SignalQueue: 2})
	r := db.replicas[0]

	tdb.emit(r, "s1") // drained immediately; sink blocks on release
	<-entered         // flusher is now inside the sink, queue empty
	tdb.emit(r, "s2")
	tdb.emit(r, "s3") // queue now at capacity 2
	tdb.emit(r, "s4") // shed
	if st := tdb.Stats(); st.SignalsShed != 1 {
		t.Fatalf("SignalsShed = %d, want 1", st.SignalsShed)
	}
	close(release)
	tdb.Flush()
	st := tdb.Stats()
	if st.SignalsSent != 3 {
		t.Fatalf("SignalsSent = %d, want 3", st.SignalsSent)
	}
	mu.Lock()
	order := append([]string(nil), got...)
	mu.Unlock()
	if want := []string{"s1", "s2", "s3"}; !equalStrings(order, want) {
		t.Fatalf("delivery order = %v, want %v", order, want)
	}
	tdb.Close()
	tdb.emit(r, "s5") // queue closed: shed, not delivered
	if st := tdb.Stats(); st.SignalsShed != 2 || st.SignalsSent != 3 {
		t.Fatalf("post-close stats = %+v", st)
	}
}

// TestAsyncQueuePrefersBatchSink checks the flusher hands a drained
// buffer to the batch sink in one call, in emission order.
func TestAsyncQueuePrefersBatchSink(t *testing.T) {
	var mu sync.Mutex
	var batches [][]string
	bs := func(sigs []detect.Signal) error {
		details := make([]string, len(sigs))
		for i, s := range sigs {
			details[i] = s.Detail
		}
		mu.Lock()
		batches = append(batches, details)
		mu.Unlock()
		return nil
	}
	db := mustTestDB(t)
	tdb := NewTolerant(db, TolerantConfig{BatchSink: bs, SignalQueue: 64})
	r := db.replicas[0]
	for i := 0; i < 5; i++ {
		tdb.emit(r, fmt.Sprintf("b%d", i))
	}
	tdb.Close()
	if st := tdb.Stats(); st.SignalsSent != 5 || st.SignalsShed != 0 {
		t.Fatalf("stats = %+v, want 5 sent", st)
	}
	mu.Lock()
	defer mu.Unlock()
	var flat []string
	for _, b := range batches {
		flat = append(flat, b...)
	}
	if want := []string{"b0", "b1", "b2", "b3", "b4"}; !equalStrings(flat, want) {
		t.Fatalf("batched delivery = %v (batches %v), want %v", flat, batches, want)
	}
}

// TestSingleLockBaselineServes sanity-checks the benchmarking baseline
// mode: full mitigation ladder, same client-visible behavior, one global
// lock.
func TestSingleLockBaselineServes(t *testing.T) {
	bad := stuckBitReplica("bad", 1).Locate("m0", 2)
	db, _ := New(bad, healthyReplica("g1", 2).Locate("m1", 0), healthyReplica("g2", 3).Locate("m2", 0))
	var cs collectSink
	tdb := NewTolerant(db, TolerantConfig{Sink: cs.sink, SingleLock: true})
	val := bit3Payload()
	for i := 0; i < 4; i++ {
		tdb.Put(fmt.Sprintf("k%d", i), val)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (w+i)%4)
				switch i % 4 {
				case 0:
					tdb.Put(key, val)
				case 1:
					tdb.QueryByValue(val)
				default:
					if v, err := tdb.Get(key); err != nil || !bytes.Equal(v, val) {
						t.Errorf("get %s: %v", key, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := tdb.Stats()
	if st.Errors != 0 || st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("baseline stats: %+v", st)
	}
	if st.SignalsSent != len(cs.all()) {
		t.Fatalf("SignalsSent = %d, sink saw %d", st.SignalsSent, len(cs.all()))
	}
}
