// Tolerant serving: the mitigation layer that turns the store from a
// passive incident generator into a self-defending service.
//
// §6 of the paper asks applications to feed their self-check failures
// (checksum mismatches, replica divergence) into the suspect-report
// service; §7 asks for retry-on-a-different-core mitigation. TolerantDB
// closes both loops around DB:
//
//   - every ErrCorrupt/ErrDivergent event is converted into a
//     detect.Signal attributing the serving replica's core and delivered
//     through a SignalSink (in-process report.Server ingest for the fleet
//     simulator, report.Client HTTP for a remote ceereportd);
//   - reads retry on a different replica with bounded backoff, escalate
//     to ReadRepair, and degrade gracefully (serve the plurality value
//     and mark the row suspect) instead of erroring;
//   - replica selection is health-aware: replicas whose cores are
//     quarantined or highly scored by the tracker are deprioritized,
//     closing the report → nominate → quarantine → reroute cycle.
//
// Unlike DB, a TolerantDB is safe for concurrent use. Concurrency is
// sharded, not serialized: each of the StorageShards key partitions is
// guarded by its own RWMutex (mirroring detect.ShardedTracker), reads of
// different rows proceed in parallel, and retry backoff sleeps with no
// lock held, so one corrupt row backing off never stalls the rest of the
// store. The per-replica engine mutex underneath (the simulated core is
// inherently serial) is the only cross-shard serialization point.
//
// Lock ordering, outermost first:
//
//  1. shard mutexes, ascending by shard index (an operation holds either
//     one shard — Get/Put — or all of them — QueryByValue);
//  2. the replica engine mutex (taken inside Replica methods, never held
//     across shard-lock acquisition);
//  3. statsMu / the signal-queue mutex (leaves; never held across 1–2).
//
// Signal delivery is synchronous by default (deterministic, what the
// fleet's serial kvdb phase needs). With SignalQueue > 0, emits append to
// a bounded in-memory queue drained by a background flusher in batches —
// ceereportd's ingest-queue shape — so a slow or remote sink never blocks
// a read; overflow sheds the newest signal (counted, never blocking).
package kvdb

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
)

// SignalSink delivers one suspect-core signal. A non-nil error means the
// signal was lost (counted, never surfaced to the reading client: the
// serving path must not fail because the reporting path did).
type SignalSink func(detect.Signal) error

// BatchSignalSink delivers a batch of signals in one call. When set, the
// async flusher (SignalQueue > 0) prefers it over per-signal Sink calls —
// one ingest per drained batch instead of one per signal.
type BatchSignalSink func([]detect.Signal) error

// ServerSink delivers signals in-process to a report server — the fleet
// simulator's path.
func ServerSink(s *report.Server) SignalSink {
	return func(sig detect.Signal) error {
		s.Ingest(sig)
		return nil
	}
}

// ServerBatchSink batch-delivers signals in-process to a report server.
func ServerBatchSink(s *report.Server) BatchSignalSink {
	return func(sigs []detect.Signal) error {
		s.IngestBatch(sigs)
		return nil
	}
}

// ClientSink delivers signals to a remote ceereportd over HTTP via the
// report client (which retries transport failures with backoff).
func ClientSink(c *report.Client) SignalSink {
	return func(sig detect.Signal) error {
		return c.Report(report.Report{
			Machine: sig.Machine,
			Core:    sig.Core,
			Kind:    sig.Kind.String(),
			Detail:  sig.Detail,
			TimeSec: float64(sig.Time),
		})
	}
}

// ClientBatchSink delivers signal batches to a remote ceereportd in one
// POST /v1/reports call each.
func ClientBatchSink(c *report.Client) BatchSignalSink {
	return func(sigs []detect.Signal) error {
		reports := make([]report.Report, len(sigs))
		for i, sig := range sigs {
			reports[i] = report.Report{
				Machine: sig.Machine,
				Core:    sig.Core,
				Kind:    sig.Kind.String(),
				Detail:  sig.Detail,
				TimeSec: float64(sig.Time),
			}
		}
		_, err := c.ReportBatch(report.Batch{Reports: reports})
		return err
	}
}

// HealthFunc reports whether the (machine, core) slot serving a replica
// should be deprioritized — typically because the core is quarantined or
// its suspect score crossed a threshold. Avoided replicas are still used
// when every alternative has been tried (capacity over health).
type HealthFunc func(machine string, core int) bool

// HealthCacheTTL is the memoization window TrackerHealth uses for the
// tracker's suspect nominations. Suspect scores move on signal-ingest
// timescales (per-day in the simulator, seconds in a deployment), so a
// few milliseconds of staleness is invisible — while re-walking the full
// suspects() slice once per replica per read is an O(replicas × suspects)
// tax on the hottest path in the store.
const HealthCacheTTL = 5 * time.Millisecond

// TrackerHealth builds a HealthFunc from the two live views a deployment
// has: the quarantine ledger and the tracker's suspect nominations. A
// replica is avoided when its core is isolated, or when a current suspect
// for that exact core scores at least minScore. Nomination lookups are
// memoized for HealthCacheTTL (see TrackerHealthTTL).
func TrackerHealth(isolated func(machine string, core int) bool,
	suspects func() []detect.Suspect, minScore float64) HealthFunc {
	return TrackerHealthTTL(isolated, suspects, minScore, HealthCacheTTL, time.Now)
}

// TrackerHealthTTL is TrackerHealth with an explicit memoization window
// and clock (the clock seam exists for tests; nil means time.Now). The
// isolated view is always consulted live — quarantine decisions must
// reroute immediately. The suspects() slice is folded into a set at most
// once per ttl; ttl <= 0 disables caching and re-evaluates suspects() on
// every query, the historical behavior.
func TrackerHealthTTL(isolated func(machine string, core int) bool,
	suspects func() []detect.Suspect, minScore float64,
	ttl time.Duration, now func() time.Time) HealthFunc {
	if ttl <= 0 {
		return func(machine string, core int) bool {
			if machine == "" || core < 0 {
				return false
			}
			if isolated != nil && isolated(machine, core) {
				return true
			}
			if suspects == nil {
				return false
			}
			for _, s := range suspects() {
				if s.Machine == machine && s.Core == core && s.Score() >= minScore {
					return true
				}
			}
			return false
		}
	}
	if now == nil {
		now = time.Now
	}
	type coreKey struct {
		machine string
		core    int
	}
	var (
		mu      sync.Mutex
		cached  map[coreKey]bool
		expires time.Time
	)
	return func(machine string, core int) bool {
		if machine == "" || core < 0 {
			return false
		}
		if isolated != nil && isolated(machine, core) {
			return true
		}
		if suspects == nil {
			return false
		}
		mu.Lock()
		if cached == nil || !now().Before(expires) {
			cached = map[coreKey]bool{}
			for _, s := range suspects() {
				if s.Score() >= minScore {
					cached[coreKey{s.Machine, s.Core}] = true
				}
			}
			expires = now().Add(ttl)
		}
		avoid := cached[coreKey{machine, core}]
		mu.Unlock()
		return avoid
	}
}

// TolerantConfig parameterizes the serving layer.
type TolerantConfig struct {
	// MaxRetries bounds how many additional replicas a checksum-failed
	// read tries before escalating to ReadRepair. 0 selects the default
	// (2); negative disables retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubled per
	// further retry and capped at MaxBackoff. Zero disables sleeping —
	// the right setting for simulation, where retries are instantaneous.
	// Backoff sleeps hold no lock: a backing-off read never stalls other
	// readers or writers.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff; zero means 8×RetryBackoff.
	MaxBackoff time.Duration
	// DualRead serves every read from two distinct replicas and compares
	// — §6's dual-computation detector as the steady-state read path.
	// Divergence escalates to ReadRepair, which majority-votes blame.
	DualRead bool
	// Sink receives every detection signal; nil drops them (counted).
	Sink SignalSink
	// BatchSink, if set, is preferred by the async flusher (SignalQueue
	// > 0) so a drained batch costs one delivery. Ignored for synchronous
	// emits unless Sink is nil, in which case single-signal batches go
	// through it.
	BatchSink BatchSignalSink
	// Health deprioritizes replicas on unhealthy cores; nil treats every
	// replica as healthy. It is consulted at most once per replica per
	// read (the per-read health snapshot).
	Health HealthFunc
	// Metrics receives serving counters and histograms; nil records
	// nothing. Replaceable later via SetMetrics.
	Metrics *obs.Registry
	// Now timestamps outgoing signals; nil means the zero time.
	Now func() simtime.Time
	// SignalQueue enables asynchronous signal delivery: emits append to a
	// bounded queue of this capacity drained by a background flusher, so
	// the sink never blocks a read. 0 (the default) delivers signals
	// synchronously in emission order — the deterministic mode the fleet
	// simulator requires. Overflow sheds the newest signal (counted in
	// SignalsShed). Callers using a queue should Close (or Flush) the
	// store when done.
	SignalQueue int
	// SingleLock serializes every operation — including retry backoff
	// sleeps — on one exclusive lock, reproducing the historical
	// single-mutex TolerantDB. It exists as the benchmarking baseline for
	// the sharded design (fleetsim kvbench) and has no other use.
	SingleLock bool
	// sleep is a test seam for backoff; nil means time.Sleep.
	sleep func(time.Duration)
}

// TolerantStats counts the serving layer's mitigation activity.
type TolerantStats struct {
	// Reads, Writes, IndexQueries count client operations.
	Reads, Writes, IndexQueries int
	// Retries counts different-replica retries after a failed read.
	Retries int
	// RecoveredByRetry counts reads that succeeded on a retry replica.
	RecoveredByRetry int
	// Repairs counts reads served through a successful ReadRepair.
	Repairs int
	// DegradedServes counts reads served with a plurality (no-majority)
	// value; the row is marked suspect.
	DegradedServes int
	// IndexDivergence counts index queries where replicas disagreed.
	IndexDivergence int
	// Errors counts client-visible read errors (not-found excluded).
	Errors int
	// SignalsSent and SignalsDropped count suspect-report delivery.
	SignalsSent, SignalsDropped int
	// SignalsShed counts signals discarded because the async queue was
	// full (always 0 in synchronous mode).
	SignalsShed int
}

// readAttemptBuckets grade the per-read replica-attempt histogram.
var readAttemptBuckets = []float64{1, 2, 3, 4, 5, 8}

// ReadInfo describes how one tolerant read was served — the load
// generator's window into per-read mitigation cost.
type ReadInfo struct {
	// Attempts is the number of single-replica read attempts consumed
	// before any repair escalation.
	Attempts int
	// Retries counts the different-replica retries within this read.
	Retries int
	// Result is the read's disposition: "ok", "retried", "repaired",
	// "degraded", "not-found", or "error".
	Result string
	// BackedOff is the total backoff delay this read requested.
	BackedOff time.Duration
}

// tshard is one lock shard: the RWMutex guarding partition i of every
// replica's storage, plus the suspect-row marks for keys in the partition.
type tshard struct {
	mu      sync.RWMutex
	suspect map[string]bool // rows served degraded, pending operator review
	// pad to a cache line so neighbouring shard locks don't false-share.
	_ [24]byte
}

// TolerantDB wraps a DB with the CEE-tolerant serving policy. Safe for
// concurrent use; see the package comment for the locking design.
type TolerantDB struct {
	db  *DB
	cfg TolerantConfig
	// shards[i] guards partition i of every replica (shardIndex(key)).
	// In SingleLock mode only shards[0] is used, exclusively.
	shards [StorageShards]tshard
	// cursor is the round-robin replica cursor, kept in [0, replicas).
	// Out-of-range values (tests pre-seed overflow) are renormalized on
	// read, never indexed.
	cursor atomic.Int64
	// statsMu guards stats and the mirrored db.Stats fields. Leaf lock.
	statsMu sync.Mutex
	stats   TolerantStats
	// inst caches instrument handles so the hot path skips the registry
	// mutex; swapped wholesale by SetMetrics.
	inst  atomic.Pointer[kvInstruments]
	queue *signalQueue
}

// NewTolerant wraps db with the tolerant serving policy.
func NewTolerant(db *DB, cfg TolerantConfig) *TolerantDB {
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	t := &TolerantDB{db: db, cfg: cfg}
	for i := range t.shards {
		t.shards[i].suspect = map[string]bool{}
	}
	// Adopt the wrapped store's cursor so a DB warmed by direct reads
	// keeps its rotation, normalized into range.
	n := len(db.replicas)
	c := db.next % n
	if c < 0 {
		c += n
	}
	t.cursor.Store(int64(c))
	t.inst.Store(newKVInstruments(cfg.Metrics))
	if cfg.SignalQueue > 0 {
		t.queue = newSignalQueue(t, cfg.SignalQueue)
	}
	return t
}

// DB returns the wrapped store (single-goroutine access only).
func (t *TolerantDB) DB() *DB { return t.db }

// SetMetrics replaces the metrics registry (nil disables recording).
func (t *TolerantDB) SetMetrics(reg *obs.Registry) {
	t.inst.Store(newKVInstruments(reg))
}

// Flush blocks until every signal emitted so far has been delivered (or
// dropped). No-op in synchronous mode.
func (t *TolerantDB) Flush() {
	if t.queue != nil {
		t.queue.flush()
	}
}

// Close drains and stops the async signal flusher. Signals emitted after
// Close are shed. No-op in synchronous mode.
func (t *TolerantDB) Close() {
	if t.queue != nil {
		t.queue.close()
	}
}

// Stats returns a copy of the serving counters.
func (t *TolerantDB) Stats() TolerantStats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

// SuspectRows returns the rows marked suspect by degraded serves, sorted.
func (t *TolerantDB) SuspectRows() []string {
	out := []string{}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for k := range sh.suspect {
			out = append(out, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// RowSuspect reports whether a degraded serve marked the row suspect.
func (t *TolerantDB) RowSuspect(key string) bool {
	sh := t.shardFor(key)
	sh.mu.RLock()
	v := sh.suspect[key]
	sh.mu.RUnlock()
	return v
}

// shardFor returns the lock shard guarding key's partition (always
// shards[0] in SingleLock mode, where suspect marks also live).
func (t *TolerantDB) shardFor(key string) *tshard {
	if t.cfg.SingleLock {
		return &t.shards[0]
	}
	return &t.shards[shardIndex(key)]
}

// Put writes the row through every replica (see DB.Put). Only key's shard
// is locked: partition shardIndex(key) of every replica is owned by that
// one lock.
func (t *TolerantDB) Put(key string, value []byte) {
	sh := t.shardFor(key)
	sh.mu.Lock()
	t.db.putRows(key, value)
	// A successful full write supersedes any earlier degraded serve.
	delete(sh.suspect, key)
	sh.mu.Unlock()
	t.statsMu.Lock()
	t.stats.Writes++
	t.db.Stats.Writes++
	t.statsMu.Unlock()
	t.ins().writes().Inc()
}

// Get serves a read with the full mitigation ladder: health-aware replica
// selection, retry on a different replica with bounded backoff, ReadRepair
// escalation, and degraded plurality serving. Checksum failures and
// divergence are reported through the sink; the client sees an error only
// for missing keys or total corruption.
func (t *TolerantDB) Get(key string) ([]byte, error) {
	v, _, err := t.GetTraced(key)
	return v, err
}

// GetTraced is Get plus a per-read trace of the mitigation work done —
// attempts, retries, disposition, total backoff — so load generators can
// segment latency by outcome.
func (t *TolerantDB) GetTraced(key string) ([]byte, ReadInfo, error) {
	if t.cfg.SingleLock {
		t.shards[0].mu.Lock()
		defer t.shards[0].mu.Unlock()
	}
	t.statsMu.Lock()
	t.stats.Reads++
	t.db.Stats.Reads++
	t.statsMu.Unlock()
	var info ReadInfo
	v, err := t.get(key, &info)
	ins := t.ins()
	ins.reads(info.Result).Inc()
	ins.attempts().Observe(float64(info.Attempts))
	return v, info, err
}

// get runs the mitigation ladder. Shard read locks are held only across
// individual replica reads — never across backoff sleeps or signal
// delivery. In SingleLock mode the caller already holds the global lock
// and no shard locking happens here.
func (t *TolerantDB) get(key string, info *ReadInfo) ([]byte, error) {
	n := len(t.db.replicas)
	tried := make([]bool, n)
	hm := healthMemo{t: t}
	sh := t.shardFor(key)
	locked := t.cfg.SingleLock
	if t.cfg.DualRead && n >= 2 {
		ia := t.pickReplica(tried, &hm)
		tried[ia] = true
		ib := t.pickReplica(tried, &hm)
		tried[ib] = true
		info.Attempts = 2
		a, b := t.db.replicas[ia], t.db.replicas[ib]
		if !locked {
			sh.mu.RLock()
		}
		va, errA := a.get(key)
		vb, errB := b.get(key)
		if !locked {
			sh.mu.RUnlock()
		}
		switch {
		case errA == nil && errB == nil && bytes.Equal(va, vb):
			info.Result = "ok"
			return va, nil
		case errors.Is(errA, ErrNotFound) && errors.Is(errB, ErrNotFound):
			info.Result = "not-found"
			return nil, ErrNotFound
		case errA == nil && errB == nil:
			// Both checksums pass but the bytes diverge: the §6 dual-
			// computation detection. ReadRepair majority-votes the blame.
			t.statsMu.Lock()
			t.db.Stats.DivergenceCaught++
			t.statsMu.Unlock()
			return t.repairServe(key, sh, info)
		default:
			// At least one read failed. Report checksum failures against
			// their serving cores (in replica order, so signal emission is
			// deterministic), then escalate: the repair scan both heals and
			// attributes any remaining disagreement.
			for _, p := range []struct {
				r *Replica
				e error
			}{{a, errA}, {b, errB}} {
				if errors.Is(p.e, ErrCorrupt) {
					t.statsMu.Lock()
					t.db.Stats.CorruptReads++
					t.statsMu.Unlock()
					t.emit(p.r, "read checksum mismatch: "+key)
				}
			}
			return t.repairServe(key, sh, info)
		}
	}
	retrying := false
	for {
		ri := t.pickReplica(tried, &hm)
		if ri < 0 {
			break // every replica tried
		}
		if retrying {
			// Count the retry only once a fresh replica actually exists.
			t.statsMu.Lock()
			t.stats.Retries++
			t.statsMu.Unlock()
			t.ins().retries().Inc()
			info.Retries++
			t.backoff(info.Attempts-1, info)
		}
		tried[ri] = true
		info.Attempts++
		r := t.db.replicas[ri]
		if !locked {
			sh.mu.RLock()
		}
		v, rerr := r.get(key)
		if !locked {
			sh.mu.RUnlock()
		}
		if rerr == nil {
			if info.Attempts > 1 {
				t.statsMu.Lock()
				t.stats.RecoveredByRetry++
				t.statsMu.Unlock()
				t.ins().recovered().Inc()
				info.Result = "retried"
				return v, nil
			}
			info.Result = "ok"
			return v, nil
		}
		if errors.Is(rerr, ErrNotFound) {
			// Rows are replicated to every replica; missing here means
			// missing everywhere.
			info.Result = "not-found"
			return nil, rerr
		}
		t.statsMu.Lock()
		t.db.Stats.CorruptReads++
		t.statsMu.Unlock()
		t.emit(r, "read checksum mismatch: "+key)
		if info.Attempts > t.cfg.MaxRetries {
			break
		}
		retrying = true
	}
	return t.repairServe(key, sh, info)
}

// repairServe escalates a failed read to ReadRepair under the shard's
// write lock and, when even repair cannot find a majority, degrades to
// serving the plurality value with the row marked suspect. Blame from the
// repair scan is reported per replica after the lock is released, in the
// same deterministic order as the scan.
func (t *TolerantDB) repairServe(key string, sh *tshard, info *ReadInfo) ([]byte, error) {
	locked := t.cfg.SingleLock
	if !locked {
		sh.mu.Lock()
	}
	winner, sc, repaired, err := t.db.readRepair(key)
	best := 0
	if errors.Is(err, ErrDivergent) && len(sc.votes) > 0 {
		// No majority among the valid reads: pick the plurality value
		// (first-seen order breaks ties) and mark the row suspect while
		// still holding the exclusive lock.
		for i := range sc.votes {
			if len(sc.votes[i].replicas) > len(sc.votes[best].replicas) {
				best = i
			}
		}
		sh.suspect[key] = true
	}
	if !locked {
		sh.mu.Unlock()
	}

	// Account the scan and the repair writes (scanRow/readRepair are
	// stats-free so they can run under any caller's locking discipline).
	t.statsMu.Lock()
	t.db.Stats.CorruptReads += len(sc.corrupt)
	t.db.Stats.Repairs += repaired
	if errors.Is(err, ErrDivergent) {
		t.db.Stats.DivergenceCaught++
	}
	t.statsMu.Unlock()

	for _, r := range sc.corrupt {
		t.emit(r, "checksum failure during read repair: "+key)
	}
	if err == nil {
		for _, vote := range sc.votes {
			if bytes.Equal(vote.val, winner) {
				continue
			}
			for _, r := range vote.replicas {
				t.emit(r, "replica divergence (outvoted): "+key)
			}
		}
		t.statsMu.Lock()
		t.stats.Repairs++
		t.statsMu.Unlock()
		t.ins().repairs().Inc()
		info.Result = "repaired"
		return winner, nil
	}
	if errors.Is(err, ErrDivergent) && len(sc.votes) > 0 {
		for i, vote := range sc.votes {
			if i == best {
				continue
			}
			for _, r := range vote.replicas {
				t.emit(r, "replica divergence (no majority): "+key)
			}
		}
		t.statsMu.Lock()
		t.stats.DegradedServes++
		t.statsMu.Unlock()
		t.ins().degraded().Inc()
		info.Result = "degraded"
		return sc.votes[best].val, nil
	}
	if errors.Is(err, ErrNotFound) {
		info.Result = "not-found"
		return nil, err
	}
	// Total corruption: nothing trustworthy to serve.
	t.statsMu.Lock()
	t.stats.Errors++
	t.statsMu.Unlock()
	t.ins().readErrors().Inc()
	info.Result = "error"
	return nil, err
}

// QueryByValue answers a secondary-index query by voting the answer across
// replicas — the §2 replica-dependent index-corruption incident, detected
// and outvoted at serve time. Minority replicas are reported; the client
// always gets the plurality answer. The index scan crosses every key
// partition, so all shard read locks are held (ascending) for the scan.
func (t *TolerantDB) QueryByValue(value []byte) []string {
	t.lockAllRead()
	type answer struct {
		keys     []string
		replicas []*Replica
	}
	var answers []answer
	for _, r := range t.db.replicas {
		keys := r.lookupByValue(value)
		matched := false
		for i := range answers {
			if equalStrings(answers[i].keys, keys) {
				answers[i].replicas = append(answers[i].replicas, r)
				matched = true
				break
			}
		}
		if !matched {
			answers = append(answers, answer{keys: keys, replicas: []*Replica{r}})
		}
	}
	t.unlockAllRead()
	best := 0
	for i := range answers {
		if len(answers[i].replicas) > len(answers[best].replicas) {
			best = i
		}
	}
	t.statsMu.Lock()
	t.stats.IndexQueries++
	t.db.Stats.IndexQueries++
	if len(answers) > 1 {
		t.stats.IndexDivergence++
		t.db.Stats.IndexDivergence++
	}
	t.statsMu.Unlock()
	if len(answers) > 1 {
		t.ins().indexDivergence().Inc()
		for i, a := range answers {
			if i == best {
				continue
			}
			for _, r := range a.replicas {
				t.emit(r, "secondary-index divergence (outvoted)")
			}
		}
	}
	return answers[best].keys
}

func (t *TolerantDB) lockAllRead() {
	if t.cfg.SingleLock {
		t.shards[0].mu.Lock()
		return
	}
	for i := range t.shards {
		t.shards[i].mu.RLock()
	}
}

func (t *TolerantDB) unlockAllRead() {
	if t.cfg.SingleLock {
		t.shards[0].mu.Unlock()
		return
	}
	for i := range t.shards {
		t.shards[i].mu.RUnlock()
	}
}

// healthMemo is the per-read snapshot of the health view: each replica's
// Health verdict is evaluated at most once per read, instead of once per
// selection scan that passes over it.
type healthMemo struct {
	t     *TolerantDB
	state []int8 // 0 unknown, 1 avoid, 2 healthy
}

func (h *healthMemo) avoid(i int) bool {
	t := h.t
	if t.cfg.Health == nil {
		return false
	}
	if h.state == nil {
		h.state = make([]int8, len(t.db.replicas))
	}
	if s := h.state[i]; s != 0 {
		return s == 1
	}
	r := t.db.replicas[i]
	if t.cfg.Health(r.Machine, r.CoreIndex) {
		h.state[i] = 1
		return true
	}
	h.state[i] = 2
	return false
}

// pickReplica returns the index of the next untried replica, round-robin
// from the store's cursor. The first pass skips replicas the health view
// avoids; the second accepts them — serving from a suspect core beats not
// serving at all. Returns -1 when every replica has been tried. The
// cursor is renormalized before use so a value that overflowed (or was
// pre-seeded out of range) can never index negatively.
func (t *TolerantDB) pickReplica(tried []bool, hm *healthMemo) int {
	n := len(t.db.replicas)
	cur := int(t.cursor.Load())
	if cur < 0 || cur >= n {
		cur %= n
		if cur < 0 {
			cur += n
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			idx := (cur + i) % n
			if tried[idx] {
				continue
			}
			if pass == 0 && hm.avoid(idx) {
				continue
			}
			t.cursor.Store(int64((idx + 1) % n))
			return idx
		}
	}
	return -1
}

// emit converts one detection event into a suspect-report signal
// attributing the serving replica's core and hands it to the sink —
// synchronously in order (SignalQueue == 0) or via the bounded async
// queue. Replicas without a fleet slot report under their replica ID with
// core -1 (machine-level attribution). Never called with a shard lock
// held in sharded mode.
func (t *TolerantDB) emit(r *Replica, detail string) {
	machine := r.Machine
	if machine == "" {
		machine = r.ID
	}
	sig := detect.Signal{
		Machine: machine,
		Core:    r.CoreIndex,
		Kind:    detect.SigAppError,
		Detail:  detail,
	}
	if t.cfg.Now != nil {
		sig.Time = t.cfg.Now()
	}
	if t.queue != nil {
		if t.queue.offer(sig) {
			return
		}
		t.statsMu.Lock()
		t.stats.SignalsShed++
		t.statsMu.Unlock()
		t.ins().shed().Inc()
		return
	}
	t.deliver([]detect.Signal{sig})
}

// deliver pushes a batch of signals into the configured sink and accounts
// the outcome. Used directly by synchronous emits (batches of one) and by
// the async flusher.
func (t *TolerantDB) deliver(sigs []detect.Signal) {
	if len(sigs) == 0 {
		return
	}
	ins := t.ins()
	drop := func(n int) {
		t.statsMu.Lock()
		t.stats.SignalsDropped += n
		t.statsMu.Unlock()
		ins.dropped().Add(float64(n))
	}
	sent := func(n int, kind detect.SignalKind) {
		t.statsMu.Lock()
		t.stats.SignalsSent += n
		t.statsMu.Unlock()
		ins.signals(kind).Add(float64(n))
	}
	switch {
	case t.cfg.BatchSink != nil:
		if err := t.cfg.BatchSink(sigs); err != nil {
			drop(len(sigs))
			return
		}
		sent(len(sigs), sigs[0].Kind)
	case t.cfg.Sink != nil:
		for _, sig := range sigs {
			if err := t.cfg.Sink(sig); err != nil {
				drop(1)
				continue
			}
			sent(1, sig.Kind)
		}
	default:
		drop(len(sigs))
	}
}

// backoffDelay computes the delay before retry number retry (0-based):
// RetryBackoff doubled per retry, capped at MaxBackoff. Doubling is
// stepwise with an overflow guard — a shift by the raw retry count
// overflows time.Duration (a signed 64-bit int) past retry ~30 for
// millisecond bases — so pathological retry counts saturate at the cap
// instead of going negative and skipping the sleep entirely.
func (t *TolerantDB) backoffDelay(retry int) time.Duration {
	d := t.cfg.RetryBackoff
	if d <= 0 {
		return 0
	}
	max := t.cfg.MaxBackoff
	if max <= 0 {
		max = 8 * t.cfg.RetryBackoff
	}
	for i := 0; i < retry && d < max; i++ {
		d <<= 1
		if d <= 0 { // overflowed
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// backoff sleeps before retry number retry (0-based), holding no lock (in
// SingleLock baseline mode the caller's global lock is deliberately held —
// that stall is what the baseline measures). No-op when RetryBackoff is
// zero.
func (t *TolerantDB) backoff(retry int, info *ReadInfo) {
	d := t.backoffDelay(retry)
	if d == 0 {
		return
	}
	info.BackedOff += d
	sleep := t.cfg.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

func (t *TolerantDB) ins() *kvInstruments { return t.inst.Load() }

// kvInstruments caches instrument handles per registry so hot-path
// recording is one atomic load instead of a registry mutex + map lookup.
// Handles are created lazily on first use, preserving the historical
// "series appear when first incremented" exposition behavior.
type kvInstruments struct {
	reg                   *obs.Registry
	writesC, retriesC     atomic.Pointer[obs.Counter]
	recoveredC, repairsC  atomic.Pointer[obs.Counter]
	degradedC, idxDivC    atomic.Pointer[obs.Counter]
	errorsC, droppedC     atomic.Pointer[obs.Counter]
	shedC, sigAppC        atomic.Pointer[obs.Counter]
	readsOKC, readsRetryC atomic.Pointer[obs.Counter]
	readsRepairC          atomic.Pointer[obs.Counter]
	readsDegradedC        atomic.Pointer[obs.Counter]
	readsNotFoundC        atomic.Pointer[obs.Counter]
	readsErrorC           atomic.Pointer[obs.Counter]
	attemptsH             atomic.Pointer[obs.Histogram]
}

func newKVInstruments(reg *obs.Registry) *kvInstruments {
	return &kvInstruments{reg: reg}
}

func (k *kvInstruments) counter(p *atomic.Pointer[obs.Counter], name string, labels ...obs.Label) *obs.Counter {
	if c := p.Load(); c != nil {
		return c
	}
	c := k.reg.Counter(name, labels...) // nil registry → shared no-op
	p.Store(c)
	return c
}

func (k *kvInstruments) writes() *obs.Counter {
	return k.counter(&k.writesC, "kvdb_writes_total")
}
func (k *kvInstruments) retries() *obs.Counter {
	return k.counter(&k.retriesC, "kvdb_read_retries_total")
}
func (k *kvInstruments) recovered() *obs.Counter {
	return k.counter(&k.recoveredC, "kvdb_reads_recovered_by_retry_total")
}
func (k *kvInstruments) repairs() *obs.Counter {
	return k.counter(&k.repairsC, "kvdb_read_repairs_total")
}
func (k *kvInstruments) degraded() *obs.Counter {
	return k.counter(&k.degradedC, "kvdb_degraded_serves_total")
}
func (k *kvInstruments) indexDivergence() *obs.Counter {
	return k.counter(&k.idxDivC, "kvdb_index_divergence_total")
}
func (k *kvInstruments) readErrors() *obs.Counter {
	return k.counter(&k.errorsC, "kvdb_read_errors_total")
}
func (k *kvInstruments) dropped() *obs.Counter {
	return k.counter(&k.droppedC, "kvdb_signals_dropped_total")
}
func (k *kvInstruments) shed() *obs.Counter {
	return k.counter(&k.shedC, "kvdb_signals_shed_total")
}

func (k *kvInstruments) signals(kind detect.SignalKind) *obs.Counter {
	// Every serving-layer signal is SigAppError today; fall back to an
	// uncached lookup if that ever diversifies.
	if kind == detect.SigAppError {
		return k.counter(&k.sigAppC, "kvdb_signals_total", obs.L("kind", kind.String()))
	}
	return k.reg.Counter("kvdb_signals_total", obs.L("kind", kind.String()))
}

func (k *kvInstruments) reads(result string) *obs.Counter {
	switch result {
	case "ok":
		return k.counter(&k.readsOKC, "kvdb_reads_total", obs.L("result", "ok"))
	case "retried":
		return k.counter(&k.readsRetryC, "kvdb_reads_total", obs.L("result", "retried"))
	case "repaired":
		return k.counter(&k.readsRepairC, "kvdb_reads_total", obs.L("result", "repaired"))
	case "degraded":
		return k.counter(&k.readsDegradedC, "kvdb_reads_total", obs.L("result", "degraded"))
	case "not-found":
		return k.counter(&k.readsNotFoundC, "kvdb_reads_total", obs.L("result", "not-found"))
	default:
		return k.counter(&k.readsErrorC, "kvdb_reads_total", obs.L("result", result))
	}
}

func (k *kvInstruments) attempts() *obs.Histogram {
	if h := k.attemptsH.Load(); h != nil {
		return h
	}
	h := k.reg.HistogramBuckets("kvdb_read_attempts", readAttemptBuckets)
	k.attemptsH.Store(h)
	return h
}

// signalQueue is the bounded async signal buffer: emits append under a
// short mutex, a single background flusher drains the whole buffer as one
// batch per wakeup (ceereportd's ingest-queue shape), overflow is shed by
// the producer. One condition variable covers both directions — producers
// waking the flusher and the flusher waking Flush waiters — with every
// state change broadcasting.
type signalQueue struct {
	t          *TolerantDB
	mu         sync.Mutex
	cond       *sync.Cond
	buf        []detect.Signal
	capacity   int
	closed     bool
	delivering bool
	done       chan struct{}
}

func newSignalQueue(t *TolerantDB, capacity int) *signalQueue {
	q := &signalQueue{t: t, capacity: capacity, done: make(chan struct{})}
	q.cond = sync.NewCond(&q.mu)
	go q.run()
	return q
}

// offer enqueues one signal; false means the queue is full (or closed)
// and the signal was shed.
func (q *signalQueue) offer(sig detect.Signal) bool {
	q.mu.Lock()
	if q.closed || len(q.buf) >= q.capacity {
		q.mu.Unlock()
		return false
	}
	q.buf = append(q.buf, sig)
	q.cond.Broadcast()
	q.mu.Unlock()
	return true
}

func (q *signalQueue) run() {
	defer close(q.done)
	q.mu.Lock()
	for {
		for len(q.buf) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.buf) == 0 {
			q.mu.Unlock()
			return // closed and drained
		}
		batch := q.buf
		q.buf = nil
		q.delivering = true
		q.mu.Unlock()
		q.t.deliver(batch)
		q.mu.Lock()
		q.delivering = false
		q.cond.Broadcast()
	}
}

// flush blocks until the queue is empty and no delivery is in flight.
func (q *signalQueue) flush() {
	q.mu.Lock()
	for len(q.buf) > 0 || q.delivering {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// close drains outstanding signals and stops the flusher.
func (q *signalQueue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.cond.Broadcast()
	}
	q.mu.Unlock()
	<-q.done
}
