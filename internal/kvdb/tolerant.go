// Tolerant serving: the mitigation layer that turns the store from a
// passive incident generator into a self-defending service.
//
// §6 of the paper asks applications to feed their self-check failures
// (checksum mismatches, replica divergence) into the suspect-report
// service; §7 asks for retry-on-a-different-core mitigation. TolerantDB
// closes both loops around DB:
//
//   - every ErrCorrupt/ErrDivergent event is converted into a
//     detect.Signal attributing the serving replica's core and delivered
//     through a SignalSink (in-process report.Server ingest for the fleet
//     simulator, report.Client HTTP for a remote ceereportd);
//   - reads retry on a different replica with bounded backoff, escalate
//     to ReadRepair, and degrade gracefully (serve the plurality value
//     and mark the row suspect) instead of erroring;
//   - replica selection is health-aware: replicas whose cores are
//     quarantined or highly scored by the tracker are deprioritized,
//     closing the report → nominate → quarantine → reroute cycle.
//
// Unlike DB, a TolerantDB is safe for concurrent use: all operations are
// serialized on an internal mutex (the underlying engines are bound to
// single cores and are not concurrency-safe).
package kvdb

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/simtime"
)

// SignalSink delivers one suspect-core signal. A non-nil error means the
// signal was lost (counted, never surfaced to the reading client: the
// serving path must not fail because the reporting path did).
type SignalSink func(detect.Signal) error

// ServerSink delivers signals in-process to a report server — the fleet
// simulator's path.
func ServerSink(s *report.Server) SignalSink {
	return func(sig detect.Signal) error {
		s.Ingest(sig)
		return nil
	}
}

// ClientSink delivers signals to a remote ceereportd over HTTP via the
// report client (which retries transport failures with backoff).
func ClientSink(c *report.Client) SignalSink {
	return func(sig detect.Signal) error {
		return c.Report(report.Report{
			Machine: sig.Machine,
			Core:    sig.Core,
			Kind:    sig.Kind.String(),
			Detail:  sig.Detail,
			TimeSec: float64(sig.Time),
		})
	}
}

// HealthFunc reports whether the (machine, core) slot serving a replica
// should be deprioritized — typically because the core is quarantined or
// its suspect score crossed a threshold. Avoided replicas are still used
// when every alternative has been tried (capacity over health).
type HealthFunc func(machine string, core int) bool

// TrackerHealth builds a HealthFunc from the two live views a deployment
// has: the quarantine ledger and the tracker's suspect nominations. A
// replica is avoided when its core is isolated, or when a current suspect
// for that exact core scores at least minScore.
func TrackerHealth(isolated func(machine string, core int) bool,
	suspects func() []detect.Suspect, minScore float64) HealthFunc {
	return func(machine string, core int) bool {
		if machine == "" || core < 0 {
			return false
		}
		if isolated != nil && isolated(machine, core) {
			return true
		}
		if suspects == nil {
			return false
		}
		for _, s := range suspects() {
			if s.Machine == machine && s.Core == core && s.Score() >= minScore {
				return true
			}
		}
		return false
	}
}

// TolerantConfig parameterizes the serving layer.
type TolerantConfig struct {
	// MaxRetries bounds how many additional replicas a checksum-failed
	// read tries before escalating to ReadRepair. 0 selects the default
	// (2); negative disables retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubled per
	// further retry and capped at MaxBackoff. Zero disables sleeping —
	// the right setting for simulation, where retries are instantaneous.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff; zero means 8×RetryBackoff.
	MaxBackoff time.Duration
	// DualRead serves every read from two distinct replicas and compares
	// — §6's dual-computation detector as the steady-state read path.
	// Divergence escalates to ReadRepair, which majority-votes blame.
	DualRead bool
	// Sink receives every detection signal; nil drops them (counted).
	Sink SignalSink
	// Health deprioritizes replicas on unhealthy cores; nil treats every
	// replica as healthy.
	Health HealthFunc
	// Metrics receives serving counters and histograms; nil records
	// nothing. Replaceable later via SetMetrics.
	Metrics *obs.Registry
	// Now timestamps outgoing signals; nil means the zero time.
	Now func() simtime.Time
	// sleep is a test seam for backoff; nil means time.Sleep.
	sleep func(time.Duration)
}

// TolerantStats counts the serving layer's mitigation activity.
type TolerantStats struct {
	// Reads, Writes, IndexQueries count client operations.
	Reads, Writes, IndexQueries int
	// Retries counts different-replica retries after a failed read.
	Retries int
	// RecoveredByRetry counts reads that succeeded on a retry replica.
	RecoveredByRetry int
	// Repairs counts reads served through a successful ReadRepair.
	Repairs int
	// DegradedServes counts reads served with a plurality (no-majority)
	// value; the row is marked suspect.
	DegradedServes int
	// IndexDivergence counts index queries where replicas disagreed.
	IndexDivergence int
	// Errors counts client-visible read errors (not-found excluded).
	Errors int
	// SignalsSent and SignalsDropped count suspect-report delivery.
	SignalsSent, SignalsDropped int
}

// readAttemptBuckets grade the per-read replica-attempt histogram.
var readAttemptBuckets = []float64{1, 2, 3, 4, 5, 8}

// TolerantDB wraps a DB with the CEE-tolerant serving policy. Safe for
// concurrent use.
type TolerantDB struct {
	mu      sync.Mutex
	db      *DB
	cfg     TolerantConfig
	stats   TolerantStats
	suspect map[string]bool // rows served degraded, pending operator review
}

// NewTolerant wraps db with the tolerant serving policy.
func NewTolerant(db *DB, cfg TolerantConfig) *TolerantDB {
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	return &TolerantDB{db: db, cfg: cfg, suspect: map[string]bool{}}
}

// DB returns the wrapped store (single-goroutine access only).
func (t *TolerantDB) DB() *DB { return t.db }

// SetMetrics replaces the metrics registry (nil disables recording).
func (t *TolerantDB) SetMetrics(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.Metrics = reg
}

// Stats returns a copy of the serving counters.
func (t *TolerantDB) Stats() TolerantStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// SuspectRows returns the rows marked suspect by degraded serves, sorted.
func (t *TolerantDB) SuspectRows() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.suspect))
	for k := range t.suspect {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RowSuspect reports whether a degraded serve marked the row suspect.
func (t *TolerantDB) RowSuspect(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.suspect[key]
}

// Put writes the row through every replica (see DB.Put).
func (t *TolerantDB) Put(key string, value []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Writes++
	t.counter("kvdb_writes_total").Inc()
	t.db.Put(key, value)
	// A successful full write supersedes any earlier degraded serve.
	delete(t.suspect, key)
}

// Get serves a read with the full mitigation ladder: health-aware replica
// selection, retry on a different replica with bounded backoff, ReadRepair
// escalation, and degraded plurality serving. Checksum failures and
// divergence are reported through the sink; the client sees an error only
// for missing keys or total corruption.
func (t *TolerantDB) Get(key string) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Reads++
	t.db.Stats.Reads++
	v, attempts, result, err := t.get(key)
	t.counter("kvdb_reads_total", obs.L("result", result)).Inc()
	t.histogram("kvdb_read_attempts").Observe(float64(attempts))
	return v, err
}

// get runs the mitigation ladder; the caller holds t.mu. It returns the
// value, the number of replica read attempts consumed before escalation,
// and the disposition label for metrics.
func (t *TolerantDB) get(key string) (v []byte, attempts int, result string, err error) {
	tried := map[*Replica]bool{}
	if t.cfg.DualRead && len(t.db.replicas) >= 2 {
		a := t.pickReplica(tried)
		tried[a] = true
		b := t.pickReplica(tried)
		tried[b] = true
		attempts = 2
		va, errA := a.get(key)
		vb, errB := b.get(key)
		switch {
		case errA == nil && errB == nil && bytes.Equal(va, vb):
			return va, attempts, "ok", nil
		case errors.Is(errA, ErrNotFound) && errors.Is(errB, ErrNotFound):
			return nil, attempts, "not-found", ErrNotFound
		case errA == nil && errB == nil:
			// Both checksums pass but the bytes diverge: the §6 dual-
			// computation detection. ReadRepair majority-votes the blame.
			t.db.Stats.DivergenceCaught++
			v, result, err = t.repairServe(key)
			return v, attempts, result, err
		default:
			// At least one read failed. Report checksum failures against
			// their serving cores (in replica order, so signal emission is
			// deterministic), then escalate: the repair scan both heals and
			// attributes any remaining disagreement.
			for _, p := range []struct {
				r *Replica
				e error
			}{{a, errA}, {b, errB}} {
				if errors.Is(p.e, ErrCorrupt) {
					t.db.Stats.CorruptReads++
					t.emit(p.r, "read checksum mismatch: "+key)
				}
			}
			v, result, err = t.repairServe(key)
			return v, attempts, result, err
		}
	}
	retrying := false
	for {
		r := t.pickReplica(tried)
		if r == nil {
			break // every replica tried
		}
		if retrying {
			// Count the retry only once a fresh replica actually exists.
			t.stats.Retries++
			t.counter("kvdb_read_retries_total").Inc()
			t.backoff(attempts - 1)
		}
		tried[r] = true
		attempts++
		v, rerr := r.get(key)
		if rerr == nil {
			if attempts > 1 {
				t.stats.RecoveredByRetry++
				t.counter("kvdb_reads_recovered_by_retry_total").Inc()
				return v, attempts, "retried", nil
			}
			return v, attempts, "ok", nil
		}
		if errors.Is(rerr, ErrNotFound) {
			// Rows are replicated to every replica; missing here means
			// missing everywhere.
			return nil, attempts, "not-found", rerr
		}
		t.db.Stats.CorruptReads++
		t.emit(r, "read checksum mismatch: "+key)
		if attempts > t.cfg.MaxRetries {
			break
		}
		retrying = true
	}
	v, result, err = t.repairServe(key)
	return v, attempts, result, err
}

// repairServe escalates a failed read to ReadRepair and, when even repair
// cannot find a majority, degrades to serving the plurality value with the
// row marked suspect. Blame from the repair scan is reported per replica.
func (t *TolerantDB) repairServe(key string) ([]byte, string, error) {
	winner, sc, err := t.db.readRepair(key)
	for _, r := range sc.corrupt {
		t.emit(r, "checksum failure during read repair: "+key)
	}
	if err == nil {
		for _, vote := range sc.votes {
			if bytes.Equal(vote.val, winner) {
				continue
			}
			for _, r := range vote.replicas {
				t.emit(r, "replica divergence (outvoted): "+key)
			}
		}
		t.stats.Repairs++
		t.counter("kvdb_read_repairs_total").Inc()
		return winner, "repaired", nil
	}
	if errors.Is(err, ErrDivergent) && len(sc.votes) > 0 {
		// No majority among the valid reads: serve the plurality value
		// (first-seen order breaks ties) and mark the row suspect rather
		// than failing the client.
		best := 0
		for i := range sc.votes {
			if len(sc.votes[i].replicas) > len(sc.votes[best].replicas) {
				best = i
			}
		}
		for i, vote := range sc.votes {
			if i == best {
				continue
			}
			for _, r := range vote.replicas {
				t.emit(r, "replica divergence (no majority): "+key)
			}
		}
		t.suspect[key] = true
		t.stats.DegradedServes++
		t.counter("kvdb_degraded_serves_total").Inc()
		return sc.votes[best].val, "degraded", nil
	}
	if errors.Is(err, ErrNotFound) {
		return nil, "not-found", err
	}
	// Total corruption: nothing trustworthy to serve.
	t.stats.Errors++
	t.counter("kvdb_read_errors_total").Inc()
	return nil, "error", err
}

// QueryByValue answers a secondary-index query by voting the answer across
// replicas — the §2 replica-dependent index-corruption incident, detected
// and outvoted at serve time. Minority replicas are reported; the client
// always gets the plurality answer.
func (t *TolerantDB) QueryByValue(value []byte) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.IndexQueries++
	t.db.Stats.IndexQueries++
	type answer struct {
		keys     []string
		replicas []*Replica
	}
	var answers []answer
	for _, r := range t.db.replicas {
		keys := r.lookupByValue(value)
		matched := false
		for i := range answers {
			if equalStrings(answers[i].keys, keys) {
				answers[i].replicas = append(answers[i].replicas, r)
				matched = true
				break
			}
		}
		if !matched {
			answers = append(answers, answer{keys: keys, replicas: []*Replica{r}})
		}
	}
	best := 0
	for i := range answers {
		if len(answers[i].replicas) > len(answers[best].replicas) {
			best = i
		}
	}
	if len(answers) > 1 {
		t.stats.IndexDivergence++
		t.db.Stats.IndexDivergence++
		t.counter("kvdb_index_divergence_total").Inc()
		for i, a := range answers {
			if i == best {
				continue
			}
			for _, r := range a.replicas {
				t.emit(r, "secondary-index divergence (outvoted)")
			}
		}
	}
	return answers[best].keys
}

// pickReplica returns the next untried replica, round-robin from the
// store's cursor. The first pass skips replicas the health view avoids;
// the second accepts them — serving from a suspect core beats not serving
// at all. Returns nil when every replica has been tried.
func (t *TolerantDB) pickReplica(tried map[*Replica]bool) *Replica {
	n := len(t.db.replicas)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < n; i++ {
			idx := (t.db.next + i) % n
			r := t.db.replicas[idx]
			if tried[r] {
				continue
			}
			if pass == 0 && t.avoid(r) {
				continue
			}
			t.db.next = (idx + 1) % n
			return r
		}
	}
	return nil
}

func (t *TolerantDB) avoid(r *Replica) bool {
	return t.cfg.Health != nil && t.cfg.Health(r.Machine, r.CoreIndex)
}

// emit converts one detection event into a suspect-report signal
// attributing the serving replica's core and delivers it via the sink.
// Replicas without a fleet slot report under their replica ID with core
// -1 (machine-level attribution).
func (t *TolerantDB) emit(r *Replica, detail string) {
	machine := r.Machine
	if machine == "" {
		machine = r.ID
	}
	sig := detect.Signal{
		Machine: machine,
		Core:    r.CoreIndex,
		Kind:    detect.SigAppError,
		Detail:  detail,
	}
	if t.cfg.Now != nil {
		sig.Time = t.cfg.Now()
	}
	if t.cfg.Sink == nil {
		t.stats.SignalsDropped++
		t.counter("kvdb_signals_dropped_total").Inc()
		return
	}
	if err := t.cfg.Sink(sig); err != nil {
		t.stats.SignalsDropped++
		t.counter("kvdb_signals_dropped_total").Inc()
		return
	}
	t.stats.SignalsSent++
	t.counter("kvdb_signals_total", obs.L("kind", sig.Kind.String())).Inc()
}

// backoff sleeps before retry number retry (0-based): RetryBackoff doubled
// per retry, capped at MaxBackoff. No-op when RetryBackoff is zero.
func (t *TolerantDB) backoff(retry int) {
	d := t.cfg.RetryBackoff
	if d <= 0 {
		return
	}
	d <<= uint(retry)
	max := t.cfg.MaxBackoff
	if max <= 0 {
		max = 8 * t.cfg.RetryBackoff
	}
	if d > max {
		d = max
	}
	sleep := t.cfg.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

func (t *TolerantDB) counter(name string, labels ...obs.Label) *obs.Counter {
	return t.cfg.Metrics.Counter(name, labels...)
}

func (t *TolerantDB) histogram(name string) *obs.Histogram {
	return t.cfg.Metrics.HistogramBuckets(name, readAttemptBuckets)
}
