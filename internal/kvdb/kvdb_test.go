package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

func healthyReplica(id string, seed uint64) *Replica {
	return NewReplica(id, engine.New(fault.NewCore(id, xrand.New(seed))))
}

// mulDefectReplica mis-computes index fingerprints (MUL unit) at the given
// rate — the §2 database-index incident.
func mulDefectReplica(id string, seed uint64, rate float64, deterministic bool) *Replica {
	d := fault.Defect{ID: "d", Unit: fault.UnitMul, BaseRate: rate,
		Deterministic: deterministic, Kind: fault.CorruptBitFlip, BitPos: 19}
	return NewReplica(id, engine.New(fault.NewCore(id, xrand.New(seed), d)))
}

func healthyDB(t *testing.T, n int) *DB {
	t.Helper()
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = healthyReplica(fmt.Sprintf("r%d", i), uint64(i+1))
	}
	db, err := New(reps...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNewRequiresReplica(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty replica set accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	db := healthyDB(t, 3)
	db.Put("user:1", []byte("alice"))
	for i := 0; i < 6; i++ { // hit every replica via round-robin
		v, err := db.Get("user:1")
		if err != nil {
			t.Fatal(err)
		}
		if string(v) != "alice" {
			t.Fatalf("v = %q", v)
		}
	}
	if db.Replicas() != 3 {
		t.Fatal("replica count wrong")
	}
}

func TestGetNotFound(t *testing.T) {
	db := healthyDB(t, 2)
	if _, err := db.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteUpdatesIndex(t *testing.T) {
	db := healthyDB(t, 1)
	db.Put("k", []byte("v1"))
	db.Put("k", []byte("v2"))
	if keys := db.QueryByValue([]byte("v1")); len(keys) != 0 {
		t.Fatalf("stale index entry: %v", keys)
	}
	if keys := db.QueryByValue([]byte("v2")); len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("index = %v", keys)
	}
}

func TestIndexQueryHealthy(t *testing.T) {
	db := healthyDB(t, 3)
	db.Put("a", []byte("red"))
	db.Put("b", []byte("red"))
	db.Put("c", []byte("blue"))
	for i := 0; i < 6; i++ {
		keys := db.QueryByValue([]byte("red"))
		if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
			t.Fatalf("query %d: %v", i, keys)
		}
	}
}

func TestReplicaDependentIndexCorruption(t *testing.T) {
	// The §2 incident: one replica's core intermittently corrupts the
	// fingerprint math, so index queries fail only when that replica
	// serves them — round-robin makes the failure non-deterministic from
	// the client's viewpoint. (A fully deterministic defect would be
	// self-consistent between index build and query and thus invisible —
	// the fault model reproduces that too.)
	bad := mulDefectReplica("bad", 10, 0.3, false)
	good1 := healthyReplica("g1", 11)
	good2 := healthyReplica("g2", 12)
	db, _ := New(bad, good1, good2)
	db.Put("a", []byte("red"))
	db.Put("b", []byte("blue"))

	wrong, right := 0, 0
	for i := 0; i < 30; i++ {
		keys := db.QueryByValue([]byte("red"))
		if len(keys) == 1 && keys[0] == "a" {
			right++
		} else {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("defective replica never corrupted a query")
	}
	if right == 0 {
		t.Fatal("healthy replicas never served a correct query")
	}
	// Corrupted queries should be roughly 1/3 of the total (round-robin
	// over 3 replicas). Allow slack: either miss on write or on read
	// fingerprints can change the exact pattern.
	if wrong < 5 || wrong > 25 {
		t.Fatalf("wrong=%d right=%d; expected replica-proportional mix", wrong, right)
	}
}

func TestIndexComparisonCatchesDivergence(t *testing.T) {
	bad := mulDefectReplica("bad", 13, 0.3, false)
	good := healthyReplica("good", 14)
	db, _ := New(bad, good)
	db.Put("a", []byte("red"))
	caught := false
	for i := 0; i < 10 && !caught; i++ {
		_, err := db.QueryByValueCompared([]byte("red"))
		caught = errors.Is(err, ErrDivergent)
	}
	if !caught {
		t.Fatal("index comparison never caught the divergence")
	}
	if db.Stats.IndexDivergence == 0 {
		t.Fatalf("stats = %+v", db.Stats)
	}
}

func TestRecordChecksumCatchesCopyCorruption(t *testing.T) {
	// A replica whose copy path corrupts data: the record checksum
	// catches it at read time. A stuck bit (idempotent) is used rather
	// than a bit flip, because a deterministic flip applied on both the
	// write copy and the read copy cancels itself out.
	d := fault.Defect{ID: "d", Unit: fault.UnitVec, Deterministic: true,
		Kind: fault.CorruptStuckBit, BitPos: 3, StuckVal: 0}
	bad := NewReplica("bad", engine.New(fault.NewCore("bad", xrand.New(15), d)))
	db, _ := New(bad)
	// 'x' = 0x78 has bit 3 set, so sticking it at 0 changes the data.
	db.Put("k", bytes.Repeat([]byte("x"), 64))
	_, err := db.Get("k")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	if db.Stats.CorruptReads != 1 {
		t.Fatalf("stats = %+v", db.Stats)
	}
}

func TestGetComparedHealthy(t *testing.T) {
	db := healthyDB(t, 3)
	db.Put("k", []byte("value"))
	v, err := db.GetCompared("k")
	if err != nil || string(v) != "value" {
		t.Fatalf("v=%q err=%v", v, err)
	}
}

func TestGetComparedSingleReplica(t *testing.T) {
	db := healthyDB(t, 1)
	db.Put("k", []byte("v"))
	if _, err := db.GetCompared("k"); err != nil {
		t.Fatal(err)
	}
}

func TestGetComparedDetectsDivergence(t *testing.T) {
	// A replica that stored corrupt bytes *and* computed the CRC over
	// them on its own core would pass its own check; divergence
	// comparison still catches it. Build that scenario directly: apply
	// different values to each replica.
	r1 := healthyReplica("r1", 16)
	r2 := healthyReplica("r2", 17)
	db, _ := New(r1, r2)
	// Bypass DB.Put to simulate divergent state with self-consistent CRCs.
	r1.apply("k", []byte("correct"), 0x5ef4ee93)
	r2.apply("k", []byte("corrupt"), 0x697f9a17)
	// Fix CRCs to be self-consistent per replica (golden values).
	r1.row("k").crc = crcOf(t, []byte("correct"))
	r2.row("k").crc = crcOf(t, []byte("corrupt"))
	caught := false
	for i := 0; i < 4 && !caught; i++ {
		_, err := db.GetCompared("k")
		caught = errors.Is(err, ErrDivergent)
	}
	if !caught {
		t.Fatal("divergent replicas never detected")
	}
	if db.Stats.DivergenceCaught == 0 {
		t.Fatalf("stats = %+v", db.Stats)
	}
}

func crcOf(t *testing.T, data []byte) uint32 {
	t.Helper()
	e := engine.New(fault.NewCore("crc", xrand.New(99)))
	out := make([]byte, len(data))
	e.Copy(out, data)
	// Engine CRC on a healthy core equals golden CRC.
	return crc32cGolden(out)
}

// crc32cGolden avoids an import cycle on ecc test helpers.
func crc32cGolden(data []byte) uint32 {
	var table [256]uint32
	for i := range table {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0x82F63B78
			} else {
				crc >>= 1
			}
		}
		table[i] = crc
	}
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc = crc>>8 ^ table[byte(crc)^b]
	}
	return crc ^ 0xFFFFFFFF
}

func TestGetComparedPrefersHealthyCopy(t *testing.T) {
	// One replica's read path is corrupt (checksum rejects); the
	// comparison read should still return the healthy copy.
	d := fault.Defect{ID: "d", Unit: fault.UnitVec, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 3}
	good := healthyReplica("good", 18)
	db, _ := New(good, NewReplica("bad", engine.New(fault.NewCore("bad", xrand.New(19), d))))
	// Write through DB: the bad replica stores corrupt bytes, but the
	// good one is fine.
	db.Put("k", bytes.Repeat([]byte("y"), 64))
	ok := 0
	for i := 0; i < 4; i++ {
		if v, err := db.GetCompared("k"); err == nil && len(v) == 64 {
			ok++
		}
	}
	if ok == 0 {
		t.Fatal("comparison read never returned the healthy copy")
	}
}

func TestStatsCounting(t *testing.T) {
	db := healthyDB(t, 2)
	db.Put("a", []byte("1"))
	db.Get("a")
	db.Get("a")
	db.QueryByValue([]byte("1"))
	if db.Stats.Writes != 1 || db.Stats.Reads != 2 || db.Stats.IndexQueries != 1 {
		t.Fatalf("stats = %+v", db.Stats)
	}
}

func BenchmarkPutGet3Replicas(b *testing.B) {
	reps := make([]*Replica, 3)
	for i := range reps {
		reps[i] = NewReplica(fmt.Sprintf("r%d", i),
			engine.New(fault.NewCore(fmt.Sprintf("r%d", i), xrand.New(uint64(i)))))
	}
	db, _ := New(reps...)
	val := make([]byte, 256)
	for i := 0; i < b.N; i++ {
		db.Put("k", val)
		db.Get("k")
	}
}

func TestReadRepairHealsDivergentReplica(t *testing.T) {
	r1 := healthyReplica("r1", 30)
	r2 := healthyReplica("r2", 31)
	r3 := healthyReplica("r3", 32)
	db, _ := New(r1, r2, r3)
	db.Put("k", []byte("good value"))
	// Sabotage one replica with a self-consistent wrong row.
	wrong := []byte("evil value")
	r2.apply("k", wrong, crc32cGolden(wrong))

	v, err := db.ReadRepair("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "good value" {
		t.Fatalf("repair returned %q", v)
	}
	if db.Stats.Repairs == 0 {
		t.Fatal("no repair recorded")
	}
	// The sabotaged replica must now serve the majority value.
	got, err := r2.get("k")
	if err != nil || string(got) != "good value" {
		t.Fatalf("replica not healed: %q %v", got, err)
	}
}

func TestReadRepairNoMajority(t *testing.T) {
	r1 := healthyReplica("r1", 33)
	r2 := healthyReplica("r2", 34)
	db, _ := New(r1, r2)
	a, b := []byte("one"), []byte("two")
	r1.apply("k", a, crc32cGolden(a))
	r2.apply("k", b, crc32cGolden(b))
	if _, err := db.ReadRepair("k"); !errors.Is(err, ErrDivergent) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRepairNotFound(t *testing.T) {
	db := healthyDB(t, 3)
	if _, err := db.ReadRepair("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRepairHealsCorruptChecksumReplica(t *testing.T) {
	r1 := healthyReplica("r1", 35)
	r2 := healthyReplica("r2", 36)
	r3 := healthyReplica("r3", 37)
	db, _ := New(r1, r2, r3)
	db.Put("k", []byte("payload"))
	// Corrupt one replica's stored bytes so its checksum fails.
	r3.row("k").value[0] ^= 0xFF
	if _, err := r3.get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatal("sabotage did not corrupt")
	}
	if _, err := db.ReadRepair("k"); err != nil {
		t.Fatal(err)
	}
	if v, err := r3.get("k"); err != nil || string(v) != "payload" {
		t.Fatalf("corrupt replica not healed: %q %v", v, err)
	}
}
