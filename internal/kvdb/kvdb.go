// Package kvdb implements a miniature Spanner-style replicated key-value
// store used to reproduce two of the paper's patterns:
//
//   - §2: "database index corruption leading to some queries, depending on
//     which replica (core) serves them, being non-deterministically
//     corrupted" — each replica maintains its own secondary index with
//     fingerprints computed on that replica's core; a mercurial replica
//     mis-indexes records, so index lookups give wrong answers only when
//     that replica serves the query.
//   - §6: "other systems execute the same update logic, in parallel, at
//     several replicas ... we can exploit these dual computations to
//     detect CEEs" — reads can compare two replicas and flag divergence.
//
// Record checksums (Spanner "uses checksums in multiple ways") guard the
// value payloads; the index fingerprints are the unprotected metadata path
// that produces the replica-dependent incident.
//
// Storage is partitioned StorageShards ways by FNV-1a of the row key. DB
// itself is still a single-goroutine API; the partitioning exists so the
// concurrent serving layer (TolerantDB) can guard each partition with its
// own lock — shard s of every replica is owned by shard lock s.
package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ecc"
	"repro/internal/engine"
)

// Errors returned by the database.
var (
	ErrNotFound  = errors.New("kvdb: key not found")
	ErrCorrupt   = errors.New("kvdb: record checksum mismatch")
	ErrDivergent = errors.New("kvdb: replicas diverge")
)

// StorageShards is the number of key-hash partitions every replica's rows
// and secondary index are split into. It matches detect.ShardedTracker's
// shard count: enough to make lock contention negligible for tens of
// serving goroutines without fragmenting memory.
const StorageShards = 16

// shardIndex maps a row key onto its storage partition. FNV-1a matches the
// repo's other string-hash choices and spreads short "rowNNNN" keys well.
func shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % StorageShards)
}

// record is one replicated row.
type record struct {
	value []byte
	crc   uint32
}

// replicaShard is one key-hash partition of a replica's storage.
type replicaShard struct {
	rows map[string]*record
	// index maps a value fingerprint to the set of keys carrying it —
	// the secondary index whose maintenance runs on this replica's core.
	// Entries live in the shard of their KEY, so a shard lock owns both
	// the rows and the index entries it can reach from them.
	index map[uint64]map[string]bool
}

// Replica is one copy of the database bound to a serving core.
type Replica struct {
	ID     string
	Engine *engine.Engine
	// Machine and CoreIndex locate the serving core within a fleet, for
	// suspect-report attribution and health-aware replica selection.
	// CoreIndex is -1 when the replica is not bound to a fleet slot.
	Machine   string
	CoreIndex int
	// engMu serializes use of Engine: the engine is bound to a single
	// simulated core and mutates per-op state (op counts, RNG draws), so
	// concurrent readers of different shards still take turns on it.
	// Lock order: storage-shard lock (held by the caller) before engMu.
	engMu  sync.Mutex
	shards [StorageShards]replicaShard
}

// NewReplica returns an empty replica served by e.
func NewReplica(id string, e *engine.Engine) *Replica {
	r := &Replica{ID: id, Engine: e, CoreIndex: -1}
	for i := range r.shards {
		r.shards[i] = replicaShard{
			rows:  map[string]*record{},
			index: map[uint64]map[string]bool{},
		}
	}
	return r
}

// Locate binds the replica to the (machine, core) slot its serving core
// occupies and returns the replica for chaining.
func (r *Replica) Locate(machine string, core int) *Replica {
	r.Machine = machine
	r.CoreIndex = core
	return r
}

// fingerprint computes the index fingerprint of a value on this replica's
// core. This is the computation the §2 incident corrupts. The caller must
// hold engMu.
func (r *Replica) fingerprint(value []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range value {
		h = r.Engine.Xor64(h, uint64(b))
		h = r.Engine.Mul64(h, 1099511628211)
	}
	return h
}

// row returns the stored record for key, or nil (test/introspection seam;
// concurrent callers must hold the key's shard lock).
func (r *Replica) row(key string) *record {
	return r.shards[shardIndex(key)].rows[key]
}

// has reports whether the replica stores the row at all.
func (r *Replica) has(key string) bool {
	return r.row(key) != nil
}

// apply executes the update logic locally: store the row (copy through the
// replica's core) and maintain the secondary index. Engine operations run
// in the same order as the historical unsharded store — old fingerprint,
// copy, new fingerprint — so defect activation sequences are unchanged.
func (r *Replica) apply(key string, value []byte, clientCRC uint32) {
	sh := &r.shards[shardIndex(key)]
	r.engMu.Lock()
	defer r.engMu.Unlock()
	if old, ok := sh.rows[key]; ok {
		oldFP := r.fingerprint(old.value)
		if set := sh.index[oldFP]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(sh.index, oldFP)
			}
		}
	}
	stored := make([]byte, len(value))
	r.Engine.Copy(stored, value)
	sh.rows[key] = &record{value: stored, crc: clientCRC}
	fp := r.fingerprint(stored)
	set := sh.index[fp]
	if set == nil {
		set = map[string]bool{}
		sh.index[fp] = set
	}
	set[key] = true
}

// get reads a row and verifies its checksum on the replica's core.
func (r *Replica) get(key string) ([]byte, error) {
	rec := r.shards[shardIndex(key)].rows[key]
	if rec == nil {
		return nil, ErrNotFound
	}
	out := make([]byte, len(rec.value))
	r.engMu.Lock()
	r.Engine.Copy(out, rec.value)
	crc := ecc.CRC32C(r.Engine, out)
	r.engMu.Unlock()
	if crc != rec.crc {
		return nil, fmt.Errorf("%w: key %q on replica %s", ErrCorrupt, key, r.ID)
	}
	return out, nil
}

// lookupByValue answers a secondary-index query: which keys carry value?
// Concurrent callers must hold every shard lock (the index is scanned
// across all partitions).
func (r *Replica) lookupByValue(value []byte) []string {
	r.engMu.Lock()
	fp := r.fingerprint(value)
	r.engMu.Unlock()
	out := []string{}
	for i := range r.shards {
		for k := range r.shards[i].index[fp] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// DB is the replicated database. Like the engines it serves from, DB is a
// single-goroutine API; TolerantDB layers locking on top.
type DB struct {
	replicas []*Replica
	// next implements round-robin replica selection for reads, the
	// "depending on which replica serves them" nondeterminism. pick keeps
	// it wrapped into [0, len(replicas)); a pre-set out-of-range value
	// (including one that overflowed int) is renormalized, never indexed.
	next int
	// Stats counts detection events.
	Stats Stats
}

// Stats tracks database-level detection accounting.
type Stats struct {
	Writes, Reads     int
	CorruptReads      int
	DivergenceCaught  int
	IndexQueries      int
	IndexDivergence   int
	Repairs           int
	ChecksumRejectsAt map[string]int
}

// New returns a database over the given replicas (at least one).
func New(replicas ...*Replica) (*DB, error) {
	if len(replicas) == 0 {
		return nil, errors.New("kvdb: need at least one replica")
	}
	return &DB{
		replicas: replicas,
		Stats:    Stats{ChecksumRejectsAt: map[string]int{}},
	}, nil
}

// Replicas returns the replica count.
func (db *DB) Replicas() int { return len(db.replicas) }

// Put writes the row through every replica's own core (parallel update
// logic, as §6 describes). The client computes the record checksum once,
// natively.
func (db *DB) Put(key string, value []byte) {
	db.Stats.Writes++
	db.putRows(key, value)
}

// putRows is Put without the stats accounting, shared with the tolerant
// layer (which owns its own stats locking).
func (db *DB) putRows(key string, value []byte) {
	crc := ecc.CRC32CGolden(value)
	for _, r := range db.replicas {
		r.apply(key, value, crc)
	}
}

// pick returns the next serving replica (round-robin). The cursor is
// renormalized before use so it can never index negatively: the historical
// ever-growing cursor overflowed int after ~2^63 reads, went negative, and
// panicked on replicas[negative]. Normalizing preserves the modular pick
// sequence exactly while keeping the stored cursor in [0, n).
func (db *DB) pick() *Replica {
	n := len(db.replicas)
	idx := db.next % n
	if idx < 0 {
		idx += n
	}
	db.next = idx + 1
	return db.replicas[idx]
}

// Get serves the read from one replica, verifying the record checksum.
func (db *DB) Get(key string) ([]byte, error) {
	db.Stats.Reads++
	v, err := db.pick().get(key)
	if errors.Is(err, ErrCorrupt) {
		db.Stats.CorruptReads++
	}
	return v, err
}

// GetCompared reads from two distinct replicas and compares — the dual-
// computation CEE detector. It returns ErrDivergent when both reads
// succeed with different bytes.
func (db *DB) GetCompared(key string) ([]byte, error) {
	db.Stats.Reads++
	if len(db.replicas) < 2 {
		v, err := db.pick().get(key)
		if errors.Is(err, ErrCorrupt) {
			db.Stats.CorruptReads++
		}
		return v, err
	}
	a := db.pick()
	b := db.pick()
	va, errA := a.get(key)
	vb, errB := b.get(key)
	switch {
	case errA == nil && errB == nil:
		if !bytes.Equal(va, vb) {
			db.Stats.DivergenceCaught++
			return nil, fmt.Errorf("%w: key %q (%s vs %s)", ErrDivergent, key, a.ID, b.ID)
		}
		return va, nil
	case errA == nil:
		if errors.Is(errB, ErrCorrupt) {
			db.Stats.CorruptReads++
		}
		return va, nil
	case errB == nil:
		if errors.Is(errA, ErrCorrupt) {
			db.Stats.CorruptReads++
		}
		return vb, nil
	default:
		return nil, errA
	}
}

// readVote is one distinct checksum-valid value observed while scanning a
// row, with the replicas that served it.
type readVote struct {
	val      []byte
	replicas []*Replica
}

// rowScan classifies a full-replica read of one row: the distinct valid
// values (in first-seen replica order), the replicas whose reads failed
// their checksum, and whether any replica stores the row at all. The
// tolerant serving layer uses the classification to attribute blame.
type rowScan struct {
	votes   []readVote
	corrupt []*Replica
	sawRow  bool
	good    int // checksum-valid reads
}

// scanRow reads the row from every replica and classifies the results. It
// records no stats: callers derive counts from the scan (len(sc.corrupt)
// corrupt reads) under whatever locking discipline they own.
func (db *DB) scanRow(key string) rowScan {
	var sc rowScan
	for _, r := range db.replicas {
		if r.has(key) {
			sc.sawRow = true
		}
		v, err := r.get(key)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				sc.corrupt = append(sc.corrupt, r)
			}
			continue
		}
		sc.good++
		matched := false
		for i := range sc.votes {
			if bytes.Equal(sc.votes[i].val, v) {
				sc.votes[i].replicas = append(sc.votes[i].replicas, r)
				matched = true
				break
			}
		}
		if !matched {
			sc.votes = append(sc.votes, readVote{val: v, replicas: []*Replica{r}})
		}
	}
	return sc
}

// ReadRepair reads the row from every replica, majority-votes the value
// (§6's dual computations, extended to healing), rewrites out-voted or
// corrupt replicas from the winner, and returns the repaired value.
//
// Replicas whose read fails its checksum are known-bad and do not vote:
// the majority is taken over the checksum-valid reads, so a row corrupted
// on all but one replica still heals from the surviving good copy. It
// returns ErrDivergent when the valid reads produce no majority, and
// ErrCorrupt when the row exists but every replica fails its checksum —
// total corruption is a CEE signal, not a missing key.
func (db *DB) ReadRepair(key string) ([]byte, error) {
	db.Stats.Reads++
	winner, sc, repaired, err := db.readRepair(key)
	db.Stats.CorruptReads += len(sc.corrupt)
	db.Stats.Repairs += repaired
	if errors.Is(err, ErrDivergent) {
		db.Stats.DivergenceCaught++
	}
	return winner, err
}

// readRepair implements ReadRepair and additionally returns the row scan
// so callers (the tolerant serving layer) can attribute blame per replica,
// plus the number of replica repairs written. It records no stats at all;
// the public entry points do, under their own locking.
func (db *DB) readRepair(key string) ([]byte, rowScan, int, error) {
	sc := db.scanRow(key)
	if !sc.sawRow {
		return nil, sc, 0, ErrNotFound
	}
	if sc.good == 0 {
		return nil, sc, 0, fmt.Errorf("%w: key %q fails checksum on all %d replicas",
			ErrCorrupt, key, len(db.replicas))
	}
	need := sc.good/2 + 1
	var winner []byte
	for _, v := range sc.votes {
		if len(v.replicas) >= need {
			winner = v.val
			break
		}
	}
	if winner == nil {
		return nil, sc, 0, fmt.Errorf("%w: no majority for key %q", ErrDivergent, key)
	}
	// Heal every replica that failed its checksum or lost the vote. The
	// repair write recomputes the row from the winner's bytes with a
	// fresh client-side checksum.
	crc := ecc.CRC32CGolden(winner)
	repaired := 0
	for _, r := range db.replicas {
		v, err := r.get(key)
		if err == nil && bytes.Equal(v, winner) {
			continue
		}
		r.apply(key, winner, crc)
		repaired++
	}
	return winner, sc, repaired, nil
}

// QueryByValue answers a secondary-index query from one replica — the
// §2 incident path: on a mercurial replica the answer is wrong only when
// that replica serves the query.
func (db *DB) QueryByValue(value []byte) []string {
	db.Stats.IndexQueries++
	return db.pick().lookupByValue(value)
}

// QueryByValueCompared runs the index query on two replicas and reports
// divergence — how the incident was eventually root-caused.
func (db *DB) QueryByValueCompared(value []byte) ([]string, error) {
	db.Stats.IndexQueries++
	if len(db.replicas) < 2 {
		return db.pick().lookupByValue(value), nil
	}
	a := db.pick()
	b := db.pick()
	ka := a.lookupByValue(value)
	kb := b.lookupByValue(value)
	if !equalStrings(ka, kb) {
		db.Stats.IndexDivergence++
		return nil, fmt.Errorf("%w: index query (%s: %v vs %s: %v)",
			ErrDivergent, a.ID, ka, b.ID, kb)
	}
	return ka, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
