// Package kvdb implements a miniature Spanner-style replicated key-value
// store used to reproduce two of the paper's patterns:
//
//   - §2: "database index corruption leading to some queries, depending on
//     which replica (core) serves them, being non-deterministically
//     corrupted" — each replica maintains its own secondary index with
//     fingerprints computed on that replica's core; a mercurial replica
//     mis-indexes records, so index lookups give wrong answers only when
//     that replica serves the query.
//   - §6: "other systems execute the same update logic, in parallel, at
//     several replicas ... we can exploit these dual computations to
//     detect CEEs" — reads can compare two replicas and flag divergence.
//
// Record checksums (Spanner "uses checksums in multiple ways") guard the
// value payloads; the index fingerprints are the unprotected metadata path
// that produces the replica-dependent incident.
package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ecc"
	"repro/internal/engine"
)

// Errors returned by the database.
var (
	ErrNotFound  = errors.New("kvdb: key not found")
	ErrCorrupt   = errors.New("kvdb: record checksum mismatch")
	ErrDivergent = errors.New("kvdb: replicas diverge")
)

// record is one replicated row.
type record struct {
	value []byte
	crc   uint32
}

// Replica is one copy of the database bound to a serving core.
type Replica struct {
	ID     string
	Engine *engine.Engine
	rows   map[string]*record
	// index maps a value fingerprint to the set of keys carrying it —
	// the secondary index whose maintenance runs on this replica's core.
	index map[uint64]map[string]bool
}

// NewReplica returns an empty replica served by e.
func NewReplica(id string, e *engine.Engine) *Replica {
	return &Replica{
		ID: id, Engine: e,
		rows:  map[string]*record{},
		index: map[uint64]map[string]bool{},
	}
}

// fingerprint computes the index fingerprint of a value on this replica's
// core. This is the computation the §2 incident corrupts.
func (r *Replica) fingerprint(value []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range value {
		h = r.Engine.Xor64(h, uint64(b))
		h = r.Engine.Mul64(h, 1099511628211)
	}
	return h
}

// apply executes the update logic locally: store the row (copy through the
// replica's core) and maintain the secondary index.
func (r *Replica) apply(key string, value []byte, clientCRC uint32) {
	if old, ok := r.rows[key]; ok {
		oldFP := r.fingerprint(old.value)
		if set := r.index[oldFP]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(r.index, oldFP)
			}
		}
	}
	stored := make([]byte, len(value))
	r.Engine.Copy(stored, value)
	r.rows[key] = &record{value: stored, crc: clientCRC}
	fp := r.fingerprint(stored)
	set := r.index[fp]
	if set == nil {
		set = map[string]bool{}
		r.index[fp] = set
	}
	set[key] = true
}

// get reads a row and verifies its checksum on the replica's core.
func (r *Replica) get(key string) ([]byte, error) {
	rec, ok := r.rows[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(rec.value))
	r.Engine.Copy(out, rec.value)
	if ecc.CRC32C(r.Engine, out) != rec.crc {
		return nil, fmt.Errorf("%w: key %q on replica %s", ErrCorrupt, key, r.ID)
	}
	return out, nil
}

// lookupByValue answers a secondary-index query: which keys carry value?
func (r *Replica) lookupByValue(value []byte) []string {
	fp := r.fingerprint(value)
	set := r.index[fp]
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DB is the replicated database.
type DB struct {
	replicas []*Replica
	// next implements round-robin replica selection for reads, the
	// "depending on which replica serves them" nondeterminism.
	next int
	// Stats counts detection events.
	Stats Stats
}

// Stats tracks database-level detection accounting.
type Stats struct {
	Writes, Reads     int
	CorruptReads      int
	DivergenceCaught  int
	IndexQueries      int
	IndexDivergence   int
	Repairs           int
	ChecksumRejectsAt map[string]int
}

// New returns a database over the given replicas (at least one).
func New(replicas ...*Replica) (*DB, error) {
	if len(replicas) == 0 {
		return nil, errors.New("kvdb: need at least one replica")
	}
	return &DB{
		replicas: replicas,
		Stats:    Stats{ChecksumRejectsAt: map[string]int{}},
	}, nil
}

// Replicas returns the replica count.
func (db *DB) Replicas() int { return len(db.replicas) }

// Put writes the row through every replica's own core (parallel update
// logic, as §6 describes). The client computes the record checksum once,
// natively.
func (db *DB) Put(key string, value []byte) {
	db.Stats.Writes++
	crc := ecc.CRC32CGolden(value)
	for _, r := range db.replicas {
		r.apply(key, value, crc)
	}
}

// pick returns the next serving replica (round-robin).
func (db *DB) pick() *Replica {
	r := db.replicas[db.next%len(db.replicas)]
	db.next++
	return r
}

// Get serves the read from one replica, verifying the record checksum.
func (db *DB) Get(key string) ([]byte, error) {
	db.Stats.Reads++
	v, err := db.pick().get(key)
	if errors.Is(err, ErrCorrupt) {
		db.Stats.CorruptReads++
	}
	return v, err
}

// GetCompared reads from two distinct replicas and compares — the dual-
// computation CEE detector. It returns ErrDivergent when both reads
// succeed with different bytes.
func (db *DB) GetCompared(key string) ([]byte, error) {
	db.Stats.Reads++
	if len(db.replicas) < 2 {
		return db.pick().get(key)
	}
	a := db.pick()
	b := db.pick()
	va, errA := a.get(key)
	vb, errB := b.get(key)
	switch {
	case errA == nil && errB == nil:
		if !bytes.Equal(va, vb) {
			db.Stats.DivergenceCaught++
			return nil, fmt.Errorf("%w: key %q (%s vs %s)", ErrDivergent, key, a.ID, b.ID)
		}
		return va, nil
	case errA == nil:
		if errors.Is(errB, ErrCorrupt) {
			db.Stats.CorruptReads++
		}
		return va, nil
	case errB == nil:
		if errors.Is(errA, ErrCorrupt) {
			db.Stats.CorruptReads++
		}
		return vb, nil
	default:
		return nil, errA
	}
}

// ReadRepair reads the row from every replica, majority-votes the value
// (§6's dual computations, extended to healing), rewrites out-voted or
// corrupt replicas from the winner, and returns the repaired value. It
// returns ErrDivergent when no majority exists.
func (db *DB) ReadRepair(key string) ([]byte, error) {
	db.Stats.Reads++
	type vote struct {
		val []byte
		n   int
	}
	var votes []vote
	found := false
	for _, r := range db.replicas {
		v, err := r.get(key)
		if err != nil {
			if errors.Is(err, ErrCorrupt) {
				db.Stats.CorruptReads++
			}
			continue
		}
		found = true
		matched := false
		for i := range votes {
			if bytes.Equal(votes[i].val, v) {
				votes[i].n++
				matched = true
				break
			}
		}
		if !matched {
			votes = append(votes, vote{val: v, n: 1})
		}
	}
	if !found {
		return nil, ErrNotFound
	}
	need := len(db.replicas)/2 + 1
	var winner []byte
	for _, v := range votes {
		if v.n >= need {
			winner = v.val
			break
		}
	}
	if winner == nil {
		db.Stats.DivergenceCaught++
		return nil, fmt.Errorf("%w: no majority for key %q", ErrDivergent, key)
	}
	// Heal every replica that failed its checksum or lost the vote. The
	// repair write recomputes the row from the winner's bytes with a
	// fresh client-side checksum.
	crc := ecc.CRC32CGolden(winner)
	for _, r := range db.replicas {
		v, err := r.get(key)
		if err == nil && bytes.Equal(v, winner) {
			continue
		}
		r.apply(key, winner, crc)
		db.Stats.Repairs++
	}
	return winner, nil
}

// QueryByValue answers a secondary-index query from one replica — the
// §2 incident path: on a mercurial replica the answer is wrong only when
// that replica serves the query.
func (db *DB) QueryByValue(value []byte) []string {
	db.Stats.IndexQueries++
	return db.pick().lookupByValue(value)
}

// QueryByValueCompared runs the index query on two replicas and reports
// divergence — how the incident was eventually root-caused.
func (db *DB) QueryByValueCompared(value []byte) ([]string, error) {
	db.Stats.IndexQueries++
	if len(db.replicas) < 2 {
		return db.pick().lookupByValue(value), nil
	}
	a := db.pick()
	b := db.pick()
	ka := a.lookupByValue(value)
	kb := b.lookupByValue(value)
	if !equalStrings(ka, kb) {
		db.Stats.IndexDivergence++
		return nil, fmt.Errorf("%w: index query (%s: %v vs %s: %v)",
			ErrDivergent, a.ID, ka, b.ID, kb)
	}
	return ka, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
