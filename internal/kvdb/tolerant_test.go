package kvdb

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/ecc"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/quarantine"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// stuckBitReplica's vector (copy) unit deterministically sticks bit 3 of
// every byte at 0, so any payload with bit 3 set is corrupted in storage
// and every read fails its checksum.
func stuckBitReplica(id string, seed uint64) *Replica {
	d := fault.Defect{ID: "stuck3", Unit: fault.UnitVec, Deterministic: true,
		Kind: fault.CorruptStuckBit, BitPos: 3, StuckVal: 0}
	return NewReplica(id, engine.New(fault.NewCore(id, xrand.New(seed), d)))
}

// bit3Payload has bit 3 set in every byte ('x' = 0x78).
func bit3Payload() []byte { return bytes.Repeat([]byte("x"), 64) }

// collectSink buffers emitted signals (its own lock: emit already runs
// under the tolerant store's mutex, but the race detector should not have
// to trust that).
type collectSink struct {
	mu   sync.Mutex
	sigs []detect.Signal
}

func (c *collectSink) sink(s detect.Signal) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sigs = append(c.sigs, s)
	return nil
}

func (c *collectSink) all() []detect.Signal {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]detect.Signal(nil), c.sigs...)
}

// --- Satellite regression tests: the raw DB read paths ---

func TestReadRepairAllCorruptSurfacesCorruption(t *testing.T) {
	// Every replica stores corrupt bytes: total corruption must be a CEE
	// signal (ErrCorrupt), not a missing key.
	db, _ := New(stuckBitReplica("b0", 1), stuckBitReplica("b1", 2), stuckBitReplica("b2", 3))
	db.Put("k", bit3Payload())
	_, err := db.ReadRepair("k")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("total corruption misreported as ErrNotFound: %v", err)
	}
}

func TestReadRepairHealsFromSurvivingGoodReplica(t *testing.T) {
	// 2-of-3 replicas corrupt the row; the lone checksum-valid copy is a
	// majority of the valid reads and must heal the row.
	good := healthyReplica("good", 11)
	db, _ := New(stuckBitReplica("b0", 1), stuckBitReplica("b1", 2), good)
	want := bit3Payload()
	db.Put("k", want)
	v, err := db.ReadRepair("k")
	if err != nil {
		t.Fatalf("ReadRepair: %v", err)
	}
	if !bytes.Equal(v, want) {
		t.Fatalf("healed value = %q, want %q", v, want)
	}
	if db.Stats.CorruptReads != 2 {
		t.Fatalf("CorruptReads = %d, want 2", db.Stats.CorruptReads)
	}
	if db.Stats.Repairs != 2 {
		t.Fatalf("Repairs = %d, want 2", db.Stats.Repairs)
	}
	// The good replica still serves the row cleanly afterwards.
	if v, err := good.get("k"); err != nil || !bytes.Equal(v, want) {
		t.Fatalf("good replica after repair: %q, %v", v, err)
	}
}

func TestGetComparedSingleReplicaCountsCorrupt(t *testing.T) {
	db, _ := New(stuckBitReplica("b0", 1))
	db.Put("k", bit3Payload())
	_, err := db.GetCompared("k")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if db.Stats.CorruptReads != 1 {
		t.Fatalf("CorruptReads = %d, want 1 (single-replica path must count)", db.Stats.CorruptReads)
	}
}

// --- Tolerant serving layer ---

func TestTolerantRetryRecoversAndSignals(t *testing.T) {
	bad := stuckBitReplica("bad", 1).Locate("m0", 2)
	db, _ := New(bad, healthyReplica("g1", 2).Locate("m1", 0), healthyReplica("g2", 3).Locate("m2", 0))
	var cs collectSink
	var now simtime.Time
	tdb := NewTolerant(db, TolerantConfig{
		Sink: cs.sink,
		Now:  func() simtime.Time { now++; return now },
	})
	want := bit3Payload()
	tdb.Put("k", want)
	for i := 0; i < 9; i++ {
		v, err := tdb.Get("k")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("read %d: wrong bytes", i)
		}
	}
	st := tdb.Stats()
	if st.Retries == 0 || st.RecoveredByRetry == 0 {
		t.Fatalf("expected retry recoveries, got %+v", st)
	}
	sigs := cs.all()
	if len(sigs) == 0 {
		t.Fatal("no signals emitted for corrupt reads")
	}
	for _, s := range sigs {
		if s.Machine != "m0" || s.Core != 2 || s.Kind != detect.SigAppError {
			t.Fatalf("signal misattributed: %+v", s)
		}
		if s.Time == 0 {
			t.Fatalf("signal missing timestamp: %+v", s)
		}
	}
	if st.SignalsSent != len(sigs) {
		t.Fatalf("SignalsSent = %d, sink saw %d", st.SignalsSent, len(sigs))
	}
}

func TestTolerantDegradedServeMarksRowSuspect(t *testing.T) {
	// One corrupt replica plus a 1-1 split of checksum-valid divergent
	// values: repair finds no majority, so the read degrades to the
	// plurality value instead of erroring, and the row is marked suspect.
	bad := stuckBitReplica("bad", 1)
	r1 := healthyReplica("r1", 2)
	r2 := healthyReplica("r2", 3)
	db, _ := New(bad, r1, r2)
	valA := bytes.Repeat([]byte("A"), 32)
	valB := bytes.Repeat([]byte("B"), 32)
	bad.apply("k", bit3Payload(), ecc.CRC32CGolden(bit3Payload()))
	r1.apply("k", valA, ecc.CRC32CGolden(valA))
	r2.apply("k", valB, ecc.CRC32CGolden(valB))
	var cs collectSink
	tdb := NewTolerant(db, TolerantConfig{MaxRetries: -1, Sink: cs.sink})
	v, err := tdb.Get("k")
	if err != nil {
		t.Fatalf("degraded serve errored: %v", err)
	}
	if !bytes.Equal(v, valA) {
		t.Fatalf("plurality value = %q, want first-seen %q", v, valA)
	}
	st := tdb.Stats()
	if st.DegradedServes != 1 {
		t.Fatalf("DegradedServes = %d, want 1", st.DegradedServes)
	}
	if !tdb.RowSuspect("k") {
		t.Fatal("row not marked suspect after degraded serve")
	}
	if rows := tdb.SuspectRows(); len(rows) != 1 || rows[0] != "k" {
		t.Fatalf("SuspectRows = %v", rows)
	}
	// A fresh full write clears the suspicion.
	tdb.Put("k", valA)
	if tdb.RowSuspect("k") {
		t.Fatal("suspect mark survived a clean write")
	}
}

func TestTolerantDualReadCatchesSilentDivergence(t *testing.T) {
	// Two checksum-valid replicas holding different bytes: a single read
	// would serve either silently; dual-read compares and escalates.
	r0 := healthyReplica("r0", 2)
	r1 := healthyReplica("r1", 3)
	r2 := healthyReplica("r2", 4)
	db, _ := New(r0, r1, r2)
	valA := bytes.Repeat([]byte("A"), 32)
	valB := bytes.Repeat([]byte("B"), 32)
	r0.apply("k", valB, ecc.CRC32CGolden(valB))
	r1.apply("k", valA, ecc.CRC32CGolden(valA))
	r2.apply("k", valA, ecc.CRC32CGolden(valA))
	var cs collectSink
	tdb := NewTolerant(db, TolerantConfig{DualRead: true, Sink: cs.sink})
	v, err := tdb.Get("k")
	if err != nil {
		t.Fatalf("dual read: %v", err)
	}
	if !bytes.Equal(v, valA) {
		t.Fatalf("value = %q, want majority %q", v, valA)
	}
	st := tdb.Stats()
	if st.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1 (divergence must escalate to repair)", st.Repairs)
	}
	// The outvoted replica is blamed.
	sigs := cs.all()
	if len(sigs) == 0 {
		t.Fatal("no signal for the outvoted replica")
	}
	// The row is healed: both dual reads now agree.
	if v, err := tdb.Get("k"); err != nil || !bytes.Equal(v, valA) {
		t.Fatalf("post-repair read: %q, %v", v, err)
	}
}

func TestTolerantHealthAvoidsSuspectReplica(t *testing.T) {
	bad := stuckBitReplica("bad", 1).Locate("m0", 2)
	db, _ := New(bad, healthyReplica("g1", 2).Locate("m1", 0), healthyReplica("g2", 3).Locate("m2", 0))
	var cs collectSink
	tdb := NewTolerant(db, TolerantConfig{
		Sink: cs.sink,
		Health: func(machine string, core int) bool {
			return machine == "m0" && core == 2
		},
	})
	tdb.Put("k", bit3Payload())
	for i := 0; i < 12; i++ {
		if _, err := tdb.Get("k"); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	st := tdb.Stats()
	if st.Retries != 0 || st.SignalsSent != 0 {
		t.Fatalf("avoided replica was still served: %+v", st)
	}
}

func TestTolerantBackoffBoundedAndSeamed(t *testing.T) {
	db, _ := New(stuckBitReplica("b0", 1), stuckBitReplica("b1", 2), stuckBitReplica("b2", 3))
	var slept []time.Duration
	tdb := NewTolerant(db, TolerantConfig{
		MaxRetries:   2,
		RetryBackoff: 10 * time.Millisecond,
		MaxBackoff:   15 * time.Millisecond,
		sleep:        func(d time.Duration) { slept = append(slept, d) },
	})
	tdb.Put("k", bit3Payload())
	_, err := tdb.Get("k")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("all-corrupt read: err = %v, want ErrCorrupt", err)
	}
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoffs = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (doubling, capped)", i, slept[i], want[i])
		}
	}
	if st := tdb.Stats(); st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
}

func TestTolerantQueryByValueOutvotesMinority(t *testing.T) {
	r0 := healthyReplica("r0", 2).Locate("m0", 1)
	r1 := healthyReplica("r1", 3).Locate("m1", 0)
	r2 := healthyReplica("r2", 4).Locate("m2", 0)
	db, _ := New(r0, r1, r2)
	valA := bytes.Repeat([]byte("A"), 16)
	valB := bytes.Repeat([]byte("B"), 16)
	// r0's index diverges: it believes the row holds valA.
	r0.apply("k", valA, ecc.CRC32CGolden(valA))
	r1.apply("k", valB, ecc.CRC32CGolden(valB))
	r2.apply("k", valB, ecc.CRC32CGolden(valB))
	var cs collectSink
	tdb := NewTolerant(db, TolerantConfig{Sink: cs.sink})
	keys := tdb.QueryByValue(valB)
	if len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("majority index answer = %v, want [k]", keys)
	}
	if st := tdb.Stats(); st.IndexDivergence != 1 {
		t.Fatalf("IndexDivergence = %d, want 1", st.IndexDivergence)
	}
	sigs := cs.all()
	if len(sigs) != 1 || sigs[0].Machine != "m0" || sigs[0].Core != 1 {
		t.Fatalf("minority replica not blamed: %+v", sigs)
	}
}

func TestTolerantConcurrentUse(t *testing.T) {
	// The tolerant layer is the store's concurrency boundary: hammer it
	// from many goroutines under -race.
	bad := stuckBitReplica("bad", 1).Locate("m0", 2)
	db, _ := New(bad, healthyReplica("g1", 2).Locate("m1", 0), healthyReplica("g2", 3).Locate("m2", 0))
	var cs collectSink
	tdb := NewTolerant(db, TolerantConfig{Sink: cs.sink, Metrics: obs.NewRegistry()})
	val := bit3Payload()
	for i := 0; i < 4; i++ {
		tdb.Put(fmt.Sprintf("k%d", i), val)
	}
	const workers, opsEach = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("k%d", (w+i)%4)
				switch i % 5 {
				case 0:
					tdb.Put(key, val)
				case 1:
					tdb.QueryByValue(val)
				case 2:
					tdb.Stats()
					tdb.SuspectRows()
				default:
					if _, err := tdb.Get(key); err != nil {
						t.Errorf("get %s: %v", key, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if st := tdb.Stats(); st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("no work recorded: %+v", st)
	}
}

// TestTolerantEndToEndLoop is the acceptance scenario: a mercurial replica
// core corrupts reads → the store emits signals over real HTTP via
// report.Client → the tracker's concentration test nominates the core →
// quarantine removes it → health-aware selection reroutes every later read
// → retries and signals stop, with the serving counters visible in the
// metrics registry. Fully seeded and deterministic.
func TestTolerantEndToEndLoop(t *testing.T) {
	cluster := sched.NewCluster()
	for _, m := range []string{"m0", "m1", "m2"} {
		if _, err := cluster.AddMachine(m, 4); err != nil {
			t.Fatal(err)
		}
	}
	srv := report.NewServer(4)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	mgr := quarantine.NewManager(cluster, quarantine.Policy{
		Mode: quarantine.CoreRemoval, MinScore: 1,
	})

	bad := stuckBitReplica("m0/c2", 1).Locate("m0", 2)
	db, _ := New(bad, healthyReplica("g1", 2).Locate("m1", 0), healthyReplica("g2", 3).Locate("m2", 0))
	reg := obs.NewRegistry()
	var now simtime.Time
	tdb := NewTolerant(db, TolerantConfig{
		Sink: ClientSink(&report.Client{BaseURL: ts.URL}),
		Health: TrackerHealth(func(machine string, core int) bool {
			return mgr.Isolated(sched.CoreRef{Machine: machine, Core: core})
		}, srv.Suspects, 1e9), // threshold beyond reach: quarantine does the rerouting
		Metrics: reg,
		Now:     func() simtime.Time { return now },
	})
	want := bit3Payload()
	for i := 0; i < 4; i++ {
		tdb.Put(fmt.Sprintf("k%d", i), want)
	}

	// Phase 1: serve until the concentration test nominates the core.
	// Every read must succeed from the client's point of view throughout.
	nominated := false
	for i := 0; i < 200 && !nominated; i++ {
		now += simtime.Time(1)
		if v, err := tdb.Get(fmt.Sprintf("k%d", i%4)); err != nil || !bytes.Equal(v, want) {
			t.Fatalf("read %d: %q, %v", i, v, err)
		}
		for _, s := range srv.Suspects() {
			if s.Machine == "m0" && s.Core == 2 {
				nominated = true
			}
		}
	}
	if !nominated {
		t.Fatal("tracker never nominated the mercurial core")
	}
	st1 := tdb.Stats()
	if st1.Retries == 0 || st1.SignalsSent == 0 {
		t.Fatalf("no mitigation activity before quarantine: %+v", st1)
	}
	if st1.Errors != 0 {
		t.Fatalf("client saw %d errors before quarantine", st1.Errors)
	}

	// Phase 2: quarantine the nomination.
	quarantined := false
	for _, s := range srv.Suspects() {
		rec, err := mgr.Handle(s, now, nil)
		if err != nil {
			t.Fatalf("quarantine: %v", err)
		}
		if rec != nil && rec.Ref == (sched.CoreRef{Machine: "m0", Core: 2}) {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("quarantine declined the mercurial core")
	}

	// Phase 3: reads now avoid the replica — the client-visible error and
	// retry rates drop to zero.
	for i := 0; i < 30; i++ {
		now += simtime.Time(1)
		if v, err := tdb.Get(fmt.Sprintf("k%d", i%4)); err != nil || !bytes.Equal(v, want) {
			t.Fatalf("post-quarantine read %d: %q, %v", i, v, err)
		}
	}
	st2 := tdb.Stats()
	if st2.Retries != st1.Retries {
		t.Fatalf("retries after quarantine: %d -> %d", st1.Retries, st2.Retries)
	}
	if st2.SignalsSent != st1.SignalsSent {
		t.Fatalf("signals after quarantine: %d -> %d", st1.SignalsSent, st2.SignalsSent)
	}
	if st2.Errors != 0 {
		t.Fatalf("client errors = %d, want 0", st2.Errors)
	}

	// The serving counters are visible in the registry snapshot.
	found := map[string]float64{}
	for _, s := range reg.Snapshot() {
		found[s.Name] += s.Value
	}
	for _, name := range []string{
		"kvdb_reads_total", "kvdb_read_retries_total",
		"kvdb_reads_recovered_by_retry_total", "kvdb_signals_total",
	} {
		if found[name] <= 0 {
			t.Fatalf("metric %s missing from snapshot (have %v)", name, found)
		}
	}
}
