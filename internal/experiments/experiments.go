// Package experiments contains the drivers that regenerate every figure
// and quantified claim of "Cores that don't count" (HotOS '21). Each
// experiment has an id (F1 = Fig. 1; E1..E14 = the per-claim experiments
// catalogued in DESIGN.md), a Run function returning a result value, and a
// Table method rendering the rows the paper's text/figure reports.
//
// cmd/fleetsim and the repository-root benchmarks both drive this package,
// so the printed artifacts in EXPERIMENTS.md are regenerable two ways.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/quarantine"
	"repro/internal/screen"
)

// Scale selects experiment sizes: Small for CI/benchmarks, Full for the
// EXPERIMENTS.md artifacts.
type Scale int

const (
	// Small runs in seconds.
	Small Scale = iota
	// Full runs the paper-scale version (minutes).
	Full
)

// fleetConfig returns the per-scale base fleet configuration. The defect
// density is raised at Small scale so statistics emerge from a smaller
// fleet; E1 uses the paper-faithful density explicitly.
func fleetConfig(s Scale) fleet.Config {
	cfg := fleet.DefaultConfig()
	switch s {
	case Full:
		cfg.Machines = 2000
		cfg.CoresPerMachine = 32
		cfg.DefectsPerMachine = 0.01
	default:
		cfg.Machines = 400
		cfg.CoresPerMachine = 16
		cfg.DefectsPerMachine = 0.05
		cfg.ConfessionConfig = screen.NewConfig(screen.WithPasses(30),
			screen.WithSweep(2, 1, 2), screen.WithMaxOps(8_000_000))
	}
	return cfg
}

// FleetConfig exposes the per-scale base configuration to external
// drivers — cmd/fleetsim's traced-run mode simulates the same fleet the
// experiments do.
func FleetConfig(s Scale) fleet.Config { return fleetConfig(s) }

func days(s Scale, small, full int) int {
	if s == Full {
		return full
	}
	return small
}

// F1Result is the Fig. 1 reproduction: normalized weekly user- and
// automatically-reported CEE rates per machine.
type F1Result struct {
	Rates     []fleet.WeeklyRate
	AutoSlope float64
	UserSlope float64
}

// F1 regenerates Fig. 1: a year of fleet telemetry with quarantine
// disabled (the figure reports raw incident rates), normalized to the
// first non-zero automated rate.
func F1(s Scale) F1Result {
	cfg := fleetConfig(s)
	cfg.Policy = quarantine.Policy{Mode: quarantine.CoreRemoval, MinScore: 1e18}
	f := fleet.New(cfg)
	daily := f.Run(days(s, 180, 365))
	rates := fleet.Normalize(fleet.WeeklyRates(daily, cfg.Machines))
	return F1Result{
		Rates:     rates,
		AutoSlope: fleet.TrendSlope(rates, func(r fleet.WeeklyRate) float64 { return r.Auto }),
		UserSlope: fleet.TrendSlope(rates, func(r fleet.WeeklyRate) float64 { return r.User }),
	}
}

// Table renders the Fig. 1 series.
func (r F1Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "F1 / Fig. 1 — normalized CEE report rates per machine per week\n")
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "week", "auto", "user")
	for _, w := range r.Rates {
		fmt.Fprintf(&b, "%-6d %12.3f %12.3f\n", w.Week, w.Auto, w.User)
	}
	fmt.Fprintf(&b, "auto-rate slope/week: %+.4f (paper: gradually increasing)\n", r.AutoSlope)
	fmt.Fprintf(&b, "user-rate slope/week: %+.4f (paper: roughly flat)\n", r.UserSlope)
	return b.String()
}

// E1Result is the fleet-incidence claim check.
type E1Result struct {
	Machines        int
	MercurialCores  int
	PerThousandMach float64
}

// E1 checks "a few mercurial cores per several thousand machines" with the
// paper-faithful defect density.
func E1(s Scale) E1Result {
	cfg := fleetConfig(s)
	cfg.DefectsPerMachine = 0.002 // paper-faithful density
	cfg.Machines = 4000
	if s == Full {
		cfg.Machines = 20000
	}
	cfg.CoresPerMachine = 8 // population only; cores are not simulated here
	f := fleet.New(cfg)
	n := len(f.Defects())
	return E1Result{
		Machines:        cfg.Machines,
		MercurialCores:  n,
		PerThousandMach: 1000 * float64(n) / float64(cfg.Machines),
	}
}

// Table renders the incidence row.
func (r E1Result) Table() string {
	return fmt.Sprintf(
		"E1 — incidence: %d mercurial cores in %d machines = %.2f per 1000 machines\n"+
			"paper: \"on the order of a few mercurial cores per several thousand machines\"\n",
		r.MercurialCores, r.Machines, r.PerThousandMach)
}

// E2Result is the outcome-class distribution (§2's risk ladder).
type E2Result struct {
	Total     int64
	ByOutcome [5]int64
}

// E2 measures how corruptions split across §2's symptom classes.
func E2(s Scale) E2Result {
	cfg := fleetConfig(s)
	f := fleet.New(cfg)
	daily := f.Run(days(s, 60, 180))
	var out E2Result
	for _, d := range daily {
		out.Total += d.Corruptions
		for i, v := range d.ByOutcome {
			out.ByOutcome[i] += v
		}
	}
	return out
}

// Table renders the distribution.
func (r E2Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2 — CEE outcome distribution over %d corruptions (§2 risk ladder)\n", r.Total)
	names := []string{"wrong answer, detected immediately", "crash/segfault", "machine check",
		"wrong answer, detected late", "wrong answer, never detected"}
	for i, n := range names {
		frac := 0.0
		if r.Total > 0 {
			frac = float64(r.ByOutcome[i]) / float64(r.Total)
		}
		fmt.Fprintf(&b, "%-38s %10d  (%5.1f%%)\n", n, r.ByOutcome[i], 100*frac)
	}
	return b.String()
}

// E5Result is the human-triage ledger.
type E5Result struct {
	fleet.TriageStats
}

// E5 isolates the human triage channel (automated quarantine off) and
// measures the confirmation rate against the paper's "roughly half".
func E5(s Scale) E5Result {
	cfg := fleetConfig(s)
	cfg.Machines *= 4
	cfg.Policy = quarantine.Policy{Mode: quarantine.CoreRemoval, MinScore: 1e18}
	f := fleet.New(cfg)
	f.Run(days(s, 120, 365))
	return E5Result{f.Triage}
}

// ConfirmationRate returns confirmed/investigated, or 0.
func (r E5Result) ConfirmationRate() float64 {
	if r.Investigated == 0 {
		return 0
	}
	return float64(r.Confirmed) / float64(r.Investigated)
}

// Table renders the ledger.
func (r E5Result) Table() string {
	return fmt.Sprintf(
		"E5 — human triage: %d investigated, %d confirmed (%.0f%%), "+
			"%d false accusations, %d real-but-not-reproduced\n"+
			"paper: \"roughly half ... proven to be mercurial cores; the other half is a\n"+
			"mix of false accusations and limited reproducibility\"\n",
		r.Investigated, r.Confirmed, 100*r.ConfirmationRate(),
		r.FalseAccusations, r.RealNotReproduced)
}

// E11Result is the aging/onset study.
type E11Result struct {
	OnsetDays        []float64
	ImmediateN       int
	LatentN          int
	MedianLatentDays float64
}

// E11 reports the age-until-onset distribution of the defect population.
func E11(s Scale) E11Result {
	cfg := fleetConfig(s)
	cfg.Machines *= 4
	f := fleet.New(cfg)
	var out E11Result
	var latent []float64
	for _, d := range f.Defects() {
		o := d.FirstActive.Days()
		out.OnsetDays = append(out.OnsetDays, o)
		if o == 0 {
			out.ImmediateN++
		} else {
			out.LatentN++
			latent = append(latent, o)
		}
	}
	if len(latent) > 0 {
		out.MedianLatentDays = median(latent)
	}
	return out
}

func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// Table renders the onset summary.
func (r E11Result) Table() string {
	return fmt.Sprintf(
		"E11 — aging: %d defects active at install, %d latent; median latent onset %.0f days\n"+
			"paper: \"these can manifest long after initial installation\"\n",
		r.ImmediateN, r.LatentN, r.MedianLatentDays)
}
