package experiments

import (
	"strings"
	"testing"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
}

func TestE1IncidenceMatchesPaperOrder(t *testing.T) {
	r := E1(Small)
	// "A few mercurial cores per several thousand machines": the rate
	// per thousand must be order-1, not order-10 or order-0.01.
	if r.PerThousandMach < 0.5 || r.PerThousandMach > 10 {
		t.Fatalf("incidence %.2f per 1000 machines out of band", r.PerThousandMach)
	}
	if !strings.Contains(r.Table(), "per 1000 machines") {
		t.Fatal("table malformed")
	}
}

func TestE2OutcomesSumAndSilentShare(t *testing.T) {
	r := E2(Small)
	var sum int64
	for _, v := range r.ByOutcome {
		sum += v
	}
	if sum != r.Total {
		t.Fatalf("outcomes sum %d != total %d", sum, r.Total)
	}
	if r.Total == 0 {
		t.Fatal("no corruptions simulated")
	}
	silent := float64(r.ByOutcome[4]) / float64(r.Total)
	if silent < 0.3 || silent > 0.6 {
		t.Fatalf("silent share %v out of band", silent)
	}
	if !strings.Contains(r.Table(), "never detected") {
		t.Fatal("table malformed")
	}
}

func TestE3SpreadAndFreqShapes(t *testing.T) {
	r := E3(Small)
	if len(r.Rates) < 30 {
		t.Fatalf("only %d defects characterized", len(r.Rates))
	}
	if r.DecadeSpread < 4 {
		t.Fatalf("rate spread %d decades; paper needs 'many orders of magnitude'", r.DecadeSpread)
	}
	if r.EmpiricalChecked == 0 {
		t.Fatal("no hot-tail defects validated empirically")
	}
	if r.EmpiricalAgree*3 < r.EmpiricalChecked*2 {
		t.Fatalf("empirical validation weak: %d/%d", r.EmpiricalAgree, r.EmpiricalChecked)
	}
	fs := r.FreqCurves["freq-sensitive"]
	if fs[len(fs)-1] <= fs[0] {
		t.Fatal("freq-sensitive curve should rise with frequency")
	}
	fi := r.FreqCurves["freq-insensitive"]
	if fi[0] != fi[len(fi)-1] {
		t.Fatal("freq-insensitive curve should be flat")
	}
	lw := r.FreqCurves["low-freq-worse"]
	if lw[0] <= lw[len(lw)-1] {
		t.Fatal("low-freq-worse curve should fall with frequency")
	}
	if !strings.Contains(r.Table(), "decades") {
		t.Fatal("table malformed")
	}
}

func TestE4MoreBudgetNeverWorse(t *testing.T) {
	r := E4(Small)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The largest online budget must detect at least as much as the
	// signals-only baseline.
	base := r.Rows[0].DetectedFraction
	big := r.Rows[len(r.Rows)-1].DetectedFraction
	if big < base {
		t.Fatalf("screening hurt detection: %v -> %v", base, big)
	}
	_ = r.Table()
}

func TestE5RoughlyHalf(t *testing.T) {
	r := E5(Small)
	if r.Investigated == 0 {
		t.Fatal("no investigations")
	}
	if rate := r.ConfirmationRate(); rate < 0.15 || rate > 0.9 {
		t.Fatalf("confirmation rate %v out of 'roughly half' band (%+v)", rate, r.TriageStats)
	}
	if r.FalseAccusations+r.RealNotReproduced == 0 {
		t.Fatal("unconfirmed mix missing")
	}
}

func TestE6SafeTasksSalvagesCapacity(t *testing.T) {
	r := E6(Small)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	drain, removal, safe := r.Rows[0], r.Rows[1], r.Rows[2]
	if drain.Mode != "machine-drain" || removal.Mode != "core-removal" || safe.Mode != "safe-tasks" {
		t.Fatalf("row order wrong: %+v", r.Rows)
	}
	// With comparable quarantine counts, machine drain must cost the
	// most cores; safe-tasks must salvage some.
	if drain.QuarantinedRefs > 0 && removal.QuarantinedRefs > 0 &&
		drain.CoresLost <= removal.CoresLost {
		t.Fatalf("drain (%d) should cost more cores than removal (%d)",
			drain.CoresLost, removal.CoresLost)
	}
	if safe.CoresSalvaged == 0 && safe.QuarantinedRefs > 0 {
		t.Log("safe-tasks salvaged nothing (unit attribution may have fallen back to removal)")
	}
	_ = r.Table()
}

func TestE7MitigationShapes(t *testing.T) {
	r := E7(Small)
	rows := map[string]E7Row{}
	for _, row := range r.Rows {
		rows[row.Mechanism] = row
	}
	un := rows["unprotected"]
	dmr := rows["dmr-retry"]
	tmr := rows["tmr-vote"]
	if un.OpsRatio != 1 {
		t.Fatalf("baseline ratio = %v", un.OpsRatio)
	}
	// Who wins: protection reduces wrong-accepted to (near) zero.
	if un.WrongAccepted == 0 {
		t.Fatal("unprotected baseline accepted nothing wrong; defect too cold")
	}
	if dmr.WrongAccepted > 0 || tmr.WrongAccepted > 0 {
		t.Fatalf("mitigated runs accepted wrong answers: dmr=%d tmr=%d",
			dmr.WrongAccepted, tmr.WrongAccepted)
	}
	// By what factor: DMR ~2x, TMR ~3x.
	if dmr.OpsRatio < 1.8 || dmr.OpsRatio > 2.6 {
		t.Fatalf("DMR ratio %v, want ~2", dmr.OpsRatio)
	}
	if tmr.OpsRatio < 2.7 || tmr.OpsRatio > 3.5 {
		t.Fatalf("TMR ratio %v, want ~3", tmr.OpsRatio)
	}
	vl := rows["verified-lib"]
	if vl.WrongAccepted > 0 {
		t.Fatalf("verified library accepted wrong ciphertext %d times", vl.WrongAccepted)
	}
	_ = r.Table()
}

func TestE8AmortizationFlat(t *testing.T) {
	r := E8(Small)
	if len(r.Rows) < 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Checksum cost per byte is ~constant (amortized): largest block
	// within 25% of smallest.
	first := r.Rows[0].ChecksumOpsPerByte
	last := r.Rows[len(r.Rows)-1].ChecksumOpsPerByte
	if last > first*1.25 || first > last*1.25 {
		t.Fatalf("checksum cost not amortized: %v vs %v", first, last)
	}
	if r.DuplicationFactor < 2 {
		t.Fatalf("duplication factor %v", r.DuplicationFactor)
	}
	_ = r.Table()
}

func TestE9CheckerWins(t *testing.T) {
	r := E9(Small)
	if r.FreivaldsOpsFraction >= 0.5 {
		t.Fatalf("checker not cheaper: %v", r.FreivaldsOpsFraction)
	}
	if r.FreivaldsCatchRate < 0.4 {
		t.Fatalf("one-round catch rate %v below the >=1/2 guarantee band", r.FreivaldsCatchRate)
	}
	if r.CheckedSortRecoveries == 0 {
		t.Fatal("certified sort never needed (or performed) a recovery")
	}
	if r.ABFTEscaped != 0 {
		t.Fatalf("ABFT let %d wrong products escape", r.ABFTEscaped)
	}
	if r.ABFTCorrected == 0 {
		t.Fatal("ABFT never corrected anything; defect too cold")
	}
	if r.ABFTOverhead > 1.3 {
		t.Fatalf("ABFT overhead %v implausibly high", r.ABFTOverhead)
	}
	_ = r.Table()
}

func TestE10AllIncidentsReproduce(t *testing.T) {
	r := E10(Small)
	if r.Passed != len(r.Incidents) {
		t.Fatalf("incidents: %d/%d\n%s", r.Passed, len(r.Incidents), r.Table())
	}
	if len(r.Incidents) < 4 {
		t.Fatalf("only %d incidents staged", len(r.Incidents))
	}
}

func TestE11AgingMix(t *testing.T) {
	r := E11(Small)
	if r.ImmediateN == 0 || r.LatentN == 0 {
		t.Fatalf("population not mixed: %+v", r)
	}
	if r.MedianLatentDays <= 0 {
		t.Fatalf("median latent onset %v", r.MedianLatentDays)
	}
	if len(r.OnsetDays) != r.ImmediateN+r.LatentN {
		t.Fatal("onset ledger inconsistent")
	}
	_ = r.Table()
}

func TestE12CoverageMatters(t *testing.T) {
	r := E12(Small)
	if len(r.Points) != 4 {
		t.Fatalf("points = %d", len(r.Points))
	}
	first := r.Points[0].DetectedFraction
	last := r.Points[len(r.Points)-1].DetectedFraction
	if last < first {
		t.Fatalf("more coverage detected less: %v -> %v", first, last)
	}
	_ = r.Table()
}

func TestF1Shape(t *testing.T) {
	r := F1(Small)
	if len(r.Rates) < 20 {
		t.Fatalf("weeks = %d", len(r.Rates))
	}
	if r.AutoSlope <= 0 {
		t.Fatalf("auto slope %v, want rising", r.AutoSlope)
	}
	// User slope should be much flatter than the auto slope.
	if r.UserSlope > r.AutoSlope {
		t.Fatalf("user slope %v exceeds auto slope %v", r.UserSlope, r.AutoSlope)
	}
	table := r.Table()
	if !strings.Contains(table, "gradually increasing") {
		t.Fatal("table malformed")
	}
}

func TestE13Amplification(t *testing.T) {
	r := E13(Small)
	if r.CorruptedWraps == 0 {
		t.Fatal("no key wraps corrupted; defect too cold")
	}
	if r.KeyAmplification < 10 {
		t.Fatalf("key-wrap amplification %v, want large blast radius", r.KeyAmplification)
	}
	if r.ChainCorruptions == 0 {
		t.Fatal("no chain corruptions")
	}
	if r.ChainAmplification <= 1 {
		t.Fatalf("chain amplification %v, want > 1 (sticky corruption)", r.ChainAmplification)
	}
	if r.ChainErrors < r.ChainCorruptions {
		t.Fatal("errors cannot be fewer than corruptions in a poisoned suffix")
	}
	_ = r.Table()
}

func TestE14SKURiskShapes(t *testing.T) {
	r := E14(Small)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byName := map[string]E14Row{}
	totalMachines := 0
	for _, row := range r.Rows {
		byName[row.SKU] = row
		totalMachines += row.Machines
		if row.Machines == 0 {
			t.Fatalf("SKU %s got no machines", row.SKU)
		}
	}
	mature := byName["vendorA-mature"]
	dense := byName["vendorB-new"]
	aged := byName["vendorA-aged"]
	// The dense product must show a higher per-1000 incidence than the
	// mature one (5x multiplier difference dwarfs sampling noise at this
	// density).
	if dense.PerThousand <= mature.PerThousand {
		t.Fatalf("dense SKU incidence %.2f <= mature %.2f",
			dense.PerThousand, mature.PerThousand)
	}
	// Pre-aged machines surface latent defects: active fraction should
	// not trail the mature SKU when both have defects.
	if aged.MercurialCores > 0 && aged.ActiveByEnd == 0 {
		t.Fatalf("aged SKU has %d defects but none active", aged.MercurialCores)
	}
	_ = r.Table()
}
