package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// E14Row is one CPU product's risk ledger.
type E14Row struct {
	SKU             string
	Machines        int
	MercurialCores  int
	PerThousand     float64
	ActiveByEnd     int
	Quarantined     int
	MeanLatencyDays float64
}

// E14Result is the heterogeneous-fleet risk assessment §4 asks for: "How
// can we assess the risks to a large fleet, with various CPU types, from
// several vendors, and of various ages?"
type E14Result struct{ Rows []E14Row }

// E14 runs a mixed-SKU fleet — a mature low-defect product, a dense new
// product, and an old pre-aged population — and reports per-SKU incidence
// and detection.
func E14(s Scale) E14Result {
	cfg := fleetConfig(s)
	cfg.Machines *= 2
	cfg.SKUs = []fleet.SKU{
		{Name: "vendorA-mature", Fraction: 0.5, DefectMultiplier: 0.5},
		{Name: "vendorB-new", Fraction: 0.3, DefectMultiplier: 2.5},
		{Name: "vendorA-aged", Fraction: 0.2, DefectMultiplier: 1.0, PreAgeDays: 1200},
	}
	nDays := days(s, 60, 180)
	f := fleet.New(cfg)
	f.Run(nDays)
	rep := metrics.Detection(f, nDays)
	_ = rep

	perSKU := map[string]*E14Row{}
	for _, k := range cfg.SKUs {
		perSKU[k.Name] = &E14Row{SKU: k.Name}
	}
	for _, id := range f.Cluster().Machines() {
		if row, ok := perSKU[f.MachineSKU(id)]; ok {
			row.Machines++
		}
	}
	quarantined := map[sched.CoreRef]bool{}
	for _, r := range f.Manager().Records() {
		quarantined[r.Ref] = true
	}
	latSum := map[string]float64{}
	latN := map[string]int{}
	for _, d := range f.Defects() {
		row, ok := perSKU[f.MachineSKU(d.Machine)]
		if !ok {
			continue
		}
		row.MercurialCores++
		if float64(d.FirstActive.Days()) <= float64(nDays) {
			row.ActiveByEnd++
		}
		ref := sched.CoreRef{Machine: d.Machine, Core: d.Core}
		if quarantined[ref] {
			row.Quarantined++
			if day, ok := f.QuarantineDay(ref); ok {
				lat := float64(day) - d.FirstActive.Days()
				if lat < 0 {
					lat = 0
				}
				latSum[row.SKU] += lat
				latN[row.SKU]++
			}
		}
	}
	var out E14Result
	for _, k := range cfg.SKUs {
		row := perSKU[k.Name]
		if row.Machines > 0 {
			row.PerThousand = 1000 * float64(row.MercurialCores) / float64(row.Machines)
		}
		if latN[k.Name] > 0 {
			row.MeanLatencyDays = latSum[k.Name] / float64(latN[k.Name])
		}
		out.Rows = append(out.Rows, *row)
	}
	return out
}

// Table renders E14.
func (r E14Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14 — heterogeneous-fleet risk assessment (§4)\n")
	fmt.Fprintf(&b, "%-16s %9s %10s %12s %9s %12s %11s\n",
		"sku", "machines", "mercurial", "per 1000", "active", "quarantined", "latency(d)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %9d %10d %12.2f %9d %12d %11.1f\n",
			row.SKU, row.Machines, row.MercurialCores, row.PerThousand,
			row.ActiveByEnd, row.Quarantined, row.MeanLatencyDays)
	}
	fmt.Fprintf(&b, "paper: \"CEEs appear to be an industry-wide problem ... but the rate is\n")
	fmt.Fprintf(&b, "not uniform across CPU products\"; pre-aged SKUs surface latent defects\n")
	return b.String()
}
