package experiments

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/quarantine"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// E3Result is the corruption-rate characterization: the spread of
// per-defect rates (with empirical validation for the hot tail) and the
// operating-point sensitivity curves.
type E3Result struct {
	// Rates holds the per-defect activation rate (corruptions per
	// matching operation at nominal) across a sampled population.
	Rates []float64
	// DecadeSpread is the number of decades the non-zero rates span.
	DecadeSpread int
	// EmpiricalChecked and EmpiricalAgree count hot defects whose
	// empirically measured rate was validated against the model rate
	// (within 3x) by actually executing operations through the engine.
	EmpiricalChecked, EmpiricalAgree int
	// FreqCurves maps a defect label to its rate at each frequency in
	// FreqAxis — including a lower-frequency-worse defect (§5).
	FreqAxis   []float64
	FreqCurves map[string][]float64
}

// E3 samples defects from the catalog, reports the population rate spread,
// validates the hot tail empirically through the engine, and sweeps
// frequency for three archetypes.
func E3(s Scale) E3Result {
	rng := xrand.New(11)
	nDefects := 150
	opsPer := uint64(400_000)
	if s == Full {
		nDefects = 500
		opsPer = 2_000_000
	}
	out := E3Result{FreqCurves: map[string][]float64{}}
	for i := 0; i < nDefects; i++ {
		d := fault.SampleDefect(fmt.Sprintf("e3-%d", i), rng)
		if d.Onset > 0 {
			d.Onset = 0 // characterize as if past onset
		}
		rate := d.Rate(fault.Nominal, 0)
		if d.PatternMask != 0 {
			rate /= float64(uint64(1) << popcount(d.PatternMask))
		}
		if rate <= 0 {
			continue
		}
		out.Rates = append(out.Rates, rate)
		// Hot tail: validate the model empirically with an op budget
		// sized for ~30 expected hits (capped).
		if rate >= 3e-6 && !d.Deterministic && d.PatternMask == 0 {
			ops := uint64(30 / rate)
			if ops > opsPer*25 {
				ops = opsPer * 25
			}
			core := fault.NewCore(fmt.Sprintf("e3c%d", i), rng, d)
			e := engine.New(core)
			driveUnit(e, d.Unit, ops, rng)
			got := core.ObservedRate()
			out.EmpiricalChecked++
			if got > rate/3 && got < rate*3 {
				out.EmpiricalAgree++
			}
		}
	}
	out.DecadeSpread = stats.DecadeSpread(out.Rates)

	// Frequency sweeps for three §5 archetypes. Rates are analytic here
	// (the defect model's Rate), which is what a plot of per-frequency
	// measured rates converges to.
	out.FreqAxis = []float64{2.0, 2.4, 2.8, 3.2, 3.6}
	arch := map[string]fault.Defect{
		"freq-sensitive":   {Unit: fault.UnitALU, BaseRate: 1e-6, Sens: fault.Sensitivity{Freq: 2.0}},
		"freq-insensitive": {Unit: fault.UnitALU, BaseRate: 1e-6},
		"low-freq-worse":   {Unit: fault.UnitALU, BaseRate: 1e-6, Sens: fault.Sensitivity{Freq: -1.5}},
	}
	for name, d := range arch {
		var curve []float64
		for _, f := range out.FreqAxis {
			pt := fault.Nominal
			pt.FreqGHz = f
			curve = append(curve, d.Rate(pt, 0))
		}
		out.FreqCurves[name] = curve
	}
	return out
}

// driveUnit issues ops that exercise the given unit.
func driveUnit(e *engine.Engine, u fault.Unit, n uint64, rng *xrand.RNG) {
	mem := engine.NewMemory(64)
	var v uint64 = 1
	buf := make([]byte, 64)
	dst := make([]byte, 64)
	for i := uint64(0); i < n; i++ {
		a := rng.Uint64()
		switch u {
		case fault.UnitALU:
			v = e.Add64(v, a)
		case fault.UnitMul:
			v = e.Mul64(v|1, a|1)
		case fault.UnitDiv:
			q, _ := e.Div64(a, v|1)
			v = q
		case fault.UnitFPU:
			_ = e.FAdd(float64(a%1000), 1.5)
		case fault.UnitVec:
			e.Copy(dst[:8], buf[:8])
		case fault.UnitCrypto:
			v = e.CryptoEncrypt64(a, 42)
		case fault.UnitAtomic:
			e.FetchAdd(&v, 1)
		case fault.UnitLSU:
			e.Store(mem, a%64, v)
			e.ClearTrap()
		}
	}
}

// popcount returns the number of set bits.
func popcount(x uint64) uint {
	var n uint
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Table renders E3.
func (r E3Result) Table() string {
	var b strings.Builder
	qs := stats.Quantiles(r.Rates, 0, 0.25, 0.5, 0.75, 1)
	fmt.Fprintf(&b, "E3 — corruption-rate spread across %d defects\n", len(r.Rates))
	fmt.Fprintf(&b, "min=%.2e p25=%.2e median=%.2e p75=%.2e max=%.2e\n",
		qs[0], qs[1], qs[2], qs[3], qs[4])
	fmt.Fprintf(&b, "decades spanned: %d (paper: \"many orders of magnitude\")\n", r.DecadeSpread)
	fmt.Fprintf(&b, "empirical validation of hot tail: %d/%d within 3x of model\n\n",
		r.EmpiricalAgree, r.EmpiricalChecked)
	fmt.Fprintf(&b, "frequency sensitivity (activation rate vs core frequency, GHz):\n")
	fmt.Fprintf(&b, "%-18s", "defect")
	for _, f := range r.FreqAxis {
		fmt.Fprintf(&b, "%10.1f", f)
	}
	fmt.Fprintln(&b)
	for _, name := range []string{"freq-sensitive", "freq-insensitive", "low-freq-worse"} {
		fmt.Fprintf(&b, "%-18s", name)
		for _, v := range r.FreqCurves[name] {
			fmt.Fprintf(&b, "%10.2e", v)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "paper (§5): some rates strongly frequency-sensitive, some not; lower\n")
	fmt.Fprintf(&b, "frequency sometimes (surprisingly) increases the failure rate\n")
	return b.String()
}

// E4Row is one screening-policy point on the cost/detection frontier.
type E4Row struct {
	Policy           string
	ScreenOpsPerDay  uint64
	DetectedFraction float64
	// RapidFraction is the share of active defects quarantined within 7
	// days of becoming active — a latency-bounded detection metric that
	// is robust to the composition effect (bigger budgets catch extra,
	// slower cores, which inflates a plain mean latency).
	RapidFraction   float64
	MeanLatencyDays float64
	FalsePositives  int
}

// E4Result is the offline-vs-online screening trade-off.
type E4Result struct{ Rows []E4Row }

// E4 sweeps the online screening budget and compares against a no-
// screening baseline: the §6 trade-off between detection latency/coverage
// and screening cost. Results are averaged over several defect
// populations to damp single-defect luck.
func E4(s Scale) E4Result {
	budgets := []uint64{0, 10_000, 50_000, 250_000}
	seeds := []uint64{1, 7, 19, 31, 43}
	nDays := days(s, 40, 120)
	var out E4Result
	for _, budget := range budgets {
		name := fmt.Sprintf("online-%d", budget)
		if budget == 0 {
			name = "signals-only"
		}
		row := E4Row{Policy: name, ScreenOpsPerDay: budget}
		for _, seed := range seeds {
			cfg := fleetConfig(s)
			cfg.Seed = seed
			cfg.ScreenOpsPerCoreDay = budget
			f := fleet.New(cfg)
			f.Run(nDays)
			rep := metrics.Detection(f, nDays)
			row.DetectedFraction += rep.DetectedFraction() / float64(len(seeds))
			row.MeanLatencyDays += rep.MeanLatencyDays() / float64(len(seeds))
			row.FalsePositives += rep.FalsePositive
			rapid := 0
			for _, l := range rep.LatencyDays {
				if l <= 7 {
					rapid++
				}
			}
			if rep.PastOnset > 0 {
				row.RapidFraction += float64(rapid) / float64(rep.PastOnset) / float64(len(seeds))
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Table renders E4.
func (r E4Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4 — screening budget vs detection (§6 trade-off)\n")
	fmt.Fprintf(&b, "%-16s %14s %12s %14s %12s %6s\n",
		"policy", "ops/core/day", "detected", "within 7 days", "latency(d)", "FPs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %14d %11.0f%% %13.0f%% %12.1f %6d\n",
			row.Policy, row.ScreenOpsPerDay, 100*row.DetectedFraction,
			100*row.RapidFraction, row.MeanLatencyDays, row.FalsePositives)
	}
	fmt.Fprintf(&b, "paper: online screening is cheap but \"cannot always provide complete\n")
	fmt.Fprintf(&b, "coverage\"; more budget buys detection and cuts latency\n")
	return b.String()
}

// E6Row is one isolation-mode outcome.
type E6Row struct {
	Mode            string
	QuarantinedRefs int
	CoresLost       int // schedulable cores removed from the pool
	CoresSalvaged   int // restricted cores still serving safe tasks
	Migrations      int
}

// E6Result compares isolation mechanisms.
type E6Result struct{ Rows []E6Row }

// E6 runs the same fleet under the three §6.1 isolation modes and
// compares stranded capacity.
func E6(s Scale) E6Result {
	nDays := days(s, 45, 120)
	var out E6Result
	for _, mode := range []quarantine.Mode{quarantine.MachineDrain, quarantine.CoreRemoval, quarantine.SafeTasks} {
		cfg := fleetConfig(s)
		cfg.Policy = quarantine.Policy{Mode: mode, RequireConfession: true}
		f := fleet.New(cfg)
		f.Run(nDays)
		cap := f.Cluster().Capacity()
		out.Rows = append(out.Rows, E6Row{
			Mode:            mode.String(),
			QuarantinedRefs: len(f.Manager().Records()),
			CoresLost:       cap.Offline + cap.DrainedCores,
			CoresSalvaged:   cap.Restricted,
			Migrations:      f.Cluster().Migrations,
		})
	}
	return out
}

// Table renders E6.
func (r E6Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6 — isolation mechanism vs stranded capacity (§6.1)\n")
	fmt.Fprintf(&b, "%-15s %12s %11s %13s %11s\n",
		"mode", "quarantines", "cores lost", "cores salvaged", "migrations")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %12d %11d %13d %11d\n",
			row.Mode, row.QuarantinedRefs, row.CoresLost, row.CoresSalvaged, row.Migrations)
	}
	fmt.Fprintf(&b, "paper: machine drain is simple but coarse; core removal strands one core;\n")
	fmt.Fprintf(&b, "safe-task placement avoids \"the cost of stranding those cores\"\n")
	return b.String()
}

// E12Result is the coverage-dependence of the §4 incidence metric.
type E12Result struct{ Points []metrics.CoveragePoint }

// E12 measures the detected fraction of mercurial cores as a function of
// screening-corpus size, averaged over several defect populations (single
// populations are small enough that one defect's luck dominates).
func E12(s Scale) E12Result {
	sizes := []int{1, 3, 7, 14}
	seeds := []uint64{1, 7, 19}
	if s == Full {
		seeds = []uint64{1, 7, 19, 31, 43}
	}
	acc := make([]metrics.CoveragePoint, len(sizes))
	for i, n := range sizes {
		acc[i].Workloads = n
	}
	for _, seed := range seeds {
		cfg := fleetConfig(s)
		cfg.Seed = seed
		pts := metrics.CoverageCurve(cfg, sizes, days(s, 40, 90))
		for i, p := range pts {
			acc[i].DetectedFraction += p.DetectedFraction / float64(len(seeds))
			acc[i].Quarantined += p.Quarantined
		}
	}
	return E12Result{Points: acc}
}

// Table renders E12.
func (r E12Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E12 — measured \"fraction of cores with CEE\" vs test coverage (§4)\n")
	fmt.Fprintf(&b, "%-22s %18s %12s\n", "corpus workloads", "detected fraction", "quarantines")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-22d %17.0f%% %12d\n", p.Workloads, 100*p.DetectedFraction, p.Quarantined)
	}
	fmt.Fprintf(&b, "paper: the metric \"depends on test coverage ... and how many cycles are\n")
	fmt.Fprintf(&b, "devoted to testing\" — the measured incidence is an artifact of the corpus\n")
	return b.String()
}
