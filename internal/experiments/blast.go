package experiments

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

// E13Result quantifies §4's "stickiness" question — "are corruptions
// 'sticky,' in the sense that one CEE propagates through subsequent
// computations to create multiple application errors?" — and §2's blast
// radius examples ("bad metadata can cause the loss of an entire file
// system, and a corrupted encryption key can render large amounts of data
// permanently inaccessible").
type E13Result struct {
	// Key-wrapping scenario: one corrupted key-wrap renders every blob
	// under that data key inaccessible.
	KeyWraps         int
	CorruptedWraps   int
	BlobsPerKey      int
	BlobsLost        int
	KeyAmplification float64
	// Chain scenario: a ledger where each record derives from the
	// previous one; a single corrupted derivation poisons the suffix.
	ChainLength        int
	ChainCorruptions   int
	ChainErrors        int
	ChainAmplification float64
}

// E13 measures corruption amplification in two §2-shaped scenarios.
func E13(s Scale) E13Result {
	out := E13Result{KeyWraps: 64, BlobsPerKey: 100, ChainLength: 512}
	if s == Full {
		out.KeyWraps = 256
		out.ChainLength = 4096
	}

	// --- Scenario A: corrupted encryption-key wrap --------------------
	// Data keys are wrapped (encrypted) under a master key on a core
	// whose crypto unit intermittently corrupts. A single corrupted wrap
	// silently destroys access to every blob encrypted under that key.
	const master = 0x5EC7E7C0DE
	d := fault.Defect{ID: "wrap", Unit: fault.UnitCrypto, BaseRate: 0.03,
		Kind: fault.CorruptXORMask, Mask: 1 << 21}
	bad := engine.New(fault.NewCore("kms", xrand.New(41), d))
	rng := xrand.New(42)
	for i := 0; i < out.KeyWraps; i++ {
		dataKey := rng.Uint64()
		wrapped := bad.CryptoEncrypt64(dataKey, master)
		// Later, a healthy core unwraps; a corrupt wrap yields a wrong
		// data key and every blob under it fails its checksum.
		unwrapped := engine.GoldenCryptoDecrypt64(wrapped, master)
		if unwrapped != dataKey {
			out.CorruptedWraps++
			out.BlobsLost += out.BlobsPerKey
		}
	}
	if out.CorruptedWraps > 0 {
		out.KeyAmplification = float64(out.BlobsLost) / float64(out.CorruptedWraps)
	}

	// --- Scenario B: derivation chain ---------------------------------
	// record[i] = Mix-style derivation of record[i-1], computed on a
	// defective multiplier. One corrupted derivation poisons every
	// subsequent record; consumers validating against golden values see
	// a burst of application errors from a single CEE.
	dc := fault.Defect{ID: "chain", Unit: fault.UnitMul, BaseRate: 8e-3,
		Kind: fault.CorruptBitFlip, BitPos: 11}
	ce := engine.New(fault.NewCore("ledger", xrand.New(43), dc))
	ceCore := ce.Core()
	var prev, goldenPrev uint64 = 1, 1
	for i := 0; i < out.ChainLength; i++ {
		before := ceCore.TotalCorruptions()
		prev = ce.Mul64(prev, 0x9e3779b97f4a7c15)
		prev = ce.Xor64(prev, prev>>29)
		goldenPrev = goldenPrev * 0x9e3779b97f4a7c15
		goldenPrev ^= goldenPrev >> 29
		if ceCore.TotalCorruptions() > before {
			out.ChainCorruptions++
		}
		if prev != goldenPrev {
			out.ChainErrors++
		}
	}
	if out.ChainCorruptions > 0 {
		out.ChainAmplification = float64(out.ChainErrors) / float64(out.ChainCorruptions)
	}
	return out
}

// Table renders E13.
func (r E13Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13 — corruption stickiness / blast radius (§4, §2)\n")
	fmt.Fprintf(&b, "key-wrap scenario:  %d/%d wraps corrupted -> %d blobs inaccessible\n",
		r.CorruptedWraps, r.KeyWraps, r.BlobsLost)
	fmt.Fprintf(&b, "                    amplification: %.0f application errors per CEE\n",
		r.KeyAmplification)
	fmt.Fprintf(&b, "chain scenario:     %d corruptions in a %d-record derivation chain\n",
		r.ChainCorruptions, r.ChainLength)
	fmt.Fprintf(&b, "                    -> %d wrong records (amplification %.0fx)\n",
		r.ChainErrors, r.ChainAmplification)
	fmt.Fprintf(&b, "paper: \"errors in computation due to mercurial cores can compound to\n")
	fmt.Fprintf(&b, "significantly increase the blast radius of the failures they cause\"\n")
	return b.String()
}
