package experiments

import (
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/corpus"
	"repro/internal/ecc"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/mitigate"
	"repro/internal/selfcheck"
	"repro/internal/xrand"
)

// E7Row is one mitigation mechanism's measured cost and efficacy.
type E7Row struct {
	Mechanism string
	// OpsRatio is engine operations relative to the unprotected run.
	OpsRatio float64
	// WrongAccepted counts runs whose final output was silently wrong.
	WrongAccepted int
	// Detected counts runs where the mechanism caught corruption
	// (and either corrected it or refused the result).
	Detected int
	// Failed counts runs that returned an error without a result.
	Failed int
	Runs   int
}

// E7Result is the §7 mitigation-overhead table.
type E7Result struct{ Rows []E7Row }

// E7 measures the cost/efficacy of §7's mitigations on a pool with one
// mercurial core: unprotected, DMR-with-retry, TMR, 5-modular, verified
// library (cross-core self-check), and checkpoint/restart.
func E7(s Scale) E7Result {
	runs := 60
	blocks := 64
	if s == Full {
		runs = 300
	}
	mkPool := func(seed uint64) []*fault.Core {
		rng := xrand.New(seed)
		pool := make([]*fault.Core, 4)
		for i := range pool {
			pool[i] = fault.NewCore(fmt.Sprintf("p%d", i), rng)
		}
		// One intermittent crypto+ALU defective core: hot enough to
		// matter, cold enough that single runs sometimes pass.
		pool[0] = fault.NewCore("bad", rng,
			fault.Defect{ID: "d1", Unit: fault.UnitCrypto, BaseRate: 0.02,
				Kind: fault.CorruptXORMask, Mask: 1 << 9},
			fault.Defect{ID: "d2", Unit: fault.UnitALU, BaseRate: 1e-4,
				Kind: fault.CorruptBitFlip, BitPos: 3})
		return pool
	}

	// The protected computation: encrypt a batch and fingerprint it.
	comp := func(input []uint64, key uint64) mitigate.Computation {
		return func(e *engine.Engine) []byte {
			out := make([]byte, 0, len(input)*8)
			for _, x := range input {
				ct := e.CryptoEncrypt64(x, key)
				var w [8]byte
				for i := range w {
					w[i] = byte(ct >> (8 * uint(i)))
				}
				out = append(out, w[:]...)
			}
			return out
		}
	}
	golden := func(input []uint64, key uint64) []byte {
		out := make([]byte, 0, len(input)*8)
		for _, x := range input {
			ct := engine.GoldenCryptoEncrypt64(x, key)
			var w [8]byte
			for i := range w {
				w[i] = byte(ct >> (8 * uint(i)))
			}
			out = append(out, w[:]...)
		}
		return out
	}

	inRNG := xrand.New(99)
	inputs := make([][]uint64, runs)
	keys := make([]uint64, runs)
	for i := range inputs {
		inputs[i] = make([]uint64, blocks)
		for j := range inputs[i] {
			inputs[i][j] = inRNG.Uint64()
		}
		keys[i] = inRNG.Uint64()
	}

	type mech struct {
		name string
		run  func(x *mitigate.Executor, i int) ([]byte, mitigate.Stats, error)
	}
	mechanisms := []mech{
		{"unprotected", func(x *mitigate.Executor, i int) ([]byte, mitigate.Stats, error) {
			return x.Once(comp(inputs[i], keys[i]))
		}},
		{"dmr-retry", func(x *mitigate.Executor, i int) ([]byte, mitigate.Stats, error) {
			return x.DMR(comp(inputs[i], keys[i]), 3)
		}},
		{"tmr-vote", func(x *mitigate.Executor, i int) ([]byte, mitigate.Stats, error) {
			return x.TMR(comp(inputs[i], keys[i]))
		}},
	}

	var out E7Result
	var baselineOps float64
	for _, m := range mechanisms {
		row := E7Row{Mechanism: m.name, Runs: runs}
		var totalOps uint64
		x := mitigate.NewExecutor(mkPool(7), 13)
		for i := 0; i < runs; i++ {
			got, st, err := m.run(x, i)
			totalOps += st.Ops
			switch {
			case err != nil:
				row.Failed++
			case string(got) != string(golden(inputs[i], keys[i])):
				row.WrongAccepted++
			default:
				if st.Disagreements > 0 || st.Retries > 0 {
					row.Detected++
				}
			}
		}
		if m.name == "unprotected" {
			baselineOps = float64(totalOps)
			// Unprotected has no detection channel; recount wrongs as
			// undetected by definition.
		}
		row.OpsRatio = float64(totalOps) / baselineOps
		out.Rows = append(out.Rows, row)
	}

	// Verified library (§7's self-checking functions): encrypt on the
	// bad core, verify on a healthy one.
	{
		row := E7Row{Mechanism: "verified-lib", Runs: runs}
		pool := mkPool(7)
		var totalOps uint64
		for i := 0; i < runs; i++ {
			primary := engine.New(pool[0]) // worst case: primary is the bad core
			checker := engine.New(pool[1])
			v := selfcheck.NewVerifier(primary, checker)
			before := pool[0].TotalOps() + pool[1].TotalOps()
			cts, err := v.EncryptBlocks(inputs[i], keys[i])
			totalOps += pool[0].TotalOps() + pool[1].TotalOps() - before
			switch {
			case err != nil:
				row.Detected++ // refused a corrupt result
			default:
				want := golden(inputs[i], keys[i])
				got := make([]byte, 0, len(cts)*8)
				for _, ct := range cts {
					var w [8]byte
					for b := range w {
						w[b] = byte(ct >> (8 * uint(b)))
					}
					got = append(got, w[:]...)
				}
				if string(got) != string(want) {
					row.WrongAccepted++
				}
			}
		}
		row.OpsRatio = float64(totalOps) / (baselineOps / float64(runs)) / float64(runs)
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Table renders E7.
func (r E7Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E7 — mitigation cost vs efficacy (§7), pool of 4 cores with 1 mercurial\n")
	fmt.Fprintf(&b, "%-14s %10s %16s %10s %8s %6s\n",
		"mechanism", "ops ratio", "wrong accepted", "detected", "failed", "runs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10.2f %16d %10d %8d %6d\n",
			row.Mechanism, row.OpsRatio, row.WrongAccepted, row.Detected, row.Failed, row.Runs)
	}
	fmt.Fprintf(&b, "paper: detection \"naively seems to imply a factor of two of extra work\",\n")
	fmt.Fprintf(&b, "correction \"possibly triple work (e.g. via triple modular redundancy)\"\n")
	return b.String()
}

// E8Row is one block size on the amortization curve.
type E8Row struct {
	BlockBytes         int
	ChecksumOpsPerByte float64
}

// E8Result is the §3 amortization argument, quantified.
type E8Result struct {
	Rows []E8Row
	// DuplicationOpsPerOp is the cost of protecting *computation* by
	// duplication, per operation (always ~2 plus compare overhead).
	DuplicationFactor float64
}

// E8 measures end-to-end checksum cost per byte as block size grows
// (storage/network style, cheap) against the per-operation duplication
// factor needed for computation (expensive): why CEEs are harder to
// protect against than data corruption.
func E8(s Scale) E8Result {
	e := engine.New(fault.NewCore("e8", xrand.New(3)))
	rng := xrand.New(4)
	sizes := []int{64, 256, 1024, 4096, 16384}
	if s == Full {
		sizes = append(sizes, 65536)
	}
	var out E8Result
	for _, n := range sizes {
		data := make([]byte, n)
		rng.Bytes(data)
		before := e.Core().TotalOps()
		ecc.CRC32C(e, data)
		ops := e.Core().TotalOps() - before
		out.Rows = append(out.Rows, E8Row{
			BlockBytes:         n,
			ChecksumOpsPerByte: float64(ops) / float64(n),
		})
	}
	// Duplication: run twice + one compare per op ≈ 2 + epsilon.
	out.DuplicationFactor = 2.0
	return out
}

// Table renders E8.
func (r E8Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8 — integrity-check amortization (§3)\n")
	fmt.Fprintf(&b, "%-14s %22s\n", "block bytes", "checksum ops/byte")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14d %22.2f\n", row.BlockBytes, row.ChecksumOpsPerByte)
	}
	fmt.Fprintf(&b, "computation duplication cost: %.1fx per operation (no amortization)\n", r.DuplicationFactor)
	fmt.Fprintf(&b, "paper: storage/networking \"amortize corruption-checking costs\" over blocks,\n")
	fmt.Fprintf(&b, "\"which seems harder to do at a per-instruction scale\"\n")
	return b.String()
}

// E9Result compares Blum–Kannan checkers against re-execution, and
// reports the ABFT extension (correction, not just detection).
type E9Result struct {
	N                     int
	FreivaldsOpsFraction  float64 // checker cost / recompute cost (native op counts)
	FreivaldsCatchRate    float64 // detection rate for single-cell corruption, 1 round
	CheckedSortExtraFrac  float64 // certifier cost / sort cost
	CheckedSortRecoveries int
	SortRuns              int
	// ABFT (the §9 extension): checksummed multiply on a defective core.
	ABFTRuns          int
	ABFTCorrected     int // single-cell corruptions fixed in place
	ABFTUncorrectable int // refused (fallback to retry)
	ABFTEscaped       int // wrong products returned as good (must be 0)
	ABFTOverhead      float64
}

// E9 measures checker cost and efficacy: Freivalds' O(n²) verification vs
// O(n³) recompute, and the certified sort's recovery behaviour on a
// defective core.
func E9(s Scale) E9Result {
	n := 48
	trials := 60
	if s == Full {
		n = 96
		trials = 200
	}
	rng := xrand.New(21)
	out := E9Result{N: n}

	// Cost model: Freivalds does ~3 n² multiply-adds per round
	// (restricted to additions here), recompute does ~2 n³.
	out.FreivaldsOpsFraction = float64(3*n*n) / float64(2*n*n*n)

	// Empirical one-round catch rate.
	caught := 0
	for i := 0; i < trials; i++ {
		a := randMat(rng, n)
		bm := randMat(rng, n)
		c := nativeMul(a, bm, n)
		c[rng.Intn(n*n)] ^= 1 << uint(rng.Intn(64))
		if !check.Freivalds(a, bm, c, n, 1, rng) {
			caught++
		}
	}
	out.FreivaldsCatchRate = float64(caught) / float64(trials)

	// Certified sort with a defective compare unit in the pool.
	bad := fault.NewCore("bad", xrand.New(22), fault.Defect{
		ID: "d", Unit: fault.UnitALU, BaseRate: 0.01,
		Kind: fault.CorruptBitFlip, BitPos: 0})
	good := fault.NewCore("good", xrand.New(23))
	pool := check.FaultyPool([]*fault.Core{bad, good})
	out.SortRuns = trials
	for i := 0; i < trials; i++ {
		xs := make([]uint64, 256)
		for j := range xs {
			xs[j] = rng.Uint64()
		}
		if _, attempts, err := check.CheckedSort(pool, xs); err == nil && attempts > 1 {
			out.CheckedSortRecoveries++
		}
	}
	// Certifier cost: O(n) vs O(n log n) compares for the sort itself.
	out.CheckedSortExtraFrac = 1.0 / logBase2(256)

	// ABFT: checksummed multiply on a core whose multiplier corrupts
	// roughly one product per run — correction without re-execution.
	abftN := 12
	abftEngine := engine.New(fault.NewCore("abft", xrand.New(24), fault.Defect{
		ID: "d", Unit: fault.UnitMul, BaseRate: 3e-4,
		Kind: fault.CorruptBitFlip, BitPos: 33}))
	out.ABFTOverhead = float64((abftN+1)*(abftN+1)) / float64(abftN*abftN)
	for i := 0; i < trials; i++ {
		a := randMat(rng, abftN)
		bm := randMat(rng, abftN)
		c, rep, err := check.ABFTMatMul(abftEngine, a, bm, abftN)
		out.ABFTRuns++
		if err != nil {
			out.ABFTUncorrectable++
			continue
		}
		want := nativeMul(a, bm, abftN)
		for j := range c {
			if c[j] != want[j] {
				out.ABFTEscaped++
				break
			}
		}
		if rep.Corrected {
			out.ABFTCorrected++
		}
	}
	return out
}

func randMat(rng *xrand.RNG, n int) []uint64 {
	m := make([]uint64, n*n)
	for i := range m {
		m[i] = rng.Uint64()
	}
	return m
}

func nativeMul(a, b []uint64, n int) []uint64 {
	c := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s uint64
			for k := 0; k < n; k++ {
				s += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func logBase2(n int) float64 {
	l := 0.0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}

// Table renders E9.
func (r E9Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E9 — result checkers (Blum–Kannan, §3/§9), n=%d matrices\n", r.N)
	fmt.Fprintf(&b, "freivalds verify cost:   %.1f%% of recompute (O(n^2) vs O(n^3))\n",
		100*r.FreivaldsOpsFraction)
	fmt.Fprintf(&b, "freivalds 1-round catch: %.0f%% of single-cell corruptions (>=50%% guaranteed)\n",
		100*r.FreivaldsCatchRate)
	fmt.Fprintf(&b, "certified sort:          certifier adds ~%.0f%% cost; %d/%d runs on the\n",
		100*r.CheckedSortExtraFrac, r.CheckedSortRecoveries, r.SortRuns)
	fmt.Fprintf(&b, "                         defective core were caught and recovered elsewhere\n")
	fmt.Fprintf(&b, "ABFT matmul (§9 ext):    %.0f%% overhead; %d/%d runs corrected in place,\n",
		100*(r.ABFTOverhead-1), r.ABFTCorrected, r.ABFTRuns)
	fmt.Fprintf(&b, "                         %d refused as uncorrectable, %d escaped (want 0)\n",
		r.ABFTUncorrectable, r.ABFTEscaped)
	fmt.Fprintf(&b, "paper: \"Blum and Kannan discussed some classes of algorithms for which\n")
	fmt.Fprintf(&b, "efficient checkers exist\" — checking beats duplication when a checker exists\n")
	return b.String()
}

// E10Result summarizes the §2 incident reproductions (full detail lives in
// the integration tests; this driver demonstrates each one end to end).
type E10Result struct {
	Incidents []string
	Passed    int
}

// E10 replays each §2 incident through the corpus/app substrates and
// reports which reproduced.
func E10(s Scale) E10Result {
	var out E10Result
	record := func(name string, ok bool) {
		status := "reproduced"
		if !ok {
			status = "FAILED"
		}
		out.Incidents = append(out.Incidents, fmt.Sprintf("%-46s %s", name, status))
		if ok {
			out.Passed++
		}
	}

	// Self-inverting AES (deterministic, same-core roundtrip passes,
	// cross-core decryption is gibberish).
	{
		d := fault.Defect{ID: "i1", Unit: fault.UnitCrypto, Deterministic: true,
			Kind: fault.CorruptPreXORInput, Mask: 1 << 33}
		bad := engine.New(fault.NewCore("i1", xrand.New(31), d))
		good := engine.New(fault.NewCore("i1g", xrand.New(32)))
		ct := bad.CryptoEncrypt64(1234, 9)
		ok := bad.CryptoDecrypt64(ct, 9) == 1234 && good.CryptoDecrypt64(ct, 9) != 1234
		record("self-inverting AES mis-computation", ok)
	}
	// Lock-semantics violation losing updates.
	{
		d := fault.Defect{ID: "i2", Unit: fault.UnitAtomic, BaseRate: 0.05,
			Kind: fault.CorruptDropUpdate}
		e := engine.New(fault.NewCore("i2", xrand.New(33), d))
		w := corpus.NewLock(8, 64)
		rng := xrand.New(34)
		ok := false
		for i := 0; i < 20 && !ok; i++ {
			ok = w.Run(e, rng).Verdict != corpus.Pass
		}
		record("lock-semantics violation (lost updates)", ok)
	}
	// Repeated bit-flips in strings at one position.
	{
		d := fault.Defect{ID: "i3", Unit: fault.UnitVec, Deterministic: true,
			Kind: fault.CorruptBitFlip, BitPos: 11}
		e := engine.New(fault.NewCore("i3", xrand.New(35), d))
		src := make([]byte, 64)
		dst := make([]byte, 64)
		e.Copy(dst, src)
		flips := 0
		for i := range dst {
			if dst[i] != src[i] {
				flips++
			}
		}
		record("repeated bit-flips at a fixed position", flips == 8) // one per word
	}
	// Kernel-state corruption via wrong-address store.
	{
		d := fault.Defect{ID: "i4", Unit: fault.UnitLSU, BaseRate: 0.01,
			Kind: fault.CorruptOffByOne, Delta: 8}
		e := engine.New(fault.NewCore("i4", xrand.New(36), d))
		w := corpus.NewMem(2048)
		rng := xrand.New(37)
		ok := false
		for i := 0; i < 20 && !ok; i++ {
			ok = w.Run(e, rng).Verdict != corpus.Pass
		}
		record("kernel-state corruption (wrong-address store)", ok)
	}
	return out
}

// Table renders E10.
func (r E10Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E10 — §2 incident reproductions (%d/%d; storage-GC and replica-index\n",
		r.Passed, len(r.Incidents))
	fmt.Fprintf(&b, "incidents run as integration tests in internal/storage and internal/kvdb)\n")
	for _, line := range r.Incidents {
		fmt.Fprintf(&b, "  %s\n", line)
	}
	return b.String()
}
