package experiments

import "sort"

// Runner runs one experiment at the given scale and renders its table.
type Runner func(Scale) string

// Registry maps experiment ids to runners. F1 is the paper's Figure 1;
// E1..E14 are the per-claim experiments from DESIGN.md §4.
var Registry = map[string]Runner{
	"F1":  func(s Scale) string { return F1(s).Table() },
	"E1":  func(s Scale) string { return E1(s).Table() },
	"E2":  func(s Scale) string { return E2(s).Table() },
	"E3":  func(s Scale) string { return E3(s).Table() },
	"E4":  func(s Scale) string { return E4(s).Table() },
	"E5":  func(s Scale) string { return E5(s).Table() },
	"E6":  func(s Scale) string { return E6(s).Table() },
	"E7":  func(s Scale) string { return E7(s).Table() },
	"E8":  func(s Scale) string { return E8(s).Table() },
	"E9":  func(s Scale) string { return E9(s).Table() },
	"E10": func(s Scale) string { return E10(s).Table() },
	"E11": func(s Scale) string { return E11(s).Table() },
	"E12": func(s Scale) string { return E12(s).Table() },
	"E13": func(s Scale) string { return E13(s).Table() },
	"E14": func(s Scale) string { return E14(s).Table() },
}

// IDs returns the experiment ids in presentation order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// F1 first, then E1..E14 numerically.
		a, b := ids[i], ids[j]
		if (a[0] == 'F') != (b[0] == 'F') {
			return a[0] == 'F'
		}
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return ids
}
