// Package ecc implements the end-to-end integrity codes that the paper's
// application-level defenses rely on (§3, §6): CRC32-C, CRC-64, Fletcher-64
// and a 64-bit mixing finalizer.
//
// Each code comes in two forms: an engine-routed form whose bitwise
// operations execute through an engine.Engine (so checksumming itself can
// be victimized by a mercurial core, as in real life), and a Golden form
// computed natively for ground truth. The engine-routed form on a healthy
// core always equals the Golden form; tests enforce this.
package ecc

import "repro/internal/engine"

// CRC-32C (Castagnoli), reflected polynomial 0x82F63B78 — the polynomial
// used by storage systems like the paper's Colossus example.
const crc32cPoly = 0x82F63B78

var crc32cTable = makeCRC32Table(crc32cPoly)

func makeCRC32Table(poly uint32) *[256]uint32 {
	var t [256]uint32
	for i := range t {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return &t
}

// CRC32C computes the Castagnoli CRC through the engine's logic/shift units.
func CRC32C(e *engine.Engine, data []byte) uint32 {
	crc := uint64(0xFFFFFFFF)
	for _, b := range data {
		idx := e.Xor64(crc, uint64(b)) & 0xFF
		crc = e.Xor64(e.Shr64(crc, 8), uint64(crc32cTable[idx]))
	}
	return uint32(crc ^ 0xFFFFFFFF)
}

// CRC32CGolden computes the same CRC natively.
func CRC32CGolden(data []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc = crc>>8 ^ crc32cTable[byte(crc)^b]
	}
	return crc ^ 0xFFFFFFFF
}

// CRC-64 with the ECMA-182 reflected polynomial.
const crc64Poly = 0xC96C5795D7870F42

var crc64Table = makeCRC64Table(crc64Poly)

func makeCRC64Table(poly uint64) *[256]uint64 {
	var t [256]uint64
	for i := range t {
		crc := uint64(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		t[i] = crc
	}
	return &t
}

// CRC64 computes the ECMA CRC-64 through the engine.
func CRC64(e *engine.Engine, data []byte) uint64 {
	crc := ^uint64(0)
	for _, b := range data {
		idx := e.Xor64(crc, uint64(b)) & 0xFF
		crc = e.Xor64(e.Shr64(crc, 8), crc64Table[idx])
	}
	return ^crc
}

// CRC64Golden computes the same CRC natively.
func CRC64Golden(data []byte) uint64 {
	crc := ^uint64(0)
	for _, b := range data {
		crc = crc>>8 ^ crc64Table[byte(crc)^b]
	}
	return ^crc
}

// Fletcher64 computes a Fletcher-style checksum over 32-bit words (zero
// padded) through the engine's adder.
func Fletcher64(e *engine.Engine, data []byte) uint64 {
	var s1, s2 uint64
	const mod = 0xFFFFFFFF
	for i := 0; i < len(data); i += 4 {
		var w uint64
		for j := 0; j < 4 && i+j < len(data); j++ {
			w |= uint64(data[i+j]) << (8 * uint(j))
		}
		s1 = e.Add64(s1, w) % mod
		s2 = e.Add64(s2, s1) % mod
	}
	return s2<<32 | s1
}

// Fletcher64Golden computes the same checksum natively.
func Fletcher64Golden(data []byte) uint64 {
	var s1, s2 uint64
	const mod = 0xFFFFFFFF
	for i := 0; i < len(data); i += 4 {
		var w uint64
		for j := 0; j < 4 && i+j < len(data); j++ {
			w |= uint64(data[i+j]) << (8 * uint(j))
		}
		s1 = (s1 + w) % mod
		s2 = (s2 + s1) % mod
	}
	return s2<<32 | s1
}

// Mix64 applies a SplitMix64-style avalanche finalizer through the engine:
// the cheapest whole-word integrity transform, used to fingerprint records.
func Mix64(e *engine.Engine, x uint64) uint64 {
	x = e.Xor64(x, e.Shr64(x, 30))
	x = e.Mul64(x, 0xbf58476d1ce4e5b9)
	x = e.Xor64(x, e.Shr64(x, 27))
	x = e.Mul64(x, 0x94d049bb133111eb)
	return e.Xor64(x, e.Shr64(x, 31))
}

// Mix64Golden is the native form of Mix64.
func Mix64Golden(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}
