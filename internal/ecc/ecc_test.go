package ecc

import (
	"hash/crc32"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

func healthyEngine() *engine.Engine {
	return engine.New(fault.NewCore("h", xrand.New(1)))
}

func TestCRC32CMatchesStdlib(t *testing.T) {
	// Our Castagnoli table must agree with hash/crc32.
	table := crc32.MakeTable(crc32.Castagnoli)
	rng := xrand.New(2)
	for _, n := range []int{0, 1, 3, 64, 1000} {
		data := make([]byte, n)
		rng.Bytes(data)
		want := crc32.Checksum(data, table)
		if got := CRC32CGolden(data); got != want {
			t.Fatalf("CRC32CGolden(%d bytes) = %#x, want %#x", n, got, want)
		}
	}
}

func TestEngineFormsMatchGoldenOnHealthyCore(t *testing.T) {
	e := healthyEngine()
	rng := xrand.New(3)
	for _, n := range []int{0, 1, 5, 8, 100, 4096} {
		data := make([]byte, n)
		rng.Bytes(data)
		if CRC32C(e, data) != CRC32CGolden(data) {
			t.Fatalf("CRC32C mismatch at n=%d", n)
		}
		if CRC64(e, data) != CRC64Golden(data) {
			t.Fatalf("CRC64 mismatch at n=%d", n)
		}
		if Fletcher64(e, data) != Fletcher64Golden(data) {
			t.Fatalf("Fletcher64 mismatch at n=%d", n)
		}
	}
}

func TestMix64MatchesGolden(t *testing.T) {
	e := healthyEngine()
	f := func(x uint64) bool { return Mix64(e, x) == Mix64Golden(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip many output bits.
	for bit := uint(0); bit < 64; bit += 7 {
		a := Mix64Golden(0x1234)
		b := Mix64Golden(0x1234 ^ 1<<bit)
		diff := a ^ b
		n := 0
		for ; diff != 0; diff &= diff - 1 {
			n++
		}
		if n < 10 {
			t.Fatalf("bit %d: only %d output bits changed", bit, n)
		}
	}
}

func TestCRCDetectsSingleBitFlip(t *testing.T) {
	rng := xrand.New(4)
	data := make([]byte, 512)
	rng.Bytes(data)
	orig32 := CRC32CGolden(data)
	orig64 := CRC64Golden(data)
	origF := Fletcher64Golden(data)
	for trial := 0; trial < 100; trial++ {
		i := rng.Intn(len(data))
		bit := byte(1) << uint(rng.Intn(8))
		data[i] ^= bit
		if CRC32CGolden(data) == orig32 {
			t.Fatal("CRC32C missed a single-bit flip")
		}
		if CRC64Golden(data) == orig64 {
			t.Fatal("CRC64 missed a single-bit flip")
		}
		if Fletcher64Golden(data) == origF {
			t.Fatal("Fletcher64 missed a single-bit flip")
		}
		data[i] ^= bit
	}
}

func TestCRCEmptyAndDistinct(t *testing.T) {
	if CRC32CGolden(nil) != 0 {
		t.Fatalf("CRC32C(nil) = %#x", CRC32CGolden(nil))
	}
	if CRC64Golden([]byte("a")) == CRC64Golden([]byte("b")) {
		t.Fatal("CRC64 collision on distinct bytes")
	}
}

func TestChecksumOnDefectiveCoreCanBeWrong(t *testing.T) {
	// The checksummer itself runs on a core; a defective ALU corrupts it.
	// This is why end-to-end checks must be verified on a *different* core.
	d := fault.Defect{
		ID: "d", Unit: fault.UnitALU, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 2,
	}
	e := engine.New(fault.NewCore("m", xrand.New(5), d))
	data := []byte("hello, mercurial world")
	if CRC32C(e, data) == CRC32CGolden(data) {
		t.Fatal("defective-core CRC matched golden; defect had no effect")
	}
}

func TestQuickFletcherOrderSensitive(t *testing.T) {
	// Unlike a plain sum, Fletcher must detect byte swaps.
	f := func(a, b byte) bool {
		if a == b {
			return true
		}
		x := Fletcher64Golden([]byte{a, 0, 0, 0, b, 0, 0, 0})
		y := Fletcher64Golden([]byte{b, 0, 0, 0, a, 0, 0, 0})
		return x != y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCRC32CEngine(b *testing.B) {
	e := healthyEngine()
	data := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CRC32C(e, data)
	}
}

func BenchmarkCRC32CGolden(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CRC32CGolden(data)
	}
}
