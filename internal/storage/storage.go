// Package storage implements a miniature Colossus-style blob store used to
// reproduce two of the paper's production patterns:
//
//   - §6: "the Colossus file system protects the write path with end-to-end
//     checksums" — writes carry a client-side CRC that the server verifies
//     after the (possibly corrupted) copy, and a background scrubber
//     detects corruption at rest.
//   - §2: "corruption affecting garbage collection, in a storage system,
//     causing live data to be lost" — the garbage collector decides
//     liveness by recomputing key fingerprints on a server core; a
//     mercurial core makes live blobs look like orphans.
//
// All data movement and fingerprint arithmetic execute through an
// engine.Engine, so a defective core corrupts this store exactly the way
// the paper describes.
package storage

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ecc"
	"repro/internal/engine"
)

// Errors returned by the store.
var (
	ErrNotFound         = errors.New("storage: blob not found")
	ErrWriteCorrupted   = errors.New("storage: write-path checksum mismatch")
	ErrChecksumMismatch = errors.New("storage: read-path checksum mismatch")
)

// chunk is one stored blob.
type chunk struct {
	data []byte
	// crc is the client-provided end-to-end checksum (write-path), kept
	// even when verification is disabled so scrubbing can use it.
	crc uint32
	// fingerprint is the namespace entry the GC checks liveness against.
	fingerprint uint64
}

// Stats tracks store health, including ground truth the experiments use.
type Stats struct {
	Puts, Gets            int
	WriteRejects          int // writes caught by the write-path check
	ReadRejects           int // reads caught by the read-path check
	ScrubHits             int // at-rest corruption found by the scrubber
	GCDeleted             int // blobs collected as orphans
	GCLostLive            int // ground truth: live blobs wrongly collected
	GCDoubleCheckRecovers int // live blobs saved by the double-check
}

// Store is the blob store. It is not safe for concurrent use; the fleet
// simulator serializes access per machine.
type Store struct {
	// EndToEnd enables write- and read-path checksum verification. With
	// it off, corrupt writes land silently — the contrast measured in
	// experiment E10.
	EndToEnd bool
	blobs    map[string]*chunk
	Stats    Stats
}

// NewStore returns an empty store.
func NewStore(endToEnd bool) *Store {
	return &Store{EndToEnd: endToEnd, blobs: map[string]*chunk{}}
}

// Len returns the number of stored blobs.
func (s *Store) Len() int { return len(s.blobs) }

// Keys returns all keys, sorted.
func (s *Store) Keys() []string {
	out := make([]string, 0, len(s.blobs))
	for k := range s.blobs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// keyFingerprint computes the namespace fingerprint for a key through the
// given engine. The GC recomputes this on its own core; a mismatch is how
// the §2 GC incident happens.
func keyFingerprint(e *engine.Engine, key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = e.Xor64(h, uint64(key[i]))
		h = e.Mul64(h, 1099511628211)
	}
	return ecc.Mix64(e, h)
}

// Put stores data under key. The server-side copy goes through e (the
// serving core); clientCRC is the checksum the client computed over its own
// buffer. With EndToEnd enabled, the server verifies the stored bytes
// against clientCRC and rejects corrupted writes with ErrWriteCorrupted
// (the client then retries, typically landing on another server).
func (s *Store) Put(e *engine.Engine, key string, data []byte, clientCRC uint32) error {
	s.Stats.Puts++
	stored := make([]byte, len(data))
	e.Copy(stored, data)
	if s.EndToEnd {
		if ecc.CRC32C(e, stored) != clientCRC {
			s.Stats.WriteRejects++
			return ErrWriteCorrupted
		}
	}
	s.blobs[key] = &chunk{
		data:        stored,
		crc:         clientCRC,
		fingerprint: keyFingerprint(e, key),
	}
	return nil
}

// PutFromClient is the common client path: it computes the CRC natively
// (on the client's own, presumed-healthy machine) and calls Put.
func (s *Store) PutFromClient(e *engine.Engine, key string, data []byte) error {
	return s.Put(e, key, data, ecc.CRC32CGolden(data))
}

// Get reads the blob through e. With EndToEnd enabled the read path
// verifies the checksum and reports corruption instead of returning bad
// data.
func (s *Store) Get(e *engine.Engine, key string) ([]byte, error) {
	s.Stats.Gets++
	c, ok := s.blobs[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(c.data))
	e.Copy(out, c.data)
	if s.EndToEnd {
		if ecc.CRC32C(e, out) != c.crc {
			s.Stats.ReadRejects++
			return nil, fmt.Errorf("%w: key %q", ErrChecksumMismatch, key)
		}
	}
	return out, nil
}

// Delete removes a blob (namespace unlink; the chunk lingers for GC in
// real systems — here removal is immediate and GC handles only orphan
// *detection* bugs).
func (s *Store) Delete(key string) {
	delete(s.blobs, key)
}

// Scrub verifies every blob at rest through e and returns the keys whose
// stored bytes no longer match their checksum — §3's "scrub storage to
// detect corruption-at-rest".
func (s *Store) Scrub(e *engine.Engine) []string {
	var bad []string
	for _, k := range s.Keys() {
		c := s.blobs[k]
		if ecc.CRC32C(e, c.data) != c.crc {
			bad = append(bad, k)
			s.Stats.ScrubHits++
		}
	}
	return bad
}

// CorruptAtRest flips a bit in a stored blob — a test/experiment hook
// standing in for storage-medium corruption (which the paper contrasts
// with CEEs).
func (s *Store) CorruptAtRest(key string, bit uint) bool {
	c, ok := s.blobs[key]
	if !ok || len(c.data) == 0 {
		return false
	}
	c.data[int(bit/8)%len(c.data)] ^= 1 << (bit % 8)
	return true
}

// GCOptions configures a garbage-collection pass.
type GCOptions struct {
	// Live is the namespace: keys that must be preserved.
	Live map[string]bool
	// DoubleCheck recomputes a mismatching fingerprint a second time
	// before collecting — the cheap application-level mitigation that
	// defeats intermittent defects.
	DoubleCheck bool
}

// GC collects blobs whose key is absent from the namespace. Liveness of
// present keys is confirmed by recomputing the key fingerprint on the GC's
// core (e): if the recomputation mismatches the stored fingerprint, the GC
// concludes the chunk is an orphan of a renamed/deleted file and collects
// it. On a mercurial core this wrongly collects live data — the §2
// incident. Returns the keys deleted.
func (s *Store) GC(e *engine.Engine, opts GCOptions) []string {
	var deleted []string
	for _, k := range s.Keys() {
		c := s.blobs[k]
		if !opts.Live[k] {
			// True orphan.
			delete(s.blobs, k)
			deleted = append(deleted, k)
			s.Stats.GCDeleted++
			continue
		}
		fp := keyFingerprint(e, k)
		if fp == c.fingerprint {
			continue
		}
		if opts.DoubleCheck {
			if keyFingerprint(e, k) == c.fingerprint {
				// Second opinion saved the blob: the first
				// computation was the corrupted one.
				s.Stats.GCDoubleCheckRecovers++
				continue
			}
		}
		delete(s.blobs, k)
		deleted = append(deleted, k)
		s.Stats.GCDeleted++
		s.Stats.GCLostLive++
	}
	return deleted
}
