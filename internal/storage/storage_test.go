package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/xrand"
)

func healthyEngine(seed uint64) *engine.Engine {
	return engine.New(fault.NewCore("h", xrand.New(seed)))
}

func copyDefectEngine(seed uint64, rate float64) *engine.Engine {
	d := fault.Defect{ID: "d", Unit: fault.UnitVec, BaseRate: rate,
		Kind: fault.CorruptBitFlip, BitPos: 5}
	return engine.New(fault.NewCore("m", xrand.New(seed), d))
}

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore(true)
	e := healthyEngine(1)
	data := []byte("hello colossus")
	if err := s.PutFromClient(e, "k1", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(e, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestGetNotFound(t *testing.T) {
	s := NewStore(true)
	if _, err := s.Get(healthyEngine(2), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWritePathChecksumRejectsCorruptWrite(t *testing.T) {
	s := NewStore(true)
	e := copyDefectEngine(3, 1) // every copy op corrupts
	err := s.PutFromClient(e, "k", make([]byte, 256))
	if !errors.Is(err, ErrWriteCorrupted) {
		t.Fatalf("err = %v", err)
	}
	if s.Stats.WriteRejects != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
	if s.Len() != 0 {
		t.Fatal("corrupt write was stored")
	}
}

func TestWithoutEndToEndCorruptWriteLandsSilently(t *testing.T) {
	s := NewStore(false)
	bad := copyDefectEngine(4, 1)
	data := make([]byte, 256)
	if err := s.PutFromClient(bad, "k", data); err != nil {
		t.Fatal(err)
	}
	// Read through a healthy core with checks off: silent wrong bytes.
	got, err := s.Get(healthyEngine(5), "k")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Fatal("expected silent corruption")
	}
}

func TestReadPathChecksumCatchesCorruptRead(t *testing.T) {
	s := NewStore(true)
	if err := s.PutFromClient(healthyEngine(6), "k", make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	bad := copyDefectEngine(7, 1)
	if _, err := s.Get(bad, "k"); !errors.Is(err, ErrChecksumMismatch) {
		t.Fatalf("err = %v", err)
	}
	if s.Stats.ReadRejects != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
}

func TestRetryOnAnotherServerSucceeds(t *testing.T) {
	// The production pattern: a write rejected by the end-to-end check is
	// retried and lands via a healthy core.
	s := NewStore(true)
	bad := copyDefectEngine(8, 1)
	data := []byte("retry me please, this needs >8 bytes")
	if err := s.PutFromClient(bad, "k", data); err == nil {
		t.Fatal("corrupt write accepted")
	}
	if err := s.PutFromClient(healthyEngine(9), "k", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(healthyEngine(10), "k")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("retry readback: %v", err)
	}
}

func TestScrubFindsAtRestCorruption(t *testing.T) {
	s := NewStore(true)
	e := healthyEngine(11)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.PutFromClient(e, k, []byte("data for "+k)); err != nil {
			t.Fatal(err)
		}
	}
	if bad := s.Scrub(e); len(bad) != 0 {
		t.Fatalf("clean store scrub found %v", bad)
	}
	if !s.CorruptAtRest("b", 13) {
		t.Fatal("corruption hook failed")
	}
	bad := s.Scrub(e)
	if len(bad) != 1 || bad[0] != "b" {
		t.Fatalf("scrub found %v", bad)
	}
	if s.Stats.ScrubHits != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
}

func TestCorruptAtRestMissingKey(t *testing.T) {
	s := NewStore(true)
	if s.CorruptAtRest("missing", 0) {
		t.Fatal("corrupted a missing key")
	}
}

func TestGCCollectsOrphansOnly(t *testing.T) {
	s := NewStore(true)
	e := healthyEngine(12)
	for _, k := range []string{"live1", "live2", "orphan1", "orphan2"} {
		if err := s.PutFromClient(e, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	deleted := s.GC(e, GCOptions{Live: map[string]bool{"live1": true, "live2": true}})
	if len(deleted) != 2 {
		t.Fatalf("deleted %v", deleted)
	}
	if s.Stats.GCLostLive != 0 {
		t.Fatalf("healthy GC lost live data: %+v", s.Stats)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestGCOnMercurialCoreLosesLiveData(t *testing.T) {
	// The §2 incident: a defective core running GC wrongly collects live
	// blobs. The fingerprint math uses MUL; corrupt it deterministically.
	s := NewStore(true)
	e := healthyEngine(13)
	live := map[string]bool{}
	for i := 0; i < 20; i++ {
		k := string(rune('a' + i))
		live[k] = true
		if err := s.PutFromClient(e, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	bad := engine.New(fault.NewCore("gc", xrand.New(14), fault.Defect{
		ID: "d", Unit: fault.UnitMul, Deterministic: true,
		Kind: fault.CorruptBitFlip, BitPos: 7}))
	deleted := s.GC(bad, GCOptions{Live: live})
	if len(deleted) == 0 || s.Stats.GCLostLive == 0 {
		t.Fatal("mercurial GC did not lose live data")
	}
}

func TestGCDoubleCheckDefeatsIntermittentDefect(t *testing.T) {
	// With an intermittent (low-rate) defect, recomputing the fingerprint
	// on mismatch saves most live blobs.
	mkStore := func() (*Store, map[string]bool) {
		s := NewStore(true)
		e := healthyEngine(15)
		live := map[string]bool{}
		for i := 0; i < 200; i++ {
			k := string(rune('a'+i%26)) + string(rune('0'+i/26))
			live[k] = true
			if err := s.PutFromClient(e, k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		return s, live
	}
	mkBad := func(seed uint64) *engine.Engine {
		return engine.New(fault.NewCore("gc", xrand.New(seed), fault.Defect{
			ID: "d", Unit: fault.UnitMul, BaseRate: 0.002,
			Kind: fault.CorruptBitFlip, BitPos: 9}))
	}

	s1, live1 := mkStore()
	s1.GC(mkBad(16), GCOptions{Live: live1})
	lostWithout := s1.Stats.GCLostLive

	s2, live2 := mkStore()
	s2.GC(mkBad(16), GCOptions{Live: live2, DoubleCheck: true})
	lostWith := s2.Stats.GCLostLive

	if lostWithout == 0 {
		t.Skip("defect never fired at this seed; raise rate")
	}
	if lostWith >= lostWithout {
		t.Fatalf("double-check did not help: %d -> %d", lostWithout, lostWith)
	}
	if s2.Stats.GCDoubleCheckRecovers == 0 {
		t.Fatalf("no recoveries recorded: %+v", s2.Stats)
	}
}

func TestDeleteThenGet(t *testing.T) {
	s := NewStore(true)
	e := healthyEngine(17)
	s.PutFromClient(e, "k", []byte("x"))
	s.Delete("k")
	if _, err := s.Get(e, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeysSorted(t *testing.T) {
	s := NewStore(true)
	e := healthyEngine(18)
	for _, k := range []string{"zz", "aa", "mm"} {
		s.PutFromClient(e, k, []byte(k))
	}
	keys := s.Keys()
	if keys[0] != "aa" || keys[1] != "mm" || keys[2] != "zz" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestStatsCounting(t *testing.T) {
	s := NewStore(true)
	e := healthyEngine(19)
	s.PutFromClient(e, "a", []byte("1"))
	s.PutFromClient(e, "b", []byte("2"))
	s.Get(e, "a")
	if s.Stats.Puts != 2 || s.Stats.Gets != 1 {
		t.Fatalf("stats = %+v", s.Stats)
	}
}

func BenchmarkPutGetEndToEnd(b *testing.B) {
	s := NewStore(true)
	e := healthyEngine(1)
	data := make([]byte, 4096)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		s.PutFromClient(e, "k", data)
		s.Get(e, "k")
	}
}
