package report

// Overload-hardened batch ingest. Reporters ship buffered signals as one
// POST /v1/reports Batch tagged (source, seq). The server either ingests
// the batch synchronously or, with EnableQueue, parks it on a bounded
// queue drained by a background goroutine. When the queue is full the
// server sheds load explicitly — 429 plus Retry-After — instead of
// buffering without bound; the whole point of the report service is to
// stay up while a fleet-wide CEE incident (or a software bug misread as
// one) floods it with signals. Retries are cheap because delivery is
// idempotent: a (source, seq) pair is ingested at most once, and a
// re-delivery of a batch still sitting in the queue replaces the queued
// copy (drop-oldest-duplicate) rather than consuming more capacity.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/detect"
	"repro/internal/obs"
)

const (
	// maxBatchBytes caps a POST /v1/reports body.
	maxBatchBytes = 1 << 20
	// DefaultQueueCapacity is the ingest-queue size, in signals, that
	// EnableQueue uses when the caller passes 0.
	DefaultQueueCapacity = 65536
	// dedupSeqWindow is how many sequence numbers per source the
	// idempotency window remembers. Seqs older than maxSeq-window are
	// treated as duplicates: a reporter that far behind has long since
	// given up on those batches, and remembering every seq forever would
	// grow without bound.
	dedupSeqWindow = 1024
	// defaultRetryAfterSec is the Retry-After hint on shed responses.
	defaultRetryAfterSec = 1
)

// Batch is the wire form of POST /v1/reports: a buffer of reports tagged
// with the reporter's identity and a per-source sequence number. Source
// and Seq are optional; when either is zero the batch bypasses the
// idempotency window (every delivery ingests).
type Batch struct {
	Source  string   `json:"source,omitempty"`
	Seq     uint64   `json:"seq,omitempty"`
	Reports []Report `json:"reports"`
}

// BatchAck is the success body for POST /v1/reports.
type BatchAck struct {
	// Status is "accepted" (ingested synchronously), "deferred" (queued),
	// "replaced" (superseded a queued copy of the same batch), or
	// "duplicate" (already ingested; nothing to do).
	Status string `json:"status"`
	// Accepted is the number of reports taken from this delivery.
	Accepted int `json:"accepted"`
}

// batchKey identifies one batch for idempotency.
type batchKey struct {
	source string
	seq    uint64
}

func (k batchKey) tracked() bool { return k.source != "" && k.seq != 0 }

// dedupWindow remembers recently ingested (source, seq) pairs. The
// zero value is ready to use.
type dedupWindow struct {
	mu      sync.Mutex
	sources map[string]*sourceWindow
}

type sourceWindow struct {
	maxSeq uint64
	seen   map[uint64]struct{}
}

// seen reports whether key was already accepted (or is too old to tell).
func (d *dedupWindow) isDup(key batchKey) bool {
	if !key.tracked() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.sources[key.source]
	if w == nil {
		return false
	}
	if w.maxSeq > dedupSeqWindow && key.seq <= w.maxSeq-dedupSeqWindow {
		return true
	}
	_, ok := w.seen[key.seq]
	return ok
}

// mark records key as accepted. Call only after isDup returned false and
// the batch was committed (queued or ingested) — a shed batch must stay
// unmarked so its retry is not mistaken for a duplicate.
func (d *dedupWindow) mark(key batchKey) {
	if !key.tracked() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.sources == nil {
		d.sources = map[string]*sourceWindow{}
	}
	w := d.sources[key.source]
	if w == nil {
		w = &sourceWindow{seen: map[uint64]struct{}{}}
		d.sources[key.source] = w
	}
	w.seen[key.seq] = struct{}{}
	if key.seq > w.maxSeq {
		w.maxSeq = key.seq
	}
	if len(w.seen) > dedupSeqWindow {
		for s := range w.seen {
			if w.maxSeq > dedupSeqWindow && s <= w.maxSeq-dedupSeqWindow {
				delete(w.seen, s)
			}
		}
	}
}

// queuedBatch is one parked batch.
type queuedBatch struct {
	key  batchKey
	sigs []detect.Signal
}

// ingestQueue is the bounded buffer between the HTTP handlers and the
// tracker, drained FIFO by one background goroutine.
type ingestQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	capacity int // in signals
	depth    int // queued signals
	buf      []queuedBatch
	base     uint64              // absolute index of buf[0]
	index    map[batchKey]uint64 // absolute position of each tracked queued batch
	closed   bool
	done     chan struct{}
}

func newIngestQueue(capacity int) *ingestQueue {
	q := &ingestQueue{
		capacity: capacity,
		index:    map[batchKey]uint64{},
		done:     make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// offer decides one delivery's fate under a single lock: replace a queued
// duplicate, reject an already-ingested duplicate, shed on overflow, or
// enqueue. Returns the BatchAck status ("shed" meaning rejected).
func (q *ingestQueue) offer(key batchKey, sigs []detect.Signal, dedup *dedupWindow) string {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return "shed"
	}
	if key.tracked() {
		if pos, ok := q.index[key]; ok {
			// Drop-oldest-duplicate: the retry supersedes the queued copy
			// without consuming more capacity.
			i := pos - q.base
			q.depth += len(sigs) - len(q.buf[i].sigs)
			q.buf[i].sigs = sigs
			return "replaced"
		}
		if dedup.isDup(key) {
			return "duplicate"
		}
	}
	if q.depth+len(sigs) > q.capacity {
		return "shed"
	}
	dedup.mark(key)
	q.buf = append(q.buf, queuedBatch{key: key, sigs: sigs})
	if key.tracked() {
		q.index[key] = q.base + uint64(len(q.buf)) - 1
	}
	q.depth += len(sigs)
	q.cond.Signal()
	return "deferred"
}

// run drains the queue into the server until Close. It is the only
// consumer, so batches reach the tracker in arrival order.
func (q *ingestQueue) run(s *Server) {
	defer close(q.done)
	for {
		q.mu.Lock()
		for len(q.buf) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.buf) == 0 {
			q.mu.Unlock()
			return
		}
		b := q.buf[0]
		q.buf[0] = queuedBatch{} // release the popped batch for GC
		q.buf = q.buf[1:]
		q.base++
		if b.key.tracked() {
			delete(q.index, b.key)
		}
		q.depth -= len(b.sigs)
		depth := q.depth
		q.mu.Unlock()
		s.reg.Gauge("ceereport_queue_depth").Set(float64(depth))
		s.IngestBatch(b.sigs)
	}
}

// close stops intake, lets the drainer finish the backlog, and waits.
func (q *ingestQueue) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		<-q.done
		return
	}
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	<-q.done
}

// QueueDepth returns the number of queued signals (0 without a queue).
func (s *Server) QueueDepth() int {
	if s.queue == nil {
		return 0
	}
	s.queue.mu.Lock()
	defer s.queue.mu.Unlock()
	return s.queue.depth
}

// EnableQueue switches POST /v1/reports from synchronous ingest to a
// bounded background queue of the given capacity (in signals; 0 means
// DefaultQueueCapacity) and starts the drainer. Call before the server
// accepts traffic, and Close on shutdown to flush the backlog.
func (s *Server) EnableQueue(capacity int) {
	if capacity <= 0 {
		capacity = DefaultQueueCapacity
	}
	s.queue = newIngestQueue(capacity)
	go s.queue.run(s)
}

// Close flushes and stops the ingest queue, if any. The server must not
// receive further traffic after Close.
func (s *Server) Close() {
	if s.queue != nil {
		s.queue.close()
	}
}

// QueueCapacity returns the queue's capacity in signals (0 without a
// queue). Capacity is fixed at EnableQueue time.
func (s *Server) QueueCapacity() int {
	if s.queue == nil {
		return 0
	}
	return s.queue.capacity
}

// retryAfterSec is the Retry-After hint attached to shed responses.
func (s *Server) retryAfterSec() int {
	if s.RetryAfterSec > 0 {
		return s.RetryAfterSec
	}
	return defaultRetryAfterSec
}

// handleReports is POST /v1/reports: decode, validate every report with
// the single-report rules, then commit the whole batch atomically —
// queue it, ingest it, or shed it. Partial batches never happen; a 4xx
// means nothing was taken, a 2xx means the entire batch was.
func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.rejected("method")
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBatchBytes)
	dec := json.NewDecoder(body)
	var batch Batch
	if err := dec.Decode(&batch); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.rejected("too-large")
			writeError(w, http.StatusRequestEntityTooLarge,
				"batch exceeds %d bytes", maxBatchBytes)
			return
		}
		s.rejected("malformed")
		writeError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		s.rejected("trailing")
		writeError(w, http.StatusBadRequest, "trailing data after batch object")
		return
	}
	if len(batch.Reports) == 0 {
		s.rejected("empty-batch")
		writeError(w, http.StatusBadRequest, "reports required")
		return
	}
	sigs := make([]detect.Signal, 0, len(batch.Reports))
	for i, rep := range batch.Reports {
		sig, reason, msg := s.signalFromReport(rep)
		if reason != "" {
			s.rejected(reason)
			writeError(w, http.StatusBadRequest, "report %d: %s", i, msg)
			return
		}
		sigs = append(sigs, sig)
	}
	key := batchKey{source: batch.Source, seq: batch.Seq}

	status := "accepted"
	if s.queue != nil {
		status = s.queue.offer(key, sigs, &s.dedup)
	} else if s.dedup.isDup(key) {
		status = "duplicate"
	} else {
		s.dedup.mark(key)
		s.IngestBatch(sigs)
	}
	s.reg.Counter("ceereport_batches_total", obs.L("result", status)).Inc()

	switch status {
	case "shed":
		s.reg.Counter("ceereport_signals_shed_total").Add(float64(len(sigs)))
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSec()))
		writeError(w, http.StatusTooManyRequests,
			"ingest queue full; retry after %ds", s.retryAfterSec())
	case "duplicate":
		writeJSONStatus(w, http.StatusOK, BatchAck{Status: status})
	case "deferred", "replaced":
		s.reg.Counter("ceereport_signals_deferred_total").Add(float64(len(sigs)))
		s.reg.Gauge("ceereport_queue_depth").Set(float64(s.QueueDepth()))
		writeJSONStatus(w, http.StatusAccepted, BatchAck{Status: status, Accepted: len(sigs)})
	default: // accepted synchronously
		writeJSONStatus(w, http.StatusAccepted, BatchAck{Status: status, Accepted: len(sigs)})
	}
}

// writeJSONStatus sends a JSON body with an explicit status code.
func writeJSONStatus(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
