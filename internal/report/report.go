// Package report implements §6's "simple RPC service that allows an
// application to report a suspect core or CPU": an HTTP+JSON server that
// feeds a detect.Tracker, plus the matching client used by applications
// and infrastructure daemons.
package report

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detect"
	"repro/internal/lifecycle"
	"repro/internal/obs"
	"repro/internal/simtime"
	"repro/internal/xrand"
)

// maxReportBytes caps a POST /v1/report body. A Report is a few hundred
// bytes; 64 KiB leaves generous room for Detail while preventing an
// unbounded body from exhausting server memory.
const maxReportBytes = 64 << 10

// Report is the wire form of one suspect-core report.
type Report struct {
	Machine string  `json:"machine"`
	Core    int     `json:"core"` // -1 when unattributed
	Kind    string  `json:"kind"`
	Detail  string  `json:"detail,omitempty"`
	TimeSec float64 `json:"time_sec"`
}

// SuspectJSON is the wire form of one nominated suspect.
type SuspectJSON struct {
	Machine string  `json:"machine"`
	Core    int     `json:"core"`
	Reports int     `json:"reports"`
	PValue  float64 `json:"p_value"`
	Score   float64 `json:"score"`
}

// StatsJSON summarizes the service state.
type StatsJSON struct {
	TotalReports int `json:"total_reports"`
	Machines     int `json:"machines"`
	Suspects     int `json:"suspects"`
}

// ErrorJSON is the error envelope every non-2xx API response carries.
type ErrorJSON struct {
	Error string `json:"error"`
}

// HealthJSON is the /v1/healthz response body.
type HealthJSON struct {
	Status string `json:"status"`
}

// ReadyJSON is the /v1/readyz response body. Liveness (healthz) answers
// "is the process up"; readiness answers "can it durably accept work":
// a daemon whose WAL is failing appends, or whose ingest queue is full
// and shedding, is alive but not ready.
type ReadyJSON struct {
	Status string     `json:"status"` // "ok" or "degraded"
	WAL    ReadyWAL   `json:"wal"`
	Queue  ReadyQueue `json:"queue"`
}

// ReadyWAL is the WAL-writability leg of the readiness answer.
type ReadyWAL struct {
	Enabled bool   `json:"enabled"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// ReadyQueue is the ingest-queue-saturation leg of the readiness answer.
type ReadyQueue struct {
	Enabled   bool `json:"enabled"`
	Depth     int  `json:"depth"`
	Capacity  int  `json:"capacity"`
	Saturated bool `json:"saturated"`
}

// kindFromString maps wire kinds to detect.SignalKind. Unknown kinds map
// to SigAppError so that forward-compatible clients degrade gracefully,
// but known is false so the server can count the coercion — a fleet of
// new-version clients emitting a kind this server predates should be
// visible in metrics, not silently folded into app-error.
func kindFromString(s string) (kind detect.SignalKind, known bool) {
	switch s {
	case "crash":
		return detect.SigCrash, true
	case "mce":
		return detect.SigMCE, true
	case "sanitizer":
		return detect.SigSanitizer, true
	case "app-error":
		return detect.SigAppError, true
	case "screen-fail":
		return detect.SigScreenFail, true
	case "user-report":
		return detect.SigUserReport, true
	default:
		return detect.SigAppError, false
	}
}

// Server is the suspect-report collection service. Ingest scales across
// concurrent producers: the tracker is sharded by machine hash, the
// report total is atomic, and the only remaining serialization point is
// the optional OnSignal callback.
type Server struct {
	tracker *detect.ShardedTracker
	total   atomic.Int64
	reg     *obs.Registry
	// OnSignal, if non-nil, observes every accepted signal (used by the
	// fleet simulator to couple the service to its detection loop). Set it
	// before the server accepts traffic; invocations are serialized.
	OnSignal func(detect.Signal)
	// cbMu serializes OnSignal across concurrent ingest paths.
	cbMu sync.Mutex

	// RetryAfterSec is the Retry-After hint, in seconds, attached to shed
	// (429) responses. 0 means 1 second. Set before accepting traffic.
	RetryAfterSec int

	// dedup is the (source, seq) batch idempotency window.
	dedup dedupWindow
	// queue, when non-nil, defers batch ingest to a background drainer
	// with explicit load shedding. See EnableQueue.
	queue *ingestQueue

	// life, when non-nil, is the machine-lifecycle control plane exposed
	// under /v1/machines. See SetLifecycle.
	life *lifecycle.Manager
}

// NewServer returns a server feeding a tracker shaped for machines with
// coresPerMachine cores. The server owns a metrics registry (exposed at
// GET /v1/metrics and via Metrics) counting accepted signals by kind and
// rejected requests by reason.
func NewServer(coresPerMachine int) *Server {
	return &Server{
		tracker: detect.NewShardedTracker(coresPerMachine, 0),
		reg:     obs.NewRegistry(),
	}
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetMetrics replaces the server's registry with a shared one — the fleet
// simulator uses this to aggregate the whole stack's metrics in a single
// registry. Must be called before the server starts accepting traffic.
func (s *Server) SetMetrics(reg *obs.Registry) {
	if reg != nil {
		s.reg = reg
	}
}

// accepted counts one accepted signal by kind.
func (s *Server) accepted(kind detect.SignalKind) {
	s.reg.Counter("ceereport_signals_accepted_total", obs.L("kind", kind.String())).Inc()
}

// rejected counts one rejected /v1/report request by reason.
func (s *Server) rejected(reason string) {
	s.reg.Counter("ceereport_reports_rejected_total", obs.L("reason", reason)).Inc()
}

// Handler returns the HTTP handler exposing the service API:
//
//	POST /v1/report   — submit one Report (body capped at 64 KiB)
//	POST /v1/reports  — submit a Batch (body capped at 1 MiB); may answer
//	                    429 + Retry-After under overload
//	GET  /v1/suspects — list nominated suspects
//	GET  /v1/stats    — service statistics
//	GET  /v1/healthz  — liveness probe, {"status":"ok"}
//	GET  /v1/readyz   — readiness probe: WAL writability and ingest-queue
//	     saturation; 503 with JSON detail when degraded
//	GET  /v1/metrics  — Prometheus text exposition of the service metrics
//	     /v1/machines — lifecycle admin API (only when SetLifecycle was
//	                    called; see admin.go)
//
// Every error response carries the JSON envelope {"error":"..."} with the
// matching HTTP status code (400 for malformed or incomplete reports, 405
// for a wrong method, 413 for an oversized body, 429 when load is shed).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/report", s.handleReport)
	mux.HandleFunc("/v1/reports", s.handleReports)
	mux.HandleFunc("/v1/suspects", s.handleSuspects)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/v1/metrics", s.handleMetrics)
	if s.life != nil {
		s.registerAdmin(mux)
	}
	return mux
}

// writeError sends the API's uniform JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, HealthJSON{Status: "ok"})
}

// handleReadyz is GET /v1/readyz: 200 when the daemon can durably accept
// reports, 503 with the failing detail otherwise. Distinct from healthz —
// a load balancer should stop routing to a daemon whose WAL append path
// is broken even though the process itself is fine.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ready := ReadyJSON{Status: "ok"}
	if s.life != nil && s.life.HasWAL() {
		ready.WAL.Enabled = true
		if err := s.life.WALHealth(); err != nil {
			ready.WAL.Error = err.Error()
		} else {
			ready.WAL.Healthy = true
		}
	}
	if cap := s.QueueCapacity(); cap > 0 {
		ready.Queue.Enabled = true
		ready.Queue.Capacity = cap
		ready.Queue.Depth = s.QueueDepth()
		ready.Queue.Saturated = ready.Queue.Depth >= cap
	}
	if (ready.WAL.Enabled && !ready.WAL.Healthy) || ready.Queue.Saturated {
		ready.Status = "degraded"
		writeJSONStatus(w, http.StatusServiceUnavailable, ready)
		return
	}
	writeJSON(w, ready)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.rejected("method")
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Bound the body before touching it: an unbounded (or lying
	// Content-Length) request must not buffer arbitrary bytes in memory.
	body := http.MaxBytesReader(w, r.Body, maxReportBytes)
	dec := json.NewDecoder(body)
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.rejected("too-large")
			writeError(w, http.StatusRequestEntityTooLarge,
				"report exceeds %d bytes", maxReportBytes)
			return
		}
		s.rejected("malformed")
		writeError(w, http.StatusBadRequest, "bad report: %v", err)
		return
	}
	// Reject trailing JSON values or garbage after the report object —
	// silently ignoring it would mask client framing bugs.
	if _, err := dec.Token(); err != io.EOF {
		s.rejected("trailing")
		writeError(w, http.StatusBadRequest, "trailing data after report object")
		return
	}
	sig, reason, msg := s.signalFromReport(rep)
	if reason != "" {
		s.rejected(reason)
		writeError(w, http.StatusBadRequest, "%s", msg)
		return
	}
	s.Ingest(sig)
	w.WriteHeader(http.StatusAccepted)
}

// signalFromReport validates one wire report and converts it to a signal.
// On rejection, reason is the metrics label and msg the client-facing
// explanation — shared by the single-report and batch handlers so both
// enforce the identical contract.
func (s *Server) signalFromReport(rep Report) (sig detect.Signal, reason, msg string) {
	if rep.Machine == "" {
		return sig, "missing-machine", "machine required"
	}
	if rep.Core < -1 {
		return sig, "bad-core",
			fmt.Sprintf("core must be >= -1 (-1 = unattributed), got %d", rep.Core)
	}
	kind, known := kindFromString(rep.Kind)
	if !known {
		s.reg.Counter("ceereport_signals_unknown_kind_total").Inc()
	}
	return detect.Signal{
		Machine: rep.Machine,
		Core:    rep.Core,
		Kind:    kind,
		Time:    simtime.Time(rep.TimeSec),
		Detail:  rep.Detail,
	}, "", ""
}

// notify serializes OnSignal invocations for a buffer of accepted signals.
func (s *Server) notify(sigs []detect.Signal) {
	cb := s.OnSignal
	if cb == nil {
		return
	}
	s.cbMu.Lock()
	defer s.cbMu.Unlock()
	for _, sig := range sigs {
		cb(sig)
	}
}

// Ingest adds a signal directly (the in-process path used by simulators;
// the HTTP path funnels here too).
func (s *Server) Ingest(sig detect.Signal) {
	s.tracker.Add(sig)
	s.total.Add(1)
	s.accepted(sig.Kind)
	s.notify([]detect.Signal{sig})
}

// IngestBatch adds a buffer of signals, grouped by tracker shard — the
// merge path for producers (parallel fleet shards, the ingest queue) that
// accumulate signals privately and hand them over in deterministic order.
func (s *Server) IngestBatch(sigs []detect.Signal) {
	if len(sigs) == 0 {
		return
	}
	s.tracker.AddBatch(sigs)
	s.total.Add(int64(len(sigs)))
	for _, sig := range sigs {
		s.accepted(sig.Kind)
	}
	s.notify(sigs)
}

// Suspects returns the current nominations.
func (s *Server) Suspects() []detect.Suspect {
	return s.tracker.Suspects()
}

// Forget drops tracker state for a machine (after drain/repair).
func (s *Server) Forget(machine string) {
	s.tracker.Forget(machine)
}

// ForgetCore drops tracker state for one core (after quarantine).
func (s *Server) ForgetCore(machine string, core int) {
	s.tracker.ForgetCore(machine, core)
}

// TotalReports returns the number of accepted reports.
func (s *Server) TotalReports() int {
	return int(s.total.Load())
}

func (s *Server) handleSuspects(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	sus := s.Suspects()
	out := make([]SuspectJSON, len(sus))
	for i, x := range sus {
		out[i] = SuspectJSON{
			Machine: x.Machine, Core: x.Core, Reports: x.Reports,
			PValue: x.PValue, Score: x.Score(),
		}
	}
	writeJSON(w, out)
}

// ReportingMachines returns the number of distinct machines that have
// ever submitted a report — including machines whose reports never
// concentrated into a nomination.
func (s *Server) ReportingMachines() int {
	return s.tracker.ReportingMachines()
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	// Machines counts every distinct reporting machine, not just those
	// with a current nomination — a fleet of one-report machines is load
	// the operator needs to see even though it nominates nothing.
	writeJSON(w, StatsJSON{
		TotalReports: s.TotalReports(),
		Machines:     s.ReportingMachines(),
		Suspects:     len(s.Suspects()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	// Refresh the scrape-time gauges before rendering.
	total := s.TotalReports()
	machines := s.ReportingMachines()
	suspects := len(s.Suspects())
	s.reg.Gauge("ceereport_reports_total").Set(float64(total))
	s.reg.Gauge("ceereport_reporting_machines").Set(float64(machines))
	s.reg.Gauge("ceereport_suspects").Set(float64(suspects))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client default retry/timeout policy.
const (
	defaultClientTimeout = 5 * time.Second
	defaultMaxAttempts   = 3
	defaultRetryBackoff  = 50 * time.Millisecond
	defaultMaxRetryAfter = 5 * time.Second
	// maxRetryBackoff caps the exponential retry delay: past this point
	// more waiting is just unavailability, not politeness.
	maxRetryBackoff = 30 * time.Second
)

// defaultHTTPClient bounds every call a zero-value Client makes. The old
// fallback to http.DefaultClient had no timeout, so a hung ceereportd
// blocked reporters forever — exactly the coupling a suspect-report path
// must not have to the thing it is reporting about.
var defaultHTTPClient = &http.Client{Timeout: defaultClientTimeout}

// Client talks to a report server over HTTP. Transport-level failures
// (connection refused, resets, timeouts) and explicit backpressure
// responses (429, 503) are retried with jittered exponential backoff up
// to MaxAttempts, honoring the server's Retry-After hint (capped by
// MaxRetryAfter); other HTTP status errors are not retried — the request
// was delivered and answered. Every method has a Context variant that
// threads cancellation and deadlines through requests and retry sleeps.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a shared client with a 5s timeout.
	HTTPClient *http.Client
	// MaxAttempts bounds total tries per call (0 means 3; 1 disables
	// retry).
	MaxAttempts int
	// RetryBackoff is the base delay before the first retry, doubled per
	// further retry with up to 50% random jitter (0 means 50ms).
	RetryBackoff time.Duration
	// MaxRetryAfter caps how much of a server Retry-After hint is
	// honored, so a hostile or misconfigured server cannot park clients
	// indefinitely (0 means 5s).
	MaxRetryAfter time.Duration
	// JitterSeed seeds the client's private retry-jitter stream; 0 (the
	// default) seeds from the clock at first use, so independent clients
	// de-synchronize. Tests set it for reproducible backoff schedules.
	JitterSeed uint64
	// sleep is a test seam; nil means a context-aware timer wait.
	sleep func(time.Duration)

	// jitter is the client's own locked random source. The old code drew
	// from the package-global math/rand, which made retry schedules
	// irreproducible in tests and serialized every retrying client in the
	// process on one global lock. A Client must not be copied after its
	// first retry.
	jitterMu sync.Mutex
	jitter   *xrand.RNG
}

// jitterDelay returns a uniform duration in [0, half] from the client's
// private stream, lazily seeding it on first use.
func (c *Client) jitterDelay(half time.Duration) time.Duration {
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	if c.jitter == nil {
		seed := c.JitterSeed
		if seed == 0 {
			seed = uint64(time.Now().UnixNano())
		}
		c.jitter = xrand.New(seed)
	}
	return time.Duration(c.jitter.Uint64n(uint64(half) + 1))
}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

// wait sleeps d or returns early with the context's error.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		c.sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoffDelay returns base doubled once per completed retry, clamped at
// max. The doubling is stepwise with an overflow check — the old
// `backoff << (attempt-1)` overflowed time.Duration (going negative, i.e.
// no wait at all) once a large MaxAttempts pushed the shift past 63 bits.
func backoffDelay(base, max time.Duration, retry int) time.Duration {
	d := base
	for i := 0; i < retry && d < max; i++ {
		d <<= 1
		if d <= 0 { // overflowed
			return max
		}
	}
	if d > max {
		d = max
	}
	return d
}

// retryableStatus reports whether status is explicit server backpressure
// worth retrying (the request may not have been acted on).
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// retryAfter parses a Retry-After header (delta-seconds form) capped at
// the client's maximum; 0 when absent or unparseable.
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	max := c.MaxRetryAfter
	if max <= 0 {
		max = defaultMaxRetryAfter
	}
	if d > max {
		d = max
	}
	return d
}

// do runs send with the client's retry policy. send must build a fresh
// request per call (a consumed body cannot be replayed). Backpressure
// responses (429/503) count as failed attempts; the retry delay is the
// larger of the jittered backoff and the server's Retry-After hint.
func (c *Client) do(ctx context.Context, send func(context.Context) (*http.Response, error)) (*http.Response, error) {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = defaultMaxAttempts
	}
	backoff := c.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}
	var (
		lastErr    error
		serverHint time.Duration
	)
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := backoffDelay(backoff, maxRetryBackoff, attempt-1)
			// Full jitter on the top half de-synchronizes a fleet of
			// reporters hammering a recovering server.
			d = d/2 + c.jitterDelay(d/2)
			if serverHint > d {
				d = serverHint
			}
			if err := c.wait(ctx, d); err != nil {
				return nil, fmt.Errorf("report: canceled during retry backoff: %w", err)
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("report: %w", err)
		}
		resp, err := send(ctx)
		if err != nil {
			lastErr = err
			serverHint = 0
			continue
		}
		if retryableStatus(resp.StatusCode) {
			serverHint = c.retryAfter(resp)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("server returned %s", resp.Status)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("report: %d attempt(s) failed: %w", attempts, lastErr)
}

// get issues a retried GET of path.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	return c.do(ctx, func(ctx context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return nil, err
		}
		return c.client().Do(req)
	})
}

// post issues a retried JSON POST of body to path.
func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	return c.do(ctx, func(ctx context.Context) (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return c.client().Do(req)
	})
}

// Report submits one suspect-core report.
func (c *Client) Report(rep Report) error {
	return c.ReportContext(context.Background(), rep)
}

// ReportContext submits one suspect-core report, honoring ctx.
func (c *Client) ReportContext(ctx context.Context, rep Report) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	resp, err := c.post(ctx, "/v1/report", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("report: server returned %s", resp.Status)
	}
	return nil
}

// ReportBatch submits a batch of reports via POST /v1/reports.
func (c *Client) ReportBatch(batch Batch) (BatchAck, error) {
	return c.ReportBatchContext(context.Background(), batch)
}

// ReportBatchContext submits a batch of reports, honoring ctx. A shed
// (429) response is retried per the client's policy; if every attempt is
// shed the returned error wraps the last status.
func (c *Client) ReportBatchContext(ctx context.Context, batch Batch) (BatchAck, error) {
	var ack BatchAck
	body, err := json.Marshal(batch)
	if err != nil {
		return ack, err
	}
	resp, err := c.post(ctx, "/v1/reports", body)
	if err != nil {
		return ack, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return ack, fmt.Errorf("reports: server returned %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&ack)
	return ack, err
}

// Suspects fetches the current suspect list.
func (c *Client) Suspects() ([]SuspectJSON, error) {
	return c.SuspectsContext(context.Background())
}

// SuspectsContext fetches the current suspect list, honoring ctx.
func (c *Client) SuspectsContext(ctx context.Context) ([]SuspectJSON, error) {
	resp, err := c.get(ctx, "/v1/suspects")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("suspects: server returned %s", resp.Status)
	}
	var out []SuspectJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats fetches service statistics.
func (c *Client) Stats() (StatsJSON, error) {
	return c.StatsContext(context.Background())
}

// StatsContext fetches service statistics, honoring ctx.
func (c *Client) StatsContext(ctx context.Context) (StatsJSON, error) {
	var out StatsJSON
	resp, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("stats: server returned %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Metrics fetches the server's Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	return c.MetricsContext(context.Background())
}

// MetricsContext fetches the Prometheus exposition, honoring ctx.
func (c *Client) MetricsContext(ctx context.Context) (string, error) {
	resp, err := c.get(ctx, "/v1/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics: server returned %s", resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// Machines fetches the lifecycle ledger from the admin API, optionally
// filtered by state and/or pool (empty strings mean no filter).
func (c *Client) Machines(ctx context.Context, state, pool string) ([]MachineJSON, error) {
	q := url.Values{}
	if state != "" {
		q.Set("state", state)
	}
	if pool != "" {
		q.Set("pool", pool)
	}
	path := "/v1/machines"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	resp, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("machines: server returned %s", apiError(resp))
	}
	var out []MachineJSON
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Machine fetches one machine's lifecycle record.
func (c *Client) Machine(ctx context.Context, id string) (MachineJSON, error) {
	var out MachineJSON
	resp, err := c.get(ctx, "/v1/machines/"+id)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("machine %s: server returned %s", id, apiError(resp))
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// MachineAction invokes one lifecycle verb (cordon, drain, repair,
// release, remove, assign) on a machine and returns the updated record.
// A 202 answer (verb deferred behind a pool floor) is success; the
// returned record has Deferred set.
func (c *Client) MachineAction(ctx context.Context, id, verb string, req ActionRequest) (MachineJSON, error) {
	var out MachineJSON
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := c.post(ctx, "/v1/machines/"+id+"/"+verb, body)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return out, fmt.Errorf("%s %s: server returned %s", verb, id, apiError(resp))
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Pools fetches per-pool capacity accounting and the deferred-drain
// queue from the admin API.
func (c *Client) Pools(ctx context.Context) (PoolsJSON, error) {
	var out PoolsJSON
	resp, err := c.get(ctx, "/v1/pools")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("pools: server returned %s", apiError(resp))
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// Readyz probes /v1/readyz once, without retry — a readiness probe that
// retried its own 503s would defeat its purpose. The parsed body comes
// back for both 200 and 503; ready reports which it was.
func (c *Client) Readyz(ctx context.Context) (out ReadyJSON, ready bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/readyz", nil)
	if err != nil {
		return out, false, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return out, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return out, false, fmt.Errorf("readyz: server returned %s", apiError(resp))
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, false, err
	}
	return out, resp.StatusCode == http.StatusOK, nil
}

// apiError renders a non-2xx response for error messages, folding in the
// server's JSON error envelope when present.
func apiError(resp *http.Response) string {
	var env ErrorJSON
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&env) == nil && env.Error != "" {
		return fmt.Sprintf("%s (%s)", resp.Status, env.Error)
	}
	return resp.Status
}
